package stackless

import (
	"math/rand"
	"strings"
	"testing"

	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/tree"
)

// The capstone integration test: random queries, random documents, every
// applicable strategy, both encodings — all answers must coincide with the
// in-memory oracles. This exercises the full pipeline (regex → minimal DFA
// → classification → compiled evaluator → scanner → selection).

func randomExpr(rng *rand.Rand, depth int) string {
	if depth == 0 {
		return []string{"a", "b", ".", "%"}[rng.Intn(4)]
	}
	x := randomExpr(rng, depth-1)
	y := randomExpr(rng, depth-1)
	switch rng.Intn(6) {
	case 0:
		return "(" + x + "|" + y + ")"
	case 1:
		return x + y
	case 2:
		return "(" + x + ")*"
	case 3:
		return "(" + x + ")+"
	case 4:
		return "(" + x + ")?"
	default:
		return x
	}
}

func TestIntegrationAllStrategiesAgreeWithOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(20210620))
	labels := []string{"a", "b"}
	queries := 0
	strategySeen := map[Strategy]int{}
	for i := 0; i < 250; i++ {
		expr := randomExpr(rng, 2+rng.Intn(2))
		q, err := CompileRegex(expr, labels)
		if err != nil {
			t.Fatalf("compile %q: %v", expr, err)
		}
		queries++
		for j := 0; j < 8; j++ {
			tr := gen.RandomTree(rng, labels, 1+rng.Intn(25))
			wantSel := tree.SelectQL(q.automaton(), tr)
			wantEL := tree.InEL(q.automaton(), tr)
			wantAL := tree.InAL(q.automaton(), tr)
			xml := encoding.XMLString(tr)
			term := encoding.TermString(tr)

			// Markup selection, cheapest strategy then forced stack.
			for _, opt := range []Options{{}, {ForceStack: true}} {
				var got []int
				stats, err := q.SelectXML(strings.NewReader(xml), opt, func(m Match) {
					got = append(got, m.Pos)
				})
				if err != nil {
					t.Fatal(err)
				}
				strategySeen[stats.Strategy]++
				requireEqualInts(t, expr, tr, "markup select", got, wantSel)
			}
			// Term-encoding selection.
			var gotTerm []int
			if _, err := q.SelectTerm(strings.NewReader(term), Options{}, func(m Match) {
				gotTerm = append(gotTerm, m.Pos)
			}); err != nil {
				t.Fatal(err)
			}
			requireEqualInts(t, expr, tr, "term select", gotTerm, wantSel)

			// EL and AL, markup and term.
			if got, _, err := q.RecognizeEL(strings.NewReader(xml), Options{}); err != nil || got != wantEL {
				t.Fatalf("%q on %s: EL=%v (err %v), want %v", expr, tr, got, err, wantEL)
			}
			if got, _, err := q.RecognizeAL(strings.NewReader(xml), Options{}); err != nil || got != wantAL {
				t.Fatalf("%q on %s: AL=%v (err %v), want %v", expr, tr, got, err, wantAL)
			}
			if got, _, err := q.RecognizeELTerm(strings.NewReader(term), Options{}); err != nil || got != wantEL {
				t.Fatalf("%q on %s: term EL=%v (err %v), want %v", expr, tr, got, err, wantEL)
			}
			if got, _, err := q.RecognizeALTerm(strings.NewReader(term), Options{}); err != nil || got != wantAL {
				t.Fatalf("%q on %s: term AL=%v (err %v), want %v", expr, tr, got, err, wantAL)
			}
		}
	}
	// The random languages must have exercised every strategy tier.
	if strategySeen[Registerless] == 0 || strategySeen[Stackless] == 0 || strategySeen[Stack] == 0 {
		t.Fatalf("strategy coverage too narrow: %v over %d queries", strategySeen, queries)
	}
}

func requireEqualInts(t *testing.T, expr string, tr *tree.Node, what string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%q on %s: %s got %v, want %v", expr, tr, what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%q on %s: %s got %v, want %v", expr, tr, what, got, want)
		}
	}
}

// TestIntegrationClassificationConsistency: the classification bits must be
// internally consistent with the theorems on random languages.
func TestIntegrationClassificationConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for i := 0; i < 300; i++ {
		expr := randomExpr(rng, 2+rng.Intn(2))
		q, err := CompileRegex(expr, []string{"a", "b"})
		if err != nil {
			t.Fatal(err)
		}
		c := q.Classify()
		if c.Registerless && !c.StacklessQuery {
			t.Fatalf("%q: registerless but not stackless", expr)
		}
		if c.Registerless != (c.EFlat && c.AFlat) {
			t.Fatalf("%q: Theorem 3.2(3) violated: reg=%v E=%v A=%v", expr, c.Registerless, c.EFlat, c.AFlat)
		}
		if c.StacklessQuery != c.HAR {
			t.Fatalf("%q: Theorem 3.1 violated", expr)
		}
		if c.TermRegisterless && !c.Registerless {
			t.Fatalf("%q: blind class outside its markup class", expr)
		}
		if c.TermStackless && !c.StacklessQuery {
			t.Fatalf("%q: blindly HAR but not HAR", expr)
		}
		if c.Reversible && !c.AlmostReversible {
			t.Fatalf("%q: reversible but not almost-reversible", expr)
		}
	}
}
