package stackless

import (
	"math/rand"
	"strings"
	"testing"

	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/tree"
)

var abc = []string{"a", "b", "c"}

func TestXPathTranslation(t *testing.T) {
	cases := map[string]string{
		"/a//b":     "a.*b",
		"/a/b":      "ab",
		"//a//b":    ".*a.*b",
		"//a/b":     ".*ab",
		"/*/b":      ".b",
		"/'item'/b": "'item'b",
	}
	for xp, want := range cases {
		got, err := XPathToRegex(xp)
		if err != nil {
			t.Fatalf("%s: %v", xp, err)
		}
		if got != want {
			t.Errorf("XPathToRegex(%s) = %s, want %s", xp, got, want)
		}
	}
	for _, bad := range []string{"", "a/b", "/", "/a//", "$..a", "/a[1]/b", "//a[@id='x']"} {
		if _, err := XPathToRegex(bad); err == nil {
			t.Errorf("XPathToRegex(%q): expected error", bad)
		}
	}
}

func TestJSONPathTranslation(t *testing.T) {
	cases := map[string]string{
		"$.a..b":  "a.*b",
		"$.a.b":   "ab",
		"$..a..b": ".*a.*b",
		"$..a.b":  ".*ab",
		"$.*.b":   ".b",
	}
	for jp, want := range cases {
		got, err := JSONPathToRegex(jp)
		if err != nil {
			t.Fatalf("%s: %v", jp, err)
		}
		if got != want {
			t.Errorf("JSONPathToRegex(%s) = %s, want %s", jp, got, want)
		}
	}
	for _, bad := range []string{"", ".a", "$.", "$", "$.a[0]", "$..book[?(@.price)]"} {
		if _, err := JSONPathToRegex(bad); err == nil {
			t.Errorf("JSONPathToRegex(%q): expected error", bad)
		}
	}
}

// TestExample212EndToEnd reproduces the Example 2.12 table through the
// public API, including the strategies actually chosen.
func TestExample212EndToEnd(t *testing.T) {
	rows := []struct {
		xpath                   string
		registerless, stackless bool
	}{
		{"/a//b", true, true},
		{"/a/b", false, true},
		{"//a//b", false, true},
		{"//a/b", false, false},
	}
	for _, row := range rows {
		q, err := CompileXPath(row.xpath, abc)
		if err != nil {
			t.Fatal(err)
		}
		c := q.Classify()
		if c.Registerless != row.registerless || c.StacklessQuery != row.stackless {
			t.Errorf("%s: classified (reg=%v, stackless=%v), want (%v, %v)",
				row.xpath, c.Registerless, c.StacklessQuery, row.registerless, row.stackless)
		}
		doc := "<a><b/><c><b/></c><a><b/></a></a>"
		stats, err := q.SelectXML(strings.NewReader(doc), Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantStrategy := Stack
		if row.registerless {
			wantStrategy = Registerless
		} else if row.stackless {
			wantStrategy = Stackless
		}
		if stats.Strategy != wantStrategy {
			t.Errorf("%s: used %v, want %v", row.xpath, stats.Strategy, wantStrategy)
		}
		// ForbidStack must fail exactly for //a/b.
		_, err = q.SelectXML(strings.NewReader(doc), Options{ForbidStack: true}, nil)
		if (err != nil) != !row.stackless {
			t.Errorf("%s: ForbidStack error = %v, stackless = %v", row.xpath, err, row.stackless)
		}
	}
}

func TestSelectXMLMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	q, err := CompileXPath("/a//b", abc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tr := gen.RandomTree(rng, abc, 1+rng.Intn(30))
		want := tree.SelectQL(q.automaton(), tr)
		var got []int
		doc := encoding.XMLString(tr)
		stats, err := q.SelectXML(strings.NewReader(doc), Options{}, func(m Match) {
			got = append(got, m.Pos)
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Matches != len(want) || len(got) != len(want) {
			t.Fatalf("tree %s: got %v, want %v", tr, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("tree %s: got %v, want %v", tr, got, want)
			}
		}
		// The stack baseline must agree.
		var gotStack []int
		if _, err := q.SelectXML(strings.NewReader(doc), Options{ForceStack: true}, func(m Match) {
			gotStack = append(gotStack, m.Pos)
		}); err != nil {
			t.Fatal(err)
		}
		if len(gotStack) != len(want) {
			t.Fatalf("stack baseline disagrees on %s", tr)
		}
	}
}

func TestSelectJSON(t *testing.T) {
	q, err := CompileJSONPath("$..'title'", []string{"$", "store", "book", "item", "title"})
	if err != nil {
		t.Fatal(err)
	}
	doc := `{"store":{"book":[{"title":1},{"title":2},{"other":3}]}}`
	var got []string
	stats, err := q.SelectJSON(strings.NewReader(doc), Options{}, func(m Match) {
		got = append(got, m.Label)
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Matches != 2 || len(got) != 2 || got[0] != "title" {
		t.Errorf("JSONPath select: got %v (stats %+v)", got, stats)
	}
}

func TestRecognizeELAL(t *testing.T) {
	// L = a b* : trees whose branches are a then b's.
	q, err := CompileRegex("ab*", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	inside := "<a><b><b/></b><b/></a>"
	mixed := "<a><b/><a/></a>"
	if ok, _, err := q.RecognizeAL(strings.NewReader(inside), Options{}); err != nil || !ok {
		t.Errorf("AL(inside) = %v, %v; want true", ok, err)
	}
	if ok, _, err := q.RecognizeAL(strings.NewReader(mixed), Options{}); err != nil || ok {
		t.Errorf("AL(mixed) = %v, %v; want false", ok, err)
	}
	if ok, _, err := q.RecognizeEL(strings.NewReader(mixed), Options{}); err != nil || !ok {
		t.Errorf("EL(mixed) = %v, %v; want true", ok, err)
	}
	// Term encoding.
	if ok, _, err := q.RecognizeALTerm(strings.NewReader("a{b{}b{b{}}}"), Options{}); err != nil || !ok {
		t.Errorf("ALTerm = %v, %v; want true", ok, err)
	}
}

// TestRecognizersAgreeWithOracles drives EL/AL through the public API on
// random trees for a query where all strategies exist, and cross-checks the
// stack baseline.
func TestRecognizersAgreeWithOracles(t *testing.T) {
	q, err := CompileXPath("/a//b", abc) // E-flat and A-flat and HAR
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 200; i++ {
		tr := gen.RandomTree(rng, abc, 1+rng.Intn(25))
		doc := encoding.XMLString(tr)
		el, stats, err := q.RecognizeEL(strings.NewReader(doc), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Strategy != Registerless {
			t.Fatalf("EL of aΓ*b should be registerless, got %v", stats.Strategy)
		}
		if want := tree.InEL(q.automaton(), tr); el != want {
			t.Fatalf("EL(%s) = %v, want %v", tr, el, want)
		}
		al, _, err := q.RecognizeAL(strings.NewReader(doc), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := tree.InAL(q.automaton(), tr); al != want {
			t.Fatalf("AL(%s) = %v, want %v", tr, al, want)
		}
		elS, _, _ := q.RecognizeEL(strings.NewReader(doc), Options{ForceStack: true})
		if elS != el {
			t.Fatalf("stack EL disagrees on %s", tr)
		}
	}
}

func TestQueryMetadata(t *testing.T) {
	q := MustCompileRegex("a.*b", abc)
	if q.String() != "a.*b" {
		t.Errorf("String() = %q", q.String())
	}
	got := q.Alphabet()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("Alphabet() = %v", got)
	}
	if rep := q.Report(); !strings.Contains(rep, "almost-reversible") {
		t.Errorf("Report() missing content: %q", rep)
	}
	c := q.Classify()
	if !c.EFlat || !c.AFlat || !c.HAR || !c.AlmostReversible {
		t.Errorf("unexpected classification %+v", c)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileRegex("(", abc); err == nil {
		t.Error("expected parse error")
	}
	if _, err := CompileXPath("a/b", abc); err == nil {
		t.Error("expected XPath error")
	}
	if _, err := CompileJSONPath("..a", abc); err == nil {
		t.Error("expected JSONPath error")
	}
}

func TestXPathUnion(t *testing.T) {
	rx, err := XPathToRegex("/a/b | /a//c")
	if err != nil {
		t.Fatal(err)
	}
	if rx != "(ab)|(a.*c)" {
		t.Errorf("union regex = %q", rx)
	}
	q, err := CompileXPath("/a/b | /a//c", abc)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	if _, err := q.SelectXML(strings.NewReader("<a><b/><b><c/></b></a>"), Options{}, func(m Match) {
		got = append(got, m.Label)
	}); err != nil {
		t.Fatal(err)
	}
	// Selected: the b at depth 2 (path ab) and the c (path abc? no — a b c
	// does not match a.*c... it does: a then .* = b then c). And the second
	// b matches ab as well.
	if len(got) != 3 {
		t.Errorf("union select = %v, want 3 matches", got)
	}
	jr, err := JSONPathToRegex("$.a.b | $..c")
	if err != nil || jr != "(ab)|(.*c)" {
		t.Errorf("JSONPath union = %q, %v", jr, err)
	}
	if _, err := XPathToRegex("/a | b"); err == nil {
		t.Error("expected error for malformed union arm")
	}
}

func TestBalanceGuard(t *testing.T) {
	q := MustCompileRegex("a*", []string{"a"})
	for _, bad := range []string{
		"<a><a/>",  // unclosed root
		"<a/></a>", // extra close
		"<a/><a/>", // two roots
		"",         // empty
	} {
		if _, err := q.SelectXML(strings.NewReader(bad), Options{}, nil); err == nil {
			t.Errorf("expected balance error for %q", bad)
		}
		if _, _, err := q.RecognizeEL(strings.NewReader(bad), Options{}); err == nil {
			t.Errorf("expected balance error in EL for %q", bad)
		}
	}
	// TrustInput disables the guard.
	if _, err := q.SelectXML(strings.NewReader("<a><a/>"), Options{TrustInput: true}, nil); err != nil {
		t.Errorf("TrustInput should skip the guard: %v", err)
	}
	// Well-formed input passes unchanged.
	stats, err := q.SelectXML(strings.NewReader("<a><a/></a>"), Options{}, nil)
	if err != nil || stats.Matches != 2 {
		t.Errorf("guarded select failed: %v %+v", err, stats)
	}
}
