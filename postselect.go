package stackless

import (
	"fmt"
	"io"

	"stackless/internal/encoding"
)

// Post-selection (Section 2.3): reporting a node at its *closing* tag,
// after its whole subtree has been seen. The paper proves pre-selection
// cannot look into the subtree and leaves stackless post-selection as
// future work; this file provides the natural stack-based implementation
// as an extension, for queries of the form
//
//	path ∈ L  ∧  the subtree contains a node labelled ℓ
//
// (e.g. "items that contain a discount somewhere below"). The evaluator
// uses Θ(depth) memory — provably unavoidable in general, by the same
// arguments as Example 2.7.

// PostQuery couples a path query with a required descendant label.
type PostQuery struct {
	path    *Query
	witness string
}

// CompilePostQuery builds a post-selecting query: nodes whose root path
// matches pathExpr (a regex as in CompileRegex) and whose subtree contains
// at least one node labelled witness (the node itself counts).
func CompilePostQuery(pathExpr string, witness string, labels []string) (*PostQuery, error) {
	if witness == "" {
		return nil, fmt.Errorf("stackless: empty witness label")
	}
	q, err := CompileRegex(pathExpr, append(labels, witness))
	if err != nil {
		return nil, err
	}
	return &PostQuery{path: q, witness: witness}, nil
}

// PostMatch is a node reported at its closing tag.
type PostMatch struct {
	// Pos is the node's preorder position.
	Pos int
	// Depth is the node's depth (root = 1).
	Depth int
	// Label is the node's label.
	Label string
	// SubtreeSize is the number of nodes in the reported node's subtree —
	// information pre-selection can never provide.
	SubtreeSize int
}

// SelectXML streams the document and reports matches at closing tags, in
// closing order (innermost first).
func (p *PostQuery) SelectXML(r io.Reader, fn func(PostMatch)) (Stats, error) {
	return p.run(encoding.NewXMLScanner(r), fn)
}

// SelectTerm streams brace-notation input under the term encoding.
func (p *PostQuery) SelectTerm(r io.Reader, fn func(PostMatch)) (Stats, error) {
	return p.run(encoding.NewTermScanner(r), fn)
}

type postFrame struct {
	pos        int
	label      string
	pathState  int  // path state before this node opened
	pathAlive  bool // aliveness before this node opened
	pathOK     bool // path up to and including this node is in L
	hasWitness bool
	size       int
}

func (p *PostQuery) run(src encoding.Source, fn func(PostMatch)) (Stats, error) {
	d := p.path.automaton()
	stats := Stats{Strategy: Stack}
	var stack []postFrame
	state := d.Start
	alive := true
	pos := -1
	for {
		e, err := src.Next()
		if err == io.EOF {
			return stats, nil
		}
		if err != nil {
			return stats, err
		}
		stats.Events++
		switch e.Kind {
		case encoding.Open:
			pos++
			prevState, prevAlive := state, alive
			if alive {
				if sym, ok := d.Alphabet.ID(e.Label); ok {
					state = d.Delta[state][sym]
				} else {
					alive = false
				}
			}
			stack = append(stack, postFrame{
				pos:        pos,
				label:      e.Label,
				pathState:  prevState,
				pathAlive:  prevAlive,
				pathOK:     alive && d.Accept[state],
				hasWitness: e.Label == p.witness,
				size:       1,
			})
		case encoding.Close:
			if len(stack) == 0 {
				continue // stray close; ignore like the other evaluators
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.pathOK && top.hasWitness {
				stats.Matches++
				if fn != nil {
					fn(PostMatch{Pos: top.pos, Depth: len(stack) + 1, Label: top.label, SubtreeSize: top.size})
				}
			}
			// Restore the path state and propagate subtree facts upward.
			state = top.pathState
			alive = top.pathAlive
			if len(stack) > 0 {
				parent := &stack[len(stack)-1]
				parent.hasWitness = parent.hasWitness || top.hasWitness
				parent.size += top.size
			}
		}
	}
}
