module stackless

go 1.22
