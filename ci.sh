#!/bin/sh
# Tier-1 verification gate. Run from the repository root: ./ci.sh
# Every check here must stay green; `make ci` is an alias.
set -eu

echo '== gofmt =='
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '== go vet =='
go vet ./...

echo '== lint (dralint + treelint + tablecheck + bcegate + allocgate) =='
# dralint checks the depth-register automata tables; treelint checks the
# Go-level contracts (plain kernels, enum totality, pool discipline, atomic
# fields, Close errors, and the flow-sensitive allocfree/lifecycle/hotlock
# analyses); tablecheck verifies every compiled transition table (shape,
# closure, flags, totality, bounded equivalence); bcegate fails if a
# //treelint:plain batch kernel retains a bounds check; allocgate fails if
# a plain kernel body reaches the heap per the compiler's escape analysis.
# treelint runs under go vet so the _test.go variants of every package are
# analyzed too.
make lint

echo '== go build =='
go build ./...

echo '== go test (with coverage) =='
# One pass runs the whole suite and produces the coverage profile for the
# gate below. -coverpkg counts cross-package coverage of the gated
# packages, which most of the suite exercises. GATED_PKGS is the single
# source of truth: both the ./-relative -coverpkg form and the
# module-path covercheck form are derived from it.
GATED_PKGS="internal/core internal/parallel internal/obs internal/analysis internal/encoding internal/alphabet internal/tablecheck internal/product internal/diagjson internal/stackeval"
coverpkg=""
checkpkg=""
for p in $GATED_PKGS; do
    coverpkg="${coverpkg:+$coverpkg,}./$p"
    checkpkg="${checkpkg:+$checkpkg,}stackless/$p"
done
go test -coverprofile=cover.out -coverpkg="$coverpkg" ./...

echo '== coverage gate (>=80% on the gated packages) =='
go run ./cmd/covercheck -min 80 -packages "$checkpkg" cover.out

echo '== go test -race (internal) =='
go test -race ./internal/...

echo '== go test -race (observability contract) =='
go test -race -run 'Obs|Earliest' .

echo '== fuzz smoke =='
make fuzz-smoke

echo 'tier-1 gate: OK'
