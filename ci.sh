#!/bin/sh
# Tier-1 verification gate. Run from the repository root: ./ci.sh
# Every check here must stay green; `make ci` is an alias.
set -eu

echo '== gofmt =='
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '== go vet =='
go vet ./...

echo '== go build =='
go build ./...

echo '== go test (with coverage) =='
# One pass runs the whole suite and produces the coverage profile for the
# gate below. -coverpkg counts cross-package coverage of the two gated
# engine packages, which most of the suite exercises.
go test -coverprofile=cover.out -coverpkg=./internal/core,./internal/parallel ./...

echo '== coverage gate (>=80% on the engine packages) =='
go run ./cmd/covercheck -min 80 -packages stackless/internal/core,stackless/internal/parallel cover.out

echo '== go test -race (internal) =='
go test -race ./internal/...

echo '== go test -race (observability contract) =='
go test -race -run 'Obs' .

echo '== fuzz smoke =='
make fuzz-smoke

echo 'tier-1 gate: OK'
