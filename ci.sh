#!/bin/sh
# Tier-1 verification gate. Run from the repository root: ./ci.sh
# Every check here must stay green; `make ci` is an alias.
set -eu

echo '== gofmt =='
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '== go vet =='
go vet ./...

echo '== go build =='
go build ./...

echo '== go test =='
go test ./...

echo '== go test -race (internal) =='
go test -race ./internal/...

echo 'tier-1 gate: OK'
