// Package stackless is a streaming tree-query engine implementing the PODS
// 2021 paper "Stackless Processing of Streamed Trees" (Barloy, Murlak,
// Paperman). It evaluates regular path queries (RPQs) and recognizes the
// tree languages EL ("some branch in L") and AL ("every branch in L") over
// streamed XML (markup encoding) and JSON-style (term encoding) documents
// using the cheapest machine the paper's characterization theorems allow:
//
//	registerless — a plain finite automaton (Theorem 3.2), when the
//	               query language is almost-reversible / E-flat / A-flat;
//	stackless    — a depth-register automaton with one counter and O(1)
//	               registers (Theorem 3.1), when the language is
//	               hierarchically almost-reversible (HAR);
//	stack        — the classical pushdown simulation, Θ(depth) memory,
//	               always available as a fallback.
//
// Queries are written as regular expressions over label paths, or in small
// XPath / JSONPath subsets (downward axes only, as in Example 2.12).
//
// Query sets evaluate together in one streaming pass through MultiQuery;
// compatible compiled machines are merged into product automata stepped
// once per event with per-query accept bits (DESIGN.md §13), so the cost
// of a set is close to one machine's, not the sum of its members'.
package stackless

import (
	"fmt"
	"sort"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/rex"
	"stackless/internal/stackeval"
)

// Encoding selects the serialization the evaluator consumes.
type Encoding int

// The two encodings of Section 2 and Section 4.2.
const (
	// MarkupEncoding: opening and closing tags both carry the label (XML).
	MarkupEncoding Encoding = iota
	// TermEncoding: only opening tags carry the label (JSON).
	TermEncoding
)

func (e Encoding) String() string {
	if e == TermEncoding {
		return "term"
	}
	return "markup"
}

// Strategy identifies the machine class used for an evaluation.
type Strategy int

// Strategies, from cheapest to most expensive.
const (
	Registerless Strategy = iota
	Stackless
	Stack
)

func (s Strategy) String() string {
	switch s {
	case Registerless:
		return "registerless"
	case Stackless:
		return "stackless"
	case Stack:
		return "stack"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Query is a compiled regular path query over a fixed label alphabet.
type Query struct {
	source string
	an     *classify.Analysis
	report *classify.Report
}

// CompileRegex compiles a regular expression over label paths (the syntax
// of internal/rex: «|» union, juxtaposition, «*», «+», «?», «.» any label,
// quoted 'label' for multi-character labels). The alphabet Γ is the set of
// labels the query ranges over; «.» expands to it, and labels must cover
// every symbol in the expression. Extra alphabet labels are allowed (and
// change the meaning of «.»).
func CompileRegex(expr string, labels []string) (*Query, error) {
	node, err := rex.Parse(expr)
	if err != nil {
		return nil, err
	}
	alph := alphabet.New(labels...)
	for _, s := range node.SymbolNames() {
		alph.Add(s)
	}
	d, err := rex.Compile(node, alph)
	if err != nil {
		return nil, err
	}
	an := classify.Analyze(d)
	return &Query{source: expr, an: an, report: an.Report()}, nil
}

// MustCompileRegex is CompileRegex, panicking on error.
func MustCompileRegex(expr string, labels []string) *Query {
	q, err := CompileRegex(expr, labels)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the source expression.
func (q *Query) String() string { return q.source }

// Alphabet returns the label alphabet Γ, sorted.
func (q *Query) Alphabet() []string {
	out := q.an.D.Alphabet.Symbols()
	sort.Strings(out)
	return out
}

// automaton exposes the minimal DFA for the benchmarks and tests inside
// this module.
func (q *Query) automaton() *dfa.DFA { return q.an.D }

// Classification reports which machine classes can realize the query and
// its associated tree languages, per Theorems 3.1, 3.2, B.1 and B.2.
type Classification struct {
	// Query evaluation (pre-selection semantics).
	Registerless     bool // markup encoding, finite automaton
	StacklessQuery   bool // markup encoding, depth-register automaton
	TermRegisterless bool // term encoding, finite automaton
	TermStackless    bool // term encoding, depth-register automaton
	// Tree languages.
	ELRegisterless bool // EL by a finite automaton (markup)
	ALRegisterless bool // AL by a finite automaton (markup)
	// Underlying syntactic classes (Definitions 3.4, 3.6, 3.9).
	AlmostReversible bool
	HAR              bool
	EFlat            bool
	AFlat            bool
	RTrivial         bool
	Reversible       bool
}

// Classify returns the full classification of the query.
func (q *Query) Classify() Classification {
	r := q.report
	return Classification{
		Registerless:     r.QLRegisterless(),
		StacklessQuery:   r.QLStackless(),
		TermRegisterless: r.TermQLRegisterless(),
		TermStackless:    r.TermQLStackless(),
		ELRegisterless:   r.ELRegisterless(),
		ALRegisterless:   r.ALRegisterless(),
		AlmostReversible: r.AlmostReversible,
		HAR:              r.HAR,
		EFlat:            r.EFlat,
		AFlat:            r.AFlat,
		RTrivial:         r.RTrivial,
		Reversible:       r.Reversible,
	}
}

// Report renders the classification as the table printed by cmd/classify.
func (q *Query) Report() string { return q.report.String() }

// Explain returns human-readable reasons, in the vocabulary of the paper's
// proofs, for every class the query's language misses — empty when the
// query is registerless under both encodings.
func (q *Query) Explain() []string { return q.an.Explanations(q.report) }

// queryEvaluator picks the cheapest evaluator for node selection.
func (q *Query) queryEvaluator(enc Encoding, allowStack bool) (core.Evaluator, Strategy, error) {
	switch enc {
	case MarkupEncoding:
		if tag, err := core.RegisterlessQL(q.an); err == nil {
			return tag.Evaluator(), Registerless, nil
		}
		if ev, err := core.StacklessQL(q.an); err == nil {
			return ev, Stackless, nil
		}
	case TermEncoding:
		if tag, err := core.BlindRegisterlessQL(q.an); err == nil {
			return tag.Evaluator(), Registerless, nil
		}
		if ev, err := core.BlindStacklessQL(q.an); err == nil {
			return ev, Stackless, nil
		}
	}
	if !allowStack {
		return nil, Stack, fmt.Errorf("stackless: query %q is not stackless under the %s encoding (Theorem 3.1/B.2)", q.source, enc)
	}
	return stackeval.QL(q.an.D), Stack, nil
}

// elEvaluator picks the cheapest recognizer of EL.
func (q *Query) elEvaluator(enc Encoding, allowStack bool) (core.Evaluator, Strategy, error) {
	switch enc {
	case MarkupEncoding:
		if m, err := core.RegisterlessEL(q.an); err == nil {
			return m, Registerless, nil
		}
		if ev, err := core.StacklessQL(q.an); err == nil {
			return core.ELFromQL(ev), Stackless, nil
		}
	case TermEncoding:
		if m, err := core.BlindRegisterlessEL(q.an); err == nil {
			return m, Registerless, nil
		}
		if ev, err := core.BlindStacklessQL(q.an); err == nil {
			return core.ELFromQL(ev), Stackless, nil
		}
	}
	if !allowStack {
		return nil, Stack, fmt.Errorf("stackless: EL of %q needs a stack under the %s encoding", q.source, enc)
	}
	return stackeval.EL(q.an.D), Stack, nil
}

// alEvaluator picks the cheapest recognizer of AL.
func (q *Query) alEvaluator(enc Encoding, allowStack bool) (core.Evaluator, Strategy, error) {
	switch enc {
	case MarkupEncoding:
		if m, err := core.RegisterlessAL(q.an); err == nil {
			return m, Registerless, nil
		}
		if ev, err := core.StacklessQL(q.an); err == nil {
			return core.ALFromQL(ev), Stackless, nil
		}
	case TermEncoding:
		if m, err := core.BlindRegisterlessAL(q.an); err == nil {
			return m, Registerless, nil
		}
		if ev, err := core.BlindStacklessQL(q.an); err == nil {
			return core.ALFromQL(ev), Stackless, nil
		}
	}
	if !allowStack {
		return nil, Stack, fmt.Errorf("stackless: AL of %q needs a stack under the %s encoding", q.source, enc)
	}
	return stackeval.AL(q.an.D), Stack, nil
}
