package stackless

import (
	"fmt"
	"io"
	"math/bits"
	"sync"
	"time"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/obs"
	"stackless/internal/parallel"
	"stackless/internal/product"
)

// Multi-query evaluation: run several path queries over one document in a
// single streaming pass. This is the workload the paper's introduction
// highlights (factoring the dominant parsing cost across queries, as in
// SAX-based systems): the document is scanned once, and each query's
// machine steps on every event.

// MultiQuery is a set of compiled queries evaluated together. Compatible
// registerless queries are merged into product automata (DESIGN.md §13) and
// stepped once per event for the whole group; the rest fan out as before.
type MultiQuery struct {
	queries []*Query

	// noProduct disables product compilation, forcing the pre-§13 fan-out.
	// Unexported: it exists for the differential tests and the benchmark
	// baseline, not as API — fan-out is never preferable when a product
	// compiles.
	noProduct bool
}

// NewMultiQuery groups queries for single-pass evaluation.
func NewMultiQuery(queries ...*Query) (*MultiQuery, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("stackless: empty multi-query")
	}
	return &MultiQuery{queries: queries}, nil
}

// MultiMatch is a selected node together with the index of the query that
// selected it.
type MultiMatch struct {
	Query int
	Match
}

// MultiStats describes a multi-query run.
type MultiStats struct {
	// Strategies per query.
	Strategies []Strategy
	// Events processed once for the whole batch.
	Events int
	// Matches per query.
	Matches []int
	// Workers used for chunk-parallel evaluation (1 = sequential pass);
	// Options.Workers clamped to GOMAXPROCS, as in Stats.
	Workers int
	// Pipeline actually used: PipelineCoded when every query's machine ran
	// the compiled symbol-coded pipeline, PipelineString when at least one
	// query took the per-event path. The sequential coded fast path steps
	// each machine in whole batches and requires all machines to compile;
	// instrumented runs stay on it, flushing counters per batch.
	Pipeline Pipeline
	// ProductGroups is the number of product automata the query set was
	// merged into (0 when every query ran loose — singletons, incompatible
	// families, products over the state cap, or the per-event string path,
	// which never products).
	ProductGroups int
	// Earliest reports which earliest-emission mode the run carried when
	// Options.Earliest was set: EarliestExact when every query's machine
	// carries compiled earliest-decision flags (the pass additionally stops
	// stepping once all machines prove no further match), EarliestApprox
	// otherwise — including every Workers>1 run, which buffers and joins.
	// EarliestOff when earliest emission was not requested.
	Earliest EarliestMode
}

// SelectXML streams the document once and reports each query's matches.
func (m *MultiQuery) SelectXML(r io.Reader, opt Options, fn func(MultiMatch)) (MultiStats, error) {
	return m.selectSource(encoding.NewXMLScanner(r), MarkupEncoding, opt, fn)
}

// SelectJSON streams a JSON document once under the term encoding.
func (m *MultiQuery) SelectJSON(r io.Reader, opt Options, fn func(MultiMatch)) (MultiStats, error) {
	return m.selectSource(encoding.NewJSONSource(r), TermEncoding, opt, fn)
}

// SelectTerm streams a brace-notation document once under the term encoding.
func (m *MultiQuery) SelectTerm(r io.Reader, opt Options, fn func(MultiMatch)) (MultiStats, error) {
	return m.selectSource(encoding.NewTermScanner(r), TermEncoding, opt, fn)
}

func (m *MultiQuery) selectSource(src encoding.Source, enc Encoding, opt Options, fn func(MultiMatch)) (MultiStats, error) {
	src = opt.guard(src)
	opt.Workers = effectiveWorkers(opt.Workers)
	c := opt.Collector
	stats := MultiStats{
		Strategies: make([]Strategy, len(m.queries)),
		Matches:    make([]int, len(m.queries)),
	}
	evs := make([]core.Evaluator, len(m.queries))
	for i, q := range m.queries {
		var err error
		if opt.ForceStack {
			evs[i], stats.Strategies[i] = q.stackQuery(), Stack
		} else {
			evs[i], stats.Strategies[i], err = q.queryEvaluator(enc, !opt.ForbidStack)
		}
		if err != nil {
			return stats, fmt.Errorf("query %d (%s): %w", i, q, err)
		}
		if c != nil {
			core.Instrument(evs[i], c)
			if stats.Strategies[i] == Stack {
				c.StackFallbacks.Inc()
			}
		}
		evs[i].Reset()
	}
	if opt.Workers > 1 {
		if opt.Earliest {
			// Chunk-parallel runs buffer the stream and emit at the join;
			// emission order survives the join, but only the safe
			// approximation's latency bound holds.
			stats.Earliest = EarliestApprox
		}
		plan := m.plan(evs, c)
		stats.ProductGroups = len(plan.Groups)
		return m.selectParallel(src, opt, evs, plan, stats, fn)
	}
	stats.Workers = 1
	if allCoded(evs) && !opt.Earliest {
		plan := m.plan(evs, c)
		stats.ProductGroups = len(plan.Groups)
		stats.Pipeline = PipelineCoded
		return m.selectBatched(src, evs, plan, c, stats, fn)
	}
	stats.Pipeline = PipelineString
	// Earliest emission runs the per-event pass — it already emits every
	// match at its deciding Open — plus the early-exit check: once every
	// machine proves no further match is possible, stepping stops and the
	// rest of the stream only drains (event accounting and the balance
	// guard are unchanged). The mode is exact only when every machine
	// carries earliest flags; one approximated member never decides, so
	// the whole set degrades to the safe approximation.
	var deciders []core.EarliestDecider
	if opt.Earliest {
		stats.Earliest = EarliestExact
		deciders = make([]core.EarliestDecider, len(evs))
		for i, ev := range evs {
			if d, ok := ev.(core.EarliestDecider); ok {
				deciders[i] = d
			} else {
				stats.Earliest = EarliestApprox
			}
		}
	}
	decided := false
	pos := -1
	depth := 0
	// Every machine steps on every event, so the collector counts events
	// per machine (matching the parallel fan-out, where each query is its
	// own pass over the buffered events).
	if c != nil {
		defer func() {
			c.Events.Add(int64(stats.Events) * int64(len(evs)))
		}()
	}
	for {
		e, err := src.Next()
		if err == io.EOF {
			return stats, nil
		}
		if err != nil {
			return stats, err
		}
		stats.Events++
		if e.Kind == encoding.Open {
			pos++
			depth++
			if c != nil {
				c.Depth.Observe(depth)
			}
		} else {
			depth--
		}
		if decided {
			continue
		}
		for i, ev := range evs {
			ev.Step(e)
			if e.Kind == encoding.Open && ev.Accepting() {
				stats.Matches[i]++
				if c != nil {
					c.Matches.Inc()
					c.Latency.Observe(0)
				}
				if fn != nil {
					fn(MultiMatch{Query: i, Match: Match{Pos: pos, Depth: depth, Label: e.Label}})
				}
			}
		}
		if stats.Earliest == EarliestExact {
			decided = true
			for _, d := range deciders {
				if !d.NoFutureMatches() {
					decided = false
					break
				}
			}
		}
	}
}

// allCoded reports whether every machine supports the compiled pipeline.
func allCoded(evs []core.Evaluator) bool {
	for _, ev := range evs {
		if !core.CodedCapable(ev) {
			return false
		}
	}
	return true
}

// plan groups the evaluators into product groups (internal/product) through
// the shared LRU cache, or fans everything out when products are disabled.
func (m *MultiQuery) plan(evs []core.Evaluator, c *obs.Collector) product.Plan {
	if m.noProduct {
		return product.FanoutPlan(len(evs))
	}
	return product.BuildPlan(evs, product.Shared(), 0, c)
}

// selectBatched is the compiled fast path of the sequential multi-query
// pass: the document is read in batches; each product group codes the batch
// once under its shared union alphabet and steps its product whole,
// demultiplexing hit masks into per-query hit lists, while loose machines
// code and step individually as before. Matches are replayed from the
// per-query hit lists in the exact (position, query) order of the per-event
// pass. An instrumented run stays on this path: the collector's event total
// flushes once per return, depths observe per open during the replay walk
// (forced even on hitless batches), and matches count as they emit —
// counter for counter what the per-event pass reports.
//
//treelint:partial instrumented runs flush batched counters into obs
func (m *MultiQuery) selectBatched(src encoding.Source, evs []core.Evaluator, plan product.Plan, c *obs.Collector, stats MultiStats, fn func(MultiMatch)) (MultiStats, error) {
	n := len(evs)
	loose := plan.Loose
	bes := make([]core.BatchEvaluator, len(loose))
	coders := make([]*alphabet.Coder, len(loose))
	coded := make([][]encoding.CodedEvent, len(loose))
	for li, q := range loose {
		bes[li] = evs[q].(core.BatchEvaluator)
		coders[li] = alphabet.NewCoder(bes[li].CodeAlphabet())
	}
	groups := plan.Groups
	gevs := make([]*core.ProductEvaluator, len(groups))
	gcoders := make([]*alphabet.Coder, len(groups))
	gcoded := make([][]encoding.CodedEvent, len(groups))
	ghits := make([][]int32, len(groups))
	gmasks := make([][]uint64, len(groups))
	for gi, g := range groups {
		gevs[gi] = g.Machine.Evaluator()
		gcoders[gi] = alphabet.NewCoder(g.Machine.Alphabet())
	}
	hits := make([][]int32, n)
	next := make([]int, n)
	if c != nil {
		// Every machine steps on every event, as in the per-event pass and
		// the parallel fan-out — a product steps once but counts for each
		// member.
		defer func() {
			c.Events.Add(int64(stats.Events) * int64(n))
		}()
	}
	batch := make([]encoding.Event, 0, encoding.DefaultBatch)
	pos, depth := -1, 0
	for {
		batch = batch[:0]
		opens := 0
		var srcErr error
		for len(batch) < encoding.DefaultBatch {
			e, err := src.Next()
			if err != nil {
				srcErr = err
				break
			}
			if e.Kind == encoding.Open {
				opens++
			}
			batch = append(batch, e)
		}
		if len(batch) > 0 {
			stats.Events += len(batch)
			anyHits := false
			for li := range bes {
				q := loose[li]
				coded[li] = encoding.CodeEvents(coders[li], batch, coded[li][:0])
				hits[q] = bes[li].SelectBatch(coded[li], hits[q][:0])
				next[q] = 0
				anyHits = anyHits || len(hits[q]) > 0
			}
			for gi := range gevs {
				g := &groups[gi]
				for _, q := range g.Queries {
					hits[q] = hits[q][:0]
					next[q] = 0
				}
				gcoded[gi] = encoding.CodeEvents(gcoders[gi], batch, gcoded[gi][:0])
				ghits[gi], gmasks[gi] = gevs[gi].SelectBatchMasks(gcoded[gi], ghits[gi][:0], gmasks[gi][:0])
				words := g.Machine.MaskWords()
				for h, j := range ghits[gi] {
					for wi, word := range gmasks[gi][h*words : (h+1)*words] {
						for word != 0 {
							q := g.Queries[wi*64+bits.TrailingZeros64(word)]
							word &= word - 1
							hits[q] = append(hits[q], j)
							anyHits = true
						}
					}
				}
			}
			if !anyHits && c == nil {
				pos += opens
				depth += 2*opens - len(batch)
			} else {
				for j := range batch {
					if batch[j].Kind != encoding.Open {
						depth--
						continue
					}
					pos++
					depth++
					if c != nil {
						c.Depth.Observe(depth)
					}
					for q := 0; q < n; q++ {
						if next[q] < len(hits[q]) && hits[q][next[q]] == int32(j) {
							next[q]++
							stats.Matches[q]++
							if c != nil {
								c.Matches.Inc()
								// Batched emission: decided at batch index
								// j, confirmed after index len(batch)-1.
								c.Latency.Observe(len(batch) - 1 - j)
							}
							if fn != nil {
								fn(MultiMatch{Query: q, Match: Match{Pos: pos, Depth: depth, Label: batch[j].Label}})
							}
						}
					}
				}
			}
		}
		if srcErr == io.EOF {
			return stats, nil
		}
		if srcErr != nil {
			return stats, srcErr
		}
	}
}

// selectParallel fans the product groups and the loose queries — and, for
// chunkable machines, their chunks — across the shared worker pool, then
// merges the per-query match streams back into the exact emission order of
// the sequential pass (position, then query index). A product group is one
// chunk-parallel run for its whole member set (internal/product's
// two-phase driver); each query of the group owns its own demuxed stream,
// so the merge below is oblivious to how a stream was produced.
func (m *MultiQuery) selectParallel(src encoding.Source, opt Options, evs []core.Evaluator, plan product.Plan, stats MultiStats, fn func(MultiMatch)) (MultiStats, error) {
	c := opt.Collector
	events, err := encoding.ReadAll(src)
	stats.Events = len(events)
	if err != nil {
		if c != nil {
			c.Events.Add(int64(len(events)) * int64(len(evs)))
		}
		return stats, err
	}
	stats.Workers = opt.Workers
	stats.Pipeline = PipelineCoded
	for _, i := range plan.Loose {
		ev := evs[i]
		if cm, ok := ev.(core.Chunkable); ok {
			if !parallel.Coded(cm) {
				stats.Pipeline = PipelineString
			}
		} else if !core.CodedCapable(ev) {
			stats.Pipeline = PipelineString
		}
	}
	perQuery := make([][]Match, len(evs))
	var wg sync.WaitGroup
	for gi := range plan.Groups {
		g := plan.Groups[gi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each query index belongs to exactly one group, so appends to
			// perQuery race with no other goroutine.
			product.SelectChunks(parallel.Shared(), g.Machine, events, opt.Workers, c, func(bit int, cm core.Match) {
				q := g.Queries[bit]
				perQuery[q] = append(perQuery[q], Match{Pos: cm.Pos, Depth: cm.Depth, Label: cm.Label})
			})
		}()
	}
	for _, i := range plan.Loose {
		i, ev := i, evs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			collect := func(cm core.Match) {
				perQuery[i] = append(perQuery[i], Match{Pos: cm.Pos, Depth: cm.Depth, Label: cm.Label})
			}
			if cm, ok := ev.(core.Chunkable); ok {
				parallel.SelectObs(parallel.Shared(), cm, events, opt.Workers, c, collect)
				return
			}
			if c != nil {
				c.SeqFallbacks.Inc()
			}
			_, _ = core.SelectCodedObs(ev, c, encoding.NewSliceSource(events), collect)
		}()
	}
	wg.Wait()
	var mergeStart time.Time
	if c != nil {
		mergeStart = time.Now()
		defer func() {
			c.Phases[obs.PhaseMerge].Observe(time.Since(mergeStart))
		}()
	}
	next := make([]int, len(perQuery))
	for {
		best := -1
		for qi := range perQuery {
			if next[qi] >= len(perQuery[qi]) {
				continue
			}
			if best < 0 || perQuery[qi][next[qi]].Pos < perQuery[best][next[best]].Pos {
				best = qi
			}
		}
		if best < 0 {
			return stats, nil
		}
		mt := perQuery[best][next[best]]
		next[best]++
		stats.Matches[best]++
		if fn != nil {
			fn(MultiMatch{Query: best, Match: mt})
		}
	}
}
