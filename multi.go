package stackless

import (
	"fmt"
	"io"
	"sync"
	"time"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/obs"
	"stackless/internal/parallel"
)

// Multi-query evaluation: run several path queries over one document in a
// single streaming pass. This is the workload the paper's introduction
// highlights (factoring the dominant parsing cost across queries, as in
// SAX-based systems): the document is scanned once, and each query's
// machine steps on every event.

// MultiQuery is a set of compiled queries evaluated together.
type MultiQuery struct {
	queries []*Query
}

// NewMultiQuery groups queries for single-pass evaluation.
func NewMultiQuery(queries ...*Query) (*MultiQuery, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("stackless: empty multi-query")
	}
	return &MultiQuery{queries: queries}, nil
}

// MultiMatch is a selected node together with the index of the query that
// selected it.
type MultiMatch struct {
	Query int
	Match
}

// MultiStats describes a multi-query run.
type MultiStats struct {
	// Strategies per query.
	Strategies []Strategy
	// Events processed once for the whole batch.
	Events int
	// Matches per query.
	Matches []int
	// Workers used for chunk-parallel evaluation (1 = sequential pass);
	// Options.Workers clamped to GOMAXPROCS, as in Stats.
	Workers int
	// Pipeline actually used: PipelineCoded when every query's machine ran
	// the compiled symbol-coded pipeline, PipelineString when at least one
	// query took the per-event path. The sequential coded fast path steps
	// each machine in whole batches and requires all machines to compile
	// and no Collector (instrumented runs keep the per-event pass).
	Pipeline Pipeline
}

// SelectXML streams the document once and reports each query's matches.
func (m *MultiQuery) SelectXML(r io.Reader, opt Options, fn func(MultiMatch)) (MultiStats, error) {
	return m.selectSource(encoding.NewXMLScanner(r), MarkupEncoding, opt, fn)
}

// SelectJSON streams a JSON document once under the term encoding.
func (m *MultiQuery) SelectJSON(r io.Reader, opt Options, fn func(MultiMatch)) (MultiStats, error) {
	return m.selectSource(encoding.NewJSONSource(r), TermEncoding, opt, fn)
}

func (m *MultiQuery) selectSource(src encoding.Source, enc Encoding, opt Options, fn func(MultiMatch)) (MultiStats, error) {
	src = opt.guard(src)
	opt.Workers = effectiveWorkers(opt.Workers)
	c := opt.Collector
	stats := MultiStats{
		Strategies: make([]Strategy, len(m.queries)),
		Matches:    make([]int, len(m.queries)),
	}
	evs := make([]core.Evaluator, len(m.queries))
	for i, q := range m.queries {
		var err error
		if opt.ForceStack {
			evs[i], stats.Strategies[i] = q.stackQuery(), Stack
		} else {
			evs[i], stats.Strategies[i], err = q.queryEvaluator(enc, !opt.ForbidStack)
		}
		if err != nil {
			return stats, fmt.Errorf("query %d (%s): %w", i, q, err)
		}
		if c != nil {
			core.Instrument(evs[i], c)
			if stats.Strategies[i] == Stack {
				c.StackFallbacks.Inc()
			}
		}
		evs[i].Reset()
	}
	if opt.Workers > 1 {
		return m.selectParallel(src, opt, evs, stats, fn)
	}
	stats.Workers = 1
	if c == nil && allCoded(evs) {
		stats.Pipeline = PipelineCoded
		return m.selectBatched(src, evs, stats, fn)
	}
	stats.Pipeline = PipelineString
	pos := -1
	depth := 0
	// Every machine steps on every event, so the collector counts events
	// per machine (matching the parallel fan-out, where each query is its
	// own pass over the buffered events).
	if c != nil {
		defer func() {
			c.Events.Add(int64(stats.Events) * int64(len(evs)))
		}()
	}
	for {
		e, err := src.Next()
		if err == io.EOF {
			return stats, nil
		}
		if err != nil {
			return stats, err
		}
		stats.Events++
		if e.Kind == encoding.Open {
			pos++
			depth++
			if c != nil {
				c.Depth.Observe(depth)
			}
		} else {
			depth--
		}
		for i, ev := range evs {
			ev.Step(e)
			if e.Kind == encoding.Open && ev.Accepting() {
				stats.Matches[i]++
				if c != nil {
					c.Matches.Inc()
				}
				if fn != nil {
					fn(MultiMatch{Query: i, Match: Match{Pos: pos, Depth: depth, Label: e.Label}})
				}
			}
		}
	}
}

// allCoded reports whether every machine supports the compiled pipeline.
func allCoded(evs []core.Evaluator) bool {
	for _, ev := range evs {
		if !core.CodedCapable(ev) {
			return false
		}
	}
	return true
}

// selectBatched is the compiled fast path of the sequential multi-query
// pass: the document is read in batches, each machine codes the batch
// under its own alphabet (one reusable buffer per machine) and steps it
// whole; matches are replayed from the per-machine hit lists in the exact
// (position, query) order of the per-event pass.
//
//treelint:plain
func (m *MultiQuery) selectBatched(src encoding.Source, evs []core.Evaluator, stats MultiStats, fn func(MultiMatch)) (MultiStats, error) {
	n := len(evs)
	bes := make([]core.BatchEvaluator, n)
	coders := make([]*alphabet.Coder, n)
	coded := make([][]encoding.CodedEvent, n)
	hits := make([][]int32, n)
	next := make([]int, n)
	for i, ev := range evs {
		bes[i] = ev.(core.BatchEvaluator)
		coders[i] = alphabet.NewCoder(bes[i].CodeAlphabet())
	}
	batch := make([]encoding.Event, 0, encoding.DefaultBatch)
	pos, depth := -1, 0
	for {
		batch = batch[:0]
		opens := 0
		var srcErr error
		for len(batch) < encoding.DefaultBatch {
			e, err := src.Next()
			if err != nil {
				srcErr = err
				break
			}
			if e.Kind == encoding.Open {
				opens++
			}
			batch = append(batch, e)
		}
		if len(batch) > 0 {
			stats.Events += len(batch)
			anyHits := false
			for i := range bes {
				coded[i] = encoding.CodeEvents(coders[i], batch, coded[i][:0])
				hits[i] = bes[i].SelectBatch(coded[i], hits[i][:0])
				next[i] = 0
				anyHits = anyHits || len(hits[i]) > 0
			}
			if !anyHits {
				pos += opens
				depth += 2*opens - len(batch)
			} else {
				for j := range batch {
					if batch[j].Kind != encoding.Open {
						depth--
						continue
					}
					pos++
					depth++
					for i := range bes {
						if next[i] < len(hits[i]) && hits[i][next[i]] == int32(j) {
							next[i]++
							stats.Matches[i]++
							if fn != nil {
								fn(MultiMatch{Query: i, Match: Match{Pos: pos, Depth: depth, Label: batch[j].Label}})
							}
						}
					}
				}
			}
		}
		if srcErr == io.EOF {
			return stats, nil
		}
		if srcErr != nil {
			return stats, srcErr
		}
	}
}

// selectParallel fans the queries — and, for chunkable machines, their
// chunks — across the shared worker pool, then merges the per-query match
// streams back into the exact emission order of the sequential pass
// (position, then query index).
func (m *MultiQuery) selectParallel(src encoding.Source, opt Options, evs []core.Evaluator, stats MultiStats, fn func(MultiMatch)) (MultiStats, error) {
	c := opt.Collector
	events, err := encoding.ReadAll(src)
	stats.Events = len(events)
	if err != nil {
		if c != nil {
			c.Events.Add(int64(len(events)) * int64(len(evs)))
		}
		return stats, err
	}
	stats.Workers = opt.Workers
	stats.Pipeline = PipelineCoded
	for _, ev := range evs {
		if cm, ok := ev.(core.Chunkable); ok {
			if !parallel.Coded(cm) {
				stats.Pipeline = PipelineString
			}
		} else if !core.CodedCapable(ev) {
			stats.Pipeline = PipelineString
		}
	}
	perQuery := make([][]Match, len(evs))
	var wg sync.WaitGroup
	for i, ev := range evs {
		i, ev := i, ev
		wg.Add(1)
		go func() {
			defer wg.Done()
			collect := func(cm core.Match) {
				perQuery[i] = append(perQuery[i], Match{Pos: cm.Pos, Depth: cm.Depth, Label: cm.Label})
			}
			if cm, ok := ev.(core.Chunkable); ok {
				parallel.SelectObs(parallel.Shared(), cm, events, opt.Workers, c, collect)
				return
			}
			if c != nil {
				c.SeqFallbacks.Inc()
			}
			_, _ = core.SelectCodedObs(ev, c, encoding.NewSliceSource(events), collect)
		}()
	}
	wg.Wait()
	var mergeStart time.Time
	if c != nil {
		mergeStart = time.Now()
		defer func() {
			c.Phases[obs.PhaseMerge].Observe(time.Since(mergeStart))
		}()
	}
	next := make([]int, len(perQuery))
	for {
		best := -1
		for qi := range perQuery {
			if next[qi] >= len(perQuery[qi]) {
				continue
			}
			if best < 0 || perQuery[qi][next[qi]].Pos < perQuery[best][next[best]].Pos {
				best = qi
			}
		}
		if best < 0 {
			return stats, nil
		}
		mt := perQuery[best][next[best]]
		next[best]++
		stats.Matches[best]++
		if fn != nil {
			fn(MultiMatch{Query: best, Match: mt})
		}
	}
}
