package stackless

import (
	"fmt"
	"io"
	"sync"

	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/parallel"
)

// Multi-query evaluation: run several path queries over one document in a
// single streaming pass. This is the workload the paper's introduction
// highlights (factoring the dominant parsing cost across queries, as in
// SAX-based systems): the document is scanned once, and each query's
// machine steps on every event.

// MultiQuery is a set of compiled queries evaluated together.
type MultiQuery struct {
	queries []*Query
}

// NewMultiQuery groups queries for single-pass evaluation.
func NewMultiQuery(queries ...*Query) (*MultiQuery, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("stackless: empty multi-query")
	}
	return &MultiQuery{queries: queries}, nil
}

// MultiMatch is a selected node together with the index of the query that
// selected it.
type MultiMatch struct {
	Query int
	Match
}

// MultiStats describes a multi-query run.
type MultiStats struct {
	// Strategies per query.
	Strategies []Strategy
	// Events processed once for the whole batch.
	Events int
	// Matches per query.
	Matches []int
	// Workers used for chunk-parallel evaluation (1 = sequential pass).
	Workers int
}

// SelectXML streams the document once and reports each query's matches.
func (m *MultiQuery) SelectXML(r io.Reader, opt Options, fn func(MultiMatch)) (MultiStats, error) {
	return m.selectSource(encoding.NewXMLScanner(r), MarkupEncoding, opt, fn)
}

// SelectJSON streams a JSON document once under the term encoding.
func (m *MultiQuery) SelectJSON(r io.Reader, opt Options, fn func(MultiMatch)) (MultiStats, error) {
	return m.selectSource(encoding.NewJSONSource(r), TermEncoding, opt, fn)
}

func (m *MultiQuery) selectSource(src encoding.Source, enc Encoding, opt Options, fn func(MultiMatch)) (MultiStats, error) {
	src = opt.guard(src)
	stats := MultiStats{
		Strategies: make([]Strategy, len(m.queries)),
		Matches:    make([]int, len(m.queries)),
	}
	evs := make([]core.Evaluator, len(m.queries))
	for i, q := range m.queries {
		var err error
		if opt.ForceStack {
			evs[i], stats.Strategies[i] = q.stackQuery(), Stack
		} else {
			evs[i], stats.Strategies[i], err = q.queryEvaluator(enc, !opt.ForbidStack)
		}
		if err != nil {
			return stats, fmt.Errorf("query %d (%s): %w", i, q, err)
		}
		evs[i].Reset()
	}
	if opt.Workers > 1 {
		return m.selectParallel(src, opt, evs, stats, fn)
	}
	stats.Workers = 1
	pos := -1
	depth := 0
	for {
		e, err := src.Next()
		if err == io.EOF {
			return stats, nil
		}
		if err != nil {
			return stats, err
		}
		stats.Events++
		if e.Kind == encoding.Open {
			pos++
			depth++
		} else {
			depth--
		}
		for i, ev := range evs {
			ev.Step(e)
			if e.Kind == encoding.Open && ev.Accepting() {
				stats.Matches[i]++
				if fn != nil {
					fn(MultiMatch{Query: i, Match: Match{Pos: pos, Depth: depth, Label: e.Label}})
				}
			}
		}
	}
}

// selectParallel fans the queries — and, for chunkable machines, their
// chunks — across the shared worker pool, then merges the per-query match
// streams back into the exact emission order of the sequential pass
// (position, then query index).
func (m *MultiQuery) selectParallel(src encoding.Source, opt Options, evs []core.Evaluator, stats MultiStats, fn func(MultiMatch)) (MultiStats, error) {
	events, err := encoding.ReadAll(src)
	stats.Events = len(events)
	if err != nil {
		return stats, err
	}
	stats.Workers = opt.Workers
	perQuery := make([][]Match, len(evs))
	var wg sync.WaitGroup
	for i, ev := range evs {
		i, ev := i, ev
		wg.Add(1)
		go func() {
			defer wg.Done()
			collect := func(cm core.Match) {
				perQuery[i] = append(perQuery[i], Match{Pos: cm.Pos, Depth: cm.Depth, Label: cm.Label})
			}
			if cm, ok := ev.(core.Chunkable); ok {
				parallel.Select(parallel.Shared(), cm, events, opt.Workers, collect)
				return
			}
			_, _ = core.Select(ev, encoding.NewSliceSource(events), collect)
		}()
	}
	wg.Wait()
	next := make([]int, len(perQuery))
	for {
		best := -1
		for qi := range perQuery {
			if next[qi] >= len(perQuery[qi]) {
				continue
			}
			if best < 0 || perQuery[qi][next[qi]].Pos < perQuery[best][next[best]].Pos {
				best = qi
			}
		}
		if best < 0 {
			return stats, nil
		}
		mt := perQuery[best][next[best]]
		next[best]++
		stats.Matches[best]++
		if fn != nil {
			fn(MultiMatch{Query: best, Match: mt})
		}
	}
}
