package stackless

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"stackless/internal/encoding"
	"stackless/internal/gen"
)

// End-to-end differential coverage for multi-query product compilation
// (DESIGN.md §13) through the public API: the product path must be
// observationally identical to the fan-out it replaces — same matches, same
// emission order, same stats, same counters — and the instrumented run must
// stay on the compiled pipeline now that its counters flush per batch.

// multiRun collects a full MultiMatch stream through SelectXML.
func multiRun(t *testing.T, mq *MultiQuery, doc string, opt Options) ([]MultiMatch, MultiStats) {
	t.Helper()
	var got []MultiMatch
	stats, err := mq.SelectXML(strings.NewReader(doc), opt, func(m MultiMatch) {
		got = append(got, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

// TestMultiQueryProductDifferential drives random query sets — registerless
// (productable), stackless, and stack-only mixed — over random documents
// including out-of-alphabet labels, and checks three ways: product vs
// fan-out (noProduct) streams are identical, both agree with each query's
// own single-query Select, and ProductGroups reflects the plan actually
// taken at every worker count.
func TestMultiQueryProductDifferential(t *testing.T) {
	withProcs(t, 8)
	pool := []*Query{
		MustCompileRegex("a.*b", abc),
		MustCompileRegex(".*a", abc),
		MustCompileRegex("a.*c", abc),
		MustCompileRegex("b.*a", abc),
		MustCompileRegex("a.*(b.*)?c", abc),
		MustCompileRegex(".*a.*b", abc), // stackless
		MustCompileRegex(".*b.*c", abc), // stackless
		MustCompileRegex(".*ab", abc),   // stack-only
	}
	labels := []string{"a", "b", "c", "zz"} // zz poisons every compiled machine
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 25; trial++ {
		perm := rng.Perm(len(pool))
		set := make([]*Query, 2+rng.Intn(len(pool)-1))
		for i := range set {
			set[i] = pool[perm[i]]
		}
		mq, err := NewMultiQuery(set...)
		if err != nil {
			t.Fatal(err)
		}
		mqNo, err := NewMultiQuery(set...)
		if err != nil {
			t.Fatal(err)
		}
		mqNo.noProduct = true
		doc := encoding.XMLString(gen.RandomTree(rng, labels, 1+rng.Intn(60)))

		// Single-query oracle: each query's own sequential pass.
		single := make([][]Match, len(set))
		for qi, q := range set {
			if _, err := q.SelectXML(strings.NewReader(doc), Options{}, func(m Match) {
				single[qi] = append(single[qi], m)
			}); err != nil {
				t.Fatal(err)
			}
		}

		for _, workers := range []int{1, 2, 8} {
			opt := Options{Workers: workers}
			gotP, statsP := multiRun(t, mq, doc, opt)
			gotF, statsF := multiRun(t, mqNo, doc, opt)
			if !reflect.DeepEqual(gotP, gotF) {
				t.Fatalf("trial %d workers %d: product stream %v, fan-out stream %v", trial, workers, gotP, gotF)
			}
			if !reflect.DeepEqual(statsP.Matches, statsF.Matches) || statsP.Events != statsF.Events {
				t.Fatalf("trial %d workers %d: product stats %+v, fan-out stats %+v", trial, workers, statsP, statsF)
			}
			demux := make([][]Match, len(set))
			for _, m := range gotP {
				demux[m.Query] = append(demux[m.Query], m.Match)
			}
			for qi := range set {
				if !reflect.DeepEqual(demux[qi], single[qi]) {
					t.Fatalf("trial %d workers %d query %d (%s): multi %v, single %v",
						trial, workers, qi, set[qi], demux[qi], single[qi])
				}
			}
			// The plan is built whenever the batched or parallel engine runs;
			// a stack-only member keeps the sequential pass on the per-event
			// path, which never products.
			registerless := 0
			for _, s := range statsP.Strategies {
				if s == Registerless {
					registerless++
				}
			}
			wantGroups := 0
			if registerless >= 2 && !(workers == 1 && statsP.Pipeline == PipelineString) {
				wantGroups = 1
			}
			if statsP.ProductGroups != wantGroups {
				t.Fatalf("trial %d workers %d: ProductGroups = %d, want %d (strategies %v, pipeline %v)",
					trial, workers, statsP.ProductGroups, wantGroups, statsP.Strategies, statsP.Pipeline)
			}
			if statsF.ProductGroups != 0 {
				t.Fatalf("trial %d workers %d: noProduct reports %d product groups", trial, workers, statsF.ProductGroups)
			}
		}
	}
}

// TestMultiQueryProductGroupsStats pins the MultiStats.ProductGroups surface
// on the three paths a run can take: the compiled pass products compatible
// queries, noProduct fans out, and the pushdown path (here forced via
// ForceStack, itself coded now) never builds a plan.
func TestMultiQueryProductGroupsStats(t *testing.T) {
	mq, err := NewMultiQuery(MustCompileRegex("a.*b", abc), MustCompileRegex(".*a", abc))
	if err != nil {
		t.Fatal(err)
	}
	doc := "<a><b></b><c></c></a>"
	_, stats := multiRun(t, mq, doc, Options{})
	if stats.Pipeline != PipelineCoded || stats.ProductGroups != 1 {
		t.Fatalf("compiled pass: pipeline %v, groups %d, want coded/1", stats.Pipeline, stats.ProductGroups)
	}
	mq.noProduct = true
	_, stats = multiRun(t, mq, doc, Options{})
	if stats.ProductGroups != 0 {
		t.Fatalf("noProduct: groups %d, want 0", stats.ProductGroups)
	}
	mq.noProduct = false
	_, stats = multiRun(t, mq, doc, Options{ForceStack: true})
	if stats.Pipeline != PipelineCoded || stats.ProductGroups != 0 {
		t.Fatalf("stack path: pipeline %v, groups %d, want coded/0", stats.Pipeline, stats.ProductGroups)
	}
}

// TestMultiQueryInstrumentedStaysCoded is the regression test for the
// instrumented-path gap: attaching a collector used to bump the sequential
// multi-query pass off the compiled pipeline. Now the batched pass flushes
// counters itself, so an instrumented run must report PipelineCoded, emit
// the same matches as an uninstrumented one, and keep the multi-query
// accounting convention — Events per machine, one Depth sample per open,
// one Matches tick per emission.
func TestMultiQueryInstrumentedStaysCoded(t *testing.T) {
	queries := []*Query{
		MustCompileRegex("a.*b", abc),
		MustCompileRegex(".*a", abc),
		MustCompileRegex("a.*c", abc),
	}
	mq, err := NewMultiQuery(queries...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(137))
	for trial, labels := range [][]string{abc, {"a", "b", "c", "zz"}} {
		doc := encoding.XMLString(gen.RandomTree(rng, labels, 150))
		plain, plainStats := multiRun(t, mq, doc, Options{})
		c := NewCollector()
		inst, stats := multiRun(t, mq, doc, Options{Collector: c})
		if stats.Pipeline != PipelineCoded {
			t.Fatalf("trial %d: instrumented pipeline = %v, want coded", trial, stats.Pipeline)
		}
		if stats.ProductGroups != 1 {
			t.Fatalf("trial %d: instrumented ProductGroups = %d, want 1", trial, stats.ProductGroups)
		}
		if !reflect.DeepEqual(inst, plain) || !reflect.DeepEqual(stats.Matches, plainStats.Matches) {
			t.Fatalf("trial %d: instrumented run diverges: %v vs %v", trial, inst, plain)
		}
		if got, want := c.Events.Load(), int64(len(queries)*stats.Events); got != want {
			t.Fatalf("trial %d: Events = %d, want %d (events × queries)", trial, got, want)
		}
		total := 0
		for _, n := range stats.Matches {
			total += n
		}
		if got := c.Matches.Load(); got != int64(total) {
			t.Fatalf("trial %d: Matches = %d, want %d", trial, got, total)
		}
		// Markup encoding: every node is one open and one close.
		if got, want := c.Depth.Count(), int64(stats.Events/2); got != want {
			t.Fatalf("trial %d: Depth samples = %d, want %d (one per open)", trial, got, want)
		}
	}
}

// TestMultiQueryInstrumentedAllocs pins that the batched counter flushing
// costs no per-event allocations: an instrumented sequential run allocates
// no more than a handful of objects beyond the uninstrumented one (both on
// the compiled pipeline, measured over an in-memory event source).
func TestMultiQueryInstrumentedAllocs(t *testing.T) {
	mq, err := NewMultiQuery(
		MustCompileRegex("a.*b", abc),
		MustCompileRegex(".*a", abc),
		MustCompileRegex("a.*c", abc),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(139))
	events := encoding.Markup(gen.RandomTree(rng, abc, 400))
	src := encoding.NewSliceSource(events)
	c := NewCollector()
	run := func(col *Collector) {
		src.Rewind()
		stats, err := mq.selectSource(src, MarkupEncoding, Options{Collector: col}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Pipeline != PipelineCoded {
			t.Fatalf("pipeline = %v, want coded", stats.Pipeline)
		}
	}
	run(nil) // warm-up: compile tables, populate the product cache
	run(c)
	base := testing.AllocsPerRun(20, func() { run(nil) })
	instr := testing.AllocsPerRun(20, func() { run(c) })
	if instr > base+8 {
		t.Errorf("instrumented run allocates %.1f per run vs %.1f plain — counter flushing should be allocation-free", instr, base)
	}
}
