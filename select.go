package stackless

import (
	"io"
	"runtime"

	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/obs"
	"stackless/internal/parallel"
	"stackless/internal/stackeval"
)

// Collector aggregates observability metrics across evaluations: atomic
// counters (events, matches, fallbacks, chunk cuts), bounded depth /
// register / stack-depth / queue-depth histograms and per-phase timings.
// The alias lets callers use it without importing the internal package;
// obtain one with NewCollector, attach it via Options.Collector, and read
// it with Snapshot (JSON-ready) or String (expvar.Var-compatible). One
// collector may be shared by concurrent evaluations. Attaching a collector
// adds a few percent of overhead; a nil Collector is completely free (a
// nil-check per hook, zero allocations — see DESIGN.md §9).
type Collector = obs.Collector

// ObsSnapshot is the JSON-ready point-in-time view of a Collector.
type ObsSnapshot = obs.Snapshot

// NewCollector returns an empty metrics collector.
func NewCollector() *Collector { return &obs.Collector{} }

// Match is one selected node, reported at its opening tag (pre-selection,
// Section 2.3) so callers can stream the node's subtree without buffering.
type Match struct {
	// Pos is the node's preorder position in the document, 0-based.
	Pos int
	// Depth is the node's depth; the root has depth 1.
	Depth int
	// Label is the node's label.
	Label string
}

// Pipeline identifies which event pipeline an evaluation ran. It is an
// alias of core.Pipeline so the engine and the public API share one enum;
// treelint's enumswitch holds switches over it to totality.
type Pipeline = core.Pipeline

// Re-exported pipeline members, so callers compare Stats.Pipeline against
// typed constants instead of raw strings.
const (
	PipelineCoded  = core.PipelineCoded
	PipelineString = core.PipelineString
)

// EarliestMode says which earliest-emission guarantee a run carried; it is
// an alias of core.EarliestMode (see DESIGN.md §14).
type EarliestMode = core.EarliestMode

// Re-exported earliest modes, so callers compare Stats.Earliest against
// typed constants.
const (
	// EarliestOff: Options.Earliest was not set (the default).
	EarliestOff = core.EarliestOff
	// EarliestExact: per-event emission with zero deferral plus the
	// compiled earliest-decision flags — the run stops stepping at the
	// earliest event proving no further match is possible.
	EarliestExact = core.EarliestExact
	// EarliestApprox: the conservative safe approximation — every match
	// still emits at its deciding event (sequential runs) or in document
	// order at the join (parallel runs), but without a mid-stream
	// no-future-matches decision.
	EarliestApprox = core.EarliestApprox
)

// Stats describes how an evaluation ran.
type Stats struct {
	// Strategy actually used (registerless / stackless / stack).
	Strategy Strategy
	// Events processed (opening + closing tags).
	Events int
	// Matches reported.
	Matches int
	// Workers that evaluated chunks concurrently: 1 for a sequential run
	// (including when the strategy cannot be chunked), the effective worker
	// count — Options.Workers clamped to GOMAXPROCS — for a chunk-parallel
	// one.
	Workers int
	// Pipeline actually used: PipelineCoded when the chosen machine
	// compiled to the symbol-coded batch pipeline (dense transition
	// tables, see DESIGN.md §11), PipelineString for the per-event
	// label-resolving path.
	Pipeline Pipeline
	// Chunks the stream was split into: 1 for any sequential pass,
	// including parallel requests that degraded (see Fallback).
	Chunks int
	// CutPolicy of the chosen machine ("none", "newmin", "belowentry",
	// "all") when chunk-parallel evaluation was requested; empty otherwise.
	CutPolicy string
	// Fallback qualifies how a Workers>1 request actually ran.
	// Sequential degradations: "strategy" (the machine is not chunkable —
	// the synopsis EL machine), "cutall" (unrestricted DRA: every event
	// is a boundary), "short" (too few events to cut), or "deep" (the
	// pushdown's speculative chunking was not viable: the stream's depth
	// is too large against the chunk size, see
	// parallel.SpeculationViable). "speculative" marks a run that *did*
	// fan out, on the pushdown's speculative CutBoundedDepth summaries
	// (DESIGN.md §16). Empty when the run fanned out on an exact summary
	// or was never asked to parallelize.
	Fallback string
	// Earliest reports which earliest-emission mode the run carried when
	// Options.Earliest was set: EarliestExact when the chosen machine
	// carries compiled earliest-decision flags (tag DFAs and stackless
	// machines), EarliestApprox for the safe approximation (all other
	// families, and every Workers>1 run, which buffers and joins).
	// EarliestOff when earliest emission was not requested.
	Earliest EarliestMode
}

// Options tune evaluation. The zero value is the default: pick the
// cheapest strategy and fall back to the stack when the theorems say a
// stackless machine cannot exist.
type Options struct {
	// ForbidStack makes evaluation fail instead of falling back to the
	// pushdown simulation (useful to surface Theorem 3.1 violations).
	ForbidStack bool
	// ForceStack skips the stackless machines entirely (baseline runs).
	ForceStack bool
	// TrustInput skips the O(1) tag-balance guard. Weak validation assumes
	// well-formed input; by default the engine still rejects streams whose
	// tags do not balance (gross transport errors), at one counter's cost.
	TrustInput bool
	// Workers > 1 evaluates the stream chunk-parallel on the shared worker
	// pool: the events are buffered, split into chunks, simulated
	// concurrently from every machine state and joined (see
	// internal/parallel and DESIGN.md §8). The match set is identical to
	// the sequential run. The count is clamped to GOMAXPROCS — requesting
	// more workers than cores only adds join overhead (EXPERIMENTS.md);
	// Stats.Workers reports the clamped value. Falls back to sequential
	// evaluation when the chosen strategy cannot be chunked (the synopsis
	// EL machine) or when the pushdown fallback's speculative chunking is
	// not viable for the stream (see Stats.Fallback); note that chunking
	// trades the model's O(1) memory for throughput by buffering the
	// event stream.
	// In a MultiQuery run each product group is one chunk-parallel pass
	// for its whole member set (DESIGN.md §13).
	Workers int
	// Earliest requests the earliest-emission latency contract (DESIGN.md
	// §14): every match is reported at the exact event that decides it,
	// never deferred to a batch boundary, and machines with compiled
	// earliest-decision flags stop stepping at the earliest event proving
	// no further match is possible. The match set, order and errors are
	// identical to the default run; the trade is throughput — the
	// sequential earliest driver runs the per-event string path, not the
	// batched coded one. Stats.Earliest reports which mode actually ran.
	// With Workers > 1 the chunk-parallel engine is used unchanged
	// (matches still arrive in document order at the join) and the run
	// reports the safe approximation.
	Earliest bool
	// Collector, when non-nil, receives detailed metrics for the run —
	// counters, histograms and phase timings beyond what Stats reports
	// (see NewCollector and DESIGN.md §9). Nil disables collection at
	// zero cost.
	Collector *Collector
}

func (o Options) guard(src encoding.Source) encoding.Source {
	if o.TrustInput {
		return src
	}
	return encoding.CheckBalance(src)
}

// effectiveWorkers clamps a requested worker count to GOMAXPROCS: beyond
// the core count extra chunks only add boundary-replay and join work (the
// workers=2-on-1-core regression in EXPERIMENTS.md).
func effectiveWorkers(n int) int {
	if p := runtime.GOMAXPROCS(0); n > p {
		return p
	}
	return n
}

// SelectXML streams an XML document and calls fn for each node selected by
// the query, in document order.
func (q *Query) SelectXML(r io.Reader, opt Options, fn func(Match)) (Stats, error) {
	return q.selectSource(encoding.NewXMLScanner(r), MarkupEncoding, opt, fn)
}

// SelectXMLFull uses the encoding/xml bridge (slower, full XML support).
func (q *Query) SelectXMLFull(r io.Reader, opt Options, fn func(Match)) (Stats, error) {
	return q.selectSource(encoding.NewStdXMLSource(r), MarkupEncoding, opt, fn)
}

// SelectJSON streams a JSON document under the term encoding. Object keys
// are node labels; array elements are labelled "item"; the document root is
// labelled "$" (see internal/encoding).
func (q *Query) SelectJSON(r io.Reader, opt Options, fn func(Match)) (Stats, error) {
	return q.selectSource(encoding.NewJSONSource(r), TermEncoding, opt, fn)
}

// SelectTerm streams a brace-notation document (a{b{}c{}}) under the term
// encoding.
func (q *Query) SelectTerm(r io.Reader, opt Options, fn func(Match)) (Stats, error) {
	return q.selectSource(encoding.NewTermScanner(r), TermEncoding, opt, fn)
}

func (q *Query) selectSource(src encoding.Source, enc Encoding, opt Options, fn func(Match)) (Stats, error) {
	src = opt.guard(src)
	opt.Workers = effectiveWorkers(opt.Workers)
	c := opt.Collector
	var ev core.Evaluator
	var st Strategy
	var err error
	if opt.ForceStack {
		ev, st, err = q.stackQuery(), Stack, nil
	} else {
		ev, st, err = q.queryEvaluator(enc, !opt.ForbidStack)
	}
	if err != nil {
		return Stats{Strategy: st}, err
	}
	if c != nil {
		core.Instrument(ev, c)
		if st == Stack {
			c.StackFallbacks.Inc()
		}
	}
	stats := Stats{Strategy: st, Workers: 1, Chunks: 1}
	report := func(m core.Match) {
		stats.Matches++
		if fn != nil {
			fn(Match{Pos: m.Pos, Depth: m.Depth, Label: m.Label})
		}
	}
	if cm, ok := ev.(core.Chunkable); ok && opt.Workers > 1 {
		if parallel.Coded(cm) {
			stats.Pipeline = PipelineCoded
		} else {
			stats.Pipeline = PipelineString
		}
		if opt.Earliest {
			// The chunk-parallel engine buffers the stream and emits at
			// the join; document order survives, but only the safe
			// approximation's latency bound does.
			stats.Earliest = EarliestApprox
		}
		events, err := encoding.ReadAll(src)
		stats.Events = len(events)
		if err != nil {
			if c != nil {
				c.Events.Add(int64(len(events)))
			}
			return stats, err
		}
		stats.Workers = opt.Workers
		policy := cm.Cut()
		stats.CutPolicy = policy.String()
		cuts := parallel.SplitPoints(len(events), opt.Workers)
		switch {
		case policy == core.CutAll:
			stats.Fallback = "cutall"
		case len(cuts) == 0:
			stats.Fallback = "short"
		case policy == core.CutBoundedDepth && !parallel.SpeculationViable(events, len(cuts)+1):
			stats.Fallback = "deep"
		default:
			stats.Chunks = len(cuts) + 1
			if policy == core.CutBoundedDepth {
				stats.Fallback = "speculative"
			}
		}
		parallel.SelectObs(parallel.Shared(), cm, events, opt.Workers, c, report)
		return stats, nil
	}
	if opt.Workers > 1 {
		stats.Fallback = "strategy"
		if c != nil {
			c.SeqFallbacks.Inc()
		}
	}
	if opt.Earliest {
		// Earliest emission runs the per-event driver: matches emit at
		// their deciding Open, never at a batch boundary, at the cost of
		// the coded pipeline's throughput.
		stats.Pipeline = PipelineString
		stats.Earliest = core.EarliestClassOf(ev)
		events, err := core.SelectEarliestObs(ev, c, src, report)
		stats.Events = events
		return stats, err
	}
	if core.CodedCapable(ev) {
		stats.Pipeline = PipelineCoded
	} else {
		stats.Pipeline = PipelineString
	}
	events, err := core.SelectCodedObs(ev, c, src, report)
	stats.Events = events
	return stats, err
}

// RecognizeEL streams an XML document and reports whether some branch's
// label path belongs to the query language (the tree language EL).
func (q *Query) RecognizeEL(r io.Reader, opt Options) (bool, Stats, error) {
	return q.recognize(encoding.NewXMLScanner(r), MarkupEncoding, opt, q.elEvaluator, q.stackEL)
}

// RecognizeAL streams an XML document and reports whether every branch's
// label path belongs to the query language (the tree language AL) — the
// weak-validation semantics of Section 4.1.
func (q *Query) RecognizeAL(r io.Reader, opt Options) (bool, Stats, error) {
	return q.recognize(encoding.NewXMLScanner(r), MarkupEncoding, opt, q.alEvaluator, q.stackAL)
}

// RecognizeELTerm and RecognizeALTerm are the term-encoding variants over
// brace-notation input.
func (q *Query) RecognizeELTerm(r io.Reader, opt Options) (bool, Stats, error) {
	return q.recognize(encoding.NewTermScanner(r), TermEncoding, opt, q.elEvaluator, q.stackEL)
}

// RecognizeALTerm recognizes AL over brace-notation input.
func (q *Query) RecognizeALTerm(r io.Reader, opt Options) (bool, Stats, error) {
	return q.recognize(encoding.NewTermScanner(r), TermEncoding, opt, q.alEvaluator, q.stackAL)
}

func (q *Query) recognize(src encoding.Source, enc Encoding, opt Options,
	pickFn func(Encoding, bool) (core.Evaluator, Strategy, error),
	stackFn func() core.Evaluator) (bool, Stats, error) {
	src = opt.guard(src)
	opt.Workers = effectiveWorkers(opt.Workers)
	c := opt.Collector
	var ev core.Evaluator
	var st Strategy
	var err error
	if opt.ForceStack {
		ev, st = stackFn(), Stack
	} else {
		ev, st, err = pickFn(enc, !opt.ForbidStack)
	}
	if err != nil {
		return false, Stats{Strategy: st}, err
	}
	if c != nil {
		core.Instrument(ev, c)
		if st == Stack {
			c.StackFallbacks.Inc()
		}
	}
	stats := Stats{Strategy: st, Workers: 1, Chunks: 1}
	if cm, chunkable := ev.(core.Chunkable); chunkable && opt.Workers > 1 {
		if parallel.Coded(cm) {
			stats.Pipeline = PipelineCoded
		} else {
			stats.Pipeline = PipelineString
		}
		events, err := encoding.ReadAll(src)
		stats.Events = len(events)
		if err != nil {
			if c != nil {
				c.Events.Add(int64(len(events)))
			}
			return false, stats, err
		}
		stats.Workers = opt.Workers
		policy := cm.Cut()
		stats.CutPolicy = policy.String()
		cuts := parallel.SplitPoints(len(events), opt.Workers)
		switch {
		case policy == core.CutAll:
			stats.Fallback = "cutall"
		case len(cuts) == 0:
			stats.Fallback = "short"
		case policy == core.CutBoundedDepth && !parallel.SpeculationViable(events, len(cuts)+1):
			stats.Fallback = "deep"
		default:
			stats.Chunks = len(cuts) + 1
			if policy == core.CutBoundedDepth {
				stats.Fallback = "speculative"
			}
		}
		return parallel.RecognizeObs(parallel.Shared(), cm, events, opt.Workers, c), stats, nil
	}
	if opt.Workers > 1 {
		stats.Fallback = "strategy"
		if c != nil {
			c.SeqFallbacks.Inc()
		}
	}
	if core.CodedCapable(ev) {
		stats.Pipeline = PipelineCoded
	} else {
		stats.Pipeline = PipelineString
	}
	ok, err := core.RecognizeCodedObs(ev, c, src)
	return ok, stats, err
}

func (q *Query) stackQuery() core.Evaluator { return stackeval.QL(q.an.D) }
func (q *Query) stackEL() core.Evaluator    { return stackeval.EL(q.an.D) }
func (q *Query) stackAL() core.Evaluator    { return stackeval.AL(q.an.D) }
