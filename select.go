package stackless

import (
	"io"

	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/parallel"
	"stackless/internal/stackeval"
)

// Match is one selected node, reported at its opening tag (pre-selection,
// Section 2.3) so callers can stream the node's subtree without buffering.
type Match struct {
	// Pos is the node's preorder position in the document, 0-based.
	Pos int
	// Depth is the node's depth; the root has depth 1.
	Depth int
	// Label is the node's label.
	Label string
}

// Stats describes how an evaluation ran.
type Stats struct {
	// Strategy actually used (registerless / stackless / stack).
	Strategy Strategy
	// Events processed (opening + closing tags).
	Events int
	// Matches reported.
	Matches int
	// Workers that evaluated chunks concurrently: 1 for a sequential run
	// (including when the strategy cannot be chunked), Options.Workers for
	// a chunk-parallel one.
	Workers int
}

// Options tune evaluation. The zero value is the default: pick the
// cheapest strategy and fall back to the stack when the theorems say a
// stackless machine cannot exist.
type Options struct {
	// ForbidStack makes evaluation fail instead of falling back to the
	// pushdown simulation (useful to surface Theorem 3.1 violations).
	ForbidStack bool
	// ForceStack skips the stackless machines entirely (baseline runs).
	ForceStack bool
	// TrustInput skips the O(1) tag-balance guard. Weak validation assumes
	// well-formed input; by default the engine still rejects streams whose
	// tags do not balance (gross transport errors), at one counter's cost.
	TrustInput bool
	// Workers > 1 evaluates the stream chunk-parallel on the shared worker
	// pool: the events are buffered, split into Workers chunks, simulated
	// concurrently from every machine state and joined (see
	// internal/parallel and DESIGN.md §8). The match set is identical to
	// the sequential run. Falls back to sequential evaluation when the
	// chosen strategy cannot be chunked (the pushdown fallback and the
	// synopsis EL machine); note that chunking trades the model's O(1)
	// memory for throughput by buffering the event stream.
	Workers int
}

func (o Options) guard(src encoding.Source) encoding.Source {
	if o.TrustInput {
		return src
	}
	return encoding.CheckBalance(src)
}

// SelectXML streams an XML document and calls fn for each node selected by
// the query, in document order.
func (q *Query) SelectXML(r io.Reader, opt Options, fn func(Match)) (Stats, error) {
	return q.selectSource(encoding.NewXMLScanner(r), MarkupEncoding, opt, fn)
}

// SelectXMLFull uses the encoding/xml bridge (slower, full XML support).
func (q *Query) SelectXMLFull(r io.Reader, opt Options, fn func(Match)) (Stats, error) {
	return q.selectSource(encoding.NewStdXMLSource(r), MarkupEncoding, opt, fn)
}

// SelectJSON streams a JSON document under the term encoding. Object keys
// are node labels; array elements are labelled "item"; the document root is
// labelled "$" (see internal/encoding).
func (q *Query) SelectJSON(r io.Reader, opt Options, fn func(Match)) (Stats, error) {
	return q.selectSource(encoding.NewJSONSource(r), TermEncoding, opt, fn)
}

// SelectTerm streams a brace-notation document (a{b{}c{}}) under the term
// encoding.
func (q *Query) SelectTerm(r io.Reader, opt Options, fn func(Match)) (Stats, error) {
	return q.selectSource(encoding.NewTermScanner(r), TermEncoding, opt, fn)
}

func (q *Query) selectSource(src encoding.Source, enc Encoding, opt Options, fn func(Match)) (Stats, error) {
	src = opt.guard(src)
	var ev core.Evaluator
	var st Strategy
	var err error
	if opt.ForceStack {
		ev, st, err = q.stackQuery(), Stack, nil
	} else {
		ev, st, err = q.queryEvaluator(enc, !opt.ForbidStack)
	}
	if err != nil {
		return Stats{Strategy: st}, err
	}
	stats := Stats{Strategy: st, Workers: 1}
	report := func(m core.Match) {
		stats.Matches++
		if fn != nil {
			fn(Match{Pos: m.Pos, Depth: m.Depth, Label: m.Label})
		}
	}
	if cm, ok := ev.(core.Chunkable); ok && opt.Workers > 1 {
		events, err := encoding.ReadAll(src)
		stats.Events = len(events)
		if err != nil {
			return stats, err
		}
		stats.Workers = opt.Workers
		parallel.Select(parallel.Shared(), cm, events, opt.Workers, report)
		return stats, nil
	}
	events, err := core.Select(ev, src, report)
	stats.Events = events
	return stats, err
}

// RecognizeEL streams an XML document and reports whether some branch's
// label path belongs to the query language (the tree language EL).
func (q *Query) RecognizeEL(r io.Reader, opt Options) (bool, Stats, error) {
	return q.recognize(encoding.NewXMLScanner(r), MarkupEncoding, opt, q.elEvaluator, q.stackEL)
}

// RecognizeAL streams an XML document and reports whether every branch's
// label path belongs to the query language (the tree language AL) — the
// weak-validation semantics of Section 4.1.
func (q *Query) RecognizeAL(r io.Reader, opt Options) (bool, Stats, error) {
	return q.recognize(encoding.NewXMLScanner(r), MarkupEncoding, opt, q.alEvaluator, q.stackAL)
}

// RecognizeELTerm and RecognizeALTerm are the term-encoding variants over
// brace-notation input.
func (q *Query) RecognizeELTerm(r io.Reader, opt Options) (bool, Stats, error) {
	return q.recognize(encoding.NewTermScanner(r), TermEncoding, opt, q.elEvaluator, q.stackEL)
}

// RecognizeALTerm recognizes AL over brace-notation input.
func (q *Query) RecognizeALTerm(r io.Reader, opt Options) (bool, Stats, error) {
	return q.recognize(encoding.NewTermScanner(r), TermEncoding, opt, q.alEvaluator, q.stackAL)
}

func (q *Query) recognize(src encoding.Source, enc Encoding, opt Options,
	pickFn func(Encoding, bool) (core.Evaluator, Strategy, error),
	stackFn func() core.Evaluator) (bool, Stats, error) {
	src = opt.guard(src)
	var ev core.Evaluator
	var st Strategy
	var err error
	if opt.ForceStack {
		ev, st = stackFn(), Stack
	} else {
		ev, st, err = pickFn(enc, !opt.ForbidStack)
	}
	if err != nil {
		return false, Stats{Strategy: st}, err
	}
	stats := Stats{Strategy: st, Workers: 1}
	if cm, chunkable := ev.(core.Chunkable); chunkable && opt.Workers > 1 {
		events, err := encoding.ReadAll(src)
		stats.Events = len(events)
		if err != nil {
			return false, stats, err
		}
		stats.Workers = opt.Workers
		return parallel.Recognize(parallel.Shared(), cm, events, opt.Workers), stats, nil
	}
	ok, err := core.Recognize(ev, src)
	return ok, stats, err
}

func (q *Query) stackQuery() core.Evaluator { return stackeval.QL(q.an.D) }
func (q *Query) stackEL() core.Evaluator    { return stackeval.EL(q.an.D) }
func (q *Query) stackAL() core.Evaluator    { return stackeval.AL(q.an.D) }
