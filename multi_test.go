package stackless

import (
	"math/rand"
	"strings"
	"testing"

	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/tree"
)

func TestMultiQueryAgreesWithSingle(t *testing.T) {
	q1 := MustCompileRegex("a.*b", abc)
	q2 := MustCompileRegex(".*a.*b", abc)
	q3 := MustCompileRegex(".*ab", abc) // needs the stack
	mq, err := NewMultiQuery(q1, q2, q3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 100; i++ {
		tr := gen.RandomTree(rng, abc, 1+rng.Intn(30))
		doc := encoding.XMLString(tr)
		multi := map[int][]int{}
		stats, err := mq.SelectXML(strings.NewReader(doc), Options{}, func(m MultiMatch) {
			multi[m.Query] = append(multi[m.Query], m.Pos)
		})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range []*Query{q1, q2, q3} {
			var single []int
			if _, err := q.SelectXML(strings.NewReader(doc), Options{}, func(m Match) {
				single = append(single, m.Pos)
			}); err != nil {
				t.Fatal(err)
			}
			if len(single) != len(multi[qi]) || stats.Matches[qi] != len(single) {
				t.Fatalf("query %d on %s: multi %v vs single %v", qi, tr, multi[qi], single)
			}
			for j := range single {
				if single[j] != multi[qi][j] {
					t.Fatalf("query %d on %s: multi %v vs single %v", qi, tr, multi[qi], single)
				}
			}
		}
	}
}

func TestMultiQueryStrategiesIndependent(t *testing.T) {
	q1 := MustCompileRegex("a.*b", abc) // registerless
	q3 := MustCompileRegex(".*ab", abc) // stack only
	mq, _ := NewMultiQuery(q1, q3)
	stats, err := mq.SelectXML(strings.NewReader("<a><b/></a>"), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Strategies[0] != Registerless || stats.Strategies[1] != Stack {
		t.Errorf("strategies = %v", stats.Strategies)
	}
	// ForbidStack fails because of the second query.
	if _, err := mq.SelectXML(strings.NewReader("<a/>"), Options{ForbidStack: true}, nil); err == nil {
		t.Error("expected error with ForbidStack")
	}
	if _, err := NewMultiQuery(); err == nil {
		t.Error("expected error for empty multi-query")
	}
}

func TestPostQuerySubtreeWitness(t *testing.T) {
	labels := []string{"catalog", "item", "name", "discount"}
	p, err := CompilePostQuery("'catalog''item'", "discount", labels)
	if err != nil {
		t.Fatal(err)
	}
	doc := `<catalog>
	  <item><name/><discount/></item>
	  <item><name/></item>
	  <item><name/><name/><discount/></item>
	</catalog>`
	var got []PostMatch
	stats, err := p.SelectXML(strings.NewReader(doc), func(m PostMatch) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Matches != 2 || len(got) != 2 {
		t.Fatalf("matches = %d, want 2 (%+v)", stats.Matches, got)
	}
	if got[0].Pos != 1 || got[0].SubtreeSize != 3 {
		t.Errorf("first match %+v, want pos=1 size=3", got[0])
	}
	if got[1].Pos != 6 || got[1].SubtreeSize != 4 {
		t.Errorf("second match %+v, want pos=6 size=4", got[1])
	}
}

// postOracle recomputes post-selection on the in-memory tree.
func postOracle(q *Query, witness string, tr *tree.Node) []int {
	selected := map[int]bool{}
	for _, pos := range tree.SelectQL(q.automaton(), tr) {
		selected[pos] = true
	}
	var out []int
	pos := -1
	var hasWitness func(n *tree.Node) bool
	hasWitness = func(n *tree.Node) bool {
		if n.Label == witness {
			return true
		}
		for _, c := range n.Children {
			if hasWitness(c) {
				return true
			}
		}
		return false
	}
	// Closing order = reverse document order of closings: innermost-first,
	// i.e. postorder.
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		myPos := pos + 1
		pos++
		for _, c := range n.Children {
			walk(c)
		}
		if selected[myPos] && hasWitness(n) {
			out = append(out, myPos)
		}
	}
	walk(tr)
	return out
}

func TestPostQueryAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	post, err := CompilePostQuery(".*a", "b", []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	base := MustCompileRegex(".*a", []string{"a", "b", "c"})
	for i := 0; i < 300; i++ {
		tr := gen.RandomTree(rng, []string{"a", "b", "c"}, 1+rng.Intn(25))
		want := postOracle(base, "b", tr)
		var got []int
		if _, err := post.SelectXML(strings.NewReader(encoding.XMLString(tr)), func(m PostMatch) {
			got = append(got, m.Pos)
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("post-selection on %s: got %v, want %v", tr, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("post-selection on %s: got %v, want %v", tr, got, want)
			}
		}
	}
	// Term encoding gives the same answers (the stack ignores close labels).
	tr := gen.RandomTree(rng, []string{"a", "b", "c"}, 40)
	var viaXML, viaTerm []int
	post.SelectXML(strings.NewReader(encoding.XMLString(tr)), func(m PostMatch) { viaXML = append(viaXML, m.Pos) })
	post.SelectTerm(strings.NewReader(encoding.TermString(tr)), func(m PostMatch) { viaTerm = append(viaTerm, m.Pos) })
	if len(viaXML) != len(viaTerm) {
		t.Fatalf("encodings disagree: %v vs %v", viaXML, viaTerm)
	}
}
