package classify

// BFS utilities over the automaton and its pair graphs. Words are slices of
// symbol ids in the automaton's alphabet.

// WordFromTo returns a shortest (possibly empty) word w with p·w = q.
func (a *Analysis) WordFromTo(p, q int) ([]int, bool) {
	return a.D.ShortestWordTo(p, func(s int) bool { return s == q })
}

// NonemptyWordFromTo returns a shortest nonempty word w with p·w = q.
func (a *Analysis) NonemptyWordFromTo(p, q int) ([]int, bool) {
	best := []int(nil)
	for s := 0; s < a.D.Alphabet.Size(); s++ {
		w, ok := a.WordFromTo(a.D.Delta[p][s], q)
		if !ok {
			continue
		}
		cand := append([]int{s}, w...)
		if best == nil || len(cand) < len(best) {
			best = cand
		}
	}
	return best, best != nil
}

// LoopWord returns a shortest nonempty word w with q·w = q.
func (a *Analysis) LoopWord(q int) ([]int, bool) {
	return a.NonemptyWordFromTo(q, q)
}

// DistinguishingWord returns a shortest *nonempty* word t such that p·t and
// q·t disagree on acceptance, or false if p and q are almost equivalent.
func (a *Analysis) DistinguishingWord(p, q int) ([]int, bool) {
	best := []int(nil)
	for s := 0; s < a.D.Alphabet.Size(); s++ {
		w, ok := a.distinguishingFrom(a.D.Delta[p][s], a.D.Delta[q][s])
		if !ok {
			continue
		}
		cand := append([]int{s}, w...)
		if best == nil || len(cand) < len(best) {
			best = cand
		}
	}
	return best, best != nil
}

// distinguishingFrom returns a shortest possibly-empty word separating the
// pair by acceptance, via BFS on the synchronized pair graph.
func (a *Analysis) distinguishingFrom(p, q int) ([]int, bool) {
	return a.syncPairBFS(p, q, nil, func(x, y int) bool {
		return a.D.Accept[x] != a.D.Accept[y]
	})
}

// MeetWord returns a shortest word u with p·u = q·u (a "meet", Definition
// 3.4). If within is non-nil, the whole exploration is restricted to pairs
// of states satisfying within (used for meets inside an SCC).
func (a *Analysis) MeetWord(p, q int, within func(int) bool) ([]int, bool) {
	return a.syncPairBFS(p, q, within, func(x, y int) bool { return x == y })
}

// MeetInWord returns a shortest word u with p·u = q·u = target ("p meets q
// in target", used by Definition 3.9 with target = q).
func (a *Analysis) MeetInWord(p, q, target int) ([]int, bool) {
	return a.syncPairBFS(p, q, nil, func(x, y int) bool { return x == y && x == target })
}

// syncPairBFS searches the synchronized pair graph from (p,q) for a pair
// satisfying goal, returning the shortest word (possibly empty). When
// within is non-nil only pairs with both components satisfying it are
// explored (the start pair is explored unconditionally but must satisfy it
// to be expanded).
func (a *Analysis) syncPairBFS(p, q int, within func(int) bool, goal func(x, y int) bool) ([]int, bool) {
	n := a.D.NumStates()
	k := a.D.Alphabet.Size()
	id := func(x, y int) int { return x*n + y }
	type pred struct{ from, sym int }
	prev := make(map[int]pred, 16)
	start := id(p, q)
	prev[start] = pred{-1, -1}
	queue := []int{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		x, y := cur/n, cur%n
		if goal(x, y) {
			var w []int
			for c := cur; prev[c].from != -1; c = prev[c].from {
				w = append(w, prev[c].sym)
			}
			for i, j := 0, len(w)-1; i < j; i, j = i+1, j-1 {
				w[i], w[j] = w[j], w[i]
			}
			if w == nil {
				w = []int{}
			}
			return w, true
		}
		if within != nil && !(within(x) && within(y)) {
			continue
		}
		for s := 0; s < k; s++ {
			nx, ny := a.D.Delta[x][s], a.D.Delta[y][s]
			if within != nil && !(within(nx) && within(ny)) {
				continue
			}
			nid := id(nx, ny)
			if _, seen := prev[nid]; !seen {
				prev[nid] = pred{cur, s}
				queue = append(queue, nid)
			}
		}
	}
	return nil, false
}

// BlindMeetInWords returns shortest equal-length words (u1, u2) with
// p·u1 = q·u2 = target ("p blindly meets with q in target", Appendix B).
func (a *Analysis) BlindMeetInWords(p, q, target int) (u1, u2 []int, ok bool) {
	return a.blindPairBFS(p, q, func(x, y int) bool { return x == y && x == target })
}

// BlindMeetWords returns shortest equal-length words (u1, u2) with
// p·u1 = q·u2. If within is non-nil the exploration is restricted to pairs
// satisfying it (blind meets inside an SCC).
func (a *Analysis) BlindMeetWords(p, q int, within func(int) bool) (u1, u2 []int, ok bool) {
	return a.blindPairBFSWithin(p, q, within, func(x, y int) bool { return x == y })
}

func (a *Analysis) blindPairBFS(p, q int, goal func(x, y int) bool) (u1, u2 []int, ok bool) {
	return a.blindPairBFSWithin(p, q, nil, goal)
}

// blindPairBFSWithin searches the *unsynchronized* pair graph: an edge
// advances the two components on independently chosen letters, so a path of
// length m corresponds to two words of equal length m.
func (a *Analysis) blindPairBFSWithin(p, q int, within func(int) bool, goal func(x, y int) bool) (u1, u2 []int, ok bool) {
	n := a.D.NumStates()
	k := a.D.Alphabet.Size()
	id := func(x, y int) int { return x*n + y }
	type pred struct{ from, s1, s2 int }
	prev := make(map[int]pred, 16)
	start := id(p, q)
	prev[start] = pred{-1, -1, -1}
	queue := []int{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		x, y := cur/n, cur%n
		if goal(x, y) {
			var w1, w2 []int
			for c := cur; prev[c].from != -1; c = prev[c].from {
				w1 = append(w1, prev[c].s1)
				w2 = append(w2, prev[c].s2)
			}
			reverse(w1)
			reverse(w2)
			if w1 == nil {
				w1, w2 = []int{}, []int{}
			}
			return w1, w2, true
		}
		if within != nil && !(within(x) && within(y)) {
			continue
		}
		for s1 := 0; s1 < k; s1++ {
			nx := a.D.Delta[x][s1]
			if within != nil && !within(nx) {
				continue
			}
			for s2 := 0; s2 < k; s2++ {
				ny := a.D.Delta[y][s2]
				if within != nil && !within(ny) {
					continue
				}
				nid := id(nx, ny)
				if _, seen := prev[nid]; !seen {
					prev[nid] = pred{cur, s1, s2}
					queue = append(queue, nid)
				}
			}
		}
	}
	return nil, nil, false
}

func reverse(w []int) {
	for i, j := 0, len(w)-1; i < j; i, j = i+1, j-1 {
		w[i], w[j] = w[j], w[i]
	}
}
