package classify

import (
	"fmt"
	"strings"
)

// Report aggregates all class memberships for one language, together with
// the query/tree-language verdicts they imply via Theorems 3.1, 3.2, B.1
// and B.2.
type Report struct {
	// Syntactic classes (markup encoding).
	Reversible       bool
	AlmostReversible bool
	HAR              bool
	EFlat            bool
	AFlat            bool
	RTrivial         bool
	// Blind classes (term encoding).
	BlindAlmostReversible bool
	BlindHAR              bool
	BlindEFlat            bool
	BlindAFlat            bool

	// Witnesses for the failing classes (nil when the class holds).
	NotAlmostReversible      *MeetWitness
	NotHAR                   *HARWitness
	NotEFlat                 *FlatWitness
	NotAFlat                 *FlatWitness
	NotBlindAlmostReversible *MeetWitness
	NotBlindHAR              *HARWitness
	NotBlindEFlat            *FlatWitness
	NotBlindAFlat            *FlatWitness
}

// Report runs every decision procedure.
func (a *Analysis) Report() *Report {
	r := &Report{Reversible: a.Reversible(), RTrivial: a.RTrivial()}
	r.AlmostReversible, r.NotAlmostReversible = a.AlmostReversible()
	r.HAR, r.NotHAR = a.HAR()
	r.EFlat, r.NotEFlat = a.EFlat()
	r.AFlat, r.NotAFlat = a.AFlat()
	r.BlindAlmostReversible, r.NotBlindAlmostReversible = a.BlindAlmostReversible()
	r.BlindHAR, r.NotBlindHAR = a.BlindHAR()
	r.BlindEFlat, r.NotBlindEFlat = a.BlindEFlat()
	r.BlindAFlat, r.NotBlindAFlat = a.BlindAFlat()
	return r
}

// Derived verdicts (the characterization theorems).

// QLRegisterless reports whether the unary query QL is realizable by a
// finite automaton under the markup encoding (Theorem 3.2(3)).
func (r *Report) QLRegisterless() bool { return r.AlmostReversible }

// QLStackless reports whether QL is realizable by a depth-register
// automaton under the markup encoding (Theorem 3.1).
func (r *Report) QLStackless() bool { return r.HAR }

// ELRegisterless reports whether the tree language EL is recognizable by a
// finite automaton under the markup encoding (Theorem 3.2(1)).
func (r *Report) ELRegisterless() bool { return r.EFlat }

// ALRegisterless reports whether AL is recognizable by a finite automaton
// under the markup encoding (Theorem 3.2(2)).
func (r *Report) ALRegisterless() bool { return r.AFlat }

// ELStackless / ALStackless report recognizability by depth-register
// automata (Theorem 3.1: all three coincide with HAR).
func (r *Report) ELStackless() bool { return r.HAR }

// ALStackless reports stackless recognizability of AL (Theorem 3.1).
func (r *Report) ALStackless() bool { return r.HAR }

// TermQLRegisterless, TermQLStackless, TermELRegisterless and
// TermALRegisterless are the term-encoding counterparts (Theorems B.1, B.2).
func (r *Report) TermQLRegisterless() bool { return r.BlindAlmostReversible }

// TermQLStackless reports term-encoding stacklessness of QL (Theorem B.2).
func (r *Report) TermQLStackless() bool { return r.BlindHAR }

// TermELRegisterless reports term-encoding recognizability of EL
// (Theorem B.1(1)).
func (r *Report) TermELRegisterless() bool { return r.BlindEFlat }

// TermALRegisterless reports term-encoding recognizability of AL
// (Theorem B.1(2)).
func (r *Report) TermALRegisterless() bool { return r.BlindAFlat }

// String renders the report as a small table.
func (r *Report) String() string {
	var b strings.Builder
	row := func(name string, v bool) {
		mark := "✗"
		if v {
			mark = "✓"
		}
		fmt.Fprintf(&b, "  %-28s %s\n", name, mark)
	}
	b.WriteString("syntactic classes (markup):\n")
	row("reversible", r.Reversible)
	row("almost-reversible", r.AlmostReversible)
	row("HAR", r.HAR)
	row("E-flat", r.EFlat)
	row("A-flat", r.AFlat)
	row("R-trivial", r.RTrivial)
	b.WriteString("blind classes (term encoding):\n")
	row("blindly almost-reversible", r.BlindAlmostReversible)
	row("blindly HAR", r.BlindHAR)
	row("blindly E-flat", r.BlindEFlat)
	row("blindly A-flat", r.BlindAFlat)
	b.WriteString("verdicts:\n")
	row("QL registerless (markup)", r.QLRegisterless())
	row("QL stackless (markup)", r.QLStackless())
	row("EL registerless (markup)", r.ELRegisterless())
	row("AL registerless (markup)", r.ALRegisterless())
	row("QL registerless (term)", r.TermQLRegisterless())
	row("QL stackless (term)", r.TermQLStackless())
	return b.String()
}
