package classify

// The four syntactic classes of Section 3 (Definitions 3.4, 3.6, 3.9) with
// constructive witnesses for the negative cases.

// FlatWitness certifies a violation of E-flatness or A-flatness
// (Definition 3.9). Following the proof of Lemma 3.12 it provides
//
//	i·S = P       (S nonempty, P internal)
//	P·U = Q·U2 = Q    with U2 a loop at Q
//	Q·X rejecting (E-flat) / accepting (A-flat)
//	T nonempty with exactly one of P·T, Q·T accepting
//
// In the synchronized (markup) case U2 == U; in the blind (term-encoding,
// Appendix B) case |U| == |U2| but the words may differ.
type FlatWitness struct {
	P, Q int
	S    []int
	U    []int // from P to Q
	U2   []int // loop at Q, same length as U in the blind case
	X    []int
	T    []int
}

// MeetWitness certifies a violation of (blind) almost-reversibility
// (Definition 3.4): internal states P and Q meet at R yet some nonempty T
// distinguishes them.
type MeetWitness struct {
	P, Q, R int
	SP, SQ  []int // nonempty words from the start state to P and to Q
	U       []int // P·U = R; synchronized case: also Q·U = R
	U2      []int // blind case: Q·U2 = R with |U2| == |U|; else equal to U
	T       []int // nonempty distinguishing word
}

// HARWitness certifies a violation of (blind) hierarchical
// almost-reversibility (Definition 3.6). It is exactly the gadget of
// Lemma 3.16 (Figure 5):
//
//	P, Q, R in one SCC,  i·S = R,  R·V = P,  R·W = Q,
//	P·U1 = R,  Q·U2 = R   (synchronized case: U1 == U2),
//	T nonempty with P·T accepting and Q·T rejecting,
//	LoopR a nonempty loop at R (for pumping/padding).
//
// All of S, V, W, U1, U2 are nonempty.
type HARWitness struct {
	P, Q, R int
	S       []int
	V, W    []int
	U1, U2  []int
	T       []int
	LoopR   []int
}

// EFlat decides E-flatness of the language (Definition 3.9). On failure it
// returns a witness.
func (a *Analysis) EFlat() (bool, *FlatWitness) {
	return a.flat(a.Rejective, false)
}

// AFlat decides A-flatness of the language (Definition 3.9).
func (a *Analysis) AFlat() (bool, *FlatWitness) {
	return a.flat(a.Acceptive, true)
}

// flat checks the common shape of Definition 3.9: polar marks rejective
// (goalAcc=false) or acceptive (goalAcc=true) states.
func (a *Analysis) flat(polar []bool, goalAcc bool) (bool, *FlatWitness) {
	n := a.D.NumStates()
	for p := 0; p < n; p++ {
		if !a.Internal[p] {
			continue
		}
		for q := 0; q < n; q++ {
			if p == q || !polar[q] || a.AlmostEquivalent(p, q) {
				continue
			}
			u, ok := a.MeetInWord(p, q, q)
			if !ok {
				continue
			}
			return false, a.flatWitness(p, q, u, u, goalAcc)
		}
	}
	return true, nil
}

// flatWitness assembles the words of a flatness violation; u is the word
// from p, u2 the loop at q (identical in the synchronized case).
func (a *Analysis) flatWitness(p, q int, u, u2 []int, goalAcc bool) *FlatWitness {
	s, ok := a.NonemptyWordFromTo(a.D.Start, p)
	if !ok {
		panic("classify: internal state unreachable by nonempty word")
	}
	x, ok := a.D.ShortestWordTo(q, func(s int) bool { return a.D.Accept[s] == goalAcc })
	if !ok {
		panic("classify: polar state lost its polarity")
	}
	t, ok := a.DistinguishingWord(p, q)
	if !ok {
		panic("classify: non-almost-equivalent states without distinguishing word")
	}
	return &FlatWitness{P: p, Q: q, S: s, U: u, U2: u2, X: x, T: t}
}

// AlmostReversible decides almost-reversibility (Definition 3.4).
func (a *Analysis) AlmostReversible() (bool, *MeetWitness) {
	n := a.D.NumStates()
	for p := 0; p < n; p++ {
		if !a.Internal[p] {
			continue
		}
		for q := p + 1; q < n; q++ {
			if !a.Internal[q] || a.AlmostEquivalent(p, q) {
				continue
			}
			u, ok := a.MeetWord(p, q, nil)
			if !ok {
				continue
			}
			return false, a.meetWitness(p, q, u, u)
		}
	}
	return true, nil
}

func (a *Analysis) meetWitness(p, q int, u, u2 []int) *MeetWitness {
	sp, _ := a.NonemptyWordFromTo(a.D.Start, p)
	sq, _ := a.NonemptyWordFromTo(a.D.Start, q)
	t, ok := a.DistinguishingWord(p, q)
	if !ok {
		panic("classify: non-almost-equivalent states without distinguishing word")
	}
	r := a.D.StepWord(p, u)
	return &MeetWitness{P: p, Q: q, R: r, SP: sp, SQ: sq, U: u, U2: u2, T: t}
}

// HAR decides hierarchical almost-reversibility (Definition 3.6).
func (a *Analysis) HAR() (bool, *HARWitness) {
	for _, members := range a.Comps {
		if len(members) < 2 {
			continue
		}
		cid := a.Comp[members[0]]
		inX := func(s int) bool { return a.Comp[s] == cid }
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				p, q := members[i], members[j]
				if a.AlmostEquivalent(p, q) {
					continue
				}
				u, ok := a.MeetWord(p, q, inX)
				if !ok {
					continue
				}
				w := a.harWitness(p, q, u, u)
				return false, w
			}
		}
	}
	return true, nil
}

// harWitness assembles the Lemma 3.16 gadget for states p, q meeting at
// p·u1 (= q·u2) inside their common SCC, orienting the pair so that P·T is
// accepting.
func (a *Analysis) harWitness(p, q int, u1, u2 []int) *HARWitness {
	r := a.D.StepWord(p, u1)
	t, ok := a.DistinguishingWord(p, q)
	if !ok {
		panic("classify: non-almost-equivalent states without distinguishing word")
	}
	if !a.D.Accept[a.D.StepWord(p, t)] {
		p, q = q, p
		u1, u2 = u2, u1
	}
	s, ok := a.WordFromTo(a.D.Start, r)
	if !ok {
		panic("classify: state unreachable in trimmed automaton")
	}
	loopR, ok := a.LoopWord(r)
	if !ok {
		panic("classify: no loop at a state of a nontrivial SCC")
	}
	if len(s) == 0 {
		s = loopR
	}
	v, ok := a.NonemptyWordFromTo(r, p)
	if !ok {
		panic("classify: SCC member unreachable from meeting state")
	}
	w, ok := a.NonemptyWordFromTo(r, q)
	if !ok {
		panic("classify: SCC member unreachable from meeting state")
	}
	return &HARWitness{P: p, Q: q, R: r, S: s, V: v, W: w, U1: u1, U2: u2, T: t, LoopR: loopR}
}
