// Package classify implements the decision procedures underlying the
// paper's characterization theorems (Theorems 3.1, 3.2, B.1, B.2): given
// the minimal automaton of a regular language L, it decides membership in
// the syntactic classes
//
//	reversible, almost-reversible (Definition 3.4),
//	hierarchically almost-reversible / HAR (Definition 3.6),
//	E-flat and A-flat (Definition 3.9), R-trivial,
//
// and their blind variants (Appendix B) for the term encoding. Every
// negative answer comes with a constructive witness — the states and words
// used in the paper's inexpressibility proofs (Lemmas 3.12 and 3.16) — so
// that fooling trees can be generated mechanically.
package classify

import (
	"stackless/internal/dfa"
)

// Analysis caches the per-state facts of a minimal automaton that all the
// class checks share.
type Analysis struct {
	// D is the minimal automaton under analysis.
	D *dfa.DFA
	// Internal[q] reports whether q is reachable from the start state via a
	// nonempty word.
	Internal []bool
	// Acceptive[q]: some (possibly empty) word leads from q to acceptance.
	Acceptive []bool
	// Rejective[q]: some (possibly empty) word leads from q to rejection.
	Rejective []bool
	// Comp[q] is the id of q's strongly connected component; Comps lists
	// the members of each component.
	Comp  []int
	Comps [][]int
	// EqClass is the Myhill–Nerode class of each state (states p, q are
	// language-equivalent iff EqClass[p] == EqClass[q]); on a minimal
	// automaton EqClass is injective.
	EqClass []int
}

// Analyze minimizes d and computes the shared per-state facts. All class
// predicates are defined on the minimal automaton of the language
// (Definitions 3.4, 3.6, 3.9), so minimization here is part of the
// semantics, not an optimization — see Figure 6 for a language whose
// non-minimal automaton would give the wrong answer.
func Analyze(d *dfa.DFA) *Analysis {
	return AnalyzeAutomaton(dfa.Minimize(d))
}

// AnalyzeAutomaton computes the facts for d as a concrete automaton,
// without minimizing (unreachable states are still dropped). This is the
// automaton-level reading of the definitions, used e.g. to reproduce the
// Figure 6 observation that a specialized path DTD can be A-flat over the
// annotated alphabet while its (minimized) projection is not.
func AnalyzeAutomaton(d *dfa.DFA) *Analysis {
	m := d.Trim()
	n := m.NumStates()
	a := &Analysis{D: m}
	a.EqClass = dfa.MoorePartition(m)

	// Internal states: in a trimmed automaton, exactly the targets of
	// transitions (the start state is internal iff it has an incoming edge).
	a.Internal = make([]bool, n)
	for q := 0; q < n; q++ {
		for _, t := range m.Delta[q] {
			a.Internal[t] = true
		}
	}

	// Acceptive / rejective: backward closure from accepting / rejecting
	// states over reverse edges.
	a.Acceptive = backwardClosure(m, func(q int) bool { return m.Accept[q] })
	a.Rejective = backwardClosure(m, func(q int) bool { return !m.Accept[q] })

	a.Comp, a.Comps = m.SCCs()
	return a
}

func backwardClosure(m *dfa.DFA, seed func(int) bool) []bool {
	n := m.NumStates()
	rev := make([][]int, n)
	for q := 0; q < n; q++ {
		for _, t := range m.Delta[q] {
			rev[t] = append(rev[t], q)
		}
	}
	out := make([]bool, n)
	var stack []int
	for q := 0; q < n; q++ {
		if seed(q) {
			out[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !out[p] {
				out[p] = true
				stack = append(stack, p)
			}
		}
	}
	return out
}

// AlmostEquivalent reports whether states p and q are almost equivalent:
// no *nonempty* word distinguishes them, i.e. p·a and q·a are
// language-equivalent for every letter a (Lemma 3.3). On a minimal
// automaton this degenerates to p·a = q·a for every a.
func (a *Analysis) AlmostEquivalent(p, q int) bool {
	if p == q {
		return true
	}
	for s := range a.D.Delta[p] {
		if a.EqClass[a.D.Delta[p][s]] != a.EqClass[a.D.Delta[q][s]] {
			return false
		}
	}
	return true
}

// SameSCC reports whether p and q lie in the same strongly connected
// component.
func (a *Analysis) SameSCC(p, q int) bool { return a.Comp[p] == a.Comp[q] }

// Reversible reports whether every letter induces an injective function on
// states — the classical reversibility notion of Section 3.1 (Figure 2).
func (a *Analysis) Reversible() bool {
	n := a.D.NumStates()
	for s := 0; s < a.D.Alphabet.Size(); s++ {
		seen := make([]bool, n)
		for q := 0; q < n; q++ {
			t := a.D.Delta[q][s]
			if seen[t] {
				return false
			}
			seen[t] = true
		}
	}
	return true
}

// RTrivial reports whether every SCC of the minimal automaton is a
// singleton without a self-reentering cycle through other states — the
// automaton-theoretic condition for R-trivial languages used in
// Section 3.2. (Self loops are allowed: a singleton SCC with a self loop
// still never revisits a state it has left via another state.)
func (a *Analysis) RTrivial() bool {
	for _, members := range a.Comps {
		if len(members) > 1 {
			return false
		}
	}
	return true
}

// Minimal reports whether the analyzed automaton is minimal (no two
// distinct states language-equivalent). The evaluator compilers in
// internal/core require minimal automata.
func (a *Analysis) Minimal() bool {
	seen := make(map[int]bool, len(a.EqClass))
	for _, c := range a.EqClass {
		if seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// FullyRecursiveShaped reports whether the automaton has the structure
// Section 4.1 attributes to fully-recursive DTDs: at most two non-trivial
// strongly connected components — one containing the start state, the
// other an all-rejecting absorbing sink. For languages of this shape
// Segoufin and Vianu's first condition is sufficient; in our terms, HAR
// coincides with A-flatness (see the property test).
func (a *Analysis) FullyRecursiveShaped() bool {
	for _, members := range a.Comps {
		if !a.D.NonTrivialSCC(members) {
			continue
		}
		cid := a.Comp[members[0]]
		if cid == a.Comp[a.D.Start] {
			continue
		}
		// Must be an all-rejecting absorbing component.
		for _, q := range members {
			if a.Acceptive[q] {
				return false
			}
			for _, t := range a.D.Delta[q] {
				if a.Comp[t] != cid {
					return false
				}
			}
		}
	}
	return true
}
