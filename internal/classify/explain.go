package classify

import (
	"fmt"
	"strings"
)

// Human-readable renderings of the witnesses, used by cmd/classify and the
// public API to explain *why* a query falls outside a class, in the
// vocabulary of the paper's proofs.

func (a *Analysis) word(w []int) string {
	if len(w) == 0 {
		return "ε"
	}
	var b strings.Builder
	for _, s := range w {
		b.WriteString(a.D.Alphabet.Symbol(s))
	}
	return b.String()
}

// ExplainFlat renders an E-flat/A-flat violation (Definition 3.9,
// Lemma 3.12's gadget).
func (a *Analysis) ExplainFlat(w *FlatWitness, acceptive bool) string {
	polarity := "rejecting"
	kind := "E-flat"
	if acceptive {
		polarity = "accepting"
		kind = "A-flat"
	}
	blind := ""
	if len(w.U2) > 0 && a.word(w.U) != a.word(w.U2) {
		blind = " (blind variant: u₂=" + a.word(w.U2) + " loops at q with |u₁|=|u₂|)"
	}
	return fmt.Sprintf(
		"not %s: after s=%s the run is in state p, and u=%s merges p into the %s-reachable state q (q·u=q); "+
			"yet t=%s distinguishes them (exactly one of p·t, q·t accepts), and q·x with x=%s is %s%s — "+
			"pumping u (Figure 4) fools every finite automaton",
		kind, a.word(w.S), a.word(w.U), polarity, a.word(w.T), a.word(w.X), polarity, blind)
}

// ExplainMeet renders an almost-reversibility violation (Definition 3.4).
func (a *Analysis) ExplainMeet(w *MeetWitness) string {
	return fmt.Sprintf(
		"not almost-reversible: internal states reached by s₁=%s and s₂=%s meet on u=%s but are distinguished by t=%s — "+
			"a finite automaton cannot revert over closing tags here",
		a.word(w.SP), a.word(w.SQ), a.word(w.U), a.word(w.T))
}

// ExplainHAR renders a HAR violation (Definition 3.6, Lemma 3.16's gadget).
func (a *Analysis) ExplainHAR(w *HARWitness) string {
	blind := ""
	if a.word(w.U1) != a.word(w.U2) {
		blind = fmt.Sprintf(" (blind variant: u₂=%s)", a.word(w.U2))
	}
	return fmt.Sprintf(
		"not hierarchically almost-reversible: inside one strongly connected component, s=%s reaches r; "+
			"v=%s and w=%s lead to states p and q that both return to r on u=%s%s, yet t=%s tells them apart "+
			"(p·t accepts, q·t rejects) — the Figure 5 trees built from this gadget fool every depth-register automaton",
		a.word(w.S), a.word(w.V), a.word(w.W), a.word(w.U1), blind, a.word(w.T))
}

// Explanations collects the failure explanations for every class the
// language misses, in a fixed order.
func (a *Analysis) Explanations(r *Report) []string {
	var out []string
	if r.NotAlmostReversible != nil {
		out = append(out, a.ExplainMeet(r.NotAlmostReversible))
	}
	if r.NotHAR != nil {
		out = append(out, a.ExplainHAR(r.NotHAR))
	}
	if r.NotEFlat != nil {
		out = append(out, a.ExplainFlat(r.NotEFlat, false))
	}
	if r.NotAFlat != nil {
		out = append(out, a.ExplainFlat(r.NotAFlat, true))
	}
	if r.NotBlindHAR != nil && r.HAR {
		out = append(out, "term encoding only: "+a.ExplainHAR(r.NotBlindHAR))
	}
	if r.NotBlindEFlat != nil && r.EFlat {
		out = append(out, "term encoding only: "+a.ExplainFlat(r.NotBlindEFlat, false))
	}
	return out
}
