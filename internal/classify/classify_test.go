package classify

import (
	"math/rand"
	"strings"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/dfa"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
)

func analyzeRegex(t *testing.T, expr, gamma string) *Analysis {
	t.Helper()
	d, err := rex.CompileString(expr, alphabet.Letters(gamma))
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	return Analyze(d)
}

// TestFig3Classification checks the syntactic classes of the Figure 3
// automata, which the paper states explicitly below Definition 3.6:
// 3a is almost-reversible; 3b is R-trivial (not almost-reversible);
// 3c is HAR but neither almost-reversible nor R-trivial; 3d is not HAR.
func TestFig3Classification(t *testing.T) {
	type want struct {
		almostRev, har, rtrivial bool
	}
	cases := []struct {
		name, expr string
		want       want
	}{
		{"Fig3a aΓ*b", paperfigs.Fig3aRegex, want{true, true, false}},
		{"Fig3b ab", paperfigs.Fig3bRegex, want{false, true, true}},
		{"Fig3c Γ*aΓ*b", paperfigs.Fig3cRegex, want{false, true, false}},
		{"Fig3d Γ*ab", paperfigs.Fig3dRegex, want{false, false, false}},
	}
	for _, c := range cases {
		a := analyzeRegex(t, c.expr, "abc")
		ar, _ := a.AlmostReversible()
		har, _ := a.HAR()
		if ar != c.want.almostRev {
			t.Errorf("%s: almost-reversible = %v, want %v", c.name, ar, c.want.almostRev)
		}
		if har != c.want.har {
			t.Errorf("%s: HAR = %v, want %v", c.name, har, c.want.har)
		}
		if rt := a.RTrivial(); rt != c.want.rtrivial {
			t.Errorf("%s: R-trivial = %v, want %v", c.name, rt, c.want.rtrivial)
		}
	}
}

// TestExample212Table reproduces the headline table of Example 2.12 for the
// markup encoding via Theorems 3.1 and 3.2.
func TestExample212Table(t *testing.T) {
	for _, row := range paperfigs.Example212() {
		a := analyzeRegex(t, row.Regex, "abc")
		r := a.Report()
		if got := r.QLRegisterless(); got != row.Registerless {
			t.Errorf("%s (%s): registerless = %v, want %v", row.XPath, row.Regex, got, row.Registerless)
		}
		if got := r.QLStackless(); got != row.Stackless {
			t.Errorf("%s (%s): stackless = %v, want %v", row.XPath, row.Regex, got, row.Stackless)
		}
	}
}

// TestExample212TermEncoding checks the Section 4.2 claim: under the term
// encoding the same table holds (first registerless, middle two stackless
// only, last not stackless), using the blind classes.
func TestExample212TermEncoding(t *testing.T) {
	wantReg := []bool{true, false, false, false}
	wantStack := []bool{true, true, true, false}
	for i, row := range paperfigs.Example212() {
		a := analyzeRegex(t, row.Regex, "abc")
		r := a.Report()
		if got := r.TermQLRegisterless(); got != wantReg[i] {
			t.Errorf("%s: term registerless = %v, want %v", row.XPath, got, wantReg[i])
		}
		if got := r.TermQLStackless(); got != wantStack[i] {
			t.Errorf("%s: term stackless = %v, want %v", row.XPath, got, wantStack[i])
		}
	}
}

// TestFig2SeparationMarkupVsTerm checks the Section 4.2 separation: the
// reversible automaton of Figure 2 is registerless under the markup
// encoding but not even stackless under the term encoding.
func TestFig2SeparationMarkupVsTerm(t *testing.T) {
	a := Analyze(paperfigs.Fig2())
	if !a.Reversible() {
		t.Fatal("Fig2 automaton should be reversible")
	}
	if ar, w := a.AlmostReversible(); !ar {
		t.Fatalf("Fig2 should be almost-reversible, witness %+v", w)
	}
	if bhar, _ := a.BlindHAR(); bhar {
		t.Error("Fig2 should NOT be blindly HAR (term encoding costs expressivity)")
	}
	if bar, _ := a.BlindAlmostReversible(); bar {
		t.Error("Fig2 should NOT be blindly almost-reversible")
	}
}

// TestEFlatAFlatKnownLanguages: all finite languages are A-flat, all
// co-finite ones are E-flat (Section 3.3), and Fig 3a is both.
func TestEFlatAFlatKnownLanguages(t *testing.T) {
	finite := analyzeRegex(t, "ab|ba|abc", "abc")
	if ok, w := finite.AFlat(); !ok {
		t.Errorf("finite language should be A-flat, witness %+v", w)
	}
	if ok, _ := finite.EFlat(); ok {
		t.Error("ab|ba|abc should not be E-flat (it is not co-finite and not almost-reversible)")
	}
	// Complement of a finite language is E-flat.
	d, _ := rex.CompileString("ab|ba|abc", alphabet.Letters("abc"))
	cofinite := Analyze(d.Complement())
	if ok, w := cofinite.EFlat(); !ok {
		t.Errorf("co-finite language should be E-flat, witness %+v", w)
	}
	a3a := analyzeRegex(t, paperfigs.Fig3aRegex, "abc")
	if ok, _ := a3a.EFlat(); !ok {
		t.Error("aΓ*b should be E-flat")
	}
	if ok, _ := a3a.AFlat(); !ok {
		t.Error("aΓ*b should be A-flat")
	}
}

// TestLemma310Duality property-checks Lemma 3.10 on random automata:
// (1) L is A-flat iff Lᶜ is E-flat; (2) L is almost-reversible iff it is
// both A-flat and E-flat. Plus Lemma 3.7: HAR is closed under complement.
func TestLemma310Duality(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	alph := alphabet.Letters("ab")
	for i := 0; i < 400; i++ {
		d := dfa.Random(rng, alph, 1+rng.Intn(6))
		a := Analyze(d)
		ac := Analyze(d.Complement())

		aflat, _ := a.AFlat()
		eflatC, _ := ac.EFlat()
		if aflat != eflatC {
			t.Fatalf("iter %d: A-flat(L)=%v but E-flat(Lᶜ)=%v\n%s", i, aflat, eflatC, a.D)
		}
		ar, _ := a.AlmostReversible()
		eflat, _ := a.EFlat()
		if ar != (aflat && eflat) {
			t.Fatalf("iter %d: almost-rev=%v, A-flat=%v, E-flat=%v\n%s", i, ar, aflat, eflat, a.D)
		}
		har, _ := a.HAR()
		harC, _ := ac.HAR()
		if har != harC {
			t.Fatalf("iter %d: HAR not complement-closed\n%s", i, a.D)
		}
		// Blind analogues (Appendix B).
		baflat, _ := a.BlindAFlat()
		beflatC, _ := ac.BlindEFlat()
		if baflat != beflatC {
			t.Fatalf("iter %d: blind A-flat(L)=%v but blind E-flat(Lᶜ)=%v", i, baflat, beflatC)
		}
		bar, _ := a.BlindAlmostReversible()
		beflat, _ := a.BlindEFlat()
		if bar != (baflat && beflat) {
			t.Fatalf("iter %d: blind almost-rev=%v, blind A-flat=%v, blind E-flat=%v\n%s", i, bar, baflat, beflat, a.D)
		}
		bhar, _ := a.BlindHAR()
		bharC, _ := ac.BlindHAR()
		if bhar != bharC {
			t.Fatalf("iter %d: blind HAR not complement-closed", i)
		}
	}
}

// TestClassInclusions property-checks the inclusions stated in the paper:
// reversible ⊆ almost-reversible ⊆ HAR; R-trivial ⊆ HAR; blind-X ⊆ X.
func TestClassInclusions(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	alph := alphabet.Letters("ab")
	for i := 0; i < 400; i++ {
		a := Analyze(dfa.Random(rng, alph, 1+rng.Intn(6)))
		ar, _ := a.AlmostReversible()
		har, _ := a.HAR()
		eflat, _ := a.EFlat()
		aflat, _ := a.AFlat()
		if a.Reversible() && !ar {
			t.Fatalf("iter %d: reversible but not almost-reversible\n%s", i, a.D)
		}
		if ar && !har {
			t.Fatalf("iter %d: almost-reversible but not HAR\n%s", i, a.D)
		}
		if a.RTrivial() && !har {
			t.Fatalf("iter %d: R-trivial but not HAR\n%s", i, a.D)
		}
		bar, _ := a.BlindAlmostReversible()
		bhar, _ := a.BlindHAR()
		beflat, _ := a.BlindEFlat()
		baflat, _ := a.BlindAFlat()
		if bar && !ar {
			t.Fatalf("iter %d: blindly almost-reversible but not almost-reversible", i)
		}
		if bhar && !har {
			t.Fatalf("iter %d: blindly HAR but not HAR", i)
		}
		if beflat && !eflat {
			t.Fatalf("iter %d: blindly E-flat but not E-flat", i)
		}
		if baflat && !aflat {
			t.Fatalf("iter %d: blindly A-flat but not A-flat", i)
		}
		if a.RTrivial() && !bhar {
			t.Fatalf("iter %d: R-trivial but not blindly HAR (Section 4.2 states the inclusion)", i)
		}
	}
}

// TestWitnessSoundness validates every field of every witness produced on
// random non-member automata.
func TestWitnessSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	alph := alphabet.Letters("abc")
	checkedFlat, checkedHAR, checkedMeet := 0, 0, 0
	for i := 0; i < 300; i++ {
		a := Analyze(dfa.Random(rng, alph, 2+rng.Intn(6)))
		d := a.D
		if ok, w := a.EFlat(); !ok {
			checkedFlat++
			validateFlat(t, a, w, false)
		}
		if ok, w := a.AFlat(); !ok {
			validateFlat(t, a, w, true)
		}
		if ok, w := a.BlindEFlat(); !ok {
			validateFlat(t, a, w, false)
			if len(w.U) != len(w.U2) {
				t.Fatalf("blind flat witness with |U|=%d |U2|=%d", len(w.U), len(w.U2))
			}
		}
		if ok, w := a.HAR(); !ok {
			checkedHAR++
			validateHAR(t, a, w)
		}
		if ok, w := a.BlindHAR(); !ok {
			validateHAR(t, a, w)
			if len(w.U1) != len(w.U2) {
				t.Fatalf("blind HAR witness with |U1|=%d |U2|=%d", len(w.U1), len(w.U2))
			}
		}
		if ok, w := a.AlmostReversible(); !ok {
			checkedMeet++
			if d.StepWord(w.P, w.U) != w.R {
				t.Fatalf("meet witness: P·U != R")
			}
			if d.StepWord(w.Q, w.U2) != w.R {
				t.Fatalf("meet witness: Q·U2 != R")
			}
			if len(w.T) == 0 || d.Accept[d.StepWord(w.P, w.T)] == d.Accept[d.StepWord(w.Q, w.T)] {
				t.Fatalf("meet witness: T does not distinguish")
			}
		}
	}
	if checkedFlat == 0 || checkedHAR == 0 || checkedMeet == 0 {
		t.Fatalf("witness coverage too low: flat=%d har=%d meet=%d", checkedFlat, checkedHAR, checkedMeet)
	}
}

func validateFlat(t *testing.T, a *Analysis, w *FlatWitness, acceptive bool) {
	t.Helper()
	d := a.D
	if len(w.S) == 0 || d.StepWord(d.Start, w.S) != w.P {
		t.Fatalf("flat witness: bad S")
	}
	if len(w.U) == 0 || d.StepWord(w.P, w.U) != w.Q {
		t.Fatalf("flat witness: bad U")
	}
	if d.StepWord(w.Q, w.U2) != w.Q {
		t.Fatalf("flat witness: U2 is not a loop at Q")
	}
	if d.Accept[d.StepWord(w.Q, w.X)] != acceptive {
		t.Fatalf("flat witness: X has wrong polarity")
	}
	if len(w.T) == 0 || d.Accept[d.StepWord(w.P, w.T)] == d.Accept[d.StepWord(w.Q, w.T)] {
		t.Fatalf("flat witness: T does not distinguish P and Q")
	}
	if !a.Internal[w.P] {
		t.Fatalf("flat witness: P not internal")
	}
}

func validateHAR(t *testing.T, a *Analysis, w *HARWitness) {
	t.Helper()
	d := a.D
	if a.Comp[w.P] != a.Comp[w.Q] || a.Comp[w.P] != a.Comp[w.R] {
		t.Fatalf("HAR witness: P,Q,R not in one SCC")
	}
	if d.StepWord(d.Start, w.S) != w.R {
		t.Fatalf("HAR witness: i·S != R")
	}
	if d.StepWord(w.R, w.V) != w.P || d.StepWord(w.R, w.W) != w.Q {
		t.Fatalf("HAR witness: V/W wrong")
	}
	if d.StepWord(w.P, w.U1) != w.R || d.StepWord(w.Q, w.U2) != w.R {
		t.Fatalf("HAR witness: U1/U2 wrong")
	}
	if !d.Accept[d.StepWord(w.P, w.T)] || d.Accept[d.StepWord(w.Q, w.T)] {
		t.Fatalf("HAR witness: T orientation wrong")
	}
	if d.StepWord(w.R, w.LoopR) != w.R || len(w.LoopR) == 0 {
		t.Fatalf("HAR witness: LoopR wrong")
	}
	for _, word := range [][]int{w.S, w.V, w.W, w.U1, w.U2, w.T} {
		if len(word) == 0 {
			t.Fatalf("HAR witness: empty word component")
		}
	}
}

// TestHARWitnessForFig3d sanity-checks the shape of the witness on the one
// paper language that is not HAR.
func TestHARWitnessForFig3d(t *testing.T) {
	a := analyzeRegex(t, paperfigs.Fig3dRegex, "abc")
	ok, w := a.HAR()
	if ok {
		t.Fatal("Γ*ab must not be HAR")
	}
	validateHAR(t, a, w)
}

// TestMeetWordsBasic exercises the pair-graph searches on Fig 3d where
// states 0 (no progress) and 1 (seen a) meet: both reach 0 on b...
func TestMeetWordsBasic(t *testing.T) {
	a := analyzeRegex(t, paperfigs.Fig3dRegex, "abc")
	d := a.D
	// Find the two non-accepting states; they live in one SCC.
	var p, q = -1, -1
	for s := 0; s < d.NumStates(); s++ {
		if !d.Accept[s] {
			if p == -1 {
				p = s
			} else {
				q = s
			}
		}
	}
	u, ok := a.MeetWord(p, q, nil)
	if !ok {
		t.Fatal("states of Γ*ab's core SCC should meet")
	}
	if d.StepWord(p, u) != d.StepWord(q, u) {
		t.Fatal("meet word does not merge the states")
	}
	u1, u2, ok := a.BlindMeetWords(p, q, nil)
	if !ok || d.StepWord(p, u1) != d.StepWord(q, u2) || len(u1) != len(u2) {
		t.Fatal("blind meet incorrect")
	}
}

// TestReportString smoke-tests the report rendering.
func TestReportString(t *testing.T) {
	r := analyzeRegex(t, paperfigs.Fig3aRegex, "abc").Report()
	s := r.String()
	if len(s) == 0 || s[0] != 's' {
		t.Errorf("unexpected report rendering: %q", s)
	}
}

// TestFullyRecursiveHARIffAFlat property-checks the Section 4.1 remark:
// for automata of the fully-recursive shape, HAR and A-flatness coincide
// (which makes Segoufin–Vianu's sufficiency result a special case of
// Theorem 3.2(2) for path DTDs).
func TestFullyRecursiveHARIffAFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	alph := alphabet.Letters("ab")
	tested := 0
	for i := 0; i < 30000 && tested < 400; i++ {
		a := Analyze(dfa.Random(rng, alph, 1+rng.Intn(7)))
		if !a.FullyRecursiveShaped() {
			continue
		}
		tested++
		har, _ := a.HAR()
		aflat, _ := a.AFlat()
		if har != aflat {
			t.Fatalf("fully-recursive shape but HAR=%v A-flat=%v\n%s", har, aflat, a.D)
		}
	}
	if tested < 100 {
		t.Fatalf("too few fully-recursive samples: %d", tested)
	}
}

// TestExplanationsRenderWitnesses smoke-tests the human-readable output on
// the Figure 3 languages.
func TestExplanationsRenderWitnesses(t *testing.T) {
	aHard := analyzeRegex(t, paperfigs.Fig3dRegex, "abc")
	why := aHard.Explanations(aHard.Report())
	if len(why) < 3 {
		t.Fatalf("Γ*ab should miss several classes, got %d explanations", len(why))
	}
	joined := ""
	for _, w := range why {
		joined += w + "\n"
	}
	for _, needle := range []string{"hierarchically", "E-flat", "Figure 5"} {
		if !containsStr(joined, needle) {
			t.Errorf("explanations missing %q:\n%s", needle, joined)
		}
	}
	aEasy := analyzeRegex(t, paperfigs.Fig3aRegex, "abc")
	if why := aEasy.Explanations(aEasy.Report()); len(why) != 0 {
		t.Errorf("aΓ*b should have no failure explanations, got %v", why)
	}
}

func containsStr(haystack, needle string) bool {
	return strings.Contains(haystack, needle)
}
