package classify

// Blind variants of the syntactic classes (Appendix B): "meet" is replaced
// by "blindly meet" — the two runs use independent words of equal length.
// These characterize processing under the term (JSON-style) encoding,
// where closing tags do not reveal the label (Theorems B.1 and B.2).

// BlindEFlat decides blind E-flatness.
func (a *Analysis) BlindEFlat() (bool, *FlatWitness) {
	return a.blindFlat(a.Rejective, false)
}

// BlindAFlat decides blind A-flatness.
func (a *Analysis) BlindAFlat() (bool, *FlatWitness) {
	return a.blindFlat(a.Acceptive, true)
}

func (a *Analysis) blindFlat(polar []bool, goalAcc bool) (bool, *FlatWitness) {
	n := a.D.NumStates()
	for p := 0; p < n; p++ {
		if !a.Internal[p] {
			continue
		}
		for q := 0; q < n; q++ {
			if p == q || !polar[q] || a.AlmostEquivalent(p, q) {
				continue
			}
			u1, u2, ok := a.BlindMeetInWords(p, q, q)
			if !ok {
				continue
			}
			return false, a.flatWitness(p, q, u1, u2, goalAcc)
		}
	}
	return true, nil
}

// BlindAlmostReversible decides blind almost-reversibility.
func (a *Analysis) BlindAlmostReversible() (bool, *MeetWitness) {
	n := a.D.NumStates()
	for p := 0; p < n; p++ {
		if !a.Internal[p] {
			continue
		}
		for q := p + 1; q < n; q++ {
			if !a.Internal[q] || a.AlmostEquivalent(p, q) {
				continue
			}
			u1, u2, ok := a.BlindMeetWords(p, q, nil)
			if !ok {
				continue
			}
			return false, a.meetWitness(p, q, u1, u2)
		}
	}
	return true, nil
}

// BlindHAR decides blind hierarchical almost-reversibility.
func (a *Analysis) BlindHAR() (bool, *HARWitness) {
	for _, members := range a.Comps {
		if len(members) < 2 {
			continue
		}
		cid := a.Comp[members[0]]
		inX := func(s int) bool { return a.Comp[s] == cid }
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				p, q := members[i], members[j]
				if a.AlmostEquivalent(p, q) {
					continue
				}
				u1, u2, ok := a.BlindMeetWords(p, q, inX)
				if !ok {
					continue
				}
				return false, a.harWitness(p, q, u1, u2)
			}
		}
	}
	return true, nil
}
