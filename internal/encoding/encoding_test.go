package encoding

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"stackless/internal/tree"
)

func drain(t *testing.T, src Source) []Event {
	t.Helper()
	var out []Event
	for {
		e, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("source error: %v", err)
		}
		out = append(out, e)
	}
}

func TestMarkupEventsPaperExample(t *testing.T) {
	// Section 2: aaācc̄ā encodes the tree a(a,c).
	n := tree.MustParse("a(a,c)")
	got := Markup(n)
	want := []Event{{Open, "a"}, {Open, "a"}, {Close, "a"}, {Open, "c"}, {Close, "c"}, {Close, "a"}}
	if len(got) != len(want) {
		t.Fatalf("Markup = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Markup[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTermEventsPaperExample(t *testing.T) {
	// Section 4.2: a{b{a{}a{}}c{}} for the tree whose markup is abaāaāb̄cc̄ā.
	n := tree.MustParse("a(b(a,a),c)")
	if got := TermString(n); got != "a{b{a{}a{}}c{}}" {
		t.Errorf("TermString = %q", got)
	}
	ev := Term(n)
	opens, closesWithLabel := 0, 0
	for _, e := range ev {
		if e.Kind == Open {
			opens++
		} else if e.Label != "" {
			closesWithLabel++
		}
	}
	if opens != 5 || closesWithLabel != 0 {
		t.Errorf("Term events malformed: %v", ev)
	}
}

func randomTree(rng *rand.Rand, budget int) *tree.Node {
	labels := []string{"a", "b", "c", "item", "x"}
	n := tree.New(labels[rng.Intn(len(labels))])
	budget--
	for budget > 0 && rng.Intn(3) != 0 {
		sub := 1 + rng.Intn(budget)
		n.Children = append(n.Children, randomTree(rng, sub))
		budget -= sub
	}
	return n
}

func TestRoundTripsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTree(rng, 1+rng.Intn(40))
		// markup events
		if back, err := Decode(NewSliceSource(Markup(n))); err != nil || !back.Equal(n) {
			return false
		}
		// term events
		if back, err := Decode(NewSliceSource(Term(n))); err != nil || !back.Equal(n) {
			return false
		}
		// XML text through the hand-rolled scanner
		if back, err := ParseXML(XMLString(n)); err != nil || !back.Equal(n) {
			return false
		}
		// term text
		if back, err := ParseTerm(TermString(n)); err != nil || !back.Equal(n) {
			return false
		}
		// encoding/xml bridge
		if back, err := Decode(NewStdXMLSource(strings.NewReader(XMLString(n)))); err != nil || !back.Equal(n) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	bad := [][]Event{
		{},
		{{Close, "a"}},
		{{Open, "a"}},
		{{Open, "a"}, {Close, "b"}},
		{{Open, "a"}, {Close, "a"}, {Open, "b"}, {Close, "b"}}, // two roots
		{{Open, "a"}, {Close, "a"}, {Close, "a"}},
	}
	for i, ev := range bad {
		if _, err := Decode(NewSliceSource(ev)); err == nil {
			t.Errorf("case %d: expected malformed error for %v", i, ev)
		}
	}
	if !IsWellFormedMarkup(Markup(tree.MustParse("a(b)"))) {
		t.Error("well-formed encoding rejected")
	}
}

func TestXMLScannerSkipsNoise(t *testing.T) {
	doc := `<?xml version="1.0"?>
<!-- a comment -->
<catalog kind="test">
  text to skip
  <item id="1"><name/></item>
  <item id='2'/>
</catalog>`
	n, err := Decode(NewXMLScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	want := tree.MustParse("catalog(item(name),item)")
	if !n.Equal(want) {
		t.Errorf("scanned %s, want %s", n, want)
	}
}

func TestXMLScannerAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		n := randomTree(rng, 1+rng.Intn(30))
		doc := XMLString(n)
		fast := drain(t, NewXMLScanner(strings.NewReader(doc)))
		std := drain(t, NewStdXMLSource(strings.NewReader(doc)))
		if len(fast) != len(std) {
			t.Fatalf("event count differs: %d vs %d on %s", len(fast), len(std), doc)
		}
		for j := range fast {
			if fast[j] != std[j] {
				t.Fatalf("event %d differs: %v vs %v", j, fast[j], std[j])
			}
		}
	}
}

func TestJSONSourceMapping(t *testing.T) {
	cases := []struct {
		json string
		want string
	}{
		{`{"a": 1}`, "'$'(a)"},
		{`{"a": {"b": 1, "c": [2, 3]}}`, "'$'(a(b,c(item,item)))"},
		{`[1, [2], {"k": 3}]`, "'$'(item,item(item),item(k))"},
		{`42`, "'$'(value)"},
		{`{"store":{"book":[{"title":1},{"title":2}]}}`,
			"'$'(store(book(item(title),item(title))))"},
	}
	for _, c := range cases {
		n, err := Decode(NewJSONSource(strings.NewReader(c.json)))
		if err != nil {
			t.Fatalf("%s: %v", c.json, err)
		}
		if got := n.String(); got != c.want {
			t.Errorf("JSON %s → %s, want %s", c.json, got, c.want)
		}
	}
}

func TestJSONSourceErrors(t *testing.T) {
	for _, doc := range []string{`{"a":`, `{`, `[1,`} {
		if _, err := Decode(NewJSONSource(strings.NewReader(doc))); err == nil {
			t.Errorf("expected error for truncated JSON %q", doc)
		}
	}
}

func TestEventString(t *testing.T) {
	if (Event{Open, "a"}).String() != "a" {
		t.Error("open rendering")
	}
	if (Event{Close, "a"}).String() != "ā" && (Event{Close, "a"}).String() != "ā" {
		t.Errorf("close rendering: %q", Event{Close, "a"})
	}
	if (Event{Kind: Close}).String() != "◁" {
		t.Error("term close rendering")
	}
}

func TestXMLScannerCommentsAndCDATA(t *testing.T) {
	doc := `<a><!-- a > tricky --> <b/><![CDATA[ <fake/> > ]]><c/></a>`
	n, err := Decode(NewXMLScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	want := tree.MustParse("a(b,c)")
	if !n.Equal(want) {
		t.Errorf("scanned %s, want %s", n, want)
	}
	// Unterminated constructs error instead of hanging.
	for _, bad := range []string{"<a><!-- never closed", "<a><![CDATA[ open"} {
		if _, err := Decode(NewXMLScanner(strings.NewReader(bad))); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
	// Processing instruction containing '>'.
	doc2 := `<?pi with > inside ?><a/>`
	n2, err := Decode(NewXMLScanner(strings.NewReader(doc2)))
	if err != nil || n2.Label != "a" {
		t.Errorf("PI handling broken: %v %v", n2, err)
	}
}
