package encoding

// CountingSource wraps a Source and counts the events successfully pulled
// from it. The earliest-emission test battery uses it to measure *when* a
// driver emits: a match callback that reads Consumed() sees exactly how
// many events the driver had to consume before it could report the match,
// which is the quantity the DESIGN.md §14 latency contract bounds.
type CountingSource struct {
	inner Source
	n     int
}

// Counting wraps src so every delivered event is counted.
func Counting(src Source) *CountingSource { return &CountingSource{inner: src} }

// Next implements Source.
func (s *CountingSource) Next() (Event, error) {
	e, err := s.inner.Next()
	if err == nil {
		s.n++
	}
	return e, err
}

// Consumed returns the number of events delivered so far.
func (s *CountingSource) Consumed() int { return s.n }
