package encoding_test

import (
	"io"
	"testing"

	"stackless/internal/encoding"
)

func TestCountingSource(t *testing.T) {
	events := []encoding.Event{
		{Kind: encoding.Open, Label: "a"},
		{Kind: encoding.Open, Label: "b"},
		{Kind: encoding.Close, Label: "b"},
		{Kind: encoding.Close, Label: "a"},
	}
	src := encoding.Counting(encoding.NewSliceSource(events))
	if src.Consumed() != 0 {
		t.Fatalf("fresh counter reads %d", src.Consumed())
	}
	for i, want := range events {
		e, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if e != want {
			t.Fatalf("event %d = %+v, want %+v", i, e, want)
		}
		if src.Consumed() != i+1 {
			t.Fatalf("after event %d: consumed %d", i, src.Consumed())
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	if src.Consumed() != len(events) {
		t.Fatalf("EOF bumped the counter to %d", src.Consumed())
	}
}
