package encoding_test

import (
	"bytes"
	"reflect"
	"testing"

	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
	"stackless/internal/parallel"
	"stackless/internal/rex"
)

// FuzzEarliestVsCurrent fuzzes the document bytes (brace notation) plus one
// chunk-cut position and checks the earliest-emission driver (DESIGN.md
// §14) against the current pipelines for every compiled machine class: the
// match set, event count and error presence from SelectEarliest must equal
// Select's exactly, and for chunkable machines the chunk-parallel engine
// cut at the fuzzed position must reproduce the same matches — earliest
// decisions must survive adversarial chunk joins. Out-of-alphabet labels
// exercise the poison path, where the earliest flags decide immediately.
func FuzzEarliestVsCurrent(f *testing.F) {
	f.Add([]byte("b{a{}a{}}"), uint(1))
	f.Add([]byte("a{b{}a{}b{}}"), uint(4))
	f.Add([]byte("a{a{b{}b{a{}}}b{}}"), uint(7))
	f.Add([]byte("c{a{c{b{}}}}"), uint(3))
	f.Add([]byte("a{}"), uint(1))
	f.Add([]byte("x{y{}}"), uint(2))    // outside every alphabet: decided at event 0
	f.Add([]byte("a{x{}b{}}"), uint(3)) // sentinel mid-stream between known labels
	f.Add([]byte("a{b{}"), uint(2))     // malformed: error parity on a partial document

	anC := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	anA := classify.Analyze(rex.MustCompile(paperfigs.Fig3aRegex, paperfigs.GammaABC()))
	lAB := rex.MustCompile("(b|ab*a)*", paperfigs.GammaAB())
	type machine struct {
		name  string
		fresh func() core.Evaluator
	}
	var machines []machine
	add := func(name string, ev core.Evaluator, err error) {
		if err != nil {
			f.Fatal(err)
		}
		machines = append(machines, machine{name, func() core.Evaluator { return ev }})
	}
	stackless3c, err := core.BlindStacklessQL(anC)
	if err != nil {
		f.Fatal(err)
	}
	add("blind stackless .*a.*b", stackless3c, nil)
	tagA, err := core.BlindRegisterlessQL(anA)
	if err != nil {
		f.Fatal(err)
	}
	add("blind registerless a.*b", tagA.Evaluator(), nil)
	el, err := core.RegisterlessEL(anA)
	if err != nil {
		f.Fatal(err)
	}
	add("synopsis EL a.*b", el, nil)
	al, err := core.RegisterlessAL(classify.Analyze(rex.MustCompile(paperfigs.Fig3bRegex, paperfigs.GammaABC())))
	add("synopsis AL "+paperfigs.Fig3bRegex, al, err)
	add("table DRA ex2.2", core.Example22().Evaluator(), nil)
	add("table DRA ex2.5", core.Example25(lAB).Evaluator(), nil)
	add("table DRA ex2.6", core.Example26().Evaluator(), nil)
	add("table DRA ex2.7", core.Example27Minimal().Evaluator(), nil)

	f.Fuzz(func(t *testing.T, doc []byte, cut uint) {
		events, scanErr := encoding.ReadAll(encoding.NewTermScanner(bytes.NewReader(doc)))
		if len(events) == 0 && scanErr != nil {
			return
		}
		for _, mc := range machines {
			ev := mc.fresh()
			var want []core.Match
			wantN, wantErr := core.Select(ev, encoding.NewSliceSource(events), func(m core.Match) { want = append(want, m) })
			var got []core.Match
			gotN, gotErr := core.SelectEarliest(ev, encoding.NewSliceSource(events), func(m core.Match) { got = append(got, m) })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: earliest matches %v, string matches %v", mc.name, got, want)
			}
			if gotN != wantN || (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: earliest (%d, %v), string (%d, %v)", mc.name, gotN, gotErr, wantN, wantErr)
			}
			cm, ok := ev.(core.Chunkable)
			if !ok || scanErr != nil || wantErr != nil || len(events) < 2 {
				continue
			}
			var par []core.Match
			parallel.SelectAt(parallel.Shared(), cm, events, []int{1 + int(cut)%(len(events)-1)}, func(m core.Match) { par = append(par, m) })
			if !reflect.DeepEqual(par, want) {
				t.Fatalf("%s: parallel-at-cut matches %v, earliest matches %v", mc.name, par, want)
			}
		}
	})
}
