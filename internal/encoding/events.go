// Package encoding implements the two serializations of trees studied in
// the paper: the markup encoding ⟨T⟩ over Γ ∪ Γ̄ (opening and closing tags
// both carry the label, as in XML) and the term encoding [T] over Γ ∪ {◁}
// (only opening tags carry the label, as in JSON) — Sections 2 and 4.2.
//
// The event model is shared: an Event is an opening tag with a label, or a
// closing tag whose label is present under the markup encoding and empty
// under the term encoding. Streaming sources produce events from XML-ish
// text, term-encoding text, real XML (via encoding/xml) and JSON.
package encoding

import (
	"errors"
	"fmt"
	"io"

	"stackless/internal/tree"
)

// Kind distinguishes opening from closing tags.
type Kind uint8

// Event kinds.
const (
	Open Kind = iota
	Close
)

// Event is one tag of an encoded tree. Label is empty on Close events under
// the term encoding.
type Event struct {
	Kind  Kind
	Label string
}

// String renders the event in the paper's notation: a for opening, ā
// (rendered a/) for closing, ◁ for an unlabelled close.
func (e Event) String() string {
	if e.Kind == Open {
		return e.Label
	}
	if e.Label == "" {
		return "◁"
	}
	return e.Label + "̄"
}

// ErrMalformed is returned when an event stream is not a well-formed
// encoding of a tree.
var ErrMalformed = errors.New("encoding: malformed event stream")

// Source is a pull-based stream of events; Next returns io.EOF after the
// last event.
type Source interface {
	Next() (Event, error)
}

// SliceSource adapts an event slice to a Source.
type SliceSource struct {
	events []Event
	pos    int
}

// NewSliceSource returns a Source over the given events.
func NewSliceSource(events []Event) *SliceSource { return &SliceSource{events: events} }

// Rewind resets the source to the first event, so one SliceSource can be
// replayed across runs (benchmarks and allocation tests).
func (s *SliceSource) Rewind() { s.pos = 0 }

// Next implements Source.
func (s *SliceSource) Next() (Event, error) {
	if s.pos >= len(s.events) {
		return Event{}, io.EOF
	}
	e := s.events[s.pos]
	s.pos++
	return e, nil
}

// ReadAll drains a Source into an event slice. On error it returns the
// events read so far together with the error (io.EOF is not an error).
func ReadAll(src Source) ([]Event, error) {
	if s, ok := src.(*SliceSource); ok && s.pos == 0 {
		s.pos = len(s.events)
		return s.events, nil
	}
	var out []Event
	for {
		e, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Markup returns the markup encoding ⟨T⟩ as an event slice: every closing
// tag carries its label.
func Markup(t *tree.Node) []Event {
	out := make([]Event, 0, 2*t.Size())
	var rec func(n *tree.Node)
	rec = func(n *tree.Node) {
		out = append(out, Event{Open, n.Label})
		for _, c := range n.Children {
			rec(c)
		}
		out = append(out, Event{Close, n.Label})
	}
	rec(t)
	return out
}

// Term returns the term encoding [T] as an event slice: closing tags have
// no label.
func Term(t *tree.Node) []Event {
	out := make([]Event, 0, 2*t.Size())
	var rec func(n *tree.Node)
	rec = func(n *tree.Node) {
		out = append(out, Event{Open, n.Label})
		for _, c := range n.Children {
			rec(c)
		}
		out = append(out, Event{Kind: Close})
	}
	rec(t)
	return out
}

// Decode rebuilds a tree from an event stream, under either encoding:
// closing labels, when present, must match the opening tag. It fails on
// non-well-formed streams (ErrMalformed wrapped with detail).
func Decode(src Source) (*tree.Node, error) {
	var stack []*tree.Node
	var root *tree.Node
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if root != nil && len(stack) == 0 {
			return nil, fmt.Errorf("%w: content after root element", ErrMalformed)
		}
		switch e.Kind {
		case Open:
			n := tree.New(e.Label)
			if len(stack) == 0 {
				root = n
			} else {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, n)
			}
			stack = append(stack, n)
		case Close:
			if len(stack) == 0 {
				return nil, fmt.Errorf("%w: unmatched closing tag %q", ErrMalformed, e.Label)
			}
			top := stack[len(stack)-1]
			if e.Label != "" && e.Label != top.Label {
				return nil, fmt.Errorf("%w: closing tag %q for element %q", ErrMalformed, e.Label, top.Label)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if root == nil {
		return nil, fmt.Errorf("%w: empty stream", ErrMalformed)
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("%w: %d unclosed elements", ErrMalformed, len(stack))
	}
	return root, nil
}

// IsWellFormedMarkup reports whether the event slice is a valid markup
// encoding of some tree.
func IsWellFormedMarkup(events []Event) bool {
	_, err := Decode(NewSliceSource(events))
	return err == nil
}

// balancedSource wraps a Source with the O(1) well-formedness guard the
// weak-validation setting permits: tag balance. It rejects streams whose
// depth goes negative or does not return to zero, and streams with events
// after the root closes. Label mismatches on closing tags are *not*
// detected — that would need the stack the model is avoiding; under weak
// validation the input is assumed well formed and this guard only catches
// gross transport errors.
type balancedSource struct {
	inner  Source
	depth  int
	opened bool
	done   bool
}

// CheckBalance wraps src with the balance guard.
func CheckBalance(src Source) Source { return &balancedSource{inner: src} }

// Next implements Source.
func (b *balancedSource) Next() (Event, error) {
	e, err := b.inner.Next()
	if err == io.EOF {
		if b.depth != 0 || !b.opened {
			return Event{}, fmt.Errorf("%w: stream ended at depth %d", ErrMalformed, b.depth)
		}
		return Event{}, io.EOF
	}
	if err != nil {
		return Event{}, err
	}
	if b.done {
		return Event{}, fmt.Errorf("%w: content after the root element", ErrMalformed)
	}
	if e.Kind == Open {
		b.opened = true
		b.depth++
	} else {
		b.depth--
		if b.depth < 0 {
			return Event{}, fmt.Errorf("%w: unmatched closing tag", ErrMalformed)
		}
		if b.depth == 0 {
			b.done = true
		}
	}
	return e, nil
}
