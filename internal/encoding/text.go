package encoding

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"stackless/internal/tree"
)

// Text forms. The markup encoding is written as XML-ish text
// (<a><b/></a>); the term encoding as brace text (a{b{}}), the notation of
// Section 4.2.

// XMLString renders the tree as minimal XML (no declaration, attributes or
// text content).
func XMLString(t *tree.Node) string {
	var b strings.Builder
	WriteXML(&b, t)
	return b.String()
}

// WriteXML streams the tree as minimal XML to w.
func WriteXML(w io.Writer, t *tree.Node) {
	bw := bufio.NewWriter(w)
	var rec func(n *tree.Node)
	rec = func(n *tree.Node) {
		if len(n.Children) == 0 {
			bw.WriteString("<")
			bw.WriteString(n.Label)
			bw.WriteString("/>")
			return
		}
		bw.WriteString("<")
		bw.WriteString(n.Label)
		bw.WriteString(">")
		for _, c := range n.Children {
			rec(c)
		}
		bw.WriteString("</")
		bw.WriteString(n.Label)
		bw.WriteString(">")
	}
	rec(t)
	bw.Flush()
}

// TermString renders the tree in the brace notation of Section 4.2:
// a{b{a{}a{}}c{}}.
func TermString(t *tree.Node) string {
	var b strings.Builder
	var rec func(n *tree.Node)
	rec = func(n *tree.Node) {
		b.WriteString(n.Label)
		b.WriteByte('{')
		for _, c := range n.Children {
			rec(c)
		}
		b.WriteByte('}')
	}
	rec(t)
	return b.String()
}

// XMLScanner is a hand-rolled streaming scanner for the minimal XML form.
// It produces markup events (Close events carry the label) without
// buffering the document: this is the fast path used by the benchmarks.
//
// Supported: <a>, </a>, <a/>, whitespace between tags, attributes (skipped
// up to the closing '>'), comments (<!-- -->) and processing instructions
// (<? ?>). Text content is skipped. Mismatched closing tags are reported by
// the evaluator layer, not here.
type XMLScanner struct {
	r       *bufio.Reader
	self    string // pending self-closing tag label to emit a Close for
	done    bool
	nameBuf []byte
	intern  map[string]string // label interning: one allocation per distinct label
}

// NewXMLScanner returns a scanner over r.
func NewXMLScanner(r io.Reader) *XMLScanner {
	return &XMLScanner{
		r:      bufio.NewReaderSize(r, 64<<10),
		intern: make(map[string]string, 16),
	}
}

// Next implements Source.
func (s *XMLScanner) Next() (Event, error) {
	if s.self != "" {
		label := s.self
		s.self = ""
		return Event{Close, label}, nil
	}
	if s.done {
		return Event{}, io.EOF
	}
	for {
		// Skip to next '<'.
		if err := s.skipTo('<'); err != nil {
			s.done = true
			return Event{}, io.EOF
		}
		c, err := s.r.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("%w: truncated tag", ErrMalformed)
		}
		switch c {
		case '/':
			name, err := s.readName()
			if err != nil {
				return Event{}, err
			}
			if err := s.skipTo('>'); err != nil {
				return Event{}, fmt.Errorf("%w: truncated closing tag", ErrMalformed)
			}
			return Event{Close, name}, nil
		case '!':
			// Comment <!-- ... -->, CDATA <![CDATA[ ... ]]> (skipped like
			// text), or doctype <!...>.
			if err := s.skipDirective(); err != nil {
				return Event{}, err
			}
			continue
		case '?':
			// Processing instruction: skip to the closing '?>'.
			if err := s.skipUntil("?>"); err != nil {
				return Event{}, fmt.Errorf("%w: truncated processing instruction", ErrMalformed)
			}
			continue
		default:
			if err := s.r.UnreadByte(); err != nil {
				return Event{}, err
			}
			name, err := s.readName()
			if err != nil {
				return Event{}, err
			}
			// Skip attributes; detect self-closing.
			selfClose := false
			for {
				b, err := s.r.ReadByte()
				if err != nil {
					return Event{}, fmt.Errorf("%w: truncated tag %q", ErrMalformed, name)
				}
				if b == '/' {
					selfClose = true
					continue
				}
				if b == '>' {
					break
				}
				if b == '"' || b == '\'' { // attribute value; skip to matching quote
					if err := s.skipTo(b); err != nil {
						return Event{}, fmt.Errorf("%w: unterminated attribute", ErrMalformed)
					}
					selfClose = false
				} else if b != ' ' && b != '\t' && b != '\n' && b != '\r' && b != '=' {
					selfClose = false
				}
			}
			if selfClose {
				s.self = name
			}
			return Event{Open, name}, nil
		}
	}
}

func (s *XMLScanner) readName() (string, error) {
	s.nameBuf = s.nameBuf[:0]
	for {
		c, err := s.r.ReadByte()
		if err != nil {
			return "", fmt.Errorf("%w: truncated name", ErrMalformed)
		}
		if c == '>' || c == '/' || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			if err := s.r.UnreadByte(); err != nil {
				return "", err
			}
			break
		}
		s.nameBuf = append(s.nameBuf, c)
	}
	if len(s.nameBuf) == 0 {
		return "", fmt.Errorf("%w: empty tag name", ErrMalformed)
	}
	if label, ok := s.intern[string(s.nameBuf)]; ok { // no alloc: map lookup by []byte-to-string conversion is optimized
		return label, nil
	}
	label := string(s.nameBuf)
	s.intern[label] = label
	return label, nil
}

// skipDirective consumes a directive after "<!": comments to "-->", CDATA
// sections to "]]>", anything else to ">".
func (s *XMLScanner) skipDirective() error {
	peek, err := s.r.Peek(2)
	if err == nil && string(peek) == "--" {
		if err := s.skipUntil("-->"); err != nil {
			return fmt.Errorf("%w: unterminated comment", ErrMalformed)
		}
		return nil
	}
	peek, err = s.r.Peek(7)
	if err == nil && string(peek) == "[CDATA[" {
		if err := s.skipUntil("]]>"); err != nil {
			return fmt.Errorf("%w: unterminated CDATA section", ErrMalformed)
		}
		return nil
	}
	if err := s.skipTo('>'); err != nil {
		return fmt.Errorf("%w: truncated directive", ErrMalformed)
	}
	return nil
}

// skipUntil discards input up to and including the marker string.
func (s *XMLScanner) skipUntil(marker string) error {
	matched := 0
	for {
		c, err := s.r.ReadByte()
		if err != nil {
			return err
		}
		if c == marker[matched] {
			matched++
			if matched == len(marker) {
				return nil
			}
		} else if c == marker[0] {
			matched = 1
		} else {
			matched = 0
		}
	}
}

// skipTo discards input up to and including delim without allocating.
func (s *XMLScanner) skipTo(delim byte) error {
	for {
		c, err := s.r.ReadByte()
		if err != nil {
			return err
		}
		if c == delim {
			return nil
		}
	}
}

// TermScanner streams the brace notation a{b{}c{}} as term events.
type TermScanner struct {
	r    *bufio.Reader
	done bool
}

// NewTermScanner returns a scanner over r.
func NewTermScanner(r io.Reader) *TermScanner {
	return &TermScanner{r: bufio.NewReaderSize(r, 64<<10)}
}

// Next implements Source.
func (s *TermScanner) Next() (Event, error) {
	if s.done {
		return Event{}, io.EOF
	}
	for {
		c, err := s.r.ReadByte()
		if err != nil {
			s.done = true
			return Event{}, io.EOF
		}
		switch {
		case c == '}':
			return Event{Kind: Close}, nil
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',':
			continue
		default:
			var b strings.Builder
			b.WriteByte(c)
			for {
				c, err := s.r.ReadByte()
				if err != nil {
					return Event{}, fmt.Errorf("%w: truncated term label", ErrMalformed)
				}
				if c == '{' {
					return Event{Open, b.String()}, nil
				}
				b.WriteByte(c)
			}
		}
	}
}

// ParseXML parses the minimal XML form into a tree.
func ParseXML(s string) (*tree.Node, error) {
	return Decode(NewXMLScanner(strings.NewReader(s)))
}

// ParseTerm parses the brace form into a tree.
func ParseTerm(s string) (*tree.Node, error) {
	return Decode(NewTermScanner(strings.NewReader(s)))
}
