package encoding_test

import (
	"bytes"
	"reflect"
	"testing"

	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
)

// FuzzCodedVsString fuzzes the document bytes (brace notation) and checks
// the compiled symbol-coded pipeline against the per-event string pipeline
// for every compiled machine class: match sets from SelectCoded must equal
// Select's exactly, and RecognizeCoded must agree with Recognize. Labels
// outside the machine alphabets code to the unknown sentinel, so malformed
// and out-of-alphabet documents exercise the poison rows of the compiled
// tables — the coding must be observationally lossless even there.
func FuzzCodedVsString(f *testing.F) {
	f.Add([]byte("b{a{}a{}}"))
	f.Add([]byte("a{b{}a{}b{}}"))
	f.Add([]byte("a{a{b{}b{a{}}}b{}}"))
	f.Add([]byte("c{a{c{b{}}}}"))
	f.Add([]byte("a{}"))
	f.Add([]byte("x{y{}}"))    // outside every alphabet: sentinel paths
	f.Add([]byte("a{x{}b{}}")) // sentinel mid-stream between known labels
	f.Add([]byte("a{b{}"))     // malformed: error parity with a partial batch

	anC := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	anA := classify.Analyze(rex.MustCompile(paperfigs.Fig3aRegex, paperfigs.GammaABC()))
	lAB := rex.MustCompile("(b|ab*a)*", paperfigs.GammaAB())
	type machine struct {
		name  string
		fresh func() core.Evaluator
	}
	var machines []machine
	add := func(name string, ev core.Evaluator, err error) {
		if err != nil {
			f.Fatal(err)
		}
		if !core.CodedCapable(ev) {
			f.Fatalf("%s does not compile", name)
		}
		machines = append(machines, machine{name, func() core.Evaluator { return ev }})
	}
	stackless3c, err := core.BlindStacklessQL(anC)
	if err != nil {
		f.Fatal(err)
	}
	add("blind stackless .*a.*b", stackless3c, nil)
	tagA, err := core.BlindRegisterlessQL(anA)
	if err != nil {
		f.Fatal(err)
	}
	add("blind registerless a.*b", tagA.Evaluator(), nil)
	el, err := core.RegisterlessEL(anA)
	if err != nil {
		f.Fatal(err)
	}
	add("synopsis EL a.*b", el, nil)
	al, err := core.RegisterlessAL(classify.Analyze(rex.MustCompile(paperfigs.Fig3bRegex, paperfigs.GammaABC())))
	add("synopsis AL "+paperfigs.Fig3bRegex, al, err)
	add("table DRA ex2.2", core.Example22().Evaluator(), nil)
	add("table DRA ex2.5", core.Example25(lAB).Evaluator(), nil)
	add("table DRA ex2.6", core.Example26().Evaluator(), nil)
	add("table DRA ex2.7", core.Example27Minimal().Evaluator(), nil)

	f.Fuzz(func(t *testing.T, doc []byte) {
		events, scanErr := encoding.ReadAll(encoding.NewTermScanner(bytes.NewReader(doc)))
		if len(events) == 0 && scanErr != nil {
			return
		}
		for _, mc := range machines {
			ev := mc.fresh()
			var want []core.Match
			wantN, wantErr := core.Select(ev, encoding.NewSliceSource(events), func(m core.Match) { want = append(want, m) })
			var got []core.Match
			gotN, gotErr := core.SelectCoded(ev, encoding.NewSliceSource(events), func(m core.Match) { got = append(got, m) })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: coded matches %v, string matches %v", mc.name, got, want)
			}
			if gotN != wantN || (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: coded (%d, %v), string (%d, %v)", mc.name, gotN, gotErr, wantN, wantErr)
			}
			wantOK, wantErr := core.Recognize(ev, encoding.NewSliceSource(events))
			gotOK, gotErr := core.RecognizeCoded(ev, encoding.NewSliceSource(events))
			if gotOK != wantOK || (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: RecognizeCoded (%v, %v), Recognize (%v, %v)", mc.name, gotOK, gotErr, wantOK, wantErr)
			}
		}
	})
}
