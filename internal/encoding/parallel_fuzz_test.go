package encoding_test

import (
	"bytes"
	"reflect"
	"testing"

	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
	"stackless/internal/parallel"
	"stackless/internal/rex"
	"stackless/internal/stackeval"
)

// FuzzParallelSplit fuzzes both the document bytes (brace notation, term
// encoding) and the chunk split points: for every machine class the
// chunk-parallel run must reproduce the sequential match set exactly, and
// nothing may panic — a wrong join silently corrupts results, so the
// differential is the whole point. Documents that do not parse as a tree
// still exercise the scanners; documents outside a machine's alphabet
// exercise the poison paths.
func FuzzParallelSplit(f *testing.F) {
	// Example 2.2: all a-labelled nodes at the same depth (and a violation).
	f.Add([]byte("b{a{}a{}}"), []byte{2, 5})
	f.Add([]byte("b{a{}b{a{}}}"), []byte{1, 2, 3})
	// Example 2.5: the root's children spell a word of L.
	f.Add([]byte("a{b{}a{}b{}}"), []byte{4})
	// Example 2.9 / Fig. 2 shape: nested a-chains with b-leaves.
	f.Add([]byte("a{a{b{}b{a{}}}b{}}"), []byte{0, 7, 9})
	f.Add([]byte("c{a{c{b{}}}}"), []byte{3, 3, 250})
	f.Add([]byte("a{}"), []byte{})
	f.Add([]byte("x{y{}}"), []byte{1}) // outside every alphabet: poison paths

	anC := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	stackless3c, err := core.BlindStacklessQL(anC)
	if err != nil {
		f.Fatal(err)
	}
	anA := classify.Analyze(rex.MustCompile(paperfigs.Fig3aRegex, paperfigs.GammaABC()))
	tagA, err := core.BlindRegisterlessQL(anA)
	if err != nil {
		f.Fatal(err)
	}
	registerless3a := tagA.Evaluator().(core.Chunkable)
	lAB := rex.MustCompile("(b|ab*a)*", paperfigs.GammaAB())
	dras := []core.Chunkable{
		core.Example22().Evaluator().(core.Chunkable),
		core.Example25(lAB).Evaluator().(core.Chunkable),
		core.Example26().Evaluator().(core.Chunkable),
		core.Example27Minimal().Evaluator().(core.Chunkable),
	}
	pool := parallel.NewPool(3)

	f.Fuzz(func(t *testing.T, doc, cutBytes []byte) {
		term, err := encoding.ReadAll(encoding.NewTermScanner(bytes.NewReader(doc)))
		if err != nil {
			return
		}
		tree, err := encoding.Decode(encoding.NewSliceSource(term))
		if err != nil {
			return
		}
		markup := encoding.Markup(tree)
		inAlphabet := true
		for _, e := range term {
			if e.Kind == encoding.Open && !paperfigs.GammaABC().Contains(e.Label) {
				inAlphabet = false
				break
			}
		}

		check := func(name string, m core.Chunkable, events []encoding.Event, oracle core.Evaluator) {
			cuts := make([]int, 0, len(cutBytes))
			for _, b := range cutBytes {
				cuts = append(cuts, int(b)%(len(events)+1))
			}
			var want []core.Match
			if _, err := core.Select(m, encoding.NewSliceSource(events), func(mt core.Match) { want = append(want, mt) }); err != nil {
				t.Fatalf("%s: sequential: %v", name, err)
			}
			// The machines poison absorbingly on out-of-alphabet labels
			// (such trees are outside every class under study), while the
			// stack oracle recovers per branch — the oracle comparison is
			// only meaningful inside the alphabet. The parallel-vs-
			// sequential differential below holds unconditionally.
			if oracle != nil && inAlphabet {
				var ref []core.Match
				if _, err := core.Select(oracle, encoding.NewSliceSource(events), func(mt core.Match) { ref = append(ref, mt) }); err != nil {
					t.Fatalf("%s: oracle: %v", name, err)
				}
				if !reflect.DeepEqual(want, ref) {
					t.Fatalf("%s: sequential %v diverges from stack oracle %v", name, want, ref)
				}
			}
			var got []core.Match
			parallel.SelectAt(pool, m, events, cuts, func(mt core.Match) { got = append(got, mt) })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: cuts %v: parallel %v, sequential %v", name, cuts, got, want)
			}
		}

		check("blind stackless .*a.*b", stackless3c, term, stackeval.QL(anC.D))
		check("blind registerless a.*b", registerless3a, term, stackeval.QL(anA.D))
		for i, m := range dras {
			check("table DRA "+string(rune('0'+i)), m, markup, nil)
		}
	})
}
