// The linter fuzz target lives here with the other repo-wide fuzz entry
// points. It must be an external test package: encoding cannot import
// dralint from inside (dralint → core → encoding).
package encoding_test

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/dralint"
)

// FuzzDRALint: dralint.Lint never panics, however mangled the machine.
// The fuzzer grows a random total DRA, then corrupts its exported fields
// and a few table entries with the remaining input bytes — producing
// exactly the kind of half-built machine the linter exists to judge.
func FuzzDRALint(f *testing.F) {
	f.Add(int64(1), 3, 1, []byte(nil))
	f.Add(int64(2), 1, 0, []byte{0xff, 0x00})
	f.Add(int64(3), 5, 2, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, seed int64, states, regs int, mutations []byte) {
		if states < 1 || states > 8 || regs < 0 || regs > 2 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		d := core.RandomDRA(rng, alphabet.Letters("ab"), states, regs)
		for i := 0; i+1 < len(mutations); i += 2 {
			op, arg := mutations[i], int(mutations[i+1])
			switch op % 6 {
			case 0:
				d.Start = arg - 128 // out-of-range starts included
			case 1:
				d.States = arg - 128
			case 2:
				d.Regs = arg % 20 // may disagree with the table
			case 3:
				if len(d.Accept) > 0 {
					d.Accept[arg%len(d.Accept)] = !d.Accept[arg%len(d.Accept)]
				}
			case 4:
				d.Accept = d.Accept[:arg%(len(d.Accept)+1)]
			case 5:
				if arg%4 == 0 {
					d.Alphabet = nil
				}
			}
		}
		// Must not panic, with or without the restriction check.
		dralint.LintWith(d, dralint.Config{RequireRestricted: true, MaxPerKind: 3})
		dralint.Lint(d)
	})
}
