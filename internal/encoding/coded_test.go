package encoding

import (
	"errors"
	"io"
	"testing"

	"stackless/internal/alphabet"
)

func codedEq(a, b CodedEvent) bool { return a == b }

func TestCodeEvents(t *testing.T) {
	coder := alphabet.NewCoder(alphabet.Letters("ab"))
	events := []Event{
		{Kind: Open, Label: "a"},
		{Kind: Open, Label: "zz"},
		{Kind: Close, Label: "zz"},
		{Kind: Close, Label: "a"},
		{Kind: Open, Label: "b"},
		{Kind: Close}, // term-style close: empty label is outside any alphabet
	}
	got := CodeEvents(coder, events, nil)
	want := []CodedEvent{
		{Sym: 0, Kind: Open},
		{Sym: 2, Kind: Open},
		{Sym: 2, Kind: Close},
		{Sym: 0, Kind: Close},
		{Sym: 1, Kind: Open},
		{Sym: 2, Kind: Close},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !codedEq(got[i], want[i]) {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Appending into an existing buffer preserves the prefix.
	buf := CodeEvents(coder, events[:2], nil)
	buf = CodeEvents(coder, events[2:], buf)
	for i := range want {
		if !codedEq(buf[i], want[i]) {
			t.Fatalf("append mode, event %d: got %+v, want %+v", i, buf[i], want[i])
		}
	}
}

// funnelSource hides a SliceSource behind the generic interface so the
// Batcher takes its per-event path.
type funnelSource struct{ inner *SliceSource }

func (f *funnelSource) Next() (Event, error) { return f.inner.Next() }

func batcherDoc(n int) []Event {
	var events []Event
	labels := []string{"a", "b", "zz"}
	for i := 0; i < n; i++ {
		l := labels[i%len(labels)]
		events = append(events, Event{Kind: Open, Label: l}, Event{Kind: Close, Label: l})
	}
	return events
}

func TestBatcherSliceAndGenericAgree(t *testing.T) {
	events := batcherDoc(1000) // 2000 events: several size-64 batches
	coder := alphabet.NewCoder(alphabet.Letters("ab"))
	for _, tc := range []struct {
		name string
		src  Source
	}{
		{"slice", NewSliceSource(events)},
		{"generic", &funnelSource{inner: NewSliceSource(events)}},
	} {
		b := NewBatcher(tc.src, coder, 64)
		var coded []CodedEvent
		var labels []string
		totalOpens := 0
		for {
			batch, opens, err := b.NextBatch()
			for i := range batch {
				coded = append(coded, batch[i])
				labels = append(labels, b.BatchLabel(i))
			}
			totalOpens += opens
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if len(batch) == 0 {
				t.Fatalf("%s: empty batch without error", tc.name)
			}
			if len(batch) > 64 {
				t.Fatalf("%s: batch of %d exceeds requested size", tc.name, len(batch))
			}
		}
		if len(coded) != len(events) {
			t.Fatalf("%s: %d coded events, want %d", tc.name, len(coded), len(events))
		}
		if totalOpens != 1000 {
			t.Fatalf("%s: %d opens, want 1000", tc.name, totalOpens)
		}
		for i, e := range events {
			wantSym := coder.Code(e.Label)
			if coded[i].Sym != wantSym || coded[i].Kind != e.Kind {
				t.Fatalf("%s: event %d: got %+v, want {%d %v}", tc.name, i, coded[i], wantSym, e.Kind)
			}
			if labels[i] != e.Label {
				t.Fatalf("%s: event %d: BatchLabel %q, want %q", tc.name, i, labels[i], e.Label)
			}
		}
		// The error is sticky.
		if _, _, err := b.NextBatch(); err != io.EOF {
			t.Fatalf("%s: repeated NextBatch error = %v, want io.EOF", tc.name, err)
		}
	}
}

func TestBatcherDefaultSize(t *testing.T) {
	b := NewBatcher(NewSliceSource(batcherDoc(3*DefaultBatch)), alphabet.NewCoder(alphabet.Letters("ab")), 0)
	batch, _, err := b.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != DefaultBatch {
		t.Fatalf("batch size %d, want DefaultBatch %d", len(batch), DefaultBatch)
	}
}

// TestBatcherPartialBatchWithError: a source error must be delivered with
// the final partial batch, and repeated afterwards.
func TestBatcherPartialBatchWithError(t *testing.T) {
	src := CheckBalance(NewSliceSource([]Event{
		{Kind: Open, Label: "a"},
		{Kind: Close, Label: "a"},
		{Kind: Close, Label: "a"}, // unbalanced: error from the source
	}))
	b := NewBatcher(src, alphabet.NewCoder(alphabet.Letters("a")), 8)
	batch, opens, err := b.NextBatch()
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	if len(batch) != 2 || opens != 1 {
		t.Fatalf("partial batch len %d opens %d, want 2 and 1", len(batch), opens)
	}
	if b.BatchLabel(0) != "a" || b.BatchLabel(1) != "a" {
		t.Fatal("labels of the partial batch must be retained")
	}
	if _, _, err2 := b.NextBatch(); !errors.Is(err2, ErrMalformed) {
		t.Fatalf("repeated err = %v, want sticky ErrMalformed", err2)
	}
}
