package encoding

import (
	"io"

	"stackless/internal/alphabet"
)

// Coded event pipeline (DESIGN.md §11). The string labels of an event
// stream are lowered once, per distinct label, to dense alphabet.Sym codes;
// the machines then step flat state×symbol tables over CodedEvent batches
// with no hashing, no interface dispatch and no resolver in the hot loop.
// Labels outside the machine's alphabet code to the dense unknown sentinel
// (alphabet.Coder.Unknown), which compiled tables route to their dead
// state — the same poison convention the string pipeline implements with a
// branch per event.

// CodedEvent is a tag event lowered to a dense symbol code: 8 bytes, no
// pointers, so a batch is one cache-friendly allocation the GC never scans.
type CodedEvent struct {
	// Sym is the label's code under the machine's alphabet, or the coder's
	// unknown sentinel. Close events under the term encoding carry the
	// sentinel (their empty label is outside every alphabet); machines with
	// universal-close tables never consult it.
	Sym alphabet.Sym
	// Kind distinguishes Open from Close, as in Event.
	Kind Kind
}

// DefaultBatch is the batch size used by the coded drivers: big enough to
// amortize the per-batch bookkeeping, small enough to stay resident in L1.
const DefaultBatch = 4096

// CodeEvents lowers events into coded form using coder, appending to buf
// (pass nil to allocate). One-shot counterpart of Batcher for callers that
// already buffered the whole stream (the chunk-parallel engine).
func CodeEvents(coder *alphabet.Coder, events []Event, buf []CodedEvent) []CodedEvent {
	for _, e := range events {
		buf = append(buf, CodedEvent{Sym: coder.Code(e.Label), Kind: e.Kind})
	}
	return buf
}

// Batcher drains a Source into reusable coded batches. The slice returned
// by NextBatch is overwritten by the next call; consumers must finish with
// a batch before pulling the next one. A *SliceSource input is consumed
// directly from its backing slice, skipping the per-event interface call.
type Batcher struct {
	src   Source
	slice *SliceSource // non-nil fast path
	coder *alphabet.Coder
	buf   []CodedEvent
	err   error

	// Label recovery for the current batch: the source window (slice fast
	// path, no copying) or the collected labels (generic path). Needed
	// because coding is lossy — every out-of-alphabet label maps to the one
	// unknown sentinel, yet machines that accept regardless of the label
	// (e.g. the synopsis ⊤ state) can select such events, and the reported
	// match must carry the original label.
	win    []Event
	labels []string
}

// BatchLabel returns the original label of event i of the current batch.
func (b *Batcher) BatchLabel(i int) string {
	if b.win != nil {
		return b.win[i].Label
	}
	return b.labels[i]
}

// NewBatcher returns a batcher of the given batch size (DefaultBatch when
// size <= 0) coding src's labels with coder.
func NewBatcher(src Source, coder *alphabet.Coder, size int) *Batcher {
	if size <= 0 {
		size = DefaultBatch
	}
	b := &Batcher{src: src, coder: coder, buf: make([]CodedEvent, 0, size)}
	if s, ok := src.(*SliceSource); ok {
		b.slice = s
	}
	return b
}

// NextBatch returns the next coded batch, the number of Open events in it,
// and the error that terminated the stream (io.EOF at a clean end). A final
// partial batch is returned together with its error; callers must process
// the batch before acting on the error. Subsequent calls repeat the error
// with an empty batch.
func (b *Batcher) NextBatch() ([]CodedEvent, int, error) {
	if b.err != nil {
		return nil, 0, b.err
	}
	buf := b.buf[:0]
	opens := 0
	if b.slice != nil {
		s := b.slice
		rest := s.events[s.pos:]
		if len(rest) == 0 {
			b.err = io.EOF
			return nil, 0, io.EOF
		}
		if len(rest) > cap(buf) {
			rest = rest[:cap(buf)]
		}
		for _, e := range rest {
			buf = append(buf, CodedEvent{Sym: b.coder.Code(e.Label), Kind: e.Kind})
			if e.Kind == Open {
				opens++
			}
		}
		s.pos += len(rest)
		b.buf, b.win = buf, rest
		return buf, opens, nil
	}
	labels := b.labels[:0]
	for len(buf) < cap(buf) {
		e, err := b.src.Next()
		if err != nil {
			b.err = err
			b.buf, b.labels = buf, labels
			return buf, opens, err
		}
		buf = append(buf, CodedEvent{Sym: b.coder.Code(e.Label), Kind: e.Kind})
		labels = append(labels, e.Label)
		if e.Kind == Open {
			opens++
		}
	}
	b.buf, b.labels = buf, labels
	return buf, opens, nil
}
