package encoding

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
)

// Bridges to the standard library parsers: real-world XML via encoding/xml
// and real-world JSON via encoding/json's streaming tokenizer.

// StdXMLSource adapts encoding/xml's token stream to markup events,
// skipping character data, comments, directives and processing
// instructions. It is slower than XMLScanner but handles full XML.
type StdXMLSource struct {
	dec *xml.Decoder
}

// NewStdXMLSource returns a Source over full XML input.
func NewStdXMLSource(r io.Reader) *StdXMLSource {
	return &StdXMLSource{dec: xml.NewDecoder(r)}
}

// Next implements Source.
func (s *StdXMLSource) Next() (Event, error) {
	for {
		tok, err := s.dec.Token()
		if err != nil {
			return Event{}, err // io.EOF at end
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return Event{Open, t.Name.Local}, nil
		case xml.EndElement:
			return Event{Close, t.Name.Local}, nil
		}
	}
}

// JSONSource adapts a JSON document to term events following the paper's
// JSON reading (Sections 1 and 4.2): object keys are node labels, so the
// document {"a":{"b":1,"c":[2,3]}} becomes the tree
// root(a(b,c(item,item))). Arrays introduce children labelled ArrayItem;
// scalars are leaves. The root object is labelled RootLabel.
type JSONSource struct {
	dec    *json.Decoder
	events []Event // small lookahead buffer
	stack  []jsonCtx
	done   bool
	opened bool
}

type jsonCtx struct {
	inArray bool
}

// RootLabel and ArrayItem are the synthetic labels used by JSONSource.
const (
	RootLabel = "$"
	ArrayItem = "item"
)

// NewJSONSource returns a term-event Source over a JSON document.
func NewJSONSource(r io.Reader) *JSONSource {
	return &JSONSource{dec: json.NewDecoder(r)}
}

// Next implements Source.
func (s *JSONSource) Next() (Event, error) {
	for len(s.events) == 0 {
		if s.done {
			return Event{}, io.EOF
		}
		if err := s.advance(); err != nil {
			return Event{}, err
		}
	}
	e := s.events[0]
	s.events = s.events[1:]
	return e, nil
}

func (s *JSONSource) advance() error {
	tok, err := s.dec.Token()
	if err == io.EOF {
		s.done = true
		if s.opened {
			return fmt.Errorf("%w: truncated JSON", ErrMalformed)
		}
		return nil
	}
	if err != nil {
		return err
	}
	if !s.opened {
		s.opened = true
		s.events = append(s.events, Event{Open, RootLabel})
	}
	if t, isDelim := tok.(json.Delim); isDelim {
		switch t {
		case '{', '[':
			// A container that is an array element becomes an "item" node;
			// a container that is a key's value or the root reuses the node
			// opened for the key / the root.
			if len(s.stack) > 0 && s.stack[len(s.stack)-1].inArray {
				s.events = append(s.events, Event{Open, ArrayItem})
			}
			s.stack = append(s.stack, jsonCtx{inArray: t == '['})
		case '}', ']':
			s.stack = s.stack[:len(s.stack)-1]
			// The closed container's node: root if the stack emptied, else
			// the enclosing key/item node.
			s.events = append(s.events, Event{Kind: Close})
			if len(s.stack) == 0 {
				s.done = true
			}
		}
		return nil
	}
	// Non-delimiter token: either an object key or a scalar value.
	return s.handleValueOrKey(tok)
}

func (s *JSONSource) handleValueOrKey(tok json.Token) error {
	if len(s.stack) == 0 {
		// Bare scalar document: single leaf under root.
		s.events = append(s.events, Event{Open, "value"}, Event{Kind: Close}, Event{Kind: Close})
		s.done = true
		return nil
	}
	top := s.stack[len(s.stack)-1]
	if top.inArray {
		s.events = append(s.events, Event{Open, ArrayItem}, Event{Kind: Close})
		return nil
	}
	// In an object: this token is a key; its value follows.
	key, ok := tok.(string)
	if !ok {
		return fmt.Errorf("%w: non-string object key %v", ErrMalformed, tok)
	}
	s.events = append(s.events, Event{Open, key})
	// Peek the value: scalar closes immediately; container defers the close
	// to the matching closing delimiter.
	val, err := s.dec.Token()
	if err != nil {
		return fmt.Errorf("%w: key %q without value", ErrMalformed, key)
	}
	if d, isDelim := val.(json.Delim); isDelim {
		switch d {
		case '{':
			s.stack = append(s.stack, jsonCtx{inArray: false})
		case '[':
			s.stack = append(s.stack, jsonCtx{inArray: true})
		default:
			return fmt.Errorf("%w: unexpected %v after key %q", ErrMalformed, d, key)
		}
		return nil
	}
	s.events = append(s.events, Event{Kind: Close})
	return nil
}
