package encoding

import (
	"strings"
	"testing"
)

// Fuzz targets: the scanners must never panic on arbitrary input, and
// anything they successfully decode must round-trip.

func FuzzXMLScanner(f *testing.F) {
	f.Add("<a><b/></a>")
	f.Add("<a><b></b></a>")
	f.Add("<?xml?><!-- c --><a x='1'/>")
	f.Add("<a><b></a></b>")
	f.Add("<<<>>>")
	f.Add("")
	f.Add("<a")
	f.Fuzz(func(t *testing.T, doc string) {
		n, err := Decode(NewXMLScanner(strings.NewReader(doc)))
		if err != nil {
			return
		}
		back, err := ParseXML(XMLString(n))
		if err != nil || !back.Equal(n) {
			t.Fatalf("decoded tree %s does not round-trip", n)
		}
	})
}

func FuzzTermScanner(f *testing.F) {
	f.Add("a{b{}c{}}")
	f.Add("a{")
	f.Add("}}}{")
	f.Add("")
	f.Add("label with spaces{}")
	f.Fuzz(func(t *testing.T, doc string) {
		n, err := Decode(NewTermScanner(strings.NewReader(doc)))
		if err != nil {
			return
		}
		back, err := ParseTerm(TermString(n))
		if err != nil || !back.Equal(n) {
			t.Fatalf("decoded tree %s does not round-trip", n)
		}
	})
}

func FuzzJSONSource(f *testing.F) {
	f.Add(`{"a": 1}`)
	f.Add(`[1,[2],{"k":3}]`)
	f.Add(`{`)
	f.Add(`tru`)
	f.Add(`{"a": {"b": [1,2,{"c": null}]}}`)
	f.Fuzz(func(t *testing.T, doc string) {
		// Must not panic; errors are fine.
		_, _ = Decode(NewJSONSource(strings.NewReader(doc)))
	})
}
