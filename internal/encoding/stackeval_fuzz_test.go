package encoding_test

import (
	"bytes"
	"reflect"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/parallel"
	"stackless/internal/rex"
	"stackless/internal/stackeval"
	"stackless/internal/tree"
)

// oldStack is a test-local reimplementation of the pushdown evaluator as it
// was before the pooled coded rebuild: per-event label resolution, a pair of
// append-grown state/aliveness stacks, and an explicit aliveness bool. It is
// the semantic anchor of FuzzStackCodedVsString — the rebuild must be
// observationally identical, including the empty-stack close no-op and the
// per-branch recovery from foreign labels.
type oldStack struct {
	d     *dfa.DFA
	res   *alphabet.Resolver
	state int
	alive bool
	stk   []int
	alv   []bool
}

func newOldStack(d *dfa.DFA) *oldStack {
	return &oldStack{d: d, res: alphabet.NewResolver(d.Alphabet), state: d.Start, alive: true}
}

func (m *oldStack) Reset() {
	m.state, m.alive = m.d.Start, true
	m.stk, m.alv = m.stk[:0], m.alv[:0]
}

func (m *oldStack) Step(e encoding.Event) {
	if e.Kind == encoding.Open {
		m.stk = append(m.stk, m.state)
		m.alv = append(m.alv, m.alive)
		if s, ok := m.res.ID(e.Label); ok && m.alive {
			m.state = m.d.Delta[m.state][s]
		} else {
			m.alive = false
		}
		return
	}
	if n := len(m.stk); n > 0 {
		m.state, m.alive = m.stk[n-1], m.alv[n-1]
		m.stk, m.alv = m.stk[:n-1], m.alv[:n-1]
	}
}

func (m *oldStack) Accepting() bool { return m.alive && m.d.Accept[m.state] }

// FuzzStackCodedVsString fuzzes the document bytes (term encoding, so
// labels outside every alphabet come for free) and the chunk cut points,
// and checks four implementations of the same pushdown against each other:
// the old per-event machine above, the rebuilt machine on its string path
// (core.Select drives Step), the rebuilt machine on its coded path
// (core.SelectCoded drives SelectBatch), and the chunk-parallel engine over
// the speculative segment summaries at adversarial cuts (SelectAt bypasses
// the viability gate). Parsable documents are additionally checked against
// the in-memory tree oracle.
func FuzzStackCodedVsString(f *testing.F) {
	f.Add([]byte("a{b{}a{b{}}}"), []byte{3, 7})
	f.Add([]byte("a{z{a{}}a{}}"), []byte{1, 2, 3}) // foreign subtree: per-branch recovery
	f.Add([]byte("b{a{}a{}a{}}"), []byte{4})
	f.Add([]byte("a{a{a{a{}}}}"), []byte{2, 250}) // deep spike + out-of-range cut
	f.Add([]byte("a{}"), []byte{})

	machines := []*dfa.DFA{
		rex.MustCompile("(a|b)*ab", alphabet.Letters("ab")),
		rex.MustCompile("a(a|b)*b", alphabet.Letters("ab")),
		rex.MustCompile("a*", alphabet.Letters("a")),
	}
	pool := parallel.NewPool(3)

	f.Fuzz(func(t *testing.T, doc, cutBytes []byte) {
		term, err := encoding.ReadAll(encoding.NewTermScanner(bytes.NewReader(doc)))
		if err != nil {
			return
		}
		tr, treeErr := encoding.Decode(encoding.NewSliceSource(term))
		for mi, d := range machines {
			old := newOldStack(d)
			old.Reset()
			var want []int
			pos := -1
			for _, e := range term {
				old.Step(e)
				if e.Kind == encoding.Open {
					pos++
					if old.Accepting() {
						want = append(want, pos)
					}
				}
			}

			ev := stackeval.QL(d)
			str, err := core.SelectPositions(ev, encoding.NewSliceSource(term))
			if err != nil {
				t.Fatalf("machine %d: string path: %v", mi, err)
			}
			if !reflect.DeepEqual(str, want) && (len(str) != 0 || len(want) != 0) {
				t.Fatalf("machine %d: string path %v, old machine %v", mi, str, want)
			}

			var coded []int
			if _, err := core.SelectCoded(ev, encoding.NewSliceSource(term), func(mt core.Match) {
				coded = append(coded, mt.Pos)
			}); err != nil {
				t.Fatalf("machine %d: coded path: %v", mi, err)
			}
			if !reflect.DeepEqual(coded, want) && (len(coded) != 0 || len(want) != 0) {
				t.Fatalf("machine %d: coded path %v, old machine %v", mi, coded, want)
			}

			cuts := make([]int, 0, len(cutBytes))
			for _, b := range cutBytes {
				cuts = append(cuts, int(b)%(len(term)+1))
			}
			var par []int
			parallel.SelectAt(pool, ev, term, cuts, func(mt core.Match) { par = append(par, mt.Pos) })
			if !reflect.DeepEqual(par, want) && (len(par) != 0 || len(want) != 0) {
				t.Fatalf("machine %d: cuts %v: parallel %v, old machine %v", mi, cuts, par, want)
			}

			if treeErr == nil {
				oracle := tree.SelectQL(d, tr)
				if !reflect.DeepEqual(oracle, want) && (len(oracle) != 0 || len(want) != 0) {
					t.Fatalf("machine %d: tree oracle %v, old machine %v", mi, oracle, want)
				}
			}
		}
	})
}
