package analysis

// A worklist dataflow solver over the CFGs of cfg.go. The framework is
// deliberately small: analyses over finite lattices of modest height
// (bit sets, small products) with monotone block transfer functions. That
// covers everything the flow-sensitive analyzers need — outstanding-save
// sets for lifecycle, reachability with constant-condition pruning for
// allocfree — without simulating values.

// A Lattice describes the fact domain of one analysis: a bottom element,
// the join at control-flow merges, and equality for the fixed-point test.
// Join must be monotone and idempotent or the solver will not terminate.
type Lattice[F any] interface {
	Bottom() F
	Join(a, b F) F
	Equal(a, b F) bool
}

// Direction selects how facts propagate.
type Direction int

const (
	// Forward propagates facts from Entry along edges: In(b) = ⊔ Out(preds).
	Forward Direction = iota
	// Backward propagates facts from Exit against edges: In(b) = ⊔ Out(succs)
	// (with "In" meaning the fact at the block's downstream face).
	Backward
)

// A Solution holds the fixed point: for Forward analyses In is the fact on
// entry to the block and Out the fact after its transfer; for Backward
// analyses In is the fact at the block's end and Out the fact before it.
type Solution[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// Solve runs the worklist algorithm to a fixed point. boundary is the fact
// at the Entry block (Forward) or Exit block (Backward). transfer maps the
// incoming fact through one block; it must not mutate its input (return a
// fresh or unchanged value). Unreachable blocks keep Bottom.
func Solve[F any](g *CFG, lat Lattice[F], boundary F, dir Direction, transfer func(b *Block, in F) F) *Solution[F] {
	sol := &Solution[F]{In: map[*Block]F{}, Out: map[*Block]F{}}
	for _, b := range g.Blocks {
		sol.In[b] = lat.Bottom()
		sol.Out[b] = lat.Bottom()
	}
	start := g.Entry
	if dir == Backward {
		start = g.Exit
	}
	// The worklist is a FIFO over block indices with a membership bitmap —
	// deterministic and O(edges × lattice height). Every reachable block is
	// seeded once so pure-gen transfers fire even when the incoming fact
	// stays Bottom; unreachable blocks are never transferred, so facts
	// genned in dead code cannot leak into live joins.
	reach := g.Reachable()
	queued := make([]bool, len(g.Blocks))
	var queue []*Block
	push := func(b *Block) {
		if reach[b] && !queued[b.Index] {
			queued[b.Index] = true
			queue = append(queue, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b.Index] = false

		in := lat.Bottom()
		preds := b.Preds
		if dir == Backward {
			preds = b.Succs
		}
		for _, p := range preds {
			if reach[p] {
				in = lat.Join(in, sol.Out[p])
			}
		}
		if b == start {
			in = lat.Join(in, boundary)
		}
		out := transfer(b, in)
		sol.In[b] = in
		if lat.Equal(out, sol.Out[b]) {
			continue
		}
		sol.Out[b] = out
		succs := b.Succs
		if dir == Backward {
			succs = b.Preds
		}
		for _, s := range succs {
			push(s)
		}
	}
	return sol
}

// BitsLattice is the power-set lattice over up to 64 named sites, joined by
// union — the workhorse domain: each bit is one "may be outstanding" /
// "may have happened" fact.
type BitsLattice struct{}

// Bottom implements Lattice: the empty set.
func (BitsLattice) Bottom() uint64 { return 0 }

// Join implements Lattice: set union.
func (BitsLattice) Join(a, b uint64) uint64 { return a | b }

// Equal implements Lattice.
func (BitsLattice) Equal(a, b uint64) bool { return a == b }
