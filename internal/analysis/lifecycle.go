package analysis

// Lifecycle machine-checks two flow contracts of the evaluator/snapshot
// API (DESIGN.md §15):
//
//  1. Save/restore pairing. A configuration captured with x.SaveConfig()
//     must be consumed by an x.RestoreConfig(...) on every path from the
//     save to the function's exit — a save that can leak out of a return
//     path leaves the machine in a dangling mid-replay state. Two uses
//     are exempt by construction: `return x.SaveConfig()` (delegation —
//     the obligation transfers with the value) and deferred restores
//     (modelled as running on every exit path). Deliberate cross-
//     iteration protocols (the tablecheck BFS stores configs in nodes and
//     restores them in later iterations) opt out with //treelint:partial
//     on the function or the save's line.
//
//  2. Reset on the reuse back-edge. A loop that restarts its event stream
//     (a Rewind call, or a source/batcher constructed per iteration) and
//     drives an evaluator declared outside the loop must also Reset (or
//     RestoreConfig) that evaluator inside the loop — otherwise iteration
//     k+1 replays the stream into iteration k's final state. The region
//     "the loop" is a cyclic SCC of the CFG, so the check survives any
//     syntactic shape of the back edge.
//
// Both checks run on non-test files only: test helpers save, restore and
// rewind ad hoc as part of what they test.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lifecycle is the save/restore-pairing and reset-on-reuse analyzer.
var Lifecycle = &Analyzer{
	Name: "lifecycle",
	Doc: "SaveConfig must reach a matching RestoreConfig on every path to return " +
		"(defers count, `return x.SaveConfig()` delegates), and a loop that restarts " +
		"its stream must Reset evaluators it reuses; opt out with //treelint:partial <reason>",
	Run: runLifecycle,
}

// driveMethods are the calls that advance an evaluator's configuration —
// reusing a machine across streams without Reset between them is the bug
// class check 2 exists for.
var driveMethods = map[string]bool{
	"Step":                 true,
	"StepBatch":            true,
	"SelectBatch":          true,
	"SimulateSegment":      true,
	"SimulateSegmentCoded": true,
}

// restartRe matches the constructors that begin a fresh event stream; a
// method call named Rewind is the other restart form.
var restartRe = regexp.MustCompile(`^New\w*(Source|Batcher)$`)

func runLifecycle(pass *Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.FuncHasDirective(f, fn, "partial") {
				continue
			}
			g := BuildCFG(fn.Body, pass.TypesInfo)
			checkSaveRestore(pass, fn, g)
			checkResetOnReuse(pass, fn, g)
		}
	}
	return nil
}

// recvKey canonicalizes the receiver of a lifecycle call: the printed
// identifier chain (`mu`, `ev.inner`). Non-chain receivers (map lookups,
// call results) return "" and are not tracked.
func recvKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := recvKey(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return recvKey(e.X)
	}
	return ""
}

// methodCall matches a call of the form <recv>.<name>(...) and returns the
// receiver key.
func methodCall(call *ast.CallExpr, name string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return "", false
	}
	key := recvKey(sel.X)
	return key, key != ""
}

// checkSaveRestore runs the outstanding-saves bit analysis: bit i is "save
// site i may still be unrestored here".
func checkSaveRestore(pass *Pass, fn *ast.FuncDecl, g *CFG) {
	type save struct {
		pos token.Pos
		key string
	}
	var saves []save
	// Index the save sites; saves returned directly are delegation.
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			inReturn := map[*ast.CallExpr]bool{}
			walk(node, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				if rs, ok := x.(*ast.ReturnStmt); ok {
					for _, res := range rs.Results {
						walk(res, func(y ast.Node) bool {
							if c, ok := y.(*ast.CallExpr); ok {
								inReturn[c] = true
							}
							return true
						})
					}
				}
				call, ok := x.(*ast.CallExpr)
				if !ok || inReturn[call] {
					return true
				}
				if key, ok := methodCall(call, "SaveConfig"); ok && len(call.Args) == 0 {
					saves = append(saves, save{pos: call.Pos(), key: key})
				}
				return true
			})
		}
	}
	if len(saves) == 0 || len(saves) > 64 {
		return
	}

	transfer := func(b *Block, in uint64) uint64 {
		out := in
		for _, node := range b.Nodes {
			walk(node, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, ok := methodCall(call, "SaveConfig"); ok && len(call.Args) == 0 {
					for i, s := range saves {
						if s.pos == call.Pos() {
							out |= 1 << i
						}
					}
				}
				if key, ok := methodCall(call, "RestoreConfig"); ok {
					for i, s := range saves {
						if s.key == key {
							out &^= 1 << i
						}
					}
				}
				return true
			})
		}
		return out
	}
	sol := Solve[uint64](g, BitsLattice{}, 0, Forward, transfer)

	outstanding := sol.In[g.Exit]
	// Deferred restores run on every path into Exit.
	for _, d := range g.Defers {
		if key, ok := methodCall(d.Call, "RestoreConfig"); ok {
			for i, s := range saves {
				if s.key == key {
					outstanding &^= 1 << i
				}
			}
		}
	}
	for i, s := range saves {
		if outstanding&(1<<i) == 0 || pass.siteExempt(s.pos) {
			continue
		}
		pass.Reportf(s.pos,
			"%s.SaveConfig in %s has no matching %s.RestoreConfig on some path to return (lifecycle contract; //treelint:partial <reason> to opt out)",
			s.key, fn.Name.Name, s.key)
	}
}

// checkResetOnReuse inspects each cyclic SCC: a restarted stream plus a
// driven, loop-external evaluator demands a Reset/RestoreConfig in the
// same region.
func checkResetOnReuse(pass *Pass, fn *ast.FuncDecl, g *CFG) {
	for _, comp := range g.CyclicSCCs() {
		// The region's source span, for the declared-outside test.
		var lo, hi token.Pos
		for _, b := range comp {
			for _, n := range b.Nodes {
				if lo == token.NoPos || n.Pos() < lo {
					lo = n.Pos()
				}
				if n.End() > hi {
					hi = n.End()
				}
			}
		}
		type drive struct {
			pos  token.Pos
			key  string
			name string
		}
		var drives []drive
		restarted := false
		resetKeys := map[string]bool{}
		for _, b := range comp {
			for _, node := range b.Nodes {
				walk(node, func(x ast.Node) bool {
					if _, ok := x.(*ast.FuncLit); ok {
						return false
					}
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						name := sel.Sel.Name
						key := recvKey(sel.X)
						switch {
						case driveMethods[name] && key != "":
							if declaredOutside(pass, sel.X, lo, hi) {
								drives = append(drives, drive{pos: call.Pos(), key: key, name: name})
							}
						case name == "Rewind":
							restarted = true
						case (name == "Reset" || name == "RestoreConfig") && key != "":
							resetKeys[key] = true
						case restartRe.MatchString(name):
							restarted = true
						}
					} else if id, ok := call.Fun.(*ast.Ident); ok && restartRe.MatchString(id.Name) {
						restarted = true
					}
					return true
				})
			}
		}
		if !restarted {
			continue
		}
		seen := map[string]bool{}
		for _, d := range drives {
			if resetKeys[d.key] || seen[d.key] || pass.siteExempt(d.pos) {
				continue
			}
			seen[d.key] = true
			pass.Reportf(d.pos,
				"%s.%s reuses %s across a restarted stream without Reset or RestoreConfig on the loop back-edge (lifecycle contract)",
				d.key, d.name, d.key)
		}
	}
}

// declaredOutside reports whether the base identifier of e is declared
// outside the [lo,hi] span — i.e. the value survives across the region's
// back edge.
func declaredOutside(pass *Pass, e ast.Expr, lo, hi token.Pos) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				return false
			}
			if _, ok := obj.(*types.Var); !ok {
				return false
			}
			return obj.Pos() < lo || obj.Pos() > hi
		default:
			return false
		}
	}
}
