package analysis

// All returns the treelint suite in a stable order: one analyzer per
// engine contract (see the package comment and DESIGN.md §10).
func All() []*Analyzer {
	return []*Analyzer{
		PlainKernel,
		EnumSwitch,
		PoolCheck,
		AtomicField,
		CloseCheck,
		AllocFree,
		Lifecycle,
		HotLock,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
