package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField checks the two contracts on struct fields that the package
// accesses through sync/atomic's function API (atomic.AddInt64(&s.n, 1)
// and friends):
//
//   - a field passed to a 64-bit atomic must be 64-bit aligned on 32-bit
//     targets. The Go runtime only guarantees alignment for the first
//     word of an allocation, so the analyzer computes the field's offset
//     under GOARCH=386 sizes and requires offset%8 == 0;
//   - a field that is accessed atomically anywhere in the package must be
//     accessed atomically everywhere in the package: one plain load or
//     store racing with the atomics voids every guarantee the atomics
//     were bought for.
//
// Fields of the wrapper types (atomic.Int64 and friends, as used by
// internal/obs) satisfy both contracts by construction and are invisible
// to this analyzer.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "struct fields used with sync/atomic must be 64-bit aligned (32-bit targets) " +
		"and never mixed with plain loads/stores in the same package",
	Run: runAtomicField,
}

// atomic64Funcs are the sync/atomic functions requiring 64-bit alignment
// of their operand.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// atomicCallField returns the struct field object f when call is
// atomicpkg.Fn(&x.f, ...), along with whether Fn is a 64-bit operation.
func atomicCallField(pass *Pass, call *ast.CallExpr) (*types.Var, *ast.SelectorExpr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, nil, false
	}
	if len(call.Args) == 0 {
		return nil, nil, false
	}
	unary, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil, nil, false
	}
	fieldSel, ok := unary.X.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, false
	}
	v, ok := pass.TypesInfo.Uses[fieldSel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil, nil, false
	}
	return v, fieldSel, atomic64Funcs[fn.Name()]
}

// sizes32 models the strictest supported target: 4-byte words, so 64-bit
// fields are only aligned when their offset is a multiple of 8 by layout,
// not by luck.
var sizes32 = types.SizesFor("gc", "386")

// fieldOffset32 computes the byte offset of field within the struct type
// that declares it, under 32-bit sizes. The second result is false when
// the declaring struct cannot be found (e.g. an embedded anonymous
// struct type from another package).
func fieldOffset32(pass *Pass, field *types.Var) (int64, bool) {
	// Find the struct type literally containing the field, by scanning the
	// package's type declarations and struct literals in expression types.
	var found *types.Struct
	scope := pass.Pkg.Scope()
	var visit func(t types.Type)
	seen := map[types.Type]bool{}
	visit = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		switch t := t.(type) {
		case *types.Named:
			visit(t.Underlying())
		case *types.Pointer:
			visit(t.Elem())
		case *types.Slice:
			visit(t.Elem())
		case *types.Array:
			visit(t.Elem())
		case *types.Map:
			visit(t.Elem())
		case *types.Struct:
			for i := 0; i < t.NumFields(); i++ {
				if t.Field(i) == field {
					found = t
				}
				visit(t.Field(i).Type())
			}
		}
	}
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			visit(tn.Type())
		}
	}
	if found == nil {
		return 0, false
	}
	fields := make([]*types.Var, found.NumFields())
	idx := -1
	for i := 0; i < found.NumFields(); i++ {
		fields[i] = found.Field(i)
		if fields[i] == field {
			idx = i
		}
	}
	offsets := sizes32.Offsetsof(fields)
	return offsets[idx], idx >= 0
}

func runAtomicField(pass *Pass) error {
	// First pass: collect atomically accessed fields and the selector
	// expressions that are legitimate atomic operands; check alignment.
	atomicFields := map[*types.Var]token.Pos{} // field -> first atomic site
	atomicOperands := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		walk(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			field, fieldSel, is64 := atomicCallField(pass, call)
			if field == nil {
				return true
			}
			atomicOperands[fieldSel] = true
			if _, seen := atomicFields[field]; !seen {
				atomicFields[field] = call.Pos()
			}
			if is64 {
				if off, ok := fieldOffset32(pass, field); ok && off%8 != 0 {
					pass.Reportf(fieldSel.Pos(),
						"field %s is used with 64-bit sync/atomic but sits at offset %d on 32-bit targets; move it to the front of the struct or use atomic.Int64",
						field.Name(), off)
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Second pass: every other selector of those fields is a plain access.
	for _, f := range pass.Files {
		walk(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicOperands[sel] {
				return true
			}
			v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return true
			}
			if _, isAtomic := atomicFields[v]; isAtomic {
				pass.Reportf(sel.Pos(),
					"plain access to field %s, which is accessed with sync/atomic elsewhere in this package; use the atomic API everywhere",
					v.Name())
			}
			return true
		})
	}
	return nil
}
