package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PlainKernel enforces the zero-overhead observability contract on the
// engine's uninstrumented hot kernels (core.selectPlain/recognizePlain and
// anything marked later). A function annotated //treelint:plain must keep
// its body free of everything the contract excludes from the nil-collector
// path:
//
//   - no reference to the obs package (Collector, counters, histograms) —
//     the plain kernel is the branch the nil check already took;
//   - no calls into time's clock (time.Now/Since/...) or math/rand —
//     kernels are deterministic per event and carry no timing;
//   - no defer inside a loop body — a deferred call per event allocates
//     and defeats TestObsDisabledZeroAllocs;
//   - no closure capturing the receiver or an outer obs-typed variable —
//     captured counter fields are how collector state leaks back into a
//     "plain" loop.
//
// The annotation itself is load-bearing, so it cannot silently vanish: a
// function whose name ends in "Plain" (the kernel naming convention) must
// carry the directive, and every implementation of the coded batch kernels
// (StepBatch, SelectBatch, SimulateSegmentCoded) must be annotated either
// //treelint:plain or //treelint:partial with a reason — the
// bounds-check-elimination gate (cmd/bcegate) derives its target set from
// these annotations, so an unannotated kernel would silently escape it.
var PlainKernel = &Analyzer{
	Name: "plainkernel",
	Doc: "functions marked //treelint:plain must not reference obs, call time.Now or " +
		"math/rand, defer in loops, or capture state in closures; *Plain functions and " +
		"batch kernels (StepBatch/SelectBatch/SimulateSegmentCoded) must be marked",
	Run: runPlainKernel,
}

// batchKernels are the coded batch-kernel methods whose implementations
// must be explicitly plain or partial; cmd/bcegate gates exactly the plain
// ones.
var batchKernels = map[string]bool{
	"StepBatch":            true,
	"SelectBatch":          true,
	"SimulateSegmentCoded": true,
}

// clockFuncs are the time-package functions a plain kernel must not call;
// the rest of time (Duration arithmetic, constants) is pure data.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true, "After": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true, "Sleep": true,
}

// pkgPathIsRand matches math/rand and math/rand/v2 (and the fixtures'
// single-segment stand-in "rand").
func pkgPathIsRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2" || path == "rand"
}

func runPlainKernel(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pass.FuncHasDirective(f, fn, "plain") {
				if strings.HasSuffix(fn.Name.Name, "Plain") {
					pass.Reportf(fn.Name.Pos(),
						"%s follows the plain-kernel naming convention but is not marked //treelint:plain",
						fn.Name.Name)
				}
				checkBatchKernel(pass, f, fn)
				continue
			}
			checkPlainBody(pass, fn)
		}
	}
	return nil
}

// checkBatchKernel enforces the annotation obligation on a batch kernel
// that is not marked plain: it must carry //treelint:partial with a reason
// explaining why the BCE gate cannot hold it to the plain contract.
// Methods only — a free function sharing a kernel's name implements no
// BatchEvaluator — and test files are exempt (test doubles are not gated).
func checkBatchKernel(pass *Pass, f *ast.File, fn *ast.FuncDecl) {
	if !batchKernels[fn.Name.Name] || fn.Recv == nil {
		return
	}
	if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
		return
	}
	if !pass.FuncHasDirective(f, fn, "partial") {
		pass.Reportf(fn.Name.Pos(),
			"batch kernel %s must be marked //treelint:plain (gated by cmd/bcegate) or //treelint:partial <reason>",
			fn.Name.Name)
		return
	}
	if partialReason(fn) == "" {
		pass.Reportf(fn.Name.Pos(),
			"//treelint:partial on batch kernel %s needs a reason (why can the kernel not be bounds-check-free?)",
			fn.Name.Name)
	}
}

// partialReason extracts the text after //treelint:partial in fn's doc
// comment group.
func partialReason(fn *ast.FuncDecl) string {
	if fn.Doc == nil {
		return ""
	}
	for _, c := range fn.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, directivePrefix+"partial"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// receiverObj returns the declared receiver variable of fn, or nil.
func receiverObj(pass *Pass, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
}

// isObsType reports whether t is (a pointer to) a type defined in the obs
// package.
func isObsType(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return isObsType(t.Elem())
	case *types.Named:
		obj := t.Obj()
		return obj != nil && obj.Pkg() != nil && pkgPathIsObs(obj.Pkg().Path())
	}
	return false
}

// forbiddenUse classifies an object reference inside a plain kernel;
// it returns a non-empty description for uses the contract bans.
func forbiddenUse(obj types.Object) string {
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	switch {
	case pkgPathIsObs(pkg.Path()):
		return "references " + pkg.Name() + "." + obj.Name()
	case pkg.Path() == "time" && clockFuncs[obj.Name()]:
		return "calls time." + obj.Name()
	case pkgPathIsRand(pkg.Path()):
		return "uses " + pkg.Path() + "." + obj.Name()
	}
	return ""
}

func checkPlainBody(pass *Pass, fn *ast.FuncDecl) {
	recv := receiverObj(pass, fn)
	report := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(), "plain kernel %s %s (zero-overhead contract; see internal/obs)",
			fn.Name.Name, what)
	}
	closureCheck := func(lit *ast.FuncLit) {
		walk(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if recv != nil && obj == recv {
				report(id, "captures the receiver "+recv.Name()+" in a closure")
			}
			return true
		})
	}

	// loops collects the loop bodies so defer statements can be positioned.
	var loopBodies []*ast.BlockStmt
	inLoop := func(pos ast.Node) bool {
		for _, b := range loopBodies {
			if b.Pos() <= pos.Pos() && pos.Pos() < b.End() {
				return true
			}
		}
		return false
	}
	walk(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBodies = append(loopBodies, n.Body)
		case *ast.RangeStmt:
			loopBodies = append(loopBodies, n.Body)
		}
		return true
	})

	walk(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if inLoop(n) {
				report(n, "defers inside a loop body (one deferred call per event)")
			}
		case *ast.FuncLit:
			closureCheck(n)
		case *ast.SelectorExpr:
			// Qualified reference pkg.Name: report once at the selector and
			// prune, so the qualifier and Sel idents are not double-counted.
			if id, ok := n.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					if obj := pass.TypesInfo.Uses[n.Sel]; obj != nil {
						if what := forbiddenUse(obj); what != "" {
							report(n, what)
						}
					}
					return false
				}
			}
		case *ast.Ident:
			// Unqualified uses (dot imports, method values bound earlier)
			// and any variable or field whose type comes from obs.
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					if what := forbiddenUse(obj); what != "" {
						report(n, what)
					} else if v, ok := obj.(*types.Var); ok && isObsType(v.Type()) {
						report(n, "references obs-typed "+v.Name())
					}
				}
			}
		}
		return true
	})
}
