// Package plainkernel exercises the plainkernel analyzer: annotated
// kernels must stay free of obs references, clock calls, in-loop defers
// and state-capturing closures; *Plain functions must be annotated.
package plainkernel

import (
	"math/rand"
	"time"

	"obs"
)

type src interface{ Next() (int, bool) }

// selectPlain is a clean kernel: no obs, no clock, no closures.
//
//treelint:plain
func selectPlain(s src) int {
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n++
	}
}

// recognizePlain is missing its annotation.
func recognizePlain(s src) bool { // want "not marked"
	_, ok := s.Next()
	return ok
}

//treelint:plain
func obsParam(c *obs.Collector) {
	_ = c // want "references obs-typed c"
}

//treelint:plain
func obsLocal() {
	var x obs.Collector // want "references obs.Collector"
	_ = x               // want "references obs-typed x"
}

//treelint:plain
func clocked() int64 {
	t0 := time.Now() // want "calls time.Now"
	return int64(time.Duration(t0.Unix()))
}

//treelint:plain
func randomized() int {
	return rand.Int() // want "uses math/rand.Int"
}

//treelint:plain
func deferred(s src) {
	for {
		if _, ok := s.Next(); !ok {
			return
		}
		defer func() {}() // want "defers inside a loop body"
	}
}

// deferOutsideLoop is allowed: one defer per call, not per event.
//
//treelint:plain
func deferOutsideLoop(s src) {
	defer func() {}()
	for {
		if _, ok := s.Next(); !ok {
			return
		}
	}
}

type machine struct{ n int }

// stepPlain captures its receiver in a closure.
//
//treelint:plain
func (m *machine) stepPlain() {
	f := func() { m.n++ } // want "captures the receiver m"
	f()
}

// runPlain shows a clean closure: parameters of the closure itself are
// not captures.
//
//treelint:plain
func (m *machine) runPlain(s src) {
	f := func(k int) int { return k + 1 }
	_ = f(1)
}

// Batch kernels must be annotated plain or partial-with-reason so the BCE
// gate's target set is machine-derived.

func (m *machine) StepBatch(batch []int32) { // want "batch kernel StepBatch must be marked"
	for range batch {
		m.n++
	}
}

//treelint:partial
func (m *machine) SelectBatch(batch []int32, hits []int32) []int32 { // want "needs a reason"
	return hits
}

// SimulateSegmentCoded is exempt with a stated reason.
//
//treelint:partial memo rows grow mid-batch
func (m *machine) SimulateSegmentCoded(batch []int32) int {
	return len(batch)
}

type other struct{ machine }

// StepBatch marked plain is the happy path: the body contract applies.
//
//treelint:plain
func (o *other) StepBatch(batch []int32) {
	for range batch {
		o.n++
	}
}

// StepBatch as a free function implements no evaluator; not a kernel.
func StepBatch() {}
