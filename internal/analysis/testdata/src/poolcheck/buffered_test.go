package poolcheck

import "sync"

// The send-guard rule is off in _test.go files: error channels buffered to
// the worker count and joined with Wait cannot block, so a done/ctx select
// would be noise. The other poolcheck rules still apply here.
func collectErrs() {
	var wg sync.WaitGroup
	errs := make(chan string, 4)
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c > 2 {
				errs <- "boom" // exempt: unguarded send in a test file
			}
		}()
	}
	wg.Wait()
	close(errs)
}

func addStillChecked(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want "WaitGroup.Add inside a goroutine body"
	}()
}

func captureStillChecked(xs []int) {
	for i := range xs {
		go func() {
			_ = i // want "goroutine body captures loop variable i directly"
		}()
	}
}
