// Package poolcheck exercises the poolcheck analyzer: WaitGroup.Add on
// the launching side, cancellable worker sends, explicit loop-variable
// copies.
package poolcheck

import "sync"

// Pool mimics parallel.Pool: module-local type named Pool with Submit.
type Pool struct{}

// Submit runs f (stand-in for the real queue).
func (p *Pool) Submit(f func()) { f() }

func addInsideGoroutine(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want "WaitGroup.Add inside a goroutine body"
		defer wg.Done()
	}()
}

func addBeforeLaunch(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func addInsideTask(p *Pool, wg *sync.WaitGroup) {
	p.Submit(func() {
		wg.Add(1) // want "WaitGroup.Add inside a pool task body"
	})
}

func nakedSend(ch chan int) {
	go func() {
		ch <- 1 // want "channel send in a goroutine body without a done/ctx select"
	}()
}

func guardedSend(ch chan int, done chan struct{}) {
	go func() {
		select {
		case ch <- 1:
		case <-done:
		}
	}()
}

func taskSend(p *Pool, ch chan int) {
	p.Submit(func() {
		ch <- 2 // want "channel send in a pool task body"
	})
}

func sendOutsideWorker(ch chan int) {
	ch <- 3 // the discipline applies to worker bodies only
}

func loopCapture(xs []int) {
	for i := range xs {
		go func() {
			_ = i // want "goroutine body captures loop variable i directly"
		}()
	}
}

func loopCopy(xs []int) {
	for i := range xs {
		i := i
		go func() {
			_ = i
		}()
	}
}

func loopArgument(xs []int) {
	for i := range xs {
		go func(i int) {
			_ = i
		}(i)
	}
}

func threeClauseCapture(n int, p *Pool) {
	for i := 0; i < n; i++ {
		p.Submit(func() {
			_ = i // want "pool task body captures loop variable i directly"
		})
	}
}
