// Package atomicfield exercises the atomicfield analyzer: 64-bit atomic
// operands must be 64-bit aligned on 32-bit targets, and atomically
// accessed fields must never also be accessed plainly in the package.
package atomicfield

import "sync/atomic"

// misaligned puts an int64 at offset 4 under GOARCH=386.
type misaligned struct {
	flag int32
	n    int64
}

func addMisaligned(m *misaligned) {
	atomic.AddInt64(&m.n, 1) // want "offset 4 on 32-bit targets"
}

// aligned keeps the 64-bit word first.
type aligned struct {
	n    int64
	flag int32
}

func addAligned(a *aligned) {
	atomic.AddInt64(&a.n, 1)
}

func loadAligned(a *aligned) int64 {
	return atomic.LoadInt64(&a.n)
}

func mixAligned(a *aligned) int64 {
	return a.n // want "plain access to field n"
}

// mixed32 shows that the exclusivity rule is independent of width.
type mixed32 struct {
	k int32
}

func bump(m *mixed32) {
	atomic.AddInt32(&m.k, 1)
}

func read(m *mixed32) int32 {
	return m.k // want "plain access to field k"
}

// wrapped uses the atomic wrapper types: aligned by construction and
// method-accessed, so invisible to this analyzer.
type wrapped struct {
	flag int32
	n    atomic.Int64
}

func bumpWrapped(w *wrapped) {
	w.n.Add(1)
}

// plainOnly is never touched atomically; plain access is fine.
type plainOnly struct {
	n int64
}

func incPlain(p *plainOnly) {
	p.n++
}
