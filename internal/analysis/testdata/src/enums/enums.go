// Package enums provides a cross-package enum for the enumswitch fixture.
package enums

// Color is an exported enum.
type Color int

// Members.
const (
	Red Color = iota
	Green
	Blue
)
