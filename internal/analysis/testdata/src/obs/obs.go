// Package obs is a stand-in for the engine's observability package: the
// plainkernel analyzer recognizes any package whose import path ends in
// "obs".
package obs

// Counter is a stand-in metric.
type Counter struct{ n int64 }

// Inc increments the counter.
func (c *Counter) Inc() { c.n++ }

// Collector is a stand-in for the engine's obs.Collector.
type Collector struct {
	Events Counter
}
