// Package allocfree exercises the allocfree analyzer: plain kernels must
// not reach heap allocations on any live path, directly or through
// package-local helpers; the caller-buffer append idiom and annotated
// sites are exempt.
package allocfree

type src interface{ Next() (int, bool) }

type stringer interface{ String() string }

type item struct{ v int }

// kMake allocates scratch inside its per-event loop.
//
//treelint:plain
func kMake(s src) int {
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		buf := make([]int, 4) // want "make in the per-event loop"
		n += len(buf)
	}
}

// kSetup allocates once before the loop: still banned, but reported as
// run-path, not per-event.
//
//treelint:plain
func kSetup(s src) int {
	buf := make([]int, 8) // want "make on the run path"
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n + len(buf)
		}
		n++
	}
}

// kCallerBuffer is the §11 idiom: append into the caller's reusable
// buffer. Clean.
//
//treelint:plain
func kCallerBuffer(s src, hits []int) []int {
	for {
		v, ok := s.Next()
		if !ok {
			return hits
		}
		hits = append(hits, v)
	}
}

// kLocalAppend grows a kernel-local slice instead.
//
//treelint:plain
func kLocalAppend(s src) int {
	var out []int
	for {
		v, ok := s.Next()
		if !ok {
			return len(out)
		}
		out = append(out, v) // want "append growth into a non-parameter slice"
	}
}

// kValueLiteral builds plain value composites: no heap traffic, clean.
//
//treelint:plain
func kValueLiteral(s src) item {
	v, _ := s.Next()
	return item{v: v}
}

// kHeapForms hits the remaining banned shapes.
//
//treelint:plain
func kHeapForms(s src, m map[int]int) *item {
	v, _ := s.Next()
	ws := []int{v}           // want "slice literal"
	mm := map[int]int{}      // want "map literal"
	m[v] = len(ws) + len(mm) // want "map write"
	p := new(item)           // want "new"
	return &item{v: p.v}     // want "heap composite literal"
}

// kConvert converts between string and []byte and boxes into a non-empty
// interface.
//
//treelint:plain
func kConvert(b []byte, it item) int {
	s := string(b)                       // want "string/\[\]byte conversion"
	var x stringer = stringer(boxed(it)) // want "interface boxing"
	return len(s) + len(x.String())
}

type boxed item

func (b boxed) String() string { return "" }

// kClosure creates a closure per call and launders a make through it.
//
//treelint:plain
func kClosure(s src) int {
	n := 0
	grow := func() { // want "closure allocation"
		n += len(make([]int, 2)) // want "make on the run path via grow"
	}
	grow()
	return n
}

// kViaHelper reaches an allocation through a package-local helper.
//
//treelint:plain
func kViaHelper(s src) int {
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n += helperAlloc()
	}
}

func helperAlloc() int {
	return len(make([]byte, 16)) // want "make in the per-event loop via helperAlloc"
}

// kDeadBranch allocates only behind a constant-false guard: the path is
// pruned, so the kernel is clean.
//
//treelint:plain
func kDeadBranch(s src) int {
	n := 0
	if false {
		n += len(make([]int, 64))
	}
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n++
	}
}

// kAnnotated documents a deliberate run-level allocation.
//
//treelint:plain
func kAnnotated(s src, n int) int {
	//treelint:partial per-segment scratch, sized by the run prologue
	buf := make([]int, n)
	for {
		if _, ok := s.Next(); !ok {
			return len(buf)
		}
	}
}

// kBoundary calls a helper that is itself declared partial: the helper is
// a documented summary boundary the traversal does not enter.
//
//treelint:plain
func kBoundary(s src) int {
	v, _ := s.Next()
	return discoverState(v)
}

// discoverState stands in for a memoized state-discovery path.
//
//treelint:partial state discovery; memoized away in steady state
func discoverState(v int) int {
	return len(make([]int, v))
}

// unmarked is not a plain kernel: allocations are its own business.
func unmarked() []int {
	return make([]int, 32)
}
