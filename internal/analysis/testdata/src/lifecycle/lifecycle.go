// Package lifecycle exercises the lifecycle analyzer: SaveConfig must be
// matched by RestoreConfig on every path to return (defers count, returned
// saves delegate), and a loop that restarts its stream must Reset the
// evaluators it reuses.
package lifecycle

type config struct{ h uint64 }

type machine struct{ state int }

func (m *machine) SaveConfig() config     { return config{h: uint64(m.state)} }
func (m *machine) RestoreConfig(c config) { m.state = int(c.h) }
func (m *machine) Reset()                 { m.state = 0 }
func (m *machine) Step(ev int)            { m.state += ev }

type source struct{ events []int }

func NewEventSource(events []int) *source { return &source{events: events} }

func (s *source) Rewind() {}

func (s *source) Next() (int, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	ev := s.events[0]
	s.events = s.events[1:]
	return ev, true
}

// probeBalanced restores on both arms: clean.
func probeBalanced(m *machine, ev int) bool {
	c := m.SaveConfig()
	m.Step(ev)
	if m.state > 0 {
		m.RestoreConfig(c)
		return true
	}
	m.RestoreConfig(c)
	return false
}

// probeLeaky forgets the restore on the early return.
func probeLeaky(m *machine, ev int) bool {
	c := m.SaveConfig() // want "no matching m.RestoreConfig on some path to return"
	m.Step(ev)
	if m.state > 0 {
		return true
	}
	m.RestoreConfig(c)
	return false
}

// probeDeferred restores via defer: runs on every exit path, clean.
func probeDeferred(m *machine, ev int) bool {
	c := m.SaveConfig()
	defer m.RestoreConfig(c)
	m.Step(ev)
	return m.state > 0
}

// snapshot delegates the obligation to its caller: clean.
func snapshot(m *machine) config {
	return m.SaveConfig()
}

// checkpointStore deliberately parks configs for later restoration, the
// tablecheck-BFS pattern.
//
//treelint:partial configs restored across iterations; pairing is per-node
func checkpointStore(m *machine, out []config) []config {
	return append(out, m.SaveConfig())
}

// probeSiteExempt opts a single save out with a reason.
func probeSiteExempt(m *machine) config {
	//treelint:partial ownership transfers to the returned slice
	c := m.SaveConfig()
	m.Step(1)
	return c
}

// replayFresh drives a loop-local machine: nothing survives the back
// edge, clean.
func replayFresh(runs [][]int) int {
	n := 0
	for _, events := range runs {
		m := &machine{}
		src := NewEventSource(events)
		for {
			ev, ok := src.Next()
			if !ok {
				break
			}
			m.Step(ev)
		}
		n += m.state
	}
	return n
}

// replayStale reuses one machine across restarted streams without Reset:
// run k+1 starts from run k's final state.
func replayStale(m *machine, runs [][]int) int {
	n := 0
	for _, events := range runs {
		src := NewEventSource(events)
		for {
			ev, ok := src.Next()
			if !ok {
				break
			}
			m.Step(ev) // want "reuses m across a restarted stream without Reset"
		}
		n += m.state
	}
	return n
}

// replayReset resets on the back edge: clean.
func replayReset(m *machine, runs [][]int) int {
	n := 0
	for _, events := range runs {
		m.Reset()
		src := NewEventSource(events)
		for {
			ev, ok := src.Next()
			if !ok {
				break
			}
			m.Step(ev)
		}
		n += m.state
	}
	return n
}

// drainOnce drives a machine in a loop with no stream restart: the normal
// per-event loop, clean.
func drainOnce(m *machine, src *source) int {
	for {
		ev, ok := src.Next()
		if !ok {
			return m.state
		}
		m.Step(ev)
	}
}
