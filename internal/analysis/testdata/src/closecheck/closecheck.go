// Package closecheck exercises the closecheck analyzer: Close errors are
// checked or explicitly discarded.
package closecheck

// Scanner has the Close() error shape the analyzer tracks.
type Scanner struct{}

// Close reports a late stream error.
func (s *Scanner) Close() error { return nil }

// Quiet has a Close with no error to drop.
type Quiet struct{}

// Close never fails.
func (q *Quiet) Close() {}

func dropped(s *Scanner) {
	s.Close() // want "Close error is dropped"
}

func checked(s *Scanner) error {
	if err := s.Close(); err != nil {
		return err
	}
	return nil
}

func discarded(s *Scanner) {
	_ = s.Close()
}

func deferred(s *Scanner) {
	defer s.Close()
}

func quiet(q *Quiet) {
	q.Close()
}

func funcValue() {
	Close := func() error { return nil }
	Close() // want "Close error is dropped"
}
