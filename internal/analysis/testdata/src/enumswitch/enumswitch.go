// Package enumswitch exercises the enumswitch analyzer: switches over
// enum types must name every member or opt out with //treelint:partial.
package enumswitch

import "enums"

// Policy mirrors core.CutPolicy.
type Policy int

// Members; NumPolicies is a counting sentinel and not required in
// switches.
const (
	None Policy = iota
	NewMin
	BelowEntry
	All
	NumPolicies
)

// Flavor is a string-valued enum (like dralint's diagnostic kinds).
type Flavor string

// Members.
const (
	Sweet Flavor = "sweet"
	Sour  Flavor = "sour"
)

func full(p Policy) string {
	switch p {
	case None, NewMin:
		return "fast"
	case BelowEntry:
		return "restricted"
	case All:
		return "sequential"
	}
	return "unknown"
}

func silentDefault(p Policy) string {
	switch p { // want "missing cases All, BelowEntry, NewMin .with a silent default."
	case None:
		return "none"
	default:
		return "other"
	}
}

func noDefault(p Policy) {
	switch p { // want "missing cases All, BelowEntry"
	case None, NewMin:
	}
}

func optedOut(p Policy) bool {
	//treelint:partial
	switch p {
	case All:
		return true
	}
	return false
}

func stringEnum(f Flavor) int {
	switch f { // want "missing cases Sour"
	case Sweet:
		return 1
	}
	return 0
}

func crossPackage(c enums.Color) int {
	switch c { // want "missing cases Blue"
	case enums.Red, enums.Green:
		return 1
	}
	return 0
}

// plainInt is not an enum type: no defined type, no members.
func plainInt(x int) int {
	switch x {
	case 1:
		return 1
	}
	return 0
}

// dynamic cases make a switch a comparison chain, not enum dispatch.
func dynamic(p, q Policy) int {
	switch p {
	case q:
		return 1
	}
	return 0
}

// typeSwitches are out of scope.
func typeSwitch(v any) int {
	switch v.(type) {
	case Policy:
		return 1
	}
	return 0
}
