// Package hotlock exercises the hotlock analyzer: no locks or channel
// operations may be reachable from the batch kernels or plain-marked
// functions; WaitGroup.Add/Done and sync.Pool stay legal, and dead
// branches do not count.
package hotlock

import "sync"

type batch struct {
	mu   sync.Mutex
	once sync.Once
	pool sync.Pool
	wg   sync.WaitGroup
	out  chan int
	n    int
}

// StepBatch is a hot root by name: the lock serializes the per-event loop.
func (b *batch) StepBatch(events []int) {
	b.mu.Lock() // want "reaches sync.Mutex.Lock"
	for _, ev := range events {
		b.n += ev
	}
	b.mu.Unlock() // want "reaches sync.Mutex.Unlock"
}

// SelectBatch launders a channel send through a package-local helper.
func (b *batch) SelectBatch(events []int) int {
	for _, ev := range events {
		b.emit(ev) // the send is reported inside emit, with the path
	}
	return b.n
}

func (b *batch) emit(ev int) {
	b.out <- ev // want "reaches a channel send via emit"
}

// SimulateSegmentCoded lazily compiles through sync.Once.
func (b *batch) SimulateSegmentCoded(events []int) {
	b.once.Do(func() { b.n = 0 }) // want "reaches sync.Once.Do"
	for _, ev := range events {
		b.n += ev
	}
}

// selectPlain drains a channel: both receive forms are blocking.
func selectPlain(in chan int, done chan struct{}) int {
	n := 0
	for v := range in { // want "reaches a range over a channel"
		n += v
	}
	<-done      // want "reaches a channel receive"
	close(done) // want "reaches a channel close"
	return n
}

// markedKernel is hot by annotation rather than by name.
//
//treelint:plain
func markedKernel(b *batch) {
	b.wg.Wait() // want "reaches sync.WaitGroup.Wait"
}

// boundaryBookkeeping uses only the allowed sync surface: counter updates
// and the pool. Clean.
//
//treelint:plain
func boundaryBookkeeping(b *batch) {
	b.wg.Add(1)
	defer b.wg.Done()
	buf := b.pool.Get()
	b.pool.Put(buf)
}

// deadGuard parks a lock behind a constant-false debug flag: pruned,
// clean.
//
//treelint:plain
func deadGuard(b *batch) {
	if false {
		b.mu.Lock()
		b.mu.Unlock()
	}
	b.n++
}

// annotatedOnce documents a deliberate lazy-compile Once.
//
//treelint:plain
func annotatedOnce(b *batch) {
	//treelint:partial lazy compile-once; steady state is one atomic load
	b.once.Do(func() { b.n = 1 })
}

// compileLazily is a partial-declared summary boundary: the traversal
// documents it instead of entering it.
//
//treelint:partial lazy compile-once; steady state is one atomic load
func (b *batch) compileLazily() {
	b.once.Do(func() { b.n = 0 })
}

//treelint:plain
func usesBoundary(b *batch) {
	b.compileLazily()
	b.n++
}

// coldSetup is neither named hot nor marked plain: locks are fine here.
func coldSetup(b *batch) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n = 0
}

// notSyncLock has a method that happens to be called Lock on a local type:
// receiver matching must not flag it.
type notSyncLock struct{ n int }

func (l *notSyncLock) Lock() { l.n++ }

//treelint:plain
func localLock(l *notSyncLock) {
	l.Lock()
}
