// Package analysis is treelint: a suite of static analyzers that
// machine-check the engine's Go-level contracts — the zero-overhead
// observability contract of the plain kernels (internal/obs), the totality
// of switches over the engine's enums, the worker-pool discipline of
// internal/parallel, the alignment and exclusivity rules for atomically
// accessed struct fields, and the handling of Close errors.
//
// The package mirrors the analyzer-per-invariant structure of
// golang.org/x/tools/go/analysis, but is self-contained: the container
// that grows this repository has no module proxy, so the Analyzer/Pass
// surface is reimplemented here on the standard library alone. Each
// analyzer is a pure function from a type-checked package to diagnostics;
// loading (both the standalone go-list loader and the `go vet -vettool`
// unit-checker protocol) lives in cmd/treelint.
//
// Contracts are opted in and out with comment directives:
//
//	//treelint:plain    on a function: this is an uninstrumented hot
//	                    kernel; plainkernel enforces the zero-overhead
//	                    contract on its body. Functions whose name ends in
//	                    "Plain" must carry the directive, so the annotation
//	                    cannot silently vanish from a kernel.
//	//treelint:partial  before a switch: the switch is deliberately
//	                    non-exhaustive; enumswitch skips it.
//
// See DESIGN.md §10 for the invariant each analyzer enforces and where it
// comes from.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static analysis pass: a named invariant and
// the function that checks one package against it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run checks one package. Diagnostics are delivered via pass.Report;
	// the error return is for operational failures only (a nil error with
	// zero diagnostics means the package is clean).
	Run func(pass *Pass) error
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver fills it in.
	Report func(Diagnostic)

	directives map[*ast.File]fileDirectives
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// fileDirectives maps source lines to the treelint directives written on
// them. A directive governs the declaration or statement that starts on
// the same line or the line immediately below it (the usual comment-above
// placement).
type fileDirectives map[int][]string

// directivePrefix starts every treelint comment directive.
const directivePrefix = "//treelint:"

// fileDirectiveLines scans a file's comments for treelint directives.
func fileDirectiveLines(fset *token.FileSet, f *ast.File) fileDirectives {
	d := fileDirectives{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			name := strings.TrimPrefix(c.Text, directivePrefix)
			if i := strings.IndexAny(name, " \t"); i >= 0 {
				name = name[:i]
			}
			line := fset.Position(c.Pos()).Line
			d[line] = append(d[line], name)
		}
	}
	return d
}

// directives returns the directive index for f, building it on first use.
func (p *Pass) fileDirectives(f *ast.File) fileDirectives {
	if p.directives == nil {
		p.directives = map[*ast.File]fileDirectives{}
	}
	d, ok := p.directives[f]
	if !ok {
		d = fileDirectiveLines(p.Fset, f)
		p.directives[f] = d
	}
	return d
}

// HasDirective reports whether the node starting at pos (inside file f) is
// governed by the named treelint directive: written on the node's first
// line or on the line directly above it.
func (p *Pass) HasDirective(f *ast.File, pos token.Pos, name string) bool {
	d := p.fileDirectives(f)
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, n := range d[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// FuncHasDirective reports whether a function declaration carries the
// named directive in its doc comment group (or directly above it).
func (p *Pass) FuncHasDirective(f *ast.File, fn *ast.FuncDecl, name string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if c.Text == directivePrefix+name {
				return true
			}
			if rest, ok := strings.CutPrefix(c.Text, directivePrefix+name); ok &&
				(rest == "" || rest[0] == ' ' || rest[0] == '\t') {
				return true
			}
		}
	}
	return p.HasDirective(f, fn.Pos(), name)
}

// pkgPathIsObs reports whether an import path names the observability
// package: the engine's own stackless/internal/obs, or any path whose last
// segment is "obs" (which is what the analyzer test fixtures use).
func pkgPathIsObs(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

// isModuleLocal reports whether a package path belongs to code this suite
// should hold to the engine's contracts (rather than vendored or standard
// library code). With no module context beyond the import path, "not a
// standard-library-looking path" is approximated by "contains a dot in the
// first segment or is the stackless module or has no slash at all" — the
// fixtures use single-segment paths, the engine uses stackless/...
func isModuleLocal(path string) bool {
	if path == "" {
		return false
	}
	if path == "stackless" || strings.HasPrefix(path, "stackless/") {
		return true
	}
	// Single-segment paths ("enums", "a") are GOPATH-style fixture
	// packages; multi-segment paths without a module prefix are assumed
	// standard library.
	return !strings.Contains(path, "/")
}

// walk traverses the AST in depth-first order, calling fn for every node.
// A false return prunes the subtree.
func walk(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, fn)
}

// enclosingFile finds the *ast.File of the pass that contains pos.
func (p *Pass) enclosingFile(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
