package analysis

// Control-flow graphs over go/ast function bodies: the substrate of the
// flow-sensitive analyzers (allocfree, lifecycle, hotlock — DESIGN.md §15).
// The shape follows golang.org/x/tools/go/cfg, rebuilt on the standard
// library alone: basic blocks of statements in execution order, with edges
// for branches, loops (including the back edge), switch/select dispatch,
// goto, and explicit panic calls. Two deliberate simplifications:
//
//   - implicit panics (nil derefs, index errors) do not end blocks — only
//     an explicit panic(...) statement edges to Exit. Analyzers that need
//     "may return early" precision must treat every call as a potential
//     exit themselves;
//   - defer statements stay in their block as ordinary nodes (marking the
//     point of registration) and are additionally collected in Defers, so
//     an analyzer can model them as running on every path into Exit. The
//     collection does not record whether registration was conditional:
//     treating every collected defer as registered is optimistic, which is
//     the right polarity for a linter's kill set (a missed kill is a false
//     positive, not a false negative, for the must-release properties
//     lifecycle checks).
//
// Conditions that are compile-time constants prune the dead edge: a branch
// guarded by a constant-false flag contributes no path, so flow-sensitive
// analyzers do not report on code the compiler removes.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// A CFG is the control-flow graph of one function body. Entry and Exit are
// artificial empty blocks: Entry has no predecessors, Exit no successors,
// and every return, explicit panic and fall-off-the-end path edges into
// Exit.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers collects every defer statement in the body (outermost
	// function only — nested FuncLit bodies get their own CFGs), in source
	// order.
	Defers []*ast.DeferStmt
}

// A Block is one basic block: a maximal straight-line sequence of
// statements and controlling expressions, in execution order.
type Block struct {
	Index int
	// Kind names the block's role ("entry", "for.body", "if.then", ...);
	// diagnostic and test output only.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// BuildCFG constructs the CFG of a function body. info may be nil; when
// present it is used to prune branches on compile-time constant
// conditions.
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{info: info, gotos: map[string][]*Block{}, labels: map[string]*Block{}}
	b.cfg = &CFG{}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.newBlock("body")
	b.edge(b.cfg.Entry, b.cur)
	b.stmt(body)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	// Resolve gotos whose label appeared after the jump.
	for name, srcs := range b.gotos {
		if t := b.labels[name]; t != nil {
			for _, s := range srcs {
				b.edge(s, t)
			}
		}
	}
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

// Reachable returns the set of blocks reachable from Entry. Blocks left
// unreachable (code behind constant-false branches, statements after an
// unconditional return) are dead paths no analyzer should report on.
func (g *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// InCycle returns the blocks that lie on a reachable cycle: members of a
// strongly connected component of size > 1, or blocks with a self edge.
// "In a loop" for the analyzers means exactly this — it is computed on the
// graph, so goto-built loops count and syntactic loops whose back edge was
// pruned (constant-false condition) do not.
func (g *CFG) InCycle() map[*Block]bool {
	out := map[*Block]bool{}
	for _, comp := range g.CyclicSCCs() {
		for _, b := range comp {
			out[b] = true
		}
	}
	return out
}

// CyclicSCCs returns the strongly connected components of the reachable
// graph that contain a cycle (size > 1, or a single block with a self
// edge) — one component per loop nest, which is the region lifecycle's
// back-edge reasoning works over.
func (g *CFG) CyclicSCCs() [][]*Block {
	reach := g.Reachable()
	// Tarjan's SCC algorithm, iterative to keep deep bodies off the goroutine
	// stack.
	index := map[*Block]int{}
	low := map[*Block]int{}
	onStack := map[*Block]bool{}
	var stack []*Block
	next := 0
	var out [][]*Block

	type frame struct {
		b *Block
		i int // next successor to visit
	}
	for _, root := range g.Blocks {
		if !reach[root] {
			continue
		}
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{b: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < len(f.b.Succs) {
				s := f.b.Succs[f.i]
				f.i++
				if !reach[s] {
					continue
				}
				if _, seen := index[s]; !seen {
					index[s], low[s] = next, next
					next++
					stack = append(stack, s)
					onStack[s] = true
					work = append(work, frame{b: s})
				} else if onStack[s] && index[s] < low[f.b] {
					low[f.b] = index[s]
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].b
				if low[f.b] < low[p] {
					low[p] = low[f.b]
				}
			}
			if low[f.b] == index[f.b] {
				// Pop the component rooted here.
				var comp []*Block
				for {
					s := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[s] = false
					comp = append(comp, s)
					if s == f.b {
						break
					}
				}
				if len(comp) > 1 {
					out = append(out, comp)
				} else {
					for _, s := range comp[0].Succs {
						if s == comp[0] {
							out = append(out, comp)
							break
						}
					}
				}
			}
		}
	}
	return out
}

// cfgBuilder threads the construction state: the block under construction
// (nil after a terminator — subsequent statements are unreachable and get a
// fresh, unconnected block), the break/continue target stack and the label
// tables.
type cfgBuilder struct {
	cfg     *CFG
	info    *types.Info
	cur     *Block
	targets []target
	labels  map[string]*Block   // label → jump target (loop head or statement block)
	gotos   map[string][]*Block // forward gotos awaiting their label
	// pendingLabel is the label naming the next loop/switch statement, so
	// labeled break/continue can find it.
	pendingLabel string
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label     string
	breakTo   *Block
	contTo    *Block // nil for switch/select
	canBreak  bool
	canCont   bool
	fallsInto *Block // next case body, for fallthrough
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block, materializing an unreachable
// block if control already terminated (dead code keeps its nodes so the
// Reachable filter, not node loss, decides what analyzers see).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// constCond evaluates a condition to a compile-time boolean when the type
// checker recorded one.
func (b *cfgBuilder) constCond(e ast.Expr) (val, known bool) {
	if b.info == nil || e == nil {
		return false, false
	}
	tv, ok := b.info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// isPanicCall recognizes an explicit call to the predeclared panic.
func (b *cfgBuilder) isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info != nil {
		if obj, ok := b.info.Uses[id]; ok {
			_, isBuiltin := obj.(*types.Builtin)
			return isBuiltin
		}
	}
	return true
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		// The label marks the head of its statement: loops register it as a
		// continue/break target; plain statements get a fresh block gotos
		// can land on.
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			b.stmt(s.Stmt)
		default:
			head := b.newBlock("label." + s.Label.Name)
			b.labels[s.Label.Name] = head
			b.edge(b.cur, head)
			b.cur = head
			b.stmt(s.Stmt)
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if b.isPanicCall(s.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, true)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, false)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case nil, *ast.EmptyStmt:
		// no flow, no node
	default:
		// Assignments, declarations, sends, go statements, inc/dec: one
		// straight-line node.
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.canBreak && (label == "" || t.label == label) {
				b.edge(b.cur, t.breakTo)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.canCont && (label == "" || t.label == label) {
				b.edge(b.cur, t.contTo)
				break
			}
		}
	case token.GOTO:
		if t := b.labels[label]; t != nil {
			b.edge(b.cur, t)
		} else {
			b.gotos[label] = append(b.gotos[label], b.cur)
		}
	case token.FALLTHROUGH:
		for i := len(b.targets) - 1; i >= 0; i-- {
			if t := b.targets[i]; t.fallsInto != nil {
				b.edge(b.cur, t.fallsInto)
				break
			}
		}
	}
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	done := b.newBlock("if.done")
	val, known := b.constCond(s.Cond)

	var afterThen *Block
	if !known || val {
		then := b.newBlock("if.then")
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		afterThen = b.cur
	}
	var afterElse *Block
	if s.Else != nil {
		if !known || !val {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			afterElse = b.cur
		}
	} else if !known || !val {
		b.edge(cond, done)
	}
	b.edge(afterThen, done)
	b.edge(afterElse, done)
	b.cur = done
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	done := b.newBlock("for.done")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.edge(b.cur, head)
	if s.Cond != nil {
		b.cur = head
		b.add(s.Cond)
		head = b.cur // condition stays in the head block
	}
	val, known := s.Cond == nil, s.Cond == nil
	if !known {
		val, known = b.constCond(s.Cond)
	}
	if !known || !val {
		b.edge(head, done)
	}
	label := b.pendingLabel
	b.pendingLabel = ""
	if label != "" {
		b.labels[label] = head
	}

	var body *Block
	if !known || val {
		body = b.newBlock("for.body")
		b.edge(head, body)
		b.targets = append(b.targets, target{label: label, breakTo: done, contTo: post, canBreak: true, canCont: true})
		b.cur = body
		b.stmt(s.Body)
		b.targets = b.targets[:len(b.targets)-1]
		if s.Post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.add(s.Post)
			post = b.cur
			b.edge(post, head)
		} else {
			b.edge(b.cur, head) // the back edge
		}
	}
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock("range.head")
	done := b.newBlock("range.done")
	b.edge(b.cur, head)
	b.cur = head
	b.add(s.X) // the ranged expression; the body is split into its own blocks
	head = b.cur
	b.edge(head, done) // zero iterations
	label := b.pendingLabel
	b.pendingLabel = ""
	if label != "" {
		b.labels[label] = head
	}
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.targets = append(b.targets, target{label: label, breakTo: done, contTo: head, canBreak: true, canCont: true})
	b.cur = body
	b.stmt(s.Body)
	b.targets = b.targets[:len(b.targets)-1]
	b.edge(b.cur, head) // the back edge
	b.cur = done
}

// switchStmt builds value switches (tag non-nil), bare switches (tag nil,
// fallthrough allowed) and type switches (assign non-nil, no fallthrough).
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, canFall bool) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	done := b.newBlock("switch.done")
	label := b.pendingLabel
	b.pendingLabel = ""

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "case"
		if cc.List == nil {
			kind = "default"
			hasDefault = true
		}
		bodies[i] = b.newBlock("switch." + kind)
		b.edge(head, bodies[i])
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, cc := range clauses {
		var next *Block
		if canFall && i+1 < len(clauses) {
			next = bodies[i+1]
		}
		b.targets = append(b.targets, target{label: label, breakTo: done, canBreak: true, fallsInto: next})
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.edge(b.cur, done)
	}
	b.cur = done
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	done := b.newBlock("select.done")
	label := b.pendingLabel
	b.pendingLabel = ""
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.targets = append(b.targets, target{label: label, breakTo: done, canBreak: true})
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.edge(b.cur, done)
	}
	b.cur = done
}
