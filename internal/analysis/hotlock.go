package analysis

// HotLock proves the hot path lock-free: no mutex, condition-variable,
// once, waitgroup-wait or channel operation may be reachable from the
// batch kernels (StepBatch, SelectBatch, SimulateSegmentCoded,
// selectPlain) or any //treelint:plain function, directly or through
// package-local callees. The engine's concurrency model (DESIGN.md §8)
// puts all synchronization at piece boundaries in internal/parallel; a
// lock inside a kernel would serialize the per-event loop and is almost
// always a bug. sync.WaitGroup.Add/Done and sync.Pool are allowed: both
// are boundary bookkeeping, not blocking operations. Deliberate sites
// (the tagdfa lazy-compile Once) opt out with //treelint:partial.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotLock is the no-synchronization-on-the-hot-path analyzer.
var HotLock = &Analyzer{
	Name: "hotlock",
	Doc: "no sync.Mutex/RWMutex/Once/Cond/Map operations, WaitGroup.Wait, or channel " +
		"sends/receives/closes may be reachable from the batch kernels or any " +
		"//treelint:plain function; annotate deliberate sites with //treelint:partial <reason>",
	Run: runHotLock,
}

// hotRoots are the kernel entry points checked even without a
// //treelint:plain marker — the names the paper's evaluation loop and the
// streamqd daemon call per batch.
var hotRoots = map[string]bool{
	"StepBatch":            true,
	"SelectBatch":          true,
	"SimulateSegmentCoded": true,
	"selectPlain":          true,
}

// bannedSyncMethods maps sync.<Type> method names to a diagnosis. Method
// sets are matched by receiver type so a field named Lock on an unrelated
// struct is not flagged.
var bannedSyncMethods = map[string]map[string]string{
	"Mutex":   {"Lock": "sync.Mutex.Lock", "Unlock": "sync.Mutex.Unlock", "TryLock": "sync.Mutex.TryLock"},
	"RWMutex": {"Lock": "sync.RWMutex.Lock", "Unlock": "sync.RWMutex.Unlock", "RLock": "sync.RWMutex.RLock", "RUnlock": "sync.RWMutex.RUnlock", "TryLock": "sync.RWMutex.TryLock", "TryRLock": "sync.RWMutex.TryRLock"},
	"Once":    {"Do": "sync.Once.Do"},
	"Cond":    {"Wait": "sync.Cond.Wait", "Signal": "sync.Cond.Signal", "Broadcast": "sync.Cond.Broadcast"},
	"WaitGroup": {
		// Add and Done are atomic counter updates; only Wait blocks.
		"Wait": "sync.WaitGroup.Wait",
	},
	"Map": {"Load": "sync.Map.Load", "Store": "sync.Map.Store", "LoadOrStore": "sync.Map.LoadOrStore", "LoadAndDelete": "sync.Map.LoadAndDelete", "Delete": "sync.Map.Delete", "Range": "sync.Map.Range", "Swap": "sync.Map.Swap", "CompareAndSwap": "sync.Map.CompareAndSwap", "CompareAndDelete": "sync.Map.CompareAndDelete"},
}

// A syncSite is one synchronization operation inside a function body.
type syncSite struct {
	pos  token.Pos
	what string
}

// syncSummary caches per-function sync operations and local call edges.
type syncSummary struct {
	sites []syncSite
	calls []*FuncNode
}

func runHotLock(pass *Pass) error {
	cg := BuildCallGraph(pass)
	summaries := map[*FuncNode]*syncSummary{}
	summarize := func(n *FuncNode) *syncSummary {
		if s, ok := summaries[n]; ok {
			return s
		}
		s := &syncSummary{}
		summaries[n] = s
		collectSyncOps(pass, cg, n, s)
		return s
	}

	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !hotRoots[fn.Name.Name] && !pass.FuncHasDirective(f, fn, "plain") {
				continue
			}
			root := cg.Node(pass.TypesInfo.Defs[fn.Name])
			if root == nil {
				continue
			}
			visited := map[*FuncNode]bool{}
			var visit func(n *FuncNode, path []string)
			visit = func(n *FuncNode, path []string) {
				if visited[n] {
					return
				}
				visited[n] = true
				s := summarize(n)
				for _, site := range s.sites {
					if reported[site.pos] || pass.siteExempt(site.pos) {
						continue
					}
					reported[site.pos] = true
					via := ""
					if len(path) > 0 {
						via = " via " + strings.Join(path, " → ")
					}
					pass.Reportf(site.pos, "hot path %s reaches %s%s (lock-free contract)",
						fn.Name.Name, site.what, via)
				}
				for _, c := range s.calls {
					if funcExempt(pass, c) {
						continue
					}
					visit(c, append(path[:len(path):len(path)], c.Name()))
				}
			}
			visit(root, nil)
		}
	}
	return nil
}

// collectSyncOps fills the summary for one function: banned sync-package
// method calls, channel operations, and package-local call edges on
// reachable blocks. Only reachable blocks count — a channel send behind a
// constant-false debug flag is compiled out and does not break the
// contract.
func collectSyncOps(pass *Pass, cg *CallGraph, n *FuncNode, s *syncSummary) {
	body := n.Body()
	if body == nil {
		return
	}
	g := BuildCFG(body, pass.TypesInfo)
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		// A range over a channel blocks on every receive; the ranged
		// expression is the head block's node.
		if strings.HasPrefix(b.Kind, "range.head") {
			for _, node := range b.Nodes {
				if e, ok := node.(ast.Expr); ok {
					if _, isChan := typeOf(pass, e).(*types.Chan); isChan {
						s.sites = append(s.sites, syncSite{pos: e.Pos(), what: "a range over a channel"})
					}
				}
			}
		}
		for _, node := range b.Nodes {
			walk(node, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return false // bound closures are separate nodes
				case *ast.SendStmt:
					s.sites = append(s.sites, syncSite{pos: x.Pos(), what: "a channel send"})
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						s.sites = append(s.sites, syncSite{pos: x.Pos(), what: "a channel receive"})
					}
				case *ast.CallExpr:
					if id, ok := x.Fun.(*ast.Ident); ok {
						if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" {
							s.sites = append(s.sites, syncSite{pos: x.Pos(), what: "a channel close"})
							return true
						}
					}
					if what, ok := bannedSyncCall(pass, x); ok {
						s.sites = append(s.sites, syncSite{pos: x.Pos(), what: what})
						return true
					}
					if callee := cg.CalleeOf(x); callee != nil {
						s.calls = append(s.calls, callee)
					}
				}
				return true
			})
		}
	}
}

// bannedSyncCall reports whether call is a method call on one of the
// banned sync package types (by checked receiver type, seen through
// pointers and embedding via the selected method's receiver).
func bannedSyncCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	if methods, ok := bannedSyncMethods[obj.Name()]; ok {
		if what, ok := methods[fn.Name()]; ok {
			return what, true
		}
	}
	return "", false
}
