package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolCheck enforces the worker-pool discipline of internal/parallel on
// every goroutine and pool task the module launches:
//
//   - sync.WaitGroup.Add must run on the launching goroutine, before the
//     work starts — Add inside the spawned body races with the matching
//     Wait (the canonical WaitGroup misuse);
//   - a channel send in a worker body must sit in a select with at least
//     one receive (a done/ctx guard), so a worker can always be cancelled
//     instead of blocking forever on an abandoned channel — tasks handed
//     to parallel.Pool.Submit must be leaves (see Pool's contract). This
//     rule applies to non-test files only: tests routinely collect errors
//     on channels buffered to the worker count and joined with Wait, where
//     the send provably cannot block and a guard is noise;
//   - a goroutine or pool task must not capture its loop's iteration
//     variable directly; copy it (ci := ci) or pass it as an argument.
//     Go 1.22 made the capture per-iteration, but the engine keeps the
//     explicit-copy discipline: the copy is what makes the capture set of
//     a task reviewable at the launch site.
//
// "Worker body" means a function literal launched by a go statement or
// passed to a method named Submit on a *parallel.Pool.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc: "WaitGroup.Add on the launching side only; worker channel sends need a " +
		"done/ctx select; no direct loop-variable capture in worker bodies",
	Run: runPoolCheck,
}

// isWaitGroupAdd reports whether call is (*sync.WaitGroup).Add.
func isWaitGroupAdd(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// isPoolSubmit reports whether call is a Submit method call on a type
// named Pool from a module-local package (internal/parallel, or a fixture
// pool).
func isPoolSubmit(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Submit" {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool" &&
		named.Obj().Pkg() != nil && isModuleLocal(named.Obj().Pkg().Path())
}

// loopVars collects the objects of iteration variables of every for/range
// statement enclosing pos within fn (the variables declared by the loop
// clause itself, not body-local copies).
type loopScope struct {
	body *ast.BlockStmt
	vars []types.Object
}

func collectLoopScopes(pass *Pass, root ast.Node) []loopScope {
	var scopes []loopScope
	walk(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			var vars []types.Object
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							vars = append(vars, obj)
						}
					}
				}
			}
			if len(vars) > 0 {
				scopes = append(scopes, loopScope{body: n.Body, vars: vars})
			}
		case *ast.RangeStmt:
			var vars []types.Object
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						vars = append(vars, obj)
					}
				}
			}
			if len(vars) > 0 {
				scopes = append(scopes, loopScope{body: n.Body, vars: vars})
			}
		}
		return true
	})
	return scopes
}

func runPoolCheck(pass *Pass) error {
	for _, f := range pass.Files {
		scopes := collectLoopScopes(pass, f)
		testFile := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		checkWorker := func(lit *ast.FuncLit, how string) {
			// Rule 1: no WaitGroup.Add inside the spawned body.
			// Rule 2: sends on captured channels need a guarding select.
			walk(lit.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isWaitGroupAdd(pass, n) {
						pass.Reportf(n.Pos(),
							"WaitGroup.Add inside a %s body races with Wait; call Add before launching", how)
					}
				case *ast.SelectStmt:
					// Sends inside a select with a receive are guarded;
					// prune so sendsIn below only sees naked sends.
					if selectHasReceive(n) {
						return false
					}
				case *ast.SendStmt:
					if !testFile {
						pass.Reportf(n.Pos(),
							"channel send in a %s body without a done/ctx select; a worker must stay cancellable", how)
					}
				}
				return true
			})
			// Rule 3: direct loop-variable capture.
			for _, sc := range scopes {
				if !(sc.body.Pos() <= lit.Pos() && lit.End() <= sc.body.End()) {
					continue
				}
				walk(lit.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					use := pass.TypesInfo.Uses[id]
					for _, v := range sc.vars {
						if use == v {
							pass.Reportf(id.Pos(),
								"%s body captures loop variable %s directly; copy it (%s := %s) or pass it as an argument",
								how, v.Name(), v.Name(), v.Name())
						}
					}
					return true
				})
			}
		}
		walk(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkWorker(lit, "goroutine")
				}
			case *ast.CallExpr:
				if isPoolSubmit(pass, n) && len(n.Args) == 1 {
					if lit, ok := n.Args[0].(*ast.FuncLit); ok {
						checkWorker(lit, "pool task")
					}
				}
			}
			return true
		})
	}
	return nil
}

// selectHasReceive reports whether any comm clause of the select is a
// receive (the done/ctx guard shape).
func selectHasReceive(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		comm := cl.(*ast.CommClause).Comm
		switch comm := comm.(type) {
		case *ast.ExprStmt:
			if _, ok := comm.X.(*ast.UnaryExpr); ok {
				return true // <-ch
			}
		case *ast.AssignStmt:
			return true // v := <-ch
		}
	}
	return false
}
