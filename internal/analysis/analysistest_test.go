package analysis

// A self-contained analogue of golang.org/x/tools/go/analysis/analysistest:
// fixture packages live under testdata/src/<pkg> (GOPATH-style import
// paths), expectations are `// want "regexp"` comments on the line the
// diagnostic must land on, and every diagnostic must be wanted and every
// want matched. Standard-library imports in fixtures are type-checked from
// source (no export data or network needed).

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureLoader type-checks testdata/src packages, resolving fixture-local
// imports from the same tree and everything else from standard-library
// source.
type fixtureLoader struct {
	fset *token.FileSet
	root string // testdata/src
	std  types.Importer
	pkgs map[string]*fixturePkg
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newFixtureLoader(t *testing.T) *fixtureLoader {
	t.Helper()
	fset := token.NewFileSet()
	return &fixtureLoader{
		fset: fset,
		root: filepath.Join("testdata", "src"),
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*fixturePkg{},
	}
}

// Import implements types.Importer over the fixture tree with a
// standard-library fallback.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, path); dirExists(dir) {
		p := l.load(path)
		return p.pkg, p.err
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

func (l *fixtureLoader) load(path string) *fixturePkg {
	if p, ok := l.pkgs[path]; ok {
		return p
	}
	p := &fixturePkg{}
	l.pkgs[path] = p
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		p.err = err
		return p
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		p.err = fmt.Errorf("no Go files in %s", dir)
		return p
	}
	p.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	p.pkg, p.err = conf.Check(path, l.fset, p.files, p.info)
	return p
}

// wantRe matches one expectation comment; several quoted patterns may
// share a line.
var wantRe = regexp.MustCompile(`// want (.*)$`)

var wantPatRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// runAnalyzer applies a to the fixture package and compares diagnostics
// against the package's want comments.
func runAnalyzer(t *testing.T, a *Analyzer, pkgpath string) {
	t.Helper()
	l := newFixtureLoader(t)
	p := l.load(pkgpath)
	if p.err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, p.err)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      l.fset,
		Files:     p.files,
		Pkg:       p.pkg,
		TypesInfo: p.info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, pkgpath, err)
	}

	var wants []*expectation
	for _, f := range p.files {
		filename := l.fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := l.fset.Position(c.Pos()).Line
				pats := wantPatRe.FindAllStringSubmatch(m[1], -1)
				if len(pats) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", filename, line, c.Text)
					continue
				}
				for _, pm := range pats {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern: %v", filename, line, err)
					}
					wants = append(wants, &expectation{file: filename, line: line, pattern: re})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.pattern)
		}
	}
}
