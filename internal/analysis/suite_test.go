package analysis

import "testing"

func TestPlainKernel(t *testing.T) { runAnalyzer(t, PlainKernel, "plainkernel") }
func TestEnumSwitch(t *testing.T)  { runAnalyzer(t, EnumSwitch, "enumswitch") }
func TestPoolCheck(t *testing.T)   { runAnalyzer(t, PoolCheck, "poolcheck") }
func TestAtomicField(t *testing.T) { runAnalyzer(t, AtomicField, "atomicfield") }
func TestCloseCheck(t *testing.T)  { runAnalyzer(t, CloseCheck, "closecheck") }
func TestAllocFree(t *testing.T)   { runAnalyzer(t, AllocFree, "allocfree") }
func TestLifecycle(t *testing.T)   { runAnalyzer(t, Lifecycle, "lifecycle") }
func TestHotLock(t *testing.T)     { runAnalyzer(t, HotLock, "hotlock") }

func TestAllStable(t *testing.T) {
	want := []string{
		"plainkernel", "enumswitch", "poolcheck", "atomicfield", "closecheck",
		"allocfree", "lifecycle", "hotlock",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("%s: incomplete analyzer metadata", a.Name)
		}
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}
