package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// EnumSwitch checks that every switch over one of the engine's enum types
// names every member of the enum explicitly. A `default` clause does not
// count: the silent-default fall-through is exactly the bug class this
// analyzer exists for — a new CutPolicy or event kind added later must
// fail the lint gate at every switch that has not decided what to do with
// it, instead of inheriting whatever the default happened to do.
// Deliberately partial switches opt out with //treelint:partial.
//
// An enum type is a defined (non-alias) integer or string type declared in
// module-local code with at least two package-level constants of that
// exact type. Constants whose name starts with "Num" (obs.NumPhases) or
// "num" are sentinels counting the enum and are not required in switches.
var EnumSwitch = &Analyzer{
	Name: "enumswitch",
	Doc: "switches over engine enums (event kinds, CutPolicy, diagnostic kinds, ...) " +
		"must name every member or carry //treelint:partial",
	Run: runEnumSwitch,
}

// enumMembers returns the distinct constant values of an enum type
// declared in the type's own package, with one representative name per
// value, or nil when the type does not look like an enum.
func enumMembers(named *types.Named) map[string]string {
	pkg := named.Obj().Pkg()
	if pkg == nil || !isModuleLocal(pkg.Path()) {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return nil
	}
	members := map[string]string{} // ExactString(value) -> first declared name
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Type() != named {
			continue
		}
		if strings.HasPrefix(name, "Num") || strings.HasPrefix(name, "num") {
			continue // counting sentinel, not a member
		}
		key := c.Val().ExactString()
		if _, seen := members[key]; !seen {
			members[key] = name
		}
	}
	if len(members) < 2 {
		return nil
	}
	return members
}

func runEnumSwitch(pass *Pass) error {
	for _, f := range pass.Files {
		walk(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			members := enumMembers(named)
			if members == nil {
				return true
			}
			if pass.HasDirective(f, sw.Pos(), "partial") {
				return true
			}
			missing := make(map[string]string, len(members))
			for k, v := range members {
				missing[k] = v
			}
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					cv, ok := pass.TypesInfo.Types[e]
					if !ok || cv.Value == nil {
						// A non-constant case: the switch is doing dynamic
						// comparison, not enum dispatch; leave it alone.
						return true
					}
					delete(missing, exactKey(cv.Value))
				}
			}
			if len(missing) == 0 {
				return true
			}
			names := make([]string, 0, len(missing))
			for _, name := range missing {
				names = append(names, name)
			}
			sort.Strings(names)
			what := "no default"
			if hasDefault {
				what = "a silent default"
			}
			pass.Reportf(sw.Pos(),
				"switch over %s is missing cases %s (with %s); add them or mark the switch //treelint:partial",
				named.Obj().Name(), strings.Join(names, ", "), what)
			return true
		})
	}
	return nil
}

// exactKey normalizes a constant value to the representation used by
// enumMembers.
func exactKey(v constant.Value) string { return v.ExactString() }
