package analysis

// Table-driven CFG shape tests. Each case compiles a small function whose
// interesting points are tagged with mark("name") calls, then asserts
// graph-level properties: which marks are reachable, which lie on a cycle,
// which can flow to which, and which edges were pruned. Asserting over
// marks instead of block indices keeps the cases robust against builder
// details (how many empty join blocks exist, their numbering).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildTestCFG wraps body in a function with the fixture parameters every
// case draws from, type-checks it (constant pruning and the panic builtin
// need types.Info) and builds its CFG.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := `package p

func mark(string) {}

const no = false
const yes = true

func f(n int, c, c2 bool, v int, xs []int, ch chan int) {
` + body + `
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type-checking fixture: %v\n%s", err, src)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "f" {
			return BuildCFG(fn.Body, info)
		}
	}
	t.Fatal("fixture function f not found")
	return nil
}

// markName returns the mark label when n is a mark("label") statement,
// deferred or not.
func markName(n ast.Node) (string, bool) {
	var call *ast.CallExpr
	switch n := n.(type) {
	case *ast.ExprStmt:
		call, _ = n.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = n.Call
	}
	if call == nil || len(call.Args) != 1 {
		return "", false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "mark" {
		return "", false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return "", false
	}
	return strings.Trim(lit.Value, `"`), true
}

// markBlocks maps every mark label to the block holding it.
func markBlocks(t *testing.T, g *CFG) map[string]*Block {
	t.Helper()
	out := map[string]*Block{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if name, ok := markName(n); ok {
				if out[name] != nil {
					t.Fatalf("mark %q appears in two blocks", name)
				}
				out[name] = b
			}
		}
	}
	return out
}

// reaches reports whether a path from leads to to, optionally avoiding one
// block (nil = no constraint). from == to requires a non-empty path, so it
// detects self-loops, not identity.
func reaches(from, to, avoid *Block) bool {
	seen := map[*Block]bool{}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == avoid {
				continue
			}
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

type cfgCase struct {
	name string
	body string
	// live and dead partition the marks by reachability from Entry.
	live, dead []string
	// cyclic and acyclic assert InCycle membership of a mark's block.
	cyclic, acyclic []string
	// flows asserts reaches(a, b); noflow the negation.
	flows, noflow [][2]string
	// skips asserts a path Entry → b exists that avoids a's block: the
	// pruned-or-bypassing edge (zero-iteration range, no-default switch).
	skips [][2]string
	// defers is the expected len(cfg.Defers).
	defers int
}

func cfgCases() []cfgCase {
	return []cfgCase{
		{
			name: "if/else joins at done",
			body: `
	if c {
		mark("then")
	} else {
		mark("else")
	}
	mark("done")`,
			live:    []string{"then", "else", "done"},
			acyclic: []string{"then", "else", "done"},
			flows:   [][2]string{{"then", "done"}, {"else", "done"}},
			noflow:  [][2]string{{"then", "else"}, {"else", "then"}},
		},
		{
			name: "for loop has a back edge and an exit",
			body: `
	for i := 0; i < n; i++ {
		mark("body")
	}
	mark("done")`,
			live:    []string{"body", "done"},
			cyclic:  []string{"body"},
			acyclic: []string{"done"},
			flows:   [][2]string{{"body", "body"}, {"body", "done"}},
			skips:   [][2]string{{"body", "done"}}, // zero iterations
		},
		{
			name: "range loop: zero-iteration edge and back edge",
			body: `
	for range xs {
		mark("body")
	}
	mark("done")`,
			live:   []string{"body", "done"},
			cyclic: []string{"body"},
			flows:  [][2]string{{"body", "body"}, {"body", "done"}},
			skips:  [][2]string{{"body", "done"}},
		},
		{
			name: "break leaves the loop, continue re-enters it",
			body: `
	for i := 0; i < n; i++ {
		if c {
			mark("brk")
			break
		}
		if c2 {
			mark("cont")
			continue
		}
		mark("tail")
	}
	mark("done")`,
			live:   []string{"brk", "cont", "tail", "done"},
			flows:  [][2]string{{"brk", "done"}, {"cont", "tail"}, {"cont", "done"}},
			noflow: [][2]string{{"brk", "tail"}, {"brk", "cont"}},
		},
		{
			name: "labeled break exits the outer loop",
			body: `
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if c {
				mark("brk")
				break outer
			}
			mark("inner")
		}
	}
	mark("done")`,
			live:   []string{"brk", "inner", "done"},
			cyclic: []string{"inner"},
			flows:  [][2]string{{"brk", "done"}},
			noflow: [][2]string{{"brk", "inner"}},
		},
		{
			name: "switch: fallthrough chains cases, no default exits the head",
			body: `
	switch v {
	case 1:
		mark("one")
		fallthrough
	case 2:
		mark("two")
	}
	mark("done")`,
			live:   []string{"one", "two", "done"},
			flows:  [][2]string{{"one", "two"}, {"two", "done"}},
			noflow: [][2]string{{"two", "one"}},
			skips:  [][2]string{{"one", "done"}, {"two", "done"}}, // v matches neither case
		},
		{
			name: "switch with default covers the head",
			body: `
	switch v {
	case 1:
		mark("one")
	default:
		mark("def")
	}
	mark("done")`,
			live:   []string{"one", "def", "done"},
			flows:  [][2]string{{"one", "done"}, {"def", "done"}},
			noflow: [][2]string{{"one", "def"}, {"def", "one"}},
		},
		{
			name: "select: exclusive arms joining at done",
			body: `
	select {
	case <-ch:
		mark("recv")
	case ch <- 1:
		mark("send")
	default:
		mark("def")
	}
	mark("done")`,
			live:   []string{"recv", "send", "def", "done"},
			flows:  [][2]string{{"recv", "done"}, {"send", "done"}, {"def", "done"}},
			noflow: [][2]string{{"recv", "send"}, {"send", "def"}, {"def", "recv"}},
		},
		{
			name: "goto builds a loop the cycle detector sees",
			body: `
	i := 0
loop:
	mark("body")
	i++
	if i < n {
		goto loop
	}
	mark("done")`,
			live:   []string{"body", "done"},
			cyclic: []string{"body"},
			flows:  [][2]string{{"body", "body"}, {"body", "done"}},
		},
		{
			name: "explicit panic edges to exit and kills the fall-through",
			body: `
	if c {
		mark("before")
		panic("boom")
	}
	mark("done")`,
			live:   []string{"before", "done"},
			noflow: [][2]string{{"before", "done"}},
		},
		{
			name: "statements after return are dead",
			body: `
	mark("a")
	return
	mark("dead")`,
			live: []string{"a"},
			dead: []string{"dead"},
		},
		{
			name: "constant-false branch is pruned",
			body: `
	if no {
		mark("dead")
	}
	mark("done")`,
			live: []string{"done"},
			dead: []string{"dead"},
		},
		{
			name: "constant-true branch prunes the else",
			body: `
	if yes {
		mark("live")
	} else {
		mark("dead")
	}
	mark("done")`,
			live: []string{"live", "done"},
			dead: []string{"dead"},
		},
		{
			name: "constant-false loop contributes no cycle",
			body: `
	for no {
		mark("dead")
	}
	mark("done")`,
			live: []string{"done"},
			dead: []string{"dead"},
		},
		{
			name: "condition-free loop never falls out",
			body: `
	for {
		mark("body")
	}
	mark("dead")`,
			live:   []string{"body"},
			dead:   []string{"dead"},
			cyclic: []string{"body"},
		},
		{
			name: "defers are collected, conditional or not",
			body: `
	defer mark("d1")
	if c {
		defer mark("d2")
	}
	mark("done")`,
			live:   []string{"d1", "d2", "done"},
			defers: 2,
		},
	}
}

func TestCFGEdges(t *testing.T) {
	for _, tc := range cfgCases() {
		t.Run(tc.name, func(t *testing.T) {
			g := buildTestCFG(t, tc.body)
			marks := markBlocks(t, g)
			blk := func(name string) *Block {
				b := marks[name]
				if b == nil {
					t.Fatalf("mark %q not placed in any block", name)
				}
				return b
			}
			reach := g.Reachable()
			for _, m := range tc.live {
				if !reach[blk(m)] {
					t.Errorf("mark %q should be reachable", m)
				}
			}
			// A dead mark is either in an unreachable block or — when the
			// builder pruned its branch outright — absent from the graph.
			for _, m := range tc.dead {
				if b := marks[m]; b != nil && reach[b] {
					t.Errorf("mark %q should be dead", m)
				}
			}
			cyc := g.InCycle()
			for _, m := range tc.cyclic {
				if !cyc[blk(m)] {
					t.Errorf("mark %q should lie on a cycle", m)
				}
			}
			for _, m := range tc.acyclic {
				if cyc[blk(m)] {
					t.Errorf("mark %q should not lie on a cycle", m)
				}
			}
			for _, f := range tc.flows {
				if !reaches(blk(f[0]), blk(f[1]), nil) {
					t.Errorf("expected a path %q → %q", f[0], f[1])
				}
			}
			for _, f := range tc.noflow {
				if reaches(blk(f[0]), blk(f[1]), nil) {
					t.Errorf("unexpected path %q → %q", f[0], f[1])
				}
			}
			for _, f := range tc.skips {
				if !reaches(g.Entry, blk(f[1]), blk(f[0])) {
					t.Errorf("expected a path entry → %q that avoids %q", f[1], f[0])
				}
			}
			if len(g.Defers) != tc.defers {
				t.Errorf("collected %d defers, want %d", len(g.Defers), tc.defers)
			}
			// Structural invariants every graph must satisfy.
			if len(g.Entry.Preds) != 0 {
				t.Error("entry block has predecessors")
			}
			if len(g.Exit.Succs) != 0 {
				t.Error("exit block has successors")
			}
			if len(tc.dead) == 0 && !reaches(g.Entry, g.Exit, nil) {
				t.Error("exit unreachable from entry")
			}
		})
	}
}
