package analysis

// A static, package-local call graph: the summary substrate that lets the
// flow-sensitive analyzers see through module-local helpers (core's
// flushObs, tagdfa's compiled, parallel's piece flusher) without whole-
// program analysis. Resolution is intentionally conservative-by-omission:
// only calls the type checker binds to a function or method declared in
// the package under analysis, plus locally-bound closures
// (name := func(...){...}), produce edges. Interface dispatch, function
// values passed around, and cross-package calls are invisible — the
// compiler-output gates (cmd/bcegate, cmd/allocgate) backstop what the
// AST cannot see.

import (
	"go/ast"
	"go/types"
)

// A CallGraph indexes the functions of one package and resolves the
// package-local callees of any body.
type CallGraph struct {
	pass *Pass
	// decls maps the *types.Func of every function/method declared in the
	// package to its declaration.
	decls map[types.Object]*FuncNode
}

// A FuncNode is one analyzable function body: a package-level FuncDecl or
// a locally-bound FuncLit.
type FuncNode struct {
	// Obj is the declared *types.Func (FuncDecls) or the *types.Var the
	// closure is bound to (FuncLits).
	Obj types.Object
	// Decl is non-nil for package-level functions and methods.
	Decl *ast.FuncDecl
	// Lit is non-nil for locally-bound closures.
	Lit *ast.FuncLit
	// File is the file the body lives in (directive lookups need it).
	File *ast.File
}

// Body returns the function's block.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Name returns a human-readable name for diagnostics: the declared name,
// or the closure's bound variable.
func (n *FuncNode) Name() string {
	if n.Decl != nil {
		return n.Decl.Name.Name
	}
	return n.Obj.Name()
}

// BuildCallGraph indexes every function and method declaration of the
// pass's package, plus closures bound to a local variable at their
// declaration (name := func(...){...} — the only closure form the
// analyzers chase, and the one the engine's helpers use).
func BuildCallGraph(pass *Pass) *CallGraph {
	cg := &CallGraph{pass: pass, decls: map[types.Object]*FuncNode{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			cg.decls[obj] = &FuncNode{Obj: obj, Decl: fn, File: f}
		}
		// Locally-bound closures, anywhere in the file (including inside
		// other functions).
		file := f
		walk(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					// Reassignment of an existing variable: drop the
					// binding so a two-faced closure variable resolves to
					// nothing rather than the wrong body.
					if prev := pass.TypesInfo.Uses[id]; prev != nil {
						delete(cg.decls, prev)
					}
					continue
				}
				cg.decls[obj] = &FuncNode{Obj: obj, Lit: lit, File: file}
			}
			return true
		})
	}
	return cg
}

// Node returns the FuncNode for a declared function object, or nil.
func (cg *CallGraph) Node(obj types.Object) *FuncNode { return cg.decls[obj] }

// Decls returns every indexed function node (iteration order is
// unspecified; callers sort by position when it matters).
func (cg *CallGraph) Decls() map[types.Object]*FuncNode { return cg.decls }

// CalleeOf resolves one call expression to a package-local function node,
// or nil when the callee is dynamic, cross-package or a builtin.
func (cg *CallGraph) CalleeOf(call *ast.CallExpr) *FuncNode {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = cg.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = cg.pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	if obj == nil {
		return nil
	}
	if fn, ok := obj.(*types.Func); ok {
		if fn.Pkg() != cg.pass.Pkg {
			return nil
		}
		return cg.decls[obj]
	}
	// A plain variable: resolves only if it is a locally-bound closure.
	return cg.decls[obj]
}
