package analysis

// AllocFree enforces the allocation side of the per-event constant-work
// budget (DESIGN.md §15): a //treelint:plain kernel must not reach a heap
// allocation on any live path. The analyzer is flow-sensitive where it
// pays: paths pruned by constant-false conditions do not count, loop
// membership is computed on the CFG (so the message distinguishes a
// per-event allocation from run-level setup), and summaries propagate
// through package-local callees (core's flushObs, tagdfa's compiled,
// locally-bound closures) so a kernel cannot launder an allocation through
// a helper.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocFree is the flow-sensitive no-allocation analyzer for plain
// kernels.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "//treelint:plain kernels must not reach make, new, append growth into a " +
		"non-parameter slice, heap composite literals, closures, map writes, " +
		"string/[]byte conversions or explicit interface boxing on any live path, " +
		"directly or through package-local callees; annotate deliberate sites with " +
		"//treelint:partial <reason>",
	Run: runAllocFree,
}

// An allocSite is one allocation operation inside a function body.
type allocSite struct {
	pos    token.Pos
	what   string
	inLoop bool // the site's block lies on a CFG cycle
}

// A localCall is one resolvable call to a package-local function.
type localCall struct {
	callee *FuncNode
	pos    token.Pos
	inLoop bool
}

// allocSummary caches the per-function facts the root traversal composes.
type allocSummary struct {
	sites []allocSite
	calls []localCall
}

func runAllocFree(pass *Pass) error {
	cg := BuildCallGraph(pass)
	summaries := map[*FuncNode]*allocSummary{}
	var summarize func(n *FuncNode) *allocSummary
	summarize = func(n *FuncNode) *allocSummary {
		if s, ok := summaries[n]; ok {
			return s
		}
		s := &allocSummary{}
		summaries[n] = s
		collectAllocs(pass, cg, n, s)
		return s
	}

	// Roots: every plain-marked function, in file order.
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.FuncHasDirective(f, fn, "plain") {
				continue
			}
			root := cg.Node(pass.TypesInfo.Defs[fn.Name])
			if root == nil {
				continue
			}
			visited := map[*FuncNode]bool{}
			var visit func(n *FuncNode, path []string, loop bool)
			visit = func(n *FuncNode, path []string, loop bool) {
				if visited[n] {
					return
				}
				visited[n] = true
				s := summarize(n)
				for _, site := range s.sites {
					if reported[site.pos] || pass.siteExempt(site.pos) {
						continue
					}
					reported[site.pos] = true
					where := "on the run path"
					if loop || site.inLoop {
						where = "in the per-event loop"
					}
					via := ""
					if len(path) > 0 {
						via = " via " + strings.Join(path, " → ")
					}
					pass.Reportf(site.pos, "plain kernel %s: %s %s%s (allocation-free contract)",
						fn.Name.Name, site.what, where, via)
				}
				for _, c := range s.calls {
					if funcExempt(pass, c.callee) {
						continue
					}
					visit(c.callee, append(path[:len(path):len(path)], c.callee.Name()), loop || c.inLoop)
				}
			}
			visit(root, nil, false)
		}
	}
	return nil
}

// siteExempt reports whether the line holding pos (or the line above it)
// carries a //treelint:partial directive — the per-site escape hatch for
// deliberate, justified allocations.
func (p *Pass) siteExempt(pos token.Pos) bool {
	f := p.enclosingFile(pos)
	return f != nil && p.HasDirective(f, pos, "partial")
}

// funcExempt reports whether a callee is itself declared
// //treelint:partial — an annotated summary boundary (a memoized
// state-discovery path, a deliberate growth point) that the hot-path
// traversals document rather than enter. Closures are exempted by a
// directive on their binding line.
func funcExempt(pass *Pass, n *FuncNode) bool {
	if n.Decl != nil {
		return pass.FuncHasDirective(n.File, n.Decl, "partial")
	}
	return pass.siteExempt(n.Lit.Pos())
}

// collectAllocs fills the summary for one function: allocation operations
// and package-local calls on reachable blocks, with loop membership from
// the CFG. Nested function literals are not walked — a bound closure is a
// separate node reached through its calls, and the literal itself is
// recorded as a closure allocation where it is created.
func collectAllocs(pass *Pass, cg *CallGraph, n *FuncNode, s *allocSummary) {
	body := n.Body()
	if body == nil {
		return
	}
	g := BuildCFG(body, pass.TypesInfo)
	cyc := g.InCycle()
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		inLoop := cyc[b]
		for _, node := range b.Nodes {
			walk(node, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					s.sites = append(s.sites, allocSite{pos: x.Pos(), what: "closure allocation", inLoop: inLoop})
					return false // the body is its own node, if bound
				case *ast.UnaryExpr:
					if x.Op == token.AND {
						if _, ok := x.X.(*ast.CompositeLit); ok {
							s.sites = append(s.sites, allocSite{pos: x.Pos(), what: "heap composite literal", inLoop: inLoop})
						}
					}
				case *ast.CompositeLit:
					switch typeOf(pass, x).(type) {
					case *types.Slice:
						s.sites = append(s.sites, allocSite{pos: x.Pos(), what: "slice literal", inLoop: inLoop})
					case *types.Map:
						s.sites = append(s.sites, allocSite{pos: x.Pos(), what: "map literal", inLoop: inLoop})
					}
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						if ix, ok := lhs.(*ast.IndexExpr); ok {
							if _, isMap := typeOf(pass, ix.X).(*types.Map); isMap {
								s.sites = append(s.sites, allocSite{pos: ix.Pos(), what: "map write", inLoop: inLoop})
							}
						}
					}
				case *ast.CallExpr:
					classifyCall(pass, cg, n, x, inLoop, s)
				}
				return true
			})
		}
	}
}

// typeOf returns the underlying checked type of an expression, or nil.
func typeOf(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

// classifyCall sorts one call expression into an allocation site, a
// package-local call edge, or neither.
func classifyCall(pass *Pass, cg *CallGraph, n *FuncNode, call *ast.CallExpr, inLoop bool, s *allocSummary) {
	// Conversions: T(x) where T is a type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			dst := tv.Type.Underlying()
			src := typeOf(pass, call.Args[0])
			switch {
			case isString(dst) && isByteSlice(src), isByteSlice(dst) && isString(src):
				s.sites = append(s.sites, allocSite{pos: call.Pos(), what: "string/[]byte conversion", inLoop: inLoop})
			case isNonEmptyInterface(dst) && src != nil && !types.IsInterface(src):
				s.sites = append(s.sites, allocSite{pos: call.Pos(), what: "interface boxing", inLoop: inLoop})
			}
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				s.sites = append(s.sites, allocSite{pos: call.Pos(), what: "make", inLoop: inLoop})
			case "new":
				s.sites = append(s.sites, allocSite{pos: call.Pos(), what: "new", inLoop: inLoop})
			case "append":
				// The §11 kernel idiom — hits = append(hits, ...) into the
				// caller's reusable buffer (passed as hits[:0] and returned)
				// — amortizes growth to the caller; appending into anything
				// else grows a fresh slice on the kernel's own budget.
				if len(call.Args) > 0 && !isParamSlice(pass, n, call.Args[0]) {
					s.sites = append(s.sites, allocSite{pos: call.Pos(), what: "append growth into a non-parameter slice", inLoop: inLoop})
				}
			}
			return
		}
	}
	if callee := cg.CalleeOf(call); callee != nil {
		s.calls = append(s.calls, localCall{callee: callee, pos: call.Pos(), inLoop: inLoop})
	}
}

// isParamSlice reports whether e is (a reslice of) an identifier declared
// in n's own parameter list.
func isParamSlice(pass *Pass, n *FuncNode, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
			continue
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				return false
			}
			var ft *ast.FuncType
			if n.Decl != nil {
				ft = n.Decl.Type
			} else {
				ft = n.Lit.Type
			}
			return ft.Pos() <= obj.Pos() && obj.Pos() <= ft.End()
		default:
			return false
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isNonEmptyInterface: conversions to any/error-free empty interfaces of
// constants are still boxing, but flagging `any` conversions everywhere
// drowns the signal; only conversions to named non-empty interfaces are
// reported, and allocgate (the compiler-output gate) remains the ground
// truth for what actually escapes.
func isNonEmptyInterface(t types.Type) bool {
	i, ok := t.(*types.Interface)
	return ok && i.NumMethods() > 0
}
