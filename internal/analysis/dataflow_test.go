package analysis

// Solver tests on a known lattice: BitsLattice with one bit per mark("x")
// call, gen-only transfer functions. The expected fixed points are small
// enough to state by hand, and the loop cases check the property the
// worklist exists for — facts genned in a body must flow around the back
// edge and stabilize, in both directions.

import (
	"testing"
)

// bitsOf assigns one bit per mark label and returns the transfer function
// that gens a block's marks, plus the label→bit table.
func bitsOf(t *testing.T, g *CFG) (map[string]uint64, func(b *Block, in uint64) uint64) {
	t.Helper()
	bits := map[string]uint64{}
	next := uint64(1)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if name, ok := markName(n); ok {
				bits[name] = next
				next <<= 1
			}
		}
	}
	transfer := func(b *Block, in uint64) uint64 {
		out := in
		for _, n := range b.Nodes {
			if name, ok := markName(n); ok {
				out |= bits[name]
			}
		}
		return out
	}
	return bits, transfer
}

func TestForwardFixedPoint(t *testing.T) {
	g := buildTestCFG(t, `
	if c {
		mark("a")
	} else {
		mark("b")
	}
	for i := 0; i < n; i++ {
		mark("loop")
	}
	if no {
		mark("deadgen")
	}
	mark("tail")`)
	bits, transfer := bitsOf(t, g)
	sol := Solve[uint64](g, BitsLattice{}, 0, Forward, transfer)

	marks := markBlocks(t, g)
	// At the loop body both branches have joined, and — via the back edge —
	// the body's own gen has reached its entry: the fixed point needed a
	// second visit.
	inLoop := sol.In[marks["loop"]]
	for _, m := range []string{"a", "b", "loop"} {
		if inLoop&bits[m] == 0 {
			t.Errorf("In[loop] lacks %q: %b", m, inLoop)
		}
	}
	// Everything live reaches Exit; the gen behind the constant-false
	// branch must not leak into any live fact.
	atExit := sol.In[g.Exit]
	for _, m := range []string{"a", "b", "loop", "tail"} {
		if atExit&bits[m] == 0 {
			t.Errorf("In[exit] lacks %q: %b", m, atExit)
		}
	}
	if atExit&bits["deadgen"] != 0 {
		t.Errorf("In[exit] contains the dead branch's gen: %b", atExit)
	}
	for _, f := range sol.In {
		if f&bits["deadgen"] != 0 {
			t.Error("dead gen leaked into a live fact")
		}
	}
	// tail has not flowed backward into the loop.
	if inLoop&bits["tail"] != 0 {
		t.Errorf("In[loop] contains tail in a forward analysis: %b", inLoop)
	}
}

func TestBackwardFixedPoint(t *testing.T) {
	g := buildTestCFG(t, `
	mark("head")
	for i := 0; i < n; i++ {
		mark("loop")
	}
	if no {
		mark("deadgen")
	}
	mark("tail")`)
	bits, transfer := bitsOf(t, g)
	sol := Solve[uint64](g, BitsLattice{}, 0, Backward, transfer)

	marks := markBlocks(t, g)
	// Backward: everything downstream of Entry is visible at Entry's Out.
	atEntry := sol.Out[g.Entry]
	for _, m := range []string{"head", "loop", "tail"} {
		if atEntry&bits[m] == 0 {
			t.Errorf("Out[entry] lacks %q: %b", m, atEntry)
		}
	}
	if atEntry&bits["deadgen"] != 0 {
		t.Errorf("Out[entry] contains the dead branch's gen: %b", atEntry)
	}
	// The loop body sees itself around the back edge and tail below it,
	// but not head, which is strictly upstream.
	inLoop := sol.In[marks["loop"]]
	for _, m := range []string{"loop", "tail"} {
		if inLoop&bits[m] == 0 {
			t.Errorf("In[loop] lacks %q in a backward analysis: %b", m, inLoop)
		}
	}
	if inLoop&bits["head"] != 0 {
		t.Errorf("In[loop] contains upstream head in a backward analysis: %b", inLoop)
	}
}

// TestSolveDeterministic: two runs over the same graph produce identical
// fixed points (the FIFO worklist is ordered, not map-ordered).
func TestSolveDeterministic(t *testing.T) {
	g := buildTestCFG(t, `
	for i := 0; i < n; i++ {
		if c {
			mark("a")
			continue
		}
		mark("b")
	}
	mark("tail")`)
	_, transfer := bitsOf(t, g)
	a := Solve[uint64](g, BitsLattice{}, 0, Forward, transfer)
	b := Solve[uint64](g, BitsLattice{}, 0, Forward, transfer)
	for _, blk := range g.Blocks {
		if a.In[blk] != b.In[blk] || a.Out[blk] != b.Out[blk] {
			t.Fatalf("block %d (%s): runs disagree: %b/%b vs %b/%b",
				blk.Index, blk.Kind, a.In[blk], a.Out[blk], b.In[blk], b.Out[blk])
		}
	}
}

// TestSolveBoundary: the boundary fact enters at Entry (Forward) and is
// joined, not overwritten, with path facts.
func TestSolveBoundary(t *testing.T) {
	g := buildTestCFG(t, `
	mark("a")`)
	bits, transfer := bitsOf(t, g)
	boundary := uint64(1) << 40
	sol := Solve[uint64](g, BitsLattice{}, boundary, Forward, transfer)
	atExit := sol.In[g.Exit]
	if atExit&boundary == 0 {
		t.Errorf("boundary fact did not reach Exit: %b", atExit)
	}
	if atExit&bits["a"] == 0 {
		t.Errorf("genned fact did not reach Exit: %b", atExit)
	}
}
