package analysis

import (
	"go/ast"
	"go/types"
)

// CloseCheck requires the error from Close to be checked or explicitly
// discarded. A scanner or evaluator whose Close reports a late error (a
// truncated stream, a flush failure) silently swallowed at a call site is
// a data-loss bug waiting for a workload that triggers it.
//
// Flagged: a bare expression statement x.Close() where Close's only
// result is an error. Not flagged: `if err := x.Close(); ...`, the
// explicit discard `_ = x.Close()`, and `defer x.Close()` — a deferred
// Close is a visible, deliberate discard (converting those to closures
// that re-check the error is a policy decision, not a contract).
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "the error result of Close must be checked or explicitly discarded (_ = x.Close())",
	Run:  runCloseCheck,
}

// closeReturnsOnlyError reports whether call invokes a function or method
// named Close whose result list is exactly (error).
func closeReturnsOnlyError(pass *Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	if name != "Close" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func runCloseCheck(pass *Pass) error {
	for _, f := range pass.Files {
		walk(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || !closeReturnsOnlyError(pass, call) {
				return true
			}
			pass.Reportf(stmt.Pos(),
				"Close error is dropped; check it or discard it explicitly (_ = x.Close())")
			return true
		})
	}
	return nil
}
