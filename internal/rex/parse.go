package rex

import (
	"fmt"
	"strings"
)

// Parse parses the concrete syntax described in the package comment.
func Parse(expr string) (*Node, error) {
	p := &parser{src: []rune(strings.TrimSpace(expr))}
	if len(p.src) == 0 {
		return nil, fmt.Errorf("rex: empty expression")
	}
	n, err := p.union()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("rex: unexpected %q at offset %d", string(p.src[p.pos]), p.pos)
	}
	return n, nil
}

// MustParse parses expr, panicking on error (for tests and fixed tables).
func MustParse(expr string) *Node {
	n, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	src []rune
	pos int
}

func (p *parser) peek() (rune, bool) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) union() (*Node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []*Node{first}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			break
		}
		p.pos++
		next, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	return Union(subs...), nil
}

func (p *parser) concat() (*Node, error) {
	var subs []*Node
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			break
		}
		atom, err := p.postfix()
		if err != nil {
			return nil, err
		}
		subs = append(subs, atom)
	}
	if len(subs) == 0 {
		return Eps(), nil
	}
	return Concat(subs...), nil
}

func (p *parser) postfix() (*Node, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return n, nil
		}
		switch c {
		case '*':
			p.pos++
			n = Star(n)
		case '+':
			p.pos++
			n = Plus(n)
		case '?':
			p.pos++
			n = Opt(n)
		default:
			return n, nil
		}
	}
}

func isSymbolChar(c rune) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func (p *parser) atom() (*Node, error) {
	c, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("rex: unexpected end of expression")
	}
	switch {
	case c == '(':
		p.pos++
		n, err := p.union()
		if err != nil {
			return nil, err
		}
		c2, ok := p.peek()
		if !ok || c2 != ')' {
			return nil, fmt.Errorf("rex: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return n, nil
	case c == '.':
		p.pos++
		return Any(), nil
	case c == '%':
		p.pos++
		return Eps(), nil
	case c == '\'':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("rex: unterminated quoted symbol")
		}
		name := string(p.src[start:p.pos])
		p.pos++
		if name == "" {
			return nil, fmt.Errorf("rex: empty quoted symbol")
		}
		return Sym(name), nil
	case isSymbolChar(c):
		p.pos++
		return Sym(string(c)), nil
	default:
		return nil, fmt.Errorf("rex: unexpected character %q at offset %d", string(c), p.pos)
	}
}
