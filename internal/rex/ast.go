// Package rex implements regular expressions over finite alphabets of named
// symbols: parsing, compilation to minimal DFAs (via Thompson + subset
// construction + Hopcroft), and a Brzozowski-derivative matcher used as an
// independent test oracle.
//
// The concrete syntax follows the paper's usage with ASCII operators:
//
//	a Γ*b     is written  a.*b     («.» matches any symbol of Γ)
//	Γ*a Γ*b   is written  .*a.*b
//	(b*ab*ab*)*  is written  (b*ab*ab*)*
//
// Single letters are one-character symbols; multi-character symbols are
// quoted: 'item'. «|» is union, juxtaposition is concatenation, «*», «+»,
// «?» are the usual postfix operators, «()» groups, and «%» denotes the
// empty word ε (handy for unions like (a|%)).
package rex

import (
	"sort"
	"strings"
)

// Kind discriminates AST node types.
type Kind int

// AST node kinds.
const (
	KEmpty Kind = iota // ∅, the empty language
	KEps               // ε, the empty word
	KSym               // a named symbol
	KAny               // any single symbol of the alphabet («.»)
	KConcat
	KUnion
	KStar
	KPlus
	KOpt
)

// Node is a regular-expression AST node.
type Node struct {
	Kind Kind
	Name string  // for KSym
	Subs []*Node // children for Concat/Union/Star/Plus/Opt
}

// Constructors.

// Empty returns the ∅ node.
func Empty() *Node { return &Node{Kind: KEmpty} }

// Eps returns the ε node.
func Eps() *Node { return &Node{Kind: KEps} }

// Sym returns a symbol node.
func Sym(name string) *Node { return &Node{Kind: KSym, Name: name} }

// Any returns the «.» node.
func Any() *Node { return &Node{Kind: KAny} }

// Concat returns the concatenation of the given nodes (ε for none).
func Concat(subs ...*Node) *Node {
	if len(subs) == 0 {
		return Eps()
	}
	if len(subs) == 1 {
		return subs[0]
	}
	return &Node{Kind: KConcat, Subs: subs}
}

// Union returns the union of the given nodes (∅ for none).
func Union(subs ...*Node) *Node {
	if len(subs) == 0 {
		return Empty()
	}
	if len(subs) == 1 {
		return subs[0]
	}
	return &Node{Kind: KUnion, Subs: subs}
}

// Star returns x*.
func Star(x *Node) *Node { return &Node{Kind: KStar, Subs: []*Node{x}} }

// Plus returns x+.
func Plus(x *Node) *Node { return &Node{Kind: KPlus, Subs: []*Node{x}} }

// Opt returns x?.
func Opt(x *Node) *Node { return &Node{Kind: KOpt, Subs: []*Node{x}} }

// SymbolNames returns the sorted set of symbol names appearing in the
// expression.
func (n *Node) SymbolNames() []string {
	set := map[string]bool{}
	var walk func(*Node)
	walk = func(x *Node) {
		if x == nil {
			return
		}
		if x.Kind == KSym {
			set[x.Name] = true
		}
		for _, s := range x.Subs {
			walk(s)
		}
	}
	walk(n)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// String renders the expression back to the concrete syntax.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

// precedence levels: union < concat < postfix < atom.
func (n *Node) render(b *strings.Builder, prec int) {
	paren := func(need int, f func()) {
		if prec > need {
			b.WriteByte('(')
			f()
			b.WriteByte(')')
		} else {
			f()
		}
	}
	switch n.Kind {
	case KEmpty:
		b.WriteString("[]") // no concrete syntax; only from programmatic use
	case KEps:
		b.WriteByte('%')
	case KAny:
		b.WriteByte('.')
	case KSym:
		if len(n.Name) == 1 && isSymbolChar(rune(n.Name[0])) {
			b.WriteString(n.Name)
		} else {
			b.WriteByte('\'')
			b.WriteString(n.Name)
			b.WriteByte('\'')
		}
	case KConcat:
		paren(1, func() {
			for _, s := range n.Subs {
				s.render(b, 2)
			}
		})
	case KUnion:
		paren(0, func() {
			for i, s := range n.Subs {
				if i > 0 {
					b.WriteByte('|')
				}
				s.render(b, 1)
			}
		})
	case KStar, KPlus, KOpt:
		n.Subs[0].render(b, 3)
		// The outer case already narrowed Kind to the three postfix
		// operators; default handles KOpt.
		//treelint:partial
		switch n.Kind {
		case KStar:
			b.WriteByte('*')
		case KPlus:
			b.WriteByte('+')
		default:
			b.WriteByte('?')
		}
	}
}
