package rex

import (
	"math/rand"
	"strings"
	"testing"

	"stackless/internal/alphabet"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"a.*b",
		"ab",
		".*a.*b",
		".*ab",
		"(b*ab*ab*)*",
		"a|b|c",
		"(a|b)*c+d?",
		"'item''price'*",
		"%|a",
	}
	for _, expr := range cases {
		n, err := Parse(expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		// Reparse the rendering; must yield the same language (checked via DFA).
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse of %q → %q: %v", expr, n.String(), err)
		}
		alph := alphabet.New(append(n.SymbolNames(), "z")...)
		d1, err := Compile(n, alph)
		if err != nil {
			t.Fatalf("Compile(%q): %v", expr, err)
		}
		d2, err := Compile(n2, alph)
		if err != nil {
			t.Fatal(err)
		}
		if d1.NumStates() != d2.NumStates() {
			t.Errorf("%q: round-trip changed minimal DFA size %d -> %d", expr, d1.NumStates(), d2.NumStates())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{"", "(", "(a", "a)", "'unterminated", "''", "*a", "|a)(", "a$"} {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q): expected error", expr)
		}
	}
}

func TestCompileRejectsForeignSymbols(t *testing.T) {
	n := MustParse("ab")
	if _, err := Compile(n, alphabet.Letters("a")); err == nil {
		t.Error("expected error for symbol outside alphabet")
	}
}

func TestCompileKnownLanguages(t *testing.T) {
	alph := alphabet.Letters("abc")
	cases := []struct {
		expr   string
		accept []string
		reject []string
	}{
		{"a.*b", []string{"ab", "acb", "aab", "acccb"}, []string{"", "a", "b", "ba", "abc"}},
		{"ab", []string{"ab"}, []string{"", "a", "b", "abc", "aab"}},
		{".*a.*b", []string{"ab", "cacb", "aab", "abab"}, []string{"", "ba", "ccc", "a", "b"}},
		{".*ab", []string{"ab", "cab", "abab"}, []string{"", "ba", "aba", "b"}},
		{"(b*ab*ab*)*", []string{"", "aa", "baba", "aabbaab"}, []string{"a", "aab" + "a", "b" + "a"}},
		{"a+b?", []string{"a", "aa", "ab", "aaab"}, []string{"", "b", "aba"}},
		{"%", []string{""}, []string{"a", "b"}},
	}
	for _, c := range cases {
		d, err := CompileString(c.expr, alph)
		if err != nil {
			t.Fatalf("%q: %v", c.expr, err)
		}
		for _, w := range c.accept {
			if !d.AcceptsSymbols(strings.Split(w, "")) && w != "" || w == "" && !d.Accept[d.Start] {
				t.Errorf("%q should accept %q", c.expr, w)
			}
		}
		for _, w := range c.reject {
			if w == "" {
				if d.Accept[d.Start] {
					t.Errorf("%q should reject ε", c.expr)
				}
				continue
			}
			if d.AcceptsSymbols(strings.Split(w, "")) {
				t.Errorf("%q should reject %q", c.expr, w)
			}
		}
	}
}

func TestDeriveOracleBasics(t *testing.T) {
	n := MustParse("a.*b")
	if Match(n, []string{"b"}) {
		t.Error("a.*b matched b")
	}
	if !Match(n, []string{"a", "c", "b"}) {
		t.Error("a.*b did not match acb")
	}
	if !Nullable(MustParse("a*")) {
		t.Error("a* not nullable")
	}
	if Nullable(MustParse("a+")) {
		t.Error("a+ nullable")
	}
}

// randomNode builds a random small AST over {a,b,c}.
func randomNode(rng *rand.Rand, depth int) *Node {
	if depth == 0 {
		switch rng.Intn(5) {
		case 0:
			return Sym("a")
		case 1:
			return Sym("b")
		case 2:
			return Sym("c")
		case 3:
			return Any()
		default:
			return Eps()
		}
	}
	switch rng.Intn(6) {
	case 0:
		return Concat(randomNode(rng, depth-1), randomNode(rng, depth-1))
	case 1:
		return Union(randomNode(rng, depth-1), randomNode(rng, depth-1))
	case 2:
		return Star(randomNode(rng, depth-1))
	case 3:
		return Plus(randomNode(rng, depth-1))
	case 4:
		return Opt(randomNode(rng, depth-1))
	default:
		return randomNode(rng, 0)
	}
}

// TestDFAPipelineAgreesWithDerivativeOracle is the core property test:
// Thompson→subset→Hopcroft must agree with the Brzozowski matcher on random
// expressions and random words.
func TestDFAPipelineAgreesWithDerivativeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2021))
	alph := alphabet.Letters("abc")
	letters := []string{"a", "b", "c"}
	for i := 0; i < 300; i++ {
		n := randomNode(rng, 3)
		d, err := Compile(n, alph)
		if err != nil {
			t.Fatalf("Compile(%s): %v", n, err)
		}
		for j := 0; j < 30; j++ {
			w := make([]string, rng.Intn(8))
			for k := range w {
				w[k] = letters[rng.Intn(3)]
			}
			want := Match(n, w)
			got := d.AcceptsSymbols(w)
			if got != want {
				t.Fatalf("expr %s word %v: dfa=%v oracle=%v", n, w, got, want)
			}
		}
	}
}

func TestAnyDependsOnAlphabet(t *testing.T) {
	n := MustParse(".")
	d2, _ := Compile(n, alphabet.Letters("ab"))
	d3, _ := Compile(n, alphabet.Letters("abc"))
	if !d3.AcceptsSymbols([]string{"c"}) {
		t.Error("«.» over {a,b,c} should accept c")
	}
	if d2.AcceptsSymbols([]string{"c"}) {
		t.Error("«.» over {a,b} accepted foreign symbol c")
	}
}

func TestSymbolNames(t *testing.T) {
	n := MustParse("'item'a|b*")
	got := n.SymbolNames()
	want := []string{"a", "b", "item"}
	if len(got) != len(want) {
		t.Fatalf("SymbolNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SymbolNames = %v, want %v", got, want)
		}
	}
}
