package rex

// Brzozowski-derivative matcher. This is an independent implementation of
// regular-expression matching used as a test oracle against the
// NFA/DFA pipeline: Match(n, w) must agree with Compile(n).Accepts(w).

// Nullable reports whether the expression matches the empty word.
func Nullable(n *Node) bool {
	switch n.Kind {
	case KEps, KStar, KOpt:
		return true
	case KEmpty, KSym, KAny:
		return false
	case KConcat:
		for _, s := range n.Subs {
			if !Nullable(s) {
				return false
			}
		}
		return true
	case KUnion:
		for _, s := range n.Subs {
			if Nullable(s) {
				return true
			}
		}
		return false
	case KPlus:
		return Nullable(n.Subs[0])
	}
	return false
}

// Derive returns the Brzozowski derivative of n with respect to symbol a,
// with light simplification to keep terms small.
func Derive(n *Node, a string) *Node {
	switch n.Kind {
	case KEmpty, KEps:
		return Empty()
	case KSym:
		if n.Name == a {
			return Eps()
		}
		return Empty()
	case KAny:
		return Eps()
	case KConcat:
		// d(xy) = d(x)y | [nullable(x)] d(y); generalized over the list.
		var alts []*Node
		for i := range n.Subs {
			rest := append([]*Node{Derive(n.Subs[i], a)}, n.Subs[i+1:]...)
			alts = append(alts, simplifyConcat(rest))
			if !Nullable(n.Subs[i]) {
				break
			}
		}
		return simplifyUnion(alts)
	case KUnion:
		var alts []*Node
		for _, s := range n.Subs {
			alts = append(alts, Derive(s, a))
		}
		return simplifyUnion(alts)
	case KStar:
		return simplifyConcat([]*Node{Derive(n.Subs[0], a), n})
	case KPlus:
		return simplifyConcat([]*Node{Derive(n.Subs[0], a), Star(n.Subs[0])})
	case KOpt:
		return Derive(n.Subs[0], a)
	}
	return Empty()
}

// Match reports whether the expression matches the word of symbol names,
// by repeated derivation.
func Match(n *Node, w []string) bool {
	cur := n
	for _, a := range w {
		cur = Derive(cur, a)
		if cur.Kind == KEmpty {
			return false
		}
	}
	return Nullable(cur)
}

func simplifyConcat(subs []*Node) *Node {
	var out []*Node
	for _, s := range subs {
		// Rewrite rules for the absorbing/identity/flat kinds only; every
		// other kind passes through the default.
		//treelint:partial
		switch s.Kind {
		case KEmpty:
			return Empty()
		case KEps:
			// drop
		case KConcat:
			out = append(out, s.Subs...)
		default:
			out = append(out, s)
		}
	}
	return Concat(out...)
}

func simplifyUnion(subs []*Node) *Node {
	var out []*Node
	seen := map[string]bool{}
	for _, s := range subs {
		if s.Kind == KEmpty {
			continue
		}
		var flat []*Node
		if s.Kind == KUnion {
			flat = s.Subs
		} else {
			flat = []*Node{s}
		}
		for _, f := range flat {
			key := f.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, f)
			}
		}
	}
	return Union(out...)
}
