package rex

import (
	"fmt"

	"stackless/internal/alphabet"
	"stackless/internal/dfa"
	"stackless/internal/nfa"
)

// Compile translates the expression into a minimal DFA over the given
// alphabet via the Thompson construction and the subset construction.
// Every symbol of the expression must belong to alph; «.» expands to all of
// alph, so the language depends on the alphabet, matching the paper's Γ.
func Compile(n *Node, alph *alphabet.Alphabet) (*dfa.DFA, error) {
	for _, s := range n.SymbolNames() {
		if !alph.Contains(s) {
			return nil, fmt.Errorf("rex: symbol %q not in alphabet %s", s, alph)
		}
	}
	m := nfa.New(alph, 2, 0)
	final := 1
	if err := thompson(m, n, 0, final); err != nil {
		return nil, err
	}
	m.Accept[final] = true
	return dfa.Minimize(m.Determinize()), nil
}

// MustCompile compiles, panicking on error.
func MustCompile(expr string, alph *alphabet.Alphabet) *dfa.DFA {
	d, err := Compile(MustParse(expr), alph)
	if err != nil {
		panic(err)
	}
	return d
}

// CompileString parses and compiles in one step.
func CompileString(expr string, alph *alphabet.Alphabet) (*dfa.DFA, error) {
	n, err := Parse(expr)
	if err != nil {
		return nil, err
	}
	return Compile(n, alph)
}

// thompson wires fragment n between states from and to of m.
func thompson(m *nfa.NFA, n *Node, from, to int) error {
	switch n.Kind {
	case KEmpty:
		// no edges: unreachable acceptance
		return nil
	case KEps:
		m.AddEps(from, to)
		return nil
	case KSym:
		id, ok := m.Alphabet.ID(n.Name)
		if !ok {
			return fmt.Errorf("rex: symbol %q not in alphabet", n.Name)
		}
		m.AddEdge(from, id, to)
		return nil
	case KAny:
		for a := 0; a < m.Alphabet.Size(); a++ {
			m.AddEdge(from, a, to)
		}
		return nil
	case KConcat:
		cur := from
		for i, sub := range n.Subs {
			next := to
			if i < len(n.Subs)-1 {
				next = m.AddState()
			}
			if err := thompson(m, sub, cur, next); err != nil {
				return err
			}
			cur = next
		}
		if len(n.Subs) == 0 {
			m.AddEps(from, to)
		}
		return nil
	case KUnion:
		for _, sub := range n.Subs {
			if err := thompson(m, sub, from, to); err != nil {
				return err
			}
		}
		return nil
	case KStar:
		mid := m.AddState()
		m.AddEps(from, mid)
		m.AddEps(mid, to)
		return thompson(m, n.Subs[0], mid, mid)
	case KPlus:
		mid := m.AddState()
		mid2 := m.AddState()
		m.AddEps(from, mid)
		m.AddEps(mid2, mid)
		m.AddEps(mid2, to)
		return thompson(m, n.Subs[0], mid, mid2)
	case KOpt:
		m.AddEps(from, to)
		return thompson(m, n.Subs[0], from, to)
	default:
		return fmt.Errorf("rex: unknown node kind %d", n.Kind)
	}
}
