package rex

import "testing"

// FuzzParse: the parser must never panic, and successful parses must
// re-parse from their rendering.
func FuzzParse(f *testing.F) {
	f.Add("a.*b")
	f.Add("(b|ab*a)*")
	f.Add("''")
	f.Add("((((")
	f.Add("a|%|.")
	f.Add("'multi word'+?*")
	f.Fuzz(func(t *testing.T, expr string) {
		n, err := Parse(expr)
		if err != nil {
			return
		}
		if _, err := Parse(n.String()); err != nil {
			t.Fatalf("rendering %q of %q does not re-parse: %v", n.String(), expr, err)
		}
	})
}
