// Package paperfigs provides the concrete automata and languages appearing
// in the paper's figures and examples, for use by tests, benchmarks and the
// example programs:
//
//	Figure 2   — the reversible automaton for (b*ab*ab*)*
//	Figure 3   — the four automata of increasing hardness over Γ={a,b,c}
//	Figure 6   — the specialized path DTD over Γ={a,b,c}
//	Example 2.12 — the table of four RPQs (same languages as Figure 3)
package paperfigs

import (
	"stackless/internal/alphabet"
	"stackless/internal/dfa"
	"stackless/internal/rex"
)

// GammaAB is the alphabet {a,b} of Figure 2.
func GammaAB() *alphabet.Alphabet { return alphabet.Letters("ab") }

// GammaABC is the alphabet {a,b,c} of Figure 3 and Example 2.12.
func GammaABC() *alphabet.Alphabet { return alphabet.Letters("abc") }

// Fig2 returns the reversible two-state automaton of Figure 2, recognizing
// (b*ab*ab*)* — the words over {a,b} with an even number of a's.
func Fig2() *dfa.DFA {
	alph := GammaAB()
	d := dfa.New(alph, 2, 0)
	a, b := alph.MustID("a"), alph.MustID("b")
	d.Accept[0] = true
	d.Delta[0][a], d.Delta[0][b] = 1, 0
	d.Delta[1][a], d.Delta[1][b] = 0, 1
	return d
}

// Fig2Regex is an exact regular expression for the Figure 2 automaton's
// language: the words over {a,b} with an even number of a's. (The paper
// writes the language as (b*ab*ab*)*, which read literally excludes pure-b
// words; the figure's automaton — and this expression — includes them.)
const Fig2Regex = "(b|ab*a)*"

// The four languages of Figure 3 / Example 2.12, in paper order. RegEx
// column of Example 2.12, with «.» standing for Γ.
const (
	Fig3aRegex = "a.*b"   // XPath /a//b   JSONPath $.a..b
	Fig3bRegex = "ab"     // XPath /a/b    JSONPath $.a.b
	Fig3cRegex = ".*a.*b" // XPath //a//b  JSONPath $..a..b
	Fig3dRegex = ".*ab"   // XPath //a/b   JSONPath $..a.b
)

// Fig3a returns the minimal automaton of a Γ*b over Γ={a,b,c} (Figure 3a).
func Fig3a() *dfa.DFA { return rex.MustCompile(Fig3aRegex, GammaABC()) }

// Fig3b returns the minimal automaton of ab (Figure 3b).
func Fig3b() *dfa.DFA { return rex.MustCompile(Fig3bRegex, GammaABC()) }

// Fig3c returns the minimal automaton of Γ*a Γ*b (Figure 3c).
func Fig3c() *dfa.DFA { return rex.MustCompile(Fig3cRegex, GammaABC()) }

// Fig3d returns the minimal automaton of Γ*ab (Figure 3d).
func Fig3d() *dfa.DFA { return rex.MustCompile(Fig3dRegex, GammaABC()) }

// Example212Row is one row of the Example 2.12 table.
type Example212Row struct {
	XPath    string
	JSONPath string
	Regex    string
	// Expected classifications from the paper (markup encoding).
	Registerless bool
	Stackless    bool
}

// Example212 returns the four rows of the Example 2.12 table with the
// paper's expected verdicts.
func Example212() []Example212Row {
	return []Example212Row{
		{"/a//b", "$.a..b", Fig3aRegex, true, true},
		{"/a/b", "$.a.b", Fig3bRegex, false, true},
		{"//a//b", "$..a..b", Fig3cRegex, false, true},
		{"//a/b", "$..a.b", Fig3dRegex, false, false},
	}
}
