package paperfigs

import (
	"testing"

	"stackless/internal/dfa"
	"stackless/internal/rex"
)

func TestFig2MatchesItsRegex(t *testing.T) {
	compiled := rex.MustCompile(Fig2Regex, GammaAB())
	eq, w, err := dfa.Equivalent(Fig2(), compiled)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("Fig2 automaton differs from %s on witness %v", Fig2Regex, compiled.WordString(w))
	}
	if Fig2().NumStates() != 2 {
		t.Errorf("Fig2 should have 2 states")
	}
}

func TestFig3MinimalSizes(t *testing.T) {
	// The figure draws 4, 4, 3 and 3 states (including the rejecting sink).
	sizes := map[string]int{
		Fig3aRegex: 4,
		Fig3bRegex: 4,
		Fig3cRegex: 3,
		Fig3dRegex: 3,
	}
	figs := map[string]func() *dfa.DFA{
		Fig3aRegex: Fig3a, Fig3bRegex: Fig3b, Fig3cRegex: Fig3c, Fig3dRegex: Fig3d,
	}
	for expr, want := range sizes {
		d := figs[expr]()
		if got := d.NumStates(); got != want {
			t.Errorf("%s: minimal automaton has %d states, figure draws %d\n%s", expr, got, want, d)
		}
		if !dfa.IsMinimal(d) {
			t.Errorf("%s: not minimal", expr)
		}
	}
}

func TestExample212RowsCompile(t *testing.T) {
	for _, row := range Example212() {
		if _, err := rex.CompileString(row.Regex, GammaABC()); err != nil {
			t.Errorf("%s: %v", row.Regex, err)
		}
	}
}
