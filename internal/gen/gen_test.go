package gen

import (
	"bytes"
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
	"stackless/internal/tree"
)

func TestGeneratorsBasicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	rt := RandomTree(rng, []string{"a", "b"}, 30)
	if rt.Size() != 30 {
		t.Errorf("RandomTree size = %d, want 30", rt.Size())
	}
	dc := DeepChain(rng, []string{"a"}, 50)
	if dc.Height() != 50 || dc.Size() != 50 {
		t.Errorf("DeepChain shape wrong: h=%d s=%d", dc.Height(), dc.Size())
	}
	cb := Comb("s", "l", 10, 4)
	if cb.Height() != 11 {
		t.Errorf("Comb height = %d", cb.Height())
	}
	cat := Catalog(rng, 20, 3)
	if len(cat.Children) != 20 || cat.Label != "catalog" {
		t.Errorf("Catalog shape wrong")
	}
	doc := RecursiveDoc(rng, 7, 2)
	if doc.Height() != 9 { // doc + 7 sections + para leaves
		t.Errorf("RecursiveDoc height = %d, want 9", doc.Height())
	}
}

func TestWriteCatalogXMLParses(t *testing.T) {
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(62))
	if err := WriteCatalogXML(&buf, rng, 50, 4); err != nil {
		t.Fatal(err)
	}
	n, err := encoding.Decode(encoding.NewXMLScanner(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "catalog" || len(n.Children) != 50 {
		t.Errorf("streamed catalog mis-shaped: %s...", n.Label)
	}
}

func TestPumpExponent(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 6, 4: 12, 5: 60, 6: 60}
	for n, want := range cases {
		if got := PumpExponent(n); got != want {
			t.Errorf("PumpExponent(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestFig1PairStrictContainment: the Figure 1c/1d pair differ on strict
// containment of π but agree on plain containment.
func TestFig1PairStrictContainment(t *testing.T) {
	pat := Fig1Pattern()
	for _, n := range []int{5, 8, 12} {
		for i := 2; i <= n-1; i += 3 {
			match, noMatch := Fig1Pair(n, i)
			if !tree.StrictlyContains(match, pat) {
				t.Errorf("K_%d i=%d: match tree does not strictly contain π\n%s", n, i, match)
			}
			if tree.StrictlyContains(noMatch, pat) {
				t.Errorf("K_%d i=%d: no-match tree strictly contains π\n%s", n, i, noMatch)
			}
		}
	}
}

// knPrefix returns the events of w_T: the prefix of ⟨T⟩ for the K_n tree
// with the given a-children, ending at the opening tag of the deepest b.
// The a-subtrees hang to the left of the main branch, so they are entirely
// inside this prefix; the c-subtrees are to the right and entirely outside.
func knPrefix(n int, aCh []bool) []encoding.Event {
	var ev []encoding.Event
	for j := 1; j <= n-1; j++ {
		ev = append(ev, encoding.Event{Kind: encoding.Open, Label: "b"})
		if aCh[j-1] {
			ev = append(ev,
				encoding.Event{Kind: encoding.Open, Label: "a"},
				encoding.Event{Kind: encoding.Close, Label: "a"})
		}
	}
	return append(ev, encoding.Event{Kind: encoding.Open, Label: "b"})
}

// TestFig1CountingFoolsBoundedMachines is Example 2.9's counting argument
// made executable for the Proposition 2.8 pattern matcher: among the
// 2^(n-1) prefix choices of K_n, two must drive the machine into the same
// configuration; completing both with the same suffix (c-children at i−1
// and i+1 for a position i where the choices differ) yields trees with
// different strict-containment status on which the machine necessarily
// agrees — so no machine of this kind decides strict containment.
func TestFig1CountingFoolsBoundedMachines(t *testing.T) {
	pat := Fig1Pattern()
	n := 10
	byKey := map[string][]int{}
	for mask := 0; mask < 1<<(n-1); mask++ {
		aCh := make([]bool, n-1)
		for j := range aCh {
			aCh[j] = mask&(1<<j) != 0
		}
		m := core.NewPatternMatcher(pat)
		for _, e := range knPrefix(n, aCh) {
			m.Step(e)
		}
		key := m.StateKey()
		byKey[key] = append(byKey[key], mask)
	}
	// Find a colliding pair and a differing position i (2 ≤ i ≤ n-1) where
	// the identically-completed trees differ on strict containment.
	found := false
	for _, masks := range byKey {
		if found || len(masks) < 2 {
			continue
		}
		for ai := 0; ai < len(masks) && !found; ai++ {
			for bi := ai + 1; bi < len(masks) && !found; bi++ {
				u, v := masks[ai], masks[bi]
				for i := 2; i <= n-1 && !found; i++ {
					if (u>>(i-1))&1 == (v>>(i-1))&1 {
						continue
					}
					cCh := make([]bool, n)
					cCh[i-2], cCh[i] = true, true
					su := Kn(n, maskBits(u, n-1), cCh)
					sv := Kn(n, maskBits(v, n-1), cCh)
					strictU := tree.StrictlyContains(su, pat)
					strictV := tree.StrictlyContains(sv, pat)
					if strictU == strictV {
						continue
					}
					// The machine cannot separate them: equal prefix state
					// and identical suffix force equal verdicts.
					mu := core.NewPatternMatcher(pat)
					mv := core.NewPatternMatcher(pat)
					vu := core.RunEvents(mu, encoding.Markup(su))
					vv := core.RunEvents(mv, encoding.Markup(sv))
					if vu != vv {
						t.Fatalf("colliding prefixes led to different verdicts (u=%b v=%b i=%d)", u, v, i)
					}
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no strictness-separating collision found; the counting experiment is vacuous")
	}
}

func maskBits(mask, n int) []bool {
	out := make([]bool, n)
	for j := 0; j < n; j++ {
		out[j] = mask&(1<<j) != 0
	}
	return out
}

func minimalWithWitness(t *testing.T, expr string, gamma string) (*dfa.DFA, *classify.Analysis) {
	t.Helper()
	d, err := rex.CompileString(expr, alphabet.Letters(gamma))
	if err != nil {
		t.Fatal(err)
	}
	an := classify.Analyze(d)
	return an.D, an
}

// TestFig4TreesMembership checks the Lemma 3.12 construction: exactly one
// of S, S′ lies in EL, for several non-E-flat languages.
func TestFig4TreesMembership(t *testing.T) {
	for _, expr := range []string{paperfigs.Fig3bRegex, paperfigs.Fig3cRegex, paperfigs.Fig3dRegex} {
		d, an := minimalWithWitness(t, expr, "abc")
		ok, w := an.EFlat()
		if ok {
			t.Fatalf("%s unexpectedly E-flat", expr)
		}
		for _, e := range []int{2, 6, 12} {
			s, sp := Fig4Trees(d, w, e)
			in1, in2 := tree.InEL(d, s), tree.InEL(d, sp)
			if in1 == in2 {
				t.Errorf("%s e=%d: InEL(S)=%v == InEL(S')=%v", expr, e, in1, in2)
			}
		}
	}
}

// TestFig4FoolsFiniteAutomata: every DFA over Γ ∪ Γ̄ with at most n states
// gives the same verdict on ⟨S⟩ and ⟨S′⟩ built with e = PumpExponent(n).
// We check a large random sample plus every compiled paper automaton of
// that size.
func TestFig4FoolsFiniteAutomata(t *testing.T) {
	d, an := minimalWithWitness(t, paperfigs.Fig3dRegex, "abc")
	_, w := an.EFlat()
	nStates := 4
	e := PumpExponent(nStates)
	s, sp := Fig4Trees(d, w, e)
	wordS := tagWord(encoding.Markup(s))
	wordSp := tagWord(encoding.Markup(sp))
	tagAlph := alphabet.New("a", "b", "c", "ā", "b̄", "c̄")
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 500; i++ {
		b := dfa.Random(rng, tagAlph, 1+rng.Intn(nStates))
		if b.AcceptsSymbols(wordS) != b.AcceptsSymbols(wordSp) {
			t.Fatalf("random %d-state DFA separates the Fig 4 pair", b.NumStates())
		}
	}
}

func tagWord(events []encoding.Event) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		if ev.Kind == encoding.Open {
			out[i] = ev.Label
		} else {
			out[i] = ev.Label + "̄"
		}
	}
	return out
}

// TestFig7TreesMembership checks the Appendix B construction under the term
// encoding for blind-non-E-flat languages, in both st∈L and st∉L variants.
func TestFig7TreesMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	alph := alphabet.Letters("ab")
	variants := map[bool]int{}
	tested := 0
	for i := 0; i < 20000 && tested < 60; i++ {
		an := classify.Analyze(dfa.Random(rng, alph, 1+rng.Intn(5)))
		ok, w := an.BlindEFlat()
		if ok {
			continue
		}
		tested++
		d := an.D
		s, sp, inELFirst := Fig7Trees(d, w, 4)
		variants[d.Accept[d.StepWord(d.StepWord(d.Start, w.S), w.T)]]++
		in1, in2 := tree.InEL(d, s), tree.InEL(d, sp)
		if in1 == in2 {
			t.Fatalf("Fig7: InEL(S)=%v == InEL(S')=%v\n%s", in1, in2, d)
		}
		if in1 != inELFirst {
			t.Fatalf("Fig7: inELFirst=%v but InEL(S)=%v", inELFirst, in1)
		}
	}
	if tested < 30 || variants[true] == 0 || variants[false] == 0 {
		t.Fatalf("coverage too low: tested=%d variants=%v", tested, variants)
	}
}

// TestFig7FoolsFiniteAutomataOnTermEncoding: term-encoding words of the
// pair are indistinguishable for small automata over Γ ∪ {◁}.
func TestFig7FoolsFiniteAutomataOnTermEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	alph := alphabet.Letters("ab")
	var d *dfa.DFA
	var w *classify.FlatWitness
	for {
		an := classify.Analyze(dfa.Random(rng, alph, 4))
		if ok, ww := an.BlindEFlat(); !ok {
			d, w = an.D, ww
			break
		}
	}
	nStates := 3
	e := PumpExponent(nStates * 2) // generous: covers both word and pair cycles
	s, sp, _ := Fig7Trees(d, w, e)
	termAlph := alphabet.New("a", "b", "◁")
	wordS := termWord(encoding.Term(s))
	wordSp := termWord(encoding.Term(sp))
	for i := 0; i < 500; i++ {
		b := dfa.Random(rng, termAlph, 1+rng.Intn(nStates))
		if b.AcceptsSymbols(wordS) != b.AcceptsSymbols(wordSp) {
			t.Fatalf("random %d-state DFA separates the Fig 7 pair", b.NumStates())
		}
	}
}

func termWord(events []encoding.Event) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		if ev.Kind == encoding.Open {
			out[i] = ev.Label
		} else {
			out[i] = "◁"
		}
	}
	return out
}

// TestFig5TreesMembership checks the Lemma 3.16 construction: R ∉ EL and
// R′ ∈ EL for non-HAR languages.
func TestFig5TreesMembership(t *testing.T) {
	d, an := minimalWithWitness(t, paperfigs.Fig3dRegex, "abc")
	ok, w := an.HAR()
	if ok {
		t.Fatal("Γ*ab unexpectedly HAR")
	}
	for _, e := range []int{1, 2, 3} {
		r, rp := Fig5Trees(d, w, e)
		if tree.InEL(d, r) {
			t.Errorf("e=%d: R should not be in EL", e)
		}
		if !tree.InEL(d, rp) {
			t.Errorf("e=%d: R' should be in EL", e)
		}
	}
}

// TestFig5FoolsRandomDRAs: random table DRAs with k states and one register
// give equal verdicts on ⟨R⟩ and ⟨R′⟩ built with e = PumpExponent(2k).
func TestFig5FoolsRandomDRAs(t *testing.T) {
	d, an := minimalWithWitness(t, paperfigs.Fig3dRegex, "abc")
	_, w := an.HAR()
	k := 2
	e := PumpExponent(2 * k)
	r, rp := Fig5Trees(d, w, e)
	evR := encoding.Markup(r)
	evRp := encoding.Markup(rp)
	rng := rand.New(rand.NewSource(66))
	alph := alphabet.Letters("abc")
	for i := 0; i < 120; i++ {
		b := randomDRA(rng, alph, k, 1)
		v1 := core.RunEvents(b.Evaluator(), evR)
		v2 := core.RunEvents(b.Evaluator(), evRp)
		if v1 != v2 {
			t.Fatalf("random DRA #%d separates the Fig 5 pair", i)
		}
	}
}

// randomDRA builds a random table DRA.
func randomDRA(rng *rand.Rand, alph *alphabet.Alphabet, states, regs int) *core.DRA {
	d := core.NewDRA(alph, states, rng.Intn(states), regs)
	full := core.RegSet(1<<uint(regs)) - 1
	for q := 0; q < states; q++ {
		d.Accept[q] = rng.Intn(2) == 1
		for sym := 0; sym < alph.Size(); sym++ {
			for _, closing := range []bool{false, true} {
				for le := core.RegSet(0); le <= full; le++ {
					for ge := core.RegSet(0); ge <= full; ge++ {
						if le|ge != full {
							continue
						}
						d.SetTransition(q, sym, closing, le, ge,
							core.RegSet(rng.Intn(int(full)+1)), rng.Intn(states))
					}
				}
			}
		}
	}
	return d
}
