package gen

import (
	"stackless/internal/classify"
	"stackless/internal/dfa"
	"stackless/internal/tree"
)

// Fooling-tree constructions, mechanized from the classifier witnesses.

// wordLabels converts a word of symbol ids to labels.
func wordLabels(d *dfa.DFA, w []int) []string {
	out := make([]string, len(w))
	for i, s := range w {
		out[i] = d.Alphabet.Symbol(s)
	}
	return out
}

func repeatWord(w []int, k int) []int {
	out := make([]int, 0, len(w)*k)
	for i := 0; i < k; i++ {
		out = append(out, w...)
	}
	return out
}

func concatWords(ws ...[]int) []int {
	var out []int
	for _, w := range ws {
		out = append(out, w...)
	}
	return out
}

// Fig4Trees builds the Lemma 3.12 fooling pair (Figure 4) from a non-E-flat
// witness of L's minimal automaton d, with pump exponent e (use
// PumpExponent(n) to fool automata with at most n states over Γ ∪ Γ̄):
//
//	S  = s( u^e·x , t , u^e·x )      S ∈ EL  iff st ∈ L
//	S′ = s( u^e( u^e·x , t , u^e·x ) )   S′ ∈ EL iff st ∉ L
//
// Exactly one of the two is in EL, yet every deterministic finite automaton
// with at most n states accepts ⟨S⟩ iff it accepts ⟨S′⟩.
func Fig4Trees(d *dfa.DFA, w *classify.FlatWitness, e int) (s, sPrime *tree.Node) {
	ue := repeatWord(w.U, e)
	arm := func() *tree.Node { return tree.Chain(wordLabels(d, concatWords(ue, w.X))) }
	tArm := func() *tree.Node { return tree.Chain(wordLabels(d, w.T)) }
	s = tree.Chain(wordLabels(d, w.S), arm(), tArm(), arm())
	sPrime = tree.Chain(wordLabels(d, concatWords(w.S, ue)), arm(), tArm(), arm())
	return s, sPrime
}

// Fig7Trees builds the Appendix B (Figure 7) fooling pair for the term
// encoding from a blind non-E-flat witness: u1 leads from P to Q, u2 loops
// at Q, |u1| = |u2|. The construction depends on whether st ∈ L (i.e.
// whether P·T accepts); it returns the pair with exactly one tree in EL
// (inELFirst reports which).
func Fig7Trees(d *dfa.DFA, w *classify.FlatWitness, e int) (s, sPrime *tree.Node, inELFirst bool) {
	u2e := repeatWord(w.U2, e)
	stInL := d.Accept[d.StepWord(d.StepWord(d.Start, w.S), w.T)]
	if !stInL {
		// S = s( u1·u2^e·x , t , u1·u2^e·x ): all named branches ∉ L.
		// S′ pushes t below u1·u2^{e-1}, where the state is Q and Q·t ∈ L.
		arm := func() *tree.Node {
			return tree.Chain(wordLabels(d, concatWords(w.U, u2e, w.X)))
		}
		s = tree.Chain(wordLabels(d, w.S), arm(), tree.Chain(wordLabels(d, w.T)), arm())
		mid := concatWords(w.S, w.U, repeatWord(w.U2, e-1))
		sPrime = tree.Chain(wordLabels(d, mid),
			tree.Chain(wordLabels(d, concatWords(repeatWord(w.U2, e+1), w.X))),
			tree.Chain(wordLabels(d, w.T)),
			arm(),
		)
		return s, sPrime, false
	}
	// st ∈ L: S keeps its t-branch in L; S′ replaces every t-context so all
	// its controlled branches avoid L (the appendix's modified variant).
	armU1 := func() *tree.Node {
		return tree.Chain(wordLabels(d, concatWords(w.U, u2e, w.X)))
	}
	armU2 := func() *tree.Node {
		return tree.Chain(wordLabels(d, concatWords(w.U2, u2e, w.X)))
	}
	s = tree.Chain(wordLabels(d, w.S), armU1(), tree.Chain(wordLabels(d, w.T)), armU2())
	mid := concatWords(w.S, w.U, repeatWord(w.U2, e-1))
	sPrime = tree.Chain(wordLabels(d, mid),
		tree.Chain(wordLabels(d, concatWords(repeatWord(w.U2, e+1), w.X))),
		tree.Chain(wordLabels(d, w.T)),
		armU2(),
	)
	return s, sPrime, true
}

// Fig5Trees builds a Lemma 3.16 (Figure 5) fooling pair from a non-HAR
// witness, with pump exponent e. Writing y = W·U1·(V·U1)^{2e} (a loop at
// the meeting state R), the original tree R chains 2e+1 isomorphic blocks
//
//	block = y^e · W ( U1(V·U1)^{2e}·[next] , U1(V·U1)^{2e}·y^e·W·T , T )
//
// whose branches all lie in s(wu+vu)*wt ⊆ Lᶜ, so R ∉ EL. The pumped tree
// R′ replaces the T-leaf of block e+1 by the chain (U1·V)^e · T, creating a
// branch in s(wu+vu)*vt ⊆ L, so R′ ∈ EL. The two encodings differ only in
// pumped segments, which depth-register automata with few states and
// registers cannot distinguish.
//
// The witness must be oriented as produced by classify (P·T accepting,
// Q·T rejecting, R·V = P, R·W = Q, P·U1 = R).
func Fig5Trees(d *dfa.DFA, w *classify.HARWitness, e int) (r, rPrime *tree.Node) {
	vu := concatWords(w.V, w.U1)
	y := concatWords(w.W, w.U1, repeatWord(vu, 2*e)) // loops at R
	ye := repeatWord(y, e)
	uvLoop := concatWords(w.U1, repeatWord(vu, 2*e)) // from Q back to R
	uve := repeatWord(concatWords(w.U1, w.V), e)     // Q·(U1 V)^e = P

	side := func() *tree.Node {
		// U1(VU1)^{2e} · y^e · W · T, a single branch ending in state Q·T.
		return tree.Chain(wordLabels(d, concatWords(uvLoop, ye, w.W, w.T)))
	}
	tLeaf := func() *tree.Node { return tree.Chain(wordLabels(d, w.T)) }

	build := func(pumpAt int) *tree.Node {
		// Innermost block first.
		inner := tree.Chain(wordLabels(d, concatWords(ye, w.W, w.T)))
		for i := 2*e + 1; i >= 1; i-- {
			var tb *tree.Node
			if i == pumpAt {
				tb = tree.Chain(wordLabels(d, concatWords(uve, w.T)))
			} else {
				tb = tLeaf()
			}
			block := tree.Chain(wordLabels(d, concatWords(ye, w.W)),
				tree.Chain(wordLabels(d, uvLoop), inner),
				side(),
				tb,
			)
			inner = block
		}
		return tree.Chain(wordLabels(d, w.S), inner)
	}
	return build(0), build(e + 1)
}
