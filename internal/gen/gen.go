// Package gen generates workloads and the paper's fooling trees:
//
//   - synthetic documents (random trees, deep chains, wide fanouts, and a
//     DBLP-style catalog) for the throughput and memory benchmarks;
//   - the K_n schema trees of Figure 1 (Example 2.9);
//   - the fooling-tree pairs of Figure 4 (Lemma 3.12), Figure 5
//     (Lemma 3.16) and Figure 7 (Theorem B.1), built mechanically from the
//     constructive witnesses produced by internal/classify.
package gen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"

	"stackless/internal/tree"
)

// RandomTree returns a random tree with exactly size nodes over the given
// labels (uniform label choice, geometric-ish fanout).
func RandomTree(rng *rand.Rand, labels []string, size int) *tree.Node {
	if size < 1 {
		size = 1
	}
	n := tree.New(labels[rng.Intn(len(labels))])
	budget := size - 1
	for budget > 0 {
		sub := 1 + rng.Intn(budget)
		n.Children = append(n.Children, RandomTree(rng, labels, sub))
		budget -= sub
	}
	return n
}

// DeepChain returns a single-branch tree of the given depth with random
// labels.
func DeepChain(rng *rand.Rand, labels []string, depth int) *tree.Node {
	words := make([]string, depth)
	for i := range words {
		words[i] = labels[rng.Intn(len(labels))]
	}
	return tree.Chain(words)
}

// Comb returns a tree of the given depth whose spine is labelled spine and
// where every spine node carries fanout leaf children — deep *and* wide.
func Comb(spine, leaf string, depth, fanout int) *tree.Node {
	node := tree.New(spine)
	for f := 0; f < fanout; f++ {
		node.Children = append(node.Children, tree.New(leaf))
	}
	for d := 1; d < depth; d++ {
		parent := tree.New(spine)
		for f := 0; f < fanout/2; f++ {
			parent.Children = append(parent.Children, tree.New(leaf))
		}
		parent.Children = append(parent.Children, node)
		for f := fanout / 2; f < fanout; f++ {
			parent.Children = append(parent.Children, tree.New(leaf))
		}
		node = parent
	}
	return node
}

// DeepSpike returns a wide, shallow forest — width leaf children under one
// root — with a single deep chain grafted into the middle: a stream that is
// bounded-depth almost everywhere except for one spike. This is the
// adversarial shape for chunk-cut placement (and for the speculative
// pushdown's viability gate, which must consider the spike, not the
// typical depth).
func DeepSpike(rng *rand.Rand, labels []string, width, spikeDepth int) *tree.Node {
	root := tree.New(labels[0])
	for i := 0; i < width/2; i++ {
		root.Children = append(root.Children, tree.New(labels[rng.Intn(len(labels))]))
	}
	root.Children = append(root.Children, DeepChain(rng, labels, spikeDepth))
	for i := width / 2; i < width; i++ {
		root.Children = append(root.Children, tree.New(labels[rng.Intn(len(labels))]))
	}
	return root
}

// CloseRuns returns a row of depth-runLen chains under one root: its markup
// stream alternates maximal runs of runLen Open events with maximal runs of
// runLen Close events. Long close runs are the pathological input for
// close-handling hot loops — pooled-stack pop cascades and the cut-boundary
// scan, which fires on closes only.
func CloseRuns(labels []string, runs, runLen int) *tree.Node {
	root := tree.New(labels[0])
	for i := 0; i < runs; i++ {
		words := make([]string, runLen)
		for j := range words {
			words[j] = labels[(i+j)%len(labels)]
		}
		root.Children = append(root.Children, tree.Chain(words))
	}
	return root
}

// Catalog returns a DBLP/product-catalog-style document: a root with items
// entries, each item holding name, price and a category path of the given
// depth — the realistic workload of the throughput benchmarks.
func Catalog(rng *rand.Rand, items, categoryDepth int) *tree.Node {
	root := tree.New("catalog")
	for i := 0; i < items; i++ {
		item := tree.New("item",
			tree.New("name"),
			tree.New("price"),
		)
		cat := tree.New("category")
		cur := cat
		for d := 1 + rng.Intn(categoryDepth); d > 0; d-- {
			next := tree.New("category")
			cur.Children = append(cur.Children, next)
			cur = next
		}
		cur.Children = append(cur.Children, tree.New("name"))
		item.Children = append(item.Children, cat)
		if rng.Intn(3) == 0 {
			item.Children = append(item.Children, tree.New("discount"))
		}
		root.Children = append(root.Children, item)
	}
	return root
}

// WriteCatalogXML streams a catalog of the given size as XML without
// materializing the tree — used to build large benchmark inputs.
func WriteCatalogXML(w io.Writer, rng *rand.Rand, items, categoryDepth int) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString("<catalog>")
	for i := 0; i < items; i++ {
		bw.WriteString("<item><name/><price/>")
		d := 1 + rng.Intn(categoryDepth)
		for j := 0; j < d; j++ {
			bw.WriteString("<category>")
		}
		bw.WriteString("<name/>")
		for j := 0; j < d; j++ {
			bw.WriteString("</category>")
		}
		if rng.Intn(3) == 0 {
			bw.WriteString("<discount/>")
		}
		bw.WriteString("</item>")
	}
	bw.WriteString("</catalog>")
	return bw.Flush()
}

// RecursiveDoc returns a document with controlled recursion depth: nested
// sections each containing a few paragraphs, the depth-sweep workload.
func RecursiveDoc(rng *rand.Rand, depth, breadth int) *tree.Node {
	var rec func(d int) *tree.Node
	rec = func(d int) *tree.Node {
		n := tree.New("section")
		for i := 0; i < breadth; i++ {
			n.Children = append(n.Children, tree.New("para"))
		}
		if d > 1 {
			n.Children = append(n.Children, rec(d-1))
		}
		return n
	}
	root := tree.New("doc", rec(depth))
	return root
}

// Kn returns a tree of the Figure 1 schema K_n: a main branch of n
// b-labelled nodes where node i (1-based, i < n) carries an a-labelled
// child to the left of the main branch iff aCh[i-1], and every node i
// carries a c-labelled child to the right iff cCh[i-1]. len(aCh) must be
// n-1 and len(cCh) must be n.
func Kn(n int, aCh, cCh []bool) *tree.Node {
	if len(aCh) != n-1 || len(cCh) != n {
		panic(fmt.Sprintf("gen: Kn wants len(aCh)=%d, len(cCh)=%d", n-1, n))
	}
	// Build bottom-up.
	node := tree.New("b")
	if cCh[n-1] {
		node.Children = append(node.Children, tree.New("c"))
	}
	for i := n - 2; i >= 0; i-- {
		parent := tree.New("b")
		if aCh[i] {
			parent.Children = append(parent.Children, tree.New("a"))
		}
		parent.Children = append(parent.Children, node)
		if cCh[i] {
			parent.Children = append(parent.Children, tree.New("c"))
		}
		node = parent
	}
	return node
}

// Fig1Pattern returns the pattern π of Figure 1a: b(b(a,c),c) with
// descendant edges.
func Fig1Pattern() *tree.Node { return tree.MustParse("b(b(a,c),c)") }

// Fig1Pair returns the match/no-match pair of Figures 1c and 1d: two K_n
// trees that differ only in whether the i-th main-branch node has an
// a-child, with c-children at positions i-1 and i+1 (1-based i,
// 2 ≤ i ≤ n-1). The first tree strictly contains π, the second does not.
func Fig1Pair(n, i int) (match, noMatch *tree.Node) {
	aMatch := make([]bool, n-1)
	aNo := make([]bool, n-1)
	cCh := make([]bool, n)
	aMatch[i-1] = true // node i has the a-child in the matching tree only
	cCh[i-2] = true    // node i-1 has a c-child
	cCh[i] = true      // node i+1 has a c-child
	return Kn(n, aMatch, cCh), Kn(n, aNo, cCh)
}

// PumpExponent returns an exponent e usable in place of n! in the paper's
// pumping arguments for automata with at most n states: lcm(1..n), which is
// ≥ n and divisible by every cycle length ≤ n.
func PumpExponent(n int) int {
	lcm := 1
	for i := 2; i <= n; i++ {
		g := gcd(lcm, i)
		lcm = lcm / g * i
	}
	if lcm < n {
		lcm = n
	}
	return lcm
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
