package tree

import "stackless/internal/dfa"

// Reference ("oracle") implementations of the paper's queries and tree
// languages, computed directly on the in-memory tree. These are the ground
// truth the streaming evaluators are tested against.

// SelectQL returns, in document order, the preorder positions (0-based) of
// the nodes selected by the path query QL: nodes v such that the label path
// from the root to v is a word of L (Section 2.3). The automaton runs over
// label paths; labels outside its alphabet make the node (and its subtree's
// paths through it) unselectable.
func SelectQL(d *dfa.DFA, t *Node) []int {
	var out []int
	pos := -1
	var rec func(n *Node, q int, alive bool)
	rec = func(n *Node, q int, alive bool) {
		pos++
		id, ok := d.Alphabet.ID(n.Label)
		nq := q
		if alive && ok {
			nq = d.Delta[q][id]
			if d.Accept[nq] {
				out = append(out, pos)
			}
		} else {
			alive = false
		}
		for _, c := range n.Children {
			rec(c, nq, alive)
		}
	}
	rec(t, d.Start, true)
	return out
}

// InEL reports whether the tree has some branch (root-to-leaf label path)
// in L (the language EL of Section 2.3).
func InEL(d *dfa.DFA, t *Node) bool {
	return someBranch(d, t, d.Start, true)
}

func someBranch(d *dfa.DFA, n *Node, q int, alive bool) bool {
	id, ok := d.Alphabet.ID(n.Label)
	if !ok {
		alive = false
	}
	nq := q
	if alive {
		nq = d.Delta[q][id]
	}
	if n.IsLeaf() {
		return alive && d.Accept[nq]
	}
	for _, c := range n.Children {
		if someBranch(d, c, nq, alive) {
			return true
		}
	}
	return false
}

// InAL reports whether every branch of the tree is labelled by a word of L
// (the language AL). Branches through labels outside the automaton's
// alphabet do not count as members of L.
func InAL(d *dfa.DFA, t *Node) bool {
	return everyBranch(d, t, d.Start, true)
}

func everyBranch(d *dfa.DFA, n *Node, q int, alive bool) bool {
	id, ok := d.Alphabet.ID(n.Label)
	if !ok {
		alive = false
	}
	nq := q
	if alive {
		nq = d.Delta[q][id]
	}
	if n.IsLeaf() {
		return alive && d.Accept[nq]
	}
	for _, c := range n.Children {
		if !everyBranch(d, c, nq, alive) {
			return false
		}
	}
	return true
}

// Contains reports whether the tree contains the descendent pattern π
// (Section 2.2): a matching h mapping pattern nodes to tree nodes that
// preserves labels and maps the child relation into the descendant
// relation.
func Contains(t, pattern *Node) bool {
	// matchAt(v, u): pattern node u can be matched at tree node v
	// (h(u) = v), with u's children matched in v's proper subtree.
	memo := map[[2]*Node]int{} // 0 unknown, 1 yes, 2 no
	var matchAt func(v, u *Node) bool
	var matchBelow func(v, u *Node) bool
	matchAt = func(v, u *Node) bool {
		key := [2]*Node{v, u}
		if m := memo[key]; m != 0 {
			return m == 1
		}
		res := false
		if v.Label == u.Label {
			res = true
			for _, uc := range u.Children {
				found := false
				for _, vc := range v.Children {
					if matchBelow(vc, uc) {
						found = true
						break
					}
				}
				if !found {
					res = false
					break
				}
			}
		}
		if res {
			memo[key] = 1
		} else {
			memo[key] = 2
		}
		return res
	}
	matchBelow = func(v, u *Node) bool {
		if matchAt(v, u) {
			return true
		}
		for _, vc := range v.Children {
			if matchBelow(vc, u) {
				return true
			}
		}
		return false
	}
	return matchAt(t, pattern) || func() bool {
		for _, c := range t.Children {
			if matchBelow(c, pattern) {
				return true
			}
		}
		return false
	}()
}

// StrictlyContains reports whether the tree strictly contains the pattern
// (Example 2.9): there is a matching h as in Contains that additionally
// reflects ancestry — whenever h(v) is a descendant of h(u), v is a
// descendant of u. Equivalently, pattern nodes on different branches must
// map to tree nodes on different branches. Exponential-time brute force
// over small patterns.
func StrictlyContains(t, pattern *Node) bool {
	treeNodes := t.Nodes()
	// Precompute ancestry: anc[i][j] = node i is a proper ancestor of j.
	index := map[*Node]int{}
	for i, n := range treeNodes {
		index[n] = i
	}
	anc := make([][]bool, len(treeNodes))
	for i := range anc {
		anc[i] = make([]bool, len(treeNodes))
	}
	var mark func(n *Node, ancestors []int)
	mark = func(n *Node, ancestors []int) {
		i := index[n]
		for _, a := range ancestors {
			anc[a][i] = true
		}
		for _, c := range n.Children {
			mark(c, append(ancestors, i))
		}
	}
	mark(t, nil)

	patNodes := pattern.Nodes()
	patParent := map[*Node]*Node{}
	var markP func(n *Node)
	markP = func(n *Node) {
		for _, c := range n.Children {
			patParent[c] = n
			markP(c)
		}
	}
	markP(pattern)

	// Backtracking assignment of pattern nodes (in document order) to tree
	// nodes.
	assign := make([]int, len(patNodes))
	var try func(k int) bool
	try = func(k int) bool {
		if k == len(patNodes) {
			return true
		}
		u := patNodes[k]
		for i, v := range treeNodes {
			if v.Label != u.Label {
				continue
			}
			ok := true
			// h must map u below its pattern parent's image.
			if p, has := patParent[u]; has {
				pi := assign[indexOfPat(patNodes, p)]
				if !anc[pi][i] {
					continue
				}
			}
			// Strictness: for every earlier pattern node w, ancestry between
			// images must imply ancestry in the pattern (both directions).
			for j := 0; j < k; j++ {
				w := patNodes[j]
				wi := assign[j]
				if wi == i {
					continue // equal images are never proper descendants
				}
				if anc[wi][i] && !isPatAncestor(patParent, w, u) {
					ok = false
					break
				}
				if anc[i][wi] && !isPatAncestor(patParent, u, w) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[k] = i
			if try(k + 1) {
				return true
			}
		}
		return false
	}
	return try(0)
}

func indexOfPat(nodes []*Node, n *Node) int {
	for i, x := range nodes {
		if x == n {
			return i
		}
	}
	return -1
}

func isPatAncestor(parent map[*Node]*Node, a, b *Node) bool {
	for cur := parent[b]; cur != nil; cur = parent[cur] {
		if cur == a {
			return true
		}
	}
	return false
}
