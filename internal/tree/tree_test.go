package tree

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/rex"
)

func TestParseAndString(t *testing.T) {
	cases := []string{
		"a",
		"a(b)",
		"a(b,c(d))",
		"a(a(a),c)",
		"'weird label'(x)",
		"item(name,'price tag')",
	}
	for _, s := range cases {
		n, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		back, err := Parse(n.String())
		if err != nil || !n.Equal(back) {
			t.Errorf("round trip failed for %q → %q", s, n.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "(", "a(", "a(b", "a(b,)", "a)b", "a(b))", "''", "a(,b)"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestSizeHeightChain(t *testing.T) {
	n := MustParse("a(b(c),d)")
	if n.Size() != 4 {
		t.Errorf("Size = %d, want 4", n.Size())
	}
	if n.Height() != 3 {
		t.Errorf("Height = %d, want 3", n.Height())
	}
	c := Chain([]string{"a", "b", "c"}, New("x"), New("y"))
	if got := c.String(); got != "a(b(c(x,y)))" {
		t.Errorf("Chain = %s", got)
	}
}

func TestWalkOrderAndDepth(t *testing.T) {
	n := MustParse("a(b(c),d)")
	var labels []string
	var depths []int
	n.Walk(func(x *Node, d int) bool {
		labels = append(labels, x.Label)
		depths = append(depths, d)
		return true
	})
	wantL := []string{"a", "b", "c", "d"}
	wantD := []int{1, 2, 3, 2}
	for i := range wantL {
		if labels[i] != wantL[i] || depths[i] != wantD[i] {
			t.Fatalf("Walk order %v %v, want %v %v", labels, depths, wantL, wantD)
		}
	}
}

func TestSelectQLExample212(t *testing.T) {
	alph := alphabet.Letters("abc")
	// Query /a//b = a Γ*b on the tree a(b, c(b), a(b)).
	d := rex.MustCompile("a.*b", alph)
	n := MustParse("a(b,c(b),a(b))")
	// Document order: a=0 b=1 c=2 b=3 a=4 b=5. Paths: ab ✓, acb ✓, aab ✓.
	got := SelectQL(d, n)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("SelectQL = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelectQL = %v, want %v", got, want)
		}
	}
	// Query /a/b = ab selects only depth-2 b's.
	d2 := rex.MustCompile("ab", alph)
	got2 := SelectQL(d2, n)
	if len(got2) != 1 || got2[0] != 1 {
		t.Errorf("SelectQL(ab) = %v, want [1]", got2)
	}
}

func TestInELInAL(t *testing.T) {
	alph := alphabet.Letters("abc")
	d := rex.MustCompile("a b*", alph) // paths a b^k
	inside := MustParse("a(b(b),b)")
	if !InEL(d, inside) || !InAL(d, inside) {
		t.Error("a(b(b),b): all branches in ab*, expected EL and AL membership")
	}
	mixed := MustParse("a(b,c)")
	if !InEL(d, mixed) {
		t.Error("a(b,c) has branch ab ∈ L")
	}
	if InAL(d, mixed) {
		t.Error("a(b,c) has branch ac ∉ L")
	}
	outside := MustParse("c(a)")
	if InEL(d, outside) {
		t.Error("c(a) has no branch in ab*")
	}
}

func TestALComplementDuality(t *testing.T) {
	// (AL)ᶜ = E(Lᶜ) on random trees (Section 2.3).
	alph := alphabet.Letters("ab")
	d := rex.MustCompile("a(a|b)*b", alph)
	dc := d.Complement()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		n := randomTree(rng, []string{"a", "b"}, 8)
		if InAL(d, n) == InEL(dc, n) {
			t.Fatalf("duality violated on %s", n)
		}
	}
}

func randomTree(rng *rand.Rand, labels []string, budget int) *Node {
	n := New(labels[rng.Intn(len(labels))])
	budget--
	for budget > 0 && rng.Intn(3) != 0 {
		sub := 1 + rng.Intn(budget)
		n.Children = append(n.Children, randomTree(rng, labels, sub))
		budget -= sub
	}
	return n
}

func TestContainsPattern(t *testing.T) {
	// Pattern a with child b: matched by descendant relation.
	pat := MustParse("a(b)")
	yes := MustParse("c(a(c(b)))") // b is a descendant of a
	no := MustParse("c(a(c),b)")   // b is not below a
	if !Contains(yes, pat) {
		t.Error("pattern a(b) should match c(a(c(b)))")
	}
	if Contains(no, pat) {
		t.Error("pattern a(b) should not match c(a(c),b)")
	}
	// Multi-child pattern.
	pat2 := MustParse("a(b,c)")
	if !Contains(MustParse("a(x(b),y(c))"), pat2) {
		t.Error("a(b,c) should match a(x(b),y(c))")
	}
	if Contains(MustParse("a(x(b))"), pat2) { // no c below a
		t.Error("a(b,c) should not match a(x(b))")
	}
	// The same tree node can serve two incomparable pattern nodes... it
	// cannot here because labels differ, but b below both works:
	if !Contains(MustParse("a(b(c))"), pat2) {
		t.Error("a(b,c) should match a(b(c)): c is also a descendant of a")
	}
}

func TestStrictContainment(t *testing.T) {
	// Figure 1 pattern: b(b(a,c),c) with descendant edges.
	pat := MustParse("b(b(a,c),c)")
	// Figure 1c-style match: the a-child and c-child hang off different
	// b-nodes on the main branch with proper separation.
	match := MustParse("b(b(a,c(x)),c)")
	if !StrictlyContains(match, pat) {
		t.Error("expected strict containment for direct embedding")
	}
	// Non-strict but contained: a and the inner c below the SAME node that
	// also provides the outer c forces incomparability violations.
	nonStrict := MustParse("b(b(x),c(a,c))") // a,c under the outer c's branch
	if StrictlyContains(nonStrict, pat) && !Contains(nonStrict, pat) {
		t.Error("inconsistent containment verdicts")
	}
	// Sanity: strict implies plain containment on random trees.
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 100; i++ {
		tr := randomTree(rng, []string{"a", "b", "c"}, 10)
		if StrictlyContains(tr, pat) && !Contains(tr, pat) {
			t.Fatalf("strict ⊄ plain on %s", tr)
		}
	}
}

func TestLabels(t *testing.T) {
	n := MustParse("a(b(a),c)")
	got := n.Labels()
	want := []string{"a", "b", "c"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Labels = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := MustParse("a(b,c)")
	c := n.Clone()
	c.Children[0].Label = "z"
	if n.Children[0].Label != "b" {
		t.Error("Clone shares structure with original")
	}
	if !n.Equal(MustParse("a(b,c)")) {
		t.Error("original mutated")
	}
}
