package tree

import "testing"

// FuzzParse: the literal parser must never panic, and successful parses
// must round-trip through String.
func FuzzParse(f *testing.F) {
	f.Add("a(b,c(d))")
	f.Add("'weird'(x)")
	f.Add("a((b)")
	f.Add(",,,")
	f.Fuzz(func(t *testing.T, s string) {
		n, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(n.String())
		if err != nil || !back.Equal(n) {
			t.Fatalf("round trip failed for %q → %q", s, n.String())
		}
	})
}
