// Package tree implements the paper's data model: ordered unranked finite
// trees with labels from a finite alphabet (Section 2). It also provides
// slow-but-obviously-correct reference implementations ("oracles") of the
// queries and tree languages studied in the paper — QL, EL, AL, descendent
// pattern containment and strict containment — against which the streaming
// evaluators are tested.
package tree

import (
	"fmt"
	"strings"
)

// Node is a node of an ordered unranked tree. The zero value is unusable;
// create nodes with New.
type Node struct {
	Label    string
	Children []*Node
}

// New builds a node with the given label and children.
func New(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// Chain builds a single-branch tree labelled by the words read top-down,
// with the given subtrees attached (in order) to the deepest node. An empty
// labels slice returns the subtrees' parent as nil, which is invalid, so
// labels must be nonempty.
func Chain(labels []string, at ...*Node) *Node {
	if len(labels) == 0 {
		panic("tree: Chain needs at least one label")
	}
	bottom := New(labels[len(labels)-1], at...)
	for i := len(labels) - 2; i >= 0; i-- {
		bottom = New(labels[i], bottom)
	}
	return bottom
}

// Size returns the number of nodes.
func (n *Node) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Height returns the number of nodes on the longest root-to-leaf path.
func (n *Node) Height() int {
	h := 0
	for _, c := range n.Children {
		if ch := c.Height(); ch > h {
			h = ch
		}
	}
	return h + 1
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Equal reports structural equality.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Label != m.Label || len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (n *Node) Clone() *Node {
	c := &Node{Label: n.Label}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// String renders the tree in the literal syntax accepted by Parse:
// a(b,c(d)).
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	writeLabel(b, n.Label)
	if len(n.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.render(b)
	}
	b.WriteByte(')')
}

func writeLabel(b *strings.Builder, label string) {
	if isPlainLabel(label) {
		b.WriteString(label)
	} else {
		b.WriteByte('\'')
		b.WriteString(label)
		b.WriteByte('\'')
	}
}

func isPlainLabel(label string) bool {
	if label == "" {
		return false
	}
	for _, r := range label {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == '-') {
			return false
		}
	}
	return true
}

// Parse reads the literal syntax: label(child,child,...), labels being
// runs of [a-zA-Z0-9_-] or quoted 'any text'. Whitespace is ignored.
func Parse(s string) (*Node, error) {
	p := &parser{src: []rune(s)}
	n, err := p.node()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tree: trailing input at offset %d", p.pos)
	}
	return n, nil
}

// MustParse parses the literal syntax, panicking on error.
func MustParse(s string) *Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	src []rune
	pos int
}

func (p *parser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\n' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) node() (*Node, error) {
	p.skip()
	label, err := p.label()
	if err != nil {
		return nil, err
	}
	n := New(label)
	p.skip()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			c, err := p.node()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
			p.skip()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("tree: missing ')'")
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("tree: unexpected %q at offset %d", string(p.src[p.pos]), p.pos)
		}
	}
	return n, nil
}

func (p *parser) label() (string, error) {
	p.skip()
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("tree: missing label")
	}
	if p.src[p.pos] == '\'' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return "", fmt.Errorf("tree: unterminated quoted label")
		}
		label := string(p.src[start:p.pos])
		p.pos++
		if label == "" {
			return "", fmt.Errorf("tree: empty label")
		}
		return label, nil
	}
	start := p.pos
	for p.pos < len(p.src) {
		r := p.src[p.pos]
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == '-' {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return "", fmt.Errorf("tree: missing label at offset %d", p.pos)
	}
	return string(p.src[start:p.pos]), nil
}

// Walk visits the nodes in document order (preorder), calling fn with each
// node and its depth (root depth = 1, matching the markup encoding's
// counter). Walk stops early if fn returns false.
func (n *Node) Walk(fn func(node *Node, depth int) bool) {
	var rec func(*Node, int) bool
	rec = func(x *Node, d int) bool {
		if !fn(x, d) {
			return false
		}
		for _, c := range x.Children {
			if !rec(c, d+1) {
				return false
			}
		}
		return true
	}
	rec(n, 1)
}

// Nodes returns all nodes in document order.
func (n *Node) Nodes() []*Node {
	var out []*Node
	n.Walk(func(x *Node, _ int) bool {
		out = append(out, x)
		return true
	})
	return out
}

// Labels returns the distinct labels occurring in the tree, in document
// order of first occurrence.
func (n *Node) Labels() []string {
	var out []string
	seen := map[string]bool{}
	n.Walk(func(x *Node, _ int) bool {
		if !seen[x.Label] {
			seen[x.Label] = true
			out = append(out, x.Label)
		}
		return true
	})
	return out
}
