package core

import (
	"stackless/internal/alphabet"
	"stackless/internal/encoding"
)

// TagDFA is a finite automaton over the tag alphabet: Γ ∪ Γ̄ under the
// markup encoding, or Γ ∪ {◁} under the term encoding. It is the output
// form of the registerless compilations (Lemmas 3.5 and 3.11 and their
// blind variants).
type TagDFA struct {
	Alphabet *alphabet.Alphabet
	Start    int
	Accept   []bool
	// OpenT[q][sym] is the successor on the opening tag of sym.
	OpenT [][]int
	// CloseT[q][sym] is the successor on the closing tag of sym (markup
	// encoding); nil for term-encoding automata.
	CloseT [][]int
	// CloseAny[q] is the successor on the universal closing tag ◁ (term
	// encoding); nil for markup-encoding automata.
	CloseAny []int
}

// NumStates returns the number of states.
func (t *TagDFA) NumStates() int { return len(t.OpenT) }

// NewTagDFA allocates a markup-encoding tag automaton with n states.
func NewTagDFA(alph *alphabet.Alphabet, n, start int) *TagDFA {
	t := &TagDFA{
		Alphabet: alph,
		Start:    start,
		Accept:   make([]bool, n),
		OpenT:    make([][]int, n),
		CloseT:   make([][]int, n),
	}
	for i := 0; i < n; i++ {
		t.OpenT[i] = make([]int, alph.Size())
		t.CloseT[i] = make([]int, alph.Size())
	}
	return t
}

// NewTermTagDFA allocates a term-encoding tag automaton with n states.
func NewTermTagDFA(alph *alphabet.Alphabet, n, start int) *TagDFA {
	t := &TagDFA{
		Alphabet: alph,
		Start:    start,
		Accept:   make([]bool, n),
		OpenT:    make([][]int, n),
		CloseAny: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.OpenT[i] = make([]int, alph.Size())
	}
	return t
}

// tagEvaluator runs a TagDFA over events. Labels outside the alphabet
// poison the run.
type tagEvaluator struct {
	t        *TagDFA
	res      *alphabet.Resolver
	state    int
	poisoned bool
}

// Evaluator returns a fresh streaming evaluator.
func (t *TagDFA) Evaluator() Evaluator {
	return &tagEvaluator{t: t, res: alphabet.NewResolver(t.Alphabet), state: t.Start}
}

func (ev *tagEvaluator) Reset() {
	ev.state = ev.t.Start
	ev.poisoned = false
}

func (ev *tagEvaluator) Step(e encoding.Event) {
	if ev.poisoned {
		return
	}
	if e.Kind == encoding.Close && ev.t.CloseAny != nil {
		ev.state = ev.t.CloseAny[ev.state]
		return
	}
	sym, ok := ev.res.ID(e.Label)
	if !ok {
		ev.poisoned = true
		return
	}
	if e.Kind == encoding.Open {
		ev.state = ev.t.OpenT[ev.state][sym]
	} else {
		ev.state = ev.t.CloseT[ev.state][sym]
	}
}

func (ev *tagEvaluator) Accepting() bool {
	return !ev.poisoned && ev.t.Accept[ev.state]
}
