package core

import (
	"sync"
	"sync/atomic"

	"stackless/internal/alphabet"
	"stackless/internal/encoding"
)

// TagDFA is a finite automaton over the tag alphabet: Γ ∪ Γ̄ under the
// markup encoding, or Γ ∪ {◁} under the term encoding. It is the output
// form of the registerless compilations (Lemmas 3.5 and 3.11 and their
// blind variants).
type TagDFA struct {
	Alphabet *alphabet.Alphabet
	Start    int
	Accept   []bool
	// OpenT[q][sym] is the successor on the opening tag of sym.
	OpenT [][]int
	// CloseT[q][sym] is the successor on the closing tag of sym (markup
	// encoding); nil for term-encoding automata.
	CloseT [][]int
	// CloseAny[q] is the successor on the universal closing tag ◁ (term
	// encoding); nil for markup-encoding automata.
	CloseAny []int

	// Compiled form (DESIGN.md §11), built lazily on first batched use and
	// cached — the automaton must not be mutated after its first evaluator
	// runs a coded batch. ctab is a flat (n+1)×2(k+1) table: row q, column
	// (sym<<1 | kind) with sym in [0,k] (k = the unknown sentinel) and kind
	// Open=0/Close=1. Row n is the dead state — absorbing, never accepting —
	// which the unknown columns row into (term-encoding close columns instead
	// row into CloseAny for every sym: ◁ ignores the label). Stepping is one
	// table load per event, branch-free.
	compileOnce sync.Once
	hooked      atomic.Bool
	ctab        []int32
	cacc        []bool
	cstride     int32
	// cdec are the earliest-decision flags (DESIGN.md §14), one per row of
	// ctab including the dead row: cdec[q] = 1 iff no state with an
	// accepting open-column target is reachable from q over any sequence of
	// table moves — from such a state the run can never pre-select again,
	// whatever the suffix. Computed with ctab as a reachability fixpoint, so
	// the flags are exact for the compiled table (tablecheck recomputes and
	// diffs them).
	cdec []int32
}

// compiled returns the flat table, its acceptance vector (length n+1,
// dead = false), the row stride 2(k+1) and the dead state id n.
//
//treelint:partial lazy compile-once behind sync.Once; the steady state is a single atomic load per batch, with no lock and no allocation
func (t *TagDFA) compiled() (tab []int32, acc []bool, stride, dead int32) {
	t.compileOnce.Do(func() {
		n := t.NumStates()
		k := t.Alphabet.Size()
		w := int32(2 * (k + 1))
		ctab := make([]int32, (int32(n)+1)*w)
		cacc := make([]bool, n+1)
		d := int32(n)
		for q := 0; q <= n; q++ {
			row := ctab[int32(q)*w : int32(q)*w+w]
			for c := range row {
				row[c] = d
			}
			if q == n {
				continue
			}
			cacc[q] = t.Accept[q]
			for s := 0; s < k; s++ {
				row[s<<1] = int32(t.OpenT[q][s])
			}
			if t.CloseAny != nil {
				for s := 0; s <= k; s++ {
					row[s<<1|1] = int32(t.CloseAny[q])
				}
			} else {
				for s := 0; s < k; s++ {
					row[s<<1|1] = int32(t.CloseT[q][s])
				}
			}
		}
		// Earliest flags: live[q] marks states from which an accepting open
		// target is still reachable. The base case scans each row's open
		// columns (sym<<1, unknown included — it rows into dead, never
		// accepting); the fixpoint then closes under all table moves, open
		// and close alike. At most n+1 passes over the table, at build time
		// only.
		live := make([]bool, n+1)
		for q := 0; q <= n; q++ {
			row := ctab[int32(q)*w : int32(q)*w+w]
			for s := 0; s <= k; s++ {
				if a := row[s<<1]; a >= 0 && a <= d && cacc[a] {
					live[q] = true
					break
				}
			}
		}
		for changed := true; changed; {
			changed = false
			for q := 0; q <= n; q++ {
				if live[q] {
					continue
				}
				row := ctab[int32(q)*w : int32(q)*w+w]
				for _, succ := range row {
					if succ >= 0 && succ <= d && live[succ] {
						live[q] = true
						changed = true
						break
					}
				}
			}
		}
		cdec := make([]int32, n+1)
		for q := 0; q <= n; q++ {
			if !live[q] {
				cdec[q] = 1
			}
		}
		t.ctab, t.cacc, t.cstride, t.cdec = ctab, cacc, w, cdec
	})
	// The verification hook runs outside the build closure and behind a CAS
	// rather than a second Once: the hook itself reads the table through this
	// method, and a reentrant Once.Do would deadlock where the failed swap
	// just skips. When no hook is installed the cost is one global load.
	if CompileHook != nil && t.hooked.CompareAndSwap(false, true) {
		compileHook(t)
	}
	// The stride is the one the table was built with: growing the alphabet
	// after compilation must not change how the flat table is indexed (new
	// symbols resolve past the compiled columns and fall to the dead row via
	// the kernels' bounds guards).
	return t.ctab, t.cacc, t.cstride, int32(t.NumStates())
}

// NumStates returns the number of states.
func (t *TagDFA) NumStates() int { return len(t.OpenT) }

// NewTagDFA allocates a markup-encoding tag automaton with n states.
func NewTagDFA(alph *alphabet.Alphabet, n, start int) *TagDFA {
	t := &TagDFA{
		Alphabet: alph,
		Start:    start,
		Accept:   make([]bool, n),
		OpenT:    make([][]int, n),
		CloseT:   make([][]int, n),
	}
	for i := 0; i < n; i++ {
		t.OpenT[i] = make([]int, alph.Size())
		t.CloseT[i] = make([]int, alph.Size())
	}
	return t
}

// NewTermTagDFA allocates a term-encoding tag automaton with n states.
func NewTermTagDFA(alph *alphabet.Alphabet, n, start int) *TagDFA {
	t := &TagDFA{
		Alphabet: alph,
		Start:    start,
		Accept:   make([]bool, n),
		OpenT:    make([][]int, n),
		CloseAny: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.OpenT[i] = make([]int, alph.Size())
	}
	return t
}

// tagEvaluator runs a TagDFA over events. Labels outside the alphabet
// poison the run.
type tagEvaluator struct {
	t        *TagDFA
	res      *alphabet.Resolver
	state    int
	poisoned bool
	// dec caches the automaton's compiled earliest flags after the first
	// NoFutureMatches call (forcing the lazy table build once), keeping the
	// per-event check a single slice load.
	dec []int32
}

// Evaluator returns a fresh streaming evaluator.
func (t *TagDFA) Evaluator() Evaluator {
	return &tagEvaluator{t: t, res: alphabet.NewResolver(t.Alphabet), state: t.Start}
}

func (ev *tagEvaluator) Reset() {
	ev.state = ev.t.Start
	ev.poisoned = false
}

func (ev *tagEvaluator) Step(e encoding.Event) {
	if ev.poisoned {
		return
	}
	if e.Kind == encoding.Close && ev.t.CloseAny != nil {
		ev.state = ev.t.CloseAny[ev.state]
		return
	}
	sym, ok := ev.res.ID(e.Label)
	if !ok {
		ev.poisoned = true
		return
	}
	if e.Kind == encoding.Open {
		ev.state = ev.t.OpenT[ev.state][sym]
	} else {
		ev.state = ev.t.CloseT[ev.state][sym]
	}
}

func (ev *tagEvaluator) Accepting() bool {
	return !ev.poisoned && ev.t.Accept[ev.state]
}

// NoFutureMatches implements EarliestDecider from the compiled earliest
// flags: a poisoned run is parked in the (never-accepting) dead row, and an
// unpoisoned one is decided exactly when its state's flag says no accepting
// open target remains reachable.
func (ev *tagEvaluator) NoFutureMatches() bool {
	if ev.poisoned {
		return true
	}
	if ev.dec == nil {
		ev.t.compiled()
		ev.dec = ev.t.cdec
	}
	if q := uint(ev.state); q < uint(len(ev.dec)) {
		return ev.dec[q] != 0
	}
	return false
}

// CodeAlphabet implements BatchEvaluator.
func (ev *tagEvaluator) CodeAlphabet() *alphabet.Alphabet { return ev.t.Alphabet }

// StepBatch implements BatchEvaluator: one table load per event, no
// branches. Poison is the dead row of the compiled table, entered through
// the unknown columns and mapped back to the poisoned flag afterwards (the
// frozen pre-poison state is unobservable either way: Accepting and the
// chunk methods check the flag first). The uint index guard is shaped for
// bounds-check elimination (cmd/bcegate holds this loop to zero compiler
// checks); on a table tablecheck proved well formed it never fails, and on
// a corrupted one it degrades to the dead state instead of panicking.
//
//treelint:plain
func (ev *tagEvaluator) StepBatch(batch []encoding.CodedEvent) {
	tab, _, stride, dead := ev.t.compiled()
	st := int32(ev.state)
	if ev.poisoned {
		st = dead
	}
	for _, e := range batch {
		if i := uint(st)*uint(stride) + uint(int32(e.Sym)<<1|int32(e.Kind)); i < uint(len(tab)) {
			st = tab[i]
		} else {
			st = dead
		}
	}
	if st == dead {
		ev.poisoned = true
	} else {
		ev.state = int(st)
	}
}

// SelectBatch implements BatchEvaluator. Index guards as in StepBatch.
//
//treelint:plain
func (ev *tagEvaluator) SelectBatch(batch []encoding.CodedEvent, hits []int32) []int32 {
	tab, acc, stride, dead := ev.t.compiled()
	st := int32(ev.state)
	if ev.poisoned {
		st = dead
	}
	for i, e := range batch {
		if j := uint(st)*uint(stride) + uint(int32(e.Sym)<<1|int32(e.Kind)); j < uint(len(tab)) {
			st = tab[j]
		} else {
			st = dead
		}
		if e.Kind == encoding.Open {
			if a := uint(st); a < uint(len(acc)) && acc[a] {
				hits = append(hits, int32(i))
			}
		}
	}
	if st == dead {
		ev.poisoned = true
	} else {
		ev.state = int(st)
	}
	return hits
}

// SimulateSegmentCoded implements CodedSegmentKernel: the lockstep all-states
// pass of SimulateSegment over a coded segment. Unknown labels drive every
// run into the dead row (never accepting), which the exit mapping reports as
// the poisoned exit -1 — identical to the string kernel's early break.
//
//treelint:plain
func (ev *tagEvaluator) SimulateSegmentCoded(seg []encoding.CodedEvent, cands *CandSet) []SegmentExit {
	tab, acc, stride, dead := ev.t.compiled()
	n := ev.t.NumStates()
	//treelint:partial per-segment all-states scratch, O(states) once per segment
	cur := make([]int32, n)
	for i := range cur {
		cur[i] = int32(i)
	}
	var opens, depth int32
	for idx := 0; idx < len(seg); idx++ {
		e := seg[idx]
		col := int32(e.Sym)<<1 | int32(e.Kind)
		if e.Kind == encoding.Close {
			depth--
			for i := range cur {
				next := dead
				if j := uint(cur[i])*uint(stride) + uint(col); j < uint(len(tab)) {
					next = tab[j]
				}
				cur[i] = next
			}
			continue
		}
		o := opens
		opens++
		depth++
		var mask []uint64
		for i := range cur {
			next := dead
			if j := uint(cur[i])*uint(stride) + uint(col); j < uint(len(tab)) {
				next = tab[j]
			}
			cur[i] = next
			if cands != nil {
				if a := uint(next); a < uint(len(acc)) && acc[a] {
					if mask == nil {
						mask = cands.Add(int32(idx), o, depth)
					}
					if w := uint(i) / 64; w < uint(len(mask)) {
						mask[w] |= 1 << (uint(i) % 64)
					}
				}
			}
		}
	}
	//treelint:partial per-segment exit vector, O(states) once per segment
	exits := make([]SegmentExit, n)
	for i := range exits {
		if cur[i] == dead {
			exits[i] = SegmentExit{State: -1}
		} else {
			exits[i] = SegmentExit{State: int(cur[i])}
		}
	}
	return exits
}
