package core

import (
	"fmt"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/encoding"
)

// Lemma 3.11 + Appendix A: the synopsis automaton — a finite automaton over
// Γ ∪ Γ̄ recognizing EL when L is E-flat. A synopsis
//
//	(r0,p0,q0) --a1--> (r1,p1,q1) --a2--> ... --aℓ--> (rℓ,pℓ,qℓ)
//
// records the chain of split transitions that moved the simulated run of
// L's minimal automaton from one SCC to the next; ambiguity introduced by
// backtracking over closing tags is confined to the split pairs (pᵢ,qᵢ),
// which E-flatness keeps almost equivalent. The synopsis length is bounded
// by the depth of the SCC DAG, so the state space is finite; we build it
// lazily.
//
// Appendix B's blind variant (Cases A′–D′) handles the term encoding, where
// closing tags do not reveal the label.

// synTriple is one (r, p, q) entry of a synopsis.
type synTriple struct{ r, p, q int }

// synopsis is a state of the simulating automaton B.
type synopsis struct {
	triples []synTriple
	letters []int // letters[i] is the split letter a_{i+1}; len = len(triples)-1
}

func (s synopsis) last() synTriple { return s.triples[len(s.triples)-1] }

func (s synopsis) key() string {
	b := make([]byte, 0, len(s.triples)*12+len(s.letters)*4)
	put := func(v int) {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	for i, t := range s.triples {
		put(t.r)
		put(t.p)
		put(t.q)
		if i < len(s.letters) {
			put(s.letters[i])
		}
	}
	return string(b)
}

// replaceLast returns a copy with the last triple replaced.
func (s synopsis) replaceLast(t synTriple) synopsis {
	triples := make([]synTriple, len(s.triples))
	copy(triples, s.triples)
	triples[len(triples)-1] = t
	return synopsis{triples: triples, letters: s.letters}
}

// push returns a copy with --a--> t appended.
func (s synopsis) push(a int, t synTriple) synopsis {
	triples := make([]synTriple, len(s.triples)+1)
	copy(triples, s.triples)
	triples[len(s.triples)] = t
	letters := make([]int, len(s.letters)+1)
	copy(letters, s.letters)
	letters[len(s.letters)] = a
	return synopsis{triples: triples, letters: letters}
}

// pop returns a copy with the last (letter, triple) removed.
func (s synopsis) pop() synopsis {
	return synopsis{
		triples: s.triples[:len(s.triples)-1],
		letters: s.letters[:len(s.letters)-1],
	}
}

// Sentinel state ids of the simulating automaton.
const (
	synTop = -1 // ⊤: all-accepting sink — a branch in L has been detected
	synBot = -2 // ⊥: all-rejecting sink
)

// SynopsisMachine is the compiled Lemma 3.11 automaton. It implements
// Evaluator with EL acceptance (Accepting is meaningful at the end of the
// encoding).
type SynopsisMachine struct {
	an    *classify.Analysis
	blind bool

	// Lazily discovered states: id ≥ 0 indexes states; synTop/synBot are
	// virtual.
	index     map[string]int
	states    []synopsis
	openMemo  [][]int // [id][sym]
	closeMemo [][]int // [id][sym] (markup) or [id][0] (blind)

	res *alphabet.Resolver

	// Runtime.
	cur         int // state id or synTop/synBot
	lastWasOpen bool
	poisoned    bool

	// startCur caches the interned initial state so Reset stays
	// allocation-free (the zero-overhead contract of DESIGN.md §9).
	startCur   int
	startKnown bool
}

// RegisterlessEL compiles the Lemma 3.11 synopsis automaton recognizing EL.
// Fails unless L is E-flat (Definition 3.9), per Theorem 3.2(1).
func RegisterlessEL(an *classify.Analysis) (*SynopsisMachine, error) {
	if !an.Minimal() {
		return nil, fmt.Errorf("core: RegisterlessEL requires the minimal automaton")
	}
	if ok, w := an.EFlat(); !ok {
		return nil, &classError{"E-flat", w}
	}
	return newSynopsis(an, false), nil
}

// BlindRegisterlessEL compiles the Appendix B variant for the term
// encoding. Fails unless L is blindly E-flat (Theorem B.1(1)).
func BlindRegisterlessEL(an *classify.Analysis) (*SynopsisMachine, error) {
	if !an.Minimal() {
		return nil, fmt.Errorf("core: BlindRegisterlessEL requires the minimal automaton")
	}
	if ok, w := an.BlindEFlat(); !ok {
		return nil, &classError{"blindly E-flat", w}
	}
	return newSynopsis(an, true), nil
}

func newSynopsis(an *classify.Analysis, blind bool) *SynopsisMachine {
	m := &SynopsisMachine{an: an, blind: blind, index: map[string]int{}, res: alphabet.NewResolver(an.D.Alphabet)}
	m.Reset()
	compileHook(m)
	return m
}

// StatesDiscovered returns the number of synopsis states materialized so
// far (diagnostics; the reachable state space is finite).
func (m *SynopsisMachine) StatesDiscovered() int { return len(m.states) }

// Poisoned reports whether the run saw a label outside the alphabet.
func (m *SynopsisMachine) Poisoned() bool { return m.poisoned }

func (m *SynopsisMachine) intern(s synopsis) int {
	k := s.key()
	if id, ok := m.index[k]; ok {
		return id
	}
	id := len(m.states)
	m.index[k] = id
	m.states = append(m.states, s)
	kk := m.an.D.Alphabet.Size()
	if m.blind {
		kk = 1
	}
	m.openMemo = append(m.openMemo, unfilled(m.an.D.Alphabet.Size()))
	m.closeMemo = append(m.closeMemo, unfilled(kk))
	return id
}

func unfilled(n int) []int {
	row := make([]int, n)
	for i := range row {
		row[i] = -3 // not computed
	}
	return row
}

// Reset implements Evaluator.
func (m *SynopsisMachine) Reset() {
	if !m.startKnown {
		r0 := m.an.D.Start
		if m.an.Rejective[r0] {
			m.startCur = m.intern(synopsis{triples: []synTriple{{r0, r0, r0}}})
		} else {
			// Every continuation from r0 accepts: every tree is in EL.
			m.startCur = synTop
		}
		m.startKnown = true
	}
	m.cur = m.startCur
	m.lastWasOpen = false
	m.poisoned = false
}

// Step implements Evaluator.
func (m *SynopsisMachine) Step(e encoding.Event) {
	if m.poisoned || m.cur == synTop || m.cur == synBot {
		if e.Kind == encoding.Open {
			m.lastWasOpen = true
		} else {
			m.lastWasOpen = false
		}
		return
	}
	if e.Kind == encoding.Open {
		sym, ok := m.res.ID(e.Label)
		if !ok {
			m.poisoned = true
			return
		}
		if m.openMemo[m.cur][sym] == -3 {
			m.openMemo[m.cur][sym] = m.openStep(m.states[m.cur], sym)
		}
		m.cur = m.openMemo[m.cur][sym]
		m.lastWasOpen = true
		return
	}
	// Closing tag: the B′ enrichment first — a leaf whose branch is in L.
	st := m.states[m.cur].last()
	if m.lastWasOpen && st.p == st.q && m.an.D.Accept[st.p] {
		m.cur = synTop
		m.lastWasOpen = false
		return
	}
	m.lastWasOpen = false
	var sym int
	if m.blind {
		sym = 0
	} else {
		var ok bool
		sym, ok = m.res.ID(e.Label)
		if !ok {
			m.poisoned = true
			return
		}
	}
	if m.closeMemo[m.cur][sym] == -3 {
		m.closeMemo[m.cur][sym] = m.closeStep(m.states[m.cur], sym)
	}
	m.cur = m.closeMemo[m.cur][sym]
}

// Accepting implements Evaluator: EL membership at the end of the stream.
func (m *SynopsisMachine) Accepting() bool {
	return !m.poisoned && m.cur == synTop
}

// CodeAlphabet implements BatchEvaluator.
func (m *SynopsisMachine) CodeAlphabet() *alphabet.Alphabet { return m.an.D.Alphabet }

// stepCoded is Step over a coded event: the memo rows are indexed by the
// Sym directly, with the unknown sentinel (Sym ≥ alphabet size) poisoning
// exactly where the string path's resolver miss does — in particular the B′
// leaf check on closing tags still runs *before* the label is consulted,
// and blind machines never consult it at all.
func (m *SynopsisMachine) stepCoded(e encoding.CodedEvent) {
	if m.poisoned || m.cur == synTop || m.cur == synBot {
		m.lastWasOpen = e.Kind == encoding.Open
		return
	}
	k := alphabet.Sym(m.an.D.Alphabet.Size())
	if e.Kind == encoding.Open {
		if e.Sym >= k {
			m.poisoned = true
			return
		}
		if m.openMemo[m.cur][e.Sym] == -3 {
			m.openMemo[m.cur][e.Sym] = m.openStep(m.states[m.cur], int(e.Sym))
		}
		m.cur = m.openMemo[m.cur][e.Sym]
		m.lastWasOpen = true
		return
	}
	st := m.states[m.cur].last()
	if m.lastWasOpen && st.p == st.q && m.an.D.Accept[st.p] {
		m.cur = synTop
		m.lastWasOpen = false
		return
	}
	m.lastWasOpen = false
	sym := 0
	if !m.blind {
		if e.Sym >= k {
			m.poisoned = true
			return
		}
		sym = int(e.Sym)
	}
	if m.closeMemo[m.cur][sym] == -3 {
		m.closeMemo[m.cur][sym] = m.closeStep(m.states[m.cur], sym)
	}
	m.cur = m.closeMemo[m.cur][sym]
}

// StepBatch implements BatchEvaluator. The loop is stepCoded unrolled with
// the machine fields in locals; memo misses (which may intern new states and
// grow the backing slices) re-sync the hoisted slices before continuing.
//
//treelint:partial lazily-interned memo rows grow mid-batch, so the two-level indexing cannot be bounds-check-free
func (m *SynopsisMachine) StepBatch(batch []encoding.CodedEvent) {
	k := alphabet.Sym(m.an.D.Alphabet.Size())
	accD := m.an.D.Accept
	blind := m.blind
	states, openMemo, closeMemo := m.states, m.openMemo, m.closeMemo
	cur, lwo, poisoned := m.cur, m.lastWasOpen, m.poisoned
	for _, e := range batch {
		if poisoned || cur == synTop || cur == synBot {
			lwo = e.Kind == encoding.Open
			continue
		}
		if e.Kind == encoding.Open {
			if e.Sym >= k {
				poisoned = true
				continue
			}
			t := openMemo[cur][e.Sym]
			if t == -3 {
				t = m.openStep(states[cur], int(e.Sym))
				openMemo[cur][e.Sym] = t
				states, openMemo, closeMemo = m.states, m.openMemo, m.closeMemo
			}
			cur = t
			lwo = true
			continue
		}
		st := states[cur].last()
		if lwo && st.p == st.q && accD[st.p] {
			cur = synTop
			lwo = false
			continue
		}
		lwo = false
		sym := 0
		if !blind {
			if e.Sym >= k {
				poisoned = true
				continue
			}
			sym = int(e.Sym)
		}
		t := closeMemo[cur][sym]
		if t == -3 {
			t = m.closeStep(states[cur], sym)
			closeMemo[cur][sym] = t
			states, openMemo, closeMemo = m.states, m.openMemo, m.closeMemo
		}
		cur = t
	}
	m.cur, m.lastWasOpen, m.poisoned = cur, lwo, poisoned
}

// SelectBatch implements BatchEvaluator: the StepBatch loop with the ⊤
// check after each Open (a machine already in ⊤ keeps selecting every Open).
//
//treelint:partial lazily-interned memo rows grow mid-batch, so the two-level indexing cannot be bounds-check-free
func (m *SynopsisMachine) SelectBatch(batch []encoding.CodedEvent, hits []int32) []int32 {
	k := alphabet.Sym(m.an.D.Alphabet.Size())
	accD := m.an.D.Accept
	blind := m.blind
	states, openMemo, closeMemo := m.states, m.openMemo, m.closeMemo
	cur, lwo, poisoned := m.cur, m.lastWasOpen, m.poisoned
	for i, e := range batch {
		if poisoned || cur == synTop || cur == synBot {
			lwo = e.Kind == encoding.Open
			if lwo && cur == synTop && !poisoned {
				hits = append(hits, int32(i))
			}
			continue
		}
		if e.Kind == encoding.Open {
			if e.Sym >= k {
				poisoned = true
				continue
			}
			t := openMemo[cur][e.Sym]
			if t == -3 {
				t = m.openStep(states[cur], int(e.Sym))
				openMemo[cur][e.Sym] = t
				states, openMemo, closeMemo = m.states, m.openMemo, m.closeMemo
			}
			cur = t
			lwo = true
			if cur == synTop {
				hits = append(hits, int32(i))
			}
			continue
		}
		st := states[cur].last()
		if lwo && st.p == st.q && accD[st.p] {
			cur = synTop
			lwo = false
			continue
		}
		lwo = false
		sym := 0
		if !blind {
			if e.Sym >= k {
				poisoned = true
				continue
			}
			sym = int(e.Sym)
		}
		t := closeMemo[cur][sym]
		if t == -3 {
			t = m.closeStep(states[cur], sym)
			closeMemo[cur][sym] = t
			states, openMemo, closeMemo = m.states, m.openMemo, m.closeMemo
		}
		cur = t
	}
	m.cur, m.lastWasOpen, m.poisoned = cur, lwo, poisoned
	return hits
}

// openStep implements the opening-tag transitions of Lemma 3.11.
//
//treelint:partial state discovery: runs only on a transition-memo miss, and the reachable synopsis space is finite, so the steady state is pure table lookups
func (m *SynopsisMachine) openStep(s synopsis, a int) int {
	an := m.an
	last := s.last()
	next := an.D.Delta[last.p][a] // == Delta[last.q][a]: split states are almost equivalent
	if !an.Rejective[next] {
		return synTop
	}
	if an.Comp[next] == an.Comp[last.q] {
		return m.intern(s.replaceLast(synTriple{last.r, next, next}))
	}
	return m.intern(s.push(a, synTriple{next, next, next}))
}

// closeStep implements the closing-tag transitions: Cases A–D of
// Appendix A, or Cases A′–D′ of Appendix B when blind.
//
//treelint:partial state discovery: runs only on a transition-memo miss, and the reachable synopsis space is finite, so the steady state is pure table lookups
func (m *SynopsisMachine) closeStep(s synopsis, a int) int {
	an := m.an
	A := an.D
	ell := len(s.triples) - 1
	last := s.last()
	if !an.Internal[last.p] {
		return synBot
	}
	sameSCC := an.Comp[last.p] == an.Comp[last.q]
	x := an.Comp[last.q] // the SCC X containing qℓ (and rℓ)

	// succHits reports whether state cand steps into {pℓ, qℓ} on the
	// closing letter (markup) or on some letter (blind).
	succHits := func(cand int) bool {
		if m.blind {
			for aa := 0; aa < A.Alphabet.Size(); aa++ {
				t := A.Delta[cand][aa]
				if t == last.p || t == last.q {
					return true
				}
			}
			return false
		}
		t := A.Delta[cand][a]
		return t == last.p || t == last.q
	}

	if sameSCC {
		// P = {p ∈ X : p·a ∈ {pℓ,qℓ}} (blind: for some a).
		var pset []int
		for _, cand := range an.Comps[x] {
			if succHits(cand) {
				pset = append(pset, cand)
			}
		}
		caseB := ell > 0 &&
			(last.r == last.p || last.r == last.q) &&
			(m.blind || a == s.letters[ell-1]) &&
			an.Internal[s.triples[ell-1].p]
		if !caseB {
			// Case A / A′: backtrack within X only.
			if len(pset) == 0 {
				return synBot
			}
			pp, qq := minMax(pset)
			return m.intern(s.replaceLast(synTriple{last.r, pp, qq}))
		}
		// Case B / B′.
		if len(pset) == 0 {
			return m.intern(s.pop())
		}
		prev := s.triples[ell-1]
		if prev.p != prev.q {
			// Unreachable for runs satisfying the invariant (the proof
			// derives pℓ₋₁ = qℓ₋₁ when P is nonempty).
			return synBot
		}
		return m.intern(s.replaceLast(synTriple{last.r, prev.p, pset[0]}))
	}

	// pℓ outside X: Cases C/D (C′/D′). The synopsis invariant gives
	// ell > 0 and pℓ = pℓ₋₁ = qℓ₋₁ here.
	caseD := (last.r == last.p || last.r == last.q) &&
		(m.blind || (ell > 0 && a == s.letters[ell-1]))
	if caseD {
		// Case D / D′: the synopsis is unchanged.
		return m.intern(s)
	}
	// Case C / C′: does some internal p step to pℓ (on a / on some a1)?
	pExists := false
	for cand := 0; cand < A.NumStates() && !pExists; cand++ {
		if !an.Internal[cand] {
			continue
		}
		if m.blind {
			for aa := 0; aa < A.Alphabet.Size(); aa++ {
				if A.Delta[cand][aa] == last.p {
					pExists = true
					break
				}
			}
		} else if A.Delta[cand][a] == last.p {
			pExists = true
		}
	}
	if !pExists {
		// Behave as from σ with the last triple replaced by (rℓ,qℓ,qℓ):
		// that state falls into Case A.
		return m.closeStep(s.replaceLast(synTriple{last.r, last.q, last.q}), a)
	}
	// Otherwise q (∈ X stepping to qℓ) cannot exist: behave as from σ with
	// the last split transition removed (falls into Case A or B).
	return m.closeStep(s.pop(), a)
}

func minMax(xs []int) (lo, hi int) {
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// negated wraps a SynopsisMachine built for Lᶜ into an AL(L) recognizer,
// using (AL)ᶜ = E(Lᶜ): accept iff the inner machine rejects and the run
// stayed inside the alphabet.
type negated struct{ inner *SynopsisMachine }

func (n *negated) Reset()                { n.inner.Reset() }
func (n *negated) Step(e encoding.Event) { n.inner.Step(e) }
func (n *negated) Accepting() bool {
	return !n.inner.Poisoned() && !n.inner.Accepting()
}

// CodeAlphabet implements BatchEvaluator (the complement machine keeps L's
// alphabet, so codes agree).
func (n *negated) CodeAlphabet() *alphabet.Alphabet { return n.inner.CodeAlphabet() }

// StepBatch implements BatchEvaluator.
//
//treelint:plain
func (n *negated) StepBatch(batch []encoding.CodedEvent) { n.inner.StepBatch(batch) }

// SelectBatch implements BatchEvaluator. Acceptance is the negation of the
// inner machine's, so the inner hit list is useless here; step one event at
// a time and test the wrapped predicate.
//
//treelint:plain
func (n *negated) SelectBatch(batch []encoding.CodedEvent, hits []int32) []int32 {
	for i, e := range batch {
		n.inner.stepCoded(e)
		if e.Kind == encoding.Open && n.Accepting() {
			hits = append(hits, int32(i))
		}
	}
	return hits
}

// RegisterlessAL compiles a finite-automaton recognizer of AL via the
// duality (AL)ᶜ = E(Lᶜ) (Theorem 3.2(2)). Fails unless L is A-flat.
// The input analysis must be of L's minimal automaton; the machine is built
// on the minimal automaton of Lᶜ.
func RegisterlessAL(an *classify.Analysis) (Evaluator, error) {
	if ok, w := an.AFlat(); !ok {
		return nil, &classError{"A-flat", w}
	}
	anc := classify.Analyze(an.D.Complement())
	inner, err := RegisterlessEL(anc)
	if err != nil {
		return nil, fmt.Errorf("core: A-flat language whose complement fails E-flat compilation: %w", err)
	}
	return &negated{inner: inner}, nil
}

// BlindRegisterlessAL is the term-encoding counterpart (Theorem B.1(2)).
func BlindRegisterlessAL(an *classify.Analysis) (Evaluator, error) {
	if ok, w := an.BlindAFlat(); !ok {
		return nil, &classError{"blindly A-flat", w}
	}
	anc := classify.Analyze(an.D.Complement())
	inner, err := BlindRegisterlessEL(anc)
	if err != nil {
		return nil, fmt.Errorf("core: blindly A-flat language whose complement fails blind E-flat compilation: %w", err)
	}
	return &negated{inner: inner}, nil
}
