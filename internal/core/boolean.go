package core

import (
	"fmt"

	"stackless/internal/encoding"
)

// Lemma 2.4: the classes of registerless and stackless tree languages are
// closed under intersection, union and complementation. This file makes
// the closure effective at the evaluator level: synchronous products and
// complements of arbitrary streaming evaluators. (For registerless
// machines the product of the underlying automata is again a finite
// automaton; for depth-register machines the product machine's registers
// are the disjoint union of the components' registers — both closures are
// realized here by running the component machines in lockstep.)

// BoolOp combines component acceptance bits.
type BoolOp func(a, b bool) bool

// The standard combinators.
var (
	And  BoolOp = func(a, b bool) bool { return a && b }
	Or   BoolOp = func(a, b bool) bool { return a || b }
	Xor  BoolOp = func(a, b bool) bool { return a != b }
	Diff BoolOp = func(a, b bool) bool { return a && !b }
)

// product runs two evaluators in lockstep.
type product struct {
	x, y Evaluator
	op   BoolOp
}

// Product returns the synchronous product of two evaluators, accepting
// according to op. The components receive every event.
func Product(x, y Evaluator, op BoolOp) Evaluator {
	return &product{x: x, y: y, op: op}
}

// Intersect accepts when both components accept (Lemma 2.4, intersection).
func Intersect(x, y Evaluator) Evaluator { return Product(x, y, And) }

// Union accepts when either component accepts (Lemma 2.4, union).
func Union(x, y Evaluator) Evaluator { return Product(x, y, Or) }

func (p *product) Reset() {
	p.x.Reset()
	p.y.Reset()
}

func (p *product) Step(e encoding.Event) {
	p.x.Step(e)
	p.y.Step(e)
}

func (p *product) Accepting() bool {
	return p.op(p.x.Accepting(), p.y.Accepting())
}

// complement flips acceptance (Lemma 2.4, complementation). Note the
// convention caveat: machines in this package treat labels outside their
// alphabet as poisoning (never accepting); Complement preserves that
// convention when the inner machine exposes a Poisoned method, so that
// trees outside the alphabet are rejected by both L and its complement.
type complement struct {
	inner Evaluator
}

// Complement returns an evaluator accepting exactly when the inner one
// rejects (and the run stayed inside the alphabet, when detectable).
func Complement(inner Evaluator) Evaluator { return &complement{inner: inner} }

func (c *complement) Reset()                { c.inner.Reset() }
func (c *complement) Step(e encoding.Event) { c.inner.Step(e) }

type poisonable interface{ Poisoned() bool }

func (c *complement) Accepting() bool {
	if p, ok := c.inner.(poisonable); ok && p.Poisoned() {
		return false
	}
	return !c.inner.Accepting()
}

// ProductTagDFA builds the explicit product of two tag automata over the
// same symbol set — the finite-state witness that registerless tree
// languages are closed under boolean operations (Lemma 2.4). Both inputs
// must be of the same encoding flavour (markup or term).
func ProductTagDFA(x, y *TagDFA, op BoolOp) (*TagDFA, error) {
	if !x.Alphabet.SameSymbolSet(y.Alphabet) {
		return nil, fmt.Errorf("core: product over different alphabets")
	}
	if (x.CloseAny == nil) != (y.CloseAny == nil) {
		return nil, fmt.Errorf("core: product of markup and term automata")
	}
	ymap := make([]int, x.Alphabet.Size())
	for a := 0; a < x.Alphabet.Size(); a++ {
		ymap[a] = y.Alphabet.MustID(x.Alphabet.Symbol(a))
	}
	nx, ny := x.NumStates(), y.NumStates()
	id := func(p, q int) int { return p*ny + q }
	var out *TagDFA
	if x.CloseAny == nil {
		out = NewTagDFA(x.Alphabet, nx*ny, id(x.Start, y.Start))
	} else {
		out = NewTermTagDFA(x.Alphabet, nx*ny, id(x.Start, y.Start))
	}
	for p := 0; p < nx; p++ {
		for q := 0; q < ny; q++ {
			s := id(p, q)
			out.Accept[s] = op(x.Accept[p], y.Accept[q])
			for a := 0; a < x.Alphabet.Size(); a++ {
				out.OpenT[s][a] = id(x.OpenT[p][a], y.OpenT[q][ymap[a]])
				if x.CloseT != nil {
					out.CloseT[s][a] = id(x.CloseT[p][a], y.CloseT[q][ymap[a]])
				}
			}
			if x.CloseAny != nil {
				out.CloseAny[s] = id(x.CloseAny[p], y.CloseAny[q])
			}
		}
	}
	return out, nil
}

// ComplementTagDFA flips the accepting set of a tag automaton.
func ComplementTagDFA(x *TagDFA) *TagDFA {
	out := &TagDFA{
		Alphabet: x.Alphabet,
		Start:    x.Start,
		Accept:   make([]bool, len(x.Accept)),
		OpenT:    x.OpenT,
		CloseT:   x.CloseT,
		CloseAny: x.CloseAny,
	}
	for i, a := range x.Accept {
		out.Accept[i] = !a
	}
	return out
}
