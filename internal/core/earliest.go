package core

import (
	"fmt"
	"io"

	"stackless/internal/encoding"
	"stackless/internal/obs"
)

// Earliest query answering (DESIGN.md §14), after the 2026
// Gienieczko–Muñoz–Murlak–Paperman follow-up on earliest query answering
// for streamed trees.
//
// Under pre-selection semantics (Section 2.3) every match is *decided* at
// its own Open event, so the per-match earliest point is the event itself;
// what the fast paths trade away is *emission*: the coded pipeline confirms
// hits only at batch boundaries (up to encoding.DefaultBatch events late)
// and the chunk-parallel engine only at the end-of-stream join. The
// earliest drivers below restore the per-event contract — each match is
// reported with zero deferral, at the very event that decides it — and add
// the complementary *negative* guarantee: machines that expose per-state
// earliest-decision flags (EarliestDecider) let the driver prove, mid
// stream, that no future event can produce another match, after which the
// run is decided and stepping stops (the stream still drains, so event
// accounting and balance checking are unchanged).

// EarliestMode says which earliest-decision guarantee a run carried.
type EarliestMode int

// The three modes, from absent to strongest.
const (
	// EarliestOff: earliest emission was not requested (the default).
	EarliestOff EarliestMode = iota
	// EarliestExact: per-event emission plus the compiled earliest-decision
	// flags — the run additionally detects the earliest event after which
	// no further match is possible.
	EarliestExact
	// EarliestApprox: the conservative safe approximation — per-event
	// emission with zero deferral, but no mid-stream "no future matches"
	// decision (the machine carries no earliest flags). Every match is
	// still emitted at its provably earliest event.
	EarliestApprox
)

func (m EarliestMode) String() string {
	switch m {
	case EarliestOff:
		return "off"
	case EarliestExact:
		return "exact"
	case EarliestApprox:
		return "approx"
	}
	return fmt.Sprintf("EarliestMode(%d)", int(m))
}

// EarliestDecider is the earliest-evaluation contract: an Evaluator whose
// compiled tables carry per-state earliest-decision flags (tag DFAs and
// stackless machines fold them into the §11 []int32 form). NoFutureMatches
// must be sound and monotone along a run: once it reports true, no suffix
// of any well-formed continuation can make the machine pre-select another
// node, and it keeps reporting true if the machine steps further.
type EarliestDecider interface {
	Evaluator
	// NoFutureMatches reports that the current configuration cannot reach
	// an accepting Open transition on any future event sequence.
	NoFutureMatches() bool
}

// EarliestClassOf reports the mode an earliest run of ev gets: exact for
// machines implementing EarliestDecider, the safe approximation for the
// rest (synopsis, table DRAs, the pushdown fallback and the EL/AL
// wrappers). The approximation never consults flags, so every family — and
// any user-supplied Evaluator — gets *some* latency bound: zero emission
// deferral, with end-of-stream as the trivial decision point.
func EarliestClassOf(ev Evaluator) EarliestMode {
	if _, ok := ev.(EarliestDecider); ok {
		return EarliestExact
	}
	return EarliestApprox
}

// SelectEarliest is Select with the earliest emission contract: fn fires
// at the exact Open event deciding each match (never deferred to a batch
// boundary), and for EarliestDecider machines the run stops stepping at
// the earliest event proving no further match is possible. The match set,
// order, event count and errors are identical to Select's.
func SelectEarliest(ev Evaluator, src encoding.Source, fn func(Match)) (int, error) {
	return SelectEarliestObs(ev, nil, src, fn)
}

// SelectEarliestObs is SelectEarliest reporting into a collector, with the
// same split as SelectObs: a nil collector runs the plain kernel and costs
// nothing. An instrumented run observes per-match emission latency (always
// zero on this driver — that is the contract) into c.Latency alongside the
// usual events/matches/depth accounting.
func SelectEarliestObs(ev Evaluator, c *obs.Collector, src encoding.Source, fn func(Match)) (int, error) {
	dec, _ := ev.(EarliestDecider)
	if c == nil {
		return selectEarliestPlain(ev, dec, src, fn)
	}
	ev.Reset()
	events := 0
	matches := 0
	pos := -1
	depth := 0
	decided := false
	for {
		e, err := src.Next()
		if err == io.EOF {
			flushRun(c, ev, int64(events), int64(matches))
			return events, nil
		}
		if err != nil {
			flushRun(c, ev, int64(events), int64(matches))
			return events, err
		}
		events++
		if e.Kind == encoding.Open {
			pos++
			depth++
			c.Depth.Observe(depth)
		} else {
			depth--
		}
		if decided {
			continue
		}
		ev.Step(e)
		if e.Kind == encoding.Open && ev.Accepting() {
			matches++
			c.Latency.Observe(0)
			if fn != nil {
				fn(Match{Pos: pos, Depth: depth, Label: e.Label})
			}
		}
		if dec != nil && dec.NoFutureMatches() {
			decided = true
		}
	}
}

// selectEarliestPlain is the uninstrumented earliest kernel. A decided run
// keeps draining the source — the event count, balance-guard errors and
// position bookkeeping must match Select exactly — but stops stepping the
// machine, which is the whole point of the flags: the remaining stream
// costs one kind test per event. dec is nil for safe-approximation
// machines (the decided branch is then dead).
//
//treelint:plain
func selectEarliestPlain(ev Evaluator, dec EarliestDecider, src encoding.Source, fn func(Match)) (int, error) {
	ev.Reset()
	events := 0
	pos := -1
	depth := 0
	decided := false
	for {
		e, err := src.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		events++
		if e.Kind == encoding.Open {
			pos++
			depth++
		} else {
			depth--
		}
		if decided {
			continue
		}
		ev.Step(e)
		if e.Kind == encoding.Open && ev.Accepting() {
			if fn != nil {
				fn(Match{Pos: pos, Depth: depth, Label: e.Label})
			}
		}
		if dec != nil && dec.NoFutureMatches() {
			decided = true
		}
	}
}
