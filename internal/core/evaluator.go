// Package core implements the paper's computational model and its
// constructive results: depth-register automata (Definition 2.1), the
// registerless evaluator for almost-reversible languages (Lemma 3.5), the
// stackless evaluator for HAR languages (Lemma 3.8), the synopsis automaton
// recognizing EL for E-flat languages (Lemma 3.11 and Appendix A), the
// descendent-pattern matcher (Proposition 2.8), and the blind variants of
// all of these for the term encoding (Appendix B).
package core

import (
	"io"

	"stackless/internal/encoding"
	"stackless/internal/obs"
)

// Evaluator is a deterministic streaming machine over tag events. All the
// machines in this package — finite automata over Γ ∪ Γ̄, depth-register
// automata, and the compiled simulations — implement it.
//
// Acceptance conventions follow the paper:
//
//   - a *node-selecting* evaluator (realizing a unary query) pre-selects a
//     node iff Accepting() is true immediately after the node's Open event
//     (Section 2.3); its value after Close events is unspecified;
//   - a *tree-language* evaluator accepts a tree iff Accepting() is true
//     after the final event of the encoding.
type Evaluator interface {
	// Reset returns the machine to its initial configuration.
	Reset()
	// Step processes one tag event.
	Step(e encoding.Event)
	// Accepting reports whether the current configuration is accepting.
	Accepting() bool
}

// Match is one pre-selected node reported by Select.
type Match struct {
	// Pos is the preorder position of the node (0-based).
	Pos int
	// Depth is the node's depth (root = 1).
	Depth int
	// Label is the node's label.
	Label string
	// Path is the label path from the root, filled only when Select is
	// configured to track it (see SelectOptions).
	Path []string
}

// Instrumented is implemented by evaluators that can report machine-level
// metrics (register loads and comparisons, record counts, stack depths)
// into an obs.Collector. A nil collector detaches and restores the
// zero-overhead path.
type Instrumented interface {
	SetObs(*obs.Collector)
}

// Instrument attaches c to ev when the machine supports it; wrappers
// (EL/AL) forward to their inner machine. It is a no-op for machines with
// nothing to report (plain tag DFAs).
func Instrument(ev Evaluator, c *obs.Collector) {
	if i, ok := ev.(Instrumented); ok {
		i.SetObs(c)
	}
}

// obsFlusher is implemented by machines that batch metrics in plain
// machine-local fields (no atomics in Step) and report them once per run.
type obsFlusher interface{ flushObs() }

// flushEvObs drains batched machine metrics at the end of a run; wrappers
// forward to their inner machine. Machines outside this package (the
// pushdown fallback) export the hook as FlushObs — an unexported method
// cannot cross the package boundary.
func flushEvObs(ev Evaluator) {
	if f, ok := ev.(obsFlusher); ok {
		f.flushObs()
		return
	}
	if f, ok := ev.(interface{ FlushObs() }); ok {
		f.FlushObs()
	}
}

// FlushEvObs is flushEvObs for the packages layered above core: the
// chunk-parallel engine drives machines through its own loops (no
// flushRun), so it drains the batched machine metrics itself at the end
// of an instrumented run.
func FlushEvObs(ev Evaluator) { flushEvObs(ev) }

// flushRun reports a finished run's totals. Marked noinline so the cold
// exit paths of SelectObs/RecognizeObs stay one call each and the hot loop
// bodies stay small.
//
//go:noinline
func flushRun(c *obs.Collector, ev Evaluator, events, matches int64) {
	if c == nil {
		return
	}
	c.Events.Add(events)
	c.Matches.Add(matches)
	flushEvObs(ev)
}

// Select streams src through ev and calls fn for every pre-selected node,
// in document order. It returns the number of events processed. Errors from
// the source (other than io.EOF) are returned as-is.
func Select(ev Evaluator, src encoding.Source, fn func(Match)) (int, error) {
	return SelectObs(ev, nil, src, fn)
}

// SelectObs is Select reporting into a collector: events, matches and the
// per-open depth histogram. A nil collector runs the plain kernel — the
// loop is kept in a separate function with no collector state at all, so
// disabling observability costs nothing, not even dead loop variables (the
// tier-1 overhead contract; see internal/obs and TestObsDisabledZeroAllocs).
func SelectObs(ev Evaluator, c *obs.Collector, src encoding.Source, fn func(Match)) (int, error) {
	if c == nil {
		return selectPlain(ev, src, fn)
	}
	ev.Reset()
	events := 0
	matches := 0
	pos := -1
	depth := 0
	for {
		e, err := src.Next()
		if err == io.EOF {
			flushRun(c, ev, int64(events), int64(matches))
			return events, nil
		}
		if err != nil {
			flushRun(c, ev, int64(events), int64(matches))
			return events, err
		}
		events++
		if e.Kind == encoding.Open {
			pos++
			depth++
			c.Depth.Observe(depth)
		} else {
			depth--
		}
		ev.Step(e)
		if e.Kind == encoding.Open && ev.Accepting() {
			matches++
			c.Latency.Observe(0)
			if fn != nil {
				fn(Match{Pos: pos, Depth: depth, Label: e.Label})
			}
		}
	}
}

// selectPlain is the uninstrumented Select kernel. Collector-free by
// construction: the two extra loop variables of the instrumented twin
// (collector pointer, match counter) stay live across the three interface
// calls per event and cost the loop measurable spills, so the plain path
// carries neither.
//
//treelint:plain
func selectPlain(ev Evaluator, src encoding.Source, fn func(Match)) (int, error) {
	ev.Reset()
	events := 0
	pos := -1
	depth := 0
	for {
		e, err := src.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		events++
		if e.Kind == encoding.Open {
			pos++
			depth++
		} else {
			depth--
		}
		ev.Step(e)
		if e.Kind == encoding.Open && ev.Accepting() {
			if fn != nil {
				fn(Match{Pos: pos, Depth: depth, Label: e.Label})
			}
		}
	}
}

// SelectPositions runs Select and collects the preorder positions of all
// selected nodes.
func SelectPositions(ev Evaluator, src encoding.Source) ([]int, error) {
	var out []int
	_, err := Select(ev, src, func(m Match) { out = append(out, m.Pos) })
	return out, err
}

// Recognize streams src through ev and returns the final acceptance value.
func Recognize(ev Evaluator, src encoding.Source) (bool, error) {
	return RecognizeObs(ev, nil, src)
}

// RecognizeObs is Recognize reporting events and the depth histogram into a
// collector. A nil collector runs the plain kernel (see SelectObs).
func RecognizeObs(ev Evaluator, c *obs.Collector, src encoding.Source) (bool, error) {
	if c == nil {
		return recognizePlain(ev, src)
	}
	ev.Reset()
	events := 0
	depth := 0
	for {
		e, err := src.Next()
		if err == io.EOF {
			flushRun(c, ev, int64(events), 0)
			return ev.Accepting(), nil
		}
		if err != nil {
			flushRun(c, ev, int64(events), 0)
			return false, err
		}
		events++
		if e.Kind == encoding.Open {
			depth++
			c.Depth.Observe(depth)
		} else {
			depth--
		}
		ev.Step(e)
	}
}

// recognizePlain is the uninstrumented Recognize kernel; see selectPlain
// for why it exists.
//
//treelint:plain
func recognizePlain(ev Evaluator, src encoding.Source) (bool, error) {
	ev.Reset()
	for {
		e, err := src.Next()
		if err == io.EOF {
			return ev.Accepting(), nil
		}
		if err != nil {
			return false, err
		}
		ev.Step(e)
	}
}

// RunEvents feeds a slice of events (after Reset) and returns the final
// acceptance — a convenience for tests.
func RunEvents(ev Evaluator, events []encoding.Event) bool {
	ev.Reset()
	for _, e := range events {
		ev.Step(e)
	}
	return ev.Accepting()
}

// elWrapper turns an evaluator realizing QL into a recognizer of EL, per
// the proof of Theorem 3.1: move to an all-accepting sink when a closing
// tag immediately follows an opening tag read in an accepting state —
// i.e. when a selected leaf is detected.
type elWrapper struct {
	inner            Evaluator
	prevOpenSelected bool
	matched          bool
}

// ELFromQL wraps a QL evaluator into an EL recognizer (Theorem 3.1 proof).
// When the inner machine supports chunk-parallel evaluation, so does the
// wrapper (see chunk.go).
func ELFromQL(inner Evaluator) Evaluator {
	if c, ok := inner.(Chunkable); ok {
		return &chunkableEL{inner: c}
	}
	return &elWrapper{inner: inner}
}

func (w *elWrapper) Reset() {
	w.inner.Reset()
	w.prevOpenSelected = false
	w.matched = false
}

func (w *elWrapper) Step(e encoding.Event) {
	if w.matched {
		return
	}
	if e.Kind == encoding.Close && w.prevOpenSelected {
		w.matched = true
		return
	}
	w.inner.Step(e)
	w.prevOpenSelected = e.Kind == encoding.Open && w.inner.Accepting()
}

func (w *elWrapper) Accepting() bool { return w.matched }

// SetObs implements Instrumented by forwarding to the inner machine.
func (w *elWrapper) SetObs(c *obs.Collector) { Instrument(w.inner, c) }

func (w *elWrapper) flushObs() { flushEvObs(w.inner) }

// alWrapper is the dual construction from the proof of Theorem 3.2(3):
// move to an all-rejecting sink when a leaf is read in a rejecting state.
type alWrapper struct {
	inner            Evaluator
	prevOpenRejected bool
	failed           bool
	started          bool
}

// ALFromQL wraps a QL evaluator into an AL recognizer (Theorem 3.2 proof).
// When the inner machine supports chunk-parallel evaluation, so does the
// wrapper (see chunk.go).
func ALFromQL(inner Evaluator) Evaluator {
	if c, ok := inner.(Chunkable); ok {
		return &chunkableAL{inner: c}
	}
	return &alWrapper{inner: inner}
}

func (w *alWrapper) Reset() {
	w.inner.Reset()
	w.prevOpenRejected = false
	w.failed = false
	w.started = false
}

func (w *alWrapper) Step(e encoding.Event) {
	if w.failed {
		return
	}
	w.started = true
	if e.Kind == encoding.Close && w.prevOpenRejected {
		w.failed = true
		return
	}
	w.inner.Step(e)
	w.prevOpenRejected = e.Kind == encoding.Open && !w.inner.Accepting()
}

func (w *alWrapper) Accepting() bool { return w.started && !w.failed }

// SetObs implements Instrumented by forwarding to the inner machine.
func (w *alWrapper) SetObs(c *obs.Collector) { Instrument(w.inner, c) }

func (w *alWrapper) flushObs() { flushEvObs(w.inner) }
