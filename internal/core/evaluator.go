// Package core implements the paper's computational model and its
// constructive results: depth-register automata (Definition 2.1), the
// registerless evaluator for almost-reversible languages (Lemma 3.5), the
// stackless evaluator for HAR languages (Lemma 3.8), the synopsis automaton
// recognizing EL for E-flat languages (Lemma 3.11 and Appendix A), the
// descendent-pattern matcher (Proposition 2.8), and the blind variants of
// all of these for the term encoding (Appendix B).
package core

import (
	"io"

	"stackless/internal/encoding"
)

// Evaluator is a deterministic streaming machine over tag events. All the
// machines in this package — finite automata over Γ ∪ Γ̄, depth-register
// automata, and the compiled simulations — implement it.
//
// Acceptance conventions follow the paper:
//
//   - a *node-selecting* evaluator (realizing a unary query) pre-selects a
//     node iff Accepting() is true immediately after the node's Open event
//     (Section 2.3); its value after Close events is unspecified;
//   - a *tree-language* evaluator accepts a tree iff Accepting() is true
//     after the final event of the encoding.
type Evaluator interface {
	// Reset returns the machine to its initial configuration.
	Reset()
	// Step processes one tag event.
	Step(e encoding.Event)
	// Accepting reports whether the current configuration is accepting.
	Accepting() bool
}

// Match is one pre-selected node reported by Select.
type Match struct {
	// Pos is the preorder position of the node (0-based).
	Pos int
	// Depth is the node's depth (root = 1).
	Depth int
	// Label is the node's label.
	Label string
	// Path is the label path from the root, filled only when Select is
	// configured to track it (see SelectOptions).
	Path []string
}

// Select streams src through ev and calls fn for every pre-selected node,
// in document order. It returns the number of events processed. Errors from
// the source (other than io.EOF) are returned as-is.
func Select(ev Evaluator, src encoding.Source, fn func(Match)) (int, error) {
	ev.Reset()
	events := 0
	pos := -1
	depth := 0
	for {
		e, err := src.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		events++
		if e.Kind == encoding.Open {
			pos++
			depth++
		} else {
			depth--
		}
		ev.Step(e)
		if e.Kind == encoding.Open && ev.Accepting() {
			fn(Match{Pos: pos, Depth: depth, Label: e.Label})
		}
	}
}

// SelectPositions runs Select and collects the preorder positions of all
// selected nodes.
func SelectPositions(ev Evaluator, src encoding.Source) ([]int, error) {
	var out []int
	_, err := Select(ev, src, func(m Match) { out = append(out, m.Pos) })
	return out, err
}

// Recognize streams src through ev and returns the final acceptance value.
func Recognize(ev Evaluator, src encoding.Source) (bool, error) {
	ev.Reset()
	for {
		e, err := src.Next()
		if err == io.EOF {
			return ev.Accepting(), nil
		}
		if err != nil {
			return false, err
		}
		ev.Step(e)
	}
}

// RunEvents feeds a slice of events (after Reset) and returns the final
// acceptance — a convenience for tests.
func RunEvents(ev Evaluator, events []encoding.Event) bool {
	ev.Reset()
	for _, e := range events {
		ev.Step(e)
	}
	return ev.Accepting()
}

// elWrapper turns an evaluator realizing QL into a recognizer of EL, per
// the proof of Theorem 3.1: move to an all-accepting sink when a closing
// tag immediately follows an opening tag read in an accepting state —
// i.e. when a selected leaf is detected.
type elWrapper struct {
	inner            Evaluator
	prevOpenSelected bool
	matched          bool
}

// ELFromQL wraps a QL evaluator into an EL recognizer (Theorem 3.1 proof).
// When the inner machine supports chunk-parallel evaluation, so does the
// wrapper (see chunk.go).
func ELFromQL(inner Evaluator) Evaluator {
	if c, ok := inner.(Chunkable); ok {
		return &chunkableEL{inner: c}
	}
	return &elWrapper{inner: inner}
}

func (w *elWrapper) Reset() {
	w.inner.Reset()
	w.prevOpenSelected = false
	w.matched = false
}

func (w *elWrapper) Step(e encoding.Event) {
	if w.matched {
		return
	}
	if e.Kind == encoding.Close && w.prevOpenSelected {
		w.matched = true
		return
	}
	w.inner.Step(e)
	w.prevOpenSelected = e.Kind == encoding.Open && w.inner.Accepting()
}

func (w *elWrapper) Accepting() bool { return w.matched }

// alWrapper is the dual construction from the proof of Theorem 3.2(3):
// move to an all-rejecting sink when a leaf is read in a rejecting state.
type alWrapper struct {
	inner            Evaluator
	prevOpenRejected bool
	failed           bool
	started          bool
}

// ALFromQL wraps a QL evaluator into an AL recognizer (Theorem 3.2 proof).
// When the inner machine supports chunk-parallel evaluation, so does the
// wrapper (see chunk.go).
func ALFromQL(inner Evaluator) Evaluator {
	if c, ok := inner.(Chunkable); ok {
		return &chunkableAL{inner: c}
	}
	return &alWrapper{inner: inner}
}

func (w *alWrapper) Reset() {
	w.inner.Reset()
	w.prevOpenRejected = false
	w.failed = false
	w.started = false
}

func (w *alWrapper) Step(e encoding.Event) {
	if w.failed {
		return
	}
	w.started = true
	if e.Kind == encoding.Close && w.prevOpenRejected {
		w.failed = true
		return
	}
	w.inner.Step(e)
	w.prevOpenRejected = e.Kind == encoding.Open && !w.inner.Accepting()
}

func (w *alWrapper) Accepting() bool { return w.started && !w.failed }
