package core

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/encoding"
	"stackless/internal/rex"
	"stackless/internal/tree"
)

// TestExample25AgainstOracle checks the H_L machine (children of the root
// spell a word of L) for several regular L against direct evaluation.
func TestExample25AgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	alph := alphabet.Letters("ab")
	for _, expr := range []string{"ab*", "(ab)*", "a*|b*", "%", ".*a"} {
		l := rex.MustCompile(expr, alph)
		d := Example25(l)
		if !d.IsRestricted() {
			t.Errorf("%s: Example 2.5 machine should be restricted", expr)
		}
		for i := 0; i < 300; i++ {
			tr := randomTree(rng, []string{"a", "b"}, 1+rng.Intn(12))
			kids := make([]string, len(tr.Children))
			for j, c := range tr.Children {
				kids[j] = c.Label
			}
			want := l.AcceptsSymbols(kids)
			got := RunEvents(d.Evaluator(), encoding.Markup(tr))
			if got != want {
				t.Fatalf("%s: H_L(%s) = %v, want %v", expr, tr, got, want)
			}
		}
	}
}

// TestExample25DeepChildrenIgnored: grandchildren must not influence the
// machine even when their labels would extend words of L.
func TestExample25DeepChildrenIgnored(t *testing.T) {
	l := rex.MustCompile("ab", alphabet.Letters("ab"))
	d := Example25(l)
	yes := tree.MustParse("b(a(b(a)),b)")  // children: a b ∈ L
	no := tree.MustParse("b(a(b),b(a),a)") // children: a b a ∉ L
	if !RunEvents(d.Evaluator(), encoding.Markup(yes)) {
		t.Error("children ab should be accepted despite deep noise")
	}
	if RunEvents(d.Evaluator(), encoding.Markup(no)) {
		t.Error("children aba should be rejected")
	}
}

// TestExample22DepthDisagreementAcrossBranches pins the non-regular
// behaviour: equal depth across far-apart branches accepted, unequal
// rejected.
func TestExample22DepthDisagreementAcrossBranches(t *testing.T) {
	d := Example22()
	deepEqual := tree.MustParse("b(b(b(a)),b(b(a)))")
	deepUnequal := tree.MustParse("b(b(b(a)),b(a))")
	if !RunEvents(d.Evaluator(), encoding.Markup(deepEqual)) {
		t.Error("equal-depth a's rejected")
	}
	if RunEvents(d.Evaluator(), encoding.Markup(deepUnequal)) {
		t.Error("unequal-depth a's accepted")
	}
}

// TestDRAEvaluatorPoisonOnForeignLabel: a label outside the alphabet makes
// the whole run non-accepting, and Reset recovers.
func TestDRAEvaluatorPoisonOnForeignLabel(t *testing.T) {
	d := Example26()
	ev := d.Evaluator()
	ev.Reset()
	ev.Step(encoding.Event{Kind: encoding.Open, Label: "zzz"})
	ev.Step(encoding.Event{Kind: encoding.Open, Label: "a"})
	ev.Step(encoding.Event{Kind: encoding.Open, Label: "b"})
	if ev.Accepting() {
		t.Error("poisoned run reported accepting")
	}
	ev.Reset()
	if !RunEvents(ev, encoding.Markup(tree.MustParse("a(b)"))) {
		t.Error("Reset did not clear poison")
	}
}

// minimalAWithBChild is the oracle for Example27Minimal.
func minimalAWithBChild(t *tree.Node) bool {
	var rec func(n *tree.Node, aAbove bool) bool
	rec = func(n *tree.Node, aAbove bool) bool {
		if n.Label == "a" && !aAbove {
			for _, c := range n.Children {
				if c.Label == "b" {
					return true
				}
			}
		}
		for _, c := range n.Children {
			if rec(c, aAbove || n.Label == "a") {
				return true
			}
		}
		return false
	}
	return rec(t, false)
}

func TestExample27MinimalAgainstOracle(t *testing.T) {
	d := Example27Minimal()
	if !d.IsRestricted() {
		t.Error("Example 2.7's minimal-variant machine should be restricted")
	}
	cases := []struct {
		tr   string
		want bool
	}{
		{"a(b)", true},
		{"a(c(b))", false}, // b is a grandchild, not a child
		{"c(a(b),b)", true},
		{"a(a(b))", false},     // the inner a is not minimal
		{"c(a(c),a(b))", true}, // second minimal a has the b-child
		{"b(a)", false},
		{"c(a(c(a(b))))", false}, // only non-minimal a has the b-child
	}
	for _, c := range cases {
		tr := tree.MustParse(c.tr)
		got := RunEvents(d.Evaluator(), encoding.Markup(tr))
		if got != c.want {
			t.Errorf("Example27Minimal(%s) = %v, want %v", c.tr, got, c.want)
		}
		if want := minimalAWithBChild(tr); c.want != want {
			t.Fatalf("test case %s mislabelled: oracle says %v", c.tr, want)
		}
	}
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 800; i++ {
		tr := randomTree(rng, []string{"a", "b", "c"}, 1+rng.Intn(18))
		got := RunEvents(d.Evaluator(), encoding.Markup(tr))
		if want := minimalAWithBChild(tr); got != want {
			t.Fatalf("Example27Minimal(%s) = %v, want %v", tr, got, want)
		}
	}
}

// TestExample27FullVersionNotStackless certifies the negative half of
// Example 2.7 via the classifier: with arbitrary (not necessarily minimal)
// a-nodes, the query language Γ*ab is not HAR, so no depth-register
// automaton exists (see also TestStacklessQLFig3).
func TestExample27FullVersionNotStackless(t *testing.T) {
	an := classifyAnalyze(t, ".*ab")
	if har, _ := an.HAR(); har {
		t.Fatal("Γ*ab must not be HAR (Example 2.7 / Theorem 3.1)")
	}
}

func classifyAnalyze(t *testing.T, expr string) *classify.Analysis {
	t.Helper()
	d, err := rex.CompileString(expr, alphabet.Letters("abc"))
	if err != nil {
		t.Fatal(err)
	}
	return classify.Analyze(d)
}
