package core

import (
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
)

// The unknown-symbol column of the negated (AL) synopsis machines, tested
// directly: an out-of-alphabet open poisons the wrapped complement machine
// on both the string and the coded path, poison is absorbing, and blind
// machines never consult the label of a closing tag — the unknown sentinel
// on a Close must NOT poison them.

func negatedAL(t *testing.T, blind bool) *negated {
	t.Helper()
	an := classify.Analyze(paperfigs.Fig3b())
	var (
		ev  Evaluator
		err error
	)
	if blind {
		ev, err = BlindRegisterlessAL(an)
	} else {
		ev, err = RegisterlessAL(an)
	}
	if err != nil {
		t.Fatal(err)
	}
	n, ok := ev.(*negated)
	if !ok {
		t.Fatalf("RegisterlessAL returned %T, want *negated", ev)
	}
	return n
}

// stepBoth drives the string path on ns and the coded path on nc with the
// same event and asserts their observables agree.
func stepBoth(t *testing.T, ns, nc *negated, coder *alphabet.Coder, e encoding.Event) {
	t.Helper()
	ns.Step(e)
	nc.StepBatch([]encoding.CodedEvent{{Sym: coder.Code(e.Label), Kind: e.Kind}})
	if ns.Accepting() != nc.Accepting() {
		t.Fatalf("after %s: Accepting string=%v coded=%v", e, ns.Accepting(), nc.Accepting())
	}
	if sp, cp := ns.inner.Poisoned(), nc.inner.Poisoned(); sp != cp {
		t.Fatalf("after %s: Poisoned string=%v coded=%v", e, sp, cp)
	}
}

func TestNegatedUnknownOpenPoisons(t *testing.T) {
	for _, blind := range []bool{false, true} {
		name := "markup"
		if blind {
			name = "blind"
		}
		t.Run(name, func(t *testing.T) {
			ns, nc := negatedAL(t, blind), negatedAL(t, blind)
			coder := alphabet.NewCoder(nc.CodeAlphabet())
			open := func(l string) encoding.Event { return encoding.Event{Kind: encoding.Open, Label: l} }
			close := func(l string) encoding.Event { return encoding.Event{Kind: encoding.Close, Label: l} }
			if blind {
				close = func(string) encoding.Event { return encoding.Event{Kind: encoding.Close} }
			}

			stepBoth(t, ns, nc, coder, open("a"))
			if ns.inner.Poisoned() {
				t.Fatal("known open poisoned the machine")
			}
			stepBoth(t, ns, nc, coder, open("zzz"))
			if !nc.inner.Poisoned() {
				t.Fatal("unknown open did not poison the coded machine")
			}
			// Poison is absorbing: further well-formed events never
			// resurrect the run, and the two paths stay in lockstep.
			for _, e := range []encoding.Event{close("zzz"), open("b"), close("b"), close("a")} {
				stepBoth(t, ns, nc, coder, e)
				if !nc.inner.Poisoned() {
					t.Fatalf("poison lifted after %s", e)
				}
			}
			// A poisoned complement machine accepts nothing, so the
			// negation accepts everything from here on; that is decided by
			// Accepting, which both paths already agreed on above.

			// Reset clears the poison on both paths.
			ns.Reset()
			nc.Reset()
			if ns.inner.Poisoned() || nc.inner.Poisoned() {
				t.Fatal("Reset did not clear the poison")
			}
		})
	}
}

// TestNegatedBlindUnknownCloseDoesNotPoison pins the asymmetry: the blind
// (term-encoding) machine never reads a closing label, so the coded
// unknown sentinel on a Close — which is how unlabelled closes are coded —
// must leave the machine live, while the markup machine must poison.
func TestNegatedBlindUnknownCloseDoesNotPoison(t *testing.T) {
	drive := func(blind bool) *negated {
		n := negatedAL(t, blind)
		coder := alphabet.NewCoder(n.CodeAlphabet())
		n.StepBatch([]encoding.CodedEvent{
			{Sym: coder.Code("a"), Kind: encoding.Open},
			{Sym: coder.Code("b"), Kind: encoding.Open},
			{Sym: coder.Code("zzz"), Kind: encoding.Close}, // unknown close
		})
		return n
	}
	if m := drive(true); m.inner.Poisoned() {
		t.Error("blind machine poisoned by the unknown-close sentinel")
	}
	if m := drive(false); !m.inner.Poisoned() {
		t.Error("markup machine not poisoned by an unknown closing label")
	}
}

// TestNegatedUnknownAgainstStack cross-checks the negated machines'
// unknown-label verdicts against fresh machines over documents whose trees
// are otherwise well-formed: the verdict after a stream with an unknown
// label must equal the verdict of the string path on the same stream.
func TestNegatedUnknownAgainstStack(t *testing.T) {
	docs := [][]encoding.Event{
		{{Kind: encoding.Open, Label: "zzz"}, {Kind: encoding.Close, Label: "zzz"}},
		{
			{Kind: encoding.Open, Label: "a"},
			{Kind: encoding.Open, Label: "zzz"},
			{Kind: encoding.Close, Label: "zzz"},
			{Kind: encoding.Close, Label: "a"},
		},
		{
			{Kind: encoding.Open, Label: "a"},
			{Kind: encoding.Close, Label: "a"},
		},
	}
	for di, doc := range docs {
		ns, nc := negatedAL(t, false), negatedAL(t, false)
		coder := alphabet.NewCoder(nc.CodeAlphabet())
		coded := encoding.CodeEvents(coder, doc, nil)
		for _, e := range doc {
			ns.Step(e)
		}
		nc.StepBatch(coded)
		if ns.Accepting() != nc.Accepting() {
			t.Errorf("doc %d: Accepting string=%v coded=%v", di, ns.Accepting(), nc.Accepting())
		}
	}
}
