package core

import (
	"fmt"

	"stackless/internal/alphabet"
)

// ChainPatternDRA materializes the Proposition 2.8 machine for a *chain*
// descendent pattern p₀ // p₁ // … // pₙ₋₁ as a table DRA in the exact
// sense of Definition 2.1 (the compiled PatternMatcher remains the general
// construction for branching patterns). The machine realizes the
// minimal-candidate strategy of the proposition with one depth register
// per non-final pattern node:
//
//   - state i (0 ≤ i < n): candidates for p₀…pᵢ₋₁ are fixed, registers
//     0…i−1 hold their depths, and the machine scans for the first
//     pᵢ-labelled proper descendant of candidate i−1;
//   - an opening pᵢ loads register i and advances to state i+1 (straight
//     to the accepting sink for the final pattern node, which needs no
//     register);
//   - a closing tag that drops the depth strictly below register j kills
//     candidates j…i−1 and falls back to state j — detectable from the
//     X≥\X≤ masks, exactly the §2.2-restricted discipline;
//   - state n is the accepting sink.
//
// Minimality is sound for the same reason as in PatternMatcher: a chain
// matching below a nested candidate also matches below the current one.
// Closing labels are never inspected, so the machine works for the markup
// and the term encoding alike. All loads include the restricted completion
// X≥\X≤, so the automaton is restricted (the language is regular).
func ChainPatternDRA(alph *alphabet.Alphabet, labels []string) (*DRA, error) {
	n := len(labels)
	if n == 0 {
		return nil, fmt.Errorf("core: empty chain pattern")
	}
	syms := make([]int, n)
	for i, l := range labels {
		id, ok := alph.ID(l)
		if !ok {
			return nil, fmt.Errorf("core: pattern label %q outside alphabet %s", l, alph)
		}
		syms[i] = id
	}
	regs := n - 1
	if entries, ok := TableEntries(n+1, alph.Size(), regs); !ok {
		return nil, fmt.Errorf("core: chain pattern of %d nodes needs a %d-entry table, above the %d cap",
			n, entries, MaxTableEntries)
	}
	d := NewDRA(alph, n+1, 0, regs)
	d.Accept[n] = true

	for i := 0; i < n; i++ {
		for sym := 0; sym < alph.Size(); sym++ {
			// Opening tags: every node opened in state i is a proper
			// descendant of candidate i−1, so a pᵢ label is the next minimal
			// candidate.
			nextOpen, loadOpen := i, RegSet(0)
			if sym == syms[i] {
				if i == n-1 {
					nextOpen = n
				} else {
					nextOpen, loadOpen = i+1, RegSet(1)<<uint(i)
				}
			}
			EachFeasibleMask(regs, func(le, ge RegSet) {
				d.SetTransition(i, sym, false, le, ge, loadOpen|(ge&^le), nextOpen)
			})
			// Closing tags: fall back to the shallowest candidate whose
			// register now exceeds the depth (on live runs only register
			// i−1 can newly exceed it; smaller ones cover the restricted
			// completion of unreachable mask combinations).
			EachFeasibleMask(regs, func(le, ge RegSet) {
				next := i
				for j := 0; j < i; j++ {
					if ge.Has(j) && !le.Has(j) {
						next = j
						break
					}
				}
				d.SetTransition(i, sym, true, le, ge, ge&^le, next)
			})
		}
	}
	for sym := 0; sym < alph.Size(); sym++ {
		d.SetForAllTestsRestricted(n, sym, false, 0, n)
		d.SetForAllTestsRestricted(n, sym, true, 0, n)
	}
	return d, nil
}
