package core

import (
	"errors"
	"fmt"

	"stackless/internal/alphabet"
	"stackless/internal/encoding"
)

// Product automaton (DESIGN.md §13): the synchronous product of several
// TagDFAs, so a multi-query run steps ONE flat table per event instead of
// one per member query. The construction extends the §11 layout: a product
// state is a reachable tuple of member states, the transition table is the
// same flat (n+1)×2(K+1) []int32 shape over the members' shared (union)
// alphabet, and acceptance generalizes from one bool per row to one bitset
// per row — bit i set when member i accepts in that tuple. The dead row is
// the all-members-dead tuple: absorbing, mask zero, and the target of the
// unknown-symbol columns, exactly the poison convention of TagDFA.
//
// Members may die individually: a label inside the union but outside member
// i's alphabet steps only member i into its dead state, and the tuple stays
// live as long as any member is. The product therefore reproduces each
// member's poison behavior bit-exactly — internal/tablecheck pins this with
// a joint BFS of the product against the member tuple.

// DefaultProductMaxStates caps the reachable-tuple construction. Query sets
// over shared document schemas (the many-subscribers workload) stay tiny —
// their members track the same path — while adversarial sets can approach
// the ∏ nᵢ worst case; past the cap construction fails with
// ErrProductTooLarge and the caller falls back to fan-out.
const DefaultProductMaxStates = 1 << 13

// ErrProductTooLarge reports that the reachable product exceeded the state
// cap; callers treat it as "evaluate this group by fan-out instead".
var ErrProductTooLarge = errors.New("core: product state space exceeds the cap")

// ProductDFA is the compiled product of member TagDFAs. Build one with
// NewProductDFA; the zero value is not usable. Construction is eager (the
// table is the whole point), so unlike TagDFA there is no lazy compile step
// and the CompileHook fires inside NewProductDFA.
type ProductDFA struct {
	alph    *alphabet.Alphabet // shared union alphabet; Sym space of the table
	members []*TagDFA
	term    bool
	start   int32
	states  int32 // live rows; the dead row is row `states`
	stride  int32 // 2(K+1) for union size K
	words   int32 // mask words per row: ceil(len(members)/64)

	tab    []int32  // (states+1)×stride, entries in [0, states]
	masks  []uint64 // (states+1)×words acceptance bitsets
	anyAcc []bool   // (states+1): masks row non-zero (hot-loop prefilter)
}

// NewProductDFA builds the reachable product of the members (at least one,
// all under the same encoding) over their union alphabet, by breadth-first
// search from the tuple of start states. maxStates bounds the live rows
// (<=0 means DefaultProductMaxStates); exceeding it returns
// ErrProductTooLarge.
func NewProductDFA(members []*TagDFA, maxStates int) (*ProductDFA, error) {
	if len(members) == 0 {
		return nil, errors.New("core: product of zero members")
	}
	if maxStates <= 0 {
		maxStates = DefaultProductMaxStates
	}
	term := members[0].CloseAny != nil
	alphs := make([]*alphabet.Alphabet, len(members))
	for i, m := range members {
		if (m.CloseAny != nil) != term {
			return nil, fmt.Errorf("core: product members mix encodings (member %d)", i)
		}
		alphs[i] = m.Alphabet
	}
	shared := alphabet.Union(alphs...)
	k := shared.Size()
	stride := int32(2 * (k + 1))
	n := len(members)
	words := int32((n + 63) / 64)

	// Member compiled forms plus the union→member symbol maps: symMap[i][s]
	// is member i's column symbol for union symbol s (its own id when the
	// label is in its alphabet, its unknown sentinel otherwise — including
	// s = K, the union's own unknown).
	mtab := make([][]int32, n)
	macc := make([][]bool, n)
	mstride := make([]int32, n)
	mdead := make([]int32, n)
	symMap := make([][]int32, n)
	for i, m := range members {
		mtab[i], macc[i], mstride[i], mdead[i] = m.CompiledTable()
		// The member's unknown column comes from its *compiled* stride, not
		// its current alphabet: symbols added after the member compiled have
		// ids beyond the table width, and clamping them to the unknown column
		// keeps the construction in-bounds (the cache's generation keying
		// ensures such a stale product is never served anyway).
		munk := mstride[i]/2 - 1
		sm := make([]int32, k+1)
		for s := 0; s < k; s++ {
			if id, ok := m.Alphabet.ID(shared.Symbol(s)); ok && int32(id) < munk {
				sm[s] = int32(id)
			} else {
				sm[s] = munk
			}
		}
		sm[k] = munk
		symMap[i] = sm
	}

	// Tuple interning. The all-dead tuple is not interned: it maps to the
	// sentinel -1, rewritten to the final dead row id once BFS finishes.
	const deadMark = int32(-1)
	key := make([]byte, 4*n)
	tupleKey := func(t []int32) string {
		for i, q := range t {
			key[4*i] = byte(q)
			key[4*i+1] = byte(q >> 8)
			key[4*i+2] = byte(q >> 16)
			key[4*i+3] = byte(q >> 24)
		}
		return string(key)
	}
	ids := make(map[string]int32)
	var tuples []int32 // flat, n per state
	var masks []uint64
	var anyAcc []bool
	intern := func(t []int32) (int32, error) {
		dead := true
		for i, q := range t {
			if q != mdead[i] {
				dead = false
				break
			}
		}
		if dead {
			return deadMark, nil
		}
		kk := tupleKey(t)
		if id, ok := ids[kk]; ok {
			return id, nil
		}
		id := int32(len(ids))
		if int(id) >= maxStates {
			return 0, fmt.Errorf("%w: more than %d reachable tuples of %d members", ErrProductTooLarge, maxStates, n)
		}
		ids[kk] = id
		tuples = append(tuples, t...)
		row := make([]uint64, words)
		acc := false
		for i, q := range t {
			if int(q) < len(macc[i]) && macc[i][q] {
				row[i/64] |= 1 << (uint(i) % 64)
				acc = true
			}
		}
		masks = append(masks, row...)
		anyAcc = append(anyAcc, acc)
		return id, nil
	}

	startTuple := make([]int32, n)
	for i, m := range members {
		startTuple[i] = int32(m.Start)
	}
	start, err := intern(startTuple)
	if err != nil {
		return nil, err
	}

	var tab []int32
	next := make([]int32, n)
	for done := int32(0); done < int32(len(ids)); done++ {
		tuple := tuples[int(done)*n : (int(done)+1)*n]
		row := make([]int32, stride)
		for col := int32(0); col < stride; col++ {
			sym, kind := col>>1, col&1
			for i := range next {
				mcol := symMap[i][sym]<<1 | kind
				next[i] = mtab[i][tuple[i]*mstride[i]+mcol]
			}
			row[col], err = intern(next)
			if err != nil {
				return nil, err
			}
		}
		tab = append(tab, row...)
	}

	// Finalize: append the dead row (self-absorbing, mask zero) and rewrite
	// the sentinel to its id.
	states := int32(len(ids))
	deadRow := make([]int32, stride)
	for c := range deadRow {
		deadRow[c] = states
	}
	tab = append(tab, deadRow...)
	masks = append(masks, make([]uint64, words)...)
	anyAcc = append(anyAcc, false)
	for i, e := range tab {
		if e == deadMark {
			tab[i] = states
		}
	}
	if start == deadMark {
		start = states
	}

	p := &ProductDFA{
		alph:    shared,
		members: append([]*TagDFA(nil), members...),
		term:    term,
		start:   start,
		states:  states,
		stride:  stride,
		words:   words,
		tab:     tab,
		masks:   masks,
		anyAcc:  anyAcc,
	}
	if CompileHook != nil {
		compileHook(p)
	}
	return p, nil
}

// Alphabet returns the shared union alphabet the table is indexed by.
func (p *ProductDFA) Alphabet() *alphabet.Alphabet { return p.alph }

// Members returns the member count — the number of mask bits per row.
func (p *ProductDFA) Members() int { return len(p.members) }

// MemberMachines returns the member automata, in mask-bit order.
func (p *ProductDFA) MemberMachines() []*TagDFA {
	return append([]*TagDFA(nil), p.members...)
}

// TermEncoding reports whether the members (hence the product) consume the
// term encoding.
func (p *ProductDFA) TermEncoding() bool { return p.term }

// NumStates returns the number of live product states (the dead row is one
// more).
func (p *ProductDFA) NumStates() int { return int(p.states) }

// Start returns the start state.
func (p *ProductDFA) Start() int { return int(p.start) }

// MaskWords returns the number of uint64 words per acceptance bitset.
func (p *ProductDFA) MaskWords() int { return int(p.words) }

// CompiledProduct returns the live compiled form for verification: the flat
// transition table, the per-state acceptance bitsets, the any-bit-set
// prefilter, the row stride 2(K+1), the mask word count and the dead row
// id. As with TagDFA.CompiledTable these are the backing arrays the kernels
// index, not copies — the corruption tests flip entries in place.
func (p *ProductDFA) CompiledProduct() (tab []int32, masks []uint64, anyAcc []bool, stride, words, dead int32) {
	return p.tab, p.masks, p.anyAcc, p.stride, p.words, p.states
}

// ProductEvaluator steps a ProductDFA. It implements Evaluator (Accepting =
// "any member accepts"), BatchEvaluator over the shared alphabet, and
// Snapshotter; SelectBatchMasks is the multi-query kernel that also reports
// which members selected each hit.
type ProductEvaluator struct {
	p     *ProductDFA
	res   *alphabet.Resolver
	state int32
}

// Evaluator returns a fresh streaming evaluator.
func (p *ProductDFA) Evaluator() *ProductEvaluator {
	return &ProductEvaluator{p: p, res: alphabet.NewResolver(p.alph), state: p.start}
}

// EvaluatorAt returns an evaluator positioned at the given state — phase
// two of the chunk-parallel driver (internal/product) starts each chunk at
// its joined entry state. Out-of-range ids park at the dead row.
func (p *ProductDFA) EvaluatorAt(state int32) *ProductEvaluator {
	ev := p.Evaluator()
	if state < 0 || state > p.states {
		state = p.states
	}
	ev.state = state
	return ev
}

// Machine returns the underlying product (verification).
func (ev *ProductEvaluator) Machine() *ProductDFA { return ev.p }

// State returns the current state id — the chunk-parallel driver captures
// chunk exits through it.
func (ev *ProductEvaluator) State() int32 { return ev.state }

// Reset implements Evaluator.
func (ev *ProductEvaluator) Reset() { ev.state = ev.p.start }

// Step implements Evaluator: the per-event string path. Unknown labels take
// the unknown column, which steps each member through its own unknown
// column — dead for opens (and markup closes), CloseAny for term closes, so
// per-member poison matches the members' own string paths.
func (ev *ProductEvaluator) Step(e encoding.Event) {
	p := ev.p
	sym := int32(p.alph.Size())
	if e.Kind == encoding.Close && p.term {
		// ◁ ignores the label: every close column of a term row is equal, so
		// the unknown column serves.
	} else if id, ok := ev.res.ID(e.Label); ok {
		sym = int32(id)
	}
	col := sym<<1 | int32(e.Kind)
	if i := uint(ev.state)*uint(p.stride) + uint(col); i < uint(len(p.tab)) {
		ev.state = p.tab[i]
	} else {
		ev.state = p.states
	}
}

// Accepting implements Evaluator: true when any member accepts. Per-member
// acceptance is AcceptMask.
func (ev *ProductEvaluator) Accepting() bool {
	if a := uint(ev.state); a < uint(len(ev.p.anyAcc)) {
		return ev.p.anyAcc[a]
	}
	return false
}

// AcceptMask returns the current state's acceptance bitset (bit i = member
// i accepts) — a live view into the compiled masks, valid until the next
// step.
func (ev *ProductEvaluator) AcceptMask() []uint64 {
	p := ev.p
	base := int(ev.state) * int(p.words)
	return p.masks[base : base+int(p.words)]
}

// CodeAlphabet implements BatchEvaluator: batches are coded under the
// shared union alphabet, one coder for the whole group.
func (ev *ProductEvaluator) CodeAlphabet() *alphabet.Alphabet { return ev.p.alph }

// StepBatch implements BatchEvaluator: one table load per event for the
// whole member set. Index guards as in TagDFA's kernels (shaped for
// bounds-check elimination, degrading to the dead row on a corrupt table).
//
//treelint:plain
func (ev *ProductEvaluator) StepBatch(batch []encoding.CodedEvent) {
	p := ev.p
	tab := p.tab
	stride, dead := p.stride, p.states
	st := ev.state
	for _, e := range batch {
		if i := uint(st)*uint(stride) + uint(int32(e.Sym)<<1|int32(e.Kind)); i < uint(len(tab)) {
			st = tab[i]
		} else {
			st = dead
		}
	}
	ev.state = st
}

// SelectBatch implements BatchEvaluator: a hit is an Open after which any
// member accepts. Multi-query demultiplexing wants SelectBatchMasks.
//
//treelint:plain
func (ev *ProductEvaluator) SelectBatch(batch []encoding.CodedEvent, hits []int32) []int32 {
	p := ev.p
	tab, acc := p.tab, p.anyAcc
	stride, dead := p.stride, p.states
	st := ev.state
	for i, e := range batch {
		if j := uint(st)*uint(stride) + uint(int32(e.Sym)<<1|int32(e.Kind)); j < uint(len(tab)) {
			st = tab[j]
		} else {
			st = dead
		}
		if e.Kind == encoding.Open {
			if a := uint(st); a < uint(len(acc)) && acc[a] {
				hits = append(hits, int32(i))
			}
		}
	}
	ev.state = st
	return hits
}

// SelectBatchMasks is SelectBatch carrying the member bitsets: for each hit
// it appends the batch-relative event index to hits and the state's
// acceptance words to masks (MaskWords words per hit, in step). The mask
// copy runs only on hits, so hitless batches cost exactly one table load
// per event.
//
//treelint:plain
func (ev *ProductEvaluator) SelectBatchMasks(batch []encoding.CodedEvent, hits []int32, masks []uint64) ([]int32, []uint64) {
	p := ev.p
	tab, acc, ms := p.tab, p.anyAcc, p.masks
	stride, words, dead := p.stride, p.words, p.states
	st := ev.state
	for i, e := range batch {
		if j := uint(st)*uint(stride) + uint(int32(e.Sym)<<1|int32(e.Kind)); j < uint(len(tab)) {
			st = tab[j]
		} else {
			st = dead
		}
		if e.Kind == encoding.Open {
			if a := uint(st); a < uint(len(acc)) && acc[a] {
				hits = append(hits, int32(i))
				base := uint(st) * uint(words)
				for w := uint(0); w < uint(words); w++ {
					word := uint64(0)
					if b := base + w; b < uint(len(ms)) {
						word = ms[b]
					}
					masks = append(masks, word)
				}
			}
		}
	}
	ev.state = st
	return hits, masks
}

// SimulateChunkCoded runs the chunk from every product state at once and
// returns the exit state per entry state — phase one of the two-phase
// chunk-parallel product evaluation (internal/product): exits first, then a
// single-entry selection pass per chunk once the join pins each chunk's
// entry. cur is reused when it has capacity. The vector covers the dead row
// too (trivially absorbing), so callers index exits by any state id.
//
//treelint:plain
func (ev *ProductEvaluator) SimulateChunkCoded(seg []encoding.CodedEvent, cur []int32) []int32 {
	p := ev.p
	tab := p.tab
	stride, dead := p.stride, p.states
	total := int(dead) + 1
	if cap(cur) < total {
		//treelint:partial grows the caller's reusable buffer only when capacity is short; steady state reuses it
		cur = make([]int32, total)
	}
	cur = cur[:total]
	for i := range cur {
		cur[i] = int32(i)
	}
	for _, e := range seg {
		col := int32(e.Sym)<<1 | int32(e.Kind)
		for i := range cur {
			next := dead
			if j := uint(cur[i])*uint(stride) + uint(col); j < uint(len(tab)) {
				next = tab[j]
			}
			cur[i] = next
		}
	}
	return cur
}

// productConfig is the saved configuration of a ProductEvaluator: the
// product state is the entire configuration (per-member poison lives inside
// the tuple), so Parked is exactly the all-dead row.
type productConfig struct {
	state int32
	dead  int32
}

// Key implements SavedConfig.
func (c productConfig) Key() string { return fmt.Sprintf("x%d", c.state) }

// Parked implements SavedConfig.
func (c productConfig) Parked() bool { return c.state == c.dead }

// SaveConfig implements Snapshotter.
func (ev *ProductEvaluator) SaveConfig() SavedConfig {
	return productConfig{state: ev.state, dead: ev.p.states}
}

// RestoreConfig implements Snapshotter.
func (ev *ProductEvaluator) RestoreConfig(c SavedConfig) {
	ev.state = c.(productConfig).state
}
