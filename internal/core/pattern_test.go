package core

import (
	"math/rand"
	"testing"

	"stackless/internal/encoding"
	"stackless/internal/tree"
)

func TestPatternMatcherExamples(t *testing.T) {
	cases := []struct {
		pattern, tr string
		want        bool
	}{
		// Example 2.6: a with b descendant.
		{"a(b)", "a(b)", true},
		{"a(b)", "a(c(b))", true},
		{"a(b)", "c(a(c),b)", false},
		{"a(b)", "c(a(c),a(c(c(b))))", true},
		{"a(b)", "b(a)", false},
		// Nested chains of a (Example 2.7's hard direction is the child
		// relation; the descendant version is fine).
		{"a(b)", "a(a(a(b)))", true},
		// Multi-child patterns.
		{"a(b,c)", "a(x(b),y(c))", true},
		{"a(b,c)", "a(x(b))", false},
		{"a(b,c)", "a(b(c))", true},
		// Deeper pattern: Figure 1's π = b(b(a,c),c).
		{"b(b(a,c),c)", "b(b(a,c),c)", true},
		{"b(b(a,c),c)", "b(b(x(a),y(c)),z(c))", true},
		{"b(b(a,c),c)", "b(b(a),c)", false},
		// Matching must survive failed outer candidates.
		{"a(b)", "a(c,a(c),b)", true},
		{"a(b,b)", "a(b)", true}, // both pattern b's may map to the same node
	}
	for _, c := range cases {
		pat := tree.MustParse(c.pattern)
		tr := tree.MustParse(c.tr)
		m := NewPatternMatcher(pat)
		got := RunEvents(m, encoding.Markup(tr))
		if got != c.want {
			t.Errorf("Contains(%s, %s) = %v, want %v", c.tr, c.pattern, got, c.want)
		}
		if want := tree.Contains(tr, pat); got != want {
			t.Errorf("oracle disagrees on (%s, %s): matcher %v oracle %v", c.tr, c.pattern, got, want)
		}
		// The same machine must work on the term encoding.
		if gotTerm := RunEvents(m, encoding.Term(tr)); gotTerm != got {
			t.Errorf("term encoding disagrees on (%s, %s)", c.tr, c.pattern)
		}
	}
}

func randomPattern(rng *rand.Rand, labels []string, budget int) *tree.Node {
	n := tree.New(labels[rng.Intn(len(labels))])
	budget--
	for budget > 0 && rng.Intn(2) == 0 {
		sub := 1 + rng.Intn(budget)
		n.Children = append(n.Children, randomPattern(rng, labels, sub))
		budget -= sub
	}
	return n
}

// TestPatternMatcherRandom is the property test of Proposition 2.8: the
// streaming matcher agrees with the in-memory containment oracle.
func TestPatternMatcherRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	labels := []string{"a", "b", "c"}
	for i := 0; i < 2000; i++ {
		pat := randomPattern(rng, labels, 1+rng.Intn(4))
		tr := randomTree(rng, labels, 1+rng.Intn(20))
		m := NewPatternMatcher(pat)
		got := RunEvents(m, encoding.Markup(tr))
		want := tree.Contains(tr, pat)
		if got != want {
			t.Fatalf("Contains(%s, %s): matcher %v, oracle %v", tr, pat, got, want)
		}
	}
}

// TestPatternMatcherRegisterBound: register usage is bounded by the pattern
// size regardless of document depth.
func TestPatternMatcherRegisterBound(t *testing.T) {
	pat := tree.MustParse("a(b(c),b)")
	bound := pat.Size()
	m := NewPatternMatcher(pat)
	rng := rand.New(rand.NewSource(22))
	labels := []string{"a", "b", "c"}
	var chain []string
	for i := 0; i < 2000; i++ {
		chain = append(chain, labels[rng.Intn(3)])
	}
	m.Reset()
	for _, e := range encoding.Markup(tree.Chain(chain)) {
		m.Step(e)
		if m.Registers() > bound {
			t.Fatalf("register usage %d exceeds pattern size %d", m.Registers(), bound)
		}
	}
}
