package core

import (
	"fmt"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/encoding"
	"stackless/internal/obs"
)

// Lemma 3.8: a depth-register automaton realizing QL when L is
// hierarchically almost-reversible, and the Theorem B.2 blind variant for
// the term encoding.
//
// The machine keeps one register per strongly connected component on the
// current chain of the SCC DAG, storing the depth at which the simulated
// run entered the next component, together with a candidate state of the
// abandoned component that meets (inside it) the true state the simulated
// automaton would have to be reverted to. Backtracking inside the current
// component uses the precomputed back tables (the "minimal p′" choice that
// keeps the machine deterministic).

// StacklessQL compiles the Lemma 3.8 evaluator. Fails unless the language
// is HAR (Definition 3.6), per Theorem 3.1.
func StacklessQL(an *classify.Analysis) (*StacklessEvaluator, error) {
	if !an.Minimal() {
		return nil, fmt.Errorf("core: StacklessQL requires the minimal automaton (use classify.Analyze)")
	}
	if ok, w := an.HAR(); !ok {
		return nil, &classError{"hierarchically almost-reversible", w}
	}
	return newStackless(an, false), nil
}

// BlindStacklessQL compiles the Theorem B.2 evaluator for the term
// encoding. Fails unless the language is blindly HAR.
func BlindStacklessQL(an *classify.Analysis) (*StacklessEvaluator, error) {
	if !an.Minimal() {
		return nil, fmt.Errorf("core: BlindStacklessQL requires the minimal automaton")
	}
	if ok, w := an.BlindHAR(); !ok {
		return nil, &classError{"blindly hierarchically almost-reversible", w}
	}
	return newStackless(an, true), nil
}

// StacklessEvaluator is the compiled depth-register machine of Lemma 3.8.
// Its register usage is bounded by the depth of the SCC DAG of the minimal
// automaton — a constant of the query, independent of the document.
type StacklessEvaluator struct {
	an    *classify.Analysis
	blind bool
	// back[sym][p] (markup): minimal p' in p's component Y with p'·sym ∈ Y
	// and p'·sym almost equivalent to p; -1 if none.
	back [][]int
	// backAny[p] (term): minimal p' in Y with p'·a ∈ Y and p'·a almost
	// equivalent to p for some letter a; -1 if none.
	backAny []int

	res *alphabet.Resolver

	// Runtime configuration.
	state    int // candidate state p (equals the true state after opens)
	depth    int
	records  []record // register file: one per abandoned SCC on the chain
	poisoned bool

	// Machine-level metrics. Loads and comparisons are counted with plain
	// field increments (no atomics, no branches in Step) and flushed to the
	// collector once per run by flushObs; the register-count histogram is
	// sampled behind a nil check inside the already-cold SCC-change branch.
	// Keeping obs after the runtime fields preserves their offsets, which
	// the uninstrumented Step is sensitive to.
	loads    int64
	compares int64
	obs      *obs.Collector
}

// SetObs implements Instrumented.
func (ev *StacklessEvaluator) SetObs(c *obs.Collector) { ev.obs = c }

// flushObs reports the machine-local counters into the attached collector
// and zeroes them. Called by SelectObs/RecognizeObs when the stream ends.
func (ev *StacklessEvaluator) flushObs() {
	if ev.obs != nil {
		ev.obs.RegisterLoads.Add(ev.loads)
		ev.obs.RegisterCompares.Add(ev.compares)
	}
	ev.loads, ev.compares = 0, 0
}

// record is one register of the machine: the depth at which the simulated
// run left component scc, and a candidate state inside it.
type record struct {
	depth int
	state int
}

func newStackless(an *classify.Analysis, blind bool) *StacklessEvaluator {
	A := an.D
	n := A.NumStates()
	k := A.Alphabet.Size()
	ev := &StacklessEvaluator{an: an, blind: blind, res: alphabet.NewResolver(an.D.Alphabet)}
	if blind {
		ev.backAny = make([]int, n)
		for p := 0; p < n; p++ {
			ev.backAny[p] = -1
			comp := an.Comp[p]
		search:
			for cand := 0; cand < n; cand++ {
				if an.Comp[cand] != comp {
					continue
				}
				for a := 0; a < k; a++ {
					succ := A.Delta[cand][a]
					if an.Comp[succ] == comp && an.AlmostEquivalent(succ, p) {
						ev.backAny[p] = cand
						break search
					}
				}
			}
		}
	} else {
		ev.back = make([][]int, k)
		for a := 0; a < k; a++ {
			ev.back[a] = make([]int, n)
			for p := 0; p < n; p++ {
				ev.back[a][p] = -1
				comp := an.Comp[p]
				for cand := 0; cand < n; cand++ {
					if an.Comp[cand] != comp {
						continue
					}
					succ := A.Delta[cand][a]
					if an.Comp[succ] == comp && an.AlmostEquivalent(succ, p) {
						ev.back[a][p] = cand
						break
					}
				}
			}
		}
	}
	ev.Reset()
	return ev
}

// Registers returns the number of registers currently in use (for the
// memory accounting in the benchmarks).
func (ev *StacklessEvaluator) Registers() int { return len(ev.records) }

// MaxRegisters returns the compile-time bound on register usage: the depth
// of the SCC DAG of the minimal automaton.
func (ev *StacklessEvaluator) MaxRegisters() int { return ev.an.D.SCCDAGDepth() }

// Reset implements Evaluator.
func (ev *StacklessEvaluator) Reset() {
	ev.state = ev.an.D.Start
	ev.depth = 0
	ev.records = ev.records[:0]
	ev.poisoned = false
	ev.loads, ev.compares = 0, 0
}

// Step implements Evaluator.
func (ev *StacklessEvaluator) Step(e encoding.Event) {
	if ev.poisoned {
		return
	}
	A := ev.an.D
	if e.Kind == encoding.Open {
		sym, ok := ev.res.ID(e.Label)
		if !ok {
			ev.poisoned = true
			return
		}
		ev.depth++
		next := A.Delta[ev.state][sym]
		if ev.an.Comp[next] != ev.an.Comp[ev.state] {
			// Leaving the current component: remember it in a register.
			ev.records = append(ev.records, record{depth: ev.depth, state: ev.state})
			ev.loads++
			if ev.obs != nil {
				ev.obs.Registers.Observe(len(ev.records))
			}
		}
		ev.state = next
		return
	}
	// Closing tag.
	ev.depth--
	if n := len(ev.records); n > 0 {
		// One register/depth comparison against the top record.
		ev.compares++
		if ev.depth < ev.records[n-1].depth {
			// Climbed above the node where the last SCC change happened:
			// revert to the recorded candidate of the abandoned component.
			ev.state = ev.records[n-1].state
			ev.records = ev.records[:n-1]
			return
		}
	}
	// Backtrack inside the current component.
	var cand int
	if ev.blind {
		cand = ev.backAny[ev.state]
	} else {
		sym, ok := ev.res.ID(e.Label)
		if !ok {
			ev.poisoned = true
			return
		}
		cand = ev.back[sym][ev.state]
	}
	if cand < 0 {
		// No valid predecessor: the input is not a well-formed encoding the
		// invariant covers; the automaton may answer arbitrarily, so park.
		ev.poisoned = true
		return
	}
	ev.state = cand
}

// Accepting implements Evaluator. The value is guaranteed correct
// immediately after Open events (pre-selection); see Evaluator.
func (ev *StacklessEvaluator) Accepting() bool {
	return !ev.poisoned && ev.an.D.Accept[ev.state]
}
