package core

import (
	"fmt"
	"math"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/encoding"
	"stackless/internal/obs"
)

// Lemma 3.8: a depth-register automaton realizing QL when L is
// hierarchically almost-reversible, and the Theorem B.2 blind variant for
// the term encoding.
//
// The machine keeps one register per strongly connected component on the
// current chain of the SCC DAG, storing the depth at which the simulated
// run entered the next component, together with a candidate state of the
// abandoned component that meets (inside it) the true state the simulated
// automaton would have to be reverted to. Backtracking inside the current
// component uses the precomputed back tables (the "minimal p′" choice that
// keeps the machine deterministic).

// StacklessQL compiles the Lemma 3.8 evaluator. Fails unless the language
// is HAR (Definition 3.6), per Theorem 3.1.
func StacklessQL(an *classify.Analysis) (*StacklessEvaluator, error) {
	if !an.Minimal() {
		return nil, fmt.Errorf("core: StacklessQL requires the minimal automaton (use classify.Analyze)")
	}
	if ok, w := an.HAR(); !ok {
		return nil, &classError{"hierarchically almost-reversible", w}
	}
	return newStackless(an, false), nil
}

// BlindStacklessQL compiles the Theorem B.2 evaluator for the term
// encoding. Fails unless the language is blindly HAR.
func BlindStacklessQL(an *classify.Analysis) (*StacklessEvaluator, error) {
	if !an.Minimal() {
		return nil, fmt.Errorf("core: BlindStacklessQL requires the minimal automaton")
	}
	if ok, w := an.BlindHAR(); !ok {
		return nil, &classError{"blindly hierarchically almost-reversible", w}
	}
	return newStackless(an, true), nil
}

// StacklessEvaluator is the compiled depth-register machine of Lemma 3.8.
// Its register usage is bounded by the depth of the SCC DAG of the minimal
// automaton — a constant of the query, independent of the document.
type StacklessEvaluator struct {
	an    *classify.Analysis
	blind bool
	// back[sym][p] (markup): minimal p' in p's component Y with p'·sym ∈ Y
	// and p'·sym almost equivalent to p; -1 if none.
	back [][]int
	// backAny[p] (term): minimal p' in Y with p'·a ∈ Y and p'·a almost
	// equivalent to p for some letter a; -1 if none.
	backAny []int

	// Compiled tables for the coded pipeline (DESIGN.md §11), built once at
	// construction and shared across forks. cDelta is the transition table
	// flattened to n rows of k+1 columns (column k, the unknown sentinel,
	// holds -1: poison). cBack flattens back the same way — (k+1)×n with an
	// all -1 unknown row, which doubles as the no-predecessor poison, exactly
	// the two cases the string path folds together. cComp mirrors an.Comp.
	// cSel fuses everything the per-event batch loop needs into one n×2(k+1)
	// table indexed by state and column sym<<1|kind, exactly the tag DFA's
	// layout: open columns hold the delta target with selPushBit (the move
	// leaves the source SCC: push a record) and selAccBit (the target
	// accepts) fused in; close columns hold the in-component backtrack
	// candidate (backAny for blind machines — every close column, unknown
	// included, since they never consult the label). Poison entries are -1,
	// covering unknown opens, unknown closes on markup machines, and
	// missing backtrack predecessors in one sign test.
	cDelta   []int32
	cSel     []int32
	cBack    []int32 // markup machines; nil when blind
	cBackAny []int32 // term machines; nil otherwise
	cComp    []int32
	// cDec are the earliest-decision flags (DESIGN.md §14): cDec[p] = 1 iff
	// no accepting delta target is reachable from p over delta moves and
	// backtrack-candidate moves. The candidate edges over-approximate what a
	// real close can do to the candidate state (a pop restores a *recorded*
	// state instead, which NoFutureMatches checks separately), so a set flag
	// is sound for every well-formed continuation.
	cDec []int32

	res *alphabet.Resolver

	// Runtime configuration.
	state    int // candidate state p (equals the true state after opens)
	depth    int
	records  []record // register file: one per abandoned SCC on the chain
	poisoned bool

	// Machine-level metrics. Loads and comparisons are counted with plain
	// field increments (no atomics, no branches in Step) and flushed to the
	// collector once per run by flushObs; the register-count histogram is
	// sampled behind a nil check inside the already-cold SCC-change branch.
	// Keeping obs after the runtime fields preserves their offsets, which
	// the uninstrumented Step is sensitive to.
	loads    int64
	compares int64
	obs      *obs.Collector
}

// SetObs implements Instrumented.
func (ev *StacklessEvaluator) SetObs(c *obs.Collector) { ev.obs = c }

// flushObs reports the machine-local counters into the attached collector
// and zeroes them. Called by SelectObs/RecognizeObs when the stream ends.
func (ev *StacklessEvaluator) flushObs() {
	if ev.obs != nil {
		ev.obs.RegisterLoads.Add(ev.loads)
		ev.obs.RegisterCompares.Add(ev.compares)
	}
	ev.loads, ev.compares = 0, 0
}

// record is one register of the machine: the depth at which the simulated
// run left component scc, and a candidate state inside it.
type record struct {
	depth int
	state int
}

// cSel entry layout: the target state in the low bits plus the two fused
// facts of the move. Poison entries are -1 (sign bit), so `< 0` still
// detects them before any mask.
const (
	selAccBit    = 1 << 29
	selPushBit   = 1 << 30
	selStateMask = selAccBit - 1
)

// noRecordDepth is the cached top-of-records depth when the register file
// is empty: smaller than any reachable depth, so the pop comparison falls
// through without a length check.
const noRecordDepth = math.MinInt

func newStackless(an *classify.Analysis, blind bool) *StacklessEvaluator {
	A := an.D
	n := A.NumStates()
	k := A.Alphabet.Size()
	ev := &StacklessEvaluator{an: an, blind: blind, res: alphabet.NewResolver(an.D.Alphabet)}
	if blind {
		ev.backAny = make([]int, n)
		for p := 0; p < n; p++ {
			ev.backAny[p] = -1
			comp := an.Comp[p]
		search:
			for cand := 0; cand < n; cand++ {
				if an.Comp[cand] != comp {
					continue
				}
				for a := 0; a < k; a++ {
					succ := A.Delta[cand][a]
					if an.Comp[succ] == comp && an.AlmostEquivalent(succ, p) {
						ev.backAny[p] = cand
						break search
					}
				}
			}
		}
	} else {
		ev.back = make([][]int, k)
		for a := 0; a < k; a++ {
			ev.back[a] = make([]int, n)
			for p := 0; p < n; p++ {
				ev.back[a][p] = -1
				comp := an.Comp[p]
				for cand := 0; cand < n; cand++ {
					if an.Comp[cand] != comp {
						continue
					}
					succ := A.Delta[cand][a]
					if an.Comp[succ] == comp && an.AlmostEquivalent(succ, p) {
						ev.back[a][p] = cand
						break
					}
				}
			}
		}
	}
	ev.compile()
	ev.Reset()
	compileHook(ev)
	return ev
}

// compile lowers the delta, component and back tables into the flat int32
// form the batched kernels index (see the cDelta/cBack field comments).
func (ev *StacklessEvaluator) compile() {
	A := ev.an.D
	n := A.NumStates()
	k := A.Alphabet.Size()
	ev.cDelta = make([]int32, n*(k+1))
	ev.cComp = make([]int32, n)
	for p := 0; p < n; p++ {
		row := ev.cDelta[p*(k+1) : p*(k+1)+k+1]
		for a := 0; a < k; a++ {
			row[a] = int32(A.Delta[p][a])
		}
		row[k] = -1
		ev.cComp[p] = int32(ev.an.Comp[p])
	}
	if ev.blind {
		ev.cBackAny = make([]int32, n)
		for p := 0; p < n; p++ {
			ev.cBackAny[p] = int32(ev.backAny[p])
		}
	} else {
		ev.cBack = make([]int32, (k+1)*n)
		for a := 0; a < k; a++ {
			for p := 0; p < n; p++ {
				ev.cBack[a*n+p] = int32(ev.back[a][p])
			}
		}
		for p := 0; p < n; p++ {
			ev.cBack[k*n+p] = -1
		}
	}
	w := 2 * (k + 1)
	ev.cSel = make([]int32, n*w)
	for p := 0; p < n; p++ {
		sel := ev.cSel[p*w : (p+1)*w]
		for a := 0; a < k; a++ {
			next := A.Delta[p][a]
			s := int32(next)
			if ev.an.Comp[next] != ev.an.Comp[p] {
				s |= selPushBit
			}
			if A.Accept[next] {
				s |= selAccBit
			}
			sel[a<<1] = s
			if ev.blind {
				sel[a<<1|1] = int32(ev.backAny[p])
			} else {
				sel[a<<1|1] = int32(ev.back[a][p])
			}
		}
		sel[k<<1] = -1
		if ev.blind {
			sel[k<<1|1] = int32(ev.backAny[p])
		} else {
			sel[k<<1|1] = -1
		}
	}
	// Earliest flags: live[p] marks candidate states from which some
	// accepting state is still reachable by a path ending in an open move.
	// Base case: a delta target accepts. Fixpoint edges: delta moves (opens)
	// and backtrack-candidate moves (non-popping closes); pops are handled
	// per configuration by NoFutureMatches, which also checks every recorded
	// state.
	live := make([]bool, n)
	for p := 0; p < n; p++ {
		for a := 0; a < k; a++ {
			if A.Accept[A.Delta[p][a]] {
				live[p] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for p := 0; p < n; p++ {
			if live[p] {
				continue
			}
			succLive := false
			for a := 0; a < k; a++ {
				if live[A.Delta[p][a]] {
					succLive = true
					break
				}
				if !ev.blind {
					if cand := ev.back[a][p]; cand >= 0 && live[cand] {
						succLive = true
						break
					}
				}
			}
			if !succLive && ev.blind {
				if cand := ev.backAny[p]; cand >= 0 && live[cand] {
					succLive = true
				}
			}
			if succLive {
				live[p] = true
				changed = true
			}
		}
	}
	ev.cDec = make([]int32, n)
	for p := 0; p < n; p++ {
		if !live[p] {
			ev.cDec[p] = 1
		}
	}
}

// NoFutureMatches implements EarliestDecider: a parked run never selects
// again, and an unparked one is decided when the current candidate state
// *and* every recorded state carry the decided flag — a future close may
// pop to any record, so each must itself be unable to reach an accepting
// open. The record file is bounded by the SCC-DAG depth of the query's
// automaton, so the scan is O(1) in the document.
func (ev *StacklessEvaluator) NoFutureMatches() bool {
	if ev.poisoned {
		return true
	}
	if q := uint(ev.state); q >= uint(len(ev.cDec)) || ev.cDec[q] == 0 {
		return false
	}
	for i := range ev.records {
		if q := uint(ev.records[i].state); q >= uint(len(ev.cDec)) || ev.cDec[q] == 0 {
			return false
		}
	}
	return true
}

// Registers returns the number of registers currently in use (for the
// memory accounting in the benchmarks).
func (ev *StacklessEvaluator) Registers() int { return len(ev.records) }

// MaxRegisters returns the compile-time bound on register usage: the depth
// of the SCC DAG of the minimal automaton.
func (ev *StacklessEvaluator) MaxRegisters() int { return ev.an.D.SCCDAGDepth() }

// Reset implements Evaluator.
func (ev *StacklessEvaluator) Reset() {
	ev.state = ev.an.D.Start
	ev.depth = 0
	ev.records = ev.records[:0]
	ev.poisoned = false
	ev.loads, ev.compares = 0, 0
}

// Step implements Evaluator.
func (ev *StacklessEvaluator) Step(e encoding.Event) {
	if ev.poisoned {
		return
	}
	A := ev.an.D
	if e.Kind == encoding.Open {
		sym, ok := ev.res.ID(e.Label)
		if !ok {
			ev.poisoned = true
			return
		}
		ev.depth++
		next := A.Delta[ev.state][sym]
		if ev.an.Comp[next] != ev.an.Comp[ev.state] {
			// Leaving the current component: remember it in a register.
			ev.records = append(ev.records, record{depth: ev.depth, state: ev.state})
			ev.loads++
			if ev.obs != nil {
				ev.obs.Registers.Observe(len(ev.records))
			}
		}
		ev.state = next
		return
	}
	// Closing tag.
	ev.depth--
	if n := len(ev.records); n > 0 {
		// One register/depth comparison against the top record.
		ev.compares++
		if ev.depth < ev.records[n-1].depth {
			// Climbed above the node where the last SCC change happened:
			// revert to the recorded candidate of the abandoned component.
			ev.state = ev.records[n-1].state
			ev.records = ev.records[:n-1]
			return
		}
	}
	// Backtrack inside the current component.
	var cand int
	if ev.blind {
		cand = ev.backAny[ev.state]
	} else {
		sym, ok := ev.res.ID(e.Label)
		if !ok {
			ev.poisoned = true
			return
		}
		cand = ev.back[sym][ev.state]
	}
	if cand < 0 {
		// No valid predecessor: the input is not a well-formed encoding the
		// invariant covers; the automaton may answer arbitrarily, so park.
		ev.poisoned = true
		return
	}
	ev.state = cand
}

// Accepting implements Evaluator. The value is guaranteed correct
// immediately after Open events (pre-selection); see Evaluator.
func (ev *StacklessEvaluator) Accepting() bool {
	return !ev.poisoned && ev.an.D.Accept[ev.state]
}

// CodeAlphabet implements BatchEvaluator.
func (ev *StacklessEvaluator) CodeAlphabet() *alphabet.Alphabet { return ev.an.D.Alphabet }

// StepBatch implements BatchEvaluator. The loop is the fused-table form of
// Step: depth moves first, the pop test runs unconditionally (record depths
// are strictly increasing, so `depth < top` is unreachable right after an
// open), and one cSel load then settles poison, push and target at once —
// no branch on the event kind or on blindness. Effects per event match
// Step's: a close pops its record before the label is consulted, so an
// unknown label at a popping close does not poison. The only divergence is
// the internal depth field after a poisoning *open* (incremented here,
// frozen in Step), which nothing can observe once the machine is parked.
// Loads and compares are batched in locals and stored back once per batch.
// Index guards follow the BCE shape of the plain kernels (uint conversion,
// guarded fallback to poison); the pop guard `nr >= 0` is unreachable when
// depth < topDepth (an empty record file pins topDepth at noRecordDepth)
// but lets the compiler drop the bounds check on recs[nr].
//
//treelint:partial the register-histogram hook (obs.Registers.Observe) rides in the cold push branch
func (ev *StacklessEvaluator) StepBatch(batch []encoding.CodedEvent) {
	if ev.poisoned {
		return
	}
	sel := ev.cSel
	o := ev.obs
	n := len(ev.cComp)
	w := len(sel) / n // 2*(k+1)
	state, depth := ev.state, ev.depth
	recs := ev.records
	topDepth := noRecordDepth
	if len(recs) > 0 {
		topDepth = recs[len(recs)-1].depth
	}
	loads, compares := ev.loads, ev.compares
	for _, e := range batch {
		kind := int(e.Kind)
		depth += 1 - 2*kind
		if depth < topDepth {
			if nr := len(recs) - 1; nr >= 0 {
				state = recs[nr].state
				recs = recs[:nr]
				topDepth = noRecordDepth
				if nr > 0 {
					topDepth = recs[nr-1].depth
				}
			}
			compares++
			continue
		}
		compares += int64(kind & b2i(len(recs) != 0))
		t := int32(-1)
		if j := uint(state)*uint(w) + uint(int(e.Sym)<<1|kind); j < uint(len(sel)) {
			t = sel[j]
		}
		if t < 0 {
			ev.poisoned = true
			break
		}
		if t&selPushBit != 0 {
			recs = append(recs, record{depth: depth, state: state})
			topDepth = depth
			loads++
			if o != nil {
				o.Registers.Observe(len(recs))
			}
		}
		state = int(t & selStateMask)
	}
	ev.state, ev.depth, ev.records = state, depth, recs
	ev.loads, ev.compares = loads, compares
}

// SelectBatch implements BatchEvaluator: StepBatch plus the pre-selection
// acceptance check after each Open — free here, since the accept fact rides
// on the same cSel entry (close columns never carry it).
//
//treelint:partial the register-histogram hook (obs.Registers.Observe) rides in the cold push branch
func (ev *StacklessEvaluator) SelectBatch(batch []encoding.CodedEvent, hits []int32) []int32 {
	if ev.poisoned {
		return hits
	}
	sel := ev.cSel
	o := ev.obs
	n := len(ev.cComp)
	w := len(sel) / n
	state, depth := ev.state, ev.depth
	recs := ev.records
	topDepth := noRecordDepth
	if len(recs) > 0 {
		topDepth = recs[len(recs)-1].depth
	}
	loads, compares := ev.loads, ev.compares
	for i, e := range batch {
		kind := int(e.Kind)
		depth += 1 - 2*kind
		if depth < topDepth {
			if nr := len(recs) - 1; nr >= 0 {
				state = recs[nr].state
				recs = recs[:nr]
				topDepth = noRecordDepth
				if nr > 0 {
					topDepth = recs[nr-1].depth
				}
			}
			compares++
			continue
		}
		compares += int64(kind & b2i(len(recs) != 0))
		t := int32(-1)
		if j := uint(state)*uint(w) + uint(int(e.Sym)<<1|kind); j < uint(len(sel)) {
			t = sel[j]
		}
		if t < 0 {
			ev.poisoned = true
			break
		}
		if t&selPushBit != 0 {
			recs = append(recs, record{depth: depth, state: state})
			topDepth = depth
			loads++
			if o != nil {
				o.Registers.Observe(len(recs))
			}
		}
		state = int(t & selStateMask)
		if t&selAccBit != 0 {
			hits = append(hits, int32(i))
		}
	}
	ev.state, ev.depth, ev.records = state, depth, recs
	ev.loads, ev.compares = loads, compares
	return hits
}

// SimulateSegmentCoded implements CodedSegmentKernel: SimulateSegment with
// the label resolution hoisted out. The unknown row of cBack reproduces the
// string kernel's lazy close resolution — popping runs survive an unknown
// label, non-popping runs die — and an unknown open kills every run at once.
//
//treelint:partial flushes the segment-batched load/compare counters into obs at segment end
func (ev *StacklessEvaluator) SimulateSegmentCoded(seg []encoding.CodedEvent, cands *CandSet) []SegmentExit {
	n := len(ev.cComp)
	kw := len(ev.cDelta) / n
	acc := ev.an.D.Accept
	st := make([]int32, n)
	dead := make([]bool, n)
	recs := make([][]record, n)
	for i := range st {
		st[i] = int32(i)
	}
	var loads, compares int64
	var opens, depth int32
	live := n
	for idx := 0; idx < len(seg) && live > 0; idx++ {
		e := seg[idx]
		if e.Kind == encoding.Open {
			if int(e.Sym) >= kw-1 {
				live = 0
				break
			}
			sym := int(e.Sym)
			o := opens
			opens++
			depth++
			var mask []uint64
			for i := range st {
				if dead[i] {
					continue
				}
				s := int(st[i])
				next := ev.cDelta[s*kw+sym]
				if ev.cComp[next] != ev.cComp[s] {
					recs[i] = append(recs[i], record{depth: int(depth), state: s})
					loads++
				}
				st[i] = next
				if cands != nil && acc[next] {
					if mask == nil {
						mask = cands.Add(int32(idx), o, depth)
					}
					mask[i/64] |= 1 << uint(i%64)
				}
			}
			continue
		}
		depth--
		sym := int(e.Sym)
		for i := range st {
			if dead[i] {
				continue
			}
			if nr := len(recs[i]); nr > 0 {
				compares++
				if int(depth) < recs[i][nr-1].depth {
					st[i] = int32(recs[i][nr-1].state)
					recs[i] = recs[i][:nr-1]
					continue
				}
			}
			var cand int32
			if ev.blind {
				cand = ev.cBackAny[st[i]]
			} else {
				cand = ev.cBack[sym*n+int(st[i])]
			}
			if cand < 0 {
				dead[i] = true
				live--
				continue
			}
			st[i] = cand
		}
	}
	if ev.obs != nil {
		ev.obs.RegisterLoads.Add(loads)
		ev.obs.RegisterCompares.Add(compares)
	}
	exits := make([]SegmentExit, n)
	for i := range exits {
		if live == 0 || dead[i] {
			exits[i] = SegmentExit{State: -1}
			continue
		}
		var rc []record
		if len(recs[i]) > 0 {
			rc = make([]record, len(recs[i]))
			copy(rc, recs[i])
		}
		exits[i] = SegmentExit{State: int(st[i]), Regs: rc}
	}
	return exits
}
