package core

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/encoding"
	"stackless/internal/tree"
)

// TestChainPatternDRAAgainstMatcher checks the Proposition 2.8 table DRA
// for chain patterns against the compiled PatternMatcher on random trees.
func TestChainPatternDRAAgainstMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alph := alphabet.Letters("abc")
	for _, chain := range [][]string{
		{"a"},
		{"b"},
		{"a", "b"},
		{"a", "a"},
		{"a", "b", "c"},
		{"c", "c", "a"},
		{"a", "b", "a", "b"},
	} {
		d, err := ChainPatternDRA(alph, chain)
		if err != nil {
			t.Fatalf("%v: %v", chain, err)
		}
		if !d.IsRestricted() {
			t.Errorf("%v: chain-pattern DRA must be restricted (§2.2)", chain)
		}
		oracle := NewPatternMatcher(tree.Chain(chain))
		for i := 0; i < 400; i++ {
			tr := randomTree(rng, []string{"a", "b", "c"}, 1+rng.Intn(16))
			events := encoding.Markup(tr)
			got := RunEvents(d.Evaluator(), events)
			want := RunEvents(oracle, events)
			if got != want {
				t.Fatalf("%v on %s: DRA says %v, matcher %v", chain, tr, got, want)
			}
		}
	}
}

// TestChainPatternDRAFixedCases pins a few hand-checked trees, including
// the fallback-on-close behaviour.
func TestChainPatternDRAFixedCases(t *testing.T) {
	alph := alphabet.Letters("abc")
	d, err := ChainPatternDRA(alph, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		tr   string
		want bool
	}{
		{"a(b)", true},
		{"a(c(b))", true}, // descendant, not child
		{"b(a)", false},
		{"c(a(c),a(c(b)))", true}, // first candidate fails, second matches
		{"a(a(b))", true},
		{"c(b,a)", false},
	} {
		tr := tree.MustParse(c.tr)
		if got := RunEvents(d.Evaluator(), encoding.Markup(tr)); got != c.want {
			t.Errorf("a//b on %s = %v, want %v", c.tr, got, c.want)
		}
	}
}

// TestChainPatternDRAErrors: foreign labels and empty chains are rejected.
func TestChainPatternDRAErrors(t *testing.T) {
	alph := alphabet.Letters("ab")
	if _, err := ChainPatternDRA(alph, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := ChainPatternDRA(alph, []string{"a", "z"}); err == nil {
		t.Error("foreign label accepted")
	}
}
