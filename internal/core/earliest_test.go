package core

import (
	"math/rand"
	"testing"

	"stackless/internal/classify"
	"stackless/internal/encoding"
	"stackless/internal/obs"
	"stackless/internal/paperfigs"
)

func TestEarliestModeString(t *testing.T) {
	cases := []struct {
		m    EarliestMode
		want string
	}{
		{EarliestOff, "off"},
		{EarliestExact, "exact"},
		{EarliestApprox, "approx"},
		{EarliestMode(42), "EarliestMode(42)"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("EarliestMode(%d).String() = %q, want %q", int(c.m), got, c.want)
		}
	}
}

// TestEarliestClassOf pins which families carry compiled earliest flags:
// tag DFAs and stackless machines are exact, synopsis machines and table
// DRAs fall back to the safe approximation.
func TestEarliestClassOf(t *testing.T) {
	an3a := classify.Analyze(paperfigs.Fig3a())
	an3c := classify.Analyze(paperfigs.Fig3c())
	ql, err := RegisterlessQL(an3a)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := StacklessQL(an3c)
	if err != nil {
		t.Fatal(err)
	}
	el, err := RegisterlessEL(an3a)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ev   Evaluator
		want EarliestMode
	}{
		{"tagdfa", ql.Evaluator(), EarliestExact},
		{"stackless", sl, EarliestExact},
		{"synopsis", el, EarliestApprox},
		{"dra", Example22().Evaluator(), EarliestApprox},
	}
	for _, c := range cases {
		if got := EarliestClassOf(c.ev); got != c.want {
			t.Errorf("%s: EarliestClassOf = %v, want %v", c.name, got, c.want)
		}
	}
}

// checkEarliestParity runs the same stream through Select and the earliest
// drivers and fails on any divergence in events, matches or order. For
// EarliestDecider machines it additionally replays the stream by hand and
// pins soundness and monotonicity of NoFutureMatches: once it reports true
// it stays true, and no accepting Open ever follows.
func checkEarliestParity(t *testing.T, m codedMachine, events []encoding.Event) {
	t.Helper()
	var want, got, gotObs []Match
	nWant, err1 := Select(m.fresh(), encoding.NewSliceSource(events), func(mm Match) { want = append(want, mm) })
	nGot, err2 := SelectEarliest(m.fresh(), encoding.NewSliceSource(events), func(mm Match) { got = append(got, mm) })
	var c obs.Collector
	nObs, err3 := SelectEarliestObs(m.fresh(), &c, encoding.NewSliceSource(events), func(mm Match) { gotObs = append(gotObs, mm) })
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatalf("%s: select errors %v / %v / %v", m.name, err1, err2, err3)
	}
	if nWant != nGot || nWant != nObs {
		t.Fatalf("%s: events %d (string) vs %d (earliest) vs %d (earliest-obs) on %v", m.name, nWant, nGot, nObs, events)
	}
	if len(want) != len(got) || len(want) != len(gotObs) {
		t.Fatalf("%s: %d matches (string) vs %d (earliest) vs %d (earliest-obs) on %v", m.name, len(want), len(got), len(gotObs), events)
	}
	for i := range want {
		same := func(a, b Match) bool { return a.Pos == b.Pos && a.Depth == b.Depth && a.Label == b.Label }
		if !same(want[i], got[i]) || !same(want[i], gotObs[i]) {
			t.Fatalf("%s: match %d: %+v (string) vs %+v (earliest) vs %+v (earliest-obs) on %v", m.name, i, want[i], got[i], gotObs[i], events)
		}
	}
	if c.Matches.Load() != int64(len(want)) {
		t.Fatalf("%s: collector matches %d, want %d", m.name, c.Matches.Load(), len(want))
	}
	if c.Latency.Count() != int64(len(want)) || c.Latency.Sum() != 0 {
		t.Fatalf("%s: latency count %d sum %d, want count %d sum 0", m.name, c.Latency.Count(), c.Latency.Sum(), len(want))
	}

	ev := m.fresh()
	dec, ok := ev.(EarliestDecider)
	if !ok {
		return
	}
	ev.Reset()
	decidedAt := -1
	for i, e := range events {
		ev.Step(e)
		if e.Kind == encoding.Open && ev.Accepting() && decidedAt >= 0 {
			t.Fatalf("%s: NoFutureMatches at event %d but accepting Open at event %d on %v", m.name, decidedAt, i, events)
		}
		if dec.NoFutureMatches() {
			if decidedAt < 0 {
				decidedAt = i
			}
		} else if decidedAt >= 0 {
			t.Fatalf("%s: NoFutureMatches flipped back to false at event %d (decided at %d) on %v", m.name, i, decidedAt, events)
		}
	}
}

// TestEarliestParityExhaustive: every stream up to 4 events over {a,b,zz},
// balanced or not, behaves identically under Select and the earliest
// drivers, for every compiled evaluator family.
func TestEarliestParityExhaustive(t *testing.T) {
	for _, m := range codedMachines(t) {
		for length := 0; length <= 4; length++ {
			enumEvents(length, m.blind, func(seq []encoding.Event) {
				checkEarliestParity(t, m, seq)
			})
		}
	}
}

// TestEarliestParityRandom: longer random streams, same differential check.
func TestEarliestParityRandom(t *testing.T) {
	for _, m := range codedMachines(t) {
		rng := rand.New(rand.NewSource(41))
		for i := 0; i < 200; i++ {
			checkEarliestParity(t, m, randomEvents(rng, m.blind, 1+rng.Intn(80)))
		}
	}
}

// TestEarliestDecidedStillCountsEvents pins the drain contract: a run that
// decides mid-stream must still consume and count the remaining events. On
// Fig 3a's tag DFA an unknown open poisons the run immediately, so the
// machine is decided at event 0, yet the event count covers the whole
// stream.
func TestEarliestDecidedStillCountsEvents(t *testing.T) {
	d, err := RegisterlessQL(classify.Analyze(paperfigs.Fig3a()))
	if err != nil {
		t.Fatal(err)
	}
	events := []encoding.Event{
		{Kind: encoding.Open, Label: "zz"},
		{Kind: encoding.Open, Label: "a"},
		{Kind: encoding.Open, Label: "b"},
		{Kind: encoding.Close, Label: "b"},
		{Kind: encoding.Close, Label: "a"},
		{Kind: encoding.Close, Label: "zz"},
	}
	ev := d.Evaluator()
	dec := ev.(EarliestDecider)
	ev.Reset()
	ev.Step(events[0])
	if !dec.NoFutureMatches() {
		t.Fatal("precondition: poisoned run should be decided")
	}
	for _, driver := range []func(Evaluator, encoding.Source, func(Match)) (int, error){
		SelectEarliest,
		func(ev Evaluator, src encoding.Source, fn func(Match)) (int, error) {
			var c obs.Collector
			return SelectEarliestObs(ev, &c, src, fn)
		},
	} {
		matches := 0
		n, err := driver(d.Evaluator(), encoding.NewSliceSource(events), func(Match) { matches++ })
		if err != nil {
			t.Fatal(err)
		}
		if n != len(events) {
			t.Fatalf("decided run counted %d events, want %d", n, len(events))
		}
		if matches != 0 {
			t.Fatalf("decided run reported %d matches, want 0", matches)
		}
	}
}

// TestEarliestDeciderOutOfRange: a decider whose state index falls outside
// the compiled flags must answer conservatively (not decided), never panic.
func TestEarliestDeciderOutOfRange(t *testing.T) {
	d, err := RegisterlessQL(classify.Analyze(paperfigs.Fig3a()))
	if err != nil {
		t.Fatal(err)
	}
	ev := d.Evaluator().(*tagEvaluator)
	if ev.NoFutureMatches() {
		t.Fatal("fresh run should not be decided")
	}
	ev.state = 10_000
	if ev.NoFutureMatches() {
		t.Fatal("out-of-range state must be conservative, not decided")
	}

	an3c := classify.Analyze(paperfigs.Fig3c())
	sl, err := StacklessQL(an3c)
	if err != nil {
		t.Fatal(err)
	}
	slev := sl
	if slev.NoFutureMatches() {
		t.Fatal("fresh stackless run should not be decided")
	}
	slev.state = 10_000
	if slev.NoFutureMatches() {
		t.Fatal("out-of-range stackless state must be conservative, not decided")
	}
}

// TestEarliestStacklessRecordsBlock pins the record check: even when the
// surface state's flag says decided, a stacked record whose restored state
// could still match keeps the run undecided (a pop can revive it).
func TestEarliestStacklessRecordsBlock(t *testing.T) {
	sl, err := StacklessQL(classify.Analyze(paperfigs.Fig3c()))
	if err != nil {
		t.Fatal(err)
	}
	ev := sl
	ev.Reset()
	// Fig 3c is .*a.*b over markup: every live state can still reach the
	// accepting open on b, so nothing here decides; the run stays open at
	// any depth.
	for _, e := range []encoding.Event{
		{Kind: encoding.Open, Label: "a"},
		{Kind: encoding.Open, Label: "c"},
	} {
		ev.Step(e)
		if ev.NoFutureMatches() {
			t.Fatalf("run decided after %v, but b is still reachable", e)
		}
	}
}
