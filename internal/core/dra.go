package core

import (
	"fmt"
	"math/bits"

	"stackless/internal/alphabet"
	"stackless/internal/encoding"
	"stackless/internal/obs"
)

// RegSet is a bitset of registers (Ξ in Definition 2.1); register i is the
// bit 1<<i. At most 16 registers are supported in the table representation.
type RegSet uint16

// Has reports whether register i is in the set.
func (s RegSet) Has(i int) bool { return s&(1<<i) != 0 }

// With returns the set extended with register i.
func (s RegSet) With(i int) RegSet { return s | 1<<i }

// count returns the number of registers in the set.
func (s RegSet) count() int { return bits.OnesCount16(uint16(s)) }

// Transition is the output of the transition function δ: the registers to
// load with the current depth, and the successor state.
type Transition struct {
	Load RegSet
	Next int
}

// FullRegSet returns the set of all regs registers.
func FullRegSet(regs int) RegSet { return RegSet(1<<uint(regs)) - 1 }

// EachFeasibleMask calls f for every feasible (X≤, X≥) mask pair over regs
// registers. A pair is feasible when le|ge covers every register: after any
// depth update each register value is ≤, ≥ or both of the current depth
// (Definition 2.1), so exactly the 3^regs covering pairs can occur in a run.
func EachFeasibleMask(regs int, f func(le, ge RegSet)) {
	full := FullRegSet(regs)
	for le := RegSet(0); le <= full; le++ {
		for ge := RegSet(0); ge <= full; ge++ {
			if le|ge != full {
				continue
			}
			f(le, ge)
		}
	}
}

// DRA is a depth-register automaton in table form, following Definition 2.1
// exactly: δ : Q × (Γ ∪ Γ̄) × 2^Ξ × 2^Ξ → 2^Ξ × Q.
//
// The table is indexed by (state, tag, X≤ mask, X≥ mask), where tag is
// 2·sym for the opening tag of symbol sym and 2·sym+1 for its closing tag.
// Entries for infeasible (X≤, X≥) combinations are never consulted.
type DRA struct {
	Alphabet *alphabet.Alphabet
	States   int
	Start    int
	Accept   []bool
	Regs     int
	table    []Transition
	set      []uint64 // bitmap over table: entries explicitly SetTransition'ed
}

// MaxTableEntries caps the transition-table size of NewDRA. The table has
// states·2·|Γ|·2^(2·regs) entries, so the register count alone can push an
// innocent-looking machine into multi-GiB territory (regs = 10 already
// costs 2^20 entries per state and tag). 1<<26 entries is ~1 GiB of table.
const MaxTableEntries = 1 << 26

// TableEntries returns the transition-table size of a DRA with the given
// dimensions, and whether it is within MaxTableEntries. Negative dimensions
// and register counts above 16 are reported as oversized.
func TableEntries(states, alphSize, regs int) (entries uint64, ok bool) {
	if states < 0 || alphSize < 0 || regs < 0 || regs > 16 {
		return 0, false
	}
	if states > MaxTableEntries || alphSize > MaxTableEntries {
		return 1 << 63, false // saturated: the product below could overflow
	}
	entries = uint64(states) * 2 * uint64(alphSize)
	masks := uint64(1) << uint(2*regs)
	if entries == 0 {
		return 0, true
	}
	if masks > (1<<62)/entries {
		return 1 << 63, false // saturated: far beyond any cap
	}
	entries *= masks
	return entries, entries <= MaxTableEntries
}

// NewDRA allocates a DRA with all transitions self-looping on state 0 with
// no loads; callers fill entries with SetTransition. It panics if the
// transition table would exceed MaxTableEntries; callers with dynamic
// dimensions (e.g. FormalDRA) should pre-check with TableEntries and
// return an error instead.
func NewDRA(alph *alphabet.Alphabet, states, start, regs int) *DRA {
	if regs < 0 || regs > 16 {
		panic("core: register count must be between 0 and 16 in table DRAs")
	}
	entries, ok := TableEntries(states, alph.Size(), regs)
	if !ok {
		panic(fmt.Sprintf("core: DRA table with %d states, %d symbols and %d registers needs %d entries, above the %d cap",
			states, alph.Size(), regs, entries, MaxTableEntries))
	}
	d := &DRA{
		Alphabet: alph,
		States:   states,
		Start:    start,
		Accept:   make([]bool, states),
		Regs:     regs,
	}
	d.table = make([]Transition, entries)
	d.set = make([]uint64, (entries+63)/64)
	return d
}

func (d *DRA) index(q, sym int, closing bool, le, ge RegSet) int {
	tag := 2 * sym
	if closing {
		tag++
	}
	r := uint(d.Regs)
	return ((q*2*d.Alphabet.Size()+tag)<<(2*r) | int(le)<<r | int(ge))
}

// SetTransition defines δ(q, tag, X≤, X≥) = (load, next) and records the
// entry as explicitly set (see WasSet).
func (d *DRA) SetTransition(q, sym int, closing bool, le, ge RegSet, load RegSet, next int) {
	i := d.index(q, sym, closing, le, ge)
	d.table[i] = Transition{Load: load, Next: next}
	d.set[i/64] |= 1 << uint(i%64)
}

// WasSet reports whether the entry was explicitly defined via SetTransition
// (directly or through the SetForAllTests helpers), as opposed to still
// holding the NewDRA default. The linter uses this to distinguish intended
// transitions from accidental reliance on the zero default.
func (d *DRA) WasSet(q, sym int, closing bool, le, ge RegSet) bool {
	i := d.index(q, sym, closing, le, ge)
	return d.set[i/64]&(1<<uint(i%64)) != 0
}

// TableLen returns the allocated transition-table length, for structural
// validation by the linter.
func (d *DRA) TableLen() int { return len(d.table) }

// SetForAllTests defines the same transition for every feasible (X≤, X≥)
// combination — convenience for transitions that ignore the registers.
func (d *DRA) SetForAllTests(q, sym int, closing bool, load RegSet, next int) {
	EachFeasibleMask(d.Regs, func(le, ge RegSet) {
		d.SetTransition(q, sym, closing, le, ge, load, next)
	})
}

// SetForAllTestsRestricted is SetForAllTests with the load set extended by
// X≥ \ X≤ in every entry, so the resulting transitions satisfy the
// restriction of Section 2.2. Use it for transitions whose register-test
// combinations with values above the current depth are either unreachable
// or may safely forget those values.
func (d *DRA) SetForAllTestsRestricted(q, sym int, closing bool, load RegSet, next int) {
	EachFeasibleMask(d.Regs, func(le, ge RegSet) {
		d.SetTransition(q, sym, closing, le, ge, load|(ge&^le), next)
	})
}

// Transition looks up δ(q, tag, X≤, X≥).
func (d *DRA) Transition(q, sym int, closing bool, le, ge RegSet) Transition {
	return d.table[d.index(q, sym, closing, le, ge)]
}

// IsRestricted reports whether the automaton is restricted in the sense of
// Section 2.2: every transition overwrites all registers storing values
// strictly greater than the current depth, i.e. X≥ \ X≤ ⊆ Y.
func (d *DRA) IsRestricted() bool {
	for q := 0; q < d.States; q++ {
		for sym := 0; sym < d.Alphabet.Size(); sym++ {
			for _, closing := range []bool{false, true} {
				ok := true
				EachFeasibleMask(d.Regs, func(le, ge RegSet) {
					tr := d.Transition(q, sym, closing, le, ge)
					if ge&^le&^tr.Load != 0 {
						ok = false
					}
				})
				if !ok {
					return false
				}
			}
		}
	}
	return true
}

// Config is a DRA configuration (state, current depth, register values).
type Config struct {
	State int
	Depth int
	Regs  []int
}

// InitialConfig returns (q_init, 0, 0̄).
func (d *DRA) InitialConfig() Config {
	return Config{State: d.Start, Depth: 0, Regs: make([]int, d.Regs)}
}

// StepConfig advances a configuration by one event, per Definition 2.1:
// the depth changes first, then the register comparisons are evaluated
// against the new depth, then loads store the new depth.
func (d *DRA) StepConfig(c Config, e encoding.Event) (Config, error) {
	sym, ok := d.Alphabet.ID(e.Label)
	if !ok {
		return c, fmt.Errorf("core: label %q outside DRA alphabet %s", e.Label, d.Alphabet)
	}
	closing := e.Kind == encoding.Close
	if closing {
		c.Depth--
	} else {
		c.Depth++
	}
	var le, ge RegSet
	for i := 0; i < d.Regs; i++ {
		if c.Regs[i] <= c.Depth {
			le = le.With(i)
		}
		if c.Regs[i] >= c.Depth {
			ge = ge.With(i)
		}
	}
	tr := d.Transition(c.State, sym, closing, le, ge)
	c.State = tr.Next
	for i := 0; i < d.Regs; i++ {
		if tr.Load.Has(i) {
			c.Regs[i] = c.Depth
		}
	}
	return c, nil
}

// draEvaluator adapts a table DRA to the Evaluator interface. Events with
// labels outside the alphabet poison the run (never accepting), matching
// the convention that such trees are outside every class under study.
type draEvaluator struct {
	d        *DRA
	cfg      Config
	poisoned bool

	// obs, when non-nil, receives register loads and comparison counts.
	// Both Step and stepSeg batch them in the plain fields below (no
	// atomics per event); flushObs drains them at run end (sequential) or
	// segment end (chunk-parallel).
	obs      *obs.Collector
	compares int64
	loads    int64

	// Chunk-parallel state (see chunk.go): whether the evaluator is inside
	// a segment simulation, which registers still hold unknown entry values,
	// and the cached cut policy.
	seg      bool
	stale    RegSet
	cut      CutPolicy
	cutKnown bool
}

// SetObs implements Instrumented.
func (ev *draEvaluator) SetObs(c *obs.Collector) { ev.obs = c }

// flushObs reports the batched comparison and load counts; see obsFlusher.
func (ev *draEvaluator) flushObs() {
	if ev.obs != nil {
		ev.obs.RegisterCompares.Add(ev.compares)
		ev.obs.RegisterLoads.Add(ev.loads)
	}
	ev.compares, ev.loads = 0, 0
}

// Evaluator returns a fresh streaming evaluator for the automaton. Under
// the markup encoding Close events must carry labels; the term encoding is
// not supported by table DRAs (use the compiled blind evaluators instead).
func (d *DRA) Evaluator() Evaluator {
	compileHook(d)
	return &draEvaluator{d: d, cfg: d.InitialConfig()}
}

func (ev *draEvaluator) Reset() {
	ev.cfg = ev.d.InitialConfig()
	ev.poisoned = false
	ev.seg = false
	ev.stale = 0
	ev.compares, ev.loads = 0, 0
}

func (ev *draEvaluator) Step(e encoding.Event) {
	if ev.poisoned {
		return
	}
	if ev.seg {
		ev.stepSeg(e)
		return
	}
	cfg, err := ev.d.StepConfig(ev.cfg, e)
	if err != nil {
		ev.poisoned = true
		return
	}
	// Definition 2.1 evaluates both masks over every register. Loads are
	// not distinguishable from the outside here (StepConfig writes the
	// register file in place); stepSeg counts them where the transition's
	// load set is visible.
	ev.compares += int64(2 * ev.d.Regs)
	ev.cfg = cfg
}

func (ev *draEvaluator) Accepting() bool {
	return !ev.poisoned && ev.d.Accept[ev.cfg.State]
}

// CodeAlphabet implements BatchEvaluator.
func (ev *draEvaluator) CodeAlphabet() *alphabet.Alphabet { return ev.d.Alphabet }

// b2i is the branchless bool→int lowering (the compiler emits SETcc).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// StepBatch implements BatchEvaluator: StepConfig inlined over the batch —
// the depth update, the register compares (lowered to branchless mask
// builds over a range loop) and the table lookup all on the dense Sym, no
// per-event map access. Only valid outside segment simulation (the coded
// drivers Reset first, which clears segment mode). Compares are counted
// exactly as Step does — 2·Regs per non-poisoned event — and loads stay
// uncounted on the sequential path, also as Step does. The uint guard on
// the table index is the BCE shape cmd/bcegate enforces; it cannot fail on
// a table tablecheck proved well formed, and poisons on a corrupted one.
//
//treelint:plain
func (ev *draEvaluator) StepBatch(batch []encoding.CodedEvent) {
	if ev.poisoned {
		return
	}
	d := ev.d
	k := d.Alphabet.Size()
	r := uint(d.Regs)
	table := d.table
	cinc := int64(2 * d.Regs)
	state, depth := ev.cfg.State, ev.cfg.Depth
	regs := ev.cfg.Regs
	compares := ev.compares
	for _, e := range batch {
		if int(e.Sym) >= k {
			ev.poisoned = true
			break
		}
		depth += 1 - 2*int(e.Kind)
		var le, ge RegSet
		for i, rv := range regs {
			le |= RegSet(b2i(rv <= depth)) << uint(i)
			ge |= RegSet(b2i(rv >= depth)) << uint(i)
		}
		tag := 2*int(e.Sym) + int(e.Kind)
		j := uint(state*2*k+tag)<<(2*r) | uint(le)<<r | uint(ge)
		if j >= uint(len(table)) {
			ev.poisoned = true
			break
		}
		tr := table[j]
		state = tr.Next
		for i := range regs {
			if tr.Load.Has(i) {
				regs[i] = depth
			}
		}
		compares += cinc
	}
	ev.cfg.State, ev.cfg.Depth = state, depth
	ev.compares = compares
}

// SelectBatch implements BatchEvaluator. Index guards as in StepBatch.
//
//treelint:plain
func (ev *draEvaluator) SelectBatch(batch []encoding.CodedEvent, hits []int32) []int32 {
	if ev.poisoned {
		return hits
	}
	d := ev.d
	k := d.Alphabet.Size()
	r := uint(d.Regs)
	table := d.table
	cinc := int64(2 * d.Regs)
	acc := d.Accept
	state, depth := ev.cfg.State, ev.cfg.Depth
	regs := ev.cfg.Regs
	compares := ev.compares
	for bi, e := range batch {
		if int(e.Sym) >= k {
			ev.poisoned = true
			break
		}
		depth += 1 - 2*int(e.Kind)
		var le, ge RegSet
		for i, rv := range regs {
			le |= RegSet(b2i(rv <= depth)) << uint(i)
			ge |= RegSet(b2i(rv >= depth)) << uint(i)
		}
		tag := 2*int(e.Sym) + int(e.Kind)
		j := uint(state*2*k+tag)<<(2*r) | uint(le)<<r | uint(ge)
		if j >= uint(len(table)) {
			ev.poisoned = true
			break
		}
		tr := table[j]
		state = tr.Next
		for i := range regs {
			if tr.Load.Has(i) {
				regs[i] = depth
			}
		}
		compares += cinc
		if e.Kind == encoding.Open {
			if a := uint(state); a < uint(len(acc)) && acc[a] {
				hits = append(hits, int32(bi))
			}
		}
	}
	ev.cfg.State, ev.cfg.Depth = state, depth
	ev.compares = compares
	return hits
}
