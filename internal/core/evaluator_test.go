package core

import (
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/encoding"
	"stackless/internal/tree"
)

// Direct unit tests for the ELFromQL/ALFromQL wrappers (previously only
// exercised through the end-to-end recognizers), including the
// unspecified-after-Close convention: a node-selecting evaluator's
// Accepting value after Close events is unspecified (Section 2.3), so the
// wrappers must never consult it there.

// mockQL selects nodes whose label is in sel, tracked with an explicit
// label stack. After Close events its Accepting value is deliberately
// garbage when poisonAfterClose is set, and every Accepting call made
// while the last event was a Close is counted — the wrappers must make
// none.
type mockQL struct {
	sel              map[string]bool
	poisonAfterClose bool

	stack           []string
	lastWasClose    bool
	calls           int
	callsAfterClose int
}

func (m *mockQL) Reset() {
	m.stack = m.stack[:0]
	m.lastWasClose = false
}

func (m *mockQL) Step(e encoding.Event) {
	if e.Kind == encoding.Open {
		m.stack = append(m.stack, e.Label)
		m.lastWasClose = false
		return
	}
	if n := len(m.stack); n > 0 {
		m.stack = m.stack[:n-1]
	}
	m.lastWasClose = true
}

func (m *mockQL) Accepting() bool {
	m.calls++
	if m.lastWasClose {
		m.callsAfterClose++
		if m.poisonAfterClose {
			return m.calls%2 == 0 // garbage: alternates per call
		}
	}
	return len(m.stack) > 0 && m.sel[m.stack[len(m.stack)-1]]
}

func runWrapper(w Evaluator, events []encoding.Event) bool {
	w.Reset()
	for _, e := range events {
		w.Step(e)
	}
	return w.Accepting()
}

func TestELALWrapperVerdicts(t *testing.T) {
	cases := []struct {
		doc    string
		sel    []string
		wantEL bool // some leaf selected
		wantAL bool // every leaf selected
	}{
		{"a", []string{"a"}, true, true},
		{"a", []string{"b"}, false, false},
		{"a(b,c)", []string{"b"}, true, false},
		{"a(b,c)", []string{"b", "c"}, true, true},
		{"a(b(c),b)", []string{"b"}, true, false},
		{"a(b(c),b)", []string{"c", "b"}, true, true},
		{"a(a(a(a)))", []string{"a"}, true, true},
		{"a(a(a(a)))", []string{"b"}, false, false},
		{"a(b,b,b,c)", []string{"b"}, true, false},
		{"b(a(c,c),a(c))", []string{"c"}, true, true},
	}
	for _, tc := range cases {
		for _, poison := range []bool{false, true} {
			sel := map[string]bool{}
			for _, s := range tc.sel {
				sel[s] = true
			}
			events := encoding.Markup(tree.MustParse(tc.doc))
			inner := &mockQL{sel: sel, poisonAfterClose: poison}
			if got := runWrapper(ELFromQL(inner), events); got != tc.wantEL {
				t.Errorf("EL(%s, sel=%v, poison=%v) = %v, want %v", tc.doc, tc.sel, poison, got, tc.wantEL)
			}
			if inner.callsAfterClose != 0 {
				t.Errorf("EL(%s): %d Accepting calls after Close events (unspecified there)", tc.doc, inner.callsAfterClose)
			}
			inner = &mockQL{sel: sel, poisonAfterClose: poison}
			if got := runWrapper(ALFromQL(inner), events); got != tc.wantAL {
				t.Errorf("AL(%s, sel=%v, poison=%v) = %v, want %v", tc.doc, tc.sel, poison, got, tc.wantAL)
			}
			if inner.callsAfterClose != 0 {
				t.Errorf("AL(%s): %d Accepting calls after Close events (unspecified there)", tc.doc, inner.callsAfterClose)
			}
		}
	}
}

// TestELALWrapperEmptyStream pins the boundary convention: with no events,
// EL rejects (no leaf was selected) and AL rejects too (started is false —
// the empty stream encodes no tree).
func TestELALWrapperEmptyStream(t *testing.T) {
	inner := &mockQL{sel: map[string]bool{"a": true}}
	if runWrapper(ELFromQL(inner), nil) {
		t.Error("EL accepts the empty stream")
	}
	if runWrapper(ALFromQL(inner), nil) {
		t.Error("AL accepts the empty stream")
	}
}

// TestELWrapperFreezesAfterMatch: once a selected leaf is seen, the EL
// wrapper's verdict is frozen — later events (including rejected leaves)
// cannot unmatch it, and the inner machine is no longer stepped.
func TestELWrapperFreezesAfterMatch(t *testing.T) {
	inner := &mockQL{sel: map[string]bool{"b": true}}
	w := ELFromQL(inner)
	events := encoding.Markup(tree.MustParse("a(b,c,c,c)"))
	w.Reset()
	for i, e := range events {
		w.Step(e)
		matchedYet := i >= 2 // b's Close is event index 2
		if w.Accepting() != matchedYet {
			t.Fatalf("event %d: Accepting = %v, want %v", i, w.Accepting(), matchedYet)
		}
	}
	// The wrapper froze at b's Close: the inner machine never saw the
	// remaining events, so its stack still holds [a b].
	if len(inner.stack) != 2 {
		t.Fatalf("inner stepped after the match: stack %v", inner.stack)
	}
	if inner.callsAfterClose != 0 {
		t.Fatalf("inner consulted after Close: %d", inner.callsAfterClose)
	}
}

// TestALWrapperFailsOnFirstRejectedLeaf: the AL wrapper latches failure at
// the first leaf read in a rejecting state.
func TestALWrapperFailsOnFirstRejectedLeaf(t *testing.T) {
	inner := &mockQL{sel: map[string]bool{"b": true}}
	w := ALFromQL(inner)
	events := encoding.Markup(tree.MustParse("a(b,c,b)"))
	w.Reset()
	failedAt := -1
	for i, e := range events {
		w.Step(e)
		if failedAt < 0 && !w.Accepting() && i > 0 {
			failedAt = i
		}
	}
	if failedAt != 4 { // c's Close is event index 4: the first rejected leaf
		t.Fatalf("failure latched at event %d, want 4", failedAt)
	}
	if w.Accepting() {
		t.Fatal("AL accepted despite a rejected leaf")
	}
}

// TestWrapperVariantSelection: the wrappers upgrade to the chunk-parallel
// variants exactly when the inner machine is Chunkable.
func TestWrapperVariantSelection(t *testing.T) {
	mock := &mockQL{sel: map[string]bool{}}
	if _, ok := ELFromQL(mock).(*elWrapper); !ok {
		t.Errorf("EL over a plain evaluator: got %T, want *elWrapper", ELFromQL(mock))
	}
	if _, ok := ALFromQL(mock).(*alWrapper); !ok {
		t.Errorf("AL over a plain evaluator: got %T, want *alWrapper", ALFromQL(mock))
	}
	if _, ok := ELFromQL(mock).(Chunkable); ok {
		t.Error("EL over a plain evaluator must not claim chunkability")
	}

	tag := NewTagDFA(alphabet.Letters("ab"), 1, 0)
	chunkInner := tag.Evaluator()
	if _, ok := chunkInner.(Chunkable); !ok {
		t.Fatal("tag evaluator is not chunkable")
	}
	el := ELFromQL(chunkInner)
	if _, ok := el.(*chunkableEL); !ok {
		t.Errorf("EL over a chunkable inner: got %T, want *chunkableEL", el)
	}
	if _, ok := el.(Chunkable); !ok {
		t.Error("chunkable EL wrapper does not implement Chunkable")
	}
	al := ALFromQL(chunkInner)
	if _, ok := al.(*chunkableAL); !ok {
		t.Errorf("AL over a chunkable inner: got %T, want *chunkableAL", al)
	}
	if _, ok := al.(Chunkable); !ok {
		t.Error("chunkable AL wrapper does not implement Chunkable")
	}
}
