// Lint gate: every depth-register automaton this repository constructs
// must pass dralint with zero findings at Warning severity or above. The
// package is core_test to break the cycle core → dralint → core.
package core_test

import (
	"math/rand"
	"strings"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/dralint"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
)

func gate(t *testing.T, name string, d *core.DRA, restricted bool) {
	t.Helper()
	diags := dralint.LintWith(d, dralint.Config{RequireRestricted: restricted})
	for _, di := range dralint.Filter(diags, dralint.Warning) {
		t.Errorf("%s: %s", name, di)
	}
}

// TestLintGateExamples holds the hand-built paper machines to the gate.
func TestLintGateExamples(t *testing.T) {
	gate(t, "Example22", core.Example22(), false)
	gate(t, "Example26", core.Example26(), true)
	gate(t, "Example27Minimal", core.Example27Minimal(), true)
	for _, expr := range []string{"ab*", "(ab)*", "a*|b*", ".*a", "(b|ab*a)*"} {
		gate(t, "Example25/"+expr, core.Example25(rex.MustCompile(expr, alphabet.Letters("ab"))), true)
	}
	for _, chain := range [][]string{{"a"}, {"b", "a"}, {"a", "b", "c"}, {"a", "a", "b", "b"}} {
		d, err := core.ChainPatternDRA(alphabet.Letters("abc"), chain)
		if err != nil {
			t.Fatal(err)
		}
		gate(t, "ChainPatternDRA", d, true)
	}
}

// TestLintGateFormalDRA holds the Proposition 2.3 translation to the gate,
// over the paper figures and random HAR languages. In particular the
// register remap must leave no unused registers (see
// TestFormalDRARegisterCount).
func TestLintGateFormalDRA(t *testing.T) {
	for _, expr := range []string{paperfigs.Fig3aRegex, paperfigs.Fig3bRegex, paperfigs.Fig3cRegex, "ab*", "b*a"} {
		an := classify.Analyze(rex.MustCompile(expr, paperfigs.GammaABC()))
		d, err := core.FormalDRA(an, 0)
		if err != nil {
			t.Fatal(err)
		}
		gate(t, "FormalDRA/"+expr, d, true)
	}
	rng := rand.New(rand.NewSource(43))
	alph := alphabet.Letters("ab")
	tested := 0
	for i := 0; i < 4000 && tested < 30; i++ {
		an := classify.Analyze(dfa.Random(rng, alph, 1+rng.Intn(5)))
		if ok, _ := an.HAR(); !ok || len(an.Comps) > 8 {
			continue
		}
		// An empty language yields a DRA that (correctly) rejects every
		// tree; the vacuous-acceptance warning is right about it, so only
		// nonempty languages are held to the gate.
		if empty := func() bool {
			for q, r := range dfa.ReachableFrom(an.D.Adjacency(), an.D.Start) {
				if r && an.D.Accept[q] {
					return false
				}
			}
			return true
		}(); empty {
			continue
		}
		d, err := core.FormalDRA(an, 0)
		if err != nil {
			t.Fatal(err)
		}
		tested++
		gate(t, "FormalDRA/random", d, true)
	}
	if tested < 10 {
		t.Fatalf("only %d random HAR samples; seed drifted?", tested)
	}
}

// TestSetForAllTestsRestrictedLintsClean is the linter-backed contract of
// the two completion helpers: the restricted variant satisfies §2.2 on
// every machine, and the plain variant is flagged as soon as a kept
// register can sit above the depth.
func TestSetForAllTestsRestrictedLintsClean(t *testing.T) {
	build := func(restricted bool) *core.DRA {
		alph := alphabet.Letters("ab")
		d := core.NewDRA(alph, 2, 0, 1)
		d.Accept[1] = true
		for q := 0; q < 2; q++ {
			for sym := 0; sym < 2; sym++ {
				next := q
				if sym == 1 {
					next = 1
				}
				if restricted {
					d.SetForAllTestsRestricted(q, sym, false, 0, next)
					d.SetForAllTestsRestricted(q, sym, true, 0, q)
				} else {
					d.SetForAllTests(q, sym, false, 0, next)
					d.SetForAllTests(q, sym, true, 0, q)
				}
			}
		}
		return d
	}
	cfg := dralint.Config{RequireRestricted: true}
	restrictedDiags := dralint.LintWith(build(true), cfg)
	if n := len(dralint.ByKind(restrictedDiags)[dralint.KindUnrestricted]); n != 0 {
		t.Errorf("SetForAllTestsRestricted machine has %d unrestricted findings", n)
	}
	if !build(true).IsRestricted() {
		t.Error("IsRestricted disagrees with the linter on the restricted machine")
	}
	plainDiags := dralint.LintWith(build(false), cfg)
	if len(dralint.ByKind(plainDiags)[dralint.KindUnrestricted]) == 0 {
		t.Error("SetForAllTests machine not flagged unrestricted")
	}
	if build(false).IsRestricted() {
		t.Error("IsRestricted disagrees with the linter on the plain machine")
	}
}

// TestNewDRATableCap: the table allocation is guarded — the panic names
// the computed size instead of letting the runtime OOM.
func TestNewDRATableCap(t *testing.T) {
	check := func(states, regs int) (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		core.NewDRA(alphabet.Letters("ab"), states, 0, regs)
		return ""
	}
	if msg := check(1<<20, 8); msg == "" {
		t.Fatal("no panic for a table far above the cap")
	} else if !strings.Contains(msg, "entries") {
		t.Errorf("cap panic does not name the size: %q", msg)
	}
	if msg := check(1, 17); msg == "" {
		t.Fatal("no panic for 17 registers")
	}
	if msg := check(4, 2); msg != "" {
		t.Errorf("small machine panicked: %q", msg)
	}
}

func TestTableEntries(t *testing.T) {
	for _, c := range []struct {
		states, alph, regs int
		entries            uint64
		ok                 bool
	}{
		{1, 1, 0, 2, true},
		{3, 2, 1, 3 * 2 * 2 * 4, true},
		{2, 3, 2, 2 * 2 * 3 * 16, true},
		{1 << 20, 2, 8, uint64(1<<20) * 2 * 2 * (1 << 16), false},
		{1, 1, 17, 0, false},
		{-1, 2, 0, 0, false},
		{1, -1, 0, 0, false},
	} {
		entries, ok := core.TableEntries(c.states, c.alph, c.regs)
		if ok != c.ok || (ok && entries != c.entries) {
			t.Errorf("TableEntries(%d,%d,%d) = (%d,%v), want (%d,%v)",
				c.states, c.alph, c.regs, entries, ok, c.entries, c.ok)
		}
	}
	// Saturation: the reported size never wraps silently.
	if entries, ok := core.TableEntries(1<<30, 1<<30, 16); ok || entries == 0 {
		t.Errorf("huge table reported as (%d,%v)", entries, ok)
	}
}
