package core

import (
	"io"

	"stackless/internal/alphabet"
	"stackless/internal/encoding"
	"stackless/internal/obs"
)

// Compiled symbol-coded pipeline (DESIGN.md §11). Machines that can lower
// their transitions into flat state×symbol tables implement BatchEvaluator;
// the coded drivers below batch the event stream through encoding.Batcher
// and step whole batches per call, eliminating the per-event interface
// dispatch and label hashing of the string pipeline. Machines that cannot
// compile (the pushdown fallback, the EL/AL wrappers) fall back to the
// generic Select/Recognize path — the coded entry points are drop-in
// replacements with identical results either way.

// BatchEvaluator is the compiled contract: an Evaluator that also steps
// dense symbol-coded batches. StepBatch(b) must be equivalent to Step on
// each event of b with the labels decoded under CodeAlphabet — including
// the poison convention: the unknown sentinel Sym (= CodeAlphabet().Size())
// behaves exactly like a label outside the alphabet.
type BatchEvaluator interface {
	Evaluator
	// CodeAlphabet returns the alphabet whose Coder produces the codes
	// StepBatch and SelectBatch consume.
	CodeAlphabet() *alphabet.Alphabet
	// StepBatch processes a coded batch.
	StepBatch(batch []encoding.CodedEvent)
	// SelectBatch is StepBatch that also appends to hits the batch-relative
	// indices of Open events after which the machine pre-selects, returning
	// the extended slice.
	SelectBatch(batch []encoding.CodedEvent, hits []int32) []int32
}

// CodedSegmentKernel is SegmentKernel over coded events: the all-states
// segment simulation of the chunk-parallel engine with the label resolution
// hoisted out (internal/parallel codes the buffered stream once and hands
// each fork coded segments).
type CodedSegmentKernel interface {
	// SimulateSegmentCoded is SimulateSegment over a coded segment.
	SimulateSegmentCoded(seg []encoding.CodedEvent, cands *CandSet) []SegmentExit
}

// CodedCapable reports whether ev runs the compiled pipeline — used by the
// public API to report which pipeline a run took.
func CodedCapable(ev Evaluator) bool {
	_, ok := ev.(BatchEvaluator)
	return ok
}

// SelectCoded is Select through the compiled pipeline when ev supports it,
// falling back to Select otherwise. Matches, order and errors are identical
// to Select's.
func SelectCoded(ev Evaluator, src encoding.Source, fn func(Match)) (int, error) {
	return SelectCodedObs(ev, nil, src, fn)
}

// SelectCodedObs is SelectCoded reporting into a collector, with the same
// split as SelectObs: a nil collector runs the plain kernel.
func SelectCodedObs(ev Evaluator, c *obs.Collector, src encoding.Source, fn func(Match)) (int, error) {
	be, ok := ev.(BatchEvaluator)
	if !ok {
		return SelectObs(ev, c, src, fn)
	}
	if c == nil {
		return selectCodedPlain(be, src, fn)
	}
	return selectCodedObs(be, c, src, fn)
}

// selectCodedPlain is the uninstrumented coded Select kernel. Position and
// depth at a hit both derive from the count of Open events before it
// (depth after event j is depth₀ + 2·opens − (j+1)), so the driver never
// replays the batch event by event: it counts opens branchlessly up to
// each hit, skips the tail after the last one, and advances whole hitless
// batches from the batcher's Open count alone. Match labels come from the
// batcher's label window, not the code alphabet: machines that accept
// regardless of the label (the synopsis ⊤ state) can select events whose
// Sym is the lossy unknown sentinel.
//
//treelint:plain
func selectCodedPlain(be BatchEvaluator, src encoding.Source, fn func(Match)) (int, error) {
	be.Reset()
	//treelint:partial run prologue: one batcher+coder per run, O(1) and outside the per-event loop
	b := encoding.NewBatcher(src, alphabet.NewCoder(be.CodeAlphabet()), encoding.DefaultBatch)
	events := 0
	pos, depth := -1, 0
	var hits []int32
	for {
		batch, opens, err := b.NextBatch()
		if len(batch) > 0 {
			events += len(batch)
			if fn == nil {
				be.StepBatch(batch)
			} else {
				hits = be.SelectBatch(batch, hits[:0])
				o, prev := 0, 0
				for _, h := range hits {
					for j := prev; j < int(h); j++ {
						o += 1 - int(batch[j].Kind)
					}
					o++ // the hit itself is an Open
					prev = int(h) + 1
					fn(Match{Pos: pos + o, Depth: depth + 2*o - prev, Label: b.BatchLabel(int(h))})
				}
			}
			pos += opens
			depth += 2*opens - len(batch)
		}
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
	}
}

// selectCodedObs is the instrumented twin: every batch is walked to feed
// the per-open depth histogram, matching SelectObs's samples exactly.
func selectCodedObs(be BatchEvaluator, c *obs.Collector, src encoding.Source, fn func(Match)) (int, error) {
	be.Reset()
	b := encoding.NewBatcher(src, alphabet.NewCoder(be.CodeAlphabet()), encoding.DefaultBatch)
	events := 0
	matches := 0
	pos, depth := -1, 0
	var hits []int32
	for {
		batch, _, err := b.NextBatch()
		if len(batch) > 0 {
			events += len(batch)
			hits = be.SelectBatch(batch, hits[:0])
			hi := 0
			for i := range batch {
				if batch[i].Kind != encoding.Open {
					depth--
					continue
				}
				pos++
				depth++
				c.Depth.Observe(depth)
				if hi < len(hits) && hits[hi] == int32(i) {
					hi++
					matches++
					// The coded driver confirms hits only once the batch is
					// stepped: this match was decided at batch index i and
					// emits after index len(batch)-1.
					c.Latency.Observe(len(batch) - 1 - i)
					if fn != nil {
						fn(Match{Pos: pos, Depth: depth, Label: b.BatchLabel(i)})
					}
				}
			}
		}
		if err == io.EOF {
			flushRun(c, be, int64(events), int64(matches))
			return events, nil
		}
		if err != nil {
			flushRun(c, be, int64(events), int64(matches))
			return events, err
		}
	}
}

// RecognizeCoded is Recognize through the compiled pipeline when ev
// supports it, falling back to Recognize otherwise.
func RecognizeCoded(ev Evaluator, src encoding.Source) (bool, error) {
	return RecognizeCodedObs(ev, nil, src)
}

// RecognizeCodedObs is RecognizeCoded reporting into a collector (nil:
// plain kernel, as in RecognizeObs).
func RecognizeCodedObs(ev Evaluator, c *obs.Collector, src encoding.Source) (bool, error) {
	be, ok := ev.(BatchEvaluator)
	if !ok {
		return RecognizeObs(ev, c, src)
	}
	if c == nil {
		return recognizeCodedPlain(be, src)
	}
	return recognizeCodedObs(be, c, src)
}

// recognizeCodedPlain is the uninstrumented coded Recognize kernel.
//
//treelint:plain
func recognizeCodedPlain(be BatchEvaluator, src encoding.Source) (bool, error) {
	be.Reset()
	//treelint:partial run prologue: one batcher+coder per run, O(1) and outside the per-event loop
	b := encoding.NewBatcher(src, alphabet.NewCoder(be.CodeAlphabet()), encoding.DefaultBatch)
	for {
		batch, _, err := b.NextBatch()
		be.StepBatch(batch)
		if err == io.EOF {
			return be.Accepting(), nil
		}
		if err != nil {
			return false, err
		}
	}
}

// recognizeCodedObs is the instrumented twin: the batch is stepped as a
// whole, then walked for the depth histogram.
func recognizeCodedObs(be BatchEvaluator, c *obs.Collector, src encoding.Source) (bool, error) {
	be.Reset()
	b := encoding.NewBatcher(src, alphabet.NewCoder(be.CodeAlphabet()), encoding.DefaultBatch)
	events := 0
	depth := 0
	for {
		batch, _, err := b.NextBatch()
		events += len(batch)
		be.StepBatch(batch)
		for i := range batch {
			if batch[i].Kind == encoding.Open {
				depth++
				c.Depth.Observe(depth)
			} else {
				depth--
			}
		}
		if err == io.EOF {
			flushRun(c, be, int64(events), 0)
			return be.Accepting(), nil
		}
		if err != nil {
			flushRun(c, be, int64(events), 0)
			return false, err
		}
	}
}
