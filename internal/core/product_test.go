package core

import (
	"errors"
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/encoding"
	"stackless/internal/rex"
)

// tagQL compiles a registerless markup tag DFA for a regex over alph.
func tagQL(t *testing.T, expr string, alph *alphabet.Alphabet) *TagDFA {
	t.Helper()
	l, err := rex.CompileString(expr, alph)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RegisterlessQL(classify.Analyze(l))
	if err != nil {
		t.Fatalf("RegisterlessQL(%s): %v", expr, err)
	}
	return d
}

func blindQL(t *testing.T, expr string, alph *alphabet.Alphabet) *TagDFA {
	t.Helper()
	l, err := rex.CompileString(expr, alph)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BlindRegisterlessQL(classify.Analyze(l))
	if err != nil {
		t.Fatalf("BlindRegisterlessQL(%s): %v", expr, err)
	}
	return d
}

func TestProductConstruction(t *testing.T) {
	abc := alphabet.Letters("abc")
	m1 := tagQL(t, "a.*b", abc)
	m2 := tagQL(t, ".*a", alphabet.Letters("ab"))
	m3 := tagQL(t, "a.*c", alphabet.Letters("ac"))

	p, err := NewProductDFA([]*TagDFA{m1, m2, m3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Alphabet().Symbols(); len(got) != 3 {
		t.Errorf("union alphabet %v, want the 3 letters abc", got)
	}
	if p.Members() != 3 || p.MaskWords() != 1 {
		t.Errorf("Members=%d MaskWords=%d, want 3 and 1", p.Members(), p.MaskWords())
	}
	if p.TermEncoding() {
		t.Error("markup product reports term encoding")
	}
	if p.NumStates() < 2 {
		t.Errorf("NumStates = %d, suspiciously small", p.NumStates())
	}
	if s := p.Start(); s < 0 || s >= p.NumStates() {
		t.Errorf("start %d outside live rows [0,%d)", s, p.NumStates())
	}
	mm := p.MemberMachines()
	if len(mm) != 3 || mm[0] != m1 || mm[1] != m2 || mm[2] != m3 {
		t.Error("MemberMachines does not preserve member order")
	}
	tab, masks, anyAcc, stride, words, dead := p.CompiledProduct()
	if int(stride) != 2*(p.Alphabet().Size()+1) || int(words) != 1 || int(dead) != p.NumStates() {
		t.Errorf("compiled dims stride=%d words=%d dead=%d", stride, words, dead)
	}
	if len(tab) != (p.NumStates()+1)*int(stride) || len(masks) != p.NumStates()+1 || len(anyAcc) != p.NumStates()+1 {
		t.Errorf("compiled lengths tab=%d masks=%d anyAcc=%d", len(tab), len(masks), len(anyAcc))
	}
}

func TestProductConstructionErrors(t *testing.T) {
	abc := alphabet.Letters("abc")
	markup := tagQL(t, "a.*b", abc)
	term := blindQL(t, "a.*b", abc)

	if _, err := NewProductDFA(nil, 0); err == nil {
		t.Error("product of zero members built")
	}
	if _, err := NewProductDFA([]*TagDFA{markup, term}, 0); err == nil {
		t.Error("mixed-encoding product built")
	}
	if _, err := NewProductDFA([]*TagDFA{markup, tagQL(t, ".*a", abc)}, 1); !errors.Is(err, ErrProductTooLarge) {
		t.Errorf("maxStates=1 gave %v, want ErrProductTooLarge", err)
	}
}

// TestProductVsMembersRandom drives the product's string path and each
// member's string path over random trees (including out-of-union labels) and
// checks bit-for-bit mask agreement after every event. The bounded BFS in
// internal/tablecheck proves the same property exhaustively within limits;
// this is the cheap randomized version over deeper, wider trees.
func TestProductVsMembersRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name  string
		blind bool
	}{{"markup", false}, {"term", true}} {
		t.Run(tc.name, func(t *testing.T) {
			build := tagQL
			if tc.blind {
				build = blindQL
			}
			members := []*TagDFA{
				build(t, "a.*b", alphabet.Letters("ab")),
				build(t, ".*a", alphabet.Letters("abc")),
				build(t, "a.*c", alphabet.Letters("ac")),
			}
			p, err := NewProductDFA(members, 0)
			if err != nil {
				t.Fatal(err)
			}
			pev := p.Evaluator()
			mevs := make([]Evaluator, len(members))
			labels := []string{"a", "b", "c", "zz"} // zz: outside every member
			for trial := 0; trial < 200; trial++ {
				tr := randomTree(rng, labels, 1+rng.Intn(20))
				events := encoding.Markup(tr)
				if tc.blind {
					events = encoding.Term(tr)
				}
				pev.Reset()
				for i := range mevs {
					mevs[i] = members[i].Evaluator()
				}
				for _, e := range events {
					pev.Step(e)
					mask := pev.AcceptMask()
					any := false
					for i, mu := range mevs {
						mu.Step(e)
						got := mask[i/64]&(1<<(uint(i)%64)) != 0
						if want := mu.Accepting(); got != want {
							t.Fatalf("trial %d after %v: mask bit %d = %v, member says %v", trial, e, i, got, want)
						}
						any = any || mu.Accepting()
					}
					if pev.Accepting() != any {
						t.Fatalf("trial %d after %v: product Accepting %v, disjunction %v", trial, e, pev.Accepting(), any)
					}
				}
			}
		})
	}
}

func TestProductEvaluatorAtClamps(t *testing.T) {
	p, err := NewProductDFA([]*TagDFA{tagQL(t, "a.*b", alphabet.Letters("ab"))}, 0)
	if err != nil {
		t.Fatal(err)
	}
	dead := int32(p.NumStates())
	for _, s := range []int32{-1, dead + 1, dead + 100} {
		if ev := p.EvaluatorAt(s); ev.State() != dead {
			t.Errorf("EvaluatorAt(%d) = state %d, want dead %d", s, ev.State(), dead)
		}
	}
	if ev := p.EvaluatorAt(int32(p.Start())); ev.State() != int32(p.Start()) {
		t.Error("EvaluatorAt(start) did not position at start")
	}
}

// TestProductSimulateChunkCoded: the all-states pass must agree with running
// StepBatch from each state individually, for every entry state including
// the dead row.
func TestProductSimulateChunkCoded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	abc := alphabet.Letters("abc")
	p, err := NewProductDFA([]*TagDFA{tagQL(t, "a.*b", abc), tagQL(t, ".*a", abc)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	coder := alphabet.NewCoder(p.Alphabet())
	var exits []int32
	for trial := 0; trial < 50; trial++ {
		tr := randomTree(rng, []string{"a", "b", "c", "zz"}, 1+rng.Intn(15))
		coded := encoding.CodeEvents(coder, encoding.Markup(tr), nil)
		exits = p.Evaluator().SimulateChunkCoded(coded, exits)
		if len(exits) != p.NumStates()+1 {
			t.Fatalf("exit vector length %d, want %d", len(exits), p.NumStates()+1)
		}
		for s := 0; s <= p.NumStates(); s++ {
			ev := p.EvaluatorAt(int32(s))
			ev.StepBatch(coded)
			if ev.State() != exits[s] {
				t.Fatalf("trial %d entry %d: simulate says %d, StepBatch says %d", trial, s, exits[s], ev.State())
			}
		}
	}
}

// TestProductSelectBatchMasks: hits and mask words must match a reference
// walk of the string path.
func TestProductSelectBatchMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	abc := alphabet.Letters("abc")
	p, err := NewProductDFA([]*TagDFA{tagQL(t, "a.*b", abc), tagQL(t, ".*a", abc), tagQL(t, "a.*c", abc)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	coder := alphabet.NewCoder(p.Alphabet())
	words := p.MaskWords()
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(rng, []string{"a", "b", "c", "zz"}, 1+rng.Intn(20))
		events := encoding.Markup(tr)
		coded := encoding.CodeEvents(coder, events, nil)

		ev := p.Evaluator()
		hits, masks := ev.SelectBatchMasks(coded, nil, nil)
		if len(masks) != len(hits)*words {
			t.Fatalf("trial %d: %d hits but %d mask words", trial, len(hits), len(masks))
		}

		ref := p.Evaluator()
		var wantHits []int32
		var wantMasks []uint64
		for i, e := range events {
			ref.Step(e)
			if e.Kind == encoding.Open && ref.Accepting() {
				wantHits = append(wantHits, int32(i))
				wantMasks = append(wantMasks, ref.AcceptMask()...)
			}
		}
		if len(hits) != len(wantHits) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(hits), len(wantHits))
		}
		for j := range hits {
			if hits[j] != wantHits[j] {
				t.Fatalf("trial %d hit %d: index %d, want %d", trial, j, hits[j], wantHits[j])
			}
			for w := 0; w < words; w++ {
				if masks[j*words+w] != wantMasks[j*words+w] {
					t.Fatalf("trial %d hit %d: mask word %d = %#x, want %#x", trial, j, w, masks[j*words+w], wantMasks[j*words+w])
				}
			}
		}
	}
}
