package core

import (
	"fmt"
	"strings"

	"stackless/internal/classify"
)

// Verification surface of the compiled machines (internal/tablecheck).
//
// The compiled tables of DESIGN.md §11 are the artifacts the hot path
// actually executes, so they get their own static-analysis layer: the
// accessors below expose the live backing arrays (never copies — the
// corruption tests in internal/tablecheck flip entries in place), the
// CompileHook lets a debug build verify every table the moment it is
// built, and Snapshotter lets the bounded-equivalence search save and
// restore full runtime configurations instead of replaying event prefixes.

// Pipeline identifies which event pipeline an evaluation ran: the compiled
// symbol-coded batch path or the per-event label-resolving string path.
// The underlying type is string so existing formatting (%s) and emptiness
// checks keep working.
type Pipeline string

// The two pipelines of DESIGN.md §11.
const (
	// PipelineCoded: dense transition tables over symbol-coded batches.
	PipelineCoded Pipeline = "coded"
	// PipelineString: per-event interface dispatch with label resolution.
	PipelineString Pipeline = "string"
)

// CompileHook, when non-nil, is called with every machine whose compiled
// form was just built: *TagDFA (after the lazy table build),
// *StacklessEvaluator (after construction), *SynopsisMachine (after
// construction; its memo tables fill lazily), and *DRA (per Evaluator call;
// its table is caller-built). Release builds leave it nil and pay one nil
// check per compilation — never per event. internal/tablecheck installs a
// hook that statically verifies each table, so tests catch a malformed
// compilation at the source instead of as a downstream wrong answer.
var CompileHook func(m any)

// compileHook invokes CompileHook if installed.
func compileHook(m any) {
	if h := CompileHook; h != nil {
		h(m)
	}
}

// SavedConfig is an opaque snapshot of an evaluator's runtime
// configuration, produced by Snapshotter.SaveConfig. Key is a canonical
// encoding of the configuration, used by the bounded-equivalence search to
// deduplicate joint states; configurations with equal keys behave
// identically on every future event. Parked reports that the configuration
// is absorbing with constant observables — every future event leaves
// Accepting and selection behavior unchanged — so a search may stop
// extending prefixes once both sides of a comparison are parked.
type SavedConfig interface {
	Key() string
	Parked() bool
}

// Snapshotter is implemented by evaluators whose complete runtime
// configuration can be captured and restored. RestoreConfig must deep-copy
// any slice-backed state (register files, record stacks) in both
// directions, so a snapshot stays valid however the machine runs on.
type Snapshotter interface {
	Evaluator
	SaveConfig() SavedConfig
	RestoreConfig(SavedConfig)
}

// Exported views of the cSel entry layout (stackless.go), so the table
// verifier can decompose entries the way the kernels do.
const (
	// SelAccBit marks an open-column entry whose target state accepts.
	SelAccBit = selAccBit
	// SelPushBit marks an open-column entry that leaves the source SCC.
	SelPushBit = selPushBit
	// SelStateMask extracts the target state from an open-column entry.
	SelStateMask = selStateMask
)

// --- TagDFA ---

// CompiledTable builds (if needed) and returns the live compiled form: the
// flat (n+1)×2(k+1) transition table, the acceptance vector, the row
// stride 2(k+1) and the dead-state id n. The slices are the backing arrays
// the batch kernels index, not copies.
func (t *TagDFA) CompiledTable() (tab []int32, acc []bool, stride, dead int32) {
	return t.compiled()
}

// CompiledEarliest builds (if needed) and returns the live earliest-
// decision flags, one per compiled row including the dead row (DESIGN.md
// §14). The slice is the backing array NoFutureMatches reads, not a copy.
func (t *TagDFA) CompiledEarliest() []int32 {
	t.compiled()
	return t.cdec
}

// tagConfig is the saved configuration of a tagEvaluator.
type tagConfig struct {
	state    int
	poisoned bool
}

// Key implements SavedConfig.
func (c tagConfig) Key() string { return fmt.Sprintf("t%d,%v", c.state, c.poisoned) }

// Parked implements SavedConfig.
func (c tagConfig) Parked() bool { return c.poisoned }

// SaveConfig implements Snapshotter.
func (ev *tagEvaluator) SaveConfig() SavedConfig {
	return tagConfig{state: ev.state, poisoned: ev.poisoned}
}

// RestoreConfig implements Snapshotter.
func (ev *tagEvaluator) RestoreConfig(c SavedConfig) {
	tc := c.(tagConfig)
	ev.state, ev.poisoned = tc.state, tc.poisoned
}

// Machine returns the underlying automaton (verification).
func (ev *tagEvaluator) Machine() *TagDFA { return ev.t }

// --- StacklessEvaluator ---

// CompiledTables returns the live compiled tables of the Lemma 3.8
// machine: delta (n×(k+1), unknown column poisoned), the fused selection
// table sel (n×2(k+1)), the backtrack tables back ((k+1)×n; nil when
// blind) and backAny (n; nil otherwise), and the SCC component vector.
func (ev *StacklessEvaluator) CompiledTables() (delta, sel, back, backAny, comp []int32) {
	return ev.cDelta, ev.cSel, ev.cBack, ev.cBackAny, ev.cComp
}

// CompiledEarliest returns the live earliest-decision flags, one per state
// (DESIGN.md §14) — the backing array NoFutureMatches reads, not a copy.
func (ev *StacklessEvaluator) CompiledEarliest() []int32 { return ev.cDec }

// Analysis returns the classification the machine was compiled from.
func (ev *StacklessEvaluator) Analysis() *classify.Analysis { return ev.an }

// Blind reports whether the machine consumes the term encoding.
func (ev *StacklessEvaluator) Blind() bool { return ev.blind }

// stacklessConfig is the saved configuration of a StacklessEvaluator.
type stacklessConfig struct {
	state    int
	depth    int
	records  []record
	poisoned bool
}

// Key implements SavedConfig.
func (c stacklessConfig) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "s%d@%d,%v", c.state, c.depth, c.poisoned)
	for _, r := range c.records {
		fmt.Fprintf(&b, ";%d@%d", r.state, r.depth)
	}
	return b.String()
}

// Parked implements SavedConfig.
func (c stacklessConfig) Parked() bool { return c.poisoned }

// SaveConfig implements Snapshotter.
func (ev *StacklessEvaluator) SaveConfig() SavedConfig {
	c := stacklessConfig{state: ev.state, depth: ev.depth, poisoned: ev.poisoned}
	if len(ev.records) > 0 {
		c.records = append([]record(nil), ev.records...)
	}
	return c
}

// RestoreConfig implements Snapshotter. The record stack is copied again on
// the way in: the machine appends to it, and an append must never reach the
// snapshot's backing array.
func (ev *StacklessEvaluator) RestoreConfig(c SavedConfig) {
	sc := c.(stacklessConfig)
	ev.state, ev.depth, ev.poisoned = sc.state, sc.depth, sc.poisoned
	ev.records = append(ev.records[:0:0], sc.records...)
}

// --- DRA ---

// draConfig is the saved configuration of a draEvaluator.
type draConfig struct {
	state    int
	depth    int
	regs     []int
	poisoned bool
}

// Key implements SavedConfig.
func (c draConfig) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "d%d@%d,%v", c.state, c.depth, c.poisoned)
	for _, v := range c.regs {
		fmt.Fprintf(&b, ";%d", v)
	}
	return b.String()
}

// Parked implements SavedConfig.
func (c draConfig) Parked() bool { return c.poisoned }

// SaveConfig implements Snapshotter.
func (ev *draEvaluator) SaveConfig() SavedConfig {
	c := draConfig{state: ev.cfg.State, depth: ev.cfg.Depth, poisoned: ev.poisoned}
	c.regs = append([]int(nil), ev.cfg.Regs...)
	return c
}

// RestoreConfig implements Snapshotter. Segment-simulation state is
// cleared: snapshots capture sequential configurations only.
func (ev *draEvaluator) RestoreConfig(c SavedConfig) {
	dc := c.(draConfig)
	ev.cfg.State, ev.cfg.Depth, ev.poisoned = dc.state, dc.depth, dc.poisoned
	ev.cfg.Regs = append(ev.cfg.Regs[:0:0], dc.regs...)
	ev.seg = false
	ev.stale = 0
}

// Machine returns the underlying automaton (verification).
func (ev *draEvaluator) Machine() *DRA { return ev.d }

// --- SynopsisMachine ---

// MemoTables returns the live lazily-filled transition memos: open rows
// ([id][sym]) and close rows ([id][sym], or [id][0] when blind). Entries
// are state ids, the sentinels synTop/synBot (-1/-2), or -3 for a
// transition not yet computed.
func (m *SynopsisMachine) MemoTables() (open, close [][]int) {
	return m.openMemo, m.closeMemo
}

// Analysis returns the classification the machine was compiled from.
func (m *SynopsisMachine) Analysis() *classify.Analysis { return m.an }

// Blind reports whether the machine consumes the term encoding.
func (m *SynopsisMachine) Blind() bool { return m.blind }

// synopsisConfig is the saved configuration of a SynopsisMachine. The memo
// tables are a configuration-independent cache, so they are not captured.
type synopsisConfig struct {
	cur         int
	lastWasOpen bool
	poisoned    bool
}

// Key implements SavedConfig.
func (c synopsisConfig) Key() string {
	return fmt.Sprintf("y%d,%v,%v", c.cur, c.lastWasOpen, c.poisoned)
}

// Parked implements SavedConfig: ⊤ and ⊥ are absorbing sinks with constant
// observables (⊤ accepts and selects every Open, ⊥ neither), and poison is
// absorbing by definition.
func (c synopsisConfig) Parked() bool {
	return c.poisoned || c.cur == synTop || c.cur == synBot
}

// SaveConfig implements Snapshotter.
func (m *SynopsisMachine) SaveConfig() SavedConfig {
	return synopsisConfig{cur: m.cur, lastWasOpen: m.lastWasOpen, poisoned: m.poisoned}
}

// RestoreConfig implements Snapshotter.
func (m *SynopsisMachine) RestoreConfig(c SavedConfig) {
	sc := c.(synopsisConfig)
	m.cur, m.lastWasOpen, m.poisoned = sc.cur, sc.lastWasOpen, sc.poisoned
}

// --- negated (AL via (AL)ᶜ = E(Lᶜ)) ---

// InnerSynopsis returns the wrapped complement-language machine, so the
// verifier can check its tables and report under the AL machine's name.
func (n *negated) InnerSynopsis() *SynopsisMachine { return n.inner }

// SaveConfig implements Snapshotter by delegation: the wrapper itself is
// stateless.
func (n *negated) SaveConfig() SavedConfig { return n.inner.SaveConfig() }

// RestoreConfig implements Snapshotter.
func (n *negated) RestoreConfig(c SavedConfig) { n.inner.RestoreConfig(c) }
