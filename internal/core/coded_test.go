package core

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
)

// codedMachine is one compiled evaluator under differential test: the coded
// pipeline must agree with the string pipeline on every stream, including
// malformed ones and labels outside the alphabet ("zz" below).
type codedMachine struct {
	name  string
	fresh func() Evaluator
	blind bool // term encoding: closes carry no label
}

func codedMachines(t *testing.T) []codedMachine {
	t.Helper()
	an3a := classify.Analyze(paperfigs.Fig3a())
	an3b := classify.Analyze(paperfigs.Fig3b())
	an3c := classify.Analyze(paperfigs.Fig3c())
	cof, err := rex.CompileString("ab|ba", paperfigs.GammaABC())
	if err != nil {
		t.Fatal(err)
	}
	anCof := classify.Analyze(cof.Complement())

	mk := func(name string, blind bool, build func() (Evaluator, error)) codedMachine {
		if _, err := build(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return codedMachine{name: name, blind: blind, fresh: func() Evaluator {
			ev, _ := build()
			return ev
		}}
	}
	return []codedMachine{
		mk("tagdfa/markup", false, func() (Evaluator, error) {
			d, err := RegisterlessQL(an3a)
			if err != nil {
				return nil, err
			}
			return d.Evaluator(), nil
		}),
		mk("tagdfa/term", true, func() (Evaluator, error) {
			d, err := BlindRegisterlessQL(an3a)
			if err != nil {
				return nil, err
			}
			return d.Evaluator(), nil
		}),
		mk("stackless/markup", false, func() (Evaluator, error) { return StacklessQL(an3c) }),
		mk("stackless/term", true, func() (Evaluator, error) { return BlindStacklessQL(an3c) }),
		mk("synopsis/el", false, func() (Evaluator, error) { return RegisterlessEL(an3a) }),
		mk("synopsis/el-cofinite", false, func() (Evaluator, error) { return RegisterlessEL(anCof) }),
		mk("synopsis/al", false, func() (Evaluator, error) { return RegisterlessAL(an3b) }),
		mk("synopsis/al-term", true, func() (Evaluator, error) { return BlindRegisterlessAL(an3b) }),
		{name: "dra/example22", fresh: func() Evaluator { return Example22().Evaluator() }},
		{name: "dra/example26", fresh: func() Evaluator { return Example26().Evaluator() }},
		{name: "dra/example27", fresh: func() Evaluator { return Example27Minimal().Evaluator() }},
	}
}

// checkCodedParity runs the same stream through the string and coded
// pipelines and fails on any divergence in events, matches or acceptance.
func checkCodedParity(t *testing.T, m codedMachine, events []encoding.Event) {
	t.Helper()
	ev := m.fresh()
	if !CodedCapable(ev) {
		t.Fatalf("%s: evaluator does not implement BatchEvaluator", m.name)
	}
	var want, got []Match
	nWant, err1 := Select(ev, encoding.NewSliceSource(events), func(mm Match) { want = append(want, mm) })
	nGot, err2 := SelectCoded(ev, encoding.NewSliceSource(events), func(mm Match) { got = append(got, mm) })
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: select errors %v / %v", m.name, err1, err2)
	}
	if nWant != nGot {
		t.Fatalf("%s: events %d (string) vs %d (coded) on %v", m.name, nWant, nGot, events)
	}
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches (string) vs %d (coded) on %v", m.name, len(want), len(got), events)
	}
	for i := range want {
		if want[i].Pos != got[i].Pos || want[i].Depth != got[i].Depth || want[i].Label != got[i].Label {
			t.Fatalf("%s: match %d: %+v (string) vs %+v (coded) on %v", m.name, i, want[i], got[i], events)
		}
	}
	accWant, err1 := Recognize(ev, encoding.NewSliceSource(events))
	accGot, err2 := RecognizeCoded(ev, encoding.NewSliceSource(events))
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: recognize errors %v / %v", m.name, err1, err2)
	}
	if accWant != accGot {
		t.Fatalf("%s: accept %v (string) vs %v (coded) on %v", m.name, accWant, accGot, events)
	}
}

// enumEvents enumerates every event sequence of the given length over the
// alphabet {a,b} plus the out-of-alphabet label zz, calling f for each.
// Markup closes carry labels; term closes don't.
func enumEvents(length int, blind bool, f func([]encoding.Event)) {
	var alts []encoding.Event
	for _, l := range []string{"a", "b", "zz"} {
		alts = append(alts, encoding.Event{Kind: encoding.Open, Label: l})
	}
	if blind {
		alts = append(alts, encoding.Event{Kind: encoding.Close})
	} else {
		for _, l := range []string{"a", "b", "zz"} {
			alts = append(alts, encoding.Event{Kind: encoding.Close, Label: l})
		}
	}
	seq := make([]encoding.Event, length)
	var rec func(i int)
	rec = func(i int) {
		if i == length {
			f(seq)
			return
		}
		for _, e := range alts {
			seq[i] = e
			rec(i + 1)
		}
	}
	rec(0)
}

// TestCodedParityExhaustive: every stream up to 5 events — balanced or not,
// with labels outside the alphabet anywhere — behaves identically under the
// two pipelines, for every compiled evaluator. This includes the ordering
// corners: unknown labels at popping closes (stackless), the B′ leaf check
// before label resolution (synopsis), and term closes that never look at
// the label (tag DFAs).
func TestCodedParityExhaustive(t *testing.T) {
	for _, m := range codedMachines(t) {
		maxLen := 5
		if m.blind {
			maxLen = 6 // fewer alternatives per position
		}
		for length := 0; length <= maxLen; length++ {
			enumEvents(length, m.blind, func(seq []encoding.Event) {
				checkCodedParity(t, m, seq)
			})
		}
	}
}

// randomEvents draws a random stream: mostly balanced tree prefixes, with
// unbalanced noise and unknown labels mixed in.
func randomEvents(rng *rand.Rand, blind bool, n int) []encoding.Event {
	labels := []string{"a", "b", "c", "zz"}
	events := make([]encoding.Event, 0, n)
	depth := 0
	for len(events) < n {
		if depth > 0 && rng.Intn(2) == 0 {
			e := encoding.Event{Kind: encoding.Close}
			if !blind {
				e.Label = labels[rng.Intn(len(labels))]
			}
			events = append(events, e)
			depth--
			continue
		}
		events = append(events, encoding.Event{Kind: encoding.Open, Label: labels[rng.Intn(len(labels))]})
		depth++
	}
	return events
}

// TestCodedParityRandom: longer random streams, same differential check.
func TestCodedParityRandom(t *testing.T) {
	for _, m := range codedMachines(t) {
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 400; i++ {
			checkCodedParity(t, m, randomEvents(rng, m.blind, 1+rng.Intn(80)))
		}
	}
}

// TestCodedParityBatchBoundary: streams longer than the batch size, so the
// runtime state (depth, records, synopsis, registers) must survive batch
// boundaries intact.
func TestCodedParityBatchBoundary(t *testing.T) {
	for _, m := range codedMachines(t) {
		rng := rand.New(rand.NewSource(99))
		checkCodedParity(t, m, randomEvents(rng, m.blind, 2*encoding.DefaultBatch+37))
	}
}

// TestCodedUnknownSurvivesPoppingClose pins the lazy close resolution of
// the stackless machine: a close that pops its record never consults the
// label, so an unknown label there must NOT poison the run and matches
// after it must still be reported — on both pipelines.
func TestCodedUnknownSurvivesPoppingClose(t *testing.T) {
	ev, err := StacklessQL(classify.Analyze(paperfigs.Fig3c()))
	if err != nil {
		t.Fatal(err)
	}
	// .*a.*b: <a> pushes a record at depth 1 (SCC change out of the start
	// component). The close zz drops the depth below that record, so it pops
	// — reverting to the start state without ever consulting the label — and
	// the subsequent <a><b> must still select its b.
	events := []encoding.Event{
		{Kind: encoding.Open, Label: "a"},
		{Kind: encoding.Close, Label: "zz"},
		{Kind: encoding.Open, Label: "a"},
		{Kind: encoding.Open, Label: "b"},
	}
	var got []Match
	if _, err := SelectCoded(ev, encoding.NewSliceSource(events), func(mm Match) { got = append(got, mm) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Pos != 2 || got[0].Label != "b" || got[0].Depth != 2 {
		t.Fatalf("unknown label at popping close poisoned the coded run: matches %+v", got)
	}
	checkCodedParity(t, codedMachine{name: "stackless/popping", fresh: func() Evaluator {
		e, _ := StacklessQL(classify.Analyze(paperfigs.Fig3c()))
		return e
	}}, events)
}

// TestCodedUnknownOpenPoisons: an out-of-alphabet open is absorbing on
// every compiled evaluator; nothing is ever selected afterwards.
func TestCodedUnknownOpenPoisons(t *testing.T) {
	for _, m := range codedMachines(t) {
		events := []encoding.Event{
			{Kind: encoding.Open, Label: "zz"},
			{Kind: encoding.Open, Label: "a"},
			{Kind: encoding.Open, Label: "b"},
		}
		n := 0
		if _, err := SelectCoded(m.fresh(), encoding.NewSliceSource(events), func(Match) { n++ }); err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if n != 0 {
			t.Fatalf("%s: %d matches after an out-of-alphabet open, want 0", m.name, n)
		}
		acc, err := RecognizeCoded(m.fresh(), encoding.NewSliceSource(events))
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if acc {
			t.Fatalf("%s: accepting after an out-of-alphabet open", m.name)
		}
		checkCodedParity(t, m, events)
	}
}

// TestCodedStepInterleave mixes the two pipelines on one evaluator — string
// Step for a prefix, StepBatch for the rest — the exact access pattern of
// the chunk-parallel join, which replays boundary events through Step
// between coded segments.
func TestCodedStepInterleave(t *testing.T) {
	for _, m := range codedMachines(t) {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 200; i++ {
			events := randomEvents(rng, m.blind, 2+rng.Intn(40))
			cut := rng.Intn(len(events))

			ref := m.fresh()
			ref.Reset()
			for _, e := range events {
				ref.Step(e)
			}

			mixed := m.fresh().(BatchEvaluator)
			mixed.Reset()
			for _, e := range events[:cut] {
				mixed.Step(e)
			}
			coder := alphabet.NewCoder(mixed.CodeAlphabet())
			mixed.StepBatch(encoding.CodeEvents(coder, events[cut:], nil))

			if ref.Accepting() != mixed.Accepting() {
				t.Fatalf("%s: interleaved run diverges (cut %d) on %v", m.name, cut, events)
			}
		}
	}
}

// SimulateSegment parity: the coded all-states kernels must produce the
// same exits and candidate sets as the string kernels, unknown labels and
// all.
func TestCodedSegmentKernelParity(t *testing.T) {
	an3a := classify.Analyze(paperfigs.Fig3a())
	an3c := classify.Analyze(paperfigs.Fig3c())
	tagM, err := RegisterlessQL(an3a)
	if err != nil {
		t.Fatal(err)
	}
	tagB, err := BlindRegisterlessQL(an3a)
	if err != nil {
		t.Fatal(err)
	}
	stM, err := StacklessQL(an3c)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := BlindStacklessQL(an3c)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		ev    Evaluator
		blind bool
	}{
		{"tagdfa/markup", tagM.Evaluator(), false},
		{"tagdfa/term", tagB.Evaluator(), true},
		{"stackless/markup", stM, false},
		{"stackless/term", stB, true},
	}
	for _, c := range cases {
		sk := c.ev.(SegmentKernel)
		ck := c.ev.(CodedSegmentKernel)
		ch := c.ev.(Chunkable)
		be := c.ev.(BatchEvaluator)
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 300; i++ {
			seg := randomEvents(rng, c.blind, 1+rng.Intn(30))
			want := NewCandSet(ch.ChunkStates())
			got := NewCandSet(ch.ChunkStates())
			exWant := sk.SimulateSegment(seg, want)
			exGot := ck.SimulateSegmentCoded(encoding.CodeEvents(alphabet.NewCoder(be.CodeAlphabet()), seg, nil), got)
			if len(exWant) != len(exGot) {
				t.Fatalf("%s: exit count %d vs %d", c.name, len(exWant), len(exGot))
			}
			for q := range exWant {
				if exWant[q].State != exGot[q].State {
					t.Fatalf("%s: exit[%d] state %d (string) vs %d (coded) on %v", c.name, q, exWant[q].State, exGot[q].State, seg)
				}
				rw, _ := exWant[q].Regs.([]record)
				rg, _ := exGot[q].Regs.([]record)
				if len(rw) != len(rg) {
					t.Fatalf("%s: exit[%d] %d records vs %d on %v", c.name, q, len(rw), len(rg), seg)
				}
				for j := range rw {
					if rw[j] != rg[j] {
						t.Fatalf("%s: exit[%d] record %d: %+v vs %+v", c.name, q, j, rw[j], rg[j])
					}
				}
			}
			if len(want.Cands) != len(got.Cands) {
				t.Fatalf("%s: %d candidates (string) vs %d (coded) on %v", c.name, len(want.Cands), len(got.Cands), seg)
			}
			for j := range want.Cands {
				if want.Cands[j] != got.Cands[j] {
					t.Fatalf("%s: candidate %d: %+v vs %+v", c.name, j, want.Cands[j], got.Cands[j])
				}
				for w := 0; w < want.Words; w++ {
					if want.Masks[j*want.Words+w] != got.Masks[j*got.Words+w] {
						t.Fatalf("%s: candidate %d mask word %d: %x vs %x", c.name, j, w, want.Masks[j*want.Words+w], got.Masks[j*got.Words+w])
					}
				}
			}
		}
	}
}
