package core

import (
	"fmt"

	"stackless/internal/classify"
)

// Lemma 3.5: a finite automaton over Γ ∪ Γ̄ realizing the query QL when L
// is almost-reversible — and its blind counterpart from Theorem B.1 for
// the term encoding when L is blindly almost-reversible.

// ErrNotInClass is wrapped by the compilers when the language falls outside
// the syntactic class that the requested evaluator needs.
type classError struct {
	class   string
	witness any
}

func (e *classError) Error() string {
	return fmt.Sprintf("core: language is not %s (witness: %+v)", e.class, e.witness)
}

// RegisterlessQL compiles the Lemma 3.5 simulation: a TagDFA over Γ ∪ Γ̄
// that pre-selects exactly the nodes of QL. Fails unless the language is
// almost-reversible (Definition 3.4), per Theorem 3.2(3).
func RegisterlessQL(an *classify.Analysis) (*TagDFA, error) {
	if !an.Minimal() {
		return nil, fmt.Errorf("core: RegisterlessQL requires the minimal automaton (use classify.Analyze)")
	}
	if ok, w := an.AlmostReversible(); !ok {
		return nil, &classError{"almost-reversible", w}
	}
	A := an.D
	n := A.NumStates()
	bot := n // all-rejecting sink ⊥
	t := NewTagDFA(A.Alphabet, n+1, A.Start)
	copy(t.Accept, A.Accept)
	for q := 0; q < n; q++ {
		for a := 0; a < A.Alphabet.Size(); a++ {
			// Opening tags follow A.
			t.OpenT[q][a] = A.Delta[q][a]
			// Closing tag ā in state p: the minimal internal p' with p'·a
			// almost equivalent to p; ⊥ if none exists.
			t.CloseT[q][a] = bot
			for p := 0; p < n; p++ {
				if an.Internal[p] && an.AlmostEquivalent(A.Delta[p][a], q) {
					t.CloseT[q][a] = p
					break
				}
			}
		}
	}
	for a := 0; a < A.Alphabet.Size(); a++ {
		t.OpenT[bot][a] = bot
		t.CloseT[bot][a] = bot
	}
	return t, nil
}

// BlindRegisterlessQL compiles the Theorem B.1 analogue of Lemma 3.5 for
// the term encoding: on the universal closing tag ◁ in state p, move to the
// minimal internal p' such that p'·a is almost equivalent to p for *some*
// letter a. Fails unless the language is blindly almost-reversible.
func BlindRegisterlessQL(an *classify.Analysis) (*TagDFA, error) {
	if !an.Minimal() {
		return nil, fmt.Errorf("core: BlindRegisterlessQL requires the minimal automaton")
	}
	if ok, w := an.BlindAlmostReversible(); !ok {
		return nil, &classError{"blindly almost-reversible", w}
	}
	A := an.D
	n := A.NumStates()
	bot := n
	t := NewTermTagDFA(A.Alphabet, n+1, A.Start)
	copy(t.Accept, A.Accept)
	for q := 0; q < n; q++ {
		for a := 0; a < A.Alphabet.Size(); a++ {
			t.OpenT[q][a] = A.Delta[q][a]
		}
		t.CloseAny[q] = bot
	ploop:
		for p := 0; p < n; p++ {
			if !an.Internal[p] {
				continue
			}
			for a := 0; a < A.Alphabet.Size(); a++ {
				if an.AlmostEquivalent(A.Delta[p][a], q) {
					t.CloseAny[q] = p
					break ploop
				}
			}
		}
	}
	for a := 0; a < A.Alphabet.Size(); a++ {
		t.OpenT[bot][a] = bot
	}
	t.CloseAny[bot] = bot
	return t, nil
}
