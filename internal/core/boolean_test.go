package core

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/rex"
	"stackless/internal/tree"
)

// TestLemma24EvaluatorClosures: boolean combinations of EL recognizers
// match boolean combinations of the oracle verdicts — the executable
// content of Lemma 2.4.
func TestLemma24EvaluatorClosures(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	alph := alphabet.Letters("ab")
	l1 := classify.Analyze(rex.MustCompile("a.*b", alph))
	l2 := classify.Analyze(rex.MustCompile("b.*a", alph))
	m1, err := RegisterlessEL(l1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RegisterlessEL(l2)
	if err != nil {
		t.Fatal(err)
	}
	inter := Intersect(m1, m2)
	union := Union(m1, m2)
	compl := Complement(m1)
	for i := 0; i < 400; i++ {
		tr := randomTree(rng, []string{"a", "b"}, 1+rng.Intn(18))
		ev := encoding.Markup(tr)
		in1, in2 := tree.InEL(l1.D, tr), tree.InEL(l2.D, tr)
		if got := RunEvents(inter, ev); got != (in1 && in2) {
			t.Fatalf("intersection wrong on %s: got %v, want %v∧%v", tr, got, in1, in2)
		}
		if got := RunEvents(union, ev); got != (in1 || in2) {
			t.Fatalf("union wrong on %s", tr)
		}
		if got := RunEvents(compl, ev); got != !in1 {
			t.Fatalf("complement wrong on %s", tr)
		}
	}
}

// TestProductTagDFA: the explicit finite-state product agrees with the
// lockstep product, witnessing that the registerless class is closed.
func TestProductTagDFA(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	alph := alphabet.Letters("ab")
	l1 := classify.Analyze(rex.MustCompile("a.*b", alph))
	l2 := classify.Analyze(rex.MustCompile("(b|ab*a)*", alph))
	t1, err := RegisterlessQL(l1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RegisterlessQL(l2)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := ProductTagDFA(t1, t2, And)
	if err != nil {
		t.Fatal(err)
	}
	lock := Intersect(t1.Evaluator(), t2.Evaluator())
	for i := 0; i < 300; i++ {
		tr := randomTree(rng, []string{"a", "b"}, 1+rng.Intn(15))
		got, err := SelectPositions(prod.Evaluator(), encoding.NewSliceSource(encoding.Markup(tr)))
		if err != nil {
			t.Fatal(err)
		}
		want, err := SelectPositions(lock, encoding.NewSliceSource(encoding.Markup(tr)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("product selections differ on %s: %v vs %v", tr, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("product selections differ on %s: %v vs %v", tr, got, want)
			}
		}
	}
	// Complement of the explicit automaton: pre-selects the other nodes.
	comp := ComplementTagDFA(t1)
	tr2 := tree.MustParse("a(b,a)")
	sel1, _ := SelectPositions(t1.Evaluator(), encoding.NewSliceSource(encoding.Markup(tr2)))
	sel2, _ := SelectPositions(comp.Evaluator(), encoding.NewSliceSource(encoding.Markup(tr2)))
	if len(sel1)+len(sel2) != tr2.Size() {
		t.Errorf("complement does not partition the nodes: %v and %v", sel1, sel2)
	}
	// Error cases.
	if _, err := ProductTagDFA(t1, mustTermTag(t, l1), And); err == nil {
		t.Error("expected error mixing markup and term automata")
	}
}

func mustTermTag(t *testing.T, an *classify.Analysis) *TagDFA {
	t.Helper()
	tag, err := BlindRegisterlessQL(an)
	if err != nil {
		t.Skipf("not blindly almost-reversible: %v", err)
	}
	return tag
}

// TestClosuresPreserveStacklessRegisterBound: the product of two stackless
// evaluators still uses O(1) registers (the sum of the components').
func TestClosuresPreserveStacklessRegisterBound(t *testing.T) {
	alph := alphabet.Letters("ab")
	an1 := classify.Analyze(rex.MustCompile("ab", alph))
	an2 := classify.Analyze(rex.MustCompile(".*a.*b", alph))
	e1, err := StacklessQL(an1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := StacklessQL(an2)
	if err != nil {
		t.Fatal(err)
	}
	p := Intersect(ELFromQL(e1), ELFromQL(e2))
	rng := rand.New(rand.NewSource(27))
	deep := tree.Chain(randomLabels(rng, 2000))
	p.Reset()
	for _, e := range encoding.Markup(deep) {
		p.Step(e)
		if e1.Registers()+e2.Registers() > e1.MaxRegisters()+e2.MaxRegisters() {
			t.Fatal("register bound violated in product")
		}
	}
}

func randomLabels(rng *rand.Rand, n int) []string {
	labels := []string{"a", "b"}
	out := make([]string, n)
	for i := range out {
		out[i] = labels[rng.Intn(2)]
	}
	return out
}

// TestBoolOpTableAgainstDFA: core.BoolOp combinators behave like the dfa
// package's (shared semantics across layers).
func TestBoolOpTableAgainstDFA(t *testing.T) {
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			if And(a, b) != dfa.And(a, b) || Or(a, b) != dfa.Or(a, b) ||
				Xor(a, b) != dfa.Xor(a, b) || Diff(a, b) != dfa.Diff(a, b) {
				t.Fatalf("combinator mismatch at (%v,%v)", a, b)
			}
		}
	}
}
