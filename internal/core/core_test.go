package core

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
	"stackless/internal/tree"
)

func randomTree(rng *rand.Rand, labels []string, budget int) *tree.Node {
	n := tree.New(labels[rng.Intn(len(labels))])
	budget--
	for budget > 0 && rng.Intn(3) != 0 {
		sub := 1 + rng.Intn(budget)
		n.Children = append(n.Children, randomTree(rng, labels, sub))
		budget -= sub
	}
	return n
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkQLAgainstOracle streams random trees through ev (markup or term
// events per blind) and compares the pre-selected positions with the
// in-memory oracle.
func checkQLAgainstOracle(t *testing.T, name string, d *dfa.DFA, ev Evaluator, blind bool, rng *rand.Rand, iters int) {
	t.Helper()
	labels := d.Alphabet.Symbols()
	for i := 0; i < iters; i++ {
		tr := randomTree(rng, labels, 1+rng.Intn(25))
		want := tree.SelectQL(d, tr)
		var events []encoding.Event
		if blind {
			events = encoding.Term(tr)
		} else {
			events = encoding.Markup(tr)
		}
		got, err := SelectPositions(ev, encoding.NewSliceSource(events))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalInts(got, want) {
			t.Fatalf("%s: tree %s: got %v, want %v", name, tr, got, want)
		}
	}
}

func TestRegisterlessQLFig3a(t *testing.T) {
	d := paperfigs.Fig3a()
	an := classify.Analyze(d)
	tag, err := RegisterlessQL(an)
	if err != nil {
		t.Fatal(err)
	}
	checkQLAgainstOracle(t, "registerless aΓ*b", an.D, tag.Evaluator(), false, rand.New(rand.NewSource(1)), 300)
}

func TestRegisterlessQLRejectsNonAR(t *testing.T) {
	for _, expr := range []string{paperfigs.Fig3bRegex, paperfigs.Fig3cRegex, paperfigs.Fig3dRegex} {
		an := classify.Analyze(rex.MustCompile(expr, paperfigs.GammaABC()))
		if _, err := RegisterlessQL(an); err == nil {
			t.Errorf("%s: expected class error", expr)
		}
	}
}

func TestRegisterlessQLFig2(t *testing.T) {
	d := paperfigs.Fig2()
	an := classify.Analyze(d)
	tag, err := RegisterlessQL(an)
	if err != nil {
		t.Fatal(err)
	}
	checkQLAgainstOracle(t, "registerless (b*ab*ab*)*", an.D, tag.Evaluator(), false, rand.New(rand.NewSource(2)), 300)
}

// TestRegisterlessQLRandomAlmostReversible is the property test of
// Lemma 3.5: sample random minimal automata, keep the almost-reversible
// ones, and verify the compiled evaluator against the oracle.
func TestRegisterlessQLRandomAlmostReversible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alph := alphabet.Letters("ab")
	tested := 0
	for i := 0; i < 4000 && tested < 60; i++ {
		an := classify.Analyze(dfa.Random(rng, alph, 1+rng.Intn(5)))
		if ok, _ := an.AlmostReversible(); !ok {
			continue
		}
		tag, err := RegisterlessQL(an)
		if err != nil {
			t.Fatal(err)
		}
		tested++
		checkQLAgainstOracle(t, "registerless random", an.D, tag.Evaluator(), false, rng, 25)
	}
	if tested < 20 {
		t.Fatalf("too few almost-reversible samples: %d", tested)
	}
}

func TestStacklessQLFig3(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, expr := range []string{paperfigs.Fig3aRegex, paperfigs.Fig3bRegex, paperfigs.Fig3cRegex} {
		an := classify.Analyze(rex.MustCompile(expr, paperfigs.GammaABC()))
		ev, err := StacklessQL(an)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		checkQLAgainstOracle(t, "stackless "+expr, an.D, ev, false, rng, 300)
	}
	// Γ*ab is not HAR and must be refused.
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3dRegex, paperfigs.GammaABC()))
	if _, err := StacklessQL(an); err == nil {
		t.Error("Γ*ab: expected class error")
	}
}

// TestStacklessQLRandomHAR is the property test of Lemma 3.8.
func TestStacklessQLRandomHAR(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	alph := alphabet.Letters("ab")
	tested := 0
	for i := 0; i < 4000 && tested < 80; i++ {
		an := classify.Analyze(dfa.Random(rng, alph, 1+rng.Intn(6)))
		if ok, _ := an.HAR(); !ok {
			continue
		}
		ev, err := StacklessQL(an)
		if err != nil {
			t.Fatal(err)
		}
		tested++
		checkQLAgainstOracle(t, "stackless random", an.D, ev, false, rng, 25)
	}
	if tested < 30 {
		t.Fatalf("too few HAR samples: %d", tested)
	}
}

// TestBlindStacklessQLRandom is the property test of Theorem B.2's
// evaluator over term events.
func TestBlindStacklessQLRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	alph := alphabet.Letters("ab")
	tested := 0
	for i := 0; i < 6000 && tested < 60; i++ {
		an := classify.Analyze(dfa.Random(rng, alph, 1+rng.Intn(5)))
		if ok, _ := an.BlindHAR(); !ok {
			continue
		}
		ev, err := BlindStacklessQL(an)
		if err != nil {
			t.Fatal(err)
		}
		tested++
		checkQLAgainstOracle(t, "blind stackless random", an.D, ev, true, rng, 25)
	}
	if tested < 20 {
		t.Fatalf("too few blindly-HAR samples: %d", tested)
	}
}

// TestBlindRegisterlessQLRandom is the property test of Theorem B.1's
// query evaluator.
func TestBlindRegisterlessQLRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	alph := alphabet.Letters("ab")
	tested := 0
	for i := 0; i < 6000 && tested < 60; i++ {
		an := classify.Analyze(dfa.Random(rng, alph, 1+rng.Intn(5)))
		if ok, _ := an.BlindAlmostReversible(); !ok {
			continue
		}
		tag, err := BlindRegisterlessQL(an)
		if err != nil {
			t.Fatal(err)
		}
		tested++
		checkQLAgainstOracle(t, "blind registerless random", an.D, tag.Evaluator(), true, rng, 25)
	}
	if tested < 20 {
		t.Fatalf("too few blindly-almost-reversible samples: %d", tested)
	}
}

// TestELALWrappers checks the Theorem 3.1/3.2 wrappers against the tree
// oracles, on top of a stackless evaluator.
func TestELALWrappers(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	ev, err := StacklessQL(an)
	if err != nil {
		t.Fatal(err)
	}
	el := ELFromQL(ev)
	labels := []string{"a", "b", "c"}
	for i := 0; i < 400; i++ {
		tr := randomTree(rng, labels, 1+rng.Intn(20))
		got, err := Recognize(el, encoding.NewSliceSource(encoding.Markup(tr)))
		if err != nil {
			t.Fatal(err)
		}
		if want := tree.InEL(an.D, tr); got != want {
			t.Fatalf("EL(%s) = %v, want %v", tr, got, want)
		}
	}
	// AL needs a QL evaluator too; use the same language.
	ev2, _ := StacklessQL(an)
	al := ALFromQL(ev2)
	for i := 0; i < 400; i++ {
		tr := randomTree(rng, labels, 1+rng.Intn(20))
		got, err := Recognize(al, encoding.NewSliceSource(encoding.Markup(tr)))
		if err != nil {
			t.Fatal(err)
		}
		if want := tree.InAL(an.D, tr); got != want {
			t.Fatalf("AL(%s) = %v, want %v", tr, got, want)
		}
	}
}

// TestStacklessRegisterBound checks that register usage never exceeds the
// SCC-DAG-depth bound claimed in Lemma 3.8 — even on deep documents.
func TestStacklessRegisterBound(t *testing.T) {
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	ev, err := StacklessQL(an)
	if err != nil {
		t.Fatal(err)
	}
	bound := ev.MaxRegisters()
	rng := rand.New(rand.NewSource(47))
	ev.Reset()
	// A deep chain with random labels.
	depth := 3000
	labels := []string{"a", "b", "c"}
	var chain []string
	for i := 0; i < depth; i++ {
		chain = append(chain, labels[rng.Intn(3)])
	}
	tr := tree.Chain(chain)
	for _, e := range encoding.Markup(tr) {
		ev.Step(e)
		if ev.Registers() > bound {
			t.Fatalf("register usage %d exceeds bound %d", ev.Registers(), bound)
		}
	}
}

// TestDRATableExample22 implements Example 2.2 as a table DRA: trees over
// {a,b} where all a-labelled nodes are at the same depth.
func TestDRATableExample22(t *testing.T) {
	d := Example22()
	if d.IsRestricted() {
		t.Error("Example 2.2 DRA must not be restricted: its language is not regular")
	}
	cases := []struct {
		tree string
		want bool
	}{
		{"b", true},
		{"a", true},
		{"b(a,a)", true},
		{"b(a,b(a))", false},
		{"a(b(b),b)", true},
		{"b(b(a),b(a),b(b(b)))", true},
		{"b(b(a),a)", false},
		{"a(a)", false},
	}
	for _, c := range cases {
		ev := d.Evaluator()
		got := RunEvents(ev, encoding.Markup(tree.MustParse(c.tree)))
		if got != c.want {
			t.Errorf("Example22(%s) = %v, want %v", c.tree, got, c.want)
		}
	}
}

// TestDRATableExample26 checks the Example 2.6 machine: some a-labelled
// node has a b-labelled descendant.
func TestDRATableExample26(t *testing.T) {
	d := Example26()
	cases := []struct {
		tree string
		want bool
	}{
		{"a(b)", true},
		{"a(c(b))", true},
		{"c(a(c),b)", false},
		{"c(a(c),a(c(c(b))))", true},
		{"b(a)", false},
		{"c(a,a,a(c(b)))", true},
		{"a", false},
	}
	for _, c := range cases {
		ev := d.Evaluator()
		got := RunEvents(ev, encoding.Markup(tree.MustParse(c.tree)))
		if got != c.want {
			t.Errorf("Example26(%s) = %v, want %v", c.tree, got, c.want)
		}
	}
}

// TestDRAConfigSemantics pins down Definition 2.1's depth-first-then-test
// ordering on a tiny machine.
func TestDRAConfigSemantics(t *testing.T) {
	alph := alphabet.Letters("a")
	d := NewDRA(alph, 2, 0, 1)
	// On the first opening tag, load the depth (1) into register 0 and
	// move to state 1; in state 1 stay put.
	d.SetForAllTests(0, 0, false, 1, 1)
	d.SetForAllTests(0, 0, true, 0, 0)
	d.SetForAllTests(1, 0, false, 0, 1)
	d.SetForAllTests(1, 0, true, 0, 1)
	cfg := d.InitialConfig()
	cfg, err := d.StepConfig(cfg, encoding.Event{Kind: encoding.Open, Label: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Depth != 1 || cfg.Regs[0] != 1 || cfg.State != 1 {
		t.Fatalf("after first open: %+v", cfg)
	}
	cfg, _ = d.StepConfig(cfg, encoding.Event{Kind: encoding.Open, Label: "a"})
	if cfg.Depth != 2 || cfg.Regs[0] != 1 {
		t.Fatalf("after second open: %+v", cfg)
	}
	cfg, _ = d.StepConfig(cfg, encoding.Event{Kind: encoding.Close, Label: "a"})
	if cfg.Depth != 1 {
		t.Fatalf("after close: %+v", cfg)
	}
	if _, err := d.StepConfig(cfg, encoding.Event{Kind: encoding.Open, Label: "z"}); err == nil {
		t.Error("expected error for label outside alphabet")
	}
}
