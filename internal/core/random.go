package core

import (
	"math/rand"

	"stackless/internal/alphabet"
)

// RandomDRA returns a random total table DRA with the given dimensions,
// following the internal/dfa Random idiom: every feasible (X≤, X≥) entry
// gets an independent uniform successor and load set, and each acceptance
// bit is an independent coin flip. Intended for property-based tests and
// for fuzzing the linter; the machines are structurally well-formed but
// semantically arbitrary.
func RandomDRA(rng *rand.Rand, alph *alphabet.Alphabet, states, regs int) *DRA {
	d := NewDRA(alph, states, rng.Intn(states), regs)
	for q := 0; q < states; q++ {
		d.Accept[q] = rng.Intn(2) == 1
		for sym := 0; sym < alph.Size(); sym++ {
			for _, closing := range []bool{false, true} {
				EachFeasibleMask(regs, func(le, ge RegSet) {
					load := RegSet(rng.Intn(1 << uint(regs)))
					d.SetTransition(q, sym, closing, le, ge, load, rng.Intn(states))
				})
			}
		}
	}
	return d
}
