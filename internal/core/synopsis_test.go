package core

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
	"stackless/internal/tree"
)

// checkELAgainstOracle compares an EL recognizer with the in-memory oracle
// on random trees over the automaton's alphabet.
func checkELAgainstOracle(t *testing.T, name string, d *dfa.DFA, ev Evaluator, blind bool, rng *rand.Rand, iters int) {
	t.Helper()
	labels := d.Alphabet.Symbols()
	for i := 0; i < iters; i++ {
		tr := randomTree(rng, labels, 1+rng.Intn(22))
		var events []encoding.Event
		if blind {
			events = encoding.Term(tr)
		} else {
			events = encoding.Markup(tr)
		}
		got, err := Recognize(ev, encoding.NewSliceSource(events))
		if err != nil {
			t.Fatal(err)
		}
		if want := tree.InEL(d, tr); got != want {
			t.Fatalf("%s: EL(%s) = %v, want %v\n%s", name, tr, got, want, d)
		}
	}
}

func checkALAgainstOracle(t *testing.T, name string, d *dfa.DFA, ev Evaluator, blind bool, rng *rand.Rand, iters int) {
	t.Helper()
	labels := d.Alphabet.Symbols()
	for i := 0; i < iters; i++ {
		tr := randomTree(rng, labels, 1+rng.Intn(22))
		var events []encoding.Event
		if blind {
			events = encoding.Term(tr)
		} else {
			events = encoding.Markup(tr)
		}
		got, err := Recognize(ev, encoding.NewSliceSource(events))
		if err != nil {
			t.Fatal(err)
		}
		if want := tree.InAL(d, tr); got != want {
			t.Fatalf("%s: AL(%s) = %v, want %v\n%s", name, tr, got, want, d)
		}
	}
}

// TestSynopsisELFig3a: aΓ*b is E-flat, so its EL is registerless.
func TestSynopsisELFig3a(t *testing.T) {
	an := classify.Analyze(paperfigs.Fig3a())
	m, err := RegisterlessEL(an)
	if err != nil {
		t.Fatal(err)
	}
	checkELAgainstOracle(t, "EL(aΓ*b)", an.D, m, false, rand.New(rand.NewSource(11)), 500)
}

// TestSynopsisELCofinite: co-finite languages are E-flat (Section 3.3);
// check the synopsis machine on one with several SCC levels.
func TestSynopsisELCofinite(t *testing.T) {
	d, err := rex.CompileString("ab|ba", alphabet.Letters("ab"))
	if err != nil {
		t.Fatal(err)
	}
	an := classify.Analyze(d.Complement())
	m, err := RegisterlessEL(an)
	if err != nil {
		t.Fatal(err)
	}
	checkELAgainstOracle(t, "EL(co-finite)", an.D, m, false, rand.New(rand.NewSource(12)), 500)
}

// TestSynopsisELRejectsNonEFlat: ab (Fig 3b) is not E-flat.
func TestSynopsisELRejectsNonEFlat(t *testing.T) {
	an := classify.Analyze(paperfigs.Fig3b())
	if _, err := RegisterlessEL(an); err == nil {
		t.Error("ab: expected E-flat class error")
	}
}

// TestSynopsisELRandomEFlat is the main property test of Lemma 3.11 /
// Appendix A: random E-flat languages, random trees, oracle comparison.
func TestSynopsisELRandomEFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tested := 0
	for i := 0; i < 20000 && tested < 120; i++ {
		var alph *alphabet.Alphabet
		if i%2 == 0 {
			alph = alphabet.Letters("ab")
		} else {
			alph = alphabet.Letters("abc")
		}
		an := classify.Analyze(dfa.Random(rng, alph, 1+rng.Intn(6)))
		ok, _ := an.EFlat()
		if !ok {
			continue
		}
		// Skip trivial (all-accepting / all-rejecting) automata half the
		// time to concentrate on interesting cases.
		if an.D.NumStates() == 1 && tested%3 != 0 {
			continue
		}
		m, err := RegisterlessEL(an)
		if err != nil {
			t.Fatal(err)
		}
		tested++
		checkELAgainstOracle(t, "EL random", an.D, m, false, rng, 30)
	}
	if tested < 60 {
		t.Fatalf("too few E-flat samples: %d", tested)
	}
}

// TestSynopsisELBlindRandom is the property test of the Appendix B variant.
func TestSynopsisELBlindRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tested := 0
	for i := 0; i < 30000 && tested < 100; i++ {
		an := classify.Analyze(dfa.Random(rng, alphabet.Letters("ab"), 1+rng.Intn(6)))
		ok, _ := an.BlindEFlat()
		if !ok {
			continue
		}
		m, err := BlindRegisterlessEL(an)
		if err != nil {
			t.Fatal(err)
		}
		tested++
		checkELAgainstOracle(t, "blind EL random", an.D, m, true, rng, 30)
	}
	if tested < 50 {
		t.Fatalf("too few blindly E-flat samples: %d", tested)
	}
}

// TestRegisterlessALRandomAFlat checks the dual construction.
func TestRegisterlessALRandomAFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tested := 0
	for i := 0; i < 20000 && tested < 100; i++ {
		an := classify.Analyze(dfa.Random(rng, alphabet.Letters("ab"), 1+rng.Intn(6)))
		ok, _ := an.AFlat()
		if !ok {
			continue
		}
		ev, err := RegisterlessAL(an)
		if err != nil {
			t.Fatal(err)
		}
		tested++
		checkALAgainstOracle(t, "AL random", an.D, ev, false, rng, 30)
	}
	if tested < 50 {
		t.Fatalf("too few A-flat samples: %d", tested)
	}
}

// TestBlindRegisterlessALRandom checks the blind dual.
func TestBlindRegisterlessALRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	tested := 0
	for i := 0; i < 30000 && tested < 80; i++ {
		an := classify.Analyze(dfa.Random(rng, alphabet.Letters("ab"), 1+rng.Intn(5)))
		ok, _ := an.BlindAFlat()
		if !ok {
			continue
		}
		ev, err := BlindRegisterlessAL(an)
		if err != nil {
			t.Fatal(err)
		}
		tested++
		checkALAgainstOracle(t, "blind AL random", an.D, ev, true, rng, 30)
	}
	if tested < 40 {
		t.Fatalf("too few blindly A-flat samples: %d", tested)
	}
}

// TestSynopsisFiniteALViaStack sanity check: finite language, AL
// registerless (Section 3.3's stack-of-bounded-depth intuition).
func TestSynopsisFiniteAL(t *testing.T) {
	an := classify.Analyze(rex.MustCompile("a|ab|abb", alphabet.Letters("ab")))
	ev, err := RegisterlessAL(an)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		tree string
		want bool
	}{
		{"a", true},
		{"a(b)", true},
		{"a(b(b))", true},
		{"a(b(b(b)))", false},
		{"b", false},
		{"a(b,b(b),a)", false}, // branch aa ∉ L
	}
	for _, c := range cases {
		tr := tree.MustParse(c.tree)
		got, err := Recognize(ev, encoding.NewSliceSource(encoding.Markup(tr)))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("AL(%s) = %v, want %v", c.tree, got, c.want)
		}
	}
}

// TestSynopsisStateSpaceBounded: the discovered synopsis state space stays
// small even across many documents (the paper bounds it via the SCC DAG).
func TestSynopsisStateSpaceBounded(t *testing.T) {
	an := classify.Analyze(paperfigs.Fig3a())
	m, err := RegisterlessEL(an)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		tr := randomTree(rng, []string{"a", "b", "c"}, 1+rng.Intn(40))
		if _, err := Recognize(m, encoding.NewSliceSource(encoding.Markup(tr))); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.StatesDiscovered(); n > 1000 {
		t.Errorf("synopsis state space unexpectedly large: %d", n)
	}
}
