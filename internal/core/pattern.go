package core

import (
	"fmt"

	"stackless/internal/encoding"
	"stackless/internal/tree"
)

// Proposition 2.8: for each descendent pattern π, the set of trees
// containing π is stackless. The construction is a tree of sub-automata,
// one per pattern node, each holding a single depth register (the depth of
// its current candidate node); a sub-automaton searches for a *minimal*
// node with the right label and runs its children's sub-automata inside the
// candidate's subtree, falling back to the search when the candidate closes
// unmatched. Minimality is sound: if a nested candidate could succeed, the
// enclosing one already has (descendants of the inner node are descendants
// of the outer one).
//
// Closing labels are never inspected, so the same machine works for the
// markup and the term encoding.

// PatternMatcher is the compiled Proposition 2.8 machine. It implements
// Evaluator with tree-language acceptance.
type PatternMatcher struct {
	pattern *tree.Node
	root    *pmNode
	depth   int
}

// pmNode is the sub-automaton for one pattern node.
type pmNode struct {
	pat       *tree.Node
	base      int // launch region: candidates must have depth > base
	phase     pmPhase
	candDepth int // register: depth of the current candidate node
	children  []*pmNode
}

type pmPhase uint8

const (
	pmSearching pmPhase = iota
	pmRunning
	pmSucceeded
)

func (p pmPhase) String() string {
	switch p {
	case pmSearching:
		return "searching"
	case pmRunning:
		return "running"
	case pmSucceeded:
		return "succeeded"
	}
	return fmt.Sprintf("pmPhase(%d)", uint8(p))
}

// NewPatternMatcher compiles a descendent pattern (any tree) into its
// Proposition 2.8 evaluator. The number of depth registers used is at most
// the number of pattern nodes.
func NewPatternMatcher(pattern *tree.Node) *PatternMatcher {
	m := &PatternMatcher{pattern: pattern}
	m.Reset()
	return m
}

// Registers returns the number of depth registers currently holding a
// candidate (benchmark accounting); it never exceeds the pattern size.
func (m *PatternMatcher) Registers() int {
	var count func(*pmNode) int
	count = func(n *pmNode) int {
		if n == nil || n.phase != pmRunning {
			return 0
		}
		total := 1
		for _, c := range n.children {
			total += count(c)
		}
		return total
	}
	return count(m.root)
}

// Reset implements Evaluator.
func (m *PatternMatcher) Reset() {
	m.depth = 0
	m.root = &pmNode{pat: m.pattern, base: 0}
}

// Step implements Evaluator.
func (m *PatternMatcher) Step(e encoding.Event) {
	if e.Kind == encoding.Open {
		m.depth++
	} else {
		m.depth--
	}
	m.root.step(e, m.depth)
}

// Accepting implements Evaluator: the pattern has been matched.
func (m *PatternMatcher) Accepting() bool { return m.root.phase == pmSucceeded }

func (n *pmNode) step(e encoding.Event, depth int) {
	switch n.phase {
	case pmSucceeded:
		return
	case pmSearching:
		if e.Kind == encoding.Open && e.Label == n.pat.Label && depth > n.base {
			if len(n.pat.Children) == 0 {
				n.phase = pmSucceeded
				return
			}
			n.candDepth = depth
			n.children = n.children[:0]
			for _, pc := range n.pat.Children {
				n.children = append(n.children, &pmNode{pat: pc, base: depth})
			}
			n.phase = pmRunning
		}
	case pmRunning:
		if e.Kind == encoding.Close && depth < n.candDepth {
			// The candidate's subtree closed without completing the match:
			// resume the minimal-candidate search.
			n.phase = pmSearching
			return
		}
		all := true
		for _, c := range n.children {
			c.step(e, depth)
			if c.phase != pmSucceeded {
				all = false
			}
		}
		if all {
			n.phase = pmSucceeded
		}
	}
}

// StateKey returns a canonical fingerprint of the matcher's configuration,
// used by the Example 2.9 counting experiments: two runs with equal keys
// behave identically on every continuation.
func (m *PatternMatcher) StateKey() string {
	var b []byte
	put := func(v int) { b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
	put(m.depth)
	var rec func(n *pmNode)
	rec = func(n *pmNode) {
		put(int(n.phase))
		put(n.base)
		if n.phase == pmRunning {
			put(n.candDepth)
			for _, c := range n.children {
				rec(c)
			}
		}
	}
	rec(m.root)
	return string(b)
}
