package core

import (
	"stackless/internal/alphabet"
	"stackless/internal/dfa"
)

// The concrete depth-register automata of Examples 2.2, 2.5 and 2.6,
// constructed as formal table DRAs (Definition 2.1).

// regEq, regGT and regLT name the (X≤, X≥) test outcomes for a one-register
// machine: the stored value is equal to / strictly greater than / strictly
// less than the current depth.
const (
	reg0 RegSet = 1
)

// Example22 builds the Example 2.2 machine over {a,b}: trees in which all
// a-labelled nodes are at the same depth. The language is *not* regular, so
// the automaton is necessarily unrestricted: it remembers an absolute depth
// across arbitrary climbs.
//
// States: 0 — no a seen (register unused); 1 — depth of the first a stored;
// 2 — rejecting sink.
func Example22() *DRA {
	alph := alphabet.Letters("ab")
	d := NewDRA(alph, 3, 0, 1)
	a, b := alph.MustID("a"), alph.MustID("b")
	d.Accept[0], d.Accept[1] = true, true

	// State 0: first a loads the current depth and moves to state 1.
	d.SetForAllTests(0, a, false, reg0, 1)
	d.SetForAllTests(0, a, true, 0, 0)
	d.SetForAllTests(0, b, false, 0, 0)
	d.SetForAllTests(0, b, true, 0, 0)

	// State 1: an opening a at a different depth rejects.
	for le := RegSet(0); le <= 1; le++ {
		for ge := RegSet(0); ge <= 1; ge++ {
			if le|ge != 1 {
				continue
			}
			next := 2
			if le == 1 && ge == 1 { // stored depth == current depth
				next = 1
			}
			d.SetTransition(1, a, false, le, ge, 0, next)
		}
	}
	d.SetForAllTests(1, a, true, 0, 1)
	d.SetForAllTests(1, b, false, 0, 1)
	d.SetForAllTests(1, b, true, 0, 1)

	// State 2: sink.
	for _, sym := range []int{a, b} {
		d.SetForAllTests(2, sym, false, 0, 2)
		d.SetForAllTests(2, sym, true, 0, 2)
	}
	return d
}

// Example25 builds the Example 2.5 machine for a regular L: the tree
// language H_L of trees whose root's children, read left to right, spell a
// word of L. The machine stores depth 1 in its single register after the
// first tag and simulates L's automaton on exactly the closing tags whose
// depth equals the stored value — these belong to the children of the root
// in every valid encoding.
//
// States: 0 — before the root tag; 1+q — simulating L in state q.
func Example25(l *dfa.DFA) *DRA {
	alph := l.Alphabet
	n := l.NumStates()
	d := NewDRA(alph, 1+n, 0, 1)
	for q := 0; q < n; q++ {
		d.Accept[1+q] = l.Accept[q]
	}
	for sym := 0; sym < alph.Size(); sym++ {
		// Root's opening tag: load depth 1, start simulating from l.Start.
		d.SetForAllTestsRestricted(0, sym, false, reg0, 1+l.Start)
		d.SetForAllTestsRestricted(0, sym, true, 0, 0) // invalid encoding; don't care
		for q := 0; q < n; q++ {
			// Opening tags never advance the simulation.
			d.SetForAllTestsRestricted(1+q, sym, false, 0, 1+q)
			// Closing tags advance iff the current depth equals the stored
			// depth 1 (le and ge both true for the register). The root's own
			// closing tag (depth 0 < stored 1) reloads the register, keeping
			// the automaton restricted; nothing follows it in a valid
			// encoding.
			for le := RegSet(0); le <= 1; le++ {
				for ge := RegSet(0); ge <= 1; ge++ {
					if le|ge != 1 {
						continue
					}
					next := 1 + q
					if le == 1 && ge == 1 {
						next = 1 + l.Delta[q][sym]
					}
					d.SetTransition(1+q, sym, true, le, ge, ge&^le, next)
				}
			}
		}
	}
	return d
}

// Example26 builds the Example 2.6 machine over {a,b,c}: trees in which
// some a-labelled node has a b-labelled descendant. The machine loops on
// minimal a-labelled nodes: it stores the depth of the first a, searches
// its subtree for b, and restarts when the depth drops strictly below the
// stored value. This automaton is restricted (the language is regular).
//
// States: 0 — searching for an opening a; 1 — inside a minimal a-subtree;
// 2 — accepting sink.
func Example26() *DRA {
	alph := alphabet.Letters("abc")
	d := NewDRA(alph, 3, 0, 1)
	a, b, c := alph.MustID("a"), alph.MustID("b"), alph.MustID("c")
	d.Accept[2] = true

	for _, sym := range []int{a, b, c} {
		// State 0: wait for a. Keep the machine restricted by reloading the
		// register (it is unused in state 0) whenever it may exceed the
		// current depth.
		next0 := 0
		if sym == a {
			next0 = 1
		}
		d.SetForAllTests(0, sym, false, reg0, next0)
		d.SetForAllTests(0, sym, true, reg0, 0)

		// State 2: accepting sink (loads keep it restricted).
		d.SetForAllTests(2, sym, false, reg0, 2)
		d.SetForAllTests(2, sym, true, reg0, 2)
	}

	// State 1: looking for b strictly inside the stored subtree. (At an
	// opening tag in state 1 the stored depth is always strictly below the
	// current depth, so the restricted-completion of the unreachable
	// entries never fires.)
	d.SetForAllTestsRestricted(1, b, false, 0, 2)
	d.SetForAllTestsRestricted(1, a, false, 0, 1)
	d.SetForAllTestsRestricted(1, c, false, 0, 1)
	for _, sym := range []int{a, b, c} {
		for le := RegSet(0); le <= 1; le++ {
			for ge := RegSet(0); ge <= 1; ge++ {
				if le|ge != 1 {
					continue
				}
				if ge == 1 && le == 0 {
					// Depth dropped strictly below the stored value: the
					// a-subtree is closed; restart (reload to stay
					// restricted).
					d.SetTransition(1, sym, true, le, ge, reg0, 0)
				} else {
					d.SetTransition(1, sym, true, le, ge, 0, 1)
				}
			}
		}
	}
	return d
}

// Example27Minimal builds the positive machine discussed in Example 2.7:
// trees over {a,b,c} in which some *minimal* a-labelled node (one without
// a-labelled ancestors) has a b-labelled *child*. One register stores the
// depth of the current minimal a-node; a state bit remembers whether the
// previous event left us exactly at that depth, so the next opening tag is
// a child of the a-node precisely when the bit is set. (Without the
// minimality restriction the language is not stackless — that is the
// point of Example 2.7, certified by the classifier on Γ*ab.)
//
// States: 0 — searching for a minimal a; 1 — inside the a-subtree, at the
// a-node's depth; 2 — inside, strictly deeper; 3 — accepting sink.
func Example27Minimal() *DRA {
	alph := alphabet.Letters("abc")
	d := NewDRA(alph, 4, 0, 1)
	a, b, c := alph.MustID("a"), alph.MustID("b"), alph.MustID("c")
	d.Accept[3] = true

	for _, sym := range []int{a, b, c} {
		next0 := 0
		if sym == a {
			next0 = 1 // the opening a is the candidate; we are at its depth
		}
		d.SetForAllTestsRestricted(0, sym, false, reg0, next0)
		d.SetForAllTestsRestricted(0, sym, true, reg0, 0)
		d.SetForAllTestsRestricted(3, sym, false, reg0, 3)
		d.SetForAllTestsRestricted(3, sym, true, reg0, 3)
	}

	// In-subtree transitions for states 1 (previous position at the
	// a-node's depth) and 2 (strictly deeper). The register tests after the
	// depth update tell us where we are now: le∧ge — at the stored depth;
	// le∧¬ge — deeper; ¬le∧ge — the subtree just closed.
	for _, state := range []int{1, 2} {
		for _, sym := range []int{a, b, c} {
			for _, closing := range []bool{false, true} {
				for le := RegSet(0); le <= 1; le++ {
					for ge := RegSet(0); ge <= 1; ge++ {
						if le|ge != 1 {
							continue
						}
						var next int
						var load RegSet
						switch {
						case ge == 1 && le == 0:
							// Climbed above the a-node: resume the search.
							next, load = 0, reg0
						case le == 1 && ge == 1:
							next = 1
						default:
							next = 2
						}
						if state == 1 && !closing && sym == b {
							// Opening b whose parent is the a-node.
							next, load = 3, reg0
						}
						d.SetTransition(state, sym, closing, le, ge, load, next)
					}
				}
			}
		}
	}
	return d
}
