package core

import (
	"sort"

	"stackless/internal/alphabet"
	"stackless/internal/encoding"
	"stackless/internal/obs"
)

// Chunk-parallel evaluation support (consumed by internal/parallel).
//
// Theorem 3.1's point is that a stackless machine's whole configuration is
// a bounded control state plus registers that store depths and are only
// ever compared with the current depth. A chunk of the tag-event stream can
// therefore be simulated from *every* control state at once, with depths
// tracked relative to the chunk entry, and the per-state summaries composed
// left to right afterwards to recover the exact sequential run. The one
// obstacle is a register loaded *before* the chunk: its absolute value is
// unknown while the chunk is simulated, so comparisons against it cannot be
// resolved locally. Each machine class pins down exactly where such
// comparisons can fire (its CutPolicy); the events at those positions —
// always a small fringe of the chunk in non-adversarial documents — are
// replayed sequentially at join time on the real configuration, and
// everything between them is summarized in parallel.
//
// The stack-based fallback evaluator (internal/stackeval) has no bounded
// summary for arbitrary chunks — its configuration is the Θ(depth) stack
// itself, and that composability is precisely what Theorem 3.1 buys for
// the stackless machines. It is nevertheless Chunkable, speculatively:
// under the new-minimum boundary discipline every close inside a segment
// pops a frame pushed inside the same segment, so a segment summarizes as
// an exit state plus the surviving frame words per entry state — bounded,
// composable, but O(states) per event to simulate. CutBoundedDepth tags
// this mode so the engine can gate it on the stream's depth being small
// against the chunk size (parallel.SpeculationViable) and degrade to the
// sequential coded run otherwise. See DESIGN.md §8 and §16.

// CutPolicy says where a chunk must be cut into segments so that every
// register/depth comparison inside a segment is locally resolvable.
type CutPolicy int

const (
	// CutNone: registerless machines. The whole chunk is one segment.
	CutNone CutPolicy = iota
	// CutNewMin: the Lemma 3.8 record discipline. Registers hold strictly
	// increasing depths at most the entry depth, and the only unresolvable
	// comparisons are at closing tags that take the depth to a new minimum
	// below the chunk entry (at most entry-depth many per chunk).
	CutNewMin
	// CutBelowEntry: restricted DRAs (Section 2.2). Registers are always at
	// most the current depth, so comparisons at any event landing at or
	// below the segment-entry depth may involve an entry register; all
	// events strictly above it are locally resolvable.
	CutBelowEntry
	// CutAll: unrestricted DRAs. Registers may exceed the current depth, so
	// no comparison is locally resolvable; every event is replayed at join
	// time and chunking degrades to the sequential run (Example 2.2 stores
	// an absolute depth across arbitrary climbs — its language is not even
	// regular, and no composable bounded summary exists).
	CutAll
	// CutBoundedDepth: the pushdown fallback's speculative mode. Boundaries
	// are the CutNewMin rule (closes reaching a new minimum), which
	// guarantees every in-segment close pops an in-segment frame — so the
	// Θ(depth) stack summarizes per entry state as exit state plus
	// surviving frames. Simulation costs O(states) per event, so the
	// engine additionally gates chunking on depth ≪ chunk size and
	// otherwise degrades to the sequential run, as CutAll always does.
	CutBoundedDepth
)

// String names the policy as it appears in stats and obs snapshots (kept in
// sync with internal/obs key names).
func (p CutPolicy) String() string {
	switch p {
	case CutNone:
		return "none"
	case CutNewMin:
		return "newmin"
	case CutBelowEntry:
		return "belowentry"
	case CutAll:
		return "all"
	case CutBoundedDepth:
		return "boundeddepth"
	}
	return "unknown"
}

// SegmentExit is the outcome of simulating one segment from one control
// state: the exit control state (-1 when the run poisoned itself) and an
// implementation-specific register payload with depths relative to the
// segment entry.
type SegmentExit struct {
	State int
	Regs  any
}

// Chunkable is implemented by evaluators whose configuration is a bounded
// control state plus depth-comparable registers, enabling chunk-parallel
// simulation. The map side (BeginSegment / Step / EndSegment) runs on a
// Fork with depths relative to the segment entry; the join side
// (JoinState / ApplySegment / Step) runs on a single machine holding the
// true absolute configuration.
type Chunkable interface {
	Evaluator
	// ChunkStates is the number of control states to enumerate.
	ChunkStates() int
	// Cut reports where chunks must be cut for this machine.
	Cut() CutPolicy
	// Fork returns an independent machine sharing the compiled tables; the
	// fork is safe to use concurrently with the parent and other forks.
	Fork() Chunkable
	// BeginSegment places the machine in control state q at relative depth
	// 0 with a neutral register file.
	BeginSegment(q int)
	// EndSegment reports the configuration reached since BeginSegment.
	EndSegment() SegmentExit
	// JoinState is the current control state, -1 when poisoned.
	JoinState() int
	// ApplySegment advances the absolute configuration by a summarized
	// segment: exit control state, registers shifted by the current depth,
	// and the segment's net depth change.
	ApplySegment(x SegmentExit, delta int)
}

// ChunkCand is a potential match inside a segment: the event index within
// the segment, the number of Open events before it in the segment, and its
// depth relative to the segment entry. Which entry states actually select
// it is the corresponding mask in a CandSet.
type ChunkCand struct {
	Idx, Opens, Depth int32
}

// CandSet collects match candidates for one segment, with one bitmask of
// entry control states per candidate (stride Words, flat in Masks).
type CandSet struct {
	Words int
	Cands []ChunkCand
	Masks []uint64
}

// NewCandSet returns an empty candidate set for machines with the given
// number of control states.
func NewCandSet(states int) *CandSet {
	return &CandSet{Words: (states + 63) / 64}
}

// Add appends a candidate with an all-zero mask and returns the mask slice
// for the caller to fill. The final slice expression is guarded so the
// bounds check vanishes: Add inlines into the plain batch kernels, and an
// unchecked c.Masks[n:n+c.Words] would surface there as a compiler bounds
// check cmd/bcegate rejects.
//
//treelint:partial candidate growth is O(matches), not O(events), and amortizes across segments when the CandSet is reused
func (c *CandSet) Add(idx, opens, depth int32) []uint64 {
	c.Cands = append(c.Cands, ChunkCand{Idx: idx, Opens: opens, Depth: depth})
	n := len(c.Masks)
	for i := 0; i < c.Words; i++ {
		c.Masks = append(c.Masks, 0)
	}
	if m := c.Masks; uint(n) <= uint(len(m)) {
		return m[n:]
	}
	return nil
}

// Mask returns candidate i's mask slice.
func (c *CandSet) Mask(i int) []uint64 {
	return c.Masks[i*c.Words : (i+1)*c.Words]
}

// Has reports whether candidate i's mask contains entry state q.
func (c *CandSet) Has(i, q int) bool {
	return c.Masks[i*c.Words+q/64]&(1<<uint(q%64)) != 0
}

// sortByIdx restores document order after multi-pass collection.
func (c *CandSet) sortByIdx() {
	sort.Sort(candSorter{c})
}

type candSorter struct{ c *CandSet }

func (s candSorter) Len() int           { return len(s.c.Cands) }
func (s candSorter) Less(i, j int) bool { return s.c.Cands[i].Idx < s.c.Cands[j].Idx }
func (s candSorter) Swap(i, j int) {
	c := s.c
	c.Cands[i], c.Cands[j] = c.Cands[j], c.Cands[i]
	for w := 0; w < c.Words; w++ {
		c.Masks[i*c.Words+w], c.Masks[j*c.Words+w] = c.Masks[j*c.Words+w], c.Masks[i*c.Words+w]
	}
}

// SegmentKernel is implemented by machines with a vectorized one-pass
// all-states segment simulation — the hot path of internal/parallel. The
// generic fallback (SimulateSegmentGeneric) runs one pass per control state
// through the Chunkable interface instead.
type SegmentKernel interface {
	// SimulateSegment runs the segment from every control state at once,
	// appending match candidates to cands when it is non-nil.
	SimulateSegment(events []encoding.Event, cands *CandSet) []SegmentExit
}

// SimulateSegmentGeneric is the interface-driven fallback: one pass per
// control state. Correct for any Chunkable; used when the machine has no
// vectorized kernel (EL/AL wrappers, table DRAs).
//
//treelint:plain
func SimulateSegmentGeneric(m Chunkable, seg []encoding.Event, cands *CandSet) []SegmentExit {
	n := m.ChunkStates()
	//treelint:partial per-segment exit vector, O(states) once per segment
	exits := make([]SegmentExit, n)
	var slots map[int32]int
	if cands != nil {
		//treelint:partial per-segment candidate-dedup map, O(matches) once per segment
		slots = make(map[int32]int)
	}
	for q := 0; q < n; q++ {
		m.BeginSegment(q)
		var opens, depth int32
		for idx, e := range seg {
			m.Step(e)
			if e.Kind != encoding.Open {
				depth--
				continue
			}
			depth++
			if cands != nil && m.Accepting() {
				slot, ok := slots[int32(idx)]
				if !ok {
					slot = len(cands.Cands)
					cands.Add(int32(idx), opens, depth)
					//treelint:partial candidate-dedup write, O(matches) not O(events)
					slots[int32(idx)] = slot
				}
				cands.Mask(slot)[q/64] |= 1 << uint(q%64)
			}
			opens++
		}
		exits[q] = m.EndSegment()
	}
	if cands != nil {
		cands.sortByIdx()
	}
	return exits
}

// --- TagDFA (registerless: Lemmas 3.5/3.11 output form) ---

// ChunkStates implements Chunkable.
func (ev *tagEvaluator) ChunkStates() int { return ev.t.NumStates() }

// Cut implements Chunkable: no registers, no cuts.
func (ev *tagEvaluator) Cut() CutPolicy { return CutNone }

// Fork implements Chunkable.
func (ev *tagEvaluator) Fork() Chunkable {
	return &tagEvaluator{t: ev.t, res: alphabet.NewResolver(ev.t.Alphabet), state: ev.t.Start}
}

// BeginSegment implements Chunkable.
func (ev *tagEvaluator) BeginSegment(q int) {
	ev.state = q
	ev.poisoned = false
}

// EndSegment implements Chunkable.
func (ev *tagEvaluator) EndSegment() SegmentExit {
	if ev.poisoned {
		return SegmentExit{State: -1}
	}
	return SegmentExit{State: ev.state}
}

// JoinState implements Chunkable.
func (ev *tagEvaluator) JoinState() int {
	if ev.poisoned {
		return -1
	}
	return ev.state
}

// ApplySegment implements Chunkable.
func (ev *tagEvaluator) ApplySegment(x SegmentExit, delta int) {
	if ev.poisoned {
		return
	}
	if x.State < 0 {
		ev.poisoned = true
		return
	}
	ev.state = x.State
}

// SimulateSegment implements SegmentKernel: one pass moving all states in
// lockstep. An unknown label poisons every run identically, exactly as the
// sequential evaluator would from any state.
//
//treelint:plain
func (ev *tagEvaluator) SimulateSegment(events []encoding.Event, cands *CandSet) []SegmentExit {
	t := ev.t
	n := t.NumStates()
	//treelint:partial per-segment all-states scratch, O(states) once per segment
	cur := make([]int32, n)
	for i := range cur {
		cur[i] = int32(i)
	}
	var opens, depth int32
	poisoned := false
	for idx := 0; idx < len(events); idx++ {
		e := events[idx]
		if e.Kind == encoding.Close {
			depth--
			if t.CloseAny != nil {
				row := t.CloseAny
				for i := range cur {
					cur[i] = int32(row[cur[i]])
				}
				continue
			}
			sym, ok := ev.res.ID(e.Label)
			if !ok {
				poisoned = true
				break
			}
			rows := t.CloseT
			for i := range cur {
				cur[i] = int32(rows[cur[i]][sym])
			}
			continue
		}
		sym, ok := ev.res.ID(e.Label)
		if !ok {
			poisoned = true
			break
		}
		o := opens
		opens++
		depth++
		rows := t.OpenT
		for i := range cur {
			cur[i] = int32(rows[cur[i]][sym])
		}
		if cands != nil {
			var mask []uint64
			for i := range cur {
				if t.Accept[cur[i]] {
					if mask == nil {
						mask = cands.Add(int32(idx), o, depth)
					}
					mask[i/64] |= 1 << uint(i%64)
				}
			}
		}
	}
	//treelint:partial per-segment exit vector, O(states) once per segment
	exits := make([]SegmentExit, n)
	for i := range exits {
		if poisoned {
			exits[i] = SegmentExit{State: -1}
		} else {
			exits[i] = SegmentExit{State: int(cur[i])}
		}
	}
	return exits
}

// --- StacklessEvaluator (Lemma 3.8 / Theorem B.2 machines) ---

// ChunkStates implements Chunkable.
func (ev *StacklessEvaluator) ChunkStates() int { return ev.an.D.NumStates() }

// Cut implements Chunkable: the record discipline (strictly increasing
// depths, popped exactly when the depth drops below the top) means only
// new-minimum closing tags can consult an entry register.
func (ev *StacklessEvaluator) Cut() CutPolicy { return CutNewMin }

// Fork implements Chunkable. The compiled back tables and the analysis are
// immutable after construction; only the resolver cache and the runtime
// configuration are per-fork. The collector is shared: its fields are
// atomics, so concurrent forks report into it safely.
func (ev *StacklessEvaluator) Fork() Chunkable {
	f := &StacklessEvaluator{
		an:       ev.an,
		blind:    ev.blind,
		back:     ev.back,
		backAny:  ev.backAny,
		cDelta:   ev.cDelta,
		cSel:     ev.cSel,
		cBack:    ev.cBack,
		cBackAny: ev.cBackAny,
		cComp:    ev.cComp,
		res:      alphabet.NewResolver(ev.an.D.Alphabet),
		obs:      ev.obs,
	}
	f.Reset()
	return f
}

// BeginSegment implements Chunkable.
func (ev *StacklessEvaluator) BeginSegment(q int) {
	ev.state = q
	ev.depth = 0
	ev.records = ev.records[:0]
	ev.poisoned = false
}

// EndSegment implements Chunkable. Surviving records carry depths relative
// to the segment entry (all strictly positive, by the push discipline).
func (ev *StacklessEvaluator) EndSegment() SegmentExit {
	if ev.poisoned {
		return SegmentExit{State: -1}
	}
	var recs []record
	if len(ev.records) > 0 {
		recs = make([]record, len(ev.records))
		copy(recs, ev.records)
	}
	return SegmentExit{State: ev.state, Regs: recs}
}

// JoinState implements Chunkable.
func (ev *StacklessEvaluator) JoinState() int {
	if ev.poisoned {
		return -1
	}
	return ev.state
}

// ApplySegment implements Chunkable: surviving records are rebased onto the
// current absolute depth, preserving the strictly-increasing invariant.
func (ev *StacklessEvaluator) ApplySegment(x SegmentExit, delta int) {
	if ev.poisoned {
		return
	}
	if x.State < 0 {
		ev.poisoned = true
		return
	}
	if recs, ok := x.Regs.([]record); ok {
		for _, r := range recs {
			ev.records = append(ev.records, record{depth: ev.depth + r.depth, state: r.state})
		}
	}
	ev.state = x.State
	ev.depth += delta
}

// SimulateSegment implements SegmentKernel: all control states advance in
// lockstep, each with its own record stack (pushes depend on the tracked
// state). Within a segment the depth never drops below the entry, so every
// pop involves a record pushed inside the segment and relative depths
// resolve every comparison.
func (ev *StacklessEvaluator) SimulateSegment(events []encoding.Event, cands *CandSet) []SegmentExit {
	A := ev.an.D
	comp := ev.an.Comp
	n := A.NumStates()
	st := make([]int32, n)
	dead := make([]bool, n)
	recs := make([][]record, n)
	for i := range st {
		st[i] = int32(i)
	}
	// Machine-level metrics are accumulated in plain locals (an
	// unconditional register increment beats a per-state branch) and
	// flushed once at segment end, so a collector — attached or not —
	// costs the inner loop nothing.
	var loads, compares int64
	var opens, depth int32
	live := n
	for idx := 0; idx < len(events) && live > 0; idx++ {
		e := events[idx]
		if e.Kind == encoding.Open {
			sym, ok := ev.res.ID(e.Label)
			if !ok {
				live = 0
				break
			}
			o := opens
			opens++
			depth++
			var mask []uint64
			for i := range st {
				if dead[i] {
					continue
				}
				s := int(st[i])
				next := A.Delta[s][sym]
				if comp[next] != comp[s] {
					recs[i] = append(recs[i], record{depth: int(depth), state: s})
					loads++
				}
				st[i] = int32(next)
				if cands != nil && A.Accept[next] {
					if mask == nil {
						mask = cands.Add(int32(idx), o, depth)
					}
					mask[i/64] |= 1 << uint(i%64)
				}
			}
			continue
		}
		depth--
		sym, known := -1, true
		if !ev.blind {
			// Resolved lazily: a run that pops at this close never consults
			// the label, so an unknown label only kills non-popping runs
			// (mirroring the sequential Step's order of checks).
			sym, known = ev.res.ID(e.Label)
		}
		for i := range st {
			if dead[i] {
				continue
			}
			if nr := len(recs[i]); nr > 0 {
				compares++
				if int(depth) < recs[i][nr-1].depth {
					st[i] = int32(recs[i][nr-1].state)
					recs[i] = recs[i][:nr-1]
					continue
				}
			}
			var cand int
			if ev.blind {
				cand = ev.backAny[st[i]]
			} else if known {
				cand = ev.back[sym][st[i]]
			} else {
				cand = -1
			}
			if cand < 0 {
				dead[i] = true
				live--
				continue
			}
			st[i] = int32(cand)
		}
	}
	if ev.obs != nil {
		ev.obs.RegisterLoads.Add(loads)
		ev.obs.RegisterCompares.Add(compares)
	}
	exits := make([]SegmentExit, n)
	for i := range exits {
		if live == 0 || dead[i] {
			exits[i] = SegmentExit{State: -1}
			continue
		}
		var rc []record
		if len(recs[i]) > 0 {
			rc = make([]record, len(recs[i]))
			copy(rc, recs[i])
		}
		exits[i] = SegmentExit{State: int(st[i]), Regs: rc}
	}
	return exits
}

// --- Table DRAs (Definition 2.1) ---

// draSegRegs is the register payload of a DRA segment exit: which registers
// still hold their (unknown) entry values, and the relative values of the
// registers loaded inside the segment.
type draSegRegs struct {
	stale RegSet
	vals  []int
}

// ChunkStates implements Chunkable.
func (ev *draEvaluator) ChunkStates() int { return ev.d.States }

// Cut implements Chunkable. Restricted DRAs (Section 2.2) keep every
// register at most the current depth, so only events landing at or below
// the segment-entry depth can consult an entry register; unrestricted DRAs
// may compare any event against a register above the current depth, so
// every event must be replayed at join time (CutAll).
func (ev *draEvaluator) Cut() CutPolicy {
	if !ev.cutKnown {
		if ev.d.IsRestricted() {
			ev.cut = CutBelowEntry
		} else {
			ev.cut = CutAll
		}
		ev.cutKnown = true
	}
	return ev.cut
}

// Fork implements Chunkable. The transition table and alphabet are
// immutable after construction; the collector is shared (atomics).
func (ev *draEvaluator) Fork() Chunkable {
	f := &draEvaluator{d: ev.d, cfg: ev.d.InitialConfig(), cut: ev.cut, cutKnown: ev.cutKnown, obs: ev.obs}
	return f
}

// BeginSegment implements Chunkable: state q at relative depth 0, with
// every register stale (holding its unknown entry value).
func (ev *draEvaluator) BeginSegment(q int) {
	ev.cfg.State = q
	ev.cfg.Depth = 0
	for i := range ev.cfg.Regs {
		ev.cfg.Regs[i] = 0
	}
	ev.stale = FullRegSet(ev.d.Regs)
	ev.seg = true
	ev.poisoned = false
}

// EndSegment implements Chunkable. Flushes the comparisons and loads the
// segment batched in the machine fields.
func (ev *draEvaluator) EndSegment() SegmentExit {
	ev.seg = false
	ev.flushObs()
	if ev.poisoned {
		return SegmentExit{State: -1}
	}
	vals := make([]int, len(ev.cfg.Regs))
	copy(vals, ev.cfg.Regs)
	return SegmentExit{State: ev.cfg.State, Regs: draSegRegs{stale: ev.stale, vals: vals}}
}

// JoinState implements Chunkable.
func (ev *draEvaluator) JoinState() int {
	if ev.poisoned {
		return -1
	}
	return ev.cfg.State
}

// ApplySegment implements Chunkable: registers loaded inside the segment
// are rebased onto the absolute entry depth; stale registers keep their
// current absolute values.
func (ev *draEvaluator) ApplySegment(x SegmentExit, delta int) {
	if ev.poisoned {
		return
	}
	if x.State < 0 {
		ev.poisoned = true
		return
	}
	if r, ok := x.Regs.(draSegRegs); ok {
		for i := range ev.cfg.Regs {
			if !r.stale.Has(i) {
				ev.cfg.Regs[i] = ev.cfg.Depth + r.vals[i]
			}
		}
	}
	ev.cfg.State = x.State
	ev.cfg.Depth += delta
}

// stepSeg is Step under segment simulation. Under CutBelowEntry every
// in-segment event has post-depth at least one above the segment entry,
// while a stale register of a restricted DRA holds a value at most the
// entry depth — so stale registers always test as strictly below the
// current depth (X≤ yes, X≥ no), and comparisons resolve without knowing
// the entry register values.
func (ev *draEvaluator) stepSeg(e encoding.Event) {
	d := ev.d
	sym, ok := d.Alphabet.ID(e.Label)
	if !ok {
		ev.poisoned = true
		return
	}
	closing := e.Kind == encoding.Close
	if closing {
		ev.cfg.Depth--
	} else {
		ev.cfg.Depth++
	}
	var le, ge RegSet
	for i := 0; i < d.Regs; i++ {
		if ev.stale.Has(i) {
			le = le.With(i)
			continue
		}
		if ev.cfg.Regs[i] <= ev.cfg.Depth {
			le = le.With(i)
		}
		if ev.cfg.Regs[i] >= ev.cfg.Depth {
			ge = ge.With(i)
		}
	}
	// Stale registers resolve without a comparison (forced masks). Counted
	// in the plain machine fields, flushed by EndSegment.
	ev.compares += int64(2 * (d.Regs - ev.stale.count()))
	tr := d.Transition(ev.cfg.State, sym, closing, le, ge)
	ev.cfg.State = tr.Next
	for i := 0; i < d.Regs; i++ {
		if tr.Load.Has(i) {
			ev.cfg.Regs[i] = ev.cfg.Depth
			ev.stale &^= 1 << uint(i)
			ev.loads++
		}
	}
}

// --- EL wrapper (Theorem 3.1 proof construction) ---

// chunkableEL is elWrapper over a Chunkable inner machine. Control states:
// 0..n-1 (not matched, previous open not selected, inner state), n..2n-1
// (not matched, previous open selected), 2n (matched — absorbing, inner
// frozen). A poisoned inner with matched unset collapses to -1: selection
// needs a live accepting inner, so a dead inner can never match later.
type chunkableEL struct {
	inner            Chunkable
	prevOpenSelected bool
	matched          bool
}

func (w *chunkableEL) Reset() {
	w.inner.Reset()
	w.prevOpenSelected = false
	w.matched = false
}

func (w *chunkableEL) Step(e encoding.Event) {
	if w.matched {
		return
	}
	if e.Kind == encoding.Close && w.prevOpenSelected {
		w.matched = true
		return
	}
	w.inner.Step(e)
	w.prevOpenSelected = e.Kind == encoding.Open && w.inner.Accepting()
}

func (w *chunkableEL) Accepting() bool { return w.matched }

// SetObs implements Instrumented by forwarding to the inner machine.
func (w *chunkableEL) SetObs(c *obs.Collector) { Instrument(w.inner, c) }

func (w *chunkableEL) flushObs() { flushEvObs(w.inner) }

// ChunkStates implements Chunkable.
func (w *chunkableEL) ChunkStates() int { return 2*w.inner.ChunkStates() + 1 }

// Cut implements Chunkable: the wrapper adds no registers; its bits are
// functions of the locally simulated inner run.
func (w *chunkableEL) Cut() CutPolicy { return w.inner.Cut() }

// Fork implements Chunkable.
func (w *chunkableEL) Fork() Chunkable { return &chunkableEL{inner: w.inner.Fork()} }

// BeginSegment implements Chunkable.
func (w *chunkableEL) BeginSegment(q int) {
	n := w.inner.ChunkStates()
	if q == 2*n {
		w.matched = true
		w.prevOpenSelected = false
		w.inner.BeginSegment(0)
		return
	}
	w.matched = false
	w.prevOpenSelected = q >= n
	w.inner.BeginSegment(q % n)
}

// EndSegment implements Chunkable.
func (w *chunkableEL) EndSegment() SegmentExit {
	n := w.inner.ChunkStates()
	if w.matched {
		return SegmentExit{State: 2 * n}
	}
	x := w.inner.EndSegment()
	if x.State < 0 {
		return SegmentExit{State: -1}
	}
	if w.prevOpenSelected {
		x.State += n
	}
	return x
}

// JoinState implements Chunkable.
func (w *chunkableEL) JoinState() int {
	n := w.inner.ChunkStates()
	if w.matched {
		return 2 * n
	}
	j := w.inner.JoinState()
	if j < 0 {
		return -1
	}
	if w.prevOpenSelected {
		j += n
	}
	return j
}

// ApplySegment implements Chunkable.
func (w *chunkableEL) ApplySegment(x SegmentExit, delta int) {
	if w.matched {
		return
	}
	n := w.inner.ChunkStates()
	if x.State == 2*n {
		w.matched = true
		return
	}
	if x.State < 0 {
		w.inner.ApplySegment(SegmentExit{State: -1}, delta)
		return
	}
	w.prevOpenSelected = x.State >= n
	w.inner.ApplySegment(SegmentExit{State: x.State % n, Regs: x.Regs}, delta)
}

// --- AL wrapper (Theorem 3.2(3) proof construction) ---

// chunkableAL is alWrapper over a Chunkable inner machine. Unlike EL, a
// dead inner must be an explicit control state: the inner can poison on the
// final closing tag with the previous open accepted, leaving the wrapper
// ACCEPTING — so collapsing inner-death to -1 would diverge from the
// sequential run. Control states: q = i*4 + (started | prevOpenRejected<<1)
// with inner index i in 0..n (i = n meaning the inner is dead), plus the
// absorbing failed state 4(n+1). JoinState never returns -1, so the engine
// never cuts an AL run short.
type chunkableAL struct {
	inner            Chunkable
	prevOpenRejected bool
	failed           bool
	started          bool
	deadInner        bool
}

func (w *chunkableAL) Reset() {
	w.inner.Reset()
	w.prevOpenRejected = false
	w.failed = false
	w.started = false
	w.deadInner = false
}

func (w *chunkableAL) Step(e encoding.Event) {
	if w.failed {
		return
	}
	w.started = true
	if e.Kind == encoding.Close && w.prevOpenRejected {
		w.failed = true
		return
	}
	if w.deadInner {
		// Shadow of alWrapper with a poisoned inner: never accepting.
		w.prevOpenRejected = e.Kind == encoding.Open
		return
	}
	w.inner.Step(e)
	if w.inner.JoinState() < 0 {
		w.deadInner = true
	}
	w.prevOpenRejected = e.Kind == encoding.Open && !w.inner.Accepting()
}

func (w *chunkableAL) Accepting() bool { return w.started && !w.failed }

// SetObs implements Instrumented by forwarding to the inner machine.
func (w *chunkableAL) SetObs(c *obs.Collector) { Instrument(w.inner, c) }

func (w *chunkableAL) flushObs() { flushEvObs(w.inner) }

// ChunkStates implements Chunkable.
func (w *chunkableAL) ChunkStates() int { return 4*(w.inner.ChunkStates()+1) + 1 }

// Cut implements Chunkable.
func (w *chunkableAL) Cut() CutPolicy { return w.inner.Cut() }

// Fork implements Chunkable.
func (w *chunkableAL) Fork() Chunkable { return &chunkableAL{inner: w.inner.Fork()} }

// BeginSegment implements Chunkable.
func (w *chunkableAL) BeginSegment(q int) {
	n := w.inner.ChunkStates()
	if q == 4*(n+1) {
		w.failed = true
		w.started = true
		w.prevOpenRejected = false
		w.deadInner = false
		w.inner.BeginSegment(0)
		return
	}
	bits := q % 4
	w.started = bits&1 != 0
	w.prevOpenRejected = bits&2 != 0
	w.failed = false
	i := q / 4
	if i == n {
		w.deadInner = true
		w.inner.BeginSegment(0)
		return
	}
	w.deadInner = false
	w.inner.BeginSegment(i)
}

// EndSegment implements Chunkable.
func (w *chunkableAL) EndSegment() SegmentExit {
	n := w.inner.ChunkStates()
	if w.failed {
		return SegmentExit{State: 4 * (n + 1)}
	}
	bits := 0
	if w.started {
		bits |= 1
	}
	if w.prevOpenRejected {
		bits |= 2
	}
	if w.deadInner {
		return SegmentExit{State: n*4 + bits}
	}
	x := w.inner.EndSegment()
	if x.State < 0 {
		return SegmentExit{State: n*4 + bits}
	}
	return SegmentExit{State: x.State*4 + bits, Regs: x.Regs}
}

// JoinState implements Chunkable.
func (w *chunkableAL) JoinState() int {
	n := w.inner.ChunkStates()
	if w.failed {
		return 4 * (n + 1)
	}
	bits := 0
	if w.started {
		bits |= 1
	}
	if w.prevOpenRejected {
		bits |= 2
	}
	if w.deadInner {
		return n*4 + bits
	}
	j := w.inner.JoinState()
	if j < 0 {
		return n*4 + bits
	}
	return j*4 + bits
}

// ApplySegment implements Chunkable.
func (w *chunkableAL) ApplySegment(x SegmentExit, delta int) {
	if w.failed {
		return
	}
	n := w.inner.ChunkStates()
	if x.State == 4*(n+1) {
		w.failed = true
		return
	}
	bits := x.State % 4
	w.started = bits&1 != 0
	w.prevOpenRejected = bits&2 != 0
	i := x.State / 4
	if i == n {
		w.deadInner = true
		return
	}
	w.inner.ApplySegment(SegmentExit{State: i, Regs: x.Regs}, delta)
}
