package core

import (
	"fmt"

	"stackless/internal/classify"
)

// FormalDRA materializes the Lemma 3.8 evaluator as a table depth-register
// automaton in the exact sense of Definition 2.1, witnessing the paper's
// remark that "all depth-register automata we construct are restricted".
//
// Registers: one per strongly connected component of the minimal automaton
// that is ever abandoned on a reachable run (register c holds the depth at
// which the simulated run left component c; components that are never left
// — terminal components in particular — get no register, keeping the table
// 4× smaller per saved register). States: pairs (candidate state p, active
// chain), where the
// chain lists the abandoned components in order together with the
// candidate state recorded for each. On a closing tag the machine pops
// exactly when the top chain register exceeds the current depth —
// detectable from the X≥/X≤ masks because all deeper records were loaded
// at strictly smaller depths.
//
// The construction is exponential in the SCC DAG in the worst case, so the
// state space is capped; the compiled StacklessEvaluator remains the
// practical implementation, while FormalDRA is the formal object used by
// the Proposition 2.3/2.13 pipeline.

// chainEntry is one abandoned component with its recorded candidate state.
type chainEntry struct {
	comp  int
	state int
}

// formalState is a machine state before interning.
type formalState struct {
	p     int
	chain []chainEntry
}

func (s formalState) key() string {
	b := make([]byte, 0, 4+len(s.chain)*8)
	put := func(v int) { b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
	put(s.p)
	for _, c := range s.chain {
		put(c.comp)
		put(c.state)
	}
	return string(b)
}

// FormalDRA compiles the formal restricted DRA for QL (markup encoding).
// Fails unless L is HAR, the component count fits the 16-register table
// limit, or the reachable state space exceeds maxStates (0 for a default
// of 20000).
func FormalDRA(an *classify.Analysis, maxStates int) (*DRA, error) {
	if !an.Minimal() {
		return nil, fmt.Errorf("core: FormalDRA requires the minimal automaton")
	}
	if ok, w := an.HAR(); !ok {
		return nil, &classError{"hierarchically almost-reversible", w}
	}
	if maxStates <= 0 {
		maxStates = 20000
	}
	if len(an.Comps) > 16 {
		return nil, fmt.Errorf("core: FormalDRA needs up to %d registers, table limit is 16", len(an.Comps))
	}
	A := an.D
	k := A.Alphabet.Size()

	// The in-component backtrack tables, as in the evaluator.
	back := make([][]int, k)
	for a := 0; a < k; a++ {
		back[a] = make([]int, A.NumStates())
		for p := 0; p < A.NumStates(); p++ {
			back[a][p] = -1
			for cand := 0; cand < A.NumStates(); cand++ {
				if an.Comp[cand] != an.Comp[p] {
					continue
				}
				succ := A.Delta[cand][a]
				if an.Comp[succ] == an.Comp[p] && an.AlmostEquivalent(succ, p) {
					back[a][p] = cand
					break
				}
			}
		}
	}

	// Discover the reachable state space (BFS over the abstract machine,
	// ignoring depths — transitions depend only on pop-vs-backtrack, both
	// of which we enumerate).
	index := map[string]int{}
	var states []formalState
	intern := func(s formalState) (int, error) {
		kk := s.key()
		if id, ok := index[kk]; ok {
			return id, nil
		}
		if len(states) >= maxStates {
			return 0, fmt.Errorf("core: FormalDRA state budget %d exceeded", maxStates)
		}
		id := len(states)
		index[kk] = id
		states = append(states, formalState{p: s.p, chain: append([]chainEntry(nil), s.chain...)})
		return id, nil
	}
	startID, err := intern(formalState{p: A.Start})
	if err != nil {
		return nil, err
	}
	dead := -1 // created on demand below via a sentinel state

	type edge struct {
		from    int
		sym     int
		closing bool
		pop     bool // closing only: pop vs in-component backtrack
		to      int
	}
	var edges []edge
	for cur := 0; cur < len(states); cur++ {
		s := states[cur]
		for a := 0; a < k; a++ {
			// Opening tag.
			next := A.Delta[s.p][a]
			var ns formalState
			if an.Comp[next] == an.Comp[s.p] {
				ns = formalState{p: next, chain: s.chain}
			} else {
				ns = formalState{p: next, chain: append(append([]chainEntry(nil), s.chain...), chainEntry{an.Comp[s.p], s.p})}
			}
			id, err := intern(ns)
			if err != nil {
				return nil, err
			}
			edges = append(edges, edge{cur, a, false, false, id})

			// Closing tag, pop case (only if the chain is nonempty).
			if n := len(s.chain); n > 0 {
				top := s.chain[n-1]
				id, err := intern(formalState{p: top.state, chain: s.chain[:n-1]})
				if err != nil {
					return nil, err
				}
				edges = append(edges, edge{cur, a, true, true, id})
			}
			// Closing tag, backtrack case.
			if cand := back[a][s.p]; cand >= 0 {
				id, err := intern(formalState{p: cand, chain: s.chain})
				if err != nil {
					return nil, err
				}
				edges = append(edges, edge{cur, a, true, false, id})
			} else {
				dead = -2 // mark that a dead state is needed
			}
		}
	}
	n := len(states)
	deadID := n
	total := n
	if dead == -2 {
		total++
	}

	// Register allocation: only components that are ever abandoned — i.e.
	// appear in the chain of some reachable state — need a register. Dense
	// ids are assigned in discovery order; regOf maps component id to
	// register (or -1).
	regOf := make([]int, len(an.Comps))
	for i := range regOf {
		regOf[i] = -1
	}
	regs := 0
	for _, s := range states {
		for _, c := range s.chain {
			if regOf[c.comp] == -1 {
				regOf[c.comp] = regs
				regs++
			}
		}
	}
	if entries, ok := TableEntries(total, k, regs); !ok {
		return nil, fmt.Errorf("core: FormalDRA table needs %d entries (%d states, %d registers), above the %d cap",
			entries, total, regs, MaxTableEntries)
	}

	d := NewDRA(A.Alphabet, total, startID, regs)
	for i, s := range states {
		d.Accept[i] = A.Accept[s.p]
	}
	// Default-fill every transition as a restricted-safe self-loop; real
	// edges overwrite the feasible mask combinations below.
	for q := 0; q < total; q++ {
		for a := 0; a < k; a++ {
			d.SetForAllTestsRestricted(q, a, false, 0, q)
			d.SetForAllTestsRestricted(q, a, true, 0, q)
		}
	}
	if dead == -2 {
		for a := 0; a < k; a++ {
			d.SetForAllTestsRestricted(deadID, a, false, 0, deadID)
			d.SetForAllTestsRestricted(deadID, a, true, 0, deadID)
		}
	}

	full := RegSet(1<<uint(regs)) - 1
	// Install the real edges over every mask combination consistent with
	// their firing condition.
	for _, e := range edges {
		s := states[e.from]
		topReg := -1
		if len(s.chain) > 0 {
			topReg = regOf[s.chain[len(s.chain)-1].comp]
		}
		for le := RegSet(0); le <= full; le++ {
			for ge := RegSet(0); ge <= full; ge++ {
				if le|ge != full {
					continue
				}
				if e.closing {
					popFires := topReg >= 0 && ge.Has(topReg) && !le.Has(topReg)
					if popFires != e.pop {
						continue
					}
				}
				// Loads: the restricted completion (overwrite everything
				// above the current depth), plus the chain-push load on
				// component changes at opening tags.
				load := ge &^ le
				if !e.closing {
					ns := states[e.to]
					if len(ns.chain) > len(s.chain) {
						load = load.With(regOf[ns.chain[len(ns.chain)-1].comp])
					}
				}
				d.SetTransition(e.from, e.sym, e.closing, le, ge, load, e.to)
			}
		}
	}
	// Backtrack-missing cases: closing edges where back is undefined and no
	// pop fires go to the dead state.
	if dead == -2 {
		for cur := 0; cur < n; cur++ {
			s := states[cur]
			for a := 0; a < k; a++ {
				if back[a][s.p] >= 0 {
					continue
				}
				topReg := -1
				if len(s.chain) > 0 {
					topReg = regOf[s.chain[len(s.chain)-1].comp]
				}
				for le := RegSet(0); le <= full; le++ {
					for ge := RegSet(0); ge <= full; ge++ {
						if le|ge != full {
							continue
						}
						popFires := topReg >= 0 && ge.Has(topReg) && !le.Has(topReg)
						if popFires {
							continue
						}
						d.SetTransition(cur, a, true, le, ge, ge&^le, deadID)
					}
				}
			}
		}
	}
	return d, nil
}
