package core

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
)

// TestFormalDRAIsRestrictedAndEquivalent is the paper's remark made
// formal: the Lemma 3.8 machine, written out as a Definition 2.1 table
// DRA, is restricted and pre-selects exactly the same nodes as the
// compiled evaluator (hence as the query oracle).
func TestFormalDRAIsRestrictedAndEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for _, expr := range []string{paperfigs.Fig3aRegex, paperfigs.Fig3bRegex, paperfigs.Fig3cRegex, "ab*", "(b|ab*a)*"} {
		an := classify.Analyze(rex.MustCompile(expr, paperfigs.GammaABC()))
		d, err := FormalDRA(an, 0)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if !d.IsRestricted() {
			t.Errorf("%s: formal Lemma 3.8 DRA must be restricted", expr)
		}
		ev, err := StacklessQL(an)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			tr := randomTree(rng, []string{"a", "b", "c"}, 1+rng.Intn(20))
			events := encoding.Markup(tr)
			got, err := SelectPositions(d.Evaluator(), encoding.NewSliceSource(events))
			if err != nil {
				t.Fatal(err)
			}
			want, err := SelectPositions(ev, encoding.NewSliceSource(events))
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(got, want) {
				t.Fatalf("%s: formal DRA selects %v, evaluator %v on %s", expr, got, want, tr)
			}
		}
	}
}

// TestFormalDRARegisterCount: at most one register per SCC, as Lemma 3.8
// promises — and strictly fewer when some component is never abandoned
// (terminal components need no register, and the linter checks none of the
// allocated ones is wasted; see TestLintGateFormalDRA).
func TestFormalDRARegisterCount(t *testing.T) {
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	d, err := FormalDRA(an, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regs > len(an.Comps) {
		t.Errorf("registers = %d, want at most one per SCC (%d)", d.Regs, len(an.Comps))
	}
	// Γ*aΓ*b has a terminal all-accepting component that is never left, so
	// the allocation must save at least one register.
	if d.Regs >= len(an.Comps) {
		t.Errorf("registers = %d for %d components, want the terminal component elided", d.Regs, len(an.Comps))
	}
}

// TestFormalDRARefusesNonHAR mirrors the compiler contract.
func TestFormalDRARefusesNonHAR(t *testing.T) {
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3dRegex, paperfigs.GammaABC()))
	if _, err := FormalDRA(an, 0); err == nil {
		t.Error("Γ*ab must not admit a formal DRA")
	}
}

// TestFormalDRAStateBudget errors instead of exploding.
func TestFormalDRAStateBudget(t *testing.T) {
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	if _, err := FormalDRA(an, 1); err == nil {
		t.Error("expected state-budget error")
	}
}

// TestFormalDRARandomHAR extends the equivalence check to random HAR
// languages.
func TestFormalDRARandomHAR(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	alph := alphabet.Letters("ab")
	tested := 0
	for i := 0; i < 4000 && tested < 40; i++ {
		an := classify.Analyze(dfa.Random(rng, alph, 1+rng.Intn(5)))
		if ok, _ := an.HAR(); !ok {
			continue
		}
		if len(an.Comps) > 8 {
			continue
		}
		d, err := FormalDRA(an, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !d.IsRestricted() {
			t.Fatalf("unrestricted formal DRA for\n%s", an.D)
		}
		ev, err := StacklessQL(an)
		if err != nil {
			t.Fatal(err)
		}
		tested++
		for j := 0; j < 25; j++ {
			tr := randomTree(rng, []string{"a", "b"}, 1+rng.Intn(18))
			events := encoding.Markup(tr)
			got, _ := SelectPositions(d.Evaluator(), encoding.NewSliceSource(events))
			want, _ := SelectPositions(ev, encoding.NewSliceSource(events))
			if !equalInts(got, want) {
				t.Fatalf("formal DRA deviates on %s for\n%s", tr, an.D)
			}
		}
	}
	if tested < 20 {
		t.Fatalf("too few HAR samples: %d", tested)
	}
}
