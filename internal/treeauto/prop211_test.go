package treeauto

import (
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/rex"
	"stackless/internal/tree"
)

func TestEnumerateTreesCounts(t *testing.T) {
	// Over one label: the number of ordered trees with n nodes is the
	// Catalan number C(n-1): 1, 1, 2, 5, 14.
	counts := map[int]int{1: 1, 2: 2, 3: 4, 4: 9, 5: 23}
	// cumulative: 1, 1+1=2, +2=4, +5=9, +14=23
	for maxNodes, want := range counts {
		got := EnumerateTrees([]string{"a"}, maxNodes, func(*tree.Node) bool { return true })
		if got != want {
			t.Errorf("EnumerateTrees(1 label, ≤%d) = %d, want %d", maxNodes, got, want)
		}
	}
	// Over two labels with ≤2 nodes: 2 single nodes + 2·2 two-node chains.
	if got := EnumerateTrees([]string{"a", "b"}, 2, func(*tree.Node) bool { return true }); got != 6 {
		t.Errorf("EnumerateTrees(2 labels, ≤2) = %d, want 6", got)
	}
}

func TestSiblingInvarianceOfRPQEvaluators(t *testing.T) {
	// An RPQ evaluator is invariant under sibling order by construction.
	l := rex.MustCompile("a(a|b)*", alphabet.Letters("ab"))
	an := classify.Analyze(l)
	tag, err := core.RegisterlessQL(an)
	if err != nil {
		t.Fatal(err)
	}
	d := tagToDRA(tag)
	ok, counter, err := IsSiblingInvariantUpTo(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("RPQ evaluator not sibling-invariant; counterexample %s", counter)
	}
	// And Proposition 2.11's conclusion: it realizes Q_L for the projected L.
	ok, counter, err = RealizesProjectionRPQUpTo(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("RPQ evaluator deviates from its projection on %s", counter)
	}
}

func TestSiblingInvarianceCatchesOrderSensitiveQuery(t *testing.T) {
	// The "not on the leftmost branch" query of TestProp213PathQueryNo is
	// order-sensitive.
	alph := alphabet.Letters("a")
	d := core.NewDRA(alph, 2, 0, 0)
	d.Accept[1] = true
	d.SetForAllTests(0, 0, false, 0, 0)
	d.SetForAllTests(0, 0, true, 0, 1)
	d.SetForAllTests(1, 0, false, 0, 1)
	d.SetForAllTests(1, 0, true, 0, 1)
	ok, counter, err := IsSiblingInvariantUpTo(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	// This query is in fact sibling-invariant in the count sense only if
	// the selected SET maps through the swap... it is not: in a(a,a(a))
	// the selected nodes depend on which subtree comes first.
	if ok {
		t.Log("query reported invariant up to 5 nodes; checking deviation from projection instead")
	}
	okProj, counterProj, err := RealizesProjectionRPQUpTo(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok && okProj {
		t.Fatalf("order-sensitive non-RPQ query passed both bounded checks (counters %v, %v)", counter, counterProj)
	}
}

// tagToDRA wraps a markup tag automaton as a 0-register table DRA.
func tagToDRA(tag *core.TagDFA) *core.DRA {
	d := core.NewDRA(tag.Alphabet, tag.NumStates(), tag.Start, 0)
	copy(d.Accept, tag.Accept)
	for q := 0; q < tag.NumStates(); q++ {
		for a := 0; a < tag.Alphabet.Size(); a++ {
			d.SetForAllTests(q, a, false, 0, tag.OpenT[q][a])
			d.SetForAllTests(q, a, true, 0, tag.CloseT[q][a])
		}
	}
	return d
}
