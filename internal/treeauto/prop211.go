package treeauto

import (
	"fmt"

	"stackless/internal/core"
	"stackless/internal/tree"
)

// Proposition 2.11 (bounded checks): every stackless query invariant under
// sibling order is an RPQ, namely Q_L for the language L read off the
// descending projection of the automaton. Since full invariance checking is
// undecidable-adjacent for raw table DRAs, this file provides
// bounded-model-checking companions to the exact Proposition 2.13
// procedure: enumerate all trees up to a node budget and verify the
// property directly. A bounded check that fails is a definitive
// counterexample; one that passes is evidence, not proof (use IsPathQuery
// for the exact decision on restricted DRAs).

// EnumerateTrees calls fn with every tree over the given labels having at
// most maxNodes nodes, and returns the number of trees visited. Trees are
// generated in a canonical order.
func EnumerateTrees(labels []string, maxNodes int, fn func(*tree.Node) bool) int {
	count := 0
	// forests(budget) = all forests (ordered lists of trees) using exactly
	// k ≤ budget nodes, returned as (forest, nodesUsed).
	var trees func(budget int) []*tree.Node
	var forests func(budget int) [][]*tree.Node
	treeMemo := map[int][]*tree.Node{}
	forestMemo := map[int][][]*tree.Node{}
	trees = func(budget int) []*tree.Node {
		if budget < 1 {
			return nil
		}
		if m, ok := treeMemo[budget]; ok {
			return m
		}
		var out []*tree.Node
		for _, l := range labels {
			for _, f := range forests(budget - 1) {
				out = append(out, tree.New(l, f...))
			}
		}
		treeMemo[budget] = out
		return out
	}
	forests = func(budget int) [][]*tree.Node {
		if m, ok := forestMemo[budget]; ok {
			return m
		}
		out := [][]*tree.Node{{}} // the empty forest
		for first := 1; first <= budget; first++ {
			for _, head := range treesExactly(trees, first) {
				for _, rest := range forests(budget - first) {
					f := append([]*tree.Node{head}, rest...)
					out = append(out, f)
				}
			}
		}
		forestMemo[budget] = out
		return out
	}
	for n := 1; n <= maxNodes; n++ {
		for _, t := range treesExactly(trees, n) {
			count++
			// The memoized construction shares subtree objects; hand out a
			// fresh copy so callers may rely on node identity.
			if !fn(t.Clone()) {
				return count
			}
		}
	}
	return count
}

// treesExactly filters the ≤budget tree list to exactly n nodes.
func treesExactly(trees func(int) []*tree.Node, n int) []*tree.Node {
	var out []*tree.Node
	for _, t := range trees(n) {
		if t.Size() == n {
			out = append(out, t)
		}
	}
	return out
}

// IsSiblingInvariantUpTo checks invariance under sibling order
// (Section 2.3) for all trees with at most maxNodes nodes over the DRA's
// alphabet: swapping two adjacent sibling subtrees must permute the
// selected set accordingly. Returns a counterexample tree when violated.
func IsSiblingInvariantUpTo(d *core.DRA, maxNodes int) (bool, *tree.Node, error) {
	labels := d.Alphabet.Symbols()
	var failure *tree.Node
	var firstErr error
	EnumerateTrees(labels, maxNodes, func(t *tree.Node) bool {
		base, err := SelectedPositions(d, t)
		if err != nil {
			firstErr = err
			return false
		}
		ok, err := checkSwaps(d, t, base)
		if err != nil {
			firstErr = err
			return false
		}
		if !ok {
			failure = t
			return false
		}
		return true
	})
	if firstErr != nil {
		return false, nil, firstErr
	}
	return failure == nil, failure, nil
}

// checkSwaps tries every adjacent-sibling swap in t and verifies the
// selected node set is carried along by the swap bijection.
func checkSwaps(d *core.DRA, t *tree.Node, base []int) (bool, error) {
	nodes := t.Nodes()
	for _, parent := range nodes {
		for i := 0; i+1 < len(parent.Children); i++ {
			swapped := t.Clone()
			// Find the corresponding parent in the clone by position.
			pi := indexOfNode(nodes, parent)
			cp := swapped.Nodes()[pi]
			cp.Children[i], cp.Children[i+1] = cp.Children[i+1], cp.Children[i]
			got, err := SelectedPositions(d, swapped)
			if err != nil {
				return false, err
			}
			want := mapPositionsThroughSwap(t, parent, i, base)
			if !equalIntSets(got, want) {
				return false, nil
			}
		}
	}
	return true, nil
}

func indexOfNode(nodes []*tree.Node, n *tree.Node) int {
	for i, x := range nodes {
		if x == n {
			return i
		}
	}
	return -1
}

// mapPositionsThroughSwap computes where each selected preorder position
// lands after swapping children i and i+1 of parent.
func mapPositionsThroughSwap(t *tree.Node, parent *tree.Node, i int, sel []int) []int {
	// Compute preorder position of each node and the bijection.
	pos := map[*tree.Node]int{}
	counter := 0
	var number func(n *tree.Node)
	number = func(n *tree.Node) {
		pos[n] = counter
		counter++
		for _, c := range n.Children {
			number(c)
		}
	}
	number(t)
	a, b := parent.Children[i], parent.Children[i+1]
	aStart, bStart := pos[a], pos[b]
	aSize, bSize := a.Size(), b.Size()
	remap := func(p int) int {
		switch {
		case p >= aStart && p < aStart+aSize:
			return p + bSize // a's subtree shifts right past b
		case p >= bStart && p < bStart+bSize:
			return p - aSize // b's subtree shifts left
		default:
			return p
		}
	}
	out := make([]int, len(sel))
	for j, p := range sel {
		out[j] = remap(p)
	}
	return out
}

func equalIntSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[int]int{}
	for _, x := range a {
		seen[x]++
	}
	for _, x := range b {
		seen[x]--
	}
	for _, v := range seen {
		if v != 0 {
			return false
		}
	}
	return true
}

// RealizesProjectionRPQUpTo checks Proposition 2.11's conclusion on all
// trees up to maxNodes: the DRA's pre-selections coincide with Q_L for
// L = the descending-projection language. Returns a counterexample when
// they differ.
func RealizesProjectionRPQUpTo(d *core.DRA, maxNodes int) (bool, *tree.Node, error) {
	l := ProjectionDFA(d)
	labels := d.Alphabet.Symbols()
	var failure *tree.Node
	var firstErr error
	EnumerateTrees(labels, maxNodes, func(t *tree.Node) bool {
		got, err := SelectedPositions(d, t)
		if err != nil {
			firstErr = err
			return false
		}
		want := tree.SelectQL(l, t)
		if !equalIntSets(got, want) {
			failure = t
			return false
		}
		return true
	})
	if firstErr != nil {
		return false, nil, fmt.Errorf("treeauto: %w", firstErr)
	}
	return failure == nil, failure, nil
}
