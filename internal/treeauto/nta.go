// Package treeauto implements nondeterministic bottom-up automata on
// ordered unranked trees, with regular horizontal languages given as
// deterministic stepping functions. It provides membership, emptiness,
// product and language equivalence, and hosts the paper's Propositions 2.3
// (restricted depth-register automata recognize regular tree languages) and
// 2.13 (deciding whether a restricted DRA realizes an RPQ).
package treeauto

import (
	"fmt"
	"sort"

	"stackless/internal/tree"
)

// Horiz is a deterministic automaton over the NTA's state alphabet: it
// reads the sequence of states assigned to a node's children. States are
// implementation-interned ints starting from Start().
type Horiz interface {
	Start() int
	Step(h int, childState int) int
	Accepting(h int) bool
}

// Rule allows a node labelled Label to be assigned State when the sequence
// of its children's states is accepted by H.
type Rule struct {
	Label string
	State int
	H     Horiz
}

// NTA is a nondeterministic bottom-up unranked tree automaton.
type NTA struct {
	States int
	Final  []bool
	Rules  []Rule

	byLabel map[string][]int // rule indices per label
}

// New builds an NTA; call AddRule then Seal (or use the helpers below).
func New(states int) *NTA {
	return &NTA{
		States:  states,
		Final:   make([]bool, states),
		byLabel: map[string][]int{},
	}
}

// AddRule registers a rule.
func (n *NTA) AddRule(r Rule) {
	n.byLabel[r.Label] = append(n.byLabel[r.Label], len(n.Rules))
	n.Rules = append(n.Rules, r)
}

// stateSet is a canonical (sorted) set of NTA states.
type stateSet []int

func (s stateSet) key() string {
	b := make([]byte, 0, len(s)*4)
	for _, v := range s {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func canonical(set map[int]bool) stateSet {
	out := make(stateSet, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// possibleStates returns the set of states assignable to a node with the
// given label whose children already have the given state sets.
func (n *NTA) possibleStates(label string, children []stateSet) stateSet {
	result := map[int]bool{}
	for _, ri := range n.byLabel[label] {
		r := n.Rules[ri]
		// Reachable H-states after consuming the children, any choice of
		// child state per position.
		cur := map[int]bool{r.H.Start(): true}
		for _, cs := range children {
			next := map[int]bool{}
			for h := range cur {
				for _, q := range cs {
					next[r.H.Step(h, q)] = true
				}
			}
			cur = next
			if len(cur) == 0 {
				break
			}
		}
		for h := range cur {
			if r.H.Accepting(h) {
				result[r.State] = true
				break
			}
		}
	}
	return canonical(result)
}

// StatesOf computes the set of states assignable to the root of t.
func (n *NTA) StatesOf(t *tree.Node) stateSet {
	children := make([]stateSet, len(t.Children))
	for i, c := range t.Children {
		children[i] = n.StatesOf(c)
	}
	return n.possibleStates(t.Label, children)
}

// Accepts reports whether the automaton accepts t.
func (n *NTA) Accepts(t *tree.Node) bool {
	for _, q := range n.StatesOf(t) {
		if n.Final[q] {
			return true
		}
	}
	return false
}

// Inhabited computes the set of states q for which some tree evaluates to
// a state set containing q — the least fixpoint used by the emptiness test.
func (n *NTA) Inhabited() []bool {
	inhabited := make([]bool, n.States)
	changed := true
	for changed {
		changed = false
		for _, r := range n.Rules {
			if inhabited[r.State] {
				continue
			}
			if n.horizReachable(r.H, func(q int) bool { return inhabited[q] }) {
				inhabited[r.State] = true
				changed = true
			}
		}
	}
	return inhabited
}

// horizReachable reports whether H accepts some word over the allowed
// states, by BFS over H's (finitely many reachable) states.
func (n *NTA) horizReachable(h Horiz, allowed func(int) bool) bool {
	seen := map[int]bool{h.Start(): true}
	queue := []int{h.Start()}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if h.Accepting(cur) {
			return true
		}
		for q := 0; q < n.States; q++ {
			if !allowed(q) {
				continue
			}
			next := h.Step(cur, q)
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// IsEmpty reports whether the recognized tree language is empty.
func (n *NTA) IsEmpty() bool {
	inhabited := n.Inhabited()
	for q := 0; q < n.States; q++ {
		if n.Final[q] && inhabited[q] {
			return false
		}
	}
	return true
}

// Labels returns the labels that have at least one rule, sorted.
func (n *NTA) Labels() []string {
	out := make([]string, 0, len(n.byLabel))
	for l := range n.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Equivalent decides whether two automata recognize the same tree language,
// by a fixpoint over the reachable pairs of determinized state sets. Both
// automata should use the same label set (labels present in only one side
// are still handled: the other side simply has no rules for them).
//
// The procedure is exponential in the worst case; maxPairs bounds the
// explored pair space (0 means 1<<16) and an error is returned when the
// bound is hit.
func Equivalent(a, b *NTA, maxPairs int) (bool, error) {
	if maxPairs <= 0 {
		maxPairs = 1 << 16
	}
	labels := map[string]bool{}
	for _, l := range a.Labels() {
		labels[l] = true
	}
	for _, l := range b.Labels() {
		labels[l] = true
	}

	pairKey := func(p ssPair) string { return p.sa.key() + "|" + p.sb.key() }
	reach := map[string]ssPair{}
	var order []ssPair

	consistent := func(p ssPair) bool {
		accA, accB := false, false
		for _, q := range p.sa {
			if a.Final[q] {
				accA = true
			}
		}
		for _, q := range p.sb {
			if b.Final[q] {
				accB = true
			}
		}
		return accA == accB
	}

	add := func(p ssPair) (bool, error) {
		k := pairKey(p)
		if _, ok := reach[k]; ok {
			return true, nil
		}
		if len(reach) >= maxPairs {
			return false, fmt.Errorf("treeauto: pair bound %d exceeded", maxPairs)
		}
		reach[k] = p
		order = append(order, p)
		return consistent(p), nil
	}

	// Fixpoint: repeatedly extend the reachable pair set by building one
	// more tree level. For each label, explore the reachable "horizontal
	// configurations": sets of H-states per rule, on each side.
	changed := true
	for changed {
		changed = false
		before := len(order)
		for label := range labels {
			ok, err := exploreLabel(a, b, label, order, add)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		if len(order) > before {
			changed = true
		}
	}
	return true, nil
}

// exploreLabel enumerates every state-set pair producible at a node with
// the given label from children drawn from the known reachable pairs, and
// feeds them to add. It returns false as soon as add reports an
// inconsistent pair.
// ssPair is a pair of determinized state sets, one per automaton.
type ssPair struct{ sa, sb stateSet }

func exploreLabel(a, b *NTA, label string, known []ssPair, add func(ssPair) (bool, error)) (bool, error) {
	type cfg struct {
		ha [][]int // per a-rule: sorted reachable H-state set
		hb [][]int
	}
	ruleA := a.byLabel[label]
	ruleB := b.byLabel[label]

	encode := func(c cfg) string {
		s := ""
		for _, hs := range c.ha {
			s += fmt.Sprint(hs, ";")
		}
		s += "|"
		for _, hs := range c.hb {
			s += fmt.Sprint(hs, ";")
		}
		return s
	}
	start := cfg{}
	for _, ri := range ruleA {
		start.ha = append(start.ha, []int{a.Rules[ri].H.Start()})
	}
	for _, ri := range ruleB {
		start.hb = append(start.hb, []int{b.Rules[ri].H.Start()})
	}
	seen := map[string]bool{encode(start): true}
	queue := []cfg{start}

	emit := func(c cfg) (bool, error) {
		var p ssPair
		setA := map[int]bool{}
		for i, ri := range ruleA {
			r := a.Rules[ri]
			for _, h := range c.ha[i] {
				if r.H.Accepting(h) {
					setA[r.State] = true
					break
				}
			}
		}
		setB := map[int]bool{}
		for i, ri := range ruleB {
			r := b.Rules[ri]
			for _, h := range c.hb[i] {
				if r.H.Accepting(h) {
					setB[r.State] = true
					break
				}
			}
		}
		p.sa, p.sb = canonical(setA), canonical(setB)
		return add(p)
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if ok, err := emit(cur); err != nil || !ok {
			return ok, err
		}
		// Extend with one more child, drawn from any known reachable pair.
		for _, child := range known {
			next := cfg{ha: make([][]int, len(cur.ha)), hb: make([][]int, len(cur.hb))}
			for i := range cur.ha {
				next.ha[i] = stepSet(a.Rules[ruleA[i]].H, cur.ha[i], child.sa)
			}
			for i := range cur.hb {
				next.hb[i] = stepSet(b.Rules[ruleB[i]].H, cur.hb[i], child.sb)
			}
			k := encode(next)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
	return true, nil
}

func stepSet(h Horiz, hs []int, childStates stateSet) []int {
	set := map[int]bool{}
	for _, s := range hs {
		for _, q := range childStates {
			set[h.Step(s, q)] = true
		}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// --- Common horizontal languages ---

// internTable lazily assigns dense ids to comparable keys.
type internTable[K comparable] struct {
	ids  map[K]int
	keys []K
}

func newIntern[K comparable]() *internTable[K] {
	return &internTable[K]{ids: map[K]int{}}
}

func (t *internTable[K]) id(k K) int {
	if id, ok := t.ids[k]; ok {
		return id
	}
	id := len(t.keys)
	t.ids[k] = id
	t.keys = append(t.keys, k)
	return id
}

func (t *internTable[K]) key(id int) K { return t.keys[id] }

// wordHoriz accepts exactly the given sequences of states. Its H-states are
// the prefixes of those sequences plus a dead state, so the state space is
// finite (required by the emptiness and equivalence fixpoints).
type wordHoriz struct {
	words    map[string]bool
	prefixes map[string]bool
	in       *internTable[string]
}

const deadPrefix = "\x00dead"

// ExactWords returns a Horiz accepting exactly the listed state sequences.
func ExactWords(words ...[]int) Horiz {
	h := &wordHoriz{words: map[string]bool{}, prefixes: map[string]bool{}, in: newIntern[string]()}
	for _, w := range words {
		h.words[fmt.Sprint(w)] = true
		for i := 0; i <= len(w); i++ {
			h.prefixes[fmt.Sprint(w[:i])] = true
		}
	}
	h.in.id("[]")
	h.in.id(deadPrefix)
	return h
}

func (h *wordHoriz) Start() int { return h.in.id("[]") }

func (h *wordHoriz) Step(s int, q int) int {
	cur := h.in.key(s)
	if cur == deadPrefix {
		return s
	}
	next := appendPrinted(cur, q)
	if !h.prefixes[next] {
		return h.in.id(deadPrefix)
	}
	return h.in.id(next)
}

func appendPrinted(prefix string, q int) string {
	if prefix == "[]" {
		return fmt.Sprintf("[%d]", q)
	}
	return fmt.Sprintf("%s %d]", prefix[:len(prefix)-1], q)
}

func (h *wordHoriz) Accepting(s int) bool { return h.words[h.in.key(s)] }

// AnyWord accepts every sequence of states drawn from the allowed set.
type anyHoriz struct {
	allowed map[int]bool
	all     bool
}

// AllOf returns a Horiz accepting any sequence over the allowed states
// (nil means all states).
func AllOf(allowed []int) Horiz {
	if allowed == nil {
		return &anyHoriz{all: true}
	}
	m := map[int]bool{}
	for _, q := range allowed {
		m[q] = true
	}
	return &anyHoriz{allowed: m}
}

func (h *anyHoriz) Start() int { return 0 }

func (h *anyHoriz) Step(s int, q int) int {
	if s == 1 {
		return 1
	}
	if h.all || h.allowed[q] {
		return 0
	}
	return 1
}

func (h *anyHoriz) Accepting(s int) bool { return s == 0 }

// oneOrMoreHoriz accepts every nonempty sequence over the allowed states.
type oneOrMoreHoriz struct {
	allowed map[int]bool
}

// OneOrMoreOf returns a Horiz accepting any *nonempty* sequence over the
// allowed states.
func OneOrMoreOf(allowed []int) Horiz {
	m := map[int]bool{}
	for _, q := range allowed {
		m[q] = true
	}
	return &oneOrMoreHoriz{allowed: m}
}

func (h *oneOrMoreHoriz) Start() int { return 0 }

func (h *oneOrMoreHoriz) Step(s int, q int) int {
	if s == 2 || !h.allowed[q] {
		return 2
	}
	return 1
}

func (h *oneOrMoreHoriz) Accepting(s int) bool { return s == 1 }

// UnionNTA returns an automaton for L(a) ∪ L(b): the disjoint union of the
// two automata (regular tree languages are closed under union).
func UnionNTA(a, b *NTA) *NTA {
	out := New(a.States + b.States)
	for _, r := range a.Rules {
		out.AddRule(r)
	}
	for _, r := range b.Rules {
		out.AddRule(Rule{Label: r.Label, State: r.State + a.States, H: &shiftedHoriz{inner: r.H, shift: a.States}})
	}
	copy(out.Final, a.Final)
	for q, f := range b.Final {
		out.Final[a.States+q] = f
	}
	return out
}

// shiftedHoriz renumbers the child-state alphabet of a horizontal language
// embedded in a disjoint union: states below shift belong to the other
// component and send the run to a dead H-state.
type shiftedHoriz struct {
	inner Horiz
	shift int
}

func (h *shiftedHoriz) Start() int { return h.inner.Start() + 1 }

func (h *shiftedHoriz) Step(s int, q int) int {
	if s == 0 {
		return 0 // dead
	}
	if q < h.shift {
		return 0
	}
	return h.inner.Step(s-1, q-h.shift) + 1
}

func (h *shiftedHoriz) Accepting(s int) bool {
	return s != 0 && h.inner.Accepting(s-1)
}

// IntersectNTA returns an automaton for L(a) ∩ L(b): the product
// construction, with horizontal languages running in lockstep over state
// pairs.
func IntersectNTA(a, b *NTA) *NTA {
	nb := b.States
	out := New(a.States * nb)
	for _, ra := range a.Rules {
		for _, rb := range b.Rules {
			if ra.Label != rb.Label {
				continue
			}
			out.AddRule(Rule{
				Label: ra.Label,
				State: ra.State*nb + rb.State,
				H:     &pairHoriz{x: ra.H, y: rb.H, nb: nb},
			})
		}
	}
	for qa := 0; qa < a.States; qa++ {
		for qb := 0; qb < nb; qb++ {
			out.Final[qa*nb+qb] = a.Final[qa] && b.Final[qb]
		}
	}
	return out
}

// pairHoriz runs two horizontal automata in lockstep over pair-encoded
// child states; its own states are interned pairs.
type pairHoriz struct {
	x, y Horiz
	nb   int
	in   internTable[[2]int]
}

func (h *pairHoriz) id(sx, sy int) int {
	if h.in.ids == nil {
		h.in.ids = map[[2]int]int{}
	}
	return h.in.id([2]int{sx, sy})
}

func (h *pairHoriz) Start() int { return h.id(h.x.Start(), h.y.Start()) }

func (h *pairHoriz) Step(s int, q int) int {
	pair := h.in.key(s)
	return h.id(h.x.Step(pair[0], q/h.nb), h.y.Step(pair[1], q%h.nb))
}

func (h *pairHoriz) Accepting(s int) bool {
	pair := h.in.key(s)
	return h.x.Accepting(pair[0]) && h.y.Accepting(pair[1])
}
