package treeauto

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/rex"
	"stackless/internal/tree"
)

// leafNTA builds a tiny NTA over {a,b}: state 0 for b-leaves, state 1 for
// any a-node, final 1 — accepting trees with an a-root whose children are
// all b-leaves or a-nodes.
func leafNTA() *NTA {
	n := New(2)
	n.AddRule(Rule{Label: "b", State: 0, H: ExactWords([]int{})})
	n.AddRule(Rule{Label: "a", State: 1, H: AllOf([]int{0, 1})})
	n.Final[1] = true
	return n
}

func TestNTAMembership(t *testing.T) {
	n := leafNTA()
	cases := []struct {
		tr   string
		want bool
	}{
		{"a", true},
		{"a(b,b)", true},
		{"a(a(b),b)", true},
		{"b", false},
		{"a(b(b))", false}, // b with a child has no rule
	}
	for _, c := range cases {
		if got := n.Accepts(tree.MustParse(c.tr)); got != c.want {
			t.Errorf("Accepts(%s) = %v, want %v", c.tr, got, c.want)
		}
	}
}

func TestNTAEmptiness(t *testing.T) {
	n := leafNTA()
	if n.IsEmpty() {
		t.Error("nonempty automaton reported empty")
	}
	// An automaton whose only final state is uninhabited.
	m := New(2)
	m.AddRule(Rule{Label: "a", State: 0, H: ExactWords([]int{1})}) // needs state 1 below
	m.Final[0] = true
	if !m.IsEmpty() {
		t.Error("empty automaton reported nonempty")
	}
}

func TestNTAEquivalenceSmall(t *testing.T) {
	// Two different presentations of "all-a trees".
	a := New(1)
	a.AddRule(Rule{Label: "a", State: 0, H: AllOf([]int{0})})
	a.Final[0] = true

	b := New(2)
	b.AddRule(Rule{Label: "a", State: 0, H: ExactWords([]int{})})      // a-leaf
	b.AddRule(Rule{Label: "a", State: 1, H: OneOrMoreOf([]int{0, 1})}) // internal a
	b.Final[0], b.Final[1] = true, true

	eq, err := Equivalent(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("equivalent automata reported inequivalent")
	}

	// Tweak: b no longer accepts single leaves.
	b.Final[0] = false
	eq, err = Equivalent(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("inequivalent automata reported equivalent")
	}
}

// TestProp23Example26 converts the Example 2.6 restricted DRA to an NTA and
// compares them on random trees — the executable content of Prop 2.3.
func TestProp23Example26(t *testing.T) {
	d := core.Example26()
	conv, err := FromRestrictedDRA(d, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	labels := []string{"a", "b", "c"}
	agreeTrue, agreeFalse := 0, 0
	for i := 0; i < 400; i++ {
		tr := randomTree(rng, labels, 1+rng.Intn(14))
		want, err := AcceptsTree(d, tr)
		if err != nil {
			t.Fatal(err)
		}
		got := conv.NTA.Accepts(tr)
		if got != want {
			t.Fatalf("Prop 2.3 NTA disagrees on %s: nta=%v dra=%v", tr, got, want)
		}
		if want {
			agreeTrue++
		} else {
			agreeFalse++
		}
	}
	if agreeTrue == 0 || agreeFalse == 0 {
		t.Fatalf("degenerate sampling: %d accepting, %d rejecting", agreeTrue, agreeFalse)
	}
}

// TestProp23Example25 does the same for the Example 2.5 machine (children
// of the root spell a word of ab*).
func TestProp23Example25(t *testing.T) {
	l := rex.MustCompile("ab*", alphabet.Letters("ab"))
	d := core.Example25(l)
	if !d.IsRestricted() {
		t.Fatal("Example 2.5 DRA should be restricted")
	}
	conv, err := FromRestrictedDRA(d, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 300; i++ {
		tr := randomTree(rng, []string{"a", "b"}, 1+rng.Intn(10))
		want, err := AcceptsTree(d, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got := conv.NTA.Accepts(tr); got != want {
			t.Fatalf("Prop 2.3 NTA disagrees on %s: nta=%v dra=%v", tr, got, want)
		}
	}
}

func TestProp23RejectsUnrestricted(t *testing.T) {
	if _, err := FromRestrictedDRA(core.Example22(), false); err == nil {
		t.Error("Example 2.2 is unrestricted; conversion must fail")
	}
}

// queryDRAFromDFA builds a trivially restricted DRA (no registers) that
// simulates a DFA over opening tags and ignores register structure; closing
// tags revert... they cannot, so we use a DFA-realizable query: one whose
// tag DFA comes from RegisterlessQL. For the Prop 2.13 tests we instead
// exercise hand-built DRAs below.
//
// registerlessDRA wraps a registerless tag automaton (Lemma 3.5 output)
// as a 0-register table DRA.
func registerlessDRA(tag *core.TagDFA) *core.DRA {
	d := core.NewDRA(tag.Alphabet, tag.NumStates(), tag.Start, 0)
	copy(d.Accept, tag.Accept)
	for q := 0; q < tag.NumStates(); q++ {
		for a := 0; a < tag.Alphabet.Size(); a++ {
			d.SetForAllTests(q, a, false, 0, tag.OpenT[q][a])
			d.SetForAllTests(q, a, true, 0, tag.CloseT[q][a])
		}
	}
	return d
}

// TestMarkedQueryNTA checks the M_Q automaton against the DRA's actual
// selections on random trees.
func TestMarkedQueryNTA(t *testing.T) {
	// The query QL for L = a(a|b)* (registerless: almost-reversible).
	l := rex.MustCompile("a(a|b)*", alphabet.Letters("ab"))
	tag := compileRegisterless(t, l)
	d := registerlessDRA(tag)
	conv, err := FromRestrictedDRA(d, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 200; i++ {
		tr := randomTree(rng, []string{"a", "b"}, 1+rng.Intn(10))
		sel, err := SelectedPositions(d, tr)
		if err != nil {
			t.Fatal(err)
		}
		marked := MarkTree(tr, sel)
		if !conv.NTA.Accepts(marked) {
			t.Fatalf("M_Q rejects correctly marked tree %s", marked)
		}
		// Flip one mark: must be rejected.
		if tr.Size() > 0 {
			flipPos := rng.Intn(tr.Size())
			var wrong []int
			found := false
			for _, p := range sel {
				if p == flipPos {
					found = true
					continue
				}
				wrong = append(wrong, p)
			}
			if !found {
				wrong = append(wrong, flipPos)
				sortInts(wrong)
			}
			badMarked := MarkTree(tr, wrong)
			if conv.NTA.Accepts(badMarked) {
				t.Fatalf("M_Q accepts incorrectly marked tree %s (correct %v, used %v)", badMarked, sel, wrong)
			}
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func compileRegisterless(t *testing.T, l *dfa.DFA) *core.TagDFA {
	t.Helper()
	an := classify.Analyze(l)
	tag, err := core.RegisterlessQL(an)
	if err != nil {
		t.Fatal(err)
	}
	return tag
}

// TestProp213PathQueryYes: a registerless DRA realizing an RPQ must be
// recognized as a path query.
func TestProp213PathQueryYes(t *testing.T) {
	l := rex.MustCompile("a(a|b)*", alphabet.Letters("ab"))
	d := registerlessDRA(compileRegisterless(t, l))
	ok, err := IsPathQuery(d, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("query of a(a|b)* should be a path query")
	}
}

// TestProp213PathQueryNo: a DRA that selects a node only when it is a
// *leaf* (closing right after opening) is sibling-order invariant but not a
// path query... pre-selection cannot see ahead, so instead use a query that
// depends on the *previous* siblings: select every node that is preceded by
// some earlier sibling subtree — not a path query.
func TestProp213PathQueryNo(t *testing.T) {
	// DRA over {a}: select an opening tag iff some closing tag was read
	// before it (i.e. the node is not on the leftmost branch). This query is
	// not a path query: in a(a,a) the second child is selected but the
	// single-branch tree with the same path a·a is not.
	alph := alphabet.Letters("a")
	d := core.NewDRA(alph, 2, 0, 0)
	d.Accept[1] = true
	d.SetForAllTests(0, 0, false, 0, 0)
	d.SetForAllTests(0, 0, true, 0, 1)
	d.SetForAllTests(1, 0, false, 0, 1)
	d.SetForAllTests(1, 0, true, 0, 1)
	ok, err := IsPathQuery(d, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("non-path query misclassified as a path query")
	}
}

func randomTree(rng *rand.Rand, labels []string, budget int) *tree.Node {
	n := tree.New(labels[rng.Intn(len(labels))])
	budget--
	for budget > 0 && rng.Intn(3) != 0 {
		sub := 1 + rng.Intn(budget)
		n.Children = append(n.Children, randomTree(rng, labels, sub))
		budget -= sub
	}
	return n
}

// TestNTAUnionIntersection checks the tree-language closures against
// per-tree evaluation on random trees.
func TestNTAUnionIntersection(t *testing.T) {
	// a-trees: every node labelled a; b-leaf trees: root a, children are
	// b-leaves or nested a-nodes (the leafNTA language).
	allA := New(1)
	allA.AddRule(Rule{Label: "a", State: 0, H: AllOf([]int{0})})
	allA.Final[0] = true
	mixed := leafNTA()

	uni := UnionNTA(allA, mixed)
	inter := IntersectNTA(allA, mixed)
	rng := rand.New(rand.NewSource(34))
	both, either := 0, 0
	for i := 0; i < 500; i++ {
		tr := randomTree(rng, []string{"a", "b"}, 1+rng.Intn(8))
		inA, inM := allA.Accepts(tr), mixed.Accepts(tr)
		if got := uni.Accepts(tr); got != (inA || inM) {
			t.Fatalf("union wrong on %s: got %v, want %v∨%v", tr, got, inA, inM)
		}
		if got := inter.Accepts(tr); got != (inA && inM) {
			t.Fatalf("intersection wrong on %s", tr)
		}
		if inA && inM {
			both++
		}
		if inA != inM {
			either++
		}
	}
	if both == 0 || either == 0 {
		t.Fatalf("degenerate sampling: both=%d either=%d", both, either)
	}
	// All-a trees are already in the leafNTA language, so the union must be
	// equivalent to mixed — while the intersection (exactly the all-a
	// trees) must not be.
	eq, err := Equivalent(uni, mixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("L(allA) ⊆ L(mixed), so the union should equal mixed")
	}
	eq, err = Equivalent(inter, mixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("the intersection is a proper sublanguage of mixed")
	}
}
