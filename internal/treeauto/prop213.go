package treeauto

import (
	"fmt"

	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/tree"
)

// Proposition 2.13: it is decidable whether the query realized by a given
// restricted depth-register automaton is an RPQ. Following the proof:
//
//  1. build the NTA for M_Q, the marked trees (T, Q(T)) (Proposition 2.3's
//     labelling, marking a node iff the state after its opening tag is
//     accepting);
//  2. extract L_Q, the path language read off single-branch runs — on a
//     descending run every register stays strictly below the current depth,
//     so the DRA projects to an ordinary DFA over Γ (Proposition 2.11);
//  3. build the NTA for M_{L_Q}, the trees marked at exactly the nodes
//     whose root path lies in L_Q;
//  4. test the two NTAs for equivalence.

// ProjectionDFA extracts the descending-run DFA over Γ: the automaton
// obtained by restricting the DRA to opening tags, where the register tests
// are constantly (X≤, X≥) = (Ξ, ∅).
func ProjectionDFA(d *core.DRA) *dfa.DFA {
	fullXi := core.RegSet(1<<uint(d.Regs)) - 1
	out := dfa.New(d.Alphabet, d.States, d.Start)
	copy(out.Accept, d.Accept)
	for q := 0; q < d.States; q++ {
		for a := 0; a < d.Alphabet.Size(); a++ {
			out.Delta[q][a] = d.Transition(q, a, false, fullXi, 0).Next
		}
	}
	return out
}

// MarkedPathNTA builds the NTA recognizing M_L for the path language of l:
// trees over the marked alphabet in which a node is marked iff the label
// path from the root to it is accepted by l.
func MarkedPathNTA(l *dfa.DFA) *NTA {
	// State (sym, q): the node has label sym and the DFA reaches q on the
	// path from the root up to and including this node.
	type pathState struct{ sym, q int }
	st := newIntern[pathState]()
	k := l.Alphabet.Size()
	for sym := 0; sym < k; sym++ {
		for q := 0; q < l.NumStates(); q++ {
			st.id(pathState{sym, q})
		}
	}
	n := New(k * l.NumStates())
	for sym := 0; sym < k; sym++ {
		for q := 0; q < l.NumStates(); q++ {
			id := st.id(pathState{sym, q})
			// Children must carry states (b, δ(q, b)).
			allowed := make([]int, 0, k)
			for b := 0; b < k; b++ {
				allowed = append(allowed, st.id(pathState{b, l.Delta[q][b]}))
			}
			n.AddRule(Rule{
				Label: MarkLabel(l.Alphabet.Symbol(sym), l.Accept[q]),
				State: id,
				H:     AllOf(allowed),
			})
			if l.Delta[l.Start][sym] == q {
				n.Final[id] = true
			}
		}
	}
	return n
}

// IsPathQuery decides whether the query realized (by pre-selection) by the
// restricted DRA d is an RPQ, i.e. a path query (Proposition 2.13).
// maxPairs bounds the equivalence test's search (0 for the default).
func IsPathQuery(d *core.DRA, maxPairs int) (bool, error) {
	conv, err := FromRestrictedDRA(d, true)
	if err != nil {
		return false, err
	}
	ml := MarkedPathNTA(ProjectionDFA(d))
	return Equivalent(conv.NTA, ml, maxPairs)
}

// SelectedPositions runs the DRA over the markup encoding of t and returns
// the preorder positions it pre-selects — the reference semantics for the
// M_Q automata (test helper).
func SelectedPositions(d *core.DRA, t *tree.Node) ([]int, error) {
	return core.SelectPositions(d.Evaluator(), encoding.NewSliceSource(encoding.Markup(t)))
}

// AcceptsTree runs the DRA over the markup encoding of t (test helper for
// the Proposition 2.3 conversion).
func AcceptsTree(d *core.DRA, t *tree.Node) (bool, error) {
	ok, err := core.Recognize(d.Evaluator(), encoding.NewSliceSource(encoding.Markup(t)))
	if err != nil {
		return false, fmt.Errorf("treeauto: %w", err)
	}
	return ok, nil
}
