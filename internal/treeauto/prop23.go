package treeauto

import (
	"fmt"

	"stackless/internal/core"
	"stackless/internal/tree"
)

// Proposition 2.3: every restricted depth-register automaton recognizes a
// regular tree language. The construction follows the paper's proof: the
// NTA guesses, for each node v, an auxiliary label
//
//	((X, p), Y, (Z, q), q′)
//
// meaning: reading v's opening tag loads the current depth into X and moves
// to state p; the infix strictly between v's tags loads exactly the
// registers Y; v's closing tag loads Z and moves to q; and q′ is the state
// just before the closing tag (p for a leaf, the exit state of the last
// child otherwise). The horizontal languages verify the rephrased local
// conditions of the proof, which are sound precisely because the automaton
// is restricted (Xi ∪ Yi ⊆ Zi after climbing).
//
// (The root's closing-tag test set is Ξ \ (X ∪ Y): exactly the registers
// never loaded still hold the initial 0 ≤ 0.)

// auxState is the interned NTA state.
type auxState struct {
	sym    int // label id in the DRA's alphabet
	x      core.RegSet
	p      int
	y      core.RegSet
	z      core.RegSet
	q      int
	qprime int
}

// DRAConversion is the result of converting a restricted DRA.
type DRAConversion struct {
	NTA *NTA
	dra *core.DRA
	st  *internTable[auxState]
}

// FromRestrictedDRA converts a restricted DRA into an equivalent NTA
// (Proposition 2.3). If markQuery is true, the NTA instead recognizes the
// marked-tree language M_Q of the query the DRA realizes by pre-selection
// (every correctly marked tree is accepted regardless of the DRA's final
// verdict); node labels then take the form MarkLabel(a, selected).
func FromRestrictedDRA(d *core.DRA, markQuery bool) (*DRAConversion, error) {
	if !d.IsRestricted() {
		return nil, fmt.Errorf("treeauto: Proposition 2.3 requires a restricted DRA")
	}
	fullXi := core.RegSet(1<<uint(d.Regs)) - 1
	st := newIntern[auxState]()

	// Enumerate all auxiliary states.
	var all []auxState
	for sym := 0; sym < d.Alphabet.Size(); sym++ {
		for x := core.RegSet(0); x <= fullXi; x++ {
			for p := 0; p < d.States; p++ {
				// Prune with the opening condition relative to any
				// predecessor state: (X,p) must be in the image of
				// δ(·, a, Ξ, ∅).
				feasible := false
				for pred := 0; pred < d.States; pred++ {
					tr := d.Transition(pred, sym, false, fullXi, 0)
					if tr.Load == x && tr.Next == p {
						feasible = true
						break
					}
				}
				if !feasible {
					continue
				}
				for y := core.RegSet(0); y <= fullXi; y++ {
					for z := core.RegSet(0); z <= fullXi; z++ {
						for q := 0; q < d.States; q++ {
							for qp := 0; qp < d.States; qp++ {
								s := auxState{sym, x, p, y, z, q, qp}
								st.id(s)
								all = append(all, s)
							}
						}
					}
				}
			}
		}
	}

	n := New(len(all))
	conv := &DRAConversion{NTA: n, dra: d, st: st}
	for _, s := range all {
		label := d.Alphabet.Symbol(s.sym)
		if markQuery {
			label = MarkLabel(label, d.Accept[s.p])
		}
		n.AddRule(Rule{Label: label, State: st.id(s), H: &auxHoriz{d: d, st: st, parent: s, in: newIntern[hKey]()}})
		// Root consistency: the opening from the initial configuration and
		// the closing back to depth 0.
		openTr := d.Transition(d.Start, s.sym, false, fullXi, 0)
		if openTr.Load != s.x || openTr.Next != s.p {
			continue
		}
		closeTr := d.Transition(s.qprime, s.sym, true, fullXi&^(s.x|s.y), fullXi)
		if closeTr.Load != s.z || closeTr.Next != s.q {
			continue
		}
		if markQuery || d.Accept[s.q] {
			n.Final[st.id(s)] = true
		}
	}
	return conv, nil
}

// MarkLabel builds the marked-alphabet label used by the M_Q automata.
func MarkLabel(label string, marked bool) string {
	if marked {
		return label + "#1"
	}
	return label + "#0"
}

// MarkTree returns a copy of t over the marked alphabet, marked at exactly
// the preorder positions in sel (which must be sorted).
func MarkTree(t *tree.Node, sel []int) *tree.Node {
	pos := -1
	selIdx := 0
	var rec func(n *tree.Node) *tree.Node
	rec = func(n *tree.Node) *tree.Node {
		pos++
		marked := selIdx < len(sel) && sel[selIdx] == pos
		if marked {
			selIdx++
		}
		out := tree.New(MarkLabel(n.Label, marked))
		for _, c := range n.Children {
			out.Children = append(out.Children, rec(c))
		}
		return out
	}
	return rec(t)
}

// hKey is the interned horizontal state: the expected entry state for the
// next child, the accumulated interior loads, the accumulated
// X ∪ Z1 ∪ … ∪ Zi, and the last child's exit state (-1 for none, -2 dead).
type hKey struct {
	pNext int
	yAcc  core.RegSet
	zAcc  core.RegSet
	lastQ int
}

type auxHoriz struct {
	d      *core.DRA
	st     *internTable[auxState]
	parent auxState
	in     *internTable[hKey]
}

func (h *auxHoriz) Start() int {
	return h.in.id(hKey{pNext: h.parent.p, yAcc: 0, zAcc: h.parent.x, lastQ: -1})
}

func (h *auxHoriz) Step(hs int, childState int) int {
	cur := h.in.key(hs)
	if cur.lastQ == -2 {
		return hs // dead
	}
	c := h.st.key(childState)
	fullXi := core.RegSet(1<<uint(h.d.Regs)) - 1
	dead := h.in.id(hKey{lastQ: -2})

	// Opening condition: (Xi, pi) = δ(p′, ai, Ξ, ∅).
	openTr := h.d.Transition(cur.pNext, c.sym, false, fullXi, 0)
	if openTr.Load != c.x || openTr.Next != c.p {
		return dead
	}
	// Closing condition:
	// (Zi, qi) = δ(q′i, āi, Ξ\(Xi∪Yi), X∪Z1..Zi-1∪Xi∪Yi).
	closeTr := h.d.Transition(c.qprime, c.sym, true, fullXi&^(c.x|c.y), cur.zAcc|c.x|c.y)
	if closeTr.Load != c.z || closeTr.Next != c.q {
		return dead
	}
	return h.in.id(hKey{
		pNext: c.q,
		yAcc:  cur.yAcc | c.x | c.y | c.z,
		zAcc:  cur.zAcc | c.z,
		lastQ: c.q,
	})
}

func (h *auxHoriz) Accepting(hs int) bool {
	cur := h.in.key(hs)
	if cur.lastQ == -2 {
		return false
	}
	if cur.lastQ == -1 {
		// Leaf: no interior loads, and the state before the closing tag is
		// the state after the opening tag.
		return h.parent.y == 0 && h.parent.qprime == h.parent.p
	}
	return cur.yAcc == h.parent.y && h.parent.qprime == cur.lastQ
}
