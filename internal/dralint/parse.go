package dralint

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"stackless/internal/alphabet"
	"stackless/internal/core"
)

// Parse reads a DRA from the plain-text .dra format so cmd/dralint can
// analyze machines built outside this repository. The format is line
// oriented; '#' starts a comment and blank lines are ignored:
//
//	alphabet a b c        # symbols of Γ, in id order
//	states 3              # number of states (required before trans lines)
//	start 0               # start state (default 0)
//	regs 2                # number of registers (default 0)
//	accept 2              # accepting states, any number per line
//	restricted            # declare the §2.2 restriction (checked by lint)
//	trans 0 a 0,1 1 1 2   # from, tag, X≤, X≥, load, next
//	trans 1 /a - 0 - 2    # '/sym' is the closing tag; '-' is the empty set
//	forall 0 b - 1        # δ(0, b, X≤, X≥) = (∅, 1) for every feasible mask
//	forallr 2 /b - 2      # like forall but reloading X≥\X≤ (§2.2 completion)
//
// Register sets are comma-separated register indices or '-'. The header
// directives (alphabet, states, start, regs, accept, restricted) must all
// precede the first transition line. Parse validates dimensions eagerly —
// including the core.MaxTableEntries cap, returning an error instead of
// letting core.NewDRA panic — but leaves semantic judgement to Lint.
func Parse(r io.Reader) (*core.DRA, Expect, error) {
	p := parser{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if err := p.line(line, sc.Text()); err != nil {
			return nil, Expect{}, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, Expect{}, fmt.Errorf("dralint: reading input: %w", err)
	}
	if p.d == nil {
		// Even an empty input reports against line 1, not "line 0".
		if err := p.build(max(line, 1)); err != nil {
			return nil, Expect{}, err
		}
	}
	return p.d, p.expect, nil
}

// Expect carries the declarations of a parsed .dra file that are promises
// to be checked rather than part of the machine itself.
type Expect struct {
	// Restricted is set by the 'restricted' directive: the author claims
	// the machine satisfies the §2.2 restriction, so it should be linted
	// with Config.RequireRestricted.
	Restricted bool
}

type parser struct {
	alph    *alphabet.Alphabet
	states  int
	start   int
	regs    int
	accepts []int
	expect  Expect
	d       *core.DRA // built lazily at the first transition line
}

func errAt(line int, msg string, args ...any) error {
	return fmt.Errorf("dralint: line %d: %s", line, fmt.Sprintf(msg, args...))
}

func (p *parser) line(n int, raw string) error {
	if i := strings.IndexByte(raw, '#'); i >= 0 {
		raw = raw[:i]
	}
	fields := strings.Fields(raw)
	if len(fields) == 0 {
		return nil
	}
	dir, args := fields[0], fields[1:]
	switch dir {
	case "alphabet", "states", "start", "regs", "accept", "restricted":
		if p.d != nil {
			return errAt(n, "%s directive after the first transition", dir)
		}
	}
	switch dir {
	case "alphabet":
		if p.alph != nil {
			return errAt(n, "duplicate alphabet directive")
		}
		if len(args) == 0 {
			return errAt(n, "alphabet needs at least one symbol")
		}
		p.alph = alphabet.New(args...)
		if p.alph.Size() != len(args) {
			return errAt(n, "alphabet lists a symbol twice")
		}
		return nil
	case "states", "start", "regs":
		if len(args) != 1 {
			return errAt(n, "%s takes exactly one number", dir)
		}
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 0 {
			return errAt(n, "%s: bad count %q", dir, args[0])
		}
		switch dir {
		case "states":
			p.states = v
		case "start":
			p.start = v
		case "regs":
			if v > 16 {
				return errAt(n, "regs %d above the table representation's 16", v)
			}
			p.regs = v
		}
		return nil
	case "accept":
		for _, a := range args {
			v, err := strconv.Atoi(a)
			if err != nil || v < 0 {
				return errAt(n, "accept: bad state %q", a)
			}
			p.accepts = append(p.accepts, v)
		}
		return nil
	case "restricted":
		if len(args) != 0 {
			return errAt(n, "restricted takes no arguments")
		}
		p.expect.Restricted = true
		return nil
	case "trans", "forall", "forallr":
		if p.d == nil {
			if err := p.build(n); err != nil {
				return err
			}
		}
		return p.transition(n, dir, args)
	}
	return errAt(n, "unknown directive %q", dir)
}

// build finalizes the header and allocates the automaton.
func (p *parser) build(n int) error {
	if p.alph == nil {
		return errAt(n, "missing alphabet directive")
	}
	if p.states <= 0 {
		return errAt(n, "missing or zero states directive")
	}
	if p.start >= p.states {
		return errAt(n, "start state %d out of range [0,%d)", p.start, p.states)
	}
	if entries, ok := core.TableEntries(p.states, p.alph.Size(), p.regs); !ok {
		return errAt(n, "table needs %d entries, above the %d cap", entries, core.MaxTableEntries)
	}
	p.d = core.NewDRA(p.alph, p.states, p.start, p.regs)
	for _, a := range p.accepts {
		if a >= p.states {
			return errAt(n, "accept state %d out of range [0,%d)", a, p.states)
		}
		p.d.Accept[a] = true
	}
	return nil
}

func (p *parser) transition(n int, dir string, args []string) error {
	want, shape := 6, "from tag X≤ X≥ load next"
	if dir != "trans" {
		want, shape = 4, "from tag load next"
	}
	if len(args) != want {
		return errAt(n, "%s takes %d fields (%s)", dir, want, shape)
	}
	from, err := strconv.Atoi(args[0])
	if err != nil || from < 0 || from >= p.states {
		return errAt(n, "from state %q out of range [0,%d)", args[0], p.states)
	}
	symName, closing := args[1], false
	if strings.HasPrefix(symName, "/") {
		symName, closing = symName[1:], true
	}
	sym, ok := p.alph.ID(symName)
	if !ok {
		return errAt(n, "symbol %q not in the alphabet", symName)
	}
	rest := args[2:]
	var le, ge core.RegSet
	if dir == "trans" {
		if le, err = p.regSet(n, rest[0]); err != nil {
			return err
		}
		if ge, err = p.regSet(n, rest[1]); err != nil {
			return err
		}
		rest = rest[2:]
	}
	load, err := p.regSet(n, rest[0])
	if err != nil {
		return err
	}
	next, err := strconv.Atoi(rest[1])
	if err != nil || next < 0 || next >= p.states {
		return errAt(n, "next state %q out of range [0,%d)", rest[1], p.states)
	}
	switch dir {
	case "trans":
		p.d.SetTransition(from, sym, closing, le, ge, load, next)
	case "forall":
		p.d.SetForAllTests(from, sym, closing, load, next)
	case "forallr":
		p.d.SetForAllTestsRestricted(from, sym, closing, load, next)
	}
	return nil
}

// regSet parses a comma-separated register list; '-' is the empty set.
func (p *parser) regSet(n int, s string) (core.RegSet, error) {
	if s == "-" {
		return 0, nil
	}
	var out core.RegSet
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v >= p.regs {
			return 0, errAt(n, "register %q out of range [0,%d)", part, p.regs)
		}
		out = out.With(v)
	}
	return out, nil
}
