package dralint_test

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/dralint"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
)

func lintClean(t *testing.T, name string, d *core.DRA, restricted bool) {
	t.Helper()
	diags := dralint.LintWith(d, dralint.Config{RequireRestricted: restricted})
	for _, di := range dralint.Filter(diags, dralint.Warning) {
		t.Errorf("%s: %s", name, di)
	}
}

// TestPaperExamplesLintClean: every automaton the paper constructs lints
// with zero findings at Warning severity or above. The restricted ones are
// additionally held to the §2.2 restriction; Example 2.2 is deliberately
// unrestricted (its language is not regular), so it is linted without the
// flag — with it, the linter must object.
func TestPaperExamplesLintClean(t *testing.T) {
	lintClean(t, "Example 2.2", core.Example22(), false)
	for _, expr := range []string{"ab*", "(ab)*", "a*|b*", ".*a"} {
		l := rex.MustCompile(expr, alphabet.Letters("ab"))
		lintClean(t, "Example 2.5 "+expr, core.Example25(l), true)
	}
	lintClean(t, "Example 2.6", core.Example26(), true)
	lintClean(t, "Example 2.7 (minimal variant)", core.Example27Minimal(), true)
	for _, chain := range [][]string{{"a"}, {"a", "b"}, {"a", "b", "c"}} {
		d, err := core.ChainPatternDRA(alphabet.Letters("abc"), chain)
		if err != nil {
			t.Fatal(err)
		}
		lintClean(t, "Prop 2.8 chain", d, true)
	}
	for _, expr := range []string{paperfigs.Fig3aRegex, paperfigs.Fig3bRegex, paperfigs.Fig3cRegex, "ab*", "(b|ab*a)*"} {
		an := classify.Analyze(rex.MustCompile(expr, paperfigs.GammaABC()))
		d, err := core.FormalDRA(an, 0)
		if err != nil {
			t.Fatal(err)
		}
		lintClean(t, "FormalDRA "+expr, d, true)
	}
}

// TestExample22UnrestrictedDetected: the linter certifies the paper's
// claim that Example 2.2 is not restricted.
func TestExample22UnrestrictedDetected(t *testing.T) {
	diags := dralint.LintWith(core.Example22(), dralint.Config{RequireRestricted: true})
	if len(dralint.ByKind(diags)[dralint.KindUnrestricted]) == 0 {
		t.Fatal("Example 2.2 must trigger unrestricted findings under RequireRestricted")
	}
}

// Machines that trigger each diagnostic kind — the table demanded by the
// issue: at least 8 distinct kinds, each with a unit test exhibiting a
// machine that provokes it.

func totalDRA(states, regs int, accept ...int) *core.DRA {
	alph := alphabet.Letters("ab")
	d := core.NewDRA(alph, states, 0, regs)
	for q := 0; q < states; q++ {
		for sym := 0; sym < alph.Size(); sym++ {
			d.SetForAllTestsRestricted(q, sym, false, 0, q)
			d.SetForAllTestsRestricted(q, sym, true, 0, q)
		}
	}
	for _, q := range accept {
		d.Accept[q] = true
	}
	return d
}

func hasKind(t *testing.T, diags []dralint.Diagnostic, kind dralint.Kind, minSev dralint.Severity) {
	t.Helper()
	for _, d := range diags {
		if d.Kind == kind && d.Severity >= minSev {
			return
		}
	}
	t.Errorf("no %s finding at severity >= %s; got:", kind, minSev)
	for _, d := range diags {
		t.Logf("  %s", d)
	}
}

func TestKindMalformed(t *testing.T) {
	d := totalDRA(2, 1, 0)
	d.Start = 5
	hasKind(t, dralint.Lint(d), dralint.KindMalformed, dralint.Error)

	d = totalDRA(2, 1, 0)
	d.States = 3 // table no longer matches
	hasKind(t, dralint.Lint(d), dralint.KindMalformed, dralint.Error)

	d = totalDRA(2, 1, 0)
	d.SetForAllTests(1, 0, false, 0, 9) // successor out of range
	hasKind(t, dralint.Lint(d), dralint.KindMalformed, dralint.Error)

	hasKind(t, dralint.Lint(nil), dralint.KindMalformed, dralint.Error)
}

func TestKindInfeasibleMaskSet(t *testing.T) {
	d := totalDRA(1, 1, 0)
	// X≤∪X≥ = ∅ does not cover register 0: infeasible.
	d.SetTransition(0, 0, false, 0, 0, 0, 0)
	hasKind(t, dralint.Lint(d), dralint.KindInfeasibleMaskSet, dralint.Warning)
}

func TestKindIncompleteTable(t *testing.T) {
	alph := alphabet.Letters("ab")
	d := core.NewDRA(alph, 1, 0, 0)
	d.Accept[0] = true
	d.SetForAllTests(0, 0, false, 0, 0) // open a only; everything else left default
	hasKind(t, dralint.Lint(d), dralint.KindIncompleteTable, dralint.Warning)
}

func TestKindUnreachableState(t *testing.T) {
	d := totalDRA(3, 0, 0) // states 1 and 2 are self-looping islands
	hasKind(t, dralint.Lint(d), dralint.KindUnreachableState, dralint.Warning)
}

func TestKindUnreachableAccept(t *testing.T) {
	d := totalDRA(2, 0, 0, 1) // accepting state 1 unreachable
	hasKind(t, dralint.Lint(d), dralint.KindUnreachableAccept, dralint.Warning)
}

func TestKindVacuousAcceptance(t *testing.T) {
	d := totalDRA(1, 0) // no accepting states at all
	hasKind(t, dralint.Lint(d), dralint.KindVacuousAcceptance, dralint.Warning)
}

func TestKindDeadTransition(t *testing.T) {
	// Every transition loads the register, so on entry to any state the
	// register equals the depth; at an opening tag the register is then
	// strictly below the new depth, making the X≥-only and X≤∩X≥ entries
	// dead. Branching to a *different* state on such an entry is the
	// suspicious kind of dead transition.
	alph := alphabet.Letters("ab")
	d := core.NewDRA(alph, 2, 0, 1)
	d.Accept[1] = true
	for q := 0; q < 2; q++ {
		for sym := 0; sym < 2; sym++ {
			d.SetForAllTests(q, sym, false, 1, q)
			d.SetForAllTests(q, sym, true, 1, q)
		}
	}
	// Dead branch: open a with the register at the new depth (impossible).
	d.SetTransition(0, 0, false, 1, 1, 1, 1)
	hasKind(t, dralint.Lint(d), dralint.KindDeadTransition, dralint.Info)
}

func TestKindUnrestricted(t *testing.T) {
	alph := alphabet.Letters("ab")
	d := core.NewDRA(alph, 1, 0, 1)
	d.Accept[0] = true
	for sym := 0; sym < 2; sym++ {
		d.SetForAllTests(0, sym, false, 0, 0)
		d.SetForAllTests(0, sym, true, 0, 0) // keeps X≥\X≤ without reloading
	}
	diags := dralint.LintWith(d, dralint.Config{RequireRestricted: true})
	hasKind(t, diags, dralint.KindUnrestricted, dralint.Error)
	if n := len(dralint.ByKind(dralint.Lint(d))[dralint.KindUnrestricted]); n != 0 {
		t.Errorf("unrestricted findings reported without RequireRestricted: %d", n)
	}
}

func TestKindRegisterUnused(t *testing.T) {
	// No transition loads register 0 and none branches on it.
	alph := alphabet.Letters("ab")
	d := core.NewDRA(alph, 1, 0, 1)
	d.Accept[0] = true
	for sym := 0; sym < 2; sym++ {
		d.SetForAllTests(0, sym, false, 0, 0)
		d.SetForAllTests(0, sym, true, 0, 0)
	}
	hasKind(t, dralint.Lint(d), dralint.KindRegisterUnused, dralint.Warning)
}

func TestKindRegisterNeverLoaded(t *testing.T) {
	// Branch on the register at closing tags without ever loading it: the
	// register forever holds 0.
	alph := alphabet.Letters("ab")
	d := core.NewDRA(alph, 2, 0, 1)
	d.Accept[1] = true
	for q := 0; q < 2; q++ {
		for sym := 0; sym < 2; sym++ {
			d.SetForAllTests(q, sym, false, 0, q)
			core.EachFeasibleMask(1, func(le, ge core.RegSet) {
				next := q
				if le == 1 && ge == 1 { // register == depth: only at depth 0
					next = 1 - q
				}
				d.SetTransition(q, sym, true, le, ge, 0, next)
			})
		}
	}
	hasKind(t, dralint.Lint(d), dralint.KindRegisterNeverLoaded, dralint.Warning)
}

func TestKindRegisterNeverTested(t *testing.T) {
	// Load the register everywhere, branch on it nowhere.
	alph := alphabet.Letters("ab")
	d := core.NewDRA(alph, 1, 0, 1)
	d.Accept[0] = true
	for sym := 0; sym < 2; sym++ {
		d.SetForAllTests(0, sym, false, 1, 0)
		d.SetForAllTests(0, sym, true, 1, 0)
	}
	hasKind(t, dralint.Lint(d), dralint.KindRegisterNeverTested, dralint.Warning)
}

func TestKindTableBlowup(t *testing.T) {
	d := totalDRA(2, 1, 0, 1)
	diags := dralint.LintWith(d, dralint.Config{TableWarnEntries: 1})
	hasKind(t, diags, dralint.KindTableBlowup, dralint.Warning)
	if len(dralint.ByKind(dralint.Lint(d))[dralint.KindTableBlowup]) != 0 {
		t.Error("tiny table flagged as blow-up under the default threshold")
	}
}

func TestKindTruncated(t *testing.T) {
	d := totalDRA(40, 0) // 39 unreachable states, far over the per-kind cap
	diags := dralint.LintWith(d, dralint.Config{MaxPerKind: 3})
	hasKind(t, diags, dralint.KindTruncated, dralint.Info)
	if n := len(dralint.ByKind(diags)[dralint.KindUnreachableState]); n != 3 {
		t.Errorf("got %d unreachable-state findings, want the cap of 3", n)
	}
}

// TestLintSeverityOrder: findings come most severe first.
func TestLintSeverityOrder(t *testing.T) {
	d := totalDRA(3, 1, 0)
	d.SetForAllTests(1, 0, false, 0, 9)
	diags := dralint.Lint(d)
	for i := 1; i < len(diags); i++ {
		if diags[i].Severity > diags[i-1].Severity {
			t.Fatalf("finding %d (%s) outranks finding %d (%s)", i, diags[i], i-1, diags[i-1])
		}
	}
}

// TestLintRandomDRAsNoPanic: structurally well-formed random machines are
// linted without panicking, and total machines never yield incomplete or
// malformed findings.
func TestLintRandomDRAsNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	alph := alphabet.Letters("abc")
	for i := 0; i < 200; i++ {
		d := core.RandomDRA(rng, alph, 1+rng.Intn(6), rng.Intn(3))
		diags := dralint.Lint(d)
		byKind := dralint.ByKind(diags)
		if len(byKind[dralint.KindIncompleteTable]) != 0 || len(byKind[dralint.KindMalformed]) != 0 {
			t.Fatalf("random total DRA flagged as incomplete/malformed: %v", diags)
		}
	}
}
