package dralint_test

import (
	"strings"
	"testing"

	"stackless/internal/core"
	"stackless/internal/dralint"
	"stackless/internal/encoding"
	"stackless/internal/tree"
)

// example26Text is Example 2.6 (some a-node with a b-descendant) in the
// .dra format, mirroring core.Example26: register 0 stores the depth of
// the current minimal <a>, and the machine restarts when the depth drops
// strictly below it.
const example26Text = `
# Example 2.6 as a restricted DRA
alphabet a b c
states 3
start 0
regs 1
accept 2
restricted

# state 0: wait for an opening <a>; reload everywhere to stay restricted.
forall 0 a 0 1
forall 0 b 0 0
forall 0 c 0 0
forall 0 /a 0 0
forall 0 /b 0 0
forall 0 /c 0 0

# state 1: search the stored a-subtree for b. At closing tags, a register
# strictly above the new depth means the subtree is done: restart.
forallr 1 b - 2
forallr 1 a - 1
forallr 1 c - 1
trans 1 /a - 0 0 0      # register > depth: left the subtree
trans 1 /a 0 0 - 1      # register == depth: still at the a-node
trans 1 /a 0 - - 1      # register < depth: strictly inside
trans 1 /b - 0 0 0
trans 1 /b 0 0 - 1
trans 1 /b 0 - - 1
trans 1 /c - 0 0 0
trans 1 /c 0 0 - 1
trans 1 /c 0 - - 1

# state 2: accepting sink.
forall 2 a 0 2
forall 2 b 0 2
forall 2 c 0 2
forall 2 /a 0 2
forall 2 /b 0 2
forall 2 /c 0 2
`

func TestParseExample26Equivalent(t *testing.T) {
	d, expect, err := dralint.Parse(strings.NewReader(example26Text))
	if err != nil {
		t.Fatal(err)
	}
	if !expect.Restricted {
		t.Error("restricted directive not reported")
	}
	diags := dralint.LintWith(d, dralint.Config{RequireRestricted: true})
	if !dralint.Clean(diags) {
		for _, di := range diags {
			t.Errorf("parsed Example 2.6: %s", di)
		}
	}
	ref := core.Example26()
	for _, s := range []string{"a(b)", "b(a)", "a(a(b))", "b", "a", "c(a(c),a(c(b)))", "a(b(a),a)", "b(b(a(a(b))))", "c(a,b)"} {
		events := encoding.Markup(tree.MustParse(s))
		got := core.RunEvents(d.Evaluator(), events)
		want := core.RunEvents(ref.Evaluator(), events)
		if got != want {
			t.Errorf("parsed vs built Example 2.6 on %s: %v vs %v", s, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, c := range []struct {
		name, in, want string
	}{
		{"empty", "", "missing alphabet"},
		{"no states", "alphabet a\ntrans 0 a - - - 0", "zero states"},
		{"dup alphabet", "alphabet a\nalphabet b\nstates 1", "duplicate alphabet"},
		{"dup symbol", "alphabet a a\nstates 1", "twice"},
		{"bad directive", "alphabet a\nstates 1\nfrobnicate", `unknown directive "frobnicate"`},
		{"late header", "alphabet a\nstates 1\nforall 0 a - 0\nregs 1", "after the first transition"},
		{"start range", "alphabet a\nstates 2\nstart 2\nforall 0 a - 0", "start state 2 out of range"},
		{"accept range", "alphabet a\nstates 1\naccept 3\nforall 0 a - 0", "accept state 3 out of range"},
		{"foreign symbol", "alphabet a\nstates 1\nforall 0 b - 0", `symbol "b" not in the alphabet`},
		{"from range", "alphabet a\nstates 1\nforall 7 a - 0", "from state"},
		{"next range", "alphabet a\nstates 1\nforall 0 a - 7", "next state"},
		{"register range", "alphabet a\nstates 1\nregs 1\ntrans 0 a 5 - - 0", `register "5" out of range`},
		{"field count", "alphabet a\nstates 1\ntrans 0 a - -", "takes 6 fields"},
		{"regs cap", "alphabet a\nstates 1\nregs 17", "above the table representation"},
		{"table cap", "alphabet a\nstates 1000000\nregs 16", "above the"},
	} {
		_, _, err := dralint.Parse(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseHeaderOnly(t *testing.T) {
	d, _, err := dralint.Parse(strings.NewReader("alphabet a\nstates 1\naccept 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	// A header-only machine is valid but totally unset; the linter says so.
	if dralint.Clean(dralint.Lint(d)) {
		t.Error("machine with no transitions linted clean")
	}
}

// FuzzParse: arbitrary text never panics the parser, and machines that
// parse successfully never panic the linter.
func FuzzParse(f *testing.F) {
	f.Add(example26Text)
	f.Add("alphabet a b\nstates 2\nregs 1\naccept 1\ntrans 0 a 0 - 0 1\n")
	f.Add("alphabet x\nstates 1\nforallr 0 /x - 0\n")
	f.Add("states 1\n# no alphabet\n")
	f.Fuzz(func(t *testing.T, in string) {
		d, _, err := dralint.Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		dralint.LintWith(d, dralint.Config{RequireRestricted: true})
	})
}
