package dralint

import "stackless/internal/core"

// Forward dataflow over the abstract transition graph of a DRA.
//
// The analysis tracks, for every state and register, the set of possible
// orders between the register value and the current depth at the moment
// the state is entered: LT (value < depth), EQ, GT, or any subset. The
// Definition 2.1 semantics drive the transfer function exactly:
//
//   - the event updates the depth first: against the incremented depth of
//     an opening tag, a value that was ≤ the old depth is strictly below,
//     and a value strictly above the old depth is equal or still above;
//     closing tags are the mirror image (see transfer);
//   - then the (X≤, X≥) masks are read against the new depth, so a mask is
//     only possible if each register's trit is compatible;
//   - then loads overwrite registers with the new depth (EQ).
//
// A feasible table entry whose mask is incompatible with the fixpoint is
// dead: no run of the machine can ever consult it. States whose fact stays
// empty are unreachable. The abstraction ignores absolute depths, so it
// over-approximates reachability (sound for "dead" and "unreachable"
// verdicts, never flags a live entry).
type trits uint8

const (
	tLT  trits = 1 << iota // register value strictly below the depth
	tEQ                    // equal
	tGT                    // strictly above
	tAny = tLT | tEQ | tGT
)

// maskTrit extracts register i's order from a feasible (X≤, X≥) pair:
// X≤∩X≥ means EQ, X≤ alone LT, X≥ alone GT.
func maskTrit(le, ge core.RegSet, i int) trits {
	switch {
	case le.Has(i) && ge.Has(i):
		return tEQ
	case le.Has(i):
		return tLT
	default:
		return tGT
	}
}

// transfer maps the possible orders before an event to the possible orders
// against the updated depth, per register. Opening tags increment the
// depth: a value ≤ the old depth is strictly below the new one, and a
// value strictly above the old depth (hence ≥ the new one) is equal to or
// still above it. Closing tags are the mirror image.
func transfer(t trits, closing bool) trits {
	var out trits
	if !closing {
		if t&(tLT|tEQ) != 0 {
			out |= tLT
		}
		if t&tGT != 0 {
			out |= tEQ | tGT
		}
	} else {
		if t&(tGT|tEQ) != 0 {
			out |= tGT
		}
		if t&tLT != 0 {
			out |= tLT | tEQ
		}
	}
	return out
}

// flow is the fixpoint result.
type flow struct {
	d       *core.DRA
	reached []bool
	fact    [][]trits // fact[q][i]: possible orders on entry to q; nil row = unreachable
}

// analyze runs the fixpoint. validNext guards against malformed successor
// entries (they contribute no edges; the structural pass reports them).
func analyze(d *core.DRA, validNext func(int) bool) *flow {
	f := &flow{
		d:       d,
		reached: make([]bool, d.States),
		fact:    make([][]trits, d.States),
	}
	enter := func(q int, entry []trits) bool {
		changed := false
		if !f.reached[q] {
			f.reached[q] = true
			f.fact[q] = make([]trits, d.Regs)
			changed = true
		}
		for i, t := range entry {
			if f.fact[q][i]|t != f.fact[q][i] {
				f.fact[q][i] |= t
				changed = true
			}
		}
		return changed
	}

	// The initial configuration has every register equal to the depth
	// (both are 0).
	init := make([]trits, d.Regs)
	for i := range init {
		init[i] = tEQ
	}
	if d.Start < 0 || d.Start >= d.States {
		return f // structural pass reports the bad start state
	}
	enter(d.Start, init)

	queue := []int{d.Start}
	inQueue := make([]bool, d.States)
	inQueue[d.Start] = true
	entry := make([]trits, d.Regs)
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		inQueue[q] = false
		for sym := 0; sym < d.Alphabet.Size(); sym++ {
			for _, closing := range []bool{false, true} {
				core.EachFeasibleMask(d.Regs, func(le, ge core.RegSet) {
					if !f.maskLive(q, sym, closing, le, ge) {
						return
					}
					tr := d.Transition(q, sym, closing, le, ge)
					if !validNext(tr.Next) {
						return
					}
					for i := 0; i < d.Regs; i++ {
						if tr.Load.Has(i) {
							entry[i] = tEQ
						} else {
							entry[i] = maskTrit(le, ge, i)
						}
					}
					if enter(tr.Next, entry) && !inQueue[tr.Next] {
						inQueue[tr.Next] = true
						queue = append(queue, tr.Next)
					}
				})
			}
		}
	}
	return f
}

// maskLive reports whether the mask pair is possible at (q, sym, closing)
// under the current facts. Monotone in the facts, so calling it after the
// fixpoint gives the final verdict.
func (f *flow) maskLive(q, sym int, closing bool, le, ge core.RegSet) bool {
	_ = sym
	if !f.reached[q] {
		return false
	}
	for i := 0; i < f.d.Regs; i++ {
		if maskTrit(le, ge, i)&transfer(f.fact[q][i], closing) == 0 {
			return false
		}
	}
	return true
}

// liveAdjacency builds the per-state successor lists over live edges with
// valid targets, deduplicated, for the reachability analyses.
func (f *flow) liveAdjacency(validNext func(int) bool) [][]int {
	adj := make([][]int, f.d.States)
	// seen[t] == q+1 marks that state q already recorded an edge to t; the
	// generation trick avoids clearing the array between states.
	seen := make([]int, f.d.States)
	for q := 0; q < f.d.States; q++ {
		if !f.reached[q] {
			continue
		}
		for sym := 0; sym < f.d.Alphabet.Size(); sym++ {
			for _, closing := range []bool{false, true} {
				core.EachFeasibleMask(f.d.Regs, func(le, ge core.RegSet) {
					if !f.maskLive(q, sym, closing, le, ge) {
						return
					}
					tr := f.d.Transition(q, sym, closing, le, ge)
					if !validNext(tr.Next) || seen[tr.Next] == q+1 {
						return
					}
					seen[tr.Next] = q + 1
					adj[q] = append(adj[q], tr.Next)
				})
			}
		}
	}
	return adj
}
