package dralint

import (
	"fmt"
	"strings"

	"stackless/internal/core"
	"stackless/internal/dfa"
)

// LintWith analyzes the automaton and returns its findings, most severe
// first. It never panics, whatever the state of d; machines too malformed
// to index safely yield Malformed errors and no deeper analysis.
func LintWith(d *core.DRA, cfg Config) []Diagnostic {
	c := &collector{cfg: cfg}
	l := &linter{d: d, c: c}
	if l.structural() {
		l.tableScan()
		l.flow = analyze(d, l.validNext)
		l.reachability()
		l.deadTransitions()
		if cfg.RequireRestricted {
			l.restriction()
		}
		l.registers()
		l.blowup()
	}
	return c.finish()
}

type linter struct {
	d    *core.DRA
	c    *collector
	flow *flow
}

func (l *linter) validNext(q int) bool { return q >= 0 && q < l.d.States }

// loc renders a table position for messages.
func (l *linter) loc(q, sym int, closing bool, le, ge core.RegSet) string {
	tag := "open"
	if closing {
		tag = "close"
	}
	return fmt.Sprintf("state %d, %s %s, %s", q, tag, l.d.Alphabet.Symbol(sym), maskString(le, ge))
}

func maskString(le, ge core.RegSet) string {
	return fmt.Sprintf("X≤=%s X≥=%s", regSetString(le), regSetString(ge))
}

func regSetString(s core.RegSet) string {
	if s == 0 {
		return "∅"
	}
	var parts []string
	for i := 0; i < 16; i++ { // all 16 representable bits, so foreign bits of malformed sets show up
		if s.Has(i) {
			parts = append(parts, fmt.Sprint(i))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// structural validates everything needed to index the table safely.
// Returns false when deeper analyses must be skipped.
func (l *linter) structural() bool {
	d := l.d
	bad := func(msg string, args ...any) bool {
		l.c.add(Diagnostic{Kind: KindMalformed, Severity: Error, State: -1, Sym: -1, Reg: -1,
			Message: fmt.Sprintf(msg, args...), Cite: "Def. 2.1"})
		return false
	}
	if d == nil {
		return bad("nil automaton")
	}
	if d.Alphabet == nil || d.Alphabet.Size() == 0 {
		return bad("empty or missing alphabet: a DRA reads tags from Γ ∪ Γ̄")
	}
	if d.States <= 0 {
		return bad("no states (States=%d)", d.States)
	}
	if d.Regs < 0 || d.Regs > 16 {
		return bad("register count %d outside the table representation's [0,16]", d.Regs)
	}
	ok := true
	if len(d.Accept) != d.States {
		bad("accept vector has %d entries for %d states", len(d.Accept), d.States)
		ok = false
	}
	if d.Start < 0 || d.Start >= d.States {
		bad("start state %d out of range [0,%d)", d.Start, d.States)
		ok = false
	}
	entries, sizeOK := core.TableEntries(d.States, d.Alphabet.Size(), d.Regs)
	if !sizeOK || int(entries) != d.TableLen() {
		bad("transition table has %d entries, want states·2·|Γ|·2^(2·regs) = %d", d.TableLen(), entries)
		return false // indexing the table would be out of bounds
	}
	return ok
}

// tableScan walks every table entry once: range checks on explicit
// entries, infeasible-mask writes, and feasible entries never set.
func (l *linter) tableScan() {
	d := l.d
	full := core.FullRegSet(d.Regs)
	for q := 0; q < d.States; q++ {
		for sym := 0; sym < d.Alphabet.Size(); sym++ {
			for _, closing := range []bool{false, true} {
				for le := core.RegSet(0); le <= full; le++ {
					for ge := core.RegSet(0); ge <= full; ge++ {
						feasible := le|ge == full
						set := d.WasSet(q, sym, closing, le, ge)
						switch {
						case !feasible && set:
							l.c.add(Diagnostic{Kind: KindInfeasibleMaskSet, Severity: Warning,
								State: q, Sym: sym, Closing: closing, HasMask: true, Le: le, Ge: ge, Reg: -1,
								Message: fmt.Sprintf("%s: entry set for an infeasible mask pair — after any event every register is ≤, ≥ or both of the depth, so X≤∪X≥ must cover all registers and this entry is never consulted", l.loc(q, sym, closing, le, ge)),
								Cite:    "Def. 2.1"})
						case feasible && !set:
							l.c.add(Diagnostic{Kind: KindIncompleteTable, Severity: Warning,
								State: q, Sym: sym, Closing: closing, HasMask: true, Le: le, Ge: ge, Reg: -1,
								Message: fmt.Sprintf("%s: feasible entry never set — the run would silently take the NewDRA default (no loads, state 0), but δ must be total", l.loc(q, sym, closing, le, ge)),
								Cite:    "Def. 2.1"})
						}
						if feasible {
							tr := d.Transition(q, sym, closing, le, ge)
							if !l.validNext(tr.Next) {
								l.c.add(Diagnostic{Kind: KindMalformed, Severity: Error,
									State: q, Sym: sym, Closing: closing, HasMask: true, Le: le, Ge: ge, Reg: -1,
									Message: fmt.Sprintf("%s: successor state %d out of range [0,%d)", l.loc(q, sym, closing, le, ge), tr.Next, d.States),
									Cite:    "Def. 2.1"})
							}
							if tr.Load&^full != 0 {
								l.c.add(Diagnostic{Kind: KindMalformed, Severity: Error,
									State: q, Sym: sym, Closing: closing, HasMask: true, Le: le, Ge: ge, Reg: -1,
									Message: fmt.Sprintf("%s: load set %s names registers outside Ξ = {0..%d}", l.loc(q, sym, closing, le, ge), regSetString(tr.Load), d.Regs-1),
									Cite:    "Def. 2.1"})
							}
						}
					}
				}
			}
		}
	}
}

// reachability flags states the abstract semantics can never enter,
// distinguishing accepting ones, and machines with no reachable accepting
// state at all. Unreachable states are grouped by SCC so a dead cluster
// reads as one finding.
func (l *linter) reachability() {
	d := l.d
	adj := l.flow.liveAdjacency(l.validNext)
	comp, comps := dfa.SCCsOf(adj)
	reportedComp := make([]bool, len(comps))
	for q := 0; q < d.States; q++ {
		if l.flow.reached[q] {
			continue
		}
		if d.Accept[q] {
			l.c.add(Diagnostic{Kind: KindUnreachableAccept, Severity: Warning,
				State: q, Sym: -1, Reg: -1,
				Message: fmt.Sprintf("accepting state %d is unreachable from start state %d: it can never witness acceptance", q, d.Start),
				Cite:    "Def. 2.1"})
			continue
		}
		if reportedComp[comp[q]] {
			continue
		}
		reportedComp[comp[q]] = true
		members := comps[comp[q]]
		if len(members) > 1 {
			l.c.add(Diagnostic{Kind: KindUnreachableState, Severity: Warning,
				State: q, Sym: -1, Reg: -1,
				Message: fmt.Sprintf("states %v form an unreachable component: no run from start state %d enters them", members, d.Start),
				Cite:    "Def. 2.1"})
		} else {
			l.c.add(Diagnostic{Kind: KindUnreachableState, Severity: Warning,
				State: q, Sym: -1, Reg: -1,
				Message: fmt.Sprintf("state %d is unreachable from start state %d", q, d.Start),
				Cite:    "Def. 2.1"})
		}
	}

	// Co-reachability of acceptance, over the reversed live graph.
	var accepts []int
	for q := 0; q < d.States; q++ {
		if l.flow.reached[q] && d.Accept[q] {
			accepts = append(accepts, q)
		}
	}
	if len(accepts) == 0 {
		l.c.add(Diagnostic{Kind: KindVacuousAcceptance, Severity: Warning,
			State: -1, Sym: -1, Reg: -1,
			Message: "no accepting state is reachable: the automaton rejects every tree",
			Cite:    "Def. 2.1"})
	} else if coAccept := dfa.ReachableFrom(dfa.Reverse(adj), accepts...); !coAccept[d.Start] {
		// Unreachable with a reachable accept state cannot happen (the
		// accept state is reachable from start), so this is defensive.
		l.c.add(Diagnostic{Kind: KindVacuousAcceptance, Severity: Warning,
			State: -1, Sym: -1, Reg: -1,
			Message: "the start state cannot reach any accepting state",
			Cite:    "Def. 2.1"})
	}
}

// deadTransitions reports explicitly set feasible entries whose mask pair
// is impossible at their state per the dataflow. Entries that branch to a
// state no live sibling reaches are the suspicious ones; uniform
// completions (the SetForAllTests idiom) are only counted.
func (l *linter) deadTransitions() {
	d := l.d
	redundant := 0
	for q := 0; q < d.States; q++ {
		if !l.flow.reached[q] {
			continue // already flagged as unreachable
		}
		for sym := 0; sym < d.Alphabet.Size(); sym++ {
			for _, closing := range []bool{false, true} {
				liveNext := map[int]bool{}
				type deadEntry struct {
					le, ge core.RegSet
					next   int
				}
				var dead []deadEntry
				core.EachFeasibleMask(d.Regs, func(le, ge core.RegSet) {
					tr := d.Transition(q, sym, closing, le, ge)
					if l.flow.maskLive(q, sym, closing, le, ge) {
						liveNext[tr.Next] = true
					} else if d.WasSet(q, sym, closing, le, ge) {
						dead = append(dead, deadEntry{le, ge, tr.Next})
					}
				})
				for _, e := range dead {
					if liveNext[e.next] {
						redundant++
						continue
					}
					l.c.add(Diagnostic{Kind: KindDeadTransition, Severity: Info,
						State: q, Sym: sym, Closing: closing, HasMask: true, Le: e.le, Ge: e.ge, Reg: -1,
						Message: fmt.Sprintf("%s: this mask pair can never occur here (register/depth order analysis), so the branch to state %d never fires", l.loc(q, sym, closing, e.le, e.ge), e.next),
						Cite:    "Def. 2.1"})
				}
			}
		}
	}
	if redundant > 0 {
		l.c.add(Diagnostic{Kind: KindDeadTransition, Severity: Info,
			State: -1, Sym: -1, Reg: -1,
			Message: fmt.Sprintf("%d entries sit on impossible mask pairs but agree with a live sibling — harmless SetForAllTests-style completions", redundant),
			Cite:    "Def. 2.1"})
	}
}

// restriction reports every transition violating the Section 2.2
// restriction: registers above the current depth (X≥ \ X≤) must be
// reloaded. Proposition 2.3's stack elimination assumes this.
func (l *linter) restriction() {
	d := l.d
	for q := 0; q < d.States; q++ {
		for sym := 0; sym < d.Alphabet.Size(); sym++ {
			for _, closing := range []bool{false, true} {
				core.EachFeasibleMask(d.Regs, func(le, ge core.RegSet) {
					tr := d.Transition(q, sym, closing, le, ge)
					if kept := ge &^ le &^ tr.Load; kept != 0 {
						l.c.add(Diagnostic{Kind: KindUnrestricted, Severity: Error,
							State: q, Sym: sym, Closing: closing, HasMask: true, Le: le, Ge: ge, Reg: -1,
							Message: fmt.Sprintf("%s: registers %s hold values above the current depth but are not reloaded (load=%s)", l.loc(q, sym, closing, le, ge), regSetString(kept), regSetString(tr.Load)),
							Cite:    "§2.2"})
					}
				})
			}
		}
	}
}

// registers checks per-register hygiene over the live part of the machine:
// every register should be loaded on some live edge and should influence
// behaviour on some pair of live masks. The "influence" test ignores the
// register's own bit in the load sets, so the §2.2 completion idiom (a
// register reloading itself) does not count as a use.
func (l *linter) registers() {
	d := l.d
	if d.Regs == 0 {
		return
	}
	loaded := make([]bool, d.Regs)
	tested := make([]bool, d.Regs)
	type key struct {
		le, ge core.RegSet
	}
	for q := 0; q < d.States; q++ {
		if !l.flow.reached[q] {
			continue
		}
		for sym := 0; sym < d.Alphabet.Size(); sym++ {
			for _, closing := range []bool{false, true} {
				var live []key
				core.EachFeasibleMask(d.Regs, func(le, ge core.RegSet) {
					if l.flow.maskLive(q, sym, closing, le, ge) {
						live = append(live, key{le, ge})
					}
				})
				for _, m := range live {
					tr := d.Transition(q, sym, closing, m.le, m.ge)
					for i := 0; i < d.Regs; i++ {
						if tr.Load.Has(i) {
							loaded[i] = true
						}
					}
				}
				for i := 0; i < d.Regs; i++ {
					if tested[i] {
						continue
					}
					bit := core.RegSet(1) << uint(i)
					first := map[key]core.Transition{}
					for _, m := range live {
						tr := d.Transition(q, sym, closing, m.le, m.ge)
						k := key{m.le &^ bit, m.ge &^ bit}
						if prev, ok := first[k]; ok {
							if prev.Next != tr.Next || prev.Load&^bit != tr.Load&^bit {
								tested[i] = true
								break
							}
						} else {
							first[k] = tr
						}
					}
				}
			}
		}
	}
	for i := 0; i < d.Regs; i++ {
		switch {
		case !loaded[i] && !tested[i]:
			l.c.add(Diagnostic{Kind: KindRegisterUnused, Severity: Warning,
				State: -1, Sym: -1, Reg: i,
				Message: fmt.Sprintf("register %d is never loaded and never influences any live transition: dropping it shrinks the table 4× (NewDRA allocates states·2·|Γ|·2^(2·regs) entries)", i),
				Cite:    "Def. 2.1"})
		case !loaded[i]:
			l.c.add(Diagnostic{Kind: KindRegisterNeverLoaded, Severity: Warning,
				State: -1, Sym: -1, Reg: i,
				Message: fmt.Sprintf("register %d is tested but never loaded: it forever holds the initial value 0, so the test only distinguishes depth 0", i),
				Cite:    "Def. 2.1"})
		case !tested[i]:
			l.c.add(Diagnostic{Kind: KindRegisterNeverTested, Severity: Warning,
				State: -1, Sym: -1, Reg: i,
				Message: fmt.Sprintf("register %d is loaded but its value never influences any live transition beyond reloading itself", i),
				Cite:    "§2.2"})
		}
	}
}

// blowup warns about tables approaching the allocation cap.
func (l *linter) blowup() {
	d := l.d
	entries, _ := core.TableEntries(d.States, d.Alphabet.Size(), d.Regs)
	if entries >= l.c.cfg.tableWarn() {
		l.c.add(Diagnostic{Kind: KindTableBlowup, Severity: Warning,
			State: -1, Sym: -1, Reg: -1,
			Message: fmt.Sprintf("transition table has %d entries (%d states × 2·%d tags × 4^%d masks), within a factor %d of the %d-entry allocation cap",
				entries, d.States, d.Alphabet.Size(), d.Regs, core.MaxTableEntries/entries, core.MaxTableEntries),
			Cite: "Def. 2.1"})
	}
}
