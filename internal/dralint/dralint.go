// Package dralint is a static analyzer — a "go vet" — for the table
// depth-register automata of internal/core (Definition 2.1 of the paper).
//
// DRA tables are easy to mis-build and hard to debug: a wrong entry does
// not crash anything, it silently produces a wrong run. The linter checks
// the side conditions the paper states around Definition 2.1 and Section
// 2.2 and reports structured findings:
//
//   - structural well-formedness of the table (Definition 2.1);
//   - entries explicitly set for infeasible (X≤, X≥) mask pairs, which no
//     run can ever consult;
//   - feasible entries never set, i.e. accidental reliance on the NewDRA
//     zero default (δ must be total);
//   - states unreachable from the start state, separately flagging
//     unreachable accepting states and machines that cannot accept at all;
//   - dead transitions: explicitly set entries whose mask combination is
//     impossible at their state, found by a forward dataflow that tracks,
//     per state and register, the possible orders between the register
//     value and the current depth;
//   - violations of the Section 2.2 restriction (a register above the
//     current depth that is not overwritten), on demand — Proposition 2.3
//     silently assumes it, so unrestricted machines must be deliberate,
//     like Example 2.2;
//   - register hygiene: registers never loaded, never tested, or wholly
//     unused — each unused register quadruples the table (NewDRA allocates
//     states·2·|Γ|·2^(2·regs) entries);
//   - tables approaching the allocation cap.
//
// Lint never panics, even on malformed machines; that property is fuzzed.
package dralint

import (
	"fmt"
	"sort"

	"stackless/internal/core"
)

// Severity classifies a finding. Info findings are advisory (for example
// harmless dead completions produced by SetForAllTests); Warning and Error
// findings indicate a machine that should not ship. The paper examples in
// internal/core lint clean at Warning and above.
type Severity uint8

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// Kind identifies a diagnostic category. Every kind cites the paper clause
// it enforces (see the Cite field of Diagnostic and DESIGN.md).
type Kind string

const (
	KindMalformed           Kind = "malformed"
	KindInfeasibleMaskSet   Kind = "infeasible-mask-set"
	KindIncompleteTable     Kind = "incomplete-table"
	KindUnreachableState    Kind = "unreachable-state"
	KindUnreachableAccept   Kind = "unreachable-accept"
	KindVacuousAcceptance   Kind = "vacuous-acceptance"
	KindDeadTransition      Kind = "dead-transition"
	KindUnrestricted        Kind = "unrestricted"
	KindRegisterNeverLoaded Kind = "register-never-loaded"
	KindRegisterNeverTested Kind = "register-never-tested"
	KindRegisterUnused      Kind = "register-unused"
	KindTableBlowup         Kind = "table-blowup"
	KindTruncated           Kind = "truncated"
)

// Diagnostic is one finding. State, Sym and Reg are -1 when the finding is
// not tied to a particular state, symbol or register; HasMask reports
// whether Le/Ge/Closing locate a concrete table entry.
type Diagnostic struct {
	Kind     Kind
	Severity Severity
	State    int
	Sym      int
	Closing  bool
	HasMask  bool
	Le, Ge   core.RegSet
	Reg      int
	Message  string
	Cite     string
}

func (d Diagnostic) String() string {
	if d.Cite == "" {
		return fmt.Sprintf("%s[%s] %s", d.Severity, d.Kind, d.Message)
	}
	return fmt.Sprintf("%s[%s] %s (%s)", d.Severity, d.Kind, d.Message, d.Cite)
}

// Filter returns the diagnostics with severity at least min.
func Filter(diags []Diagnostic, min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// Clean reports whether the diagnostics contain nothing at Warning
// severity or above — the bar the repo's own automata are held to.
func Clean(diags []Diagnostic) bool { return len(Filter(diags, Warning)) == 0 }

// ByKind buckets diagnostics by kind.
func ByKind(diags []Diagnostic) map[Kind][]Diagnostic {
	out := make(map[Kind][]Diagnostic)
	for _, d := range diags {
		out[d.Kind] = append(out[d.Kind], d)
	}
	return out
}

// Config tunes a lint run. The zero value is the default configuration.
type Config struct {
	// RequireRestricted reports any violation of the Section 2.2
	// restriction as an Error. Off by default: general DRAs (Example 2.2)
	// are legitimately unrestricted, but every machine meant to feed the
	// Proposition 2.3 stack-elimination pipeline must pass with this on.
	RequireRestricted bool
	// MaxPerKind caps the findings reported per kind; a Truncated note
	// records how many were suppressed. 0 means the default of 8.
	MaxPerKind int
	// TableWarnEntries is the table size (in entries) above which a
	// TableBlowup warning fires. 0 means the default of 1<<20 (a machine
	// within a factor 64 of the core.MaxTableEntries allocation cap).
	TableWarnEntries uint64
}

func (c Config) maxPerKind() int {
	if c.MaxPerKind <= 0 {
		return 8
	}
	return c.MaxPerKind
}

func (c Config) tableWarn() uint64 {
	if c.TableWarnEntries == 0 {
		return 1 << 20
	}
	return c.TableWarnEntries
}

// Lint analyzes the automaton with the default configuration.
func Lint(d *core.DRA) []Diagnostic { return LintWith(d, Config{}) }

// collector accumulates diagnostics with a per-kind cap.
type collector struct {
	cfg        Config
	diags      []Diagnostic
	suppressed map[Kind]int
}

func (c *collector) add(d Diagnostic) {
	n := 0
	for _, have := range c.diags {
		if have.Kind == d.Kind {
			n++
		}
	}
	if n >= c.cfg.maxPerKind() {
		if c.suppressed == nil {
			c.suppressed = make(map[Kind]int)
		}
		c.suppressed[d.Kind]++
		return
	}
	c.diags = append(c.diags, d)
}

// finish appends truncation notes and orders the findings by descending
// severity (stable within a severity).
func (c *collector) finish() []Diagnostic {
	kinds := make([]Kind, 0, len(c.suppressed))
	for k := range c.suppressed {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		c.diags = append(c.diags, Diagnostic{
			Kind: KindTruncated, Severity: Info, State: -1, Sym: -1, Reg: -1,
			Message: fmt.Sprintf("%d further %s finding(s) suppressed (MaxPerKind=%d)", c.suppressed[k], k, c.cfg.maxPerKind()),
		})
	}
	sort.SliceStable(c.diags, func(i, j int) bool { return c.diags[i].Severity > c.diags[j].Severity })
	return c.diags
}
