// Package product evaluates sets of compatible compiled machines in one
// pass: member tag DFAs are merged into a core.ProductDFA (DESIGN.md §13)
// stepped once per coded batch, with per-state bitset masks demultiplexed
// back into per-query match streams. The package owns the three policy
// layers around the core construction — grouping a heterogeneous query set
// into product groups (group.go), LRU-caching compiled products across runs
// (this file), and chunk-parallel evaluation of a product over a worker
// pool (parallel.go). The differential battery in this package pins the
// whole stack against fan-out and the string path.
package product

import (
	"container/list"
	"strconv"
	"sync"

	"stackless/internal/core"
	"stackless/internal/obs"
)

// DefaultCacheSize is the capacity of the shared product cache: products
// are keyed per query *set*, so even a service hosting many subscriber
// pools rarely has more than a handful of live sets.
const DefaultCacheSize = 64

// Machine identity for cache keys: a process-unique id per TagDFA pointer.
// Pointers themselves cannot be cache keys (not ordered, not stable in a
// string), so the first time a machine is seen it is assigned a monotonic
// id. Compiling the same query twice yields two machines and two ids — the
// cache deduplicates repeated *sets*, not structurally equal automata.
var (
	idMu   sync.Mutex
	idOf   = map[*core.TagDFA]uint64{}
	nextID uint64
)

func machineID(m *core.TagDFA) uint64 {
	idMu.Lock()
	defer idMu.Unlock()
	if id, ok := idOf[m]; ok {
		return id
	}
	nextID++
	idOf[m] = nextID
	return nextID
}

// entry is one cached compilation result. Failures (ErrProductTooLarge) are
// cached too: discovering that a set blows the state cap costs a bounded
// BFS, and re-discovering it per run would charge that to every query.
type entry struct {
	key string
	p   *core.ProductDFA
	err error
}

// Cache is an LRU of compiled products keyed by the canonical query-set key
// (sorted member ids + each member's alphabet generation, see Get). Safe
// for concurrent use; compilation runs under the lock, so concurrent
// requests for the same set compile once.
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recent
	m   map[string]*list.Element // key → entry element
}

// NewCache returns a cache holding up to capacity products (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

var (
	sharedOnce  sync.Once
	sharedCache *Cache
)

// Shared returns the process-wide product cache.
func Shared() *Cache {
	sharedOnce.Do(func() { sharedCache = NewCache(DefaultCacheSize) })
	return sharedCache
}

// Len returns the number of cached entries (including cached failures).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Get returns the compiled product of the member set, compiling and caching
// it on a miss. Members are canonicalized by sorting on machine id, so any
// permutation of the same set is one cache entry; the returned order maps
// mask bits back to the caller's slice — bit i of the product's acceptance
// bitsets is members[order[i]]. The key also folds in each member's
// alphabet generation: growing a member's alphabet after a compile changes
// the key, so the stale product (whose union and symbol maps predate the
// growth) is never served for the extended machine.
//
// Hits and misses are counted on col (nil: uncounted); a cached failure
// counts as a hit.
func (c *Cache) Get(members []*core.TagDFA, maxStates int, col *obs.Collector) (*core.ProductDFA, []int, error) {
	order := make([]int, len(members))
	ids := make([]uint64, len(members))
	for i, m := range members {
		order[i] = i
		ids[i] = machineID(m)
	}
	// Insertion sort by id: member sets are small and mostly pre-sorted
	// (queries compile in order, ids are assigned in first-seen order).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && ids[order[j]] < ids[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var key []byte
	for _, pos := range order {
		key = strconv.AppendUint(key, ids[pos], 10)
		key = append(key, ':')
		key = strconv.AppendInt(key, int64(members[pos].Alphabet.Generation()), 10)
		key = append(key, ';')
	}
	k := string(key)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		if col != nil {
			col.ProductCacheHits.Inc()
		}
		e := el.Value.(*entry)
		return e.p, order, e.err
	}
	if col != nil {
		col.ProductCacheMisses.Inc()
	}
	canon := make([]*core.TagDFA, len(members))
	for i, pos := range order {
		canon[i] = members[pos]
	}
	p, err := core.NewProductDFA(canon, maxStates)
	c.m[k] = c.ll.PushFront(&entry{key: k, p: p, err: err})
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.m, old.Value.(*entry).key)
	}
	return p, order, err
}
