package product

import (
	"bytes"
	"math/bits"
	"testing"

	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/obs"
	"stackless/internal/parallel"
)

// FuzzProductVsFanout fuzzes the whole product stack against the fan-out it
// replaces: the document text (term syntax), the chunk cuts, and the member
// subset are all fuzzer-chosen. Each selected subset of a fixed 8-machine
// pool (five markup tag DFAs, three term tag DFAs, mixed alphabets) is
// planned through the shared grouping/cache layers and evaluated chunked;
// every query's match stream must equal its member's own sequential pass —
// positions, depths, labels, order — and the instrumented run must report
// fan-out-parity Events/Matches totals. Out-of-alphabet labels exercise the
// per-member poison composition.
func FuzzProductVsFanout(f *testing.F) {
	f.Add([]byte("a{b{}c{}}"), []byte{2, 5}, byte(0b00000111))
	f.Add([]byte("a{a{b{}b{a{}}}b{}}"), []byte{0, 7, 9}, byte(0b00011111))
	f.Add([]byte("b{a{}a{}}"), []byte{1}, byte(0b11100000))
	f.Add([]byte("a{x{y{}}b{}}"), []byte{3, 3, 250}, byte(0b10101010))
	f.Add([]byte("a{}"), []byte{}, byte(0b00000011))
	f.Add([]byte("c{a{c{b{}}}}"), []byte{1, 2, 3, 4, 5, 6, 7}, byte(0xff))

	poolMembers := make([]member, 0, 8)
	for i := 0; i < 5; i++ {
		poolMembers = append(poolMembers, newMember(f, "tag-markup", i))
	}
	for i := 0; i < 3; i++ {
		poolMembers = append(poolMembers, newMember(f, "tag-term", i))
	}
	cache := NewCache(DefaultCacheSize)
	pool := parallel.NewPool(3)

	f.Fuzz(func(t *testing.T, doc, cutBytes []byte, sel byte) {
		if sel == 0 {
			return
		}
		term, err := encoding.ReadAll(encoding.NewTermScanner(bytes.NewReader(doc)))
		if err != nil {
			return
		}
		tr, err := encoding.Decode(encoding.NewSliceSource(term))
		if err != nil {
			return
		}
		events := encoding.Markup(tr)

		set := make([]member, 0, bits.OnesCount8(sel))
		for i, m := range poolMembers {
			if sel&(1<<uint(i)) != 0 {
				set = append(set, m)
			}
		}
		evs := make([]core.Evaluator, len(set))
		for i, m := range set {
			evs[i] = m.ev
		}
		cuts := make([]int, 0, len(cutBytes))
		for _, b := range cutBytes {
			cuts = append(cuts, int(b)%(len(events)+1))
		}

		want := make([][]core.Match, len(set))
		wantTotal := 0
		for q, m := range set {
			want[q] = fanoutMatches(m.ev, events)
			wantTotal += len(want[q])
			// The member machines are themselves held to the (poison-aware)
			// pushdown oracle, so a product bug cannot hide behind a matching
			// fan-out bug.
			if ref := memberOracle(m, events); !matchSlicesEqual(want[q], ref) {
				t.Fatalf("query %d: fan-out %v diverges from oracle %v", q, want[q], ref)
			}
		}

		c := &obs.Collector{}
		plan := BuildPlan(evs, cache, 0, c)
		got := planMatches(pool, plan, set, events, cuts, c)
		for q := range set {
			if !matchSlicesEqual(got[q], want[q]) {
				t.Fatalf("sel %08b cuts %v query %d: product %v, fan-out %v", sel, cuts, q, got[q], want[q])
			}
		}
		// Counter parity for the grouped queries: Events counts members ×
		// events and Matches one per (query, node), exactly as fan-out would.
		grouped, groupedMatches := 0, 0
		for _, g := range plan.Groups {
			grouped += len(g.Queries)
			for _, q := range g.Queries {
				groupedMatches += len(want[q])
			}
		}
		if want := int64(grouped) * int64(len(events)); c.Events.Load() != want {
			t.Fatalf("sel %08b: Events = %d, want %d", sel, c.Events.Load(), want)
		}
		if c.Matches.Load() != int64(groupedMatches) {
			t.Fatalf("sel %08b: Matches = %d, want %d", sel, c.Matches.Load(), groupedMatches)
		}
	})
}
