package product

import (
	"math/bits"
	"sort"
	"sync"
	"time"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/obs"
	"stackless/internal/parallel"
)

// Chunk-parallel evaluation of a product. The generic engine of
// internal/parallel cannot drive a product: its candidate sets record
// "some entry state accepts here", but a product match needs the member
// bitset of the actual run, which depends on the chunk's true entry state.
// So products run a two-phase schedule on the same pool:
//
//  1. every chunk after the first is simulated from all product states at
//     once (SimulateChunkCoded), giving its entry→exit map, while the first
//     chunk — whose entry is the start state — runs its selection pass
//     directly;
//  2. the entry→exit maps compose left to right (O(workers) serial work)
//     to pin each chunk's entry, and the remaining chunks run their
//     selection pass from it, collecting hit positions and member masks.
//
// The chunks' hits are then emitted in order, rebased to document-global
// preorder positions and depths via per-chunk open/depth prefix sums —
// bit for bit and event for event the sequential product pass.

// relHit is one chunk-local hit: the chunk-relative event index of the
// matched Open, its chunk-relative preorder position (0-based among the
// chunk's opens) and its depth relative to the chunk entry.
type relHit struct {
	idx   int32
	pos   int
	depth int
}

// chunkResult is one chunk's selection pass: its hits with their masks
// (MaskWords words per hit, parallel to rel), the chunk's open count and
// depth delta for rebasing later chunks, and the product state at exit.
type chunkResult struct {
	rel   []relHit
	masks []uint64
	opens int
	delta int
	exit  int32
}

// selectChunk runs the product over coded[lo:hi] from the given entry
// state, collecting hits, masks, and the chunk's opens/delta/exit.
func selectChunk(pd *core.ProductDFA, coded []encoding.CodedEvent, lo, hi int, entry int32) chunkResult {
	ev := pd.EvaluatorAt(entry)
	var res chunkResult
	var hits []int32
	for b := lo; b < hi; b += encoding.DefaultBatch {
		e := b + encoding.DefaultBatch
		if e > hi {
			e = hi
		}
		nh := len(hits)
		hits, res.masks = ev.SelectBatchMasks(coded[b:e], hits, res.masks)
		for j := nh; j < len(hits); j++ {
			hits[j] += int32(b - lo)
		}
	}
	res.exit = ev.State()
	// One walk over the chunk turns hit indices into chunk-relative
	// (position, depth) pairs and counts the chunk's opens and depth delta.
	res.rel = make([]relHit, len(hits))
	pos, depth := 0, 0
	k := lo
	for j, h := range hits {
		for ; k <= lo+int(h); k++ {
			if coded[k].Kind == encoding.Open {
				pos++
				depth++
			} else {
				depth--
			}
		}
		res.rel[j] = relHit{idx: h, pos: pos - 1, depth: depth}
	}
	for ; k < hi; k++ {
		if coded[k].Kind == encoding.Open {
			pos++
			depth++
		} else {
			depth--
		}
	}
	res.opens, res.delta = pos, depth
	return res
}

// SelectChunks evaluates the product over the events in the given number of
// chunks on the pool, calling fn for every match as (mask bit, match) —
// callers map bits to query indices through their Group.Queries. Matches
// arrive in document order (ascending position); bits within one node
// arrive in mask order. Counters mirror a fan-out of the members: Events
// grows by members × len(events) and Matches by one per (bit, node), so an
// instrumented product run is indistinguishable from the fan-out it
// replaced.
func SelectChunks(pool *parallel.Pool, pd *core.ProductDFA, events []encoding.Event, chunks int, c *obs.Collector, fn func(bit int, m core.Match)) {
	SelectChunksAt(pool, pd, events, parallel.SplitPoints(len(events), chunks), c, fn)
}

// SelectChunksAt is SelectChunks with explicit cut positions — the
// differential tests drive every cut position, size-1 chunks and fuzzed
// cuts through it. Out-of-range and duplicate cuts are dropped (counted
// into CutsRejected).
func SelectChunksAt(pool *parallel.Pool, pd *core.ProductDFA, events []encoding.Event, cuts []int, c *obs.Collector, fn func(bit int, m core.Match)) {
	n := len(events)
	clean := sanitizeCuts(cuts, n)
	if c != nil {
		c.Events.Add(int64(pd.Members()) * int64(n))
		c.RunsByPolicy[core.CutNone].Inc()
		c.CutsRejected.Add(int64(len(cuts) - len(clean)))
	}
	coded := encoding.CodeEvents(alphabet.NewCoder(pd.Alphabet()), events, make([]encoding.CodedEvent, 0, n))
	if len(clean) == 0 {
		if c != nil {
			c.SeqFallbacks.Inc()
		}
		res := selectChunk(pd, coded, 0, n, int32(pd.Start()))
		emitChunk(pd, events, 0, res, 0, 0, c, fn)
		return
	}
	bounds := make([]int, 0, len(clean)+2)
	bounds = append(bounds, 0)
	bounds = append(bounds, clean...)
	bounds = append(bounds, n)
	w := len(bounds) - 1

	var fanout time.Time
	if c != nil {
		c.ParallelRuns.Inc()
		c.Chunks.Add(int64(w))
		c.PoolWorkers.Store(int64(pool.Workers()))
		fanout = time.Now()
	}

	// Phase 1: chunk 0 (entry known: the start state) runs its selection
	// pass; every later chunk builds its all-states entry→exit map.
	results := make([]chunkResult, w)
	exits := make([][]int32, w)
	var wg sync.WaitGroup
	for ci := 0; ci < w; ci++ {
		ci := ci
		lo, hi := bounds[ci], bounds[ci+1]
		submit(pool, c, &wg, func() {
			if ci == 0 {
				results[0] = selectChunk(pd, coded, lo, hi, int32(pd.Start()))
			} else {
				exits[ci] = pd.Evaluator().SimulateChunkCoded(coded[lo:hi], nil)
			}
		})
	}
	wg.Wait()

	// Join: compose entries left to right, then phase 2 — the remaining
	// chunks run their selection pass from their now-known entries.
	entry := make([]int32, w)
	entry[0] = int32(pd.Start())
	for ci := 1; ci < w; ci++ {
		if ci == 1 {
			entry[1] = results[0].exit
		} else {
			entry[ci] = exits[ci-1][entry[ci-1]]
		}
	}
	for ci := 1; ci < w; ci++ {
		ci := ci
		lo, hi := bounds[ci], bounds[ci+1]
		submit(pool, c, &wg, func() {
			results[ci] = selectChunk(pd, coded, lo, hi, entry[ci])
		})
	}
	wg.Wait()

	var joinStart time.Time
	if c != nil {
		now := time.Now()
		c.FanoutWallNs.Add(now.Sub(fanout).Nanoseconds())
		joinStart = now
		defer func() {
			c.Phases[obs.PhaseJoin].Observe(time.Since(joinStart))
		}()
	}
	opens, depth := 0, 0
	for ci := 0; ci < w; ci++ {
		emitChunk(pd, events, bounds[ci], results[ci], opens, depth, c, fn)
		opens += results[ci].opens
		depth += results[ci].delta
	}
}

// emitChunk replays one chunk's hits in order, rebasing positions and
// depths by the prefix sums of the preceding chunks and expanding each mask
// into per-bit calls.
func emitChunk(pd *core.ProductDFA, events []encoding.Event, lo int, res chunkResult, opens, depth int, c *obs.Collector, fn func(int, core.Match)) {
	words := pd.MaskWords()
	for j, rh := range res.rel {
		m := core.Match{
			Pos:   opens + rh.pos,
			Depth: depth + rh.depth,
			Label: events[lo+int(rh.idx)].Label,
		}
		for wi, word := range res.masks[j*words : (j+1)*words] {
			for word != 0 {
				bit := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if c != nil {
					c.Matches.Inc()
					// All product hits emit at the end-of-stream join; the
					// deciding Open sits at global event index lo+idx.
					c.Latency.Observe(len(events) - 1 - (lo + int(rh.idx)))
				}
				if fn != nil {
					fn(bit, m)
				}
			}
		}
	}
}

// submit mirrors the pool discipline of internal/parallel: the WaitGroup
// grows before the task is enqueued, and pool gauges sample at submit time.
func submit(pool *parallel.Pool, c *obs.Collector, wg *sync.WaitGroup, task func()) {
	if c != nil {
		c.PoolSubmits.Inc()
		c.QueueDepth.Observe(pool.QueueLen())
		inner := task
		task = func() {
			t0 := time.Now()
			inner()
			d := time.Since(t0)
			c.Phases[obs.PhaseSimulate].Observe(d)
			c.WorkerBusyNs.Add(d.Nanoseconds())
		}
	}
	wg.Add(1)
	pool.Submit(func() {
		defer wg.Done()
		task()
	})
}

// sanitizeCuts sorts, bounds and deduplicates explicit cut positions, as in
// internal/parallel: fuzzers hand in arbitrary ints.
func sanitizeCuts(cuts []int, n int) []int {
	out := make([]int, 0, len(cuts))
	for _, c := range cuts {
		if c > 0 && c < n {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	w := 0
	for i, c := range out {
		if i > 0 && out[w-1] == c {
			continue
		}
		out[w] = c
		w++
	}
	return out[:w]
}
