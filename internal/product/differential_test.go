package product

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/obs"
	"stackless/internal/parallel"
	"stackless/internal/rex"
	"stackless/internal/stackeval"
	"stackless/internal/tree"
)

// The differential battery: every query set is evaluated three ways —
// through the product plan (groups one-pass, loose fanned out), through the
// pre-§13 fan-out (every member its own sequential pass), and through the
// stack-based pushdown oracle — and the three per-query match streams must
// agree exactly: same match sets, same order, same positions, depths and
// labels. Sets mix all four evaluator families (markup tag DFAs, term tag
// DFAs, stackless evaluators, pushdown evaluators), so plans exercise
// multi-group, loose and degenerate shapes; documents include unknown-symbol
// poison, depth spikes and single-node trees; chunked runs sweep adversarial
// cut sets under Workers ∈ {1, 2, GOMAXPROCS}.

// member is one query of a differential set: its analysis (for the oracle),
// its evaluator (for the plan and the fan-out), and its family tag.
type member struct {
	family string
	an     *classify.Analysis
	ev     core.Evaluator
}

// registerless-safe sandwich/suffix patterns: every one of these compiles
// through RegisterlessQL and BlindRegisterlessQL (exact concatenations like
// "ab" are not almost-reversible and would fail).
var diffPool = []struct {
	expr   string
	labels string
}{
	{"a.*b", "ab"},
	{".*a", "abc"},
	{"a.*c", "ac"},
	{"a.*b", "abc"},
	{"a.*(b.*)?c", "abc"},
	{"a(.*b)?.*c", "abc"},
	{".*a", "ab"},
	{"b.*a", "abc"},
}

// newMember builds one member of the given family over the pool entry.
func newMember(t testing.TB, family string, pi int) member {
	t.Helper()
	p := diffPool[pi%len(diffPool)]
	l, err := rex.CompileString(p.expr, alphabet.Letters(p.labels))
	if err != nil {
		t.Fatal(err)
	}
	an := classify.Analyze(l)
	m := member{family: family, an: an}
	switch family {
	case "tag-markup":
		d, err := core.RegisterlessQL(an)
		if err != nil {
			t.Fatalf("RegisterlessQL(%s): %v", p.expr, err)
		}
		m.ev = d.Evaluator()
	case "tag-term":
		d, err := core.BlindRegisterlessQL(an)
		if err != nil {
			t.Fatalf("BlindRegisterlessQL(%s): %v", p.expr, err)
		}
		m.ev = d.Evaluator()
	case "stackless":
		sev, err := core.StacklessQL(an)
		if err != nil {
			t.Fatalf("StacklessQL(%s): %v", p.expr, err)
		}
		m.ev = sev
	case "pushdown":
		m.ev = stackeval.QL(an.D)
	default:
		t.Fatalf("unknown family %q", family)
	}
	return m
}

var diffFamilies = []string{"tag-markup", "tag-term", "stackless", "pushdown"}

// randomSet builds n members with random families and pool entries.
func randomSet(t testing.TB, rng *rand.Rand, n int) []member {
	set := make([]member, n)
	for i := range set {
		set[i] = newMember(t, diffFamilies[rng.Intn(len(diffFamilies))], rng.Intn(len(diffPool)))
	}
	return set
}

// diffDocs is the document corpus: random trees over the pool labels plus a
// poison label outside every member alphabet, a deep chain (depth spike), a
// comb, and the degenerate single-node tree.
func diffDocs(rng *rand.Rand) []*tree.Node {
	labels := []string{"a", "b", "c", "zz"}
	docs := []*tree.Node{
		tree.MustParse("a"),
		gen.DeepChain(rng, labels, 14),
		gen.Comb("a", "b", 5, 3),
	}
	for _, size := range []int{2, 5, 12, 40} {
		docs = append(docs, gen.RandomTree(rng, labels, size))
	}
	return docs
}

// oracleMatches runs the pushdown oracle for one member over the markup
// events. When poisons is true it applies the compiled family's poison
// convention: the pushdown recovers when an unknown-labelled subtree closes,
// but every compiled machine of the engine (tag DFA, stackless, product)
// absorbs into its dead state on the first out-of-alphabet open —
// tablecheck's totality invariant — so the oracle's matches are truncated
// there. Pushdown members keep the recovering semantics (poisons false).
func oracleMatches(an *classify.Analysis, events []encoding.Event, poisons bool) []core.Match {
	var out []core.Match
	ev := stackeval.QL(an.D)
	if _, err := core.Select(ev, encoding.NewSliceSource(events), func(m core.Match) { out = append(out, m) }); err != nil {
		panic(err)
	}
	if !poisons {
		return out
	}
	pos := -1
	for _, e := range events {
		if e.Kind != encoding.Open {
			continue
		}
		pos++
		if !an.D.Alphabet.Contains(e.Label) {
			for i, m := range out {
				if m.Pos >= pos {
					return out[:i]
				}
			}
			return out
		}
	}
	return out
}

// memberOracle is oracleMatches with the member's own poison semantics.
func memberOracle(m member, events []encoding.Event) []core.Match {
	return oracleMatches(m.an, events, m.family != "pushdown")
}

// fanoutMatches runs one member's own evaluator sequentially.
func fanoutMatches(ev core.Evaluator, events []encoding.Event) []core.Match {
	var out []core.Match
	ev.Reset()
	if _, err := core.Select(ev, encoding.NewSliceSource(events), func(m core.Match) { out = append(out, m) }); err != nil {
		panic(err)
	}
	return out
}

// planMatches evaluates the whole set through a product plan: groups via the
// chunked driver with the given cuts, loose members sequentially. Returns
// per-query match slices. When c is non-nil, group counters accumulate on it.
func planMatches(pool *parallel.Pool, plan Plan, set []member, events []encoding.Event, cuts []int, c *obs.Collector) [][]core.Match {
	out := make([][]core.Match, len(set))
	for _, g := range plan.Groups {
		g := g
		SelectChunksAt(pool, g.Machine, events, cuts, c, func(bit int, m core.Match) {
			q := g.Queries[bit]
			out[q] = append(out[q], m)
		})
	}
	for _, q := range plan.Loose {
		out[q] = fanoutMatches(set[q].ev, events)
	}
	return out
}

func matchSlicesEqual(a, b []core.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || a[i].Depth != b[i].Depth || a[i].Label != b[i].Label {
			return false
		}
	}
	return true
}

func TestDifferentialProductVsFanoutVsOracle(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(2026))

	for _, n := range []int{2, 3, 5, 17, 64, 128} {
		n := n
		t.Run(fmt.Sprintf("queries=%d", n), func(t *testing.T) {
			set := randomSet(t, rng, n)
			evs := make([]core.Evaluator, n)
			for i, m := range set {
				evs[i] = m.ev
			}
			plan := BuildPlan(evs, NewCache(8), 0, nil)
			grouped := 0
			for _, g := range plan.Groups {
				grouped += len(g.Queries)
			}
			if grouped+len(plan.Loose) != n {
				t.Fatalf("plan covers %d+%d of %d queries", grouped, len(plan.Loose), n)
			}

			docs := diffDocs(rng)
			if n >= 64 {
				docs = docs[:3] // keep the big-set runs cheap
			}
			for di, doc := range docs {
				events := encoding.Markup(doc)

				oracle := make([][]core.Match, n)
				fanout := make([][]core.Match, n)
				for q, m := range set {
					oracle[q] = memberOracle(m, events)
					fanout[q] = fanoutMatches(m.ev, events)
					if !matchSlicesEqual(fanout[q], oracle[q]) {
						t.Fatalf("doc %d query %d (%s): fan-out %v, oracle %v", di, q, m.family, fanout[q], oracle[q])
					}
				}

				// Sequential product pass (no cuts).
				got := planMatches(pool, plan, set, events, nil, nil)
				for q := range set {
					if !matchSlicesEqual(got[q], oracle[q]) {
						t.Fatalf("doc %d query %d (%s): product %v, oracle %v", di, q, set[q].family, got[q], oracle[q])
					}
				}

				// Adversarial cuts: every interior position alone, size-1
				// chunks, and a window around the depth spike.
				cutSets := adversarialCuts(events)
				if n >= 64 {
					cutSets = cutSets[:min(len(cutSets), 6)]
				}
				for _, cuts := range cutSets {
					got := planMatches(pool, plan, set, events, cuts, nil)
					for q := range set {
						if !matchSlicesEqual(got[q], oracle[q]) {
							t.Fatalf("doc %d query %d cuts %v: product %v, oracle %v", di, q, cuts, got[q], oracle[q])
						}
					}
				}
			}
		})
	}
}

// adversarialCuts mirrors internal/parallel's test helper: every single
// interior position, a window around the deepest event, and every position
// at once (chunk size 1).
func adversarialCuts(events []encoding.Event) [][]int {
	n := len(events)
	var cuts [][]int
	for i := 1; i < n; i++ {
		cuts = append(cuts, []int{i})
	}
	depth, maxDepth, spike := 0, -1, 0
	for i, e := range events {
		if e.Kind == encoding.Open {
			depth++
		} else {
			depth--
		}
		if depth > maxDepth {
			maxDepth, spike = depth, i
		}
	}
	cuts = append(cuts, []int{spike, spike + 1})
	if spike > 1 {
		cuts = append(cuts, []int{spike - 1, spike, spike + 1})
	}
	all := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		all = append(all, i)
	}
	cuts = append(cuts, all)
	return cuts
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestDifferentialWorkerCounts drives the chunked product driver through the
// shared pool at Workers ∈ {1, 2, GOMAXPROCS} (SplitPoints cuts), comparing
// to the oracle; go test -race makes this the scheduler-interleaving check.
func TestDifferentialWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	set := randomSet(t, rng, 9)
	evs := make([]core.Evaluator, len(set))
	for i, m := range set {
		evs[i] = m.ev
	}
	plan := BuildPlan(evs, NewCache(8), 0, nil)
	if len(plan.Groups) == 0 {
		t.Skip("random set produced no groups (all loose)")
	}
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		pool := parallel.NewPool(w)
		for _, doc := range diffDocs(rng) {
			events := encoding.Markup(doc)
			got := make([][]core.Match, len(set))
			for _, g := range plan.Groups {
				g := g
				SelectChunks(pool, g.Machine, events, w, nil, func(bit int, m core.Match) {
					got[g.Queries[bit]] = append(got[g.Queries[bit]], m)
				})
			}
			for _, g := range plan.Groups {
				for _, q := range g.Queries {
					want := memberOracle(set[q], events)
					if !matchSlicesEqual(got[q], want) {
						t.Fatalf("workers=%d query %d: product %v, oracle %v", w, q, got[q], want)
					}
				}
			}
		}
		pool.Close()
	}
}

// TestDifferentialCounterParity: an instrumented product-plan run must report
// the same Events and Matches totals as the fan-out it replaced — members ×
// events stepped, one Matches per (query, node) — on every cut set.
func TestDifferentialCounterParity(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(99))
	// All-markup set so the whole set lands in one product group.
	set := make([]member, 6)
	for i := range set {
		set[i] = newMember(t, "tag-markup", i)
	}
	evs := make([]core.Evaluator, len(set))
	for i, m := range set {
		evs[i] = m.ev
	}
	plan := BuildPlan(evs, NewCache(8), 0, nil)
	if len(plan.Groups) != 1 || len(plan.Loose) != 0 {
		t.Fatalf("expected one group, got %d groups, %d loose", len(plan.Groups), len(plan.Loose))
	}
	g := plan.Groups[0]
	for _, doc := range diffDocs(rng) {
		events := encoding.Markup(doc)
		wantMatches := 0
		for _, m := range set {
			wantMatches += len(memberOracle(m, events))
		}
		for _, cuts := range [][]int{nil, {len(events) / 2}, {1, 2, 3}} {
			c := &obs.Collector{}
			SelectChunksAt(pool, g.Machine, events, cuts, c, nil)
			if want := int64(len(set)) * int64(len(events)); c.Events.Load() != want {
				t.Errorf("cuts %v: Events = %d, want %d", cuts, c.Events.Load(), want)
			}
			if c.Matches.Load() != int64(wantMatches) {
				t.Errorf("cuts %v: Matches = %d, want %d", cuts, c.Matches.Load(), wantMatches)
			}
		}
	}
}
