package product

import (
	"sort"

	"stackless/internal/core"
	"stackless/internal/obs"
)

// Group is one product group of a plan: a compiled product plus the mapping
// from its mask bits back to the caller's query indices — a match whose
// acceptance bitset has bit i set belongs to query Queries[i].
type Group struct {
	Queries []int
	Machine *core.ProductDFA
}

// Plan partitions a query set for evaluation: Groups run one-pass through
// their products, Loose queries (ascending) fan out exactly as before —
// singletons, non-tag families, and groups whose product blew the state
// cap.
type Plan struct {
	Groups []Group
	Loose  []int
}

// FanoutPlan returns the plan that products nothing: all n queries loose.
// It is the baseline the differential tests and benchmarks compare the
// product path against.
func FanoutPlan(n int) Plan {
	loose := make([]int, n)
	for i := range loose {
		loose[i] = i
	}
	return Plan{Loose: loose}
}

// BuildPlan groups a query set's evaluators into product groups. Two
// queries are compatible when their machines share family and cut policy;
// today that is exactly the tag-DFA family (registerless compilations, the
// only CutNone family) split by encoding — a markup machine and a term
// machine read different close events and never product together. Each
// bucket of two or more compatible machines is compiled (or fetched) via
// cache; on failure — typically ErrProductTooLarge — its members degrade to
// Loose, preserving today's fan-out behavior. maxStates <= 0 means
// core.DefaultProductMaxStates.
//
// The evaluators may already be instrumented: core.Instrument preserves
// evaluator identity, so the Machine accessor below still resolves. Groups
// formed are counted on c.ProductGroups (nil: uncounted).
func BuildPlan(evs []core.Evaluator, cache *Cache, maxStates int, c *obs.Collector) Plan {
	type bucket struct {
		idxs     []int
		machines []*core.TagDFA
	}
	var buckets [2]bucket // [0] markup encoding, [1] term encoding
	var plan Plan
	for i, ev := range evs {
		tm, ok := ev.(interface{ Machine() *core.TagDFA })
		if !ok {
			plan.Loose = append(plan.Loose, i)
			continue
		}
		m := tm.Machine()
		b := &buckets[0]
		if m.CloseAny != nil {
			b = &buckets[1]
		}
		b.idxs = append(b.idxs, i)
		b.machines = append(b.machines, m)
	}
	for _, b := range buckets {
		if len(b.idxs) < 2 {
			plan.Loose = append(plan.Loose, b.idxs...)
			continue
		}
		pd, order, err := cache.Get(b.machines, maxStates, c)
		if err != nil {
			plan.Loose = append(plan.Loose, b.idxs...)
			continue
		}
		qs := make([]int, len(order))
		for bit, pos := range order {
			qs[bit] = b.idxs[pos]
		}
		plan.Groups = append(plan.Groups, Group{Queries: qs, Machine: pd})
	}
	sort.Ints(plan.Loose)
	if c != nil {
		c.ProductGroups.Add(int64(len(plan.Groups)))
	}
	return plan
}
