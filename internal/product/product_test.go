package product

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/obs"
	"stackless/internal/parallel"
	"stackless/internal/rex"
)

func tagQL(t testing.TB, expr string, alph *alphabet.Alphabet) *core.TagDFA {
	t.Helper()
	l, err := rex.CompileString(expr, alph)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.RegisterlessQL(classify.Analyze(l))
	if err != nil {
		t.Fatalf("RegisterlessQL(%s): %v", expr, err)
	}
	return d
}

func blindQL(t testing.TB, expr string, alph *alphabet.Alphabet) *core.TagDFA {
	t.Helper()
	l, err := rex.CompileString(expr, alph)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BlindRegisterlessQL(classify.Analyze(l))
	if err != nil {
		t.Fatalf("BlindRegisterlessQL(%s): %v", expr, err)
	}
	return d
}

func TestCacheHitMissPermutation(t *testing.T) {
	abc := alphabet.Letters("abc")
	a := tagQL(t, "a.*b", abc)
	b := tagQL(t, ".*a", abc)
	ch := NewCache(4)
	col := &obs.Collector{}

	p1, o1, err := ch.Get([]*core.TagDFA{a, b}, 0, col)
	if err != nil {
		t.Fatal(err)
	}
	if col.ProductCacheMisses.Load() != 1 || col.ProductCacheHits.Load() != 0 {
		t.Fatalf("first Get: hits=%d misses=%d", col.ProductCacheHits.Load(), col.ProductCacheMisses.Load())
	}
	// Any permutation of the same set is the same entry, with order mapping
	// mask bits back to the caller's slice.
	p2, o2, err := ch.Get([]*core.TagDFA{b, a}, 0, col)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Error("permuted set compiled a second product")
	}
	if col.ProductCacheHits.Load() != 1 {
		t.Fatalf("permuted Get: hits=%d", col.ProductCacheHits.Load())
	}
	mm := p1.MemberMachines()
	for bit := range mm {
		if in := []*core.TagDFA{a, b}[o1[bit]]; in != mm[bit] {
			t.Errorf("order 1 bit %d maps to the wrong machine", bit)
		}
		if in := []*core.TagDFA{b, a}[o2[bit]]; in != mm[bit] {
			t.Errorf("order 2 bit %d maps to the wrong machine", bit)
		}
	}
}

func TestCacheEvictionAndNegativeCaching(t *testing.T) {
	abc := alphabet.Letters("abc")
	a, b, c := tagQL(t, "a.*b", abc), tagQL(t, ".*a", abc), tagQL(t, "a.*c", abc)
	ch := NewCache(1)
	col := &obs.Collector{}

	if _, _, err := ch.Get([]*core.TagDFA{a, b}, 0, col); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ch.Get([]*core.TagDFA{b, c}, 0, col); err != nil {
		t.Fatal(err)
	}
	if ch.Len() != 1 {
		t.Fatalf("capacity-1 cache holds %d entries", ch.Len())
	}
	if _, _, err := ch.Get([]*core.TagDFA{a, b}, 0, col); err != nil {
		t.Fatal(err)
	}
	if got := col.ProductCacheMisses.Load(); got != 3 {
		t.Errorf("evicted set re-fetched with %d misses, want 3", got)
	}

	// Failures cache too: the second request for an over-cap set is a hit.
	if _, _, err := ch.Get([]*core.TagDFA{a, c}, 1, col); !errors.Is(err, core.ErrProductTooLarge) {
		t.Fatalf("maxStates=1 gave %v", err)
	}
	hits := col.ProductCacheHits.Load()
	if _, _, err := ch.Get([]*core.TagDFA{a, c}, 1, col); !errors.Is(err, core.ErrProductTooLarge) {
		t.Fatalf("cached failure gave %v", err)
	}
	if col.ProductCacheHits.Load() != hits+1 {
		t.Error("cached failure did not count as a hit")
	}
}

func TestCacheGenerationInvalidation(t *testing.T) {
	grow := alphabet.Letters("ab")
	a := tagQL(t, "a.*b", grow)
	b := tagQL(t, ".*a", alphabet.Letters("abc"))
	ch := NewCache(4)
	col := &obs.Collector{}

	p1, _, err := ch.Get([]*core.TagDFA{a, b}, 0, col)
	if err != nil {
		t.Fatal(err)
	}
	grow.Add("zz") // the member's alphabet grows after compilation
	p2, _, err := ch.Get([]*core.TagDFA{a, b}, 0, col)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("stale product served after the member alphabet grew")
	}
	if col.ProductCacheMisses.Load() != 2 {
		t.Errorf("misses = %d, want 2 (generation folded into the key)", col.ProductCacheMisses.Load())
	}
}

func TestBuildPlanGrouping(t *testing.T) {
	abc := alphabet.Letters("abc")
	mk1, mk2 := tagQL(t, "a.*b", abc), tagQL(t, ".*a", abc)
	tm1, tm2 := blindQL(t, "a.*b", abc), blindQL(t, ".*a", abc)

	t.Run("split-by-encoding", func(t *testing.T) {
		col := &obs.Collector{}
		evs := []core.Evaluator{mk1.Evaluator(), tm1.Evaluator(), mk2.Evaluator(), tm2.Evaluator()}
		plan := BuildPlan(evs, NewCache(4), 0, col)
		if len(plan.Groups) != 2 || len(plan.Loose) != 0 {
			t.Fatalf("plan: %d groups, loose %v; want 2 groups, none loose", len(plan.Groups), plan.Loose)
		}
		if col.ProductGroups.Load() != 2 {
			t.Errorf("ProductGroups = %d, want 2", col.ProductGroups.Load())
		}
		// Queries map bits back to original indices: {0,2} markup, {1,3} term.
		seen := map[int]bool{}
		for _, g := range plan.Groups {
			if g.Machine.Members() != 2 {
				t.Errorf("group has %d members, want 2", g.Machine.Members())
			}
			for _, q := range g.Queries {
				seen[q] = true
			}
		}
		for q := 0; q < 4; q++ {
			if !seen[q] {
				t.Errorf("query %d missing from the plan", q)
			}
		}
	})
	t.Run("singletons-and-foreign-loose", func(t *testing.T) {
		an := classify.Analyze(rex.MustCompile("a.*b", abc))
		st, err := core.StacklessQL(an)
		if err != nil {
			t.Fatal(err)
		}
		evs := []core.Evaluator{mk1.Evaluator(), st, tm1.Evaluator()}
		plan := BuildPlan(evs, NewCache(4), 0, nil)
		if len(plan.Groups) != 0 {
			t.Fatalf("plan built groups from singletons: %+v", plan.Groups)
		}
		if want := []int{0, 1, 2}; len(plan.Loose) != 3 || plan.Loose[0] != want[0] || plan.Loose[1] != want[1] || plan.Loose[2] != want[2] {
			t.Errorf("Loose = %v, want %v", plan.Loose, want)
		}
	})
	t.Run("cap-blowout-degrades-to-fanout", func(t *testing.T) {
		evs := []core.Evaluator{mk1.Evaluator(), mk2.Evaluator()}
		plan := BuildPlan(evs, NewCache(4), 1, nil)
		if len(plan.Groups) != 0 || len(plan.Loose) != 2 {
			t.Fatalf("over-cap plan: groups %d, loose %v", len(plan.Groups), plan.Loose)
		}
	})
	t.Run("instrumented-evaluators-still-group", func(t *testing.T) {
		c := &obs.Collector{}
		evs := []core.Evaluator{mk1.Evaluator(), mk2.Evaluator()}
		for _, ev := range evs {
			core.Instrument(ev, c)
		}
		plan := BuildPlan(evs, NewCache(4), 0, nil)
		if len(plan.Groups) != 1 {
			t.Fatalf("instrumented evaluators did not group: %+v", plan)
		}
	})
	t.Run("fanout-plan", func(t *testing.T) {
		plan := FanoutPlan(3)
		if len(plan.Groups) != 0 || len(plan.Loose) != 3 {
			t.Fatalf("FanoutPlan(3) = %+v", plan)
		}
	})
}

// chunkMatches collects SelectChunksAt's per-bit output.
type bitMatch struct {
	bit int
	m   core.Match
}

func runChunks(pool *parallel.Pool, pd *core.ProductDFA, events []encoding.Event, cuts []int, c *obs.Collector) []bitMatch {
	var out []bitMatch
	SelectChunksAt(pool, pd, events, cuts, c, func(bit int, m core.Match) {
		out = append(out, bitMatch{bit, m})
	})
	return out
}

func TestSelectChunksMatchesSequential(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	abc := alphabet.Letters("abc")
	pd, err := core.NewProductDFA([]*core.TagDFA{
		tagQL(t, "a.*b", abc), tagQL(t, ".*a", alphabet.Letters("ab")), tagQL(t, "a.*c", alphabet.Letters("ac")),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	labels := []string{"a", "b", "c", "zz"}
	for trial := 0; trial < 40; trial++ {
		tr := gen.RandomTree(rng, labels, 1+rng.Intn(40))
		events := encoding.Markup(tr)
		want := runChunks(pool, pd, events, nil, nil) // no cuts: the sequential fallback
		n := len(events)
		cutSets := [][]int{{n / 2}, {1, 2, 3}, {n - 1}, {-3, 0, n, n + 7, n / 2, n / 2}}
		all := make([]int, 0, n)
		for i := 1; i < n; i++ {
			all = append(all, i)
		}
		cutSets = append(cutSets, all)
		for _, cuts := range cutSets {
			got := runChunks(pool, pd, events, cuts, nil)
			if len(got) != len(want) {
				t.Fatalf("trial %d cuts %v: %d matches, want %d", trial, cuts, len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("trial %d cuts %v match %d: %+v, want %+v", trial, cuts, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSelectChunksCounterParity: an instrumented chunked product run must
// mirror the fan-out accounting — Events = members × events, one Matches per
// (bit, node) — regardless of the cut set.
func TestSelectChunksCounterParity(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	abc := alphabet.Letters("abc")
	pd, err := core.NewProductDFA([]*core.TagDFA{tagQL(t, "a.*b", abc), tagQL(t, ".*a", abc)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	events := encoding.Markup(gen.RandomTree(rng, []string{"a", "b", "c"}, 30))
	for _, cuts := range [][]int{nil, {len(events) / 2}, {3, 9, 11}} {
		c := &obs.Collector{}
		got := runChunks(pool, pd, events, cuts, c)
		if want := int64(pd.Members()) * int64(len(events)); c.Events.Load() != want {
			t.Errorf("cuts %v: Events = %d, want %d", cuts, c.Events.Load(), want)
		}
		if c.Matches.Load() != int64(len(got)) {
			t.Errorf("cuts %v: Matches = %d, want %d", cuts, c.Matches.Load(), len(got))
		}
		if len(cuts) == 0 {
			if c.SeqFallbacks.Load() != 1 {
				t.Errorf("no cuts: SeqFallbacks = %d", c.SeqFallbacks.Load())
			}
		} else if c.ParallelRuns.Load() != 1 || c.Chunks.Load() != int64(len(cuts)+1) {
			t.Errorf("cuts %v: ParallelRuns=%d Chunks=%d", cuts, c.ParallelRuns.Load(), c.Chunks.Load())
		}
	}
}
