package parallel_test

import (
	"fmt"
	"sync"
	"testing"

	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/obs"
	"stackless/internal/paperfigs"
	"stackless/internal/parallel"
	"stackless/internal/rex"
)

// The observability contract of the parallel engine: a collector attached to
// a fanned-out run must account for every event exactly once (segment events
// plus boundary replays), agree with the sequential run on events and
// matches, and never change the match set. These tests run under -race in
// tier-1 CI, so they double as a data-race check on the collector hooks.

func obsMachines(t *testing.T) map[string]core.Chunkable {
	t.Helper()
	machines := map[string]core.Chunkable{}
	tag, err := core.RegisterlessQL(classify.Analyze(rex.MustCompile(paperfigs.Fig3aRegex, paperfigs.GammaABC())))
	if err != nil {
		t.Fatal(err)
	}
	machines["registerless"] = tag.Evaluator().(core.Chunkable)
	sl, err := core.StacklessQL(classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC())))
	if err != nil {
		t.Fatal(err)
	}
	machines["stackless"] = sl
	return machines
}

func TestObsCounterComposition(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	for name, m := range obsMachines(t) {
		for di, events := range corpus("abc") {
			want := seqMatches(m, events)
			for _, w := range workerCounts {
				c := &obs.Collector{}
				var got []core.Match
				parallel.SelectObs(p, m, events, w, c, func(mt core.Match) { got = append(got, mt) })
				if !matchesEqual(got, want) {
					t.Fatalf("%s doc %d workers %d: collector changed the match set", name, di, w)
				}
				if c.Events.Load() != int64(len(events)) {
					t.Fatalf("%s doc %d workers %d: Events = %d, want %d", name, di, w, c.Events.Load(), len(events))
				}
				if c.Matches.Load() != int64(len(want)) {
					t.Fatalf("%s doc %d workers %d: Matches = %d, want %d", name, di, w, c.Matches.Load(), len(want))
				}
				policy := m.Cut()
				if c.RunsByPolicy[policy].Load() != 1 {
					t.Fatalf("%s doc %d workers %d: RunsByPolicy[%v] = %d", name, di, w, policy, c.RunsByPolicy[policy].Load())
				}
				if c.ParallelRuns.Load() == 0 {
					// Degraded to sequential (too few events to cut): the
					// chunking counters must stay untouched.
					if c.SeqFallbacks.Load() != 1 || c.Chunks.Load() != 0 || c.Segments.Load() != 0 {
						t.Fatalf("%s doc %d workers %d: inconsistent fallback counters %s", name, di, w, c)
					}
					continue
				}
				// Fanned out: every event is covered by exactly one piece.
				if got := c.SegmentEvents.Load() + c.BoundaryEvents.Load(); got != int64(len(events)) {
					t.Fatalf("%s doc %d workers %d: SegmentEvents+BoundaryEvents = %d, want %d",
						name, di, w, got, len(events))
				}
				cuts := parallel.SplitPoints(len(events), w)
				if c.Chunks.Load() != int64(len(cuts))+1 {
					t.Fatalf("%s doc %d workers %d: Chunks = %d, want %d", name, di, w, c.Chunks.Load(), len(cuts)+1)
				}
				if c.PoolSubmits.Load() != c.Chunks.Load() {
					t.Fatalf("%s doc %d workers %d: PoolSubmits = %d, Chunks = %d",
						name, di, w, c.PoolSubmits.Load(), c.Chunks.Load())
				}
				if c.Segments.Load() < c.Chunks.Load()-c.BoundaryEvents.Load() {
					t.Fatalf("%s doc %d workers %d: %d segments cannot cover %d chunks (%d boundaries)",
						name, di, w, c.Segments.Load(), c.Chunks.Load(), c.BoundaryEvents.Load())
				}
			}
		}
	}
}

func TestObsSeqParallelParity(t *testing.T) {
	for name, m := range obsMachines(t) {
		for di, events := range corpus("abc") {
			seq := &obs.Collector{}
			if _, err := core.SelectObs(m, seq, encoding.NewSliceSource(events), nil); err != nil {
				t.Fatal(err)
			}
			par := &obs.Collector{}
			parallel.SelectObs(parallel.Shared(), m, events, 4, par, nil)
			if seq.Events.Load() != par.Events.Load() {
				t.Fatalf("%s doc %d: Events seq %d != parallel %d", name, di, seq.Events.Load(), par.Events.Load())
			}
			if seq.Matches.Load() != par.Matches.Load() {
				t.Fatalf("%s doc %d: Matches seq %d != parallel %d", name, di, seq.Matches.Load(), par.Matches.Load())
			}
		}
	}
}

func TestObsCutsRejected(t *testing.T) {
	m := obsMachines(t)["registerless"]
	events := corpus("abc")[len(corpus("abc"))-1]
	want := seqMatches(m, events)
	c := &obs.Collector{}
	cuts := []int{-3, 0, len(events) / 2, len(events) / 2, len(events), len(events) + 7}
	var got []core.Match
	parallel.SelectAtObs(parallel.Shared(), m, events, cuts, c, func(mt core.Match) { got = append(got, mt) })
	if !matchesEqual(got, want) {
		t.Fatalf("rejected cuts changed the match set")
	}
	// Only len(events)/2 survives sanitizing (once): 5 of 6 are rejected.
	if c.CutsRejected.Load() != 5 {
		t.Fatalf("CutsRejected = %d, want 5", c.CutsRejected.Load())
	}
	if c.Chunks.Load() != 2 {
		t.Fatalf("Chunks = %d, want 2", c.Chunks.Load())
	}
}

// TestObsSharedCollectorConcurrentRuns drives one collector from many
// concurrent fan-outs — the MultiQuery usage pattern — and checks the totals
// still compose. Under -race this is the main data-race check on the hooks.
func TestObsSharedCollectorConcurrentRuns(t *testing.T) {
	m := obsMachines(t)
	events := corpus("abc")[len(corpus("abc"))-2]
	wantSL := len(seqMatches(m["stackless"], events))
	wantRL := len(seqMatches(m["registerless"], events))
	c := &obs.Collector{}
	const runs = 8
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		fork1 := m["stackless"].Fork()
		fork2 := m["registerless"].Fork()
		wg.Add(2)
		go func() {
			defer wg.Done()
			parallel.SelectObs(parallel.Shared(), fork1, events, 3, c, nil)
		}()
		go func() {
			defer wg.Done()
			parallel.SelectObs(parallel.Shared(), fork2, events, 3, c, nil)
		}()
	}
	wg.Wait()
	if got, want := c.Events.Load(), int64(2*runs*len(events)); got != want {
		t.Fatalf("Events = %d, want %d", got, want)
	}
	if got, want := c.Matches.Load(), int64(runs*(wantSL+wantRL)); got != want {
		t.Fatalf("Matches = %d, want %d", got, want)
	}
	snap := c.Snapshot()
	if snap.Counters["events"] != int64(2*runs*len(events)) {
		t.Fatalf("snapshot events = %d", snap.Counters["events"])
	}
	_ = fmt.Sprintf("%s", c) // String() must be safe concurrently after runs
}
