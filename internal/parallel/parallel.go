package parallel

import (
	"sort"
	"sync"

	"stackless/internal/core"
	"stackless/internal/encoding"
)

// piece is a maximal slice of a chunk: either a summarized segment (seg),
// simulated concurrently from every control state, or a single boundary
// event (hi == lo+1) replayed on the real configuration at join time.
// Which events are boundaries is the machine's CutPolicy.
type piece struct {
	lo, hi int
	seg    bool
	opens  int // Open events in [lo,hi) (segments)
	delta  int // net depth change over [lo,hi) (segments)
	exits  []core.SegmentExit
	cands  *core.CandSet
}

// SplitPoints returns the interior cut positions for an even split of n
// events into the given number of chunks (deduplicated, strictly inside
// (0, n)).
func SplitPoints(n, chunks int) []int {
	var cuts []int
	for i := 1; i < chunks; i++ {
		c := i * n / chunks
		if c <= 0 || c >= n || (len(cuts) > 0 && cuts[len(cuts)-1] == c) {
			continue
		}
		cuts = append(cuts, c)
	}
	return cuts
}

// sanitizeCuts sorts, bounds and deduplicates explicit cut positions —
// fuzzers hand in arbitrary ints.
func sanitizeCuts(cuts []int, n int) []int {
	out := make([]int, 0, len(cuts))
	for _, c := range cuts {
		if c > 0 && c < n {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	w := 0
	for i, c := range out {
		if i > 0 && out[w-1] == c {
			continue
		}
		out[w] = c
		w++
	}
	return out[:w]
}

// cutPieces scans one chunk and splits it into pieces per the policy. The
// depth is tracked relative to the chunk entry.
func cutPieces(events []encoding.Event, lo, hi int, policy core.CutPolicy) []piece {
	var pieces []piece
	segLo := lo
	flush := func(end int) {
		if end > segLo {
			pieces = append(pieces, piece{lo: segLo, hi: end, seg: true})
		}
	}
	depth := 0
	threshold := 0 // running min (CutNewMin) or segment entry (CutBelowEntry)
	for i := lo; i < hi; i++ {
		if events[i].Kind == encoding.Open {
			depth++
			continue
		}
		depth--
		boundary := false
		switch policy {
		case core.CutNewMin:
			boundary = depth < threshold
		case core.CutBelowEntry:
			boundary = depth <= threshold
		}
		if boundary {
			flush(i)
			pieces = append(pieces, piece{lo: i, hi: i + 1})
			segLo = i + 1
			threshold = depth
		}
	}
	flush(hi)
	return pieces
}

// summarize simulates every segment piece of a chunk on a forked machine,
// filling exits, opens/delta and (when wantMatches) the candidate sets.
func summarize(m core.Chunkable, events []encoding.Event, pieces []piece, wantMatches bool) {
	kernel, hasKernel := m.(core.SegmentKernel)
	for pi := range pieces {
		pc := &pieces[pi]
		if !pc.seg {
			continue
		}
		seg := events[pc.lo:pc.hi]
		for _, e := range seg {
			if e.Kind == encoding.Open {
				pc.opens++
				pc.delta++
			} else {
				pc.delta--
			}
		}
		var cands *core.CandSet
		if wantMatches {
			cands = core.NewCandSet(m.ChunkStates())
		}
		if hasKernel {
			pc.exits = kernel.SimulateSegment(seg, cands)
		} else {
			pc.exits = core.SimulateSegmentGeneric(m, seg, cands)
		}
		pc.cands = cands
	}
}

// runSequential is the fallback when chunking cannot help: one pass on the
// caller goroutine, identical to core.Select over a slice source.
func runSequential(m core.Chunkable, events []encoding.Event, fn func(core.Match)) {
	m.Reset()
	pos, depth := -1, 0
	for _, e := range events {
		if e.Kind == encoding.Open {
			pos++
			depth++
		} else {
			depth--
		}
		m.Step(e)
		if fn != nil && e.Kind == encoding.Open && m.Accepting() {
			fn(core.Match{Pos: pos, Depth: depth, Label: e.Label})
		}
	}
}

// run chunks events at the given interior cuts, summarizes the chunks on
// the pool, and joins left to right, leaving m in its final configuration
// and reporting matches to fn (when non-nil) in document order. The output
// is byte-identical to the sequential run regardless of cuts, pool size or
// scheduling.
func run(p *Pool, m core.Chunkable, events []encoding.Event, cuts []int, fn func(core.Match)) {
	policy := m.Cut()
	cuts = sanitizeCuts(cuts, len(events))
	if policy == core.CutAll || len(cuts) == 0 {
		// CutAll: every event would be a boundary, so the join would replay
		// the whole stream anyway; skip the summaries.
		runSequential(m, events, fn)
		return
	}
	bounds := make([]int, 0, len(cuts)+2)
	bounds = append(bounds, 0)
	bounds = append(bounds, cuts...)
	bounds = append(bounds, len(events))

	chunkPieces := make([][]piece, len(bounds)-1)
	var wg sync.WaitGroup
	wantMatches := fn != nil
	for ci := 0; ci < len(bounds)-1; ci++ {
		ci := ci
		lo, hi := bounds[ci], bounds[ci+1]
		fork := m.Fork()
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			pieces := cutPieces(events, lo, hi, policy)
			summarize(fork, events, pieces, wantMatches)
			chunkPieces[ci] = pieces
		})
	}
	wg.Wait()

	m.Reset()
	pos, depth := -1, 0
	for _, pieces := range chunkPieces {
		for pi := range pieces {
			pc := &pieces[pi]
			q := m.JoinState()
			if q < 0 {
				// Poison is absorbing and never accepting: no machine that
				// reports -1 can select or accept later. (The AL wrapper,
				// whose dead-inner runs may still accept, never reports -1.)
				return
			}
			if !pc.seg {
				e := events[pc.lo]
				if e.Kind == encoding.Open {
					pos++
					depth++
				} else {
					depth--
				}
				m.Step(e)
				if fn != nil && e.Kind == encoding.Open && m.Accepting() {
					fn(core.Match{Pos: pos, Depth: depth, Label: e.Label})
				}
				continue
			}
			if fn != nil {
				for i, c := range pc.cands.Cands {
					if pc.cands.Has(i, q) {
						fn(core.Match{
							Pos:   pos + 1 + int(c.Opens),
							Depth: depth + int(c.Depth),
							Label: events[pc.lo+int(c.Idx)].Label,
						})
					}
				}
			}
			m.ApplySegment(pc.exits[q], pc.delta)
			pos += pc.opens
			depth += pc.delta
		}
	}
}

// Select evaluates a node-selecting machine over the events in the given
// number of chunks, reporting matches in document order. The match set is
// identical to core.Select's.
func Select(p *Pool, m core.Chunkable, events []encoding.Event, chunks int, fn func(core.Match)) {
	run(p, m, events, SplitPoints(len(events), chunks), fn)
}

// SelectAt is Select with explicit interior cut positions — the
// adversarial-boundary entry point for tests and fuzzing.
func SelectAt(p *Pool, m core.Chunkable, events []encoding.Event, cuts []int, fn func(core.Match)) {
	run(p, m, events, cuts, fn)
}

// SelectPositions runs Select and collects the selected preorder positions.
func SelectPositions(p *Pool, m core.Chunkable, events []encoding.Event, chunks int) []int {
	var out []int
	Select(p, m, events, chunks, func(mt core.Match) { out = append(out, mt.Pos) })
	return out
}

// Recognize evaluates a tree-language machine over the events in the given
// number of chunks and returns the final acceptance.
func Recognize(p *Pool, m core.Chunkable, events []encoding.Event, chunks int) bool {
	return RecognizeAt(p, m, events, SplitPoints(len(events), chunks))
}

// RecognizeAt is Recognize with explicit interior cut positions.
func RecognizeAt(p *Pool, m core.Chunkable, events []encoding.Event, cuts []int) bool {
	run(p, m, events, cuts, nil)
	return m.Accepting()
}
