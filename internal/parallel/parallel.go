package parallel

import (
	"sort"
	"sync"
	"time"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/obs"
)

// piece is a maximal slice of a chunk: either a summarized segment (seg),
// simulated concurrently from every control state, or a single boundary
// event (hi == lo+1) replayed on the real configuration at join time.
// Which events are boundaries is the machine's CutPolicy.
type piece struct {
	lo, hi int
	seg    bool
	opens  int // Open events in [lo,hi) (segments)
	delta  int // net depth change over [lo,hi) (segments)
	exits  []core.SegmentExit
	cands  *core.CandSet
}

// SplitPoints returns the interior cut positions for an even split of n
// events into the given number of chunks (deduplicated, strictly inside
// (0, n)).
func SplitPoints(n, chunks int) []int {
	var cuts []int
	for i := 1; i < chunks; i++ {
		c := i * n / chunks
		if c <= 0 || c >= n || (len(cuts) > 0 && cuts[len(cuts)-1] == c) {
			continue
		}
		cuts = append(cuts, c)
	}
	return cuts
}

// sanitizeCuts sorts, bounds and deduplicates explicit cut positions —
// fuzzers hand in arbitrary ints.
func sanitizeCuts(cuts []int, n int) []int {
	out := make([]int, 0, len(cuts))
	for _, c := range cuts {
		if c > 0 && c < n {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	w := 0
	for i, c := range out {
		if i > 0 && out[w-1] == c {
			continue
		}
		out[w] = c
		w++
	}
	return out[:w]
}

// cutPieces scans one chunk and splits it into pieces per the policy. The
// depth is tracked relative to the chunk entry.
//
//treelint:plain
func cutPieces(events []encoding.Event, lo, hi int, policy core.CutPolicy) []piece {
	var pieces []piece
	segLo := lo
	//treelint:partial piece-list assembly: the closure and its appends are O(pieces), not O(events)
	flush := func(end int) {
		if end > segLo {
			pieces = append(pieces, piece{lo: segLo, hi: end, seg: true})
		}
	}
	depth := 0
	threshold := 0 // running min (CutNewMin) or segment entry (CutBelowEntry)
	for i := lo; i < hi; i++ {
		if events[i].Kind == encoding.Open {
			depth++
			continue
		}
		depth--
		boundary := false
		switch policy {
		case core.CutNewMin, core.CutBoundedDepth:
			// CutBoundedDepth (the speculative pushdown) shares the
			// new-minimum rule: within a segment the depth never drops
			// below the entry, so every in-segment close pops an
			// in-segment frame and the summary is composable.
			boundary = depth < threshold
		case core.CutBelowEntry:
			boundary = depth <= threshold
		case core.CutNone, core.CutAll:
			// CutNone keeps the chunk whole; CutAll is resolved by the
			// caller before scanning (every close is a piece boundary).
		}
		if boundary {
			flush(i)
			//treelint:partial one piece record per cut boundary, O(pieces) not O(events)
			pieces = append(pieces, piece{lo: i, hi: i + 1})
			segLo = i + 1
			threshold = depth
		}
	}
	flush(hi)
	return pieces
}

// summarize simulates every segment piece of a chunk on a forked machine,
// filling exits, opens/delta and (when wantMatches) the candidate sets.
// When the stream has been coded (coded non-nil, index-aligned with events)
// and the machine has a coded kernel, segments run through it — the hot
// path of the compiled pipeline under parallel evaluation.
func summarize(m core.Chunkable, events []encoding.Event, coded []encoding.CodedEvent, pieces []piece, wantMatches bool) {
	ckernel, hasCoded := m.(core.CodedSegmentKernel)
	hasCoded = hasCoded && coded != nil
	kernel, hasKernel := m.(core.SegmentKernel)
	for pi := range pieces {
		pc := &pieces[pi]
		if !pc.seg {
			continue
		}
		seg := events[pc.lo:pc.hi]
		for _, e := range seg {
			if e.Kind == encoding.Open {
				pc.opens++
				pc.delta++
			} else {
				pc.delta--
			}
		}
		var cands *core.CandSet
		if wantMatches {
			cands = core.NewCandSet(m.ChunkStates())
		}
		switch {
		case hasCoded:
			pc.exits = ckernel.SimulateSegmentCoded(coded[pc.lo:pc.hi], cands)
		case hasKernel:
			pc.exits = kernel.SimulateSegment(seg, cands)
		default:
			pc.exits = core.SimulateSegmentGeneric(m, seg, cands)
		}
		pc.cands = cands
	}
}

// codeStream lowers the whole buffered stream once when the machine runs
// the compiled pipeline end to end (batch stepping and a coded segment
// kernel); nil otherwise. One coder, so hashing is per distinct label.
func codeStream(m core.Chunkable, events []encoding.Event) []encoding.CodedEvent {
	be, ok := m.(core.BatchEvaluator)
	if !ok {
		return nil
	}
	if _, ok := m.(core.CodedSegmentKernel); !ok {
		return nil
	}
	return encoding.CodeEvents(alphabet.NewCoder(be.CodeAlphabet()), events, make([]encoding.CodedEvent, 0, len(events)))
}

// Coded reports whether the machine takes the compiled pipeline here: used
// by the public API's Stats.Pipeline.
func Coded(m core.Chunkable) bool {
	if _, ok := m.(core.BatchEvaluator); !ok {
		return false
	}
	_, ok := m.(core.CodedSegmentKernel)
	return ok
}

// MaxDepth returns the maximum nesting depth reached over the event
// stream (one linear scan; stray closes below the start do not go
// negative for the purpose of the maximum).
func MaxDepth(events []encoding.Event) int {
	depth, max := 0, 0
	for _, e := range events {
		if e.Kind == encoding.Open {
			depth++
			if depth > max {
				max = depth
			}
		} else if depth > 0 {
			// Stray closes below the start are the machines' empty-stack
			// no-op; they must not offset the depths of later opens.
			depth--
		}
	}
	return max
}

// SpeculationViable reports whether a CutBoundedDepth machine should fan
// out over the stream rather than degrade to the sequential coded run.
// Speculative segment simulation costs O(states) per event and the join
// replays one boundary per new-minimum close (at most maxDepth per
// chunk), so it only pays off when the stream's depth is small against
// the chunk size. The 4× factor is the break-even margin: with D·chunks
// boundaries at worst, segments must dominate by enough to amortize the
// all-states overhead. Exported so the public API layer reports the same
// decision the engine makes (Stats.Fallback "speculative" vs "deep").
func SpeculationViable(events []encoding.Event, chunks int) bool {
	if chunks <= 1 || len(events) == 0 {
		return false
	}
	return 4*MaxDepth(events)*chunks <= len(events)
}

// runSequential is the fallback when chunking cannot help: one pass on the
// caller goroutine, identical to core.Select over a slice source.
//
//treelint:plain
func runSequential(m core.Chunkable, events []encoding.Event, fn func(core.Match)) {
	m.Reset()
	pos, depth := -1, 0
	for _, e := range events {
		if e.Kind == encoding.Open {
			pos++
			depth++
		} else {
			depth--
		}
		m.Step(e)
		if fn != nil && e.Kind == encoding.Open && m.Accepting() {
			fn(core.Match{Pos: pos, Depth: depth, Label: e.Label})
		}
	}
}

// runSequentialCoded is runSequential through the compiled pipeline: the
// already-coded stream is batch-stepped as a whole, and the events are
// walked (for positions, depths and labels) only when there are hits to
// report.
//
//treelint:plain
func runSequentialCoded(be core.BatchEvaluator, events []encoding.Event, coded []encoding.CodedEvent, fn func(core.Match)) {
	be.Reset()
	if fn == nil {
		be.StepBatch(coded)
		return
	}
	hits := be.SelectBatch(coded, nil)
	if len(hits) == 0 {
		return
	}
	pos, depth, hi := -1, 0, 0
	for i, e := range events {
		if e.Kind != encoding.Open {
			depth--
			continue
		}
		pos++
		depth++
		if hits[hi] == int32(i) {
			fn(core.Match{Pos: pos, Depth: depth, Label: e.Label})
			hi++
			if hi == len(hits) {
				return
			}
		}
	}
}

// run chunks events at the given interior cuts, summarizes the chunks on
// the pool, and joins left to right, leaving m in its final configuration
// and reporting matches to fn (when non-nil) in document order. The output
// is byte-identical to the sequential run regardless of cuts, pool size or
// scheduling.
//
// A non-nil collector receives the chunking metrics: events and matches,
// chunks/segments/boundary counts (SegmentEvents + BoundaryEvents always
// equals len(events) for a fanned-out run), per-policy run counts, split/
// simulate/join phase timings and the pool gauges. A nil collector is a
// handful of predictable branches and zero allocations.
func run(p *Pool, m core.Chunkable, events []encoding.Event, cuts []int, c *obs.Collector, fn func(core.Match)) {
	policy := m.Cut()
	requested := len(cuts)
	cuts = sanitizeCuts(cuts, len(events))
	if c != nil {
		// Machines batch per-run metrics (register loads, pool hits) in
		// plain fields; drain them however the run exits.
		defer core.FlushEvObs(m)
		c.Events.Add(int64(len(events)))
		c.RunsByPolicy[policy].Inc()
		c.CutsRejected.Add(int64(requested - len(cuts)))
		if fn != nil {
			inner := fn
			total := len(events)
			fn = func(mt core.Match) {
				c.Matches.Inc()
				// The parallel engine confirms all matches at the end-of-
				// stream join. The deciding Open's event index recovers from
				// the match itself: opens before it = Pos, closes before it
				// = Pos+1-Depth, so it is event 2·Pos+1-Depth of the stream.
				c.Latency.Observe(total - 2*mt.Pos - 2 + mt.Depth)
				inner(mt)
			}
		}
	}
	coded := codeStream(m, events)
	if policy == core.CutAll || len(cuts) == 0 {
		// CutAll: every event would be a boundary, so the join would replay
		// the whole stream anyway; skip the summaries.
		if c != nil {
			c.SeqFallbacks.Inc()
		}
		if coded != nil {
			runSequentialCoded(m.(core.BatchEvaluator), events, coded, fn)
			return
		}
		runSequential(m, events, fn)
		return
	}
	bounds := make([]int, 0, len(cuts)+2)
	bounds = append(bounds, 0)
	bounds = append(bounds, cuts...)
	bounds = append(bounds, len(events))

	chunkPieces := make([][]piece, len(bounds)-1)
	var wg sync.WaitGroup
	wantMatches := fn != nil
	var fanout time.Time
	if c != nil {
		c.ParallelRuns.Inc()
		c.Chunks.Add(int64(len(bounds) - 1))
		if policy == core.CutBoundedDepth {
			c.SpecChunks.Add(int64(len(bounds) - 1))
		}
		c.PoolWorkers.Store(int64(p.Workers()))
		fanout = time.Now()
	}
	for ci := 0; ci < len(bounds)-1; ci++ {
		ci := ci
		lo, hi := bounds[ci], bounds[ci+1]
		fork := m.Fork()
		if c != nil {
			c.PoolSubmits.Inc()
			c.QueueDepth.Observe(p.QueueLen())
		}
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			if c == nil {
				pieces := cutPieces(events, lo, hi, policy)
				summarize(fork, events, coded, pieces, wantMatches)
				chunkPieces[ci] = pieces
				return
			}
			t0 := time.Now()
			pieces := cutPieces(events, lo, hi, policy)
			t1 := time.Now()
			summarize(fork, events, coded, pieces, wantMatches)
			t2 := time.Now()
			c.Phases[obs.PhaseSplit].Observe(t1.Sub(t0))
			c.Phases[obs.PhaseSimulate].Observe(t2.Sub(t1))
			c.WorkerBusyNs.Add(t2.Sub(t0).Nanoseconds())
			var segs, segEvents, boundaries int64
			for pi := range pieces {
				if pieces[pi].seg {
					segs++
					segEvents += int64(pieces[pi].hi - pieces[pi].lo)
				} else {
					boundaries++
				}
			}
			c.Segments.Add(segs)
			c.SegmentEvents.Add(segEvents)
			c.BoundaryEvents.Add(boundaries)
			chunkPieces[ci] = pieces
		})
	}
	wg.Wait()
	var joinStart time.Time
	if c != nil {
		now := time.Now()
		c.FanoutWallNs.Add(now.Sub(fanout).Nanoseconds())
		joinStart = now
		defer func() {
			c.Phases[obs.PhaseJoin].Observe(time.Since(joinStart))
		}()
	}

	m.Reset()
	pos, depth := -1, 0
	for _, pieces := range chunkPieces {
		for pi := range pieces {
			pc := &pieces[pi]
			q := m.JoinState()
			if q < 0 {
				// Poison is absorbing and never accepting: no machine that
				// reports -1 can select or accept later. (The AL wrapper,
				// whose dead-inner runs may still accept, never reports -1.)
				return
			}
			if !pc.seg {
				e := events[pc.lo]
				if e.Kind == encoding.Open {
					pos++
					depth++
				} else {
					depth--
				}
				m.Step(e)
				if fn != nil && e.Kind == encoding.Open && m.Accepting() {
					fn(core.Match{Pos: pos, Depth: depth, Label: e.Label})
				}
				continue
			}
			if fn != nil {
				for i, cand := range pc.cands.Cands {
					if pc.cands.Has(i, q) {
						fn(core.Match{
							Pos:   pos + 1 + int(cand.Opens),
							Depth: depth + int(cand.Depth),
							Label: events[pc.lo+int(cand.Idx)].Label,
						})
					}
				}
			}
			m.ApplySegment(pc.exits[q], pc.delta)
			pos += pc.opens
			depth += pc.delta
		}
	}
}

// gateCuts applies the speculation-viability gate to an even split: a
// CutBoundedDepth machine (the speculative pushdown) only fans out when
// the stream's depth is small against the chunk size; otherwise the cuts
// are dropped and the run degrades to the sequential (coded) pass. The
// explicit-cut entry points (SelectAt and friends) bypass this gate on
// purpose — they are the adversarial-boundary harness and must be able to
// force speculative fan-out on any stream.
func gateCuts(m core.Chunkable, events []encoding.Event, cuts []int) []int {
	if len(cuts) > 0 && m.Cut() == core.CutBoundedDepth && !SpeculationViable(events, len(cuts)+1) {
		return nil
	}
	return cuts
}

// Select evaluates a node-selecting machine over the events in the given
// number of chunks, reporting matches in document order. The match set is
// identical to core.Select's.
func Select(p *Pool, m core.Chunkable, events []encoding.Event, chunks int, fn func(core.Match)) {
	run(p, m, events, gateCuts(m, events, SplitPoints(len(events), chunks)), nil, fn)
}

// SelectObs is Select reporting chunking metrics into a collector (nil:
// zero overhead; see internal/obs).
func SelectObs(p *Pool, m core.Chunkable, events []encoding.Event, chunks int, c *obs.Collector, fn func(core.Match)) {
	run(p, m, events, gateCuts(m, events, SplitPoints(len(events), chunks)), c, countingFn(c, fn))
}

// countingFn keeps Matches counted even for callers that discard matches —
// core.SelectObs counts matches with a nil callback, and the parallel
// engine only collects match candidates when a callback is present, so an
// instrumented nil callback is promoted to a no-op one.
func countingFn(c *obs.Collector, fn func(core.Match)) func(core.Match) {
	if c != nil && fn == nil {
		return func(core.Match) {}
	}
	return fn
}

// SelectAt is Select with explicit interior cut positions — the
// adversarial-boundary entry point for tests and fuzzing.
func SelectAt(p *Pool, m core.Chunkable, events []encoding.Event, cuts []int, fn func(core.Match)) {
	run(p, m, events, cuts, nil, fn)
}

// SelectAtObs is SelectAt reporting chunking metrics into a collector —
// out-of-range cuts count into CutsRejected.
func SelectAtObs(p *Pool, m core.Chunkable, events []encoding.Event, cuts []int, c *obs.Collector, fn func(core.Match)) {
	run(p, m, events, cuts, c, countingFn(c, fn))
}

// SelectPositions runs Select and collects the selected preorder positions.
func SelectPositions(p *Pool, m core.Chunkable, events []encoding.Event, chunks int) []int {
	var out []int
	Select(p, m, events, chunks, func(mt core.Match) { out = append(out, mt.Pos) })
	return out
}

// Recognize evaluates a tree-language machine over the events in the given
// number of chunks and returns the final acceptance.
func Recognize(p *Pool, m core.Chunkable, events []encoding.Event, chunks int) bool {
	return RecognizeAt(p, m, events, gateCuts(m, events, SplitPoints(len(events), chunks)))
}

// RecognizeObs is Recognize reporting chunking metrics into a collector.
func RecognizeObs(p *Pool, m core.Chunkable, events []encoding.Event, chunks int, c *obs.Collector) bool {
	run(p, m, events, gateCuts(m, events, SplitPoints(len(events), chunks)), c, nil)
	return m.Accepting()
}

// RecognizeAt is Recognize with explicit interior cut positions.
func RecognizeAt(p *Pool, m core.Chunkable, events []encoding.Event, cuts []int) bool {
	run(p, m, events, cuts, nil, nil)
	return m.Accepting()
}
