package parallel_test

import (
	"testing"

	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/paperfigs"
	"stackless/internal/parallel"
)

// The compiled pipeline under chunking: machines with coded segment kernels
// run them whenever the parallel engine fans out (summarize codes the
// buffered stream once), so every differential test in this file doubles as
// a coded-vs-string check — the sequential reference always takes the
// string path.

// TestParallelCodedUnknownLabels drives documents containing labels outside
// the machine alphabet (the unknown-sentinel path of the coded kernels)
// through every chunkable machine class, over adversarial cut positions —
// including cuts landing exactly on the out-of-alphabet events. Covers the
// CutNone (tag DFA), CutNewMin (stackless), CutBelowEntry (restricted DRA,
// Example 2.6) and CutAll (unrestricted DRA, Example 2.2) kernels.
func TestParallelCodedUnknownLabels(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	an3a := classify.Analyze(paperfigs.Fig3a())
	an3c := classify.Analyze(paperfigs.Fig3c())
	tagM, err := core.RegisterlessQL(an3a)
	if err != nil {
		t.Fatal(err)
	}
	stM, err := core.StacklessQL(an3c)
	if err != nil {
		t.Fatal(err)
	}
	machines := []struct {
		name  string
		fresh func() core.Chunkable
		coded bool
	}{
		{"tagdfa", func() core.Chunkable { return tagM.Evaluator().(core.Chunkable) }, true},
		{"stackless", func() core.Chunkable { return stM.Fork() }, true},
		{"dra/example26-cutbelowentry", func() core.Chunkable { return core.Example26().Evaluator().(core.Chunkable) }, false},
		{"dra/example22-cutall", func() core.Chunkable { return core.Example22().Evaluator().(core.Chunkable) }, false},
		{"dra/example27", func() core.Chunkable { return core.Example27Minimal().Evaluator().(core.Chunkable) }, false},
	}
	for _, mc := range machines {
		m := mc.fresh()
		if got := parallel.Coded(m); got != mc.coded {
			t.Fatalf("%s: parallel.Coded = %v, want %v", mc.name, got, mc.coded)
		}
		if mc.name == "dra/example26-cutbelowentry" {
			if pol := m.Cut(); pol != core.CutBelowEntry {
				t.Fatalf("Example26 cut policy: got %v, want CutBelowEntry", pol)
			}
		}
		// "z" is outside every machine alphabet here ({a,b,c} or {a,b}):
		// docs mix known and unknown labels at all positions.
		for _, events := range corpus("abz") {
			diffSelect(t, p, mc.name, m, events)
		}
	}
}
