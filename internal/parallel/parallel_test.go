package parallel_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/paperfigs"
	"stackless/internal/parallel"
	"stackless/internal/rex"
	"stackless/internal/stackeval"
)

// The differential harness: for every chunkable machine in internal/core,
// over a corpus of random and adversarially-shaped trees, the parallel
// engine must reproduce the sequential match set (full Match structs, not
// just positions) for every worker count and for adversarial chunk
// boundaries — mid-subtree, at depth spikes, and chunk size 1. For the
// DFA-backed machines the sequential run itself is cross-checked against
// the stack-based oracle.

var workerCounts = []int{1, 2, 3, 8}

func seqMatches(m core.Evaluator, events []encoding.Event) []core.Match {
	var out []core.Match
	if _, err := core.Select(m, encoding.NewSliceSource(events), func(mt core.Match) { out = append(out, mt) }); err != nil {
		panic(err)
	}
	return out
}

func parMatches(p *parallel.Pool, m core.Chunkable, events []encoding.Event, chunks int) []core.Match {
	var out []core.Match
	parallel.Select(p, m, events, chunks, func(mt core.Match) { out = append(out, mt) })
	return out
}

func parMatchesAt(p *parallel.Pool, m core.Chunkable, events []encoding.Event, cuts []int) []core.Match {
	var out []core.Match
	parallel.SelectAt(p, m, events, cuts, func(mt core.Match) { out = append(out, mt) })
	return out
}

// adversarialCuts returns cut sets targeting the boundary cases: every
// single interior position (mid-subtree cuts), the positions around the
// deepest event (depth spikes), and every position at once (chunk size 1).
func adversarialCuts(events []encoding.Event) [][]int {
	n := len(events)
	var cuts [][]int
	for i := 1; i < n; i++ {
		cuts = append(cuts, []int{i})
	}
	depth, maxDepth, spike := 0, -1, 0
	for i, e := range events {
		if e.Kind == encoding.Open {
			depth++
		} else {
			depth--
		}
		if depth > maxDepth {
			maxDepth, spike = depth, i
		}
	}
	cuts = append(cuts, []int{spike, spike + 1})
	if spike > 1 {
		cuts = append(cuts, []int{spike - 1, spike, spike + 1})
	}
	all := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		all = append(all, i)
	}
	cuts = append(cuts, all)
	return cuts
}

// diffSelect checks the parallel engine against the sequential run of the
// same machine on one document, across worker counts and adversarial cuts.
func diffSelect(t *testing.T, p *parallel.Pool, name string, m core.Chunkable, events []encoding.Event) {
	t.Helper()
	want := seqMatches(m, events)
	for _, w := range workerCounts {
		got := parMatches(p, m, events, w)
		if !matchesEqual(got, want) {
			t.Fatalf("%s: %d chunks: parallel %v, sequential %v", name, w, got, want)
		}
	}
	for _, cuts := range adversarialCuts(events) {
		got := parMatchesAt(p, m, events, cuts)
		if !matchesEqual(got, want) {
			t.Fatalf("%s: cuts %v: parallel %v, sequential %v", name, cuts, got, want)
		}
	}
}

func matchesEqual(a, b []core.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// corpus returns the test documents: random trees of varied sizes, deep
// chains, combs, and the paper's running examples.
func corpus(labels string) [][]encoding.Event {
	rng := rand.New(rand.NewSource(2021))
	var ls []string
	for _, r := range labels {
		ls = append(ls, string(r))
	}
	var docs [][]encoding.Event
	for _, size := range []int{1, 2, 3, 4, 5, 8, 20, 60} {
		for rep := 0; rep < 3; rep++ {
			docs = append(docs, encoding.Markup(gen.RandomTree(rng, ls, size)))
		}
	}
	docs = append(docs, encoding.Markup(gen.DeepChain(rng, ls, 12)))
	docs = append(docs, encoding.Markup(gen.Comb(ls[0], ls[len(ls)-1], 6, 3)))
	return docs
}

func TestParallelRegisterlessMatchesSequentialAndOracle(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	for _, tc := range []struct {
		expr   string
		alph   *alphabet.Alphabet
		labels string
	}{
		{paperfigs.Fig3aRegex, paperfigs.GammaABC(), "abc"},
		{paperfigs.Fig2Regex, paperfigs.GammaAB(), "ab"},
	} {
		expr := tc.expr
		an := classify.Analyze(rex.MustCompile(expr, tc.alph))
		tag, err := core.RegisterlessQL(an)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		m := tag.Evaluator().(core.Chunkable)
		oracle := stackeval.QL(an.D)
		for di, events := range corpus(tc.labels) {
			if !matchesEqual(seqMatches(m, events), seqMatches(oracle, events)) {
				t.Fatalf("%s doc %d: sequential diverges from stack oracle", expr, di)
			}
			diffSelect(t, p, fmt.Sprintf("registerless %s doc %d", expr, di), m, events)
		}
	}
}

func TestParallelStacklessMatchesSequentialAndOracle(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	for _, expr := range []string{paperfigs.Fig3cRegex, paperfigs.Fig3bRegex} {
		an := classify.Analyze(rex.MustCompile(expr, paperfigs.GammaABC()))
		ev, err := core.StacklessQL(an)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		oracle := stackeval.QL(an.D)
		for di, events := range corpus("abc") {
			if !matchesEqual(seqMatches(ev, events), seqMatches(oracle, events)) {
				t.Fatalf("%s doc %d: sequential diverges from stack oracle", expr, di)
			}
			diffSelect(t, p, fmt.Sprintf("stackless %s doc %d", expr, di), ev, events)
		}
	}
}

func TestParallelBlindStacklessTermEncoding(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	rng := rand.New(rand.NewSource(7))
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	ev, err := core.BlindStacklessQL(an)
	if err != nil {
		t.Fatal(err)
	}
	oracle := stackeval.QL(an.D)
	for i := 0; i < 20; i++ {
		events := encoding.Term(gen.RandomTree(rng, []string{"a", "b", "c"}, 2+rng.Intn(40)))
		if !matchesEqual(seqMatches(ev, events), seqMatches(oracle, events)) {
			t.Fatalf("doc %d: sequential diverges from stack oracle", i)
		}
		diffSelect(t, p, fmt.Sprintf("blind stackless doc %d", i), ev, events)
	}
}

// TestParallelRandomHARMachines is the property sweep: random minimal
// automata, every compilable strategy, differential on random documents.
func TestParallelRandomHARMachines(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	rng := rand.New(rand.NewSource(99))
	alph := alphabet.Letters("ab")
	tested := 0
	for i := 0; i < 3000 && tested < 25; i++ {
		an := classify.Analyze(dfa.Random(rng, alph, 1+rng.Intn(5)))
		ev, err := core.StacklessQL(an)
		if err != nil {
			continue
		}
		tested++
		oracle := stackeval.QL(an.D)
		for j := 0; j < 6; j++ {
			events := encoding.Markup(gen.RandomTree(rng, []string{"a", "b"}, 1+rng.Intn(50)))
			if !matchesEqual(seqMatches(ev, events), seqMatches(oracle, events)) {
				t.Fatalf("machine %d doc %d: sequential diverges from stack oracle", i, j)
			}
			diffSelect(t, p, fmt.Sprintf("random machine %d doc %d", i, j), ev, events)
		}
	}
	if tested == 0 {
		t.Fatal("no HAR machines sampled")
	}
}

// exampleDRAs returns every example/pattern table DRA with the label set
// of its alphabet. Example22 is unrestricted — it exercises the CutAll
// graceful degradation path.
func exampleDRAs(t *testing.T) map[string]*core.DRA {
	t.Helper()
	l := rex.MustCompile("(b|ab*a)*", alphabet.Letters("ab"))
	chain, err := core.ChainPatternDRA(alphabet.Letters("abc"), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	formal, err := core.FormalDRA(an, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*core.DRA{
		"Example22":        core.Example22(),
		"Example25":        core.Example25(l),
		"Example26":        core.Example26(),
		"Example27Minimal": core.Example27Minimal(),
		"ChainPattern":     chain,
		"FormalDRA":        formal,
	}
}

func TestParallelTableDRAsMatchSequential(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	for name, d := range exampleDRAs(t) {
		m, ok := d.Evaluator().(core.Chunkable)
		if !ok {
			t.Fatalf("%s: table DRA evaluator is not chunkable", name)
		}
		docs := corpus("ab")
		if d.Alphabet.Size() > 2 {
			docs = append(docs, corpus("abc")...)
		}
		for di, events := range docs {
			diffSelect(t, p, fmt.Sprintf("%s doc %d", name, di), m, events)
		}
	}
}

func TestUnrestrictedDRADegradesToCutAll(t *testing.T) {
	m := core.Example22().Evaluator().(core.Chunkable)
	if got := m.Cut(); got != core.CutAll {
		t.Fatalf("Example22 cut policy: got %v, want CutAll", got)
	}
	r := core.Example26().Evaluator().(core.Chunkable)
	if got := r.Cut(); got != core.CutBelowEntry {
		t.Fatalf("Example26 cut policy: got %v, want CutBelowEntry", got)
	}
}

// TestParallelRecognizeELAL checks the EL/AL wrapper chunkability: the
// parallel Recognize verdicts agree with the sequential wrapper and the
// stack-based recognizers for every worker count and adversarial cuts.
func TestParallelRecognizeELAL(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	for _, tc := range []struct {
		expr   string
		alph   *alphabet.Alphabet
		labels string
	}{
		{paperfigs.Fig3cRegex, paperfigs.GammaABC(), "abc"},
		{paperfigs.Fig3aRegex, paperfigs.GammaABC(), "abc"},
		{paperfigs.Fig2Regex, paperfigs.GammaAB(), "ab"},
	} {
		expr := tc.expr
		an := classify.Analyze(rex.MustCompile(expr, tc.alph))
		var inner core.Evaluator
		if ev, err := core.StacklessQL(an); err == nil {
			inner = ev
		} else if tag, rerr := core.RegisterlessQL(an); rerr == nil {
			inner = tag.Evaluator()
		} else {
			t.Fatalf("%s: neither stackless (%v) nor registerless (%v)", expr, err, rerr)
		}
		diffRecognize(t, p, expr+" EL", core.ELFromQL(inner), stackeval.EL(an.D), tc.labels)
		diffRecognize(t, p, expr+" AL", core.ALFromQL(inner), stackeval.AL(an.D), tc.labels)
	}
}

func diffRecognize(t *testing.T, p *parallel.Pool, name string, wrapped, oracle core.Evaluator, labels string) {
	t.Helper()
	m, ok := wrapped.(core.Chunkable)
	if !ok {
		t.Fatalf("%s: wrapper over a chunkable inner is not chunkable", name)
	}
	for di, events := range corpus(labels) {
		want, err := core.Recognize(oracle, encoding.NewSliceSource(events))
		if err != nil {
			t.Fatal(err)
		}
		seq, err := core.Recognize(m, encoding.NewSliceSource(events))
		if err != nil {
			t.Fatal(err)
		}
		if seq != want {
			t.Fatalf("%s doc %d: sequential wrapper %v, oracle %v", name, di, seq, want)
		}
		for _, w := range workerCounts {
			if got := parallel.Recognize(p, m, events, w); got != want {
				t.Fatalf("%s doc %d: %d chunks: parallel %v, want %v", name, di, w, got, want)
			}
		}
		for _, cuts := range adversarialCuts(events) {
			if got := parallel.RecognizeAt(p, m, events, cuts); got != want {
				t.Fatalf("%s doc %d: cuts %v: parallel %v, want %v", name, di, cuts, got, want)
			}
		}
	}
}

// TestParallelALDeadInnerOnFinalClose pins the alWrapper edge case that
// forced the explicit dead-inner control states: a blind stackless inner
// that poisons on the very last closing tag (back-table miss) with the
// previous open accepted leaves AL accepting — collapsing the dead inner
// to the poisoned summary would flip the verdict.
func TestParallelALDeadInnerOnFinalClose(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	rng := rand.New(rand.NewSource(123))
	alph := alphabet.Letters("ab")
	checked := 0
	for i := 0; i < 4000 && checked < 400; i++ {
		an := classify.Analyze(dfa.Random(rng, alph, 1+rng.Intn(4)))
		ev, err := core.BlindStacklessQL(an)
		if err != nil {
			continue
		}
		al := core.ALFromQL(ev)
		m, ok := al.(core.Chunkable)
		if !ok {
			t.Fatal("AL over blind stackless inner is not chunkable")
		}
		oracle := stackeval.AL(an.D)
		events := encoding.Term(gen.RandomTree(rng, []string{"a", "b"}, 1+rng.Intn(20)))
		want, err := core.Recognize(oracle, encoding.NewSliceSource(events))
		if err != nil {
			t.Fatal(err)
		}
		seq, err := core.Recognize(m, encoding.NewSliceSource(events))
		if err != nil {
			t.Fatal(err)
		}
		if seq != want {
			t.Fatalf("machine %d: sequential AL wrapper %v, oracle %v", i, seq, want)
		}
		checked++
		for _, w := range workerCounts {
			if got := parallel.Recognize(p, m, events, w); got != want {
				t.Fatalf("machine %d: %d chunks: parallel AL %v, want %v", i, w, got, want)
			}
		}
		for _, cuts := range adversarialCuts(events) {
			if got := parallel.RecognizeAt(p, m, events, cuts); got != want {
				t.Fatalf("machine %d: cuts %v: parallel AL %v, want %v", i, cuts, got, want)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no blind-HAR machines sampled")
	}
}

func TestSplitPoints(t *testing.T) {
	for _, tc := range []struct {
		n, chunks int
		want      []int
	}{
		{10, 2, []int{5}},
		{10, 1, nil},
		{3, 8, []int{1, 2}},
		{0, 4, nil},
		{1, 4, nil},
	} {
		got := parallel.SplitPoints(tc.n, tc.chunks)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitPoints(%d, %d) = %v, want %v", tc.n, tc.chunks, got, tc.want)
		}
	}
}

func TestPoolBasics(t *testing.T) {
	p := parallel.NewPool(0) // clamps to 1
	done := make(chan int, 10)
	for i := 0; i < 10; i++ {
		i := i
		p.Submit(func() { done <- i })
	}
	p.Close()
	p.Close() // idempotent
	if len(done) != 10 {
		t.Fatalf("ran %d tasks, want 10", len(done))
	}
	if parallel.Shared() != parallel.Shared() {
		t.Fatal("Shared pool is not a singleton")
	}
}

// TestParallelDeterministicAcrossSchedules reruns one evaluation many
// times on a busy pool: the output must be bit-identical every time.
func TestParallelDeterministicAcrossSchedules(t *testing.T) {
	p := parallel.NewPool(8)
	defer p.Close()
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	ev, err := core.StacklessQL(an)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	events := encoding.Markup(gen.RandomTree(rng, []string{"a", "b", "c"}, 500))
	want := parMatches(p, ev, events, 8)
	for i := 0; i < 20; i++ {
		if got := parMatches(p, ev, events, 8); !matchesEqual(got, want) {
			t.Fatalf("run %d: nondeterministic output", i)
		}
	}
	if !matchesEqual(want, seqMatches(ev, events)) {
		t.Fatal("parallel diverges from sequential")
	}
}
