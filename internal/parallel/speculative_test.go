package parallel_test

import (
	"fmt"
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/obs"
	"stackless/internal/parallel"
	"stackless/internal/rex"
	"stackless/internal/stackeval"
	"stackless/internal/tree"
)

// Speculative chunking of the pushdown fallback (DESIGN.md §16): the
// stackeval machine is Chunkable under CutBoundedDepth, so the standard
// differential harness applies to it directly — sequential (per-event
// string Step) vs parallel at every worker count and every adversarial cut
// set, with the in-memory tree oracle as the external referee. SelectAt
// bypasses the viability gate, so the every-interior-position sweeps below
// always exercise the speculative summaries, not the sequential degrade.

func evOpen(l string) encoding.Event  { return encoding.Event{Kind: encoding.Open, Label: l} }
func evClose(l string) encoding.Event { return encoding.Event{Kind: encoding.Close, Label: l} }

// TestSpeculativePushdownMatchesSequentialAndOracle: random minimal DFAs —
// no HAR restriction, the pushdown realizes QL for every regular language —
// over random documents with foreign labels.
func TestSpeculativePushdownMatchesSequentialAndOracle(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	rng := rand.New(rand.NewSource(1601))
	alph := alphabet.Letters("ab")
	labels := []string{"a", "b", "z"}
	for i := 0; i < 12; i++ {
		d := dfa.Minimize(dfa.Random(rng, alph, 1+rng.Intn(5)))
		m := stackeval.QL(d)
		if m.Cut() != core.CutBoundedDepth {
			t.Fatalf("pushdown cut policy = %v, want CutBoundedDepth", m.Cut())
		}
		for j := 0; j < 4; j++ {
			tr := gen.RandomTree(rng, labels, 1+rng.Intn(40))
			events := encoding.Markup(tr)
			want := seqMatches(m, events)
			oracle := tree.SelectQL(d, tr)
			if len(want) != len(oracle) {
				t.Fatalf("machine %d doc %d: sequential %v, tree oracle %v", i, j, want, oracle)
			}
			for k := range oracle {
				if want[k].Pos != oracle[k] {
					t.Fatalf("machine %d doc %d: sequential %v, tree oracle %v", i, j, want, oracle)
				}
			}
			diffSelect(t, p, fmt.Sprintf("pushdown machine %d doc %d", i, j), m, events)
		}
	}
}

// TestSpeculativePushdownNamedQuery pins the headline case: an unrestricted
// query (suffix languages are not HAR) riding the speculative path over the
// full corpus, including deep chains and combs.
func TestSpeculativePushdownNamedQuery(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	d := rex.MustCompile("(a|b)*ab", alphabet.Letters("ab"))
	m := stackeval.QL(d)
	rng := rand.New(rand.NewSource(1619))
	docs := corpus("ab")
	// The genwork adversarial shapes: a bounded-depth stream with one depth
	// spike, and maximal alternating open/close runs (pool pop cascades).
	docs = append(docs,
		encoding.Markup(gen.DeepSpike(rng, []string{"a", "b"}, 30, 10)),
		encoding.Markup(gen.CloseRuns([]string{"a", "b"}, 8, 6)))
	for di, events := range docs {
		diffSelect(t, p, fmt.Sprintf("pushdown (a|b)*ab doc %d", di), m, events)
	}
}

// TestSpeculativeRecognizeELAL: the EL/AL wrappers over a pushdown inner
// compose speculative segments through SimulateSegmentGeneric; verdicts
// must match the sequential wrapper and the in-memory oracles at every
// worker count and adversarial cut set.
func TestSpeculativeRecognizeELAL(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	rng := rand.New(rand.NewSource(1607))
	alph := alphabet.Letters("ab")
	labels := []string{"a", "b", "z"}
	for i := 0; i < 6; i++ {
		d := dfa.Minimize(dfa.Random(rng, alph, 1+rng.Intn(4)))
		for name, rec := range map[string]struct {
			m      core.Evaluator
			oracle func(*dfa.DFA, *tree.Node) bool
		}{
			"EL": {stackeval.EL(d), tree.InEL},
			"AL": {stackeval.AL(d), tree.InAL},
		} {
			m, ok := rec.m.(core.Chunkable)
			if !ok {
				t.Fatalf("%s over pushdown inner is not chunkable", name)
			}
			for j := 0; j < 4; j++ {
				tr := gen.RandomTree(rng, labels, 1+rng.Intn(20))
				events := encoding.Markup(tr)
				want := rec.oracle(d, tr)
				seq, err := core.Recognize(m, encoding.NewSliceSource(events))
				if err != nil {
					t.Fatal(err)
				}
				if seq != want {
					t.Fatalf("%s machine %d doc %d: sequential %v, oracle %v", name, i, j, seq, want)
				}
				for _, w := range workerCounts {
					if got := parallel.Recognize(p, m, events, w); got != want {
						t.Fatalf("%s machine %d doc %d: %d chunks: %v, want %v", name, i, j, w, got, want)
					}
				}
				for _, cuts := range adversarialCuts(events) {
					if got := parallel.RecognizeAt(p, m, events, cuts); got != want {
						t.Fatalf("%s machine %d doc %d: cuts %v: %v, want %v", name, i, j, cuts, got, want)
					}
				}
			}
		}
	}
}

// wideDoc is a bounded-depth stream: one root with n two-deep subtrees —
// the shape speculation is for.
func wideDoc(n int) []encoding.Event {
	events := []encoding.Event{evOpen("a")}
	for i := 0; i < n; i++ {
		events = append(events, evOpen("a"), evOpen("b"), evClose("b"), evClose("a"))
	}
	return append(events, evClose("a"))
}

func TestMaxDepth(t *testing.T) {
	if got := parallel.MaxDepth(nil); got != 0 {
		t.Fatalf("MaxDepth(nil) = %d", got)
	}
	if got := parallel.MaxDepth(wideDoc(10)); got != 3 {
		t.Fatalf("MaxDepth(wide) = %d, want 3", got)
	}
	stray := []encoding.Event{evClose("a"), evClose("a"), evOpen("a")}
	if got := parallel.MaxDepth(stray); got != 1 {
		t.Fatalf("MaxDepth with stray closes = %d, want 1 (must not go negative)", got)
	}
}

// TestSpeculationViabilityGate: the chunk-count entry points fan a
// CutBoundedDepth machine out only on streams whose depth is small against
// the chunk size; the explicit-cut entry points bypass the gate (they are
// the adversarial harness). Observed through the collector's run counters.
func TestSpeculationViabilityGate(t *testing.T) {
	p := parallel.NewPool(4)
	defer p.Close()
	d := rex.MustCompile("(a|b)*ab", alphabet.Letters("ab"))
	m := stackeval.QL(d)

	wide := wideDoc(100) // 402 events, depth 3: 4·3·4 = 48 ≤ 402
	if !parallel.SpeculationViable(wide, 4) {
		t.Fatal("wide shallow stream reported non-viable")
	}
	c := &obs.Collector{}
	parallel.SelectObs(p, m, wide, 4, c, nil)
	if c.ParallelRuns.Load() != 1 || c.SeqFallbacks.Load() != 0 {
		t.Fatalf("wide stream did not fan out: parallel=%d seqfallbacks=%d", c.ParallelRuns.Load(), c.SeqFallbacks.Load())
	}
	if got := c.SpecChunks.Load(); got == 0 {
		t.Fatal("fanned-out speculative run recorded no SpecChunks")
	}

	rng := rand.New(rand.NewSource(1613))
	deep := encoding.Markup(gen.DeepChain(rng, []string{"a", "b"}, 40)) // depth ≈ events/2
	if parallel.SpeculationViable(deep, 4) {
		t.Fatal("deep chain reported viable")
	}
	c = &obs.Collector{}
	parallel.SelectObs(p, m, deep, 4, c, nil)
	if c.ParallelRuns.Load() != 0 || c.SeqFallbacks.Load() != 1 || c.SpecChunks.Load() != 0 {
		t.Fatalf("deep stream did not degrade: parallel=%d seqfallbacks=%d spec=%d",
			c.ParallelRuns.Load(), c.SeqFallbacks.Load(), c.SpecChunks.Load())
	}

	c = &obs.Collector{}
	parallel.SelectAtObs(p, m, deep, []int{len(deep) / 2}, c, nil)
	if c.ParallelRuns.Load() != 1 {
		t.Fatal("explicit cuts did not bypass the viability gate")
	}

	if parallel.SpeculationViable(wide, 1) {
		t.Fatal("one chunk reported viable")
	}
	if parallel.SpeculationViable(nil, 4) {
		t.Fatal("empty stream reported viable")
	}
}

// TestSpeculativeDeterministicAcrossSchedules: rerunning one speculative
// evaluation on a busy pool is bit-identical every time (the join is
// sequential left to right regardless of which fork finishes first).
func TestSpeculativeDeterministicAcrossSchedules(t *testing.T) {
	p := parallel.NewPool(8)
	defer p.Close()
	d := rex.MustCompile("(a|b)*ab", alphabet.Letters("ab"))
	m := stackeval.QL(d)
	events := wideDoc(500)
	want := parMatches(p, m, events, 8)
	if !matchesEqual(want, seqMatches(m, events)) {
		t.Fatal("speculative parallel diverges from sequential")
	}
	for i := 0; i < 20; i++ {
		if got := parMatches(p, m, events, 8); !matchesEqual(got, want) {
			t.Fatalf("run %d: nondeterministic output", i)
		}
	}
}
