package parallel

import (
	"reflect"
	"testing"

	"stackless/internal/core"
	"stackless/internal/encoding"
)

// Direct coverage for the CutBelowEntry path under the degenerate bound:
// every chunk a single event. Each open becomes a one-event segment
// simulated from every control state (the per-state SegmentExit array),
// and every close lands at or below its chunk's entry depth and so becomes
// a boundary piece replayed on the real configuration. The coded
// differential tests in core exercise this only through full documents;
// here the pieces, the exit arrays and the joined run are pinned one by
// one.

func open(l string) encoding.Event   { return encoding.Event{Kind: encoding.Open, Label: l} }
func close_(l string) encoding.Event { return encoding.Event{Kind: encoding.Close, Label: l} }

// belowEntryDocs: trees that drive Example 2.6 (some a-node with a
// b-descendant) through matches, restarts and register reloads.
func belowEntryDocs() [][]encoding.Event {
	flat := []encoding.Event{
		open("a"), open("c"), close_("c"), open("b"), close_("b"), close_("a"),
	}
	restart := []encoding.Event{
		open("c"),
		open("a"), open("c"), close_("c"), close_("a"), // minimal a-subtree without b
		open("a"), open("b"), close_("b"), close_("a"), // second a-subtree matches
		close_("c"),
	}
	deep := []encoding.Event{
		open("a"), open("a"), open("a"), open("b"),
		close_("b"), close_("a"), close_("a"), close_("a"),
	}
	return [][]encoding.Event{flat, restart, deep}
}

func example26Chunkable(t *testing.T) core.Chunkable {
	t.Helper()
	m, ok := core.Example26().Evaluator().(core.Chunkable)
	if !ok {
		t.Fatal("Example26 evaluator is not chunkable")
	}
	if m.Cut() != core.CutBelowEntry {
		t.Fatalf("Example26 cut policy %v, want CutBelowEntry", m.Cut())
	}
	return m
}

// TestBelowEntryPiecesSizeOneChunks pins the piece structure: within a
// one-event chunk, an open is a segment and a close is a boundary (its
// post-depth, -1 relative to the entry, is at or below the entry depth 0).
func TestBelowEntryPiecesSizeOneChunks(t *testing.T) {
	for di, events := range belowEntryDocs() {
		for i := range events {
			pieces := cutPieces(events, i, i+1, core.CutBelowEntry)
			if len(pieces) != 1 {
				t.Fatalf("doc %d event %d: %d pieces for a one-event chunk", di, i, len(pieces))
			}
			p := pieces[0]
			if p.lo != i || p.hi != i+1 {
				t.Fatalf("doc %d event %d: piece [%d,%d)", di, i, p.lo, p.hi)
			}
			wantSeg := events[i].Kind == encoding.Open
			if p.seg != wantSeg {
				t.Errorf("doc %d event %d (%s): seg=%v, want %v", di, i, events[i], p.seg, wantSeg)
			}
		}
	}
}

// TestBelowEntrySegmentExitArray summarizes each one-event open segment
// from every control state and checks the full exit array: one exit per
// state, each either poisoned (-1) or in-range, and equal to driving the
// segment protocol by hand from that state on a fresh fork.
func TestBelowEntrySegmentExitArray(t *testing.T) {
	m := example26Chunkable(t)
	n := m.ChunkStates()
	for di, events := range belowEntryDocs() {
		for i, e := range events {
			if e.Kind != encoding.Open {
				continue
			}
			pieces := []piece{{lo: i, hi: i + 1, seg: true}}
			summarize(m.Fork(), events, nil, pieces, false)
			exits := pieces[0].exits
			if len(exits) != n {
				t.Fatalf("doc %d event %d: %d exits for %d states", di, i, len(exits), n)
			}
			for q := 0; q < n; q++ {
				if exits[q].State < -1 || exits[q].State >= n {
					t.Fatalf("doc %d event %d state %d: exit state %d out of range", di, i, q, exits[q].State)
				}
				f := m.Fork()
				f.BeginSegment(q)
				f.Step(e)
				want := f.EndSegment()
				if !reflect.DeepEqual(exits[q], want) {
					t.Errorf("doc %d event %d state %d: exit %+v, want %+v", di, i, q, exits[q], want)
				}
			}
		}
	}
}

// TestBelowEntryEveryPositionCuts is the joined differential under size-1
// chunks: cutting at every interior position must reproduce the
// sequential match stream and final verdict exactly.
func TestBelowEntryEveryPositionCuts(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for di, events := range belowEntryDocs() {
		seq := example26Chunkable(t)
		var want []core.Match
		runSequential(seq, events, func(mt core.Match) { want = append(want, mt) })

		par := example26Chunkable(t)
		cuts := make([]int, 0, len(events)-1)
		for i := 1; i < len(events); i++ {
			cuts = append(cuts, i)
		}
		var got []core.Match
		par.Reset()
		run(p, par, events, cuts, nil, func(mt core.Match) { got = append(got, mt) })

		if !reflect.DeepEqual(got, want) {
			t.Errorf("doc %d: matches %v, want %v", di, got, want)
		}
		if par.JoinState() != seq.JoinState() {
			t.Errorf("doc %d: final state %d, want %d", di, par.JoinState(), seq.JoinState())
		}
	}
}
