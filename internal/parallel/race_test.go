package parallel_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"stackless"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/paperfigs"
	"stackless/internal/parallel"
	"stackless/internal/rex"
)

// Race coverage: many goroutines drive chunk-parallel evaluations through
// the one shared pool at once — concurrent MultiQuery calls, concurrent
// single-query calls, and raw engine calls over forks of one machine.
// go test -race ./internal/... (ci.sh tier 1) runs these with the race
// detector; the assertions also re-check determinism under contention.

func TestRaceConcurrentMultiQuery(t *testing.T) {
	labels := []string{"a", "b", "c"}
	q1 := stackless.MustCompileRegex("a.*b", labels)
	q2 := stackless.MustCompileRegex(".*a.*b", labels)
	q3 := stackless.MustCompileRegex(".*ab", labels) // stack-only inside the fan-out
	mq, err := stackless.NewMultiQuery(q1, q2, q3)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	docs := make([]string, 8)
	for i := range docs {
		docs[i] = encoding.XMLString(gen.RandomTree(rng, labels, 50+rng.Intn(200)))
	}
	wants := make([][]stackless.MultiMatch, len(docs))
	for i, doc := range docs {
		if _, err := mq.SelectXML(strings.NewReader(doc), stackless.Options{}, func(m stackless.MultiMatch) {
			wants[i] = append(wants[i], m)
		}); err != nil {
			t.Fatal(err)
		}
	}

	for _, tc := range []struct {
		name               string
		callers, perCaller int
	}{
		{"few callers many calls", 4, 12},
		{"many callers", 16, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc := tc
			var wg sync.WaitGroup
			errs := make(chan string, tc.callers)
			for c := 0; c < tc.callers; c++ {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < tc.perCaller; k++ {
						di := (c + k) % len(docs)
						var got []stackless.MultiMatch
						_, err := mq.SelectXML(strings.NewReader(docs[di]), stackless.Options{Workers: 4},
							func(m stackless.MultiMatch) { got = append(got, m) })
						if err != nil {
							errs <- err.Error()
							return
						}
						if len(got) != len(wants[di]) {
							errs <- "match count diverged under contention"
							return
						}
						for j := range got {
							if got[j] != wants[di][j] {
								errs <- "match order diverged under contention"
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		})
	}
}

func TestRaceSharedPoolForks(t *testing.T) {
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3cRegex, paperfigs.GammaABC()))
	ev, err := core.StacklessQL(an)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	events := encoding.Markup(gen.RandomTree(rng, []string{"a", "b", "c"}, 400))
	want := parallel.SelectPositions(parallel.Shared(), ev, events, 4)

	var wg sync.WaitGroup
	bad := make(chan string, 16)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := ev.Fork() // each goroutine joins on its own machine
			for k := 0; k < 5; k++ {
				got := parallel.SelectPositions(parallel.Shared(), m, events, 3+k)
				if len(got) != len(want) {
					bad <- "positions diverged under contention"
					return
				}
				for j := range got {
					if got[j] != want[j] {
						bad <- "positions diverged under contention"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(bad)
	for e := range bad {
		t.Fatal(e)
	}
}
