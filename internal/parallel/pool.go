// Package parallel evaluates stackless machines over chunked event streams
// on a worker pool. The stream is split into chunks, each chunk is
// simulated concurrently from every control state of the machine
// (internal/core's Chunkable contract), and the per-chunk summaries are
// composed left to right to reproduce the exact sequential run and match
// set — Theorem 3.1's bounded-configuration property is what makes the
// summaries finite. See DESIGN.md §8.
package parallel

import (
	"runtime"
	"sync"
)

// Pool is a fixed set of worker goroutines draining a task queue. Tasks
// must be leaves of the computation: a task never blocks waiting for
// another task, so a full queue cannot deadlock (orchestration — splitting,
// joining, merging — always stays on caller goroutines).
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	workers int

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with the given number of workers (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{tasks: make(chan func(), 4*workers), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Submit enqueues a task, blocking while the queue is full. Safe for
// concurrent use. Submitting to a closed pool panics (as does closing a
// channel mid-send); Close only after all submitters are done.
func (p *Pool) Submit(f func()) { p.tasks <- f }

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueLen returns the number of tasks currently waiting in the queue — a
// racy instantaneous gauge, suitable only for observability sampling.
func (p *Pool) QueueLen() int { return len(p.tasks) }

// Close stops accepting tasks and waits for in-flight ones to finish.
// Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool, sized to GOMAXPROCS and started on
// first use. It is never closed.
func Shared() *Pool {
	sharedOnce.Do(func() {
		sharedPool = NewPool(runtime.GOMAXPROCS(0))
	})
	return sharedPool
}
