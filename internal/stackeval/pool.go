package stackeval

// The stack of the pushdown machine is a singly-linked chain of pooled
// nodes rather than a growable slice. The design follows tree-sitter's
// stack.c: a fixed pool of nodes threaded through a free list so that the
// steady state never allocates, and a reference count per node so that a
// configuration snapshot is O(1) — retain the top link and the whole chain
// below it stays alive, shared structurally with the live machine.
//
// Reference-count invariants:
//
//   - node.refs counts *direct* references: the machine's top pointer,
//     every saved configuration's top pointer, and every node sitting
//     immediately above it in some chain. The chain below a node is kept
//     alive transitively (each node holds one reference on its `below`).
//   - A node with refs > 0 is never mutated. Pop on a shared node
//     (refs > 1) does not unlink it; it decrements the count and adds a
//     reference to `below`, leaving every snapshot chain intact.
//   - Pop on an exclusively-owned node (refs == 1) transfers the node's
//     reference on `below` to the caller — no count is touched — and the
//     node returns to the free list immediately.
//
// Nodes are addressed by index into a slice, not by pointer, so growing
// the pool (an append) never invalidates a chain.

// node is one pooled stack frame. `word` is the coded machine word saved
// under an Open (state code plus the accept bit, see stackeval.go);
// `below` is the index of the next frame down (-1 at the bottom), reused
// as the free-list link while the node is free.
type node struct {
	word  int32
	below int32
	refs  int32
}

// pool is a fixed-capacity node pool with a free list. reuse counts
// free-list hits, misses counts pushes that had to grow the pool; both
// are plain counters flushed to the obs collector between runs.
type pool struct {
	nodes  []node
	free   int32 // head of the free list, -1 when empty
	reuse  int64
	misses int64
}

// initialPoolCap is the number of nodes preallocated at machine
// construction: documents at most this deep never touch the allocator.
const initialPoolCap = 64

func newPool(capacity int) pool {
	p := pool{nodes: make([]node, 0, capacity), free: -1}
	for i := 0; i < capacity; i++ {
		p.nodes = append(p.nodes, node{below: p.free})
		p.free = int32(i)
	}
	return p
}

// retain adds one direct reference to the node at t (no-op at the bottom).
func (p *pool) retain(t int32) {
	if t >= 0 {
		p.nodes[t].refs++
	}
}

// release drops one direct reference from the chain starting at t,
// returning nodes whose count reaches zero to the free list. The cascade
// is iterative: freeing a node releases its reference on `below`, which
// may free that node in turn.
func (p *pool) release(t int32) {
	for t >= 0 {
		nd := &p.nodes[t]
		nd.refs--
		if nd.refs > 0 {
			return
		}
		next := nd.below
		nd.below = p.free
		p.free = t
		t = next
	}
}

// push allocates a node holding word on top of the chain at top and
// returns its index. The caller's reference on top moves to the new node;
// the caller owns one reference on the result.
func (p *pool) push(word, top int32) int32 {
	nf := p.free
	if nf >= 0 {
		p.free = p.nodes[nf].below
		p.nodes[nf] = node{word: word, below: top, refs: 1}
		p.reuse++
		return nf
	}
	return p.pushSlow(word, top)
}

//treelint:partial pool growth is O(high-water depth) appends, amortized to zero by the free list
func (p *pool) pushSlow(word, top int32) int32 {
	p.nodes = append(p.nodes, node{word: word, below: top, refs: 1})
	p.misses++
	return int32(len(p.nodes) - 1)
}

// pop removes one direct reference from the node at top and returns its
// word and the frame below it. The caller's reference moves to the
// returned index: on an exclusively-owned node ownership of the `below`
// reference transfers without touching a count, on a shared node the
// count splits (top loses one, below gains one).
func (p *pool) pop(top int32) (word, below int32) {
	nd := p.nodes[top]
	if nd.refs == 1 {
		p.nodes[top].below = p.free
		p.free = top
	} else {
		p.nodes[top].refs = nd.refs - 1
		if nd.below >= 0 {
			p.nodes[nd.below].refs++
		}
	}
	return nd.word, nd.below
}
