package stackeval

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/obs"
	"stackless/internal/parallel"
	"stackless/internal/rex"
	"stackless/internal/tree"
)

func codeAll(ev *Evaluator, events []encoding.Event) []encoding.CodedEvent {
	return encoding.CodeEvents(alphabet.NewCoder(ev.d.Alphabet), events, nil)
}

// chainWords returns the stack's frame words top to bottom.
func chainWords(ev *Evaluator) []int32 {
	var ws []int32
	for t := ev.top; t >= 0; t = ev.pool.nodes[t].below {
		ws = append(ws, ev.pool.nodes[t].word)
	}
	return ws
}

// TestEmptyStackCloseConvention pins the convention of the package doc: a
// Close on an empty stack leaves the word AND the depth unchanged, and the
// three stepping paths — string Step, StepBatch, SelectBatch — agree
// bit for bit on every event of a stream riddled with such closes.
// (SimulateSegmentCoded shares the convention relative to its segment
// entry; TestSimulateSegmentCodedMatchesGeneric covers it.)
func TestEmptyStackCloseConvention(t *testing.T) {
	d := rex.MustCompile("a(a|b)*", alphabet.Letters("ab"))
	events := []encoding.Event{
		close_("a"), // empty-stack close on a fresh machine
		open("a"), close_("a"),
		close_("a"), close_("b"), // two more, one with a foreign label
		open("a"), open("z"), close_("z"), close_("z"),
		close_("b"), // empty again after the document drained
		open("b"),
	}
	str := QL(d)
	bat := QL(d)
	sel := QL(d)
	str.Reset()
	bat.Reset()
	sel.Reset()
	coded := codeAll(str, events)
	var hits []int32
	emptyCloses := 0
	for i, e := range events {
		wasEmpty := e.Kind == encoding.Close && str.top < 0
		prevWord, prevDepth := str.word, str.depth
		str.Step(e)
		bat.StepBatch(coded[i : i+1])
		hits = sel.SelectBatch(coded[i:i+1], hits[:0])
		if wasEmpty {
			emptyCloses++
			if str.word != prevWord || str.depth != prevDepth {
				t.Fatalf("event %d: empty-stack close changed the machine: word %d->%d depth %d->%d",
					i, prevWord, str.word, prevDepth, str.depth)
			}
		}
		if bat.word != str.word || bat.depth != str.depth {
			t.Fatalf("event %d: StepBatch word/depth %d/%d, Step %d/%d",
				i, bat.word, bat.depth, str.word, str.depth)
		}
		if sel.word != str.word || sel.depth != str.depth {
			t.Fatalf("event %d: SelectBatch word/depth %d/%d, Step %d/%d",
				i, sel.word, sel.depth, str.word, str.depth)
		}
		wantHit := e.Kind == encoding.Open && str.Accepting()
		if gotHit := len(hits) == 1; gotHit != wantHit {
			t.Fatalf("event %d: SelectBatch hit %v, Step accepting %v", i, gotHit, wantHit)
		}
	}
	if emptyCloses != 4 {
		t.Fatalf("stream exercised %d empty-stack closes, want 4", emptyCloses)
	}
}

// TestBatchKernelsMatchStepRandom is the whole-stream differential: random
// documents with foreign labels, made unbalanced with stray closes on both
// ends, batch-stepped in one call vs stepped per event. Final word, depth
// and the full stack content must agree, and SelectBatch's hit list must
// be exactly the accepting Opens of the per-event trace.
func TestBatchKernelsMatchStepRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	alph := alphabet.Letters("ab")
	labels := []string{"a", "b", "z"}
	for i := 0; i < 60; i++ {
		d := dfa.Minimize(dfa.Random(rng, alph, 1+rng.Intn(6)))
		ev := QL(d)
		for j := 0; j < 10; j++ {
			events := encoding.Markup(randomTree(rng, labels, 1+rng.Intn(30)))
			for k := rng.Intn(3); k > 0; k-- {
				events = append([]encoding.Event{close_("a")}, events...)
			}
			for k := rng.Intn(3); k > 0; k-- {
				events = append(events, close_("b"))
			}
			coded := codeAll(ev, events)

			str := QL(d)
			str.Reset()
			var wantHits []int32
			for idx, e := range events {
				str.Step(e)
				if e.Kind == encoding.Open && str.Accepting() {
					wantHits = append(wantHits, int32(idx))
				}
			}

			ev.Reset()
			ev.StepBatch(coded)
			if ev.word != str.word || ev.depth != str.depth {
				t.Fatalf("dfa %d doc %d: StepBatch word/depth %d/%d, Step %d/%d",
					i, j, ev.word, ev.depth, str.word, str.depth)
			}
			got, want := chainWords(ev), chainWords(str)
			if len(got) != len(want) {
				t.Fatalf("dfa %d doc %d: stack %v vs %v", i, j, got, want)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("dfa %d doc %d: stack %v vs %v", i, j, got, want)
				}
			}

			ev.Reset()
			hits := ev.SelectBatch(coded, nil)
			if ev.word != str.word || ev.depth != str.depth {
				t.Fatalf("dfa %d doc %d: SelectBatch word/depth %d/%d, Step %d/%d",
					i, j, ev.word, ev.depth, str.word, str.depth)
			}
			if len(hits) != len(wantHits) {
				t.Fatalf("dfa %d doc %d: hits %v, want %v", i, j, hits, wantHits)
			}
			for k := range wantHits {
				if hits[k] != wantHits[k] {
					t.Fatalf("dfa %d doc %d: hits %v, want %v", i, j, hits, wantHits)
				}
			}
		}
	}
}

// materialFrames normalizes a segment exit's register payload for
// comparison: a nil payload is the closed-form dead entry — delta copies
// of the dead word (and a live exit at net depth 0 is the empty slice).
func materialFrames(x core.SegmentExit, delta int, deadWord int32) []int32 {
	if frames, ok := x.Regs.([]int32); ok && frames != nil {
		return frames
	}
	out := make([]int32, delta)
	for i := range out {
		out[i] = deadWord
	}
	return out
}

// TestSimulateSegmentCodedMatchesGeneric: the coded all-states kernel vs
// the interface-driven per-state fallback, on every prefix of random
// documents (prefixes of a balanced stream never close below the segment
// entry, which is the CutBoundedDepth discipline) — exit states, frame
// payloads, and candidate sets with their entry-state masks. Segments with
// leading below-entry closes are compared too (exits only — candidates are
// out of contract off-discipline), pinning the shared no-op convention.
func TestSimulateSegmentCodedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	alph := alphabet.Letters("ab")
	labels := []string{"a", "b", "z"}
	for i := 0; i < 25; i++ {
		d := dfa.Minimize(dfa.Random(rng, alph, 1+rng.Intn(5)))
		ev := QL(d)
		deadWord := ev.words[ev.n]
		events := encoding.Markup(randomTree(rng, labels, 3+rng.Intn(25)))
		coded := codeAll(ev, events)
		for cut := 0; cut <= len(events); cut++ {
			seg, codedSeg := events[:cut], coded[:cut]
			delta := 0
			for _, e := range seg {
				if e.Kind == encoding.Open {
					delta++
				} else if delta > 0 {
					delta--
				}
			}
			candsC := core.NewCandSet(ev.ChunkStates())
			exitsC := ev.SimulateSegmentCoded(codedSeg, candsC)
			candsG := core.NewCandSet(ev.ChunkStates())
			exitsG := core.SimulateSegmentGeneric(ev.Fork(), seg, candsG)
			if len(exitsC) != ev.ChunkStates() || len(exitsG) != ev.ChunkStates() {
				t.Fatalf("dfa %d cut %d: exit counts %d/%d, want %d", i, cut, len(exitsC), len(exitsG), ev.ChunkStates())
			}
			for q := range exitsC {
				if exitsC[q].State != exitsG[q].State {
					t.Fatalf("dfa %d cut %d entry %d: exit state %d, generic %d", i, cut, q, exitsC[q].State, exitsG[q].State)
				}
				fc := materialFrames(exitsC[q], delta, deadWord)
				fg := materialFrames(exitsG[q], delta, deadWord)
				if len(fc) != len(fg) {
					t.Fatalf("dfa %d cut %d entry %d: frames %v vs %v", i, cut, q, fc, fg)
				}
				for r := range fg {
					if fc[r] != fg[r] {
						t.Fatalf("dfa %d cut %d entry %d: frames %v vs %v", i, cut, q, fc, fg)
					}
				}
			}
			if len(candsC.Cands) != len(candsG.Cands) {
				t.Fatalf("dfa %d cut %d: %d candidates, generic %d", i, cut, len(candsC.Cands), len(candsG.Cands))
			}
			for ci := range candsC.Cands {
				if candsC.Cands[ci] != candsG.Cands[ci] {
					t.Fatalf("dfa %d cut %d cand %d: %+v vs %+v", i, cut, ci, candsC.Cands[ci], candsG.Cands[ci])
				}
				for q := 0; q < ev.ChunkStates(); q++ {
					if candsC.Has(ci, q) != candsG.Has(ci, q) {
						t.Fatalf("dfa %d cut %d cand %d entry %d: mask %v vs %v",
							i, cut, ci, q, candsC.Has(ci, q), candsG.Has(ci, q))
					}
				}
			}
		}
		// Off-discipline: a leading below-entry close is the segment-relative
		// empty-stack no-op in both kernels.
		seg := append([]encoding.Event{close_("a"), close_("b")}, events...)
		codedSeg := codeAll(ev, seg)
		exitsC := ev.SimulateSegmentCoded(codedSeg, nil)
		exitsG := core.SimulateSegmentGeneric(ev.Fork(), seg, nil)
		for q := range exitsC {
			if exitsC[q].State != exitsG[q].State {
				t.Fatalf("dfa %d off-discipline entry %d: exit state %d, generic %d", i, q, exitsC[q].State, exitsG[q].State)
			}
		}
	}
}

// TestChunkCompositionAgainstOracle drives the speculative summaries
// through the real chunk-parallel engine at explicit adversarial cuts —
// SelectAt bypasses the viability gate — and checks the selected positions
// against the in-memory oracle.
func TestChunkCompositionAgainstOracle(t *testing.T) {
	p := parallel.NewPool(4)
	rng := rand.New(rand.NewSource(97))
	alph := alphabet.Letters("ab")
	labels := []string{"a", "b", "z"}
	for i := 0; i < 40; i++ {
		d := dfa.Minimize(dfa.Random(rng, alph, 1+rng.Intn(5)))
		ev := QL(d)
		tr := randomTree(rng, labels, 2+rng.Intn(40))
		events := encoding.Markup(tr)
		want := tree.SelectQL(d, tr)
		n := len(events)
		for _, cuts := range [][]int{
			{n / 2},
			{1, n - 1},
			{n / 3, 2 * n / 3},
			{1, 2, 3},
		} {
			var got []int
			parallel.SelectAt(p, ev, events, cuts, func(m core.Match) { got = append(got, m.Pos) })
			if len(got) != len(want) {
				t.Fatalf("dfa %d doc %d cuts %v: %v, want %v", i, i, cuts, got, want)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("dfa %d doc %d cuts %v: %v, want %v", i, i, cuts, got, want)
				}
			}
		}
	}
}

// TestFlushObsPoolCounters: the batched pool counters reach the collector
// exactly once per instrumented run and are zeroed by the flush; the
// uninstrumented machine accumulates them locally for PoolStats.
func TestFlushObsPoolCounters(t *testing.T) {
	d := rex.MustCompile("a*", alphabet.Letters("a"))
	ev := QL(d)
	c := &obs.Collector{}
	ev.SetObs(c)
	events := encoding.Markup(tree.Chain([]string{"a", "a", "a"}))
	if _, err := core.SelectCodedObs(ev, c, encoding.NewSliceSource(events), nil); err != nil {
		t.Fatal(err)
	}
	if got := c.StackPoolReuse.Load(); got != 3 {
		t.Fatalf("StackPoolReuse = %d, want 3 (one per open)", got)
	}
	if reuse, misses := ev.PoolStats(); reuse != 0 || misses != 0 {
		t.Fatalf("pool counters not zeroed by flush: %d/%d", reuse, misses)
	}
	ev.FlushObs() // idempotent on a drained machine
	if got := c.StackPoolReuse.Load(); got != 3 {
		t.Fatalf("double flush double-counted: %d", got)
	}
}
