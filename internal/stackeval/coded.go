package stackeval

import (
	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/encoding"
)

// Batch kernels (DESIGN.md §11/§16). The pushdown's batch step is the
// fused-table form of Step over the pooled stack: an Open pushes the
// current word (free-list pop on the fast path, a //treelint:partial grow
// on the cold one) and takes one table load; a Close pops the saved word
// back (free-list return when the node is exclusively owned, a count
// split when a snapshot shares it). There is no aliveness branch and no
// poison early-exit: dead is row n of the table, absorbing under opens
// and popped back over like any other frame. Index guards follow the BCE
// shape of the other plain kernels (uint conversion, guarded fallback to
// the dead word); on a table tablecheck proved well formed they never
// fail.

// CodeAlphabet implements core.BatchEvaluator.
func (ev *Evaluator) CodeAlphabet() *alphabet.Alphabet { return ev.d.Alphabet }

// StepBatch implements core.BatchEvaluator. Effects per event are
// bit-identical to Step's, including the empty-stack close no-op (the
// depth does not move either). The free-list head, pool counters and the
// machine configuration are batched in locals and stored back once.
//
//treelint:plain
func (ev *Evaluator) StepBatch(batch []encoding.CodedEvent) {
	tab := ev.ctab
	kw := ev.kw
	deadWord := ev.dead
	word, top, depth := ev.word, ev.top, ev.depth
	nodes := ev.pool.nodes
	free := ev.pool.free
	reuse := ev.pool.reuse
	for _, e := range batch {
		if e.Kind == encoding.Open {
			if j := uint(free); j < uint(len(nodes)) {
				nf := free
				free = nodes[j].below
				nodes[j] = node{word: word, below: top, refs: 1}
				reuse++
				top = nf
			} else {
				top = ev.pool.pushSlow(word, top)
				nodes = ev.pool.nodes
			}
			depth++
			if j := uint(int32(word)&StateMask)*uint(kw) + uint(int32(e.Sym)); j < uint(len(tab)) {
				word = tab[j]
			} else {
				word = deadWord
			}
			continue
		}
		if top < 0 {
			continue // empty-stack close: no-op by convention
		}
		if j := uint(top); j < uint(len(nodes)) {
			nd := nodes[j]
			if nd.refs == 1 {
				nodes[j].below = free
				free = top
			} else {
				nodes[j].refs = nd.refs - 1
				if b := uint(nd.below); b < uint(len(nodes)) {
					nodes[b].refs++
				}
			}
			word = nd.word
			top = nd.below
			depth--
		}
	}
	ev.word, ev.top, ev.depth = word, top, depth
	ev.pool.free, ev.pool.reuse = free, reuse
}

// SelectBatch implements core.BatchEvaluator: StepBatch plus the
// pre-selection acceptance test after each Open — a mask test on the word
// just loaded, since the accept flag is folded into every table entry.
//
//treelint:plain
func (ev *Evaluator) SelectBatch(batch []encoding.CodedEvent, hits []int32) []int32 {
	tab := ev.ctab
	kw := ev.kw
	deadWord := ev.dead
	word, top, depth := ev.word, ev.top, ev.depth
	nodes := ev.pool.nodes
	free := ev.pool.free
	reuse := ev.pool.reuse
	for i, e := range batch {
		if e.Kind == encoding.Open {
			if j := uint(free); j < uint(len(nodes)) {
				nf := free
				free = nodes[j].below
				nodes[j] = node{word: word, below: top, refs: 1}
				reuse++
				top = nf
			} else {
				top = ev.pool.pushSlow(word, top)
				nodes = ev.pool.nodes
			}
			depth++
			if j := uint(int32(word)&StateMask)*uint(kw) + uint(int32(e.Sym)); j < uint(len(tab)) {
				word = tab[j]
			} else {
				word = deadWord
			}
			if word&AccBit != 0 {
				hits = append(hits, int32(i))
			}
			continue
		}
		if top < 0 {
			continue // empty-stack close: no-op by convention
		}
		if j := uint(top); j < uint(len(nodes)) {
			nd := nodes[j]
			if nd.refs == 1 {
				nodes[j].below = free
				free = top
			} else {
				nodes[j].refs = nd.refs - 1
				if b := uint(nd.below); b < uint(len(nodes)) {
					nodes[b].refs++
				}
			}
			word = nd.word
			top = nd.below
			depth--
		}
	}
	ev.word, ev.top, ev.depth = word, top, depth
	ev.pool.free, ev.pool.reuse = free, reuse
	return hits
}

// SimulateSegmentCoded implements core.CodedSegmentKernel: the all-states
// segment simulation of the chunk-parallel engine. The n+1 entry words
// (every DFA state plus the dead row) run in lockstep over a shared flat
// frame array — under CutBoundedDepth boundaries every close inside a
// segment pops a frame pushed in the same segment (DESIGN.md §16), so the
// frames surviving at segment end are exactly the segment's net depth
// gain, and they compose by pushing them onto the joined machine's stack
// (ApplySegment). The dead entry needs no simulation: dead absorbs under
// opens and every frame it pushes is dead, so its exit is closed-form.
// Unlike the stackless kernels no run ever dies — an unknown open drives
// a run into the dead row, and a later boundary pop can revive it — so
// exits never report State -1.
//
//treelint:partial per-segment all-states scratch and frame matrix, O(states·depth) once per segment
func (ev *Evaluator) SimulateSegmentCoded(seg []encoding.CodedEvent, cands *core.CandSet) []core.SegmentExit {
	n := ev.n
	kw := ev.kw
	tab := ev.ctab
	deadWord := ev.words[n]
	st := make([]int32, n)
	for i := range st {
		st[i] = ev.words[i]
	}
	// fr is the shared frame matrix: row r (n words) holds what each run
	// pushed at relative depth r+1. A close at relative depth d pops row
	// d-1 back into every run at once.
	var fr []int32
	var opens, depth int32
	for idx := 0; idx < len(seg); idx++ {
		e := seg[idx]
		if e.Kind == encoding.Open {
			o := opens
			opens++
			depth++
			fr = append(fr, st...)
			var mask []uint64
			for i := range st {
				w := deadWord
				if j := uint(st[i]&StateMask)*uint(kw) + uint(int32(e.Sym)); j < uint(len(tab)) {
					w = tab[j]
				}
				st[i] = w
				if cands != nil && w&AccBit != 0 {
					if mask == nil {
						mask = cands.Add(int32(idx), o, depth)
					}
					if wd := uint(i) / 64; wd < uint(len(mask)) {
						mask[wd] |= 1 << (uint(i) % 64)
					}
				}
			}
			continue
		}
		if depth == 0 {
			// A close below the segment entry depth cannot occur under the
			// CutBoundedDepth boundaries (DESIGN.md §16); defensively it is
			// Step's empty-stack no-op — words and depth both unchanged.
			continue
		}
		depth--
		if base := int(depth) * n; base >= 0 && base <= len(fr)-n {
			copy(st, fr[base:base+n])
			fr = fr[:base]
		}
	}
	exits := make([]core.SegmentExit, n+1)
	for i := 0; i < n; i++ {
		var frames []int32
		if depth > 0 {
			frames = make([]int32, depth)
			for r := 0; r < int(depth); r++ {
				frames[r] = fr[r*n+i]
			}
		}
		exits[i] = core.SegmentExit{State: int(st[i] & StateMask), Regs: frames}
	}
	exits[n] = core.SegmentExit{State: n}
	return exits
}
