package stackeval

import (
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/rex"
)

func open(l string) encoding.Event   { return encoding.Event{Kind: encoding.Open, Label: l} }
func close_(l string) encoding.Event { return encoding.Event{Kind: encoding.Close, Label: l} }

// TestPoolSteadyStateNeverGrows: documents no deeper than the preallocated
// capacity never touch the allocator — every push is a free-list hit.
func TestPoolSteadyStateNeverGrows(t *testing.T) {
	d := rex.MustCompile("a*", alphabet.Letters("a"))
	ev := QL(d)
	ev.Reset()
	if got := ev.PoolCap(); got != initialPoolCap {
		t.Fatalf("initial pool cap = %d, want %d", got, initialPoolCap)
	}
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < initialPoolCap; i++ {
			ev.Step(open("a"))
		}
		for i := 0; i < initialPoolCap; i++ {
			ev.Step(close_("a"))
		}
	}
	reuse, misses := ev.PoolStats()
	if misses != 0 {
		t.Fatalf("pool grew %d times on a depth-%d stream", misses, initialPoolCap)
	}
	if want := int64(50 * initialPoolCap); reuse != want {
		t.Fatalf("reuse = %d, want %d", reuse, want)
	}
	if got := ev.PoolCap(); got != initialPoolCap {
		t.Fatalf("pool cap after steady state = %d, want %d", got, initialPoolCap)
	}
}

// TestPoolGrowsOnceToHighWater: a deeper document grows the pool to its
// high-water mark once; replaying it reuses every node.
func TestPoolGrowsOnceToHighWater(t *testing.T) {
	d := rex.MustCompile("a*", alphabet.Letters("a"))
	ev := QL(d)
	deep := 3 * initialPoolCap
	run := func() {
		ev.Reset()
		for i := 0; i < deep; i++ {
			ev.Step(open("a"))
		}
		for i := 0; i < deep; i++ {
			ev.Step(close_("a"))
		}
	}
	run()
	_, misses := ev.PoolStats()
	if want := int64(deep - initialPoolCap); misses != want {
		t.Fatalf("first run misses = %d, want %d", misses, want)
	}
	capAfter := ev.PoolCap()
	run() // Reset zeroes the counters, so this measures the second run alone
	reuse, misses := ev.PoolStats()
	if misses != 0 || reuse != int64(deep) {
		t.Fatalf("second run: reuse %d misses %d, want %d/0", reuse, misses, deep)
	}
	if got := ev.PoolCap(); got != capAfter {
		t.Fatalf("pool kept growing: %d -> %d", capAfter, got)
	}
}

// TestSnapshotSharingAndImmutability: a snapshot's chain survives the
// machine popping past it and running on arbitrarily — the ref-counted
// nodes are never mutated while shared — and restoring replays exactly.
func TestSnapshotSharingAndImmutability(t *testing.T) {
	d := rex.MustCompile("ab*", alphabet.Letters("ab"))
	ev := QL(d)
	ev.Reset()
	ev.Step(open("a"))
	ev.Step(open("b"))
	ev.Step(open("b"))
	cfg := ev.SaveConfig()
	key := cfg.Key()
	acc := ev.Accepting()

	// Pop past the snapshot and push a different spine over the freed
	// depths; the snapshot must be unaffected.
	ev.Step(close_("b"))
	ev.Step(close_("b"))
	ev.Step(open("z"))
	ev.Step(open("z"))
	ev.Step(open("z"))
	if got := cfg.Key(); got != key {
		t.Fatalf("snapshot key changed while machine ran: %q -> %q", key, got)
	}
	ev.RestoreConfig(cfg)
	if ev.Accepting() != acc || ev.StackDepth() != 3 || cfg.Key() != key {
		t.Fatalf("restore mismatch: acc=%v depth=%d key=%q want acc=%v depth=3 key=%q",
			ev.Accepting(), ev.StackDepth(), cfg.Key(), acc, key)
	}
	// The restored machine continues exactly like the original would have.
	ev.Step(close_("b"))
	ev.Step(close_("b"))
	ev.Step(close_("a"))
	if ev.StackDepth() != 0 {
		t.Fatalf("depth after full unwind = %d, want 0", ev.StackDepth())
	}
}

// TestSnapshotRestoreAcrossDivergence saves at every prefix of a stream,
// then for each snapshot restores and replays the suffix, comparing the
// final acceptance with an untouched reference machine.
func TestSnapshotRestoreAcrossDivergence(t *testing.T) {
	d := rex.MustCompile("a(a|b)*b", alphabet.Letters("ab"))
	events := []encoding.Event{
		open("a"), open("b"), close_("b"), open("z"), open("b"), close_("b"),
		close_("z"), open("b"), close_("b"), close_("a"),
	}
	ev := QL(d)
	ev.Reset()
	configs := make([]core.SavedConfig, 0, len(events)+1)
	configs = append(configs, ev.SaveConfig())
	for _, e := range events {
		ev.Step(e)
		configs = append(configs, ev.SaveConfig())
	}
	want := make([]bool, 0, len(events)+1)
	ref := QL(d)
	ref.Reset()
	want = append(want, ref.Accepting())
	for _, e := range events {
		ref.Step(e)
		want = append(want, ref.Accepting())
	}
	for i, cfg := range configs {
		ev.RestoreConfig(cfg)
		if ev.Accepting() != want[i] {
			t.Fatalf("restore %d: accepting %v, want %v", i, ev.Accepting(), want[i])
		}
		for j := i; j < len(events); j++ {
			ev.Step(events[j])
			if ev.Accepting() != want[j+1] {
				t.Fatalf("restore %d replay %d: accepting %v, want %v", i, j, ev.Accepting(), want[j+1])
			}
		}
	}
}

// TestParkedConfig: dead word over an empty stack is absorbing; a dead
// word over frames is not (a close revives the path below).
func TestParkedConfig(t *testing.T) {
	d := rex.MustCompile("a*", alphabet.Letters("a"))
	ev := QL(d)
	ev.Reset()
	if ev.SaveConfig().Parked() {
		t.Fatal("start config reported parked")
	}
	ev.Step(open("z")) // unknown at depth 1: dead, but revivable
	if ev.SaveConfig().Parked() {
		t.Fatal("dead-over-frames config reported parked")
	}
	ev.Step(close_("z"))
	if ev.SaveConfig().Parked() {
		t.Fatal("revived config reported parked")
	}
	// Drive into dead at depth 0: close the root as unknown... not
	// possible — instead reopen unknown and close to return alive, then
	// verify the truly parked shape via BeginSegment on the dead row.
	ev.BeginSegment(ev.n)
	if !ev.SaveConfig().Parked() {
		t.Fatal("dead-over-empty config not reported parked")
	}
}
