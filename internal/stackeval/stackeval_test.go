package stackeval

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/rex"
	"stackless/internal/tree"
)

func randomTree(rng *rand.Rand, labels []string, budget int) *tree.Node {
	n := tree.New(labels[rng.Intn(len(labels))])
	budget--
	for budget > 0 && rng.Intn(3) != 0 {
		sub := 1 + rng.Intn(budget)
		n.Children = append(n.Children, randomTree(rng, labels, sub))
		budget -= sub
	}
	return n
}

// TestStackQLAgainstOracle validates the baseline itself against the
// in-memory oracle, for arbitrary regular languages and both encodings.
func TestStackQLAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	alph := alphabet.Letters("ab")
	for i := 0; i < 150; i++ {
		d := dfa.Minimize(dfa.Random(rng, alph, 1+rng.Intn(6)))
		ev := QL(d)
		for j := 0; j < 20; j++ {
			tr := randomTree(rng, []string{"a", "b"}, 1+rng.Intn(20))
			want := tree.SelectQL(d, tr)
			got, err := core.SelectPositions(ev, encoding.NewSliceSource(encoding.Markup(tr)))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("markup: %v vs %v on %s", got, want, tr)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("markup: %v vs %v on %s", got, want, tr)
				}
			}
			// Term encoding: the stack does not need closing labels.
			gotTerm, err := core.SelectPositions(ev, encoding.NewSliceSource(encoding.Term(tr)))
			if err != nil {
				t.Fatal(err)
			}
			if len(gotTerm) != len(want) {
				t.Fatalf("term: %v vs %v on %s", gotTerm, want, tr)
			}
		}
	}
}

func TestStackELALAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	d := rex.MustCompile("a(a|b)*b", alphabet.Letters("ab"))
	el := EL(d)
	al := AL(d)
	for i := 0; i < 400; i++ {
		tr := randomTree(rng, []string{"a", "b"}, 1+rng.Intn(20))
		ev := encoding.NewSliceSource(encoding.Markup(tr))
		gotEL, err := core.Recognize(el, ev)
		if err != nil {
			t.Fatal(err)
		}
		if want := tree.InEL(d, tr); gotEL != want {
			t.Fatalf("EL(%s) = %v, want %v", tr, gotEL, want)
		}
		gotAL, err := core.Recognize(al, encoding.NewSliceSource(encoding.Markup(tr)))
		if err != nil {
			t.Fatal(err)
		}
		if want := tree.InAL(d, tr); gotAL != want {
			t.Fatalf("AL(%s) = %v, want %v", tr, gotAL, want)
		}
	}
}

// TestForeignLabelsNeverSelect: labels outside the alphabet kill the whole
// path (and any path through them), matching the oracle convention.
func TestForeignLabelsNeverSelect(t *testing.T) {
	d := rex.MustCompile("a*", alphabet.Letters("a"))
	ev := QL(d)
	tr := tree.MustParse("a(z(a),a)")
	got, err := core.SelectPositions(ev, encoding.NewSliceSource(encoding.Markup(tr)))
	if err != nil {
		t.Fatal(err)
	}
	want := tree.SelectQL(d, tr) // selects positions 0 and 3 only
	if len(got) != len(want) {
		t.Fatalf("foreign labels: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("foreign labels: got %v, want %v", got, want)
		}
	}
}

func TestStackDepthTracksDocument(t *testing.T) {
	d := rex.MustCompile("a*", alphabet.Letters("a"))
	ev := QL(d)
	ev.Reset()
	chain := tree.Chain([]string{"a", "a", "a", "a"})
	maxDepth := 0
	for _, e := range encoding.Markup(chain) {
		ev.Step(e)
		if ev.StackDepth() > maxDepth {
			maxDepth = ev.StackDepth()
		}
	}
	if maxDepth != 4 {
		t.Errorf("max stack depth = %d, want 4", maxDepth)
	}
	if ev.StackDepth() != 0 {
		t.Errorf("stack not drained: %d", ev.StackDepth())
	}
}

func TestUnbalancedCloseIsIgnoredGracefully(t *testing.T) {
	d := rex.MustCompile("a", alphabet.Letters("a"))
	ev := QL(d)
	ev.Reset()
	ev.Step(encoding.Event{Kind: encoding.Close, Label: "a"})
	// No panic; evaluator remains usable.
	ev.Step(encoding.Event{Kind: encoding.Open, Label: "a"})
	if !ev.Accepting() {
		t.Error("evaluator broken after stray close")
	}
}
