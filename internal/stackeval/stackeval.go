// Package stackeval implements the classical stack-based (pushdown)
// streaming evaluation that the paper's stackless model competes with: the
// evaluator pushes the simulated DFA state at every opening tag and pops at
// every closing tag, so it realizes QL — and recognizes EL and AL — for
// *every* regular language, at the cost of Θ(depth) memory.
//
// These evaluators are the baselines of every benchmark and the reference
// implementation for the streaming tests (they are themselves validated
// against the in-memory oracles of internal/tree).
package stackeval

import (
	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/obs"
)

// QL returns a stack-based evaluator pre-selecting the nodes of QL.
// It works for every regular language and both encodings (the closing tag's
// label, when present, is not needed: the stack remembers everything).
func QL(d *dfa.DFA) *Evaluator {
	return &Evaluator{d: d, res: alphabet.NewResolver(d.Alphabet)}
}

// Evaluator is the explicit-stack machine. It implements core.Evaluator.
type Evaluator struct {
	d   *dfa.DFA
	res *alphabet.Resolver
	// stack holds the DFA state before each currently-open element;
	// alive[i] mirrors whether the path so far stayed inside the alphabet.
	stack []int32
	alive []bool
	state int
	ok    bool
	// obs, when non-nil, receives the stack-depth histogram — the Θ(depth)
	// working state that the stackless machines avoid. Nil costs one
	// branch per push.
	obs *obs.Collector
}

var _ core.Evaluator = (*Evaluator)(nil)

// SetObs implements core.Instrumented.
func (ev *Evaluator) SetObs(c *obs.Collector) { ev.obs = c }

// Reset implements core.Evaluator.
func (ev *Evaluator) Reset() {
	ev.stack = ev.stack[:0]
	ev.alive = ev.alive[:0]
	ev.state = ev.d.Start
	ev.ok = true
}

// Step implements core.Evaluator.
func (ev *Evaluator) Step(e encoding.Event) {
	if e.Kind == encoding.Open {
		ev.stack = append(ev.stack, int32(ev.state))
		ev.alive = append(ev.alive, ev.ok)
		if ev.obs != nil {
			ev.obs.StackDepth.Observe(len(ev.stack))
		}
		if ev.ok {
			if sym, ok := ev.res.ID(e.Label); ok {
				ev.state = ev.d.Delta[ev.state][sym]
			} else {
				ev.ok = false
			}
		}
		return
	}
	if n := len(ev.stack); n > 0 {
		ev.state = int(ev.stack[n-1])
		ev.ok = ev.alive[n-1]
		ev.stack = ev.stack[:n-1]
		ev.alive = ev.alive[:n-1]
	}
}

// Accepting implements core.Evaluator.
func (ev *Evaluator) Accepting() bool { return ev.ok && ev.d.Accept[ev.state] }

// StackDepth returns the current stack depth (for memory accounting in
// benchmarks).
func (ev *Evaluator) StackDepth() int { return len(ev.stack) }

// EL returns a stack-based recognizer of EL (some branch labelled in L).
func EL(d *dfa.DFA) core.Evaluator { return core.ELFromQL(QL(d)) }

// AL returns a stack-based recognizer of AL (every branch labelled in L).
func AL(d *dfa.DFA) core.Evaluator { return core.ALFromQL(QL(d)) }
