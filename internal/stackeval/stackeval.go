// Package stackeval implements the classical stack-based (pushdown)
// streaming evaluation that the paper's stackless model competes with: the
// evaluator pushes the simulated DFA state at every opening tag and pops at
// every closing tag, so it realizes QL — and recognizes EL and AL — for
// *every* regular language, at the cost of Θ(depth) memory.
//
// These evaluators are the baselines of every benchmark and the reference
// implementation for the streaming tests (they are themselves validated
// against the in-memory oracles of internal/tree) — but they are no longer
// slow baselines: the machine is compiled to the same flat []int32 table
// layout as the stackless family (DESIGN.md §11/§16), the stack lives in a
// pooled, ref-counted node chain (pool.go), and batch kernels implement
// core.BatchEvaluator so unrestricted queries ride the coded pipeline.
//
// # The empty-stack close convention
//
// A Close event with an empty stack (an unbalanced document, or a chunk
// whose first event closes an element opened before the chunk) is a
// no-op: the state word and the depth are unchanged, no frame is popped.
// This convention is shared bit-for-bit by Step, StepBatch, SelectBatch
// and SimulateSegmentCoded, and pinned by TestEmptyStackCloseConvention.
// Balanced-document guards live one layer up (select.go rejects
// malformed sources), so the machine itself never has to fail.
package stackeval

import (
	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/obs"
)

// The machine word: the current DFA state code in the low bits with the
// accept flag folded in, so Accepting() is a single mask test. Aliveness
// (the old bool column) is folded into the state space instead of carried
// alongside it: code n (one past the last DFA state) is the dead row —
// all-absorbing under opens, not accepting — so stepping never branches
// on aliveness. Unlike the stackless machines there is no poison: a dead
// word on the stack is popped back over like any other frame, because a
// foreign subtree only kills the paths through it.
const (
	// AccBit marks the current state as accepting.
	AccBit = 1 << 30
	// StateMask extracts the state code (0..n; n is the dead row).
	StateMask = AccBit - 1
)

// QL returns a stack-based evaluator pre-selecting the nodes of QL.
// It works for every regular language and both encodings (the closing tag's
// label, when present, is not needed: the stack remembers everything).
// Construction compiles the DFA into an (n+1)×(k+1) word table: row n is
// the dead row, column k the unknown-label column.
func QL(d *dfa.DFA) *Evaluator {
	n := d.NumStates()
	k := d.Alphabet.Size()
	kw := k + 1
	ev := &Evaluator{
		d:   d,
		res: alphabet.NewResolver(d.Alphabet),
		n:   n,
		kw:  kw,
	}
	ev.words = make([]int32, n+1)
	for q := 0; q < n; q++ {
		w := int32(q)
		if d.Accept[q] {
			w |= AccBit
		}
		ev.words[q] = w
	}
	ev.words[n] = int32(n) // dead row: never accepting
	ev.dead = ev.words[n]
	ev.ctab = make([]int32, (n+1)*kw)
	for q := 0; q < n; q++ {
		row := ev.ctab[q*kw : (q+1)*kw]
		for a := 0; a < k; a++ {
			row[a] = ev.words[d.Delta[q][a]]
		}
		row[k] = ev.words[n] // unknown label kills the path
	}
	for a, row := 0, ev.ctab[n*kw:]; a < kw; a++ {
		row[a] = ev.words[n] // dead row absorbs
	}
	ev.pool = newPool(initialPoolCap)
	ev.top = -1
	ev.Reset()
	if h := core.CompileHook; h != nil {
		h(ev)
	}
	return ev
}

// Evaluator is the compiled pooled-stack pushdown machine. It implements
// core.Evaluator, core.BatchEvaluator, core.CodedSegmentKernel,
// core.Chunkable and core.Snapshotter.
type Evaluator struct {
	d   *dfa.DFA
	res *alphabet.Resolver

	// Compiled layout (§11): ctab is the (n+1)×(k+1) row-major word
	// table, words maps a state code to its word, kw is the row stride
	// (alphabet size + 1 for the unknown column).
	ctab  []int32
	words []int32
	n     int
	kw    int
	dead  int32 // words[n], hoisted so the batch kernels load it unchecked

	// Runtime configuration: word is the current machine word, top the
	// pool index of the topmost stack frame (-1 when empty), depth the
	// number of frames (tracked separately so EndSegment and StackDepth
	// do not walk the chain).
	word  int32
	top   int32
	depth int32
	pool  pool

	// obs, when non-nil, receives the stack-depth histogram — the Θ(depth)
	// working state that the stackless machines avoid. Nil costs one
	// branch per push. Pool counters batch in the pool and flush between
	// runs (FlushObs).
	obs *obs.Collector
}

var (
	_ core.Evaluator    = (*Evaluator)(nil)
	_ core.Instrumented = (*Evaluator)(nil)
)

// SetObs implements core.Instrumented.
func (ev *Evaluator) SetObs(c *obs.Collector) { ev.obs = c }

// FlushObs adds the batched pool counters to the collector and zeroes
// them. Called by the instrumented drivers at end of run.
func (ev *Evaluator) FlushObs() {
	if ev.obs != nil {
		ev.obs.StackPoolReuse.Add(ev.pool.reuse)
		ev.obs.StackPoolMisses.Add(ev.pool.misses)
	}
	ev.pool.reuse, ev.pool.misses = 0, 0
}

// Reset implements core.Evaluator.
func (ev *Evaluator) Reset() {
	ev.pool.release(ev.top)
	ev.top = -1
	ev.depth = 0
	ev.word = ev.words[ev.d.Start]
	ev.pool.reuse, ev.pool.misses = 0, 0
}

// Step implements core.Evaluator.
func (ev *Evaluator) Step(e encoding.Event) {
	if e.Kind == encoding.Open {
		ev.top = ev.pool.push(ev.word, ev.top)
		ev.depth++
		if ev.obs != nil {
			ev.obs.StackDepth.Observe(int(ev.depth))
		}
		sym := ev.kw - 1 // unknown column
		if s, ok := ev.res.ID(e.Label); ok {
			sym = s
		}
		ev.word = ev.ctab[int(ev.word&StateMask)*ev.kw+sym]
		return
	}
	if ev.top < 0 {
		return // empty-stack close: no-op by convention (see package doc)
	}
	ev.word, ev.top = ev.pool.pop(ev.top)
	ev.depth--
}

// Accepting implements core.Evaluator.
func (ev *Evaluator) Accepting() bool { return ev.word&AccBit != 0 }

// StackDepth returns the current stack depth (for memory accounting in
// benchmarks).
func (ev *Evaluator) StackDepth() int { return int(ev.depth) }

// PoolStats returns the free-list hit and growth counters accumulated
// since the last Reset/FlushObs (for tests and accounting).
func (ev *Evaluator) PoolStats() (reuse, misses int64) {
	return ev.pool.reuse, ev.pool.misses
}

// PoolCap returns the current pool capacity in nodes.
func (ev *Evaluator) PoolCap() int { return len(ev.pool.nodes) }

// EL returns a stack-based recognizer of EL (some branch labelled in L).
func EL(d *dfa.DFA) core.Evaluator { return core.ELFromQL(QL(d)) }

// AL returns a stack-based recognizer of AL (every branch labelled in L).
func AL(d *dfa.DFA) core.Evaluator { return core.ALFromQL(QL(d)) }
