package stackeval

import (
	"fmt"
	"strings"

	"stackless/internal/core"
	"stackless/internal/dfa"
)

// Verification surface (internal/tablecheck). The accessors expose the
// live compiled arrays — never copies, the corruption tests flip entries
// in place — and the snapshot support makes the bounded-equivalence
// search O(1) per configuration save instead of O(depth): a snapshot is
// one retained link into the pooled stack chain, shared structurally with
// the live machine (pool.go).

// CompiledTable returns the live compiled form: the flat (n+1)×(k+1) word
// table (row n the dead row, column k the unknown column), the
// state-to-word vector (n+1 entries), and the row stride k+1.
func (ev *Evaluator) CompiledTable() (tab, words []int32, stride int) {
	return ev.ctab, ev.words, ev.kw
}

// DFA returns the automaton the machine was compiled from.
func (ev *Evaluator) DFA() *dfa.DFA { return ev.d }

// savedConfig is the saved configuration of a pushdown Evaluator: the
// machine word, the depth, and one retained reference to the top stack
// node. Configs are tied to the machine's pool; restoring a config into a
// different Evaluator is invalid. Snapshot references are never dropped
// (SavedConfig has no release), so the pool high-water mark is bounded by
// the number of live snapshots times the depth — fine for the bounded
// searches this exists for.
type savedConfig struct {
	ev    *Evaluator
	word  int32
	depth int32
	top   int32
}

// Key implements core.SavedConfig: the word and the stack words top to
// bottom. O(depth) — used only by the equivalence search's dedup, never
// on an evaluation path.
func (c *savedConfig) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d@%d", c.word, c.depth)
	for t := c.top; t >= 0; t = c.ev.pool.nodes[t].below {
		fmt.Fprintf(&b, ";%d", c.ev.pool.nodes[t].word)
	}
	return b.String()
}

// Parked implements core.SavedConfig. Dead word over an empty stack is
// absorbing: every frame pushed from here on is dead, every pop returns
// to this configuration or a dead one, and Accepting stays false. (A dead
// word over a non-empty stack is NOT parked — a close revives the path
// below.)
func (c *savedConfig) Parked() bool {
	return c.word&StateMask == int32(c.ev.n) && c.top < 0
}

// SaveConfig implements core.Snapshotter: retain the top link — O(1).
func (ev *Evaluator) SaveConfig() core.SavedConfig {
	ev.pool.retain(ev.top)
	return &savedConfig{ev: ev, word: ev.word, depth: ev.depth, top: ev.top}
}

// RestoreConfig implements core.Snapshotter. The machine takes its own
// reference on the restored chain before dropping the one it holds, so
// restoring a snapshot of the current configuration is safe.
func (ev *Evaluator) RestoreConfig(c core.SavedConfig) {
	sc := c.(*savedConfig)
	ev.pool.retain(sc.top)
	ev.pool.release(ev.top)
	ev.word, ev.depth, ev.top = sc.word, sc.depth, sc.top
}
