package stackeval

import (
	"stackless/internal/alphabet"
	"stackless/internal/core"
)

// Chunk-parallel support (DESIGN.md §16). The pushdown's configuration is
// the Θ(depth) stack itself, so unlike the stackless machines it has no
// bounded composable summary for arbitrary chunks. What it does have,
// under the CutNewMin boundary discipline, is a *speculative* one: within
// a segment the depth never drops below the segment entry (a close that
// would reach a new minimum is a boundary by construction), so every
// close inside the segment pops a frame pushed inside the same segment.
// The frames surviving at segment end are then exactly the segment's net
// depth gain, each one a pure function of the entry state — so a segment
// summarizes as, per entry state, an exit state plus the frame words to
// push, and summaries compose left to right like any other Chunkable.
// The price is the all-states simulation itself: O(states) work per event
// instead of O(1), profitable only when the stream's depth (which bounds
// the number of boundaries, and so the sequential join fringe) is small
// against the chunk size — internal/parallel gates on exactly that
// (SpeculationViable) and falls back to the sequential coded run
// otherwise, which is also exactly what CutAll used to force on every
// pushdown run.

var (
	_ core.Chunkable          = (*Evaluator)(nil)
	_ core.BatchEvaluator     = (*Evaluator)(nil)
	_ core.CodedSegmentKernel = (*Evaluator)(nil)
	_ core.Snapshotter        = (*Evaluator)(nil)
)

// ChunkStates implements core.Chunkable: the n DFA states plus the dead
// row (a live control state here — a dead run is revived by a boundary
// pop, so it must be enumerated, not collapsed to -1).
func (ev *Evaluator) ChunkStates() int { return ev.n + 1 }

// Cut implements core.Chunkable: new-minimum closes, exactly the CutNewMin
// rule, tagged as a distinct policy so the engine knows the segments are
// speculative (all-states over a stack) and applies the viability gate.
func (ev *Evaluator) Cut() core.CutPolicy { return core.CutBoundedDepth }

// Fork implements core.Chunkable. The compiled table and word vector are
// immutable after construction; the pool, the resolver cache and the
// runtime configuration are per-fork. The collector is shared (atomics).
func (ev *Evaluator) Fork() core.Chunkable {
	f := &Evaluator{
		d:     ev.d,
		res:   alphabet.NewResolver(ev.d.Alphabet),
		ctab:  ev.ctab,
		words: ev.words,
		n:     ev.n,
		kw:    ev.kw,
		dead:  ev.dead,
		obs:   ev.obs,
		top:   -1,
	}
	f.pool = newPool(initialPoolCap)
	f.Reset()
	return f
}

// BeginSegment implements core.Chunkable: control state q (q == n is the
// dead row) at relative depth 0 with an empty stack.
func (ev *Evaluator) BeginSegment(q int) {
	ev.pool.release(ev.top)
	ev.top = -1
	ev.depth = 0
	ev.word = ev.words[q]
}

// EndSegment implements core.Chunkable. The register payload is the frame
// words still on the stack, bottom to top — under the segment discipline
// exactly the segment's net depth gain.
func (ev *Evaluator) EndSegment() core.SegmentExit {
	var frames []int32
	if ev.depth > 0 {
		frames = make([]int32, ev.depth)
		i := int(ev.depth)
		for t := ev.top; t >= 0 && i > 0; t = ev.pool.nodes[t].below {
			i--
			frames[i] = ev.pool.nodes[t].word
		}
	}
	return core.SegmentExit{State: int(ev.word & StateMask), Regs: frames}
}

// JoinState implements core.Chunkable. Never -1: the dead row is a
// revivable control state, not a poison.
func (ev *Evaluator) JoinState() int { return int(ev.word & StateMask) }

// ApplySegment implements core.Chunkable: push the segment's surviving
// frames (already machine words — no rebasing needed, frames store states,
// not depths) and take its exit state. A nil payload is the closed-form
// dead entry: its frames are all dead words.
func (ev *Evaluator) ApplySegment(x core.SegmentExit, delta int) {
	if frames, ok := x.Regs.([]int32); ok && frames != nil {
		for _, w := range frames {
			ev.top = ev.pool.push(w, ev.top)
		}
		ev.depth += int32(len(frames))
	} else {
		dead := ev.words[ev.n]
		for i := 0; i < delta; i++ {
			ev.top = ev.pool.push(dead, ev.top)
		}
		ev.depth += int32(delta)
	}
	ev.word = ev.words[x.State]
}
