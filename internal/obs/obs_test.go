package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Store(7)
	g.Store(3)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 22, HistBuckets - 1}, {1 << 40, HistBuckets - 1},
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.v)
		for i := 0; i < HistBuckets; i++ {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if got := h.Bucket(i); got != want {
				t.Errorf("Observe(%d): bucket %d = %d, want %d", tc.v, i, got, want)
			}
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int{1, 2, 3, 100, 0, -4} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 106 { // negatives clamp to 0
		t.Errorf("sum = %d, want 106", h.Sum())
	}
	if h.Max() != 100 {
		t.Errorf("max = %d, want 100", h.Max())
	}
	if h.Bucket(-1) != 0 || h.Bucket(HistBuckets) != 0 {
		t.Error("out-of-range buckets must read 0")
	}
}

func TestBucketUpper(t *testing.T) {
	if BucketUpper(0) != 0 || BucketUpper(-1) != 0 {
		t.Error("bucket 0 holds only the value 0")
	}
	if BucketUpper(1) != 1 || BucketUpper(2) != 3 || BucketUpper(3) != 7 {
		t.Error("finite bucket bounds must be 2^i-1")
	}
	if BucketUpper(HistBuckets-1) != -1 || BucketUpper(HistBuckets+5) != -1 {
		t.Error("overflow bucket must report -1")
	}
}

func TestPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhaseSplit: "split", PhaseSimulate: "simulate",
		PhaseJoin: "join", PhaseMerge: "merge", NumPhases: "unknown",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), name)
		}
	}
}

func TestSnapshotShape(t *testing.T) {
	var c Collector
	c.Events.Add(10)
	c.Matches.Add(2)
	c.RunsByPolicy[1].Inc()
	c.Depth.Observe(3)
	c.Phases[PhaseJoin].Observe(5 * time.Millisecond)
	c.PoolWorkers.Store(4)
	c.WorkerBusyNs.Add(100)
	c.FanoutWallNs.Add(50)

	s := c.Snapshot()
	if s.Counters["events"] != 10 || s.Counters["matches"] != 2 {
		t.Fatalf("counters wrong: %+v", s.Counters)
	}
	if s.Counters["runs_cut_newmin"] != 1 {
		t.Fatalf("per-policy counter missing: %+v", s.Counters)
	}
	for _, key := range []string{
		"events", "matches", "stack_fallbacks", "seq_fallbacks",
		"parallel_runs", "product_groups", "product_cache_hits",
		"product_cache_misses", "chunks", "segments", "segment_events",
		"boundary_events", "cuts_rejected", "register_loads",
		"register_compares", "pool_submits", "pool_workers",
		"worker_busy_ns", "fanout_wall_ns",
	} {
		if _, ok := s.Counters[key]; !ok {
			t.Errorf("snapshot missing counter %q", key)
		}
	}
	if s.Phases["join"].Count != 1 || s.Phases["join"].Ns < int64(time.Millisecond) {
		t.Errorf("join phase not captured: %+v", s.Phases["join"])
	}
	d := s.Histograms["depth"]
	if d.Count != 1 || d.Max != 3 || len(d.Buckets) != 1 || d.Buckets[0].Le != 3 {
		t.Errorf("depth histogram wrong: %+v", d)
	}
	// busy=100 over wall=50 on 4 workers: 2 busy on average, 50% utilized.
	if s.Derived["busy_workers_avg"] != 2 || s.Derived["worker_utilization"] != 0.5 {
		t.Errorf("derived wrong: %+v", s.Derived)
	}
}

func TestSnapshotJSON(t *testing.T) {
	var c Collector
	c.Events.Add(3)
	var buf bytes.Buffer
	if err := c.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["events"] != 3 {
		t.Fatalf("round-tripped events = %d", round.Counters["events"])
	}
	// String() is the expvar.Var contract: compact valid JSON.
	var fromString Snapshot
	if err := json.Unmarshal([]byte(c.String()), &fromString); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
}

func TestEmptySnapshotOmitsDerived(t *testing.T) {
	var c Collector
	if d := c.Snapshot().Derived; d != nil {
		t.Fatalf("empty collector must omit derived ratios, got %v", d)
	}
}

// TestHotPathAllocs pins the per-observation cost of the enabled paths:
// counters, histograms and timers never allocate, so turning the collector
// on cannot change the engine's allocation profile.
func TestHotPathAllocs(t *testing.T) {
	var c Collector
	if n := testing.AllocsPerRun(200, func() {
		c.Events.Inc()
		c.Depth.Observe(17)
		c.Phases[PhaseSimulate].Observe(time.Microsecond)
	}); n != 0 {
		t.Fatalf("enabled hooks allocate %.1f/op, want 0", n)
	}
}

func TestConcurrentCollect(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Events.Inc()
				c.Depth.Observe(i % 64)
				c.Registers.Observe(i % 5)
			}
		}()
	}
	wg.Wait()
	if c.Events.Load() != 8000 || c.Depth.Count() != 8000 {
		t.Fatalf("lost updates: events=%d depth=%d", c.Events.Load(), c.Depth.Count())
	}
	if c.Depth.Max() != 63 {
		t.Fatalf("max = %d, want 63", c.Depth.Max())
	}
}
