package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of log₂ buckets per histogram. Bucket 0 holds
// the value 0 and bucket i holds values in [2^(i-1), 2^i). The last bucket
// absorbs everything at or above 2^(HistBuckets-2), so the memory bound is
// independent of the observed values.
const HistBuckets = 24

// Histogram is a bounded histogram over non-negative integers with
// power-of-two buckets. All operations are atomic and allocation-free; the
// zero value is ready to use.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i (math.MaxInt64
// semantics for the overflow bucket, reported as -1).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= HistBuckets-1 {
		return -1
	}
	return 1<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int) {
	n := int64(v)
	h.buckets[bucketOf(n)].Add(1)
	h.count.Add(1)
	if n > 0 {
		h.sum.Add(n)
	}
	for {
		cur := h.max.Load()
		if n <= cur || h.max.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values (negatives clamped to 0).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 {
	if i < 0 || i >= HistBuckets {
		return 0
	}
	return h.buckets[i].Load()
}
