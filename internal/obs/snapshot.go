package obs

import (
	"encoding/json"
	"io"
)

// Snapshot is a point-in-time JSON view of a Collector, in the expvar
// style: stable lower_snake keys, plain numbers, no pointers back into the
// live collector. Readers race benignly with writers — each field is an
// independent atomic load, so totals drawn mid-run may be mutually off by a
// few events, never torn.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Phases     map[string]PhaseSnapshot     `json:"phases"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Derived holds ratios computed from the raw numbers (worker
	// utilization and the like); absent entries mean "not measurable yet".
	Derived map[string]float64 `json:"derived,omitempty"`
}

// PhaseSnapshot is one phase timer: total nanoseconds and interval count.
type PhaseSnapshot struct {
	Ns    int64 `json:"ns"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is one histogram: summary stats plus the non-empty
// buckets in increasing order. Le is the bucket's inclusive upper bound
// (-1 for the overflow bucket).
type HistogramSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

func snapHist(h *Histogram) HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Max: h.Max()}
	for i := 0; i < HistBuckets; i++ {
		if n := h.Bucket(i); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Le: BucketUpper(i), Count: n})
		}
	}
	return s
}

// policyNames index core.CutPolicy; kept in sync with internal/core by
// TestRunsByPolicyNames.
var policyNames = [5]string{"cut_none", "cut_newmin", "cut_belowentry", "cut_all", "cut_boundeddepth"}

// Snapshot captures the collector's current values.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Phases:     map[string]PhaseSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
		Derived:    map[string]float64{},
	}
	s.Counters["events"] = c.Events.Load()
	s.Counters["matches"] = c.Matches.Load()
	s.Counters["stack_fallbacks"] = c.StackFallbacks.Load()
	s.Counters["seq_fallbacks"] = c.SeqFallbacks.Load()
	s.Counters["parallel_runs"] = c.ParallelRuns.Load()
	s.Counters["product_groups"] = c.ProductGroups.Load()
	s.Counters["product_cache_hits"] = c.ProductCacheHits.Load()
	s.Counters["product_cache_misses"] = c.ProductCacheMisses.Load()
	s.Counters["chunks"] = c.Chunks.Load()
	s.Counters["segments"] = c.Segments.Load()
	s.Counters["segment_events"] = c.SegmentEvents.Load()
	s.Counters["boundary_events"] = c.BoundaryEvents.Load()
	s.Counters["cuts_rejected"] = c.CutsRejected.Load()
	s.Counters["spec_chunks"] = c.SpecChunks.Load()
	for i, name := range policyNames {
		s.Counters["runs_"+name] = c.RunsByPolicy[i].Load()
	}
	s.Counters["register_loads"] = c.RegisterLoads.Load()
	s.Counters["register_compares"] = c.RegisterCompares.Load()
	s.Counters["stack_pool_reuse"] = c.StackPoolReuse.Load()
	s.Counters["stack_pool_misses"] = c.StackPoolMisses.Load()
	s.Counters["pool_submits"] = c.PoolSubmits.Load()
	s.Counters["pool_workers"] = c.PoolWorkers.Load()
	s.Counters["worker_busy_ns"] = c.WorkerBusyNs.Load()
	s.Counters["fanout_wall_ns"] = c.FanoutWallNs.Load()

	for p := Phase(0); p < NumPhases; p++ {
		s.Phases[p.String()] = PhaseSnapshot{
			Ns:    c.Phases[p].Ns.Load(),
			Count: c.Phases[p].Count.Load(),
		}
	}

	s.Histograms["depth"] = snapHist(&c.Depth)
	s.Histograms["registers"] = snapHist(&c.Registers)
	s.Histograms["stack_depth"] = snapHist(&c.StackDepth)
	s.Histograms["queue_depth"] = snapHist(&c.QueueDepth)
	s.Histograms["latency"] = snapHist(&c.Latency)

	busy, wall, workers := c.WorkerBusyNs.Load(), c.FanoutWallNs.Load(), c.PoolWorkers.Load()
	if wall > 0 {
		s.Derived["busy_workers_avg"] = float64(busy) / float64(wall)
		if workers > 0 {
			s.Derived["worker_utilization"] = float64(busy) / (float64(wall) * float64(workers))
		}
	}
	if len(s.Derived) == 0 {
		s.Derived = nil
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String renders the collector as JSON, which makes a *Collector directly
// publishable as an expvar.Var:
//
//	expvar.Publish("streamq", collector)
//
// without this package importing expvar (whose import side effect drags an
// HTTP handler into every binary linking the engine).
func (c *Collector) String() string {
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}
