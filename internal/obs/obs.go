// Package obs is the engine's zero-dependency observability layer: atomic
// counters, bounded log₂ histograms and per-phase timers that the evaluator
// (internal/core), the pushdown fallback (internal/stackeval) and the
// chunk-parallel engine (internal/parallel) report into.
//
// The contract is that observability is free when it is off. Every hook in
// the engine is guarded by a nil check on the *Collector — a disabled run
// executes one predictable branch per hook and allocates nothing
// (TestObsDisabledZeroAllocs and BenchmarkObsOverhead enforce this). A
// Collector is safe for concurrent use: all fields are independent atomics,
// so forks of a machine running on different workers report into the same
// Collector without coordination.
//
// Numbers are cumulative. One Collector can span many evaluations (a
// service-level view) or be fresh per query (per-query cost accounting);
// Snapshot reads a consistent-enough JSON view at any time without stopping
// writers.
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic last-value register (pool size, configuration).
type Gauge struct{ v atomic.Int64 }

// Store sets the gauge.
func (g *Gauge) Store(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Phase identifies one stage of a chunk-parallel evaluation.
type Phase int

// The phases of DESIGN.md §8's map/join pipeline, plus the multi-query
// merge.
const (
	// PhaseSplit: scanning a chunk for cut boundaries (cutPieces).
	PhaseSplit Phase = iota
	// PhaseSimulate: the all-states segment simulation on the workers.
	PhaseSimulate
	// PhaseJoin: the left-to-right replay of summaries and boundary events.
	PhaseJoin
	// PhaseMerge: the k-way merge of per-query match streams (MultiQuery).
	PhaseMerge
	// NumPhases is the number of phases.
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseSplit:
		return "split"
	case PhaseSimulate:
		return "simulate"
	case PhaseJoin:
		return "join"
	case PhaseMerge:
		return "merge"
	}
	return "unknown"
}

// PhaseTimer accumulates wall time and invocation counts for one phase.
type PhaseTimer struct {
	// Ns is the accumulated duration in nanoseconds.
	Ns Counter
	// Count is the number of timed intervals.
	Count Counter
}

// Observe records one timed interval.
func (t *PhaseTimer) Observe(d time.Duration) {
	t.Ns.Add(int64(d))
	t.Count.Inc()
}

// Collector aggregates everything the engine reports. The zero value is
// ready to use; share one *Collector across goroutines freely.
type Collector struct {
	// Stream-level accounting (core.SelectObs / core.RecognizeObs /
	// parallel runs / the MultiQuery pass).
	Events  Counter // tag events processed
	Matches Counter // matches reported

	// Strategy accounting (filled by the public API layer).
	StackFallbacks Counter // evaluations that ran on the pushdown fallback
	SeqFallbacks   Counter // chunk-parallel requests degraded to a sequential pass
	ParallelRuns   Counter // chunk-parallel runs actually fanned out

	// Multi-query product compilation (internal/product).
	ProductGroups      Counter // product groups evaluated one-pass
	ProductCacheHits   Counter // compiled products served from the LRU cache
	ProductCacheMisses Counter // products compiled (or failed) on a cache miss

	// Chunking (internal/parallel). SegmentEvents + BoundaryEvents equals
	// Events for a fanned-out run: every event is either summarized inside
	// a segment or replayed at a cut boundary.
	Chunks         Counter    // chunks fanned out to the pool
	Segments       Counter    // summarized segments across all chunks
	SegmentEvents  Counter    // events simulated inside segments
	BoundaryEvents Counter    // cut events replayed sequentially at join time
	CutsRejected   Counter    // requested cut positions dropped by sanitizing
	SpecChunks     Counter    // chunks simulated speculatively (pushdown, CutBoundedDepth)
	RunsByPolicy   [5]Counter // chunk-parallel requests per core.CutPolicy

	// Machine-level accounting (depth-register machines).
	RegisterLoads    Counter // registers/records written with the current depth
	RegisterCompares Counter // register/depth comparisons evaluated

	// Pushdown stack pool (internal/stackeval).
	StackPoolReuse  Counter // stack pushes served from the node free list
	StackPoolMisses Counter // stack pushes that had to grow the node pool

	// Pool (internal/parallel).
	PoolSubmits  Counter // tasks handed to the worker pool
	PoolWorkers  Gauge   // size of the pool last used
	WorkerBusyNs Counter // nanoseconds workers spent inside our tasks
	FanoutWallNs Counter // wall nanoseconds between fan-out and last chunk done

	// Histograms (bounded: log₂ buckets).
	Depth      Histogram // node depth at each opening tag (sequential passes)
	Registers  Histogram // live registers/records after each load
	StackDepth Histogram // pushdown stack depth at each push (fallback only)
	QueueDepth Histogram // pool queue length observed at each submit
	Latency    Histogram // per-match emission latency: events between the deciding Open and emission

	// Phases are the per-phase timers (split, simulate, join, merge).
	Phases [NumPhases]PhaseTimer
}

// Since is a convenience for phase timing: c.Phases[p].Observe(Since(t0)).
func Since(t0 time.Time) time.Duration { return time.Since(t0) }
