package alphabet

import (
	"testing"
	"testing/quick"
)

func TestNewDedupAndOrder(t *testing.T) {
	a := New("x", "y", "x", "z")
	if a.Size() != 3 {
		t.Fatalf("Size = %d, want 3", a.Size())
	}
	for i, want := range []string{"x", "y", "z"} {
		if a.Symbol(i) != want {
			t.Errorf("Symbol(%d) = %q, want %q", i, a.Symbol(i), want)
		}
	}
}

func TestLetters(t *testing.T) {
	a := Letters("abc")
	if a.Size() != 3 || !a.Contains("b") || a.Contains("ab") {
		t.Errorf("Letters misbehaved: %v", a)
	}
}

func TestIDAndMustID(t *testing.T) {
	a := New("item")
	if id, ok := a.ID("item"); !ok || id != 0 {
		t.Errorf("ID(item) = %d, %v", id, ok)
	}
	if _, ok := a.ID("missing"); ok {
		t.Error("ID(missing) should not be found")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustID should panic on unknown symbol")
		}
	}()
	a.MustID("missing")
}

func TestAddIdempotent(t *testing.T) {
	a := New()
	if a.Add("x") != 0 || a.Add("y") != 1 || a.Add("x") != 0 {
		t.Error("Add ids wrong")
	}
}

func TestEqualAndSameSymbolSet(t *testing.T) {
	a, b, c := New("x", "y"), New("x", "y"), New("y", "x")
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal wrong")
	}
	if !a.SameSymbolSet(c) || a.SameSymbolSet(New("x")) {
		t.Error("SameSymbolSet wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New("x")
	c := a.Clone()
	c.Add("y")
	if a.Contains("y") || !c.Contains("y") {
		t.Error("Clone not independent")
	}
}

func TestStringSorted(t *testing.T) {
	if got := New("b", "a").String(); got != "{a,b}" {
		t.Errorf("String = %q", got)
	}
}

func TestResolverAgreesWithID(t *testing.T) {
	a := New("one", "two", "three")
	r := NewResolver(a)
	f := func(pick uint8) bool {
		symbols := []string{"one", "two", "three", "nope"}
		s := symbols[int(pick)%len(symbols)]
		id1, ok1 := r.ID(s)
		id2, ok2 := a.ID(s)
		return id1 == id2 && ok1 == ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResolverCacheBound(t *testing.T) {
	a := New()
	for i := 0; i < 100; i++ {
		a.Add(string(rune('a' + i)))
	}
	r := NewResolver(a)
	for i := 0; i < 100; i++ {
		s := string(rune('a' + i))
		if id, ok := r.ID(s); !ok || id != i {
			t.Fatalf("Resolver.ID(%q) = %d, %v", s, id, ok)
		}
	}
	if len(r.labels) > 32 {
		t.Errorf("cache grew to %d entries", len(r.labels))
	}
}

func TestUnion(t *testing.T) {
	a := Letters("abc")
	b := Letters("cbd")
	u := Union(a, b)
	for i, want := range []string{"a", "b", "c", "d"} {
		if u.Symbol(i) != want {
			t.Errorf("Union symbol %d = %q, want %q", i, u.Symbol(i), want)
		}
	}
	if u.Size() != 4 {
		t.Fatalf("Union size = %d, want 4", u.Size())
	}
	// The union is independent: growing it must not grow the inputs.
	u.Add("e")
	if a.Size() != 3 || b.Size() != 3 {
		t.Errorf("Union shares storage with its inputs: |a|=%d |b|=%d", a.Size(), b.Size())
	}
	if got := Union(); got.Size() != 0 {
		t.Errorf("empty Union size = %d, want 0", got.Size())
	}
	// Union of one alphabet is a copy with the same order.
	if c := Union(a); !c.Equal(a) {
		t.Errorf("Union(a) = %v, want %v", c, a)
	}
}

func TestGeneration(t *testing.T) {
	a := Letters("ab")
	g0 := a.Generation()
	if a.Add("a"); a.Generation() != g0 {
		t.Errorf("re-adding a known symbol changed the generation")
	}
	if a.Add("z"); a.Generation() == g0 {
		t.Errorf("adding a new symbol did not change the generation")
	}
}
