// Package alphabet provides dense interning of finite alphabets.
//
// Automata in this module work over an arbitrary finite alphabet Γ whose
// symbols are strings (XML element names, JSON keys, or single letters in
// the paper's examples). An Alphabet assigns each symbol a dense integer id
// so that transition tables can be plain slices.
package alphabet

import (
	"fmt"
	"sort"
	"strings"
)

// Alphabet is an immutable-after-construction mapping between symbol names
// and dense ids in [0, Size()).
type Alphabet struct {
	symbols []string
	index   map[string]int
}

// New builds an alphabet from the given symbols. Duplicates are collapsed;
// order of first occurrence is preserved.
func New(symbols ...string) *Alphabet {
	a := &Alphabet{index: make(map[string]int, len(symbols))}
	for _, s := range symbols {
		a.Add(s)
	}
	return a
}

// Letters builds an alphabet of single-character symbols from the runes of s.
// Letters("abc") == New("a", "b", "c").
func Letters(s string) *Alphabet {
	a := &Alphabet{index: make(map[string]int, len(s))}
	for _, r := range s {
		a.Add(string(r))
	}
	return a
}

// Add interns symbol s, returning its id. Existing symbols keep their id.
func (a *Alphabet) Add(s string) int {
	if id, ok := a.index[s]; ok {
		return id
	}
	id := len(a.symbols)
	a.symbols = append(a.symbols, s)
	if a.index == nil {
		a.index = make(map[string]int)
	}
	a.index[s] = id
	return id
}

// Size returns the number of distinct symbols.
func (a *Alphabet) Size() int { return len(a.symbols) }

// ID returns the id of symbol s and whether it is present.
func (a *Alphabet) ID(s string) (int, bool) {
	id, ok := a.index[s]
	return id, ok
}

// MustID returns the id of symbol s, panicking if absent. Intended for
// tests and for construction code where the symbol set is fixed.
func (a *Alphabet) MustID(s string) int {
	id, ok := a.index[s]
	if !ok {
		panic(fmt.Sprintf("alphabet: unknown symbol %q", s))
	}
	return id
}

// Symbol returns the symbol with the given id.
func (a *Alphabet) Symbol(id int) string { return a.symbols[id] }

// Symbols returns a copy of the symbol list in id order.
func (a *Alphabet) Symbols() []string {
	out := make([]string, len(a.symbols))
	copy(out, a.symbols)
	return out
}

// Contains reports whether s is a symbol of the alphabet.
func (a *Alphabet) Contains(s string) bool {
	_, ok := a.index[s]
	return ok
}

// Equal reports whether two alphabets have the same symbols with the same ids.
func (a *Alphabet) Equal(b *Alphabet) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i, s := range a.symbols {
		if b.symbols[i] != s {
			return false
		}
	}
	return true
}

// SameSymbolSet reports whether two alphabets contain the same symbols,
// regardless of id assignment.
func (a *Alphabet) SameSymbolSet(b *Alphabet) bool {
	if a.Size() != b.Size() {
		return false
	}
	for _, s := range a.symbols {
		if !b.Contains(s) {
			return false
		}
	}
	return true
}

// String renders the alphabet as {a,b,c} with symbols sorted for stability.
func (a *Alphabet) String() string {
	syms := a.Symbols()
	sort.Strings(syms)
	return "{" + strings.Join(syms, ",") + "}"
}

// Clone returns an independent copy that can be extended without affecting a.
func (a *Alphabet) Clone() *Alphabet {
	c := &Alphabet{
		symbols: make([]string, len(a.symbols)),
		index:   make(map[string]int, len(a.index)),
	}
	copy(c.symbols, a.symbols)
	for k, v := range a.index {
		c.index[k] = v
	}
	return c
}

// Resolver memoizes label-to-id resolution for streaming hot paths. A small
// linear cache exploits two facts: documents use few distinct labels, and
// interned label strings make the == comparison a pointer check.
type Resolver struct {
	alph   *Alphabet
	labels []string
	ids    []int
}

// NewResolver returns a resolver for the alphabet.
func NewResolver(a *Alphabet) *Resolver {
	return &Resolver{alph: a}
}

// ID resolves a label, caching the result.
func (r *Resolver) ID(label string) (int, bool) {
	for i, l := range r.labels {
		if l == label {
			return r.ids[i], true
		}
	}
	id, ok := r.alph.ID(label)
	if ok && len(r.labels) < 32 {
		r.labels = append(r.labels, label)
		r.ids = append(r.ids, id)
	}
	return id, ok
}
