// Package alphabet provides dense interning of finite alphabets.
//
// Automata in this module work over an arbitrary finite alphabet Γ whose
// symbols are strings (XML element names, JSON keys, or single letters in
// the paper's examples). An Alphabet assigns each symbol a dense integer id
// so that transition tables can be plain slices.
package alphabet

import (
	"fmt"
	"sort"
	"strings"
)

// Alphabet is an immutable-after-construction mapping between symbol names
// and dense ids in [0, Size()).
type Alphabet struct {
	symbols []string
	index   map[string]int
}

// New builds an alphabet from the given symbols. Duplicates are collapsed;
// order of first occurrence is preserved.
func New(symbols ...string) *Alphabet {
	a := &Alphabet{index: make(map[string]int, len(symbols))}
	for _, s := range symbols {
		a.Add(s)
	}
	return a
}

// Letters builds an alphabet of single-character symbols from the runes of s.
// Letters("abc") == New("a", "b", "c").
func Letters(s string) *Alphabet {
	a := &Alphabet{index: make(map[string]int, len(s))}
	for _, r := range s {
		a.Add(string(r))
	}
	return a
}

// Add interns symbol s, returning its id. Existing symbols keep their id.
func (a *Alphabet) Add(s string) int {
	if id, ok := a.index[s]; ok {
		return id
	}
	id := len(a.symbols)
	a.symbols = append(a.symbols, s)
	if a.index == nil {
		a.index = make(map[string]int)
	}
	a.index[s] = id
	return id
}

// Size returns the number of distinct symbols.
func (a *Alphabet) Size() int { return len(a.symbols) }

// Generation returns the alphabet's mutation generation: it advances exactly
// when Add interns a new symbol, and symbols are never removed or renumbered,
// so two observations with equal generations saw identical alphabets. Caches
// keyed on an alphabet (the compiled-product cache of internal/product) fold
// the generation into their keys, so growing an alphabet after a compile
// invalidates the cached artifact instead of silently shearing its tables.
func (a *Alphabet) Generation() int { return len(a.symbols) }

// Union builds the shared alphabet of a set of machines: every symbol of
// every input, first-occurrence order across the inputs (so equal input
// sequences yield equal unions). The result is independent of the inputs —
// extending it does not affect them. A product automaton's transition table
// is indexed by the union's Sym space; member tables are re-indexed through
// it at construction (see core.NewProductDFA).
func Union(as ...*Alphabet) *Alphabet {
	u := &Alphabet{index: make(map[string]int)}
	for _, a := range as {
		for _, s := range a.symbols {
			u.Add(s)
		}
	}
	return u
}

// ID returns the id of symbol s and whether it is present.
func (a *Alphabet) ID(s string) (int, bool) {
	id, ok := a.index[s]
	return id, ok
}

// MustID returns the id of symbol s, panicking if absent. Intended for
// tests and for construction code where the symbol set is fixed.
func (a *Alphabet) MustID(s string) int {
	id, ok := a.index[s]
	if !ok {
		panic(fmt.Sprintf("alphabet: unknown symbol %q", s))
	}
	return id
}

// Symbol returns the symbol with the given id.
func (a *Alphabet) Symbol(id int) string { return a.symbols[id] }

// Symbols returns a copy of the symbol list in id order.
func (a *Alphabet) Symbols() []string {
	out := make([]string, len(a.symbols))
	copy(out, a.symbols)
	return out
}

// Contains reports whether s is a symbol of the alphabet.
func (a *Alphabet) Contains(s string) bool {
	_, ok := a.index[s]
	return ok
}

// Equal reports whether two alphabets have the same symbols with the same ids.
func (a *Alphabet) Equal(b *Alphabet) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i, s := range a.symbols {
		if b.symbols[i] != s {
			return false
		}
	}
	return true
}

// SameSymbolSet reports whether two alphabets contain the same symbols,
// regardless of id assignment.
func (a *Alphabet) SameSymbolSet(b *Alphabet) bool {
	if a.Size() != b.Size() {
		return false
	}
	for _, s := range a.symbols {
		if !b.Contains(s) {
			return false
		}
	}
	return true
}

// String renders the alphabet as {a,b,c} with symbols sorted for stability.
func (a *Alphabet) String() string {
	syms := a.Symbols()
	sort.Strings(syms)
	return "{" + strings.Join(syms, ",") + "}"
}

// Clone returns an independent copy that can be extended without affecting a.
func (a *Alphabet) Clone() *Alphabet {
	c := &Alphabet{
		symbols: make([]string, len(a.symbols)),
		index:   make(map[string]int, len(a.index)),
	}
	copy(c.symbols, a.symbols)
	for k, v := range a.index {
		c.index[k] = v
	}
	return c
}

// Sym is a dense symbol code produced by a Coder: ids in [0, Size()) for
// alphabet symbols, plus the sentinel Size() for any label outside the
// alphabet. Keeping the unknown sentinel dense — one extra column rather
// than a negative id — lets compiled transition tables stay total: a
// state×symbol table with Size()+1 columns steps every event without a
// bounds or validity branch, and the unknown column simply rows into the
// machine's dead state (the poison convention of internal/core).
type Sym int32

// coderCacheSize bounds the Coder's linear cache. Beyond it, resolution
// falls through to a map so adversarial streams with many distinct labels
// degrade to one hash per event instead of a linear scan.
const coderCacheSize = 16

// Coder interns labels to dense Sym codes for the compiled event pipeline.
// Unlike Resolver it also caches labels *outside* the alphabet (mapping
// them to the unknown sentinel), so a stream's hashing cost is one lookup
// per distinct label, not per event. A Coder is not safe for concurrent
// use; make one per stream.
type Coder struct {
	alph    *Alphabet
	unknown Sym
	b1      [256]Sym // single-byte labels: first byte → code, -1 unresolved
	labels  []string // linear cache, pointer-fast for interned labels
	codes   []Sym
	over    map[string]Sym // overflow beyond coderCacheSize
}

// NewCoder returns a coder for the alphabet.
func NewCoder(a *Alphabet) *Coder {
	c := &Coder{alph: a, unknown: Sym(a.Size())}
	for i := range c.b1 {
		c.b1[i] = -1
	}
	return c
}

// Alphabet returns the alphabet the codes index into.
func (c *Coder) Alphabet() *Alphabet { return c.alph }

// Unknown returns the sentinel code for labels outside the alphabet:
// Sym(Alphabet().Size()), the extra column of compiled tables.
func (c *Coder) Unknown() Sym { return c.unknown }

// Code returns the dense code of label, caching the resolution. Labels
// outside the alphabet code to Unknown(). Single-byte labels (the paper's
// letter alphabets) resolve through a direct byte table — one load, no
// comparison.
func (c *Coder) Code(label string) Sym {
	if len(label) == 1 {
		if v := c.b1[label[0]]; v >= 0 {
			return v
		}
	}
	return c.codeLinear(label)
}

// codeLinear scans the small linear cache (multi-byte labels, or a byte
// missing from the b1 table).
func (c *Coder) codeLinear(label string) Sym {
	for i, l := range c.labels {
		if l == label {
			return c.codes[i]
		}
	}
	return c.codeSlow(label)
}

// codeSlow resolves a label missing from every cache and caches it — in
// the byte table for single-byte labels, else in the linear cache while it
// has room, in the overflow map afterwards.
func (c *Coder) codeSlow(label string) Sym {
	if s, ok := c.over[label]; ok {
		return s
	}
	s := c.unknown
	if id, ok := c.alph.ID(label); ok {
		s = Sym(id)
	}
	switch {
	case len(label) == 1:
		c.b1[label[0]] = s
	case len(c.labels) < coderCacheSize:
		c.labels = append(c.labels, label)
		c.codes = append(c.codes, s)
	default:
		if c.over == nil {
			c.over = make(map[string]Sym)
		}
		c.over[label] = s
	}
	return s
}

// Resolver memoizes label-to-id resolution for streaming hot paths. A small
// linear cache exploits two facts: documents use few distinct labels, and
// interned label strings make the == comparison a pointer check.
type Resolver struct {
	alph   *Alphabet
	labels []string
	ids    []int
}

// NewResolver returns a resolver for the alphabet.
func NewResolver(a *Alphabet) *Resolver {
	return &Resolver{alph: a}
}

// ID resolves a label, caching the result.
func (r *Resolver) ID(label string) (int, bool) {
	for i, l := range r.labels {
		if l == label {
			return r.ids[i], true
		}
	}
	id, ok := r.alph.ID(label)
	if ok && len(r.labels) < 32 {
		r.labels = append(r.labels, label)
		r.ids = append(r.ids, id)
	}
	return id, ok
}
