package alphabet

import (
	"fmt"
	"testing"
)

func TestCoderKnownAndUnknown(t *testing.T) {
	a := New("a", "b", "c")
	c := NewCoder(a)
	if c.Alphabet() != a {
		t.Fatal("Alphabet() must return the wrapped alphabet")
	}
	if got, want := c.Unknown(), Sym(3); got != want {
		t.Fatalf("Unknown() = %d, want %d (alphabet size)", got, want)
	}
	for i, s := range []string{"a", "b", "c"} {
		if got := c.Code(s); got != Sym(i) {
			t.Fatalf("Code(%q) = %d, want %d", s, got, i)
		}
		// Second call hits the cache and must agree.
		if got := c.Code(s); got != Sym(i) {
			t.Fatalf("cached Code(%q) = %d, want %d", s, got, i)
		}
	}
	for _, s := range []string{"x", "", "aa"} {
		if got := c.Code(s); got != c.Unknown() {
			t.Fatalf("Code(%q) = %d, want unknown sentinel %d", s, got, c.Unknown())
		}
		if got := c.Code(s); got != c.Unknown() {
			t.Fatalf("cached Code(%q) = %d, want unknown sentinel %d", s, got, c.Unknown())
		}
	}
}

// TestCoderOverflow pushes more distinct labels than the linear cache holds;
// resolutions must stay correct through the overflow map, including unknowns.
func TestCoderOverflow(t *testing.T) {
	var syms []string
	for i := 0; i < 3*coderCacheSize; i++ {
		syms = append(syms, fmt.Sprintf("s%02d", i))
	}
	a := New(syms...)
	c := NewCoder(a)
	for round := 0; round < 2; round++ {
		for i, s := range syms {
			if got := c.Code(s); got != Sym(i) {
				t.Fatalf("round %d: Code(%q) = %d, want %d", round, s, got, i)
			}
			if got := c.Code("u" + s); got != c.Unknown() {
				t.Fatalf("round %d: Code(%q) = %d, want unknown", round, "u"+s, got)
			}
		}
	}
}

// TestCoderEmptyAlphabet: every label is unknown, sentinel is 0.
func TestCoderEmptyAlphabet(t *testing.T) {
	c := NewCoder(New())
	if c.Unknown() != 0 {
		t.Fatalf("Unknown() = %d, want 0", c.Unknown())
	}
	if c.Code("a") != 0 {
		t.Fatal("empty alphabet must code everything to the sentinel")
	}
}
