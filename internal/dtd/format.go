package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// A small text format for path DTDs, used by cmd/validate:
//
//	root doc
//	doc  -> (item)*
//	item -> (item | leaf)*
//	leaf -> ()*
//	sect -> (para | sect)+
//
// «*» allows leaves, «+» requires at least one child (Section 4.1's two
// production forms). Blank lines and «#» comments are ignored.

// ParsePathDTD parses the text format.
func ParsePathDTD(src string) (*PathDTD, error) {
	d := &PathDTD{Prods: map[string]Production{}}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "root "); ok {
			if d.Root != "" {
				return nil, fmt.Errorf("dtd: line %d: duplicate root declaration", lineNo+1)
			}
			d.Root = strings.TrimSpace(rest)
			if d.Root == "" {
				return nil, fmt.Errorf("dtd: line %d: empty root symbol", lineNo+1)
			}
			continue
		}
		name, rhs, ok := strings.Cut(line, "->")
		if !ok {
			return nil, fmt.Errorf("dtd: line %d: expected 'name -> (…)* or (…)+', got %q", lineNo+1, line)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("dtd: line %d: empty production name", lineNo+1)
		}
		if _, dup := d.Prods[name]; dup {
			return nil, fmt.Errorf("dtd: line %d: duplicate production for %q", lineNo+1, name)
		}
		prod, err := parseProduction(strings.TrimSpace(rhs))
		if err != nil {
			return nil, fmt.Errorf("dtd: line %d: %v", lineNo+1, err)
		}
		d.Prods[name] = prod
	}
	if d.Root == "" {
		return nil, fmt.Errorf("dtd: missing 'root <symbol>' declaration")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func parseProduction(rhs string) (Production, error) {
	var p Production
	switch {
	case strings.HasSuffix(rhs, ")*"):
		p.Plus = false
	case strings.HasSuffix(rhs, ")+"):
		p.Plus = true
	default:
		return p, fmt.Errorf("production must end in )* or )+, got %q", rhs)
	}
	if !strings.HasPrefix(rhs, "(") {
		return p, fmt.Errorf("production must start with '(', got %q", rhs)
	}
	inner := strings.TrimSpace(rhs[1 : len(rhs)-2])
	if inner == "" {
		if p.Plus {
			return p, fmt.Errorf("()+ is unsatisfiable (a child is required but none is allowed)")
		}
		return p, nil
	}
	for _, sym := range strings.Split(inner, "|") {
		sym = strings.TrimSpace(sym)
		if sym == "" {
			return p, fmt.Errorf("empty alternative in %q", rhs)
		}
		p.Symbols = append(p.Symbols, sym)
	}
	return p, nil
}

// Format renders the DTD back to the text format (canonical order).
func (d *PathDTD) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "root %s\n", d.Root)
	names := make([]string, 0, len(d.Prods))
	for n := range d.Prods {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := d.Prods[n]
		suffix := "*"
		if p.Plus {
			suffix = "+"
		}
		fmt.Fprintf(&b, "%s -> (%s)%s\n", n, strings.Join(p.Symbols, " | "), suffix)
	}
	return b.String()
}
