// Package dtd implements Section 4.1: path DTDs, specialized path DTDs,
// and their connection to the Segoufin–Vianu weak validation problem. A
// path DTD's tree language is exactly AL for the regular language L of its
// allowed root-to-node label paths, so Theorems 3.1 and 3.2 decide whether
// weak validation is possible with a finite automaton (A-flatness) or a
// depth-register automaton (HAR). The package also provides a stack-based
// validator for arbitrary DTDs with regular content models, the classical
// baseline.
package dtd

import (
	"fmt"
	"sort"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/encoding"
	"stackless/internal/nfa"
)

// Production is a path-DTD production a → (b1 + … + bn)* or (b1 + … + bn)+.
type Production struct {
	// Symbols are the allowed child labels (the bi).
	Symbols []string
	// Plus marks a (…)+ production: the element must have at least one
	// child, i.e. it may not be a leaf.
	Plus bool
}

// PathDTD is a DTD whose productions all have the restricted form above.
type PathDTD struct {
	// Root is the initial symbol a0.
	Root  string
	Prods map[string]Production
}

// Symbols returns the declared symbols, sorted.
func (d *PathDTD) Symbols() []string {
	out := make([]string, 0, len(d.Prods))
	for s := range d.Prods {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural sanity: the root and all production symbols
// are declared.
func (d *PathDTD) Validate() error {
	if _, ok := d.Prods[d.Root]; !ok {
		return fmt.Errorf("dtd: root symbol %q has no production", d.Root)
	}
	for a, p := range d.Prods {
		for _, b := range p.Symbols {
			if _, ok := d.Prods[b]; !ok {
				return fmt.Errorf("dtd: production of %q uses undeclared symbol %q", a, b)
			}
		}
	}
	return nil
}

// PathLanguage builds the deterministic automaton of allowed root-to-node
// label paths (Section 4.1): states are the symbols plus an initial state
// and a dead sink; a symbol state is accepting iff its production uses *
// (a leaf may end the branch there).
func (d *PathDTD) PathLanguage() *dfa.DFA {
	syms := d.Symbols()
	alph := alphabet.New(syms...)
	n := len(syms)
	init, dead := n, n+1
	out := dfa.New(alph, n+2, init)
	idx := map[string]int{}
	for i, s := range syms {
		idx[s] = i
	}
	for q := 0; q < n+2; q++ {
		for a := 0; a < alph.Size(); a++ {
			out.Delta[q][a] = dead
		}
	}
	for i, s := range syms {
		out.Accept[i] = !d.Prods[s].Plus
		for _, b := range d.Prods[s].Symbols {
			out.Delta[i][alph.MustID(b)] = idx[b]
		}
	}
	out.Delta[init][alph.MustID(d.Root)] = idx[d.Root]
	return out
}

// Report classifies the weak-validation feasibility of the DTD's tree
// language AL via the characterization theorems.
type Report struct {
	// The classification of the path language L.
	Classes *classify.Report
}

// Registerless reports whether the DTD admits weak validation by a finite
// automaton under the markup encoding (Theorem 3.2(2): A-flatness).
func (r *Report) Registerless() bool { return r.Classes.AFlat }

// Stackless reports whether the DTD admits weak validation by a
// depth-register automaton (Theorem 3.1: HAR).
func (r *Report) Stackless() bool { return r.Classes.HAR }

// TermRegisterless and TermStackless are the term-encoding counterparts.
func (r *Report) TermRegisterless() bool { return r.Classes.BlindAFlat }

// TermStackless reports term-encoding stackless weak validation.
func (r *Report) TermStackless() bool { return r.Classes.BlindHAR }

// Analyze classifies the DTD's path language.
func (d *PathDTD) Analyze() (*Report, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	an := classify.Analyze(d.PathLanguage())
	return &Report{Classes: an.Report()}, nil
}

// Validator compiles the best weak validator available for the DTD under
// the markup encoding: a finite automaton if L is A-flat, a depth-register
// machine if L is HAR, and nil (with ok=false) otherwise — callers then
// fall back to a stack validator.
func (d *PathDTD) Validator() (core.Evaluator, string, error) {
	an := classify.Analyze(d.PathLanguage())
	if ev, err := core.RegisterlessAL(an); err == nil {
		return ev, "registerless", nil
	}
	if ql, err := core.StacklessQL(an); err == nil {
		return core.ALFromQL(ql), "stackless", nil
	}
	return nil, "", fmt.Errorf("dtd: weak validation of %q needs a stack (not HAR)", d.Root)
}

// --- Specialized path DTDs (Section 4.1, Figure 6) ---

// Specialized is a path DTD over an annotated alphabet Γ′ together with a
// projection π : Γ′ → Γ. Its tree language is the projection of the
// annotated DTD's language, and its path language is the projection of the
// annotated path language — in general nondeterministic before the subset
// construction.
type Specialized struct {
	PathDTD
	// Projection maps each annotated symbol to its visible label.
	Projection map[string]string
}

// ProjectedPathLanguage builds the minimal DFA over Γ of the projected path
// language, via an NFA and the subset construction — the "determinize and
// minimize" step that Section 4.1 shows is essential before applying the
// A-flatness criterion.
func (s *Specialized) ProjectedPathLanguage() (*dfa.DFA, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	visible := alphabet.New()
	for _, g := range s.Symbols() {
		p, ok := s.Projection[g]
		if !ok {
			return nil, fmt.Errorf("dtd: symbol %q has no projection", g)
		}
		visible.Add(p)
	}
	syms := s.Symbols()
	idx := map[string]int{}
	for i, g := range syms {
		idx[g] = i
	}
	// NFA states: one per annotated symbol, plus an initial state.
	m := nfa.New(visible, len(syms)+1, len(syms))
	for i, g := range syms {
		m.Accept[i] = !s.Prods[g].Plus
		for _, b := range s.Prods[g].Symbols {
			m.AddEdge(i, visible.MustID(s.Projection[b]), idx[b])
		}
	}
	m.AddEdge(len(syms), visible.MustID(s.Projection[s.Root]), idx[s.Root])
	return dfa.Minimize(m.Determinize()), nil
}

// NaiveAFlat applies the A-flatness criterion directly to the annotated
// partial automaton, reading it as an incomplete deterministic automaton in
// the sense of Pin's reversible automata: almost-equivalence compares
// successors only on letters where both states have transitions. Section
// 4.1 observes that this naive application can succeed (Figure 6) while the
// correct criterion — on the determinized, minimized projection — fails.
func (s *Specialized) NaiveAFlat() bool {
	syms := s.Symbols()
	idx := map[string]int{}
	for i, g := range syms {
		idx[g] = i
	}
	n := len(syms)
	// Partial transitions over Γ′: succ[state][annotated child] = state.
	succ := make([]map[string]int, n)
	for i, g := range syms {
		succ[i] = map[string]int{}
		for _, b := range s.Prods[g].Symbols {
			succ[i][b] = idx[b]
		}
	}
	internal := make([]bool, n)
	for i := range syms {
		for _, t := range succ[i] {
			internal[t] = true
		}
	}
	internal[idx[s.Root]] = true // reachable from the fresh initial state
	// All symbol states are acceptive: from any symbol some * state is
	// reachable in a sane DTD; compute properly.
	acceptive := make([]bool, n)
	for i, g := range syms {
		acceptive[i] = !s.Prods[g].Plus
	}
	for changed := true; changed; {
		changed = false
		for i := range syms {
			if acceptive[i] {
				continue
			}
			for _, t := range succ[i] {
				if acceptive[t] {
					acceptive[i] = true
					changed = true
					break
				}
			}
		}
	}
	lenientEq := func(p, q int) bool {
		if p == q {
			return true
		}
		for b, tp := range succ[p] {
			if tq, ok := succ[q][b]; ok && tp != tq {
				return false
			}
		}
		return true
	}
	// meets-in-q over the synchronized (annotated-letter) pair graph of the
	// partial automaton.
	meetsIn := func(p, q int) bool {
		type pair struct{ x, y int }
		seen := map[pair]bool{{p, q}: true}
		queue := []pair{{p, q}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur.x == q && cur.y == q {
				return true
			}
			for b, tx := range succ[cur.x] {
				if ty, ok := succ[cur.y][b]; ok {
					np := pair{tx, ty}
					if !seen[np] {
						seen[np] = true
						queue = append(queue, np)
					}
				}
			}
		}
		return false
	}
	for p := 0; p < n; p++ {
		if !internal[p] {
			continue
		}
		for q := 0; q < n; q++ {
			if p == q || !acceptive[q] {
				continue
			}
			if meetsIn(p, q) && !lenientEq(p, q) {
				return false
			}
		}
	}
	return true
}

// Fig6 returns the specialized path DTD of Figure 6:
//
//	a → (a + b + ã)*,  b → (a + b + ã)*,  ã → c*,  c → (a + b)*
//
// with projection a↦a, ã↦a, b↦b, c↦c and root ã (the symbol whose children
// are constrained to c).
func Fig6() *Specialized {
	return &Specialized{
		PathDTD: PathDTD{
			Root: "ã",
			Prods: map[string]Production{
				"a": {Symbols: []string{"a", "b", "ã"}},
				"b": {Symbols: []string{"a", "b", "ã"}},
				"ã": {Symbols: []string{"c"}},
				"c": {Symbols: []string{"a", "b"}},
			},
		},
		Projection: map[string]string{"a": "a", "b": "b", "ã": "a", "c": "c"},
	}
}

// --- General DTDs and the stack baseline ---

// General is an unrestricted DTD: each symbol's content model is a regular
// language over the symbol alphabet, given as a DFA.
type General struct {
	Root  string
	Alph  *alphabet.Alphabet
	Prods map[string]*dfa.DFA // content models; nil means any children
}

// StackValidator is the classical streaming validator: one content-model
// DFA state per open element — Θ(depth) memory.
type StackValidator struct {
	d     *General
	stack []frame
	state validatorState
}

type frame struct {
	label string
	horiz int // content-model state
}

type validatorState uint8

const (
	vRunning validatorState = iota
	vAccepted
	vRejected
)

// NewStackValidator returns a fresh validator for the DTD.
func (d *General) NewStackValidator() *StackValidator {
	return &StackValidator{d: d}
}

// Reset implements core.Evaluator.
func (v *StackValidator) Reset() {
	v.stack = v.stack[:0]
	v.state = vRunning
}

// Step implements core.Evaluator.
func (v *StackValidator) Step(e encoding.Event) {
	if v.state == vRejected {
		return
	}
	switch e.Kind {
	case encoding.Open:
		if v.state == vAccepted {
			v.state = vRejected // content after the root element
			return
		}
		if len(v.stack) == 0 {
			if e.Label != v.d.Root {
				v.state = vRejected
				return
			}
		} else {
			top := &v.stack[len(v.stack)-1]
			model := v.d.Prods[top.label]
			if model != nil {
				sym, ok := model.Alphabet.ID(e.Label)
				if !ok {
					v.state = vRejected
					return
				}
				top.horiz = model.Delta[top.horiz][sym]
			}
		}
		start := 0
		if model := v.d.Prods[e.Label]; model != nil {
			start = model.Start
		}
		v.stack = append(v.stack, frame{label: e.Label, horiz: start})
	case encoding.Close:
		if len(v.stack) == 0 {
			v.state = vRejected
			return
		}
		top := v.stack[len(v.stack)-1]
		if e.Label != "" && e.Label != top.label {
			v.state = vRejected
			return
		}
		if model := v.d.Prods[top.label]; model != nil && !model.Accept[top.horiz] {
			v.state = vRejected
			return
		}
		v.stack = v.stack[:len(v.stack)-1]
		if len(v.stack) == 0 {
			v.state = vAccepted
		}
	}
}

// Accepting implements core.Evaluator.
func (v *StackValidator) Accepting() bool { return v.state == vAccepted }

// StackDepth returns the current stack depth (benchmark accounting).
func (v *StackValidator) StackDepth() int { return len(v.stack) }

// AsGeneral converts a path DTD to the general form (for baseline
// comparisons).
func (d *PathDTD) AsGeneral() *General {
	alph := alphabet.New(d.Symbols()...)
	g := &General{Root: d.Root, Alph: alph, Prods: map[string]*dfa.DFA{}}
	for a, p := range d.Prods {
		// Content model: (b1 + … + bn)* or +.
		m := dfa.New(alph, 3, 0)
		// 0: no child yet; 1: at least one allowed child; 2: dead.
		allowed := map[int]bool{}
		for _, b := range p.Symbols {
			allowed[alph.MustID(b)] = true
		}
		for sym := 0; sym < alph.Size(); sym++ {
			if allowed[sym] {
				m.Delta[0][sym] = 1
				m.Delta[1][sym] = 1
			} else {
				m.Delta[0][sym] = 2
				m.Delta[1][sym] = 2
			}
			m.Delta[2][sym] = 2
		}
		m.Accept[1] = true
		m.Accept[0] = !p.Plus
		g.Prods[a] = m
	}
	return g
}
