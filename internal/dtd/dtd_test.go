package dtd

import (
	"math/rand"
	"testing"

	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/tree"
)

// recursiveDTD: a list-of-items document, fully recursive.
func recursiveDTD() *PathDTD {
	return &PathDTD{
		Root: "doc",
		Prods: map[string]Production{
			"doc":  {Symbols: []string{"item"}},
			"item": {Symbols: []string{"item", "leaf"}},
			"leaf": {Symbols: nil},
		},
	}
}

func TestPathDTDValidate(t *testing.T) {
	d := recursiveDTD()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &PathDTD{Root: "x", Prods: map[string]Production{"a": {}}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for undeclared root")
	}
	bad2 := &PathDTD{Root: "a", Prods: map[string]Production{"a": {Symbols: []string{"zz"}}}}
	if err := bad2.Validate(); err == nil {
		t.Error("expected error for undeclared child symbol")
	}
}

func TestPathLanguageMatchesTreeSemantics(t *testing.T) {
	d := recursiveDTD()
	l := d.PathLanguage()
	// doc; doc item; doc item leaf; doc item item leaf ∈ L.
	for _, w := range [][]string{{"doc"}, {"doc", "item"}, {"doc", "item", "leaf"}, {"doc", "item", "item", "leaf"}} {
		if !l.AcceptsSymbols(w) {
			t.Errorf("path %v should be allowed", w)
		}
	}
	for _, w := range [][]string{{"item"}, {"doc", "leaf", "item"}, {"doc", "doc"}, {}} {
		if l.AcceptsSymbols(w) {
			t.Errorf("path %v should be forbidden", w)
		}
	}
}

// naive in-memory DTD validity check for path DTDs.
func validTree(d *PathDTD, t *tree.Node) bool {
	if t.Label != d.Root {
		return false
	}
	var rec func(n *tree.Node) bool
	rec = func(n *tree.Node) bool {
		p, ok := d.Prods[n.Label]
		if !ok {
			return false
		}
		if p.Plus && len(n.Children) == 0 {
			return false
		}
		allowed := map[string]bool{}
		for _, s := range p.Symbols {
			allowed[s] = true
		}
		for _, c := range n.Children {
			if !allowed[c.Label] || !rec(c) {
				return false
			}
		}
		return true
	}
	return rec(t)
}

func randomLabeledTree(rng *rand.Rand, labels []string, budget int) *tree.Node {
	n := tree.New(labels[rng.Intn(len(labels))])
	budget--
	for budget > 0 && rng.Intn(3) != 0 {
		sub := 1 + rng.Intn(budget)
		n.Children = append(n.Children, randomLabeledTree(rng, labels, sub))
		budget -= sub
	}
	return n
}

// randomValidish generates trees biased toward validity so both outcomes
// are exercised.
func randomValidish(rng *rand.Rand, d *PathDTD, budget int) *tree.Node {
	var rec func(label string, budget int) *tree.Node
	rec = func(label string, budget int) *tree.Node {
		n := tree.New(label)
		p := d.Prods[label]
		if len(p.Symbols) == 0 {
			return n
		}
		kids := rng.Intn(3)
		if p.Plus && kids == 0 {
			kids = 1
		}
		for i := 0; i < kids && budget > 0; i++ {
			budget--
			n.Children = append(n.Children, rec(p.Symbols[rng.Intn(len(p.Symbols))], budget/2))
		}
		return n
	}
	return rec(d.Root, budget)
}

func TestWeakValidationAgainstOracle(t *testing.T) {
	d := recursiveDTD()
	rep, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// This fully-recursive DTD should at least be stackless; assert
	// whatever the classifier says is honored by Validator().
	ev, kind, err := d.Validator()
	if err != nil {
		t.Skipf("validator unavailable: %v (classes: HAR=%v)", err, rep.Stackless())
	}
	if rep.Registerless() && kind != "registerless" {
		t.Errorf("A-flat DTD compiled to %q", kind)
	}
	rng := rand.New(rand.NewSource(51))
	labels := []string{"doc", "item", "leaf"}
	seenValid, seenInvalid := 0, 0
	for i := 0; i < 600; i++ {
		var tr *tree.Node
		if i%2 == 0 {
			tr = randomValidish(rng, d, 1+rng.Intn(15))
		} else {
			tr = randomLabeledTree(rng, labels, 1+rng.Intn(10))
		}
		want := validTree(d, tr)
		got, err := core.Recognize(ev, encoding.NewSliceSource(encoding.Markup(tr)))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s validator on %s: got %v, want %v", kind, tr, got, want)
		}
		if want {
			seenValid++
		} else {
			seenInvalid++
		}
	}
	if seenValid == 0 || seenInvalid == 0 {
		t.Fatalf("degenerate sampling: %d valid, %d invalid", seenValid, seenInvalid)
	}
}

func TestStackValidatorAgainstOracle(t *testing.T) {
	d := recursiveDTD()
	g := d.AsGeneral()
	v := g.NewStackValidator()
	rng := rand.New(rand.NewSource(52))
	labels := []string{"doc", "item", "leaf"}
	for i := 0; i < 600; i++ {
		var tr *tree.Node
		if i%2 == 0 {
			tr = randomValidish(rng, d, 1+rng.Intn(15))
		} else {
			tr = randomLabeledTree(rng, labels, 1+rng.Intn(10))
		}
		want := validTree(d, tr)
		got, err := core.Recognize(v, encoding.NewSliceSource(encoding.Markup(tr)))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("stack validator on %s: got %v, want %v", tr, got, want)
		}
	}
}

func TestStackAndStacklessValidatorsAgree(t *testing.T) {
	d := recursiveDTD()
	ev, _, err := d.Validator()
	if err != nil {
		t.Skip("no stackless validator for this DTD")
	}
	g := d.AsGeneral()
	sv := g.NewStackValidator()
	rng := rand.New(rand.NewSource(53))
	labels := []string{"doc", "item", "leaf"}
	for i := 0; i < 400; i++ {
		tr := randomLabeledTree(rng, labels, 1+rng.Intn(12))
		ev1, err := core.Recognize(ev, encoding.NewSliceSource(encoding.Markup(tr)))
		if err != nil {
			t.Fatal(err)
		}
		ev2, err := core.Recognize(sv, encoding.NewSliceSource(encoding.Markup(tr)))
		if err != nil {
			t.Fatal(err)
		}
		if ev1 != ev2 {
			t.Fatalf("validators disagree on %s: stackless=%v stack=%v", tr, ev1, ev2)
		}
	}
}

// TestFig6Phenomenon is the Section 4.1 experiment: the naive A-flatness
// check on the annotated partial automaton passes, while the correct check
// on the determinized+minimized projection fails — so the criterion must be
// applied after determinization and minimization.
func TestFig6Phenomenon(t *testing.T) {
	s := Fig6()
	if !s.NaiveAFlat() {
		t.Error("Figure 6's annotated automaton should pass the naive A-flat check")
	}
	proj, err := s.ProjectedPathLanguage()
	if err != nil {
		t.Fatal(err)
	}
	an := classify.Analyze(proj)
	if ok, _ := an.AFlat(); ok {
		t.Error("Figure 6's projected minimal automaton should NOT be A-flat")
	}
	// And consequently the projected tree language is not registerless,
	// though it may still be stackless if L is HAR.
	if har, _ := an.HAR(); har {
		t.Logf("Figure 6 language is HAR: stackless weak validation available")
	}
}

func TestGeneralDTDRejectsMalformedStreams(t *testing.T) {
	d := recursiveDTD().AsGeneral()
	v := d.NewStackValidator()
	v.Reset()
	v.Step(encoding.Event{Kind: encoding.Close, Label: "doc"})
	if v.Accepting() {
		t.Error("close-before-open accepted")
	}
	v.Reset()
	v.Step(encoding.Event{Kind: encoding.Open, Label: "doc"})
	v.Step(encoding.Event{Kind: encoding.Close, Label: "item"})
	if v.Accepting() {
		t.Error("mismatched closing label accepted")
	}
}

func TestParsePathDTDRoundTrip(t *testing.T) {
	src := `
# a recursive document grammar
root doc
doc  -> (item)*
item -> (item | leaf)*
leaf -> ()*
sect -> (leaf)+
`
	d, err := ParsePathDTD(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "doc" || len(d.Prods) != 4 {
		t.Fatalf("parsed %+v", d)
	}
	if !d.Prods["sect"].Plus || d.Prods["item"].Plus {
		t.Error("star/plus flags wrong")
	}
	back, err := ParsePathDTD(d.Format())
	if err != nil {
		t.Fatal(err)
	}
	if back.Format() != d.Format() {
		t.Errorf("format round trip:\n%s\nvs\n%s", d.Format(), back.Format())
	}
}

func TestParsePathDTDErrors(t *testing.T) {
	bad := []string{
		"",                             // no root
		"root a",                       // root has no production
		"root a\na -> (b)*",            // b undeclared
		"root a\na -> b*",              // missing parens
		"root a\na -> ()+",             // unsatisfiable
		"root a\na -> (a)*\na -> (a)*", // duplicate
		"root a\nroot b\na -> (a)*",    // duplicate root
		"root a\na -> (a | )*",         // empty alternative
		"root a\nnonsense line",        // no arrow
	}
	for _, src := range bad {
		if _, err := ParsePathDTD(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

// randomPathDTD builds a random path DTD over k symbols.
func randomPathDTD(rng *rand.Rand, k int) *PathDTD {
	syms := make([]string, k)
	for i := range syms {
		syms[i] = string(rune('p' + i))
	}
	d := &PathDTD{Root: syms[rng.Intn(k)], Prods: map[string]Production{}}
	for _, s := range syms {
		var p Production
		for _, c := range syms {
			if rng.Intn(2) == 0 {
				p.Symbols = append(p.Symbols, c)
			}
		}
		p.Plus = len(p.Symbols) > 0 && rng.Intn(4) == 0
		d.Prods[s] = p
	}
	return d
}

// TestRandomDTDValidatorsAgainstOracle: for random path DTDs, whatever
// validator the classifier grants must agree with the in-memory validity
// oracle, and the stack validator always must.
func TestRandomDTDValidatorsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	compiled, stackOnly := 0, 0
	for i := 0; i < 120; i++ {
		d := randomPathDTD(rng, 1+rng.Intn(3))
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		ev, _, err := d.Validator()
		if err != nil {
			stackOnly++
			ev = nil
		} else {
			compiled++
		}
		sv := d.AsGeneral().NewStackValidator()
		labels := d.Symbols()
		for j := 0; j < 40; j++ {
			var tr *tree.Node
			if j%2 == 0 {
				tr = randomValidish(rng, d, 1+rng.Intn(12))
			} else {
				tr = randomLabeledTree(rng, labels, 1+rng.Intn(10))
			}
			want := validTree(d, tr)
			gotStack, err := core.Recognize(sv, encoding.NewSliceSource(encoding.Markup(tr)))
			if err != nil {
				t.Fatal(err)
			}
			if gotStack != want {
				t.Fatalf("stack validator wrong on %s for DTD\n%s", tr, d.Format())
			}
			if ev != nil {
				got, err := core.Recognize(ev, encoding.NewSliceSource(encoding.Markup(tr)))
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("compiled validator wrong on %s for DTD\n%s", tr, d.Format())
				}
			}
		}
	}
	if compiled == 0 {
		t.Fatalf("no DTD admitted a stackless validator (stack-only: %d)", stackOnly)
	}
}
