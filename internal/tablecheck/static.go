package tablecheck

import (
	"stackless/internal/core"
)

// staticTagDFA checks the flat (n+1)×2(k+1) table of DESIGN.md §11 against
// the TagDFA's declared dimensions.
func staticTagDFA(r *reporter, t *core.TagDFA) {
	tab, acc, stride, dead := t.CompiledTable()
	n := t.NumStates()
	k := t.Alphabet.Size()

	// Shape. The scans below index by q*stride+col, so a broken shape would
	// only produce derived noise: report it and stop.
	if stride != int32(2*(k+1)) {
		r.add(KindShape, "stride %d, want 2(k+1) = %d for alphabet size %d", stride, 2*(k+1), k)
	}
	if dead != int32(n) {
		r.add(KindShape, "dead state %d, want n = %d", dead, n)
	}
	if len(tab) != (n+1)*int(stride) {
		r.add(KindShape, "table length %d, want (n+1)·stride = %d", len(tab), (n+1)*int(stride))
	}
	if len(acc) != n+1 {
		r.add(KindShape, "acceptance vector length %d, want n+1 = %d", len(acc), n+1)
	}
	if len(r.ds) > 0 {
		return
	}

	at := func(q, col int) int32 { return tab[q*int(stride)+col] }

	// Closure: every entry targets a row of the table (the dead row is a
	// legal target; TagDFA tables carry no poison entries — poison is the
	// dead row itself).
	for q := 0; q <= n && !r.full(); q++ {
		for col := 0; col < int(stride); col++ {
			if e := at(q, col); e < 0 || e > dead {
				r.add(KindClosure, "entry [q=%d col=%d] = %d outside [0, %d]", q, col, e, dead)
			}
		}
	}

	// Flags: the dead row is self-absorbing and never accepting.
	for col := 0; col < int(stride); col++ {
		if e := at(n, col); e >= 0 && e < dead {
			r.add(KindFlags, "dead row escapes: [dead col=%d] = %d", col, e)
		}
	}
	if acc[n] {
		r.add(KindFlags, "dead state accepts")
	}

	// Totality: the unknown-symbol columns exist by shape; they must be
	// poison-closed (dead), and term-encoding close columns must ignore the
	// label entirely (every close column of row q equals CloseAny[q]).
	uo, uc := k<<1, k<<1|1
	for q := 0; q < n && !r.full(); q++ {
		if e := at(q, uo); e != dead && e >= 0 && e <= dead {
			r.add(KindTotality, "unknown open column not poison-closed: [q=%d] = %d, want dead = %d", q, e, dead)
		}
		if t.CloseAny == nil {
			if e := at(q, uc); e != dead && e >= 0 && e <= dead {
				r.add(KindTotality, "unknown close column not poison-closed: [q=%d] = %d, want dead = %d", q, e, dead)
			}
			continue
		}
		want := int32(t.CloseAny[q])
		for s := 0; s <= k; s++ {
			if e := at(q, s<<1|1); e != want && e >= 0 && e <= dead {
				r.add(KindTotality, "term close column [q=%d sym=%d] = %d, want CloseAny = %d", q, s, e, want)
			}
		}
	}

	// Earliest flags (DESIGN.md §14): recompute the fixpoint, diff bitwise.
	// Only on an otherwise-clean table — flags recomputed from corrupted
	// transitions would report derived noise instead of the root cause,
	// exactly the rule the equivalence search follows.
	if len(r.ds) == 0 {
		earliestTagDFA(r, t)
	}
}

// staticStackless checks the five compiled tables of the Lemma 3.8 machine
// against each other and against the analysis they were compiled from.
func staticStackless(r *reporter, ev *core.StacklessEvaluator) {
	delta, sel, back, backAny, comp := ev.CompiledTables()
	an := ev.Analysis()
	blind := ev.Blind()
	A := an.D
	n := A.NumStates()
	k := A.Alphabet.Size()
	w := 2 * (k + 1)

	// Shape.
	if len(delta) != n*(k+1) {
		r.add(KindShape, "delta length %d, want n(k+1) = %d", len(delta), n*(k+1))
	}
	if len(sel) != n*w {
		r.add(KindShape, "sel length %d, want 2n(k+1) = %d", len(sel), n*w)
	}
	if len(comp) != n {
		r.add(KindShape, "component vector length %d, want n = %d", len(comp), n)
	}
	if blind {
		if back != nil {
			r.add(KindShape, "blind machine carries a labelled back table")
		}
		if len(backAny) != n {
			r.add(KindShape, "backAny length %d, want n = %d", len(backAny), n)
		}
	} else {
		if backAny != nil {
			r.add(KindShape, "markup machine carries a blind backAny table")
		}
		if len(back) != (k+1)*n {
			r.add(KindShape, "back length %d, want (k+1)n = %d", len(back), (k+1)*n)
		}
	}
	if len(r.ds) > 0 {
		return
	}

	inRange := func(e int32) bool { return e >= 0 && int(e) < n }

	// Component vector: redundant with the analysis, so it must agree.
	for p := 0; p < n; p++ {
		if comp[p] != int32(an.Comp[p]) {
			r.add(KindFlags, "component vector disagrees with analysis at state %d: %d vs %d", p, comp[p], an.Comp[p])
		}
	}

	// Delta: known columns closed over states, unknown column poisoned -1.
	for p := 0; p < n && !r.full(); p++ {
		for a := 0; a <= k; a++ {
			e := delta[p*(k+1)+a]
			if a == k {
				if e == -1 {
					continue
				}
				if inRange(e) {
					r.add(KindTotality, "unknown delta column not poison-closed: [p=%d] = %d, want -1", p, e)
				} else {
					r.add(KindClosure, "poison entry [p=%d unknown] = %d, want exactly -1", p, e)
				}
				continue
			}
			if !inRange(e) {
				r.add(KindClosure, "delta entry [p=%d a=%d] = %d outside [0, %d)", p, a, e, n)
			}
		}
	}

	// Back tables: candidates in range or exactly -1 (no predecessor), with
	// the unknown row of the labelled table all -1.
	if blind {
		for p := 0; p < n && !r.full(); p++ {
			if e := backAny[p]; e != -1 && !inRange(e) {
				r.add(KindClosure, "backAny[%d] = %d, want -1 or a state below %d", p, e, n)
			}
		}
	} else {
		for a := 0; a <= k && !r.full(); a++ {
			for p := 0; p < n; p++ {
				e := back[a*n+p]
				if a == k {
					if e == -1 {
						continue
					}
					if inRange(e) {
						r.add(KindTotality, "unknown back row not poison-closed: [p=%d] = %d, want -1", p, e)
					} else {
						r.add(KindClosure, "poison entry back[unknown p=%d] = %d, want exactly -1", p, e)
					}
					continue
				}
				if e != -1 && !inRange(e) {
					r.add(KindClosure, "back entry [a=%d p=%d] = %d, want -1 or a state below %d", a, p, e, n)
				}
			}
		}
	}

	// Sel: the fused table. Open columns carry the delta target plus the
	// push/accept flags; close columns carry the bare backtrack candidate.
	for p := 0; p < n && !r.full(); p++ {
		for a := 0; a < k; a++ {
			open := sel[p*w+a<<1]
			if open < 0 {
				r.add(KindClosure, "open column poisoned on a known symbol: sel[p=%d a=%d] = %d", p, a, open)
				continue
			}
			st := open & core.SelStateMask
			if int(st) >= n {
				r.add(KindClosure, "open entry sel[p=%d a=%d] targets %d outside [0, %d)", p, a, st, n)
				continue
			}
			if int(st) != A.Delta[p][a] {
				r.add(KindFlags, "open entry sel[p=%d a=%d] targets %d, delta says %d", p, a, st, A.Delta[p][a])
			}
			if stray := open &^ (core.SelPushBit | core.SelAccBit | core.SelStateMask); stray != 0 {
				r.add(KindFlags, "open entry sel[p=%d a=%d] carries stray bits %#x", p, a, stray)
			}
			if got, want := open&core.SelPushBit != 0, an.Comp[int(st)] != an.Comp[p]; got != want {
				r.add(KindFlags, "push bit on sel[p=%d a=%d] is %v, SCC change is %v", p, a, got, want)
			}
			if got, want := open&core.SelAccBit != 0, A.Accept[int(st)]; got != want {
				r.add(KindFlags, "accept bit on sel[p=%d a=%d] is %v, acceptance of %d is %v", p, a, got, st, want)
			}

			cl := sel[p*w+(a<<1|1)]
			if cl >= 0 && cl&(core.SelPushBit|core.SelAccBit) != 0 {
				r.add(KindFlags, "selection flags in close column sel[p=%d a=%d]: %#x", p, a, cl)
				continue
			}
			if cl < -1 || int(cl) >= n {
				r.add(KindClosure, "close entry sel[p=%d a=%d] = %d, want -1 or a state below %d", p, a, cl, n)
				continue
			}
			want := int32(-1)
			if blind {
				want = backAny[p]
			} else {
				want = back[a*n+p]
			}
			if cl != want {
				r.add(KindFlags, "close entry sel[p=%d a=%d] = %d disagrees with back table %d", p, a, cl, want)
			}
		}
		// Unknown columns: opens poison; closes poison on markup machines
		// (the label is consulted) and fall through to backAny on blind ones
		// (it never is).
		if e := sel[p*w+k<<1]; e != -1 {
			r.add(KindTotality, "unknown open column not poison-closed: sel[p=%d] = %d, want -1", p, e)
		}
		uc := sel[p*w+(k<<1|1)]
		if blind {
			if uc != backAny[p] {
				r.add(KindTotality, "blind unknown close column sel[p=%d] = %d, want backAny = %d", p, uc, backAny[p])
			}
		} else if uc != -1 {
			r.add(KindTotality, "unknown close column not poison-closed: sel[p=%d] = %d, want -1", p, uc)
		}
	}

	// Earliest flags (DESIGN.md §14): recompute the fixpoint, diff bitwise
	// — only on an otherwise-clean table (see staticTagDFA).
	if len(r.ds) == 0 {
		earliestStackless(r, ev)
	}
}

// staticDRA checks a table DRA: Definition 2.1 realized as a dense table
// over (state, tag, X≤, X≥).
func staticDRA(r *reporter, d *core.DRA) {
	k := d.Alphabet.Size()
	entries, ok := core.TableEntries(d.States, k, d.Regs)
	if !ok {
		r.add(KindShape, "dimensions (%d states, %d symbols, %d registers) exceed the table cap", d.States, k, d.Regs)
		return
	}
	if got := d.TableLen(); uint64(got) != entries {
		r.add(KindShape, "table length %d, want states·2k·4^regs = %d", got, entries)
	}
	if len(d.Accept) != d.States {
		r.add(KindShape, "acceptance vector length %d, want %d states", len(d.Accept), d.States)
	}
	if d.Start < 0 || d.Start >= d.States {
		r.add(KindShape, "start state %d outside [0, %d)", d.Start, d.States)
	}
	if len(r.ds) > 0 {
		return
	}

	// Closure and flag hygiene over every entry, infeasible mask pairs
	// included: the index space is dense, so a stray write or a default the
	// builder forgot to overwrite is still a table defect even if no run can
	// reach it. Determinism and totality hold by construction (exactly one
	// entry per index), so there is no separate totality scan.
	full := core.FullRegSet(d.Regs)
	masks := core.RegSet(1) << uint(d.Regs)
	for q := 0; q < d.States && !r.full(); q++ {
		for sym := 0; sym < k; sym++ {
			for _, closing := range []bool{false, true} {
				for le := core.RegSet(0); le < masks; le++ {
					for ge := core.RegSet(0); ge < masks; ge++ {
						tr := d.Transition(q, sym, closing, le, ge)
						if tr.Next < 0 || tr.Next >= d.States {
							r.add(KindClosure, "δ(q=%d sym=%d closing=%v le=%#x ge=%#x).Next = %d outside [0, %d)",
								q, sym, closing, le, ge, tr.Next, d.States)
						}
						if stray := tr.Load &^ full; stray != 0 {
							r.add(KindFlags, "δ(q=%d sym=%d closing=%v le=%#x ge=%#x) loads unavailable registers %#x",
								q, sym, closing, le, ge, stray)
						}
					}
				}
			}
		}
	}
}

// staticSynopsis checks the lazily-filled memo tables of the Lemma 3.11
// machine in their current fill state.
func staticSynopsis(r *reporter, m *core.SynopsisMachine) {
	open, close := m.MemoTables()
	n := m.StatesDiscovered()
	k := m.Analysis().D.Alphabet.Size()
	ck := k
	if m.Blind() {
		ck = 1
	}

	if len(open) != n {
		r.add(KindShape, "open memo has %d rows, want %d discovered states", len(open), n)
	}
	if len(close) != n {
		r.add(KindShape, "close memo has %d rows, want %d discovered states", len(close), n)
	}
	if len(r.ds) > 0 {
		return
	}
	for id := 0; id < n && !r.full(); id++ {
		if len(open[id]) != k {
			r.add(KindShape, "open memo row %d has width %d, want alphabet size %d", id, len(open[id]), k)
			continue
		}
		if len(close[id]) != ck {
			r.add(KindShape, "close memo row %d has width %d, want %d", id, len(close[id]), ck)
			continue
		}
		// Closure: filled entries are interned states or the ⊤/⊥ sentinels;
		// -3 marks a transition not computed yet (legal: the memo is lazy).
		for sym, e := range open[id] {
			if e < -3 || e >= n {
				r.add(KindClosure, "open memo [id=%d sym=%d] = %d, want a sentinel or a state below %d", id, sym, e, n)
			}
		}
		for sym, e := range close[id] {
			if e < -3 || e >= n {
				r.add(KindClosure, "close memo [id=%d sym=%d] = %d, want a sentinel or a state below %d", id, sym, e, n)
			}
		}
	}
}
