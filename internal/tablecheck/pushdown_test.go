package tablecheck

import (
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/rex"
	"stackless/internal/stackeval"
)

// The pushdown table is fully redundant with its DFA (every entry the word
// of a delta target), so unlike the TagDFA there is no corruption the
// static pass misses and only the equivalence search catches: these tests
// flip live entries in place through the CompiledTable accessor and assert
// the diagnostic lands in the right invariant class. Clean-machine
// equivalence coverage comes from the corpus (pushdown/* in TestCorpusClean).

func freshPushdown(t *testing.T) *stackeval.Evaluator {
	t.Helper()
	return stackeval.QL(rex.MustCompile("(a|b)*ab", alphabet.Letters("ab")))
}

func TestPushdownMachineName(t *testing.T) {
	if got := MachineName(freshPushdown(t)); got != "PushdownEvaluator" {
		t.Fatalf("MachineName = %q, want PushdownEvaluator", got)
	}
}

func TestPushdownCorpusEntriesClean(t *testing.T) {
	ms, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, m := range ms {
		if _, ok := m.M.(*stackeval.Evaluator); ok {
			found++
		}
	}
	if found < 3 {
		t.Fatalf("corpus carries %d pushdown machines, want ≥ 3", found)
	}
}

func TestCorruptPushdown(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		ds, err := Verify("p", freshPushdown(t), testLimits)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	})
	t.Run("closure", func(t *testing.T) {
		ev := freshPushdown(t)
		tab, _, _ := ev.CompiledTable()
		tab[0] = -7 // negative: stray bits beyond accept|state
		ds, err := Verify("p", ev, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindClosure)
	})
	t.Run("closure-code-past-dead", func(t *testing.T) {
		ev := freshPushdown(t)
		tab, words, _ := ev.CompiledTable()
		tab[1] = words[len(words)-1] + 3
		ds, err := Verify("p", ev, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindClosure)
	})
	t.Run("flags-word-vector", func(t *testing.T) {
		ev := freshPushdown(t)
		_, words, _ := ev.CompiledTable()
		words[0] ^= stackeval.AccBit // acceptance flipped against the DFA
		ds, err := Verify("p", ev, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("flags-dead-row", func(t *testing.T) {
		ev := freshPushdown(t)
		tab, words, stride := ev.CompiledTable()
		n := len(words) - 1
		tab[n*stride] = words[0] // dead row escapes to a live word
		ds, err := Verify("p", ev, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("flags-accept-bit", func(t *testing.T) {
		ev := freshPushdown(t)
		tab, _, _ := ev.CompiledTable()
		tab[0] ^= stackeval.AccBit // right state code, wrong pre-selection
		ds, err := Verify("p", ev, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("flags-wrong-target", func(t *testing.T) {
		ev := freshPushdown(t)
		tab, words, stride := ev.CompiledTable()
		// Route a live entry to a different live word: in range, well
		// flagged, but disagreeing with the DFA's delta.
		for q := 0; q < len(words)-1; q++ {
			for a := 0; a < stride-1; a++ {
				if tab[q*stride+a] != words[0] {
					tab[q*stride+a] = words[0]
					q = len(words) // break outer
					break
				}
			}
		}
		ds, err := Verify("p", ev, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("totality", func(t *testing.T) {
		ev := freshPushdown(t)
		tab, words, stride := ev.CompiledTable()
		tab[stride-1] = words[0] // unknown column of state 0 survives
		ds, err := Verify("p", ev, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindTotality)
	})
}
