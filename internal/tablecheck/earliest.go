package tablecheck

import (
	"stackless/internal/core"
)

// Earliest-flags invariant class (DESIGN.md §14). The compiled earliest-
// decision flags are redundant data — a reachability fixpoint over the
// transition tables — so the checker recomputes the fixpoint from the same
// tables the kernels execute and demands bitwise agreement. The two failure
// directions are both caught: a flag set where the fixpoint says live means
// the earliest driver would stop stepping while a match is still reachable
// (silently dropped matches); a flag clear where the fixpoint says decided
// means the early exit is silently forfeited.

// earliestTagDFA recomputes the tag-DFA earliest fixpoint from the compiled
// flat table and diffs it against the live flags. Runs only on a table the
// shape checks already admitted.
func earliestTagDFA(r *reporter, t *core.TagDFA) {
	tab, acc, stride, dead := t.CompiledTable()
	dec := t.CompiledEarliest()
	n := t.NumStates()
	k := t.Alphabet.Size()
	if len(dec) != n+1 {
		r.add(KindEarliest, "earliest flags length %d, want n+1 = %d", len(dec), n+1)
		return
	}
	// live[q]: an accepting open-column target is reachable from q.
	live := make([]bool, n+1)
	for q := 0; q <= n; q++ {
		row := tab[q*int(stride) : (q+1)*int(stride)]
		for s := 0; s <= k; s++ {
			if a := row[s<<1]; a >= 0 && a <= dead && acc[a] {
				live[q] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for q := 0; q <= n; q++ {
			if live[q] {
				continue
			}
			row := tab[q*int(stride) : (q+1)*int(stride)]
			for _, succ := range row {
				if succ >= 0 && succ <= dead && live[succ] {
					live[q] = true
					changed = true
					break
				}
			}
		}
	}
	for q := 0; q <= n && !r.full(); q++ {
		want := int32(0)
		if !live[q] {
			want = 1
		}
		if dec[q] != want {
			if want == 0 {
				r.add(KindEarliest, "earliest flag set at state %d but an accepting open is still reachable (matches would be dropped)", q)
			} else {
				r.add(KindEarliest, "earliest flag clear at state %d but no accepting open is reachable (early exit forfeited)", q)
			}
		}
	}
}

// earliestStackless recomputes the stackless earliest fixpoint from the
// analysis and back tables and diffs it against the live flags.
func earliestStackless(r *reporter, ev *core.StacklessEvaluator) {
	dec := ev.CompiledEarliest()
	an := ev.Analysis()
	A := an.D
	n := A.NumStates()
	k := A.Alphabet.Size()
	_, _, back, backAny, _ := ev.CompiledTables()
	if len(dec) != n {
		r.add(KindEarliest, "earliest flags length %d, want n = %d", len(dec), n)
		return
	}
	live := make([]bool, n)
	for p := 0; p < n; p++ {
		for a := 0; a < k; a++ {
			if A.Accept[A.Delta[p][a]] {
				live[p] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for p := 0; p < n; p++ {
			if live[p] {
				continue
			}
			succLive := false
			for a := 0; a < k; a++ {
				if live[A.Delta[p][a]] {
					succLive = true
					break
				}
				if !ev.Blind() {
					if cand := back[a*n+p]; cand >= 0 && int(cand) < n && live[cand] {
						succLive = true
						break
					}
				}
			}
			if !succLive && ev.Blind() {
				if cand := backAny[p]; cand >= 0 && int(cand) < n && live[cand] {
					succLive = true
				}
			}
			if succLive {
				live[p] = true
				changed = true
			}
		}
	}
	for p := 0; p < n && !r.full(); p++ {
		want := int32(0)
		if !live[p] {
			want = 1
		}
		if dec[p] != want {
			if want == 0 {
				r.add(KindEarliest, "earliest flag set at state %d but an accepting open is still reachable (matches would be dropped)", p)
			} else {
				r.add(KindEarliest, "earliest flag clear at state %d but no accepting open is reachable (early exit forfeited)", p)
			}
		}
	}
}
