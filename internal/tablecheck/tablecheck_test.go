package tablecheck

import (
	"strings"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
)

// testLimits keeps the per-machine search small enough for the unit-test
// tier; cmd/tablecheck runs the full DefaultLimits bounds.
var testLimits = Limits{Depth: 3, Width: 2, Alpha: 3, MaxNodes: 30000}

func TestCorpusClean(t *testing.T) {
	ms, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) < 10 {
		t.Fatalf("corpus has only %d machines", len(ms))
	}
	for _, m := range ms {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			lim := testLimits
			if testing.Short() {
				lim = Limits{Depth: 2, Width: 2, Alpha: 2, MaxNodes: 4000}
			}
			ds, err := Verify(m.Name, m.M, lim)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range ds {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		})
	}
}

// wantOnlyKind asserts that every diagnostic is of kind k and there is at
// least one.
func wantOnlyKind(t *testing.T, ds []Diagnostic, k Kind) {
	t.Helper()
	if len(ds) == 0 {
		t.Fatalf("expected %s diagnostics, got none", k)
	}
	for _, d := range ds {
		if d.Kind != k {
			t.Errorf("expected only %s diagnostics, got %s", k, d)
		}
	}
}

func freshTagDFA(t *testing.T) *core.TagDFA {
	t.Helper()
	d, err := core.RegisterlessQL(classify.Analyze(paperfigs.Fig3a()))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCorruptTagDFA(t *testing.T) {
	k := paperfigs.GammaABC().Size()

	t.Run("closure", func(t *testing.T) {
		d := freshTagDFA(t)
		tab, _, _, dead := d.CompiledTable()
		tab[0] = dead + 5
		ds, err := Verify("t", d, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindClosure)
	})
	t.Run("flags-dead-row", func(t *testing.T) {
		d := freshTagDFA(t)
		tab, _, stride, dead := d.CompiledTable()
		tab[int(dead)*int(stride)] = 0
		ds, err := Verify("t", d, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("flags-dead-accepts", func(t *testing.T) {
		d := freshTagDFA(t)
		_, acc, _, dead := d.CompiledTable()
		acc[dead] = true
		ds, err := Verify("t", d, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("totality", func(t *testing.T) {
		d := freshTagDFA(t)
		tab, _, _, _ := d.CompiledTable()
		tab[k<<1] = 0 // unknown open column of state 0 routed to a live state
		ds, err := Verify("t", d, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindTotality)
	})
}

// TestCorruptTagDFAEquivalence flips a live entry to a different in-range
// state: statically silent (the compiled table stays well shaped), caught
// only by the bounded-equivalence search, with a counterexample that must
// replay to a real divergence.
func TestCorruptTagDFAEquivalence(t *testing.T) {
	d := freshTagDFA(t)
	tab, acc, stride, dead := d.CompiledTable()

	// Find a live open entry whose acceptance differs from some other live
	// state's, and flip it there.
	n := int(dead)
	flipped := false
	for q := 0; q < n && !flipped; q++ {
		for col := 0; col < int(stride); col += 2 {
			e := tab[q*int(stride)+col]
			if e == dead {
				continue
			}
			for alt := 0; alt < n; alt++ {
				if int32(alt) != e && acc[alt] != acc[e] {
					tab[q*int(stride)+col] = int32(alt)
					flipped = true
					break
				}
			}
			if flipped {
				break
			}
		}
	}
	if !flipped {
		t.Fatal("no flippable entry found")
	}

	if ds, err := StaticVerify("t", d); err != nil || len(ds) != 0 {
		t.Fatalf("flip should be statically silent, got %v, %v", ds, err)
	}
	ds, err := Verify("t", d, testLimits)
	if err != nil {
		t.Fatal(err)
	}
	wantOnlyKind(t, ds, KindEquivalence)
	ce := ds[0]
	if len(ce.Events) == 0 || ce.Counterexample == "" {
		t.Fatalf("equivalence diagnostic without counterexample: %+v", ce)
	}

	// Replay the counterexample through the string and coded paths of the
	// corrupted machine: they must really diverge on an observable.
	str := d.Evaluator()
	cod := d.Evaluator().(core.BatchEvaluator)
	coder := alphabet.NewCoder(d.Alphabet)
	diverged := false
	for _, e := range ce.Events {
		str.Step(e)
		cod.StepBatch(encoding.CodeEvents(coder, []encoding.Event{e}, nil))
		if str.Accepting() != cod.Accepting() {
			diverged = true
		}
	}
	if !diverged {
		t.Errorf("counterexample %q does not replay to an Accepting divergence", ce.Counterexample)
	}
}

func freshStackless(t *testing.T) *core.StacklessEvaluator {
	t.Helper()
	ev, err := core.StacklessQL(classify.Analyze(paperfigs.Fig3c()))
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestCorruptStackless(t *testing.T) {
	an := classify.Analyze(paperfigs.Fig3c())
	n := an.D.NumStates()
	k := an.D.Alphabet.Size()

	t.Run("closure", func(t *testing.T) {
		ev := freshStackless(t)
		delta, _, _, _, _ := ev.CompiledTables()
		delta[0] = int32(n + 7)
		ds, err := Verify("s", ev, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindClosure)
	})
	t.Run("flags", func(t *testing.T) {
		ev := freshStackless(t)
		_, sel, _, _, _ := ev.CompiledTables()
		sel[0] ^= core.SelAccBit // open column of (state 0, symbol 0)
		ds, err := Verify("s", ev, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("totality", func(t *testing.T) {
		ev := freshStackless(t)
		delta, _, _, _, _ := ev.CompiledTables()
		delta[k] = 0 // unknown column of state 0 routed to a live state
		ds, err := Verify("s", ev, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindTotality)
	})
	t.Run("equivalence", func(t *testing.T) {
		// Flip a backtrack candidate in both the back table and the fused
		// sel close column, keeping them consistent: statically silent,
		// caught only by running trees through both paths.
		ev := freshStackless(t)
		_, sel, back, _, _ := ev.CompiledTables()
		w := 2 * (k + 1)
		for a := 0; a < k; a++ {
			for p := 0; p < n; p++ {
				cur := back[a*n+p]
				for c := 0; c < n; c++ {
					if int32(c) == cur {
						continue
					}
					back[a*n+p] = int32(c)
					sel[p*w+(a<<1|1)] = int32(c)
					if ds, err := StaticVerify("s", ev); err != nil || len(ds) != 0 {
						t.Fatalf("in-range flip should be statically silent, got %v, %v", ds, err)
					}
					ds, err := Verify("s", ev, testLimits)
					if err != nil {
						t.Fatal(err)
					}
					if len(ds) > 0 {
						wantOnlyKind(t, ds, KindEquivalence)
						if ds[0].Counterexample == "" {
							t.Errorf("equivalence diagnostic without counterexample: %+v", ds[0])
						}
						return
					}
					// This flip is behaviorally invisible within the bounds;
					// restore it and try the next.
					back[a*n+p] = cur
					sel[p*w+(a<<1|1)] = cur
				}
			}
		}
		t.Error("no backtrack-candidate flip was caught by the equivalence search")
	})
}

func TestCorruptDRA(t *testing.T) {
	t.Run("shape", func(t *testing.T) {
		d := core.Example27Minimal()
		d.Start = -1
		ds, err := Verify("d", d, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindShape)
	})
	t.Run("closure", func(t *testing.T) {
		d := core.Example27Minimal()
		d.SetTransition(0, 0, false, 0, 0, 0, d.States+3)
		ds, err := Verify("d", d, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindClosure)
	})
	t.Run("flags", func(t *testing.T) {
		d := core.Example27Minimal()
		d.SetTransition(0, 0, false, 0, 0, core.RegSet(1)<<uint(d.Regs), 0)
		ds, err := Verify("d", d, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
}

func freshSynopsis(t *testing.T) *core.SynopsisMachine {
	t.Helper()
	m, err := core.RegisterlessEL(classify.Analyze(paperfigs.Fig3a()))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCorruptSynopsis(t *testing.T) {
	t.Run("shape", func(t *testing.T) {
		m := freshSynopsis(t)
		open, _ := m.MemoTables()
		open[0] = open[0][:1]
		ds, err := Verify("y", m, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindShape)
	})
	t.Run("closure", func(t *testing.T) {
		m := freshSynopsis(t)
		open, _ := m.MemoTables()
		open[0][0] = 99
		ds, err := Verify("y", m, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindClosure)
	})
}

// TestCompileHook checks the debug hook: a machine compiled while the hook
// is installed is verified on the spot, and a structurally broken machine
// is reported the moment its table is built.
func TestCompileHook(t *testing.T) {
	var got []Diagnostic
	uninstall := InstallCompileHook(func(d Diagnostic) { got = append(got, d) })
	defer uninstall()

	// A clean machine compiles without a report.
	d := freshTagDFA(t)
	d.CompiledTable()
	if len(got) != 0 {
		t.Fatalf("clean machine reported: %v", got)
	}

	// A hand-built TagDFA with an out-of-range successor is reported as a
	// closure violation when its table is built.
	bad := core.NewTagDFA(alphabet.Letters("ab"), 2, 0)
	bad.OpenT[0][0] = 5
	bad.CompiledTable()
	wantOnlyKind(t, got, KindClosure)
	if !strings.Contains(got[0].Machine, "TagDFA") {
		t.Errorf("hook named the machine %q", got[0].Machine)
	}

	// Uninstall restores the previous hook.
	uninstall()
	if core.CompileHook != nil {
		t.Error("uninstall did not restore the previous hook")
	}
}

func TestVerifyUnsupported(t *testing.T) {
	if _, err := StaticVerify("x", 42); err == nil {
		t.Error("expected an error for an unsupported machine type")
	}
	if _, _, err := Equivalence("x", 42, testLimits); err == nil {
		t.Error("expected an error for an unsupported machine type")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Machine: "m", Kind: KindClosure, Detail: "boom"}
	if got := d.String(); got != "m: [closure] boom" {
		t.Errorf("String() = %q", got)
	}
	d.Counterexample = "a ā"
	if got := d.String(); !strings.Contains(got, "counterexample: a ā") {
		t.Errorf("String() = %q", got)
	}
}
