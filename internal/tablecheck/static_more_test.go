package tablecheck

import (
	"strings"
	"testing"

	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/paperfigs"
)

func TestMachineName(t *testing.T) {
	ms, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		name := MachineName(m.M)
		if name == "" || strings.HasPrefix(name, "*") {
			t.Errorf("%s: MachineName fell through to %q", m.Name, name)
		}
	}
	if got := MachineName(42); got != "int" {
		t.Errorf("MachineName(42) = %q", got)
	}
}

// TestDiagnosticCap floods a machine with violations: the report must stop
// at the cap with a truncation notice instead of thousands of lines.
func TestDiagnosticCap(t *testing.T) {
	d := core.Example27Minimal()
	for q := 0; q < d.States; q++ {
		for sym := 0; sym < d.Alphabet.Size(); sym++ {
			d.SetForAllTests(q, sym, false, 0, d.States+9)
			d.SetForAllTests(q, sym, true, 0, d.States+9)
		}
	}
	ds, err := StaticVerify("d", d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != maxDiagnostics+1 {
		t.Fatalf("got %d diagnostics, want cap %d plus the truncation notice", len(ds), maxDiagnostics+1)
	}
	last := ds[len(ds)-1]
	if !strings.Contains(last.Detail, "limit") {
		t.Errorf("last diagnostic is not the truncation notice: %s", last)
	}
}

func TestCorruptBlindStackless(t *testing.T) {
	an := classify.Analyze(paperfigs.Fig3c())
	fresh := func() *core.StacklessEvaluator {
		ev, err := core.BlindStacklessQL(an)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	n := an.D.NumStates()

	t.Run("closure-backany", func(t *testing.T) {
		ev := fresh()
		_, _, _, backAny, _ := ev.CompiledTables()
		p := -1
		for i, e := range backAny {
			if e >= 0 {
				p = i
				break
			}
		}
		if p < 0 {
			t.Skip("no live backAny candidate")
		}
		backAny[p] = int32(n + 4)
		ds, err := StaticVerify("s", ev)
		if err != nil {
			t.Fatal(err)
		}
		// The flip surfaces both as an out-of-range candidate and as a
		// sel/backAny disagreement in the fused close columns.
		if len(ds) == 0 {
			t.Fatal("corrupted backAny not reported")
		}
		found := false
		for _, d := range ds {
			if d.Kind == KindClosure {
				found = true
			}
		}
		if !found {
			t.Errorf("expected a closure diagnostic, got %v", ds)
		}
	})
	t.Run("totality-unknown-close", func(t *testing.T) {
		ev := fresh()
		_, sel, _, backAny, _ := ev.CompiledTables()
		k := an.D.Alphabet.Size()
		w := 2 * (k + 1)
		p := -1
		for i, e := range backAny {
			if e != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			t.Skip("no distinguishable state")
		}
		sel[p*w+(k<<1|1)] = 0 // no longer equals backAny[p]
		ds, err := StaticVerify("s", ev)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindTotality)
	})
}

func TestCorruptBlindSynopsis(t *testing.T) {
	m, err := core.BlindRegisterlessEL(classify.Analyze(paperfigs.Fig3c()))
	if err != nil {
		t.Skip("Fig3c is not blindly E-flat:", err)
	}
	_, close := m.MemoTables()
	close[0] = append(close[0], -3) // blind close rows have width 1
	ds, err := StaticVerify("y", m)
	if err != nil {
		t.Fatal(err)
	}
	wantOnlyKind(t, ds, KindShape)
}

// TestZeroLimits checks that zero-valued Limits fall back to the issue's
// default bounds instead of searching nothing.
func TestZeroLimits(t *testing.T) {
	d := freshTagDFA(t)
	_, n, err := Equivalence("t", d, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if n < 1000 {
		t.Errorf("zero limits explored only %d joint states", n)
	}
}

// TestShapeStackless covers the shape scan of the five-table machine via
// the blind/markup table mixups that cannot happen in-place: verified
// through the length checks on a machine observed mid-corruption is not
// constructible, so check the markup table lengths directly instead.
func TestShapeStackless(t *testing.T) {
	ev := freshStackless(t)
	delta, sel, back, backAny, comp := ev.CompiledTables()
	an := ev.Analysis()
	n := an.D.NumStates()
	k := an.D.Alphabet.Size()
	if len(delta) != n*(k+1) || len(sel) != 2*n*(k+1) || len(comp) != n {
		t.Errorf("table lengths delta=%d sel=%d comp=%d for n=%d k=%d", len(delta), len(sel), len(comp), n, k)
	}
	if backAny != nil || len(back) != (k+1)*n {
		t.Errorf("markup machine has backAny=%v back=%d", backAny, len(back))
	}
}
