package tablecheck

import (
	"fmt"
	"strings"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/encoding"
)

// Limits bounds the universe of the equivalence search: all well-formed
// trees of depth at most Depth, at most Width children per node, labelled
// from the first Alpha symbols of the machine's alphabet plus one label
// outside it (exercising the unknown-symbol columns). MaxNodes caps the
// joint-configuration graph the breadth-first search materializes.
type Limits struct {
	Depth, Width, Alpha int
	MaxNodes            int
}

// DefaultLimits are the bounds of the issue's acceptance criteria:
// depth ≤ 4, width ≤ 3, |Σ| ≤ 4.
var DefaultLimits = Limits{Depth: 4, Width: 3, Alpha: 4, MaxNodes: 200000}

// withDefaults fills zero fields from DefaultLimits.
func (l Limits) withDefaults() Limits {
	if l.Depth <= 0 {
		l.Depth = DefaultLimits.Depth
	}
	if l.Width <= 0 {
		l.Width = DefaultLimits.Width
	}
	if l.Alpha <= 0 {
		l.Alpha = DefaultLimits.Alpha
	}
	if l.MaxNodes <= 0 {
		l.MaxNodes = DefaultLimits.MaxNodes
	}
	return l
}

// machineUnderTest is what the search drives: the string path (Step), the
// two batched kernels, and configuration snapshots to fork the run at every
// tree prefix without replaying it.
type machineUnderTest interface {
	core.BatchEvaluator
	SaveConfig() core.SavedConfig
	RestoreConfig(core.SavedConfig)
}

// underTest extracts the evaluator the equivalence search drives, plus
// whether the machine consumes the term encoding (blind).
func underTest(m any) (machineUnderTest, bool, error) {
	switch v := m.(type) {
	case *core.TagDFA:
		mu, ok := v.Evaluator().(machineUnderTest)
		if !ok {
			return nil, false, fmt.Errorf("tablecheck: TagDFA evaluator lost its snapshot support")
		}
		return mu, v.CloseAny != nil, nil
	case *core.StacklessEvaluator:
		return v, v.Blind(), nil
	case *core.DRA:
		mu, ok := v.Evaluator().(machineUnderTest)
		if !ok {
			return nil, false, fmt.Errorf("tablecheck: DRA evaluator lost its snapshot support")
		}
		return mu, false, nil
	case *core.SynopsisMachine:
		return v, v.Blind(), nil
	case *core.ProductDFA:
		// The explicit case (not the machineUnderTest fallthrough) carries
		// the encoding: a term product is blind, and the generic search must
		// enumerate label-less closes for it.
		return v.Evaluator(), v.TermEncoding(), nil
	case interface{ InnerSynopsis() *core.SynopsisMachine }:
		mu, ok := m.(machineUnderTest)
		if !ok {
			return nil, false, fmt.Errorf("tablecheck: AL wrapper %T does not support snapshots", m)
		}
		return mu, v.InnerSynopsis().Blind(), nil
	case machineUnderTest:
		return v, false, nil
	}
	return nil, false, fmt.Errorf("tablecheck: no equivalence driver for machine type %T", m)
}

// frame is one open ancestor of the enumeration: its label (by symbol code;
// the unknown label is the sentinel) and how many children it already has.
type frame struct {
	sym      alphabet.Sym
	children int
}

// treeCtx is the enumeration state: the open-ancestor stack and whether the
// single root has already closed (no events are legal after that).
type treeCtx struct {
	stack    []frame
	rootDone bool
}

func (c treeCtx) key(b *strings.Builder) {
	if c.rootDone {
		b.WriteByte('!')
	}
	for _, f := range c.stack {
		fmt.Fprintf(b, "%d.%d;", f.sym, f.children)
	}
}

// eqNode is one node of the joint breadth-first search: the string-path and
// coded-path configurations reached by the same event prefix, the
// enumeration state, and the incoming edge for counterexample recovery.
type eqNode struct {
	str, cod core.SavedConfig
	tree     treeCtx
	parent   *eqNode
	ev       encoding.Event
}

// events reconstructs the event prefix leading to n.
func (n *eqNode) events() []encoding.Event {
	var rev []*eqNode
	for p := n; p.parent != nil; p = p.parent {
		rev = append(rev, p)
	}
	out := make([]encoding.Event, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i].ev
	}
	return out
}

// renderEvents joins the prefix in the paper's notation.
func renderEvents(evs []encoding.Event) string {
	parts := make([]string, len(evs))
	for i, e := range evs {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// unknownLabel returns a label guaranteed to be outside the alphabet.
func unknownLabel(a *alphabet.Alphabet) string {
	s := "∉"
	for a.Contains(s) {
		s += "∉"
	}
	return s
}

// Equivalence checks the compiled machine against its own string path over
// every well-formed tree within lim, by breadth-first search over joint
// (string configuration, coded configuration, tree prefix) states. Per
// event it checks that (1) Accepting agrees between the paths, (2) after
// Open events, SelectBatch reports a hit exactly when the machine accepts,
// and (3) StepBatch and SelectBatch land in identical configurations. The
// first divergence in BFS order — hence a minimal counterexample — is
// returned as a diagnostic, with the number of joint states explored. A nil
// diagnostic means no divergence within the bounds.
//
//treelint:partial configs are parked in BFS nodes and restored in later iterations; save/restore pairing is per-node, not per-path
func Equivalence(name string, m any, lim Limits) (*Diagnostic, int, error) {
	lim = lim.withDefaults()
	mu, blind, err := underTest(m)
	if err != nil {
		return nil, 0, err
	}
	alph := mu.CodeAlphabet()
	k := alph.Size()
	unk := unknownLabel(alph)
	unkSym := alphabet.Sym(k)

	// The open moves: the first min(k, Alpha) symbols plus the unknown one.
	type move struct {
		label string
		sym   alphabet.Sym
	}
	var opens []move
	for s := 0; s < k && s < lim.Alpha; s++ {
		opens = append(opens, move{label: alph.Symbol(s), sym: alphabet.Sym(s)})
	}
	opens = append(opens, move{label: unk, sym: unkSym})

	mu.Reset()
	c0 := mu.SaveConfig()
	root := &eqNode{str: c0, cod: c0, tree: treeCtx{}}

	seen := make(map[string]bool)
	nodeKey := func(n *eqNode) string {
		var b strings.Builder
		b.WriteString(n.str.Key())
		b.WriteByte('|')
		b.WriteString(n.cod.Key())
		b.WriteByte('|')
		n.tree.key(&b)
		return b.String()
	}
	seen[nodeKey(root)] = true
	queue := []*eqNode{root}
	explored := 0

	batch := make([]encoding.CodedEvent, 1)
	diverge := func(n *eqNode, e encoding.Event, format string, args ...any) *Diagnostic {
		evs := append(n.events(), e)
		return &Diagnostic{
			Machine:        name,
			Kind:           KindEquivalence,
			Detail:         fmt.Sprintf(format, args...),
			Counterexample: renderEvents(evs),
			Events:         evs,
		}
	}

	for len(queue) > 0 && explored < lim.MaxNodes {
		n := queue[0]
		queue = queue[1:]
		explored++

		// Both paths absorbed with constant observables: no future event can
		// expose a divergence below this prefix.
		if n.str.Parked() && n.cod.Parked() {
			continue
		}

		// Legal moves from this prefix.
		type edge struct {
			ev   encoding.Event
			ce   encoding.CodedEvent
			tree treeCtx
		}
		var edges []edge
		depth := len(n.tree.stack)
		canOpen := !n.tree.rootDone && depth < lim.Depth &&
			(depth == 0 || n.tree.stack[depth-1].children < lim.Width)
		if canOpen {
			for _, mv := range opens {
				st := make([]frame, depth+1)
				copy(st, n.tree.stack)
				if depth > 0 {
					st[depth-1].children++
				}
				st[depth] = frame{sym: mv.sym}
				edges = append(edges, edge{
					ev:   encoding.Event{Kind: encoding.Open, Label: mv.label},
					ce:   encoding.CodedEvent{Sym: mv.sym, Kind: encoding.Open},
					tree: treeCtx{stack: st},
				})
			}
		}
		if depth > 0 {
			top := n.tree.stack[depth-1]
			st := make([]frame, depth-1)
			copy(st, n.tree.stack[:depth-1])
			ev := encoding.Event{Kind: encoding.Close}
			ce := encoding.CodedEvent{Sym: unkSym, Kind: encoding.Close}
			if !blind {
				// Markup: the close tag carries the label; an unknown-labelled
				// node closes with the unknown label.
				ce.Sym = top.sym
				if top.sym == unkSym {
					ev.Label = unk
				} else {
					ev.Label = alph.Symbol(int(top.sym))
				}
			}
			edges = append(edges, edge{ev: ev, ce: ce, tree: treeCtx{stack: st, rootDone: depth == 1}})
		}

		for _, ed := range edges {
			// String path.
			mu.RestoreConfig(n.str)
			mu.Step(ed.ev)
			strAcc := mu.Accepting()
			strCfg := mu.SaveConfig()

			// Coded path, once through each kernel.
			batch[0] = ed.ce
			mu.RestoreConfig(n.cod)
			mu.StepBatch(batch)
			codAcc := mu.Accepting()
			codCfg := mu.SaveConfig()

			mu.RestoreConfig(n.cod)
			hits := mu.SelectBatch(batch, nil)
			selCfg := mu.SaveConfig()

			if strAcc != codAcc {
				return diverge(n, ed.ev, "Accepting diverges: string path %v, coded path %v", strAcc, codAcc), explored, nil
			}
			if ed.ev.Kind == encoding.Open {
				if hit := len(hits) > 0; hit != codAcc {
					return diverge(n, ed.ev, "SelectBatch hit=%v but Accepting=%v after the Open", hit, codAcc), explored, nil
				}
			}
			if codCfg.Key() != selCfg.Key() {
				return diverge(n, ed.ev, "StepBatch and SelectBatch land in different configurations: %q vs %q",
					codCfg.Key(), selCfg.Key()), explored, nil
			}

			child := &eqNode{str: strCfg, cod: codCfg, tree: ed.tree, parent: n, ev: ed.ev}
			if key := nodeKey(child); !seen[key] {
				seen[key] = true
				queue = append(queue, child)
			}
		}
	}
	return nil, explored, nil
}
